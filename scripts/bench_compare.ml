(* Diff two bench JSONL files (bench/main.exe --json output, or a
   committed BENCH_prN.json) row by row.

   Rows are matched by their "name" field among records with
   "kind":"bench".  Two metrics are understood:

   - "per_sec"    (throughput; higher is better)
   - "ns_per_run" (latency; lower is better)

   When a file tags rows with "phase" (the committed before/after files
   do), the "after" row wins for a given name; otherwise the last row
   with that name wins.  The exit status is 0 whenever both files parse —
   the comparison is informational (CI runs it as a non-blocking step:
   shared runners make wall-clock thresholds too flaky to gate on). *)

module J = Obs.Json

type row = { per_sec : float option; ns_per_run : float option }

let get_float name j = Option.bind (J.member name j) J.to_float_opt
let get_str name j = Option.bind (J.member name j) J.to_string_opt

let load path =
  match Obs.Export.parse_file path with
  | Error msg ->
      Printf.eprintf "bench_compare: %s: %s\n" path msg;
      exit 1
  | Ok lines ->
      let tbl : (string, row) Hashtbl.t = Hashtbl.create 32 in
      List.iter
        (fun j ->
          match (get_str "kind" j, get_str "name" j) with
          | Some "bench", Some name ->
              let replace =
                match get_str "phase" j with
                | Some "before" -> not (Hashtbl.mem tbl name)
                | _ -> true (* "after", untagged: last one wins *)
              in
              if replace then
                Hashtbl.replace tbl name
                  {
                    per_sec = get_float "per_sec" j;
                    ns_per_run = get_float "ns_per_run" j;
                  }
          | _ -> ())
        lines;
      tbl

let () =
  let base_path, cur_path =
    match Sys.argv with
    | [| _; b; c |] -> (b, c)
    | _ ->
        prerr_endline "usage: bench_compare BASELINE.jsonl CURRENT.jsonl";
        exit 1
  in
  let base = load base_path and cur = load cur_path in
  let names =
    Hashtbl.fold (fun k _ acc -> k :: acc) base []
    |> List.filter (Hashtbl.mem cur)
    |> List.sort String.compare
  in
  if names = [] then
    Printf.printf "bench_compare: no common bench rows between %s and %s\n"
      base_path cur_path
  else begin
    Printf.printf "%-40s %14s %14s %9s\n" "bench" "baseline" "current"
      "speedup";
    List.iter
      (fun name ->
        let b = Hashtbl.find base name and c = Hashtbl.find cur name in
        match (b, c) with
        | { per_sec = Some bv; _ }, { per_sec = Some cv; _ } when bv > 0. ->
            Printf.printf "%-40s %12.0f/s %12.0f/s %8.2fx\n" name bv cv
              (cv /. bv)
        | { ns_per_run = Some bv; _ }, { ns_per_run = Some cv; _ }
          when cv > 0. ->
            Printf.printf "%-40s %12.0fns %12.0fns %8.2fx\n" name bv cv
              (bv /. cv)
        | _ ->
            Printf.printf "%-40s %14s %14s %9s\n" name "-" "-" "n/a")
      names
  end
