(* Diff two bench JSONL files (bench/main.exe --json output, or a
   committed BENCH_prN.json) row by row.

   Rows are matched by their "name" field among records with
   "kind":"bench".  Two metrics are understood:

   - "per_sec"    (throughput; higher is better)
   - "ns_per_run" (latency; lower is better)

   A file may carry {e several} samples of the same row — committed
   baselines append one set per recording run, and CI concatenates
   repeated --quick runs — and the comparison always uses the {e median}
   per name, which is what lets the gate sit closer than the ~10%
   single-run spread of a shared 1-core runner.  When a file tags rows
   with "phase" (the committed before/after files do), only "after" (and
   untagged) samples form the pool; "before" samples are used only when
   a name has no after/untagged sample at all.

   By default the comparison is informational: exit 0 whenever both
   files parse (CI runs it as a non-blocking step for the volatile
   rows).  With

     bench_compare BASELINE CURRENT --max-regress PCT [--only PREFIX]
                                    [--repeat N]

   it becomes a gate: exit 1 if any compared row's current median
   regresses by more than PCT percent against the baseline median
   (throughput drop, or latency increase).  --only restricts the gated
   rows to names starting with PREFIX (e.g. "hot/"), so noisy Bechamel
   micro-rows don't flap a gate meant for the checker hot paths.
   --repeat N asserts that every gated row has at least N samples in
   CURRENT (i.e. the caller really ran the bench N times) — a gate fed
   a single sample while claiming median-of-N is a misconfigured gate
   and fails. *)

module J = Obs.Json

type samples = {
  mutable per_sec : float list; (* after/untagged pool *)
  mutable ns_per_run : float list;
  mutable per_sec_before : float list;
  mutable ns_before : float list;
}

let get_float name j = Option.bind (J.member name j) J.to_float_opt
let get_str name j = Option.bind (J.member name j) J.to_string_opt

let load path =
  match Obs.Export.parse_file path with
  | Error msg ->
      Printf.eprintf "bench_compare: %s: %s\n" path msg;
      exit 1
  | Ok lines ->
      let tbl : (string, samples) Hashtbl.t = Hashtbl.create 32 in
      List.iter
        (fun j ->
          match (get_str "kind" j, get_str "name" j) with
          | Some "bench", Some name ->
              let s =
                match Hashtbl.find_opt tbl name with
                | Some s -> s
                | None ->
                    let s =
                      {
                        per_sec = [];
                        ns_per_run = [];
                        per_sec_before = [];
                        ns_before = [];
                      }
                    in
                    Hashtbl.add tbl name s;
                    s
              in
              let before = get_str "phase" j = Some "before" in
              Option.iter
                (fun v ->
                  if before then s.per_sec_before <- v :: s.per_sec_before
                  else s.per_sec <- v :: s.per_sec)
                (get_float "per_sec" j);
              Option.iter
                (fun v ->
                  if before then s.ns_before <- v :: s.ns_before
                  else s.ns_per_run <- v :: s.ns_per_run)
                (get_float "ns_per_run" j)
          | _ -> ())
        lines;
      tbl

let median = function
  | [] -> None
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      Some
        (if n mod 2 = 1 then a.(n / 2)
         else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.)

(* the comparison pool for one name: after/untagged samples, falling
   back to before-phase samples for names recorded only as "before" *)
let pool_per_sec s = if s.per_sec <> [] then s.per_sec else s.per_sec_before
let pool_ns s = if s.ns_per_run <> [] then s.ns_per_run else s.ns_before

type opts = {
  base_path : string;
  cur_path : string;
  max_regress : float option; (* percent; None = informational *)
  only : string option; (* gate only rows with this name prefix *)
  repeat : int option; (* required sample count per gated row in CURRENT *)
}

let usage () =
  prerr_endline
    "usage: bench_compare BASELINE.jsonl CURRENT.jsonl [--max-regress PCT] \
     [--only PREFIX] [--repeat N]";
  exit 1

let parse_args () =
  let rec go acc = function
    | [] -> acc
    | "--max-regress" :: pct :: rest -> (
        match float_of_string_opt pct with
        | Some p when p >= 0. -> go { acc with max_regress = Some p } rest
        | _ -> usage ())
    | "--only" :: prefix :: rest -> go { acc with only = Some prefix } rest
    | "--repeat" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> go { acc with repeat = Some n } rest
        | _ -> usage ())
    | _ -> usage ()
  in
  match Array.to_list Sys.argv with
  | _ :: b :: c :: rest ->
      go
        {
          base_path = b;
          cur_path = c;
          max_regress = None;
          only = None;
          repeat = None;
        }
        rest
  | _ -> usage ()

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let () =
  let o = parse_args () in
  let base = load o.base_path and cur = load o.cur_path in
  let names =
    Hashtbl.fold (fun k _ acc -> k :: acc) base []
    |> List.filter (Hashtbl.mem cur)
    |> List.sort String.compare
  in
  if names = [] then begin
    Printf.printf "bench_compare: no common bench rows between %s and %s\n"
      o.base_path o.cur_path;
    (* an empty gate is a misconfigured gate *)
    if o.max_regress <> None then exit 1
  end
  else begin
    let failures = ref [] in
    let gated name =
      match o.only with
      | None -> true
      | Some prefix -> starts_with ~prefix name
    in
    (* regression fraction: positive = current is worse *)
    let check name regress =
      match o.max_regress with
      | Some pct when gated name && regress *. 100. > pct ->
          failures := (name, regress) :: !failures
      | _ -> ()
    in
    let undersampled name n_cur =
      match (o.max_regress, o.repeat) with
      | Some _, Some r when gated name && n_cur < r ->
          failures := (name, nan) :: !failures;
          true
      | _ -> false
    in
    Printf.printf "%-40s %14s %14s %9s\n" "bench" "baseline" "current"
      "speedup";
    List.iter
      (fun name ->
        let b = Hashtbl.find base name and c = Hashtbl.find cur name in
        let bp = pool_per_sec b and cp = pool_per_sec c in
        let bn = pool_ns b and cn = pool_ns c in
        match (median bp, median cp, median bn, median cn) with
        | Some bv, Some cv, _, _ when bv > 0. ->
            Printf.printf "%-40s %12.0f/s %12.0f/s %8.2fx  (n=%d/%d)\n" name
              bv cv
              (cv /. bv)
              (List.length bp) (List.length cp);
            if not (undersampled name (List.length cp)) then
              check name (1. -. (cv /. bv))
        | _, _, Some bv, Some cv when cv > 0. ->
            Printf.printf "%-40s %12.0fns %12.0fns %8.2fx  (n=%d/%d)\n" name
              bv cv (bv /. cv) (List.length bn) (List.length cn);
            if not (undersampled name (List.length cn)) then
              check name ((cv /. bv) -. 1.)
        | _ ->
            Printf.printf "%-40s %14s %14s %9s\n" name "-" "-" "n/a")
      names;
    match (o.max_regress, !failures) with
    | None, _ -> ()
    | Some pct, [] ->
        let med =
          match o.repeat with
          | Some r -> Printf.sprintf " (medians, >=%d samples)" r
          | None -> " (medians)"
        in
        Printf.printf "gate: no row regressed more than %.1f%%%s\n" pct med
    | Some pct, fs ->
        List.iter
          (fun (name, r) ->
            if Float.is_nan r then
              Printf.printf
                "gate FAILED: %s has fewer than the %d samples --repeat \
                 requires\n"
                name
                (match o.repeat with Some r -> r | None -> 0)
            else
              Printf.printf "gate FAILED: %s regressed %.1f%% (limit %.1f%%)\n"
                name (r *. 100.) pct)
          (List.rev fs);
        exit 1
  end
