(* Diff two bench JSONL files (bench/main.exe --json output, or a
   committed BENCH_prN.json) row by row.

   Rows are matched by their "name" field among records with
   "kind":"bench".  Two metrics are understood:

   - "per_sec"    (throughput; higher is better)
   - "ns_per_run" (latency; lower is better)

   When a file tags rows with "phase" (the committed before/after files
   do), the "after" row wins for a given name; otherwise the last row
   with that name wins.

   By default the comparison is informational: exit 0 whenever both
   files parse (CI runs it as a non-blocking step — shared runners make
   wall-clock thresholds too flaky to gate on).  With

     bench_compare BASELINE CURRENT --max-regress PCT [--only PREFIX]

   it becomes a gate: exit 1 if any compared row regresses by more than
   PCT percent (throughput drop, or latency increase).  --only restricts
   the gated rows to names starting with PREFIX (e.g. "hot/"), so noisy
   Bechamel micro-rows don't flap a gate meant for the checker hot
   paths. *)

module J = Obs.Json

type row = { per_sec : float option; ns_per_run : float option }

let get_float name j = Option.bind (J.member name j) J.to_float_opt
let get_str name j = Option.bind (J.member name j) J.to_string_opt

let load path =
  match Obs.Export.parse_file path with
  | Error msg ->
      Printf.eprintf "bench_compare: %s: %s\n" path msg;
      exit 1
  | Ok lines ->
      let tbl : (string, row) Hashtbl.t = Hashtbl.create 32 in
      List.iter
        (fun j ->
          match (get_str "kind" j, get_str "name" j) with
          | Some "bench", Some name ->
              let replace =
                match get_str "phase" j with
                | Some "before" -> not (Hashtbl.mem tbl name)
                | _ -> true (* "after", untagged: last one wins *)
              in
              if replace then
                Hashtbl.replace tbl name
                  {
                    per_sec = get_float "per_sec" j;
                    ns_per_run = get_float "ns_per_run" j;
                  }
          | _ -> ())
        lines;
      tbl

type opts = {
  base_path : string;
  cur_path : string;
  max_regress : float option; (* percent; None = informational *)
  only : string option; (* gate only rows with this name prefix *)
}

let usage () =
  prerr_endline
    "usage: bench_compare BASELINE.jsonl CURRENT.jsonl [--max-regress PCT] \
     [--only PREFIX]";
  exit 1

let parse_args () =
  let rec go acc = function
    | [] -> acc
    | "--max-regress" :: pct :: rest -> (
        match float_of_string_opt pct with
        | Some p when p >= 0. -> go { acc with max_regress = Some p } rest
        | _ -> usage ())
    | "--only" :: prefix :: rest -> go { acc with only = Some prefix } rest
    | _ -> usage ()
  in
  match Array.to_list Sys.argv with
  | _ :: b :: c :: rest ->
      go { base_path = b; cur_path = c; max_regress = None; only = None } rest
  | _ -> usage ()

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let () =
  let o = parse_args () in
  let base = load o.base_path and cur = load o.cur_path in
  let names =
    Hashtbl.fold (fun k _ acc -> k :: acc) base []
    |> List.filter (Hashtbl.mem cur)
    |> List.sort String.compare
  in
  if names = [] then begin
    Printf.printf "bench_compare: no common bench rows between %s and %s\n"
      o.base_path o.cur_path;
    (* an empty gate is a misconfigured gate *)
    if o.max_regress <> None then exit 1
  end
  else begin
    let failures = ref [] in
    let gated name =
      match o.only with
      | None -> true
      | Some prefix -> starts_with ~prefix name
    in
    (* regression fraction: positive = current is worse *)
    let check name regress =
      match o.max_regress with
      | Some pct when gated name && regress *. 100. > pct ->
          failures := (name, regress) :: !failures
      | _ -> ()
    in
    Printf.printf "%-40s %14s %14s %9s\n" "bench" "baseline" "current"
      "speedup";
    List.iter
      (fun name ->
        let b = Hashtbl.find base name and c = Hashtbl.find cur name in
        match (b, c) with
        | { per_sec = Some bv; _ }, { per_sec = Some cv; _ } when bv > 0. ->
            Printf.printf "%-40s %12.0f/s %12.0f/s %8.2fx\n" name bv cv
              (cv /. bv);
            check name (1. -. (cv /. bv))
        | { ns_per_run = Some bv; _ }, { ns_per_run = Some cv; _ }
          when cv > 0. ->
            Printf.printf "%-40s %12.0fns %12.0fns %8.2fx\n" name bv cv
              (bv /. cv);
            check name ((cv /. bv) -. 1.)
        | _ ->
            Printf.printf "%-40s %14s %14s %9s\n" name "-" "-" "n/a")
      names;
    match (o.max_regress, !failures) with
    | None, _ -> ()
    | Some pct, [] ->
        Printf.printf "gate: no row regressed more than %.1f%%\n" pct
    | Some pct, fs ->
        List.iter
          (fun (name, r) ->
            Printf.printf "gate FAILED: %s regressed %.1f%% (limit %.1f%%)\n"
              name (r *. 100.) pct)
          (List.rev fs);
        exit 1
  end
