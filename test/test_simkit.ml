(* Tests for lib/simkit: fibers (effects), scheduler, RNG, traces. *)

module Fiber = Core.Fiber
module Sched = Core.Sched
module Trace = Core.Trace
module Rng = Core.Rng
module Op = Core.Op

let tc name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ----- rng ------------------------------------------------------------------ *)

let rng_tests =
  [
    tc "deterministic for a seed" (fun () ->
        let a = Rng.create 42L and b = Rng.create 42L in
        for _ = 1 to 50 do
          check_bool "same" true (Rng.next_int64 a = Rng.next_int64 b)
        done);
    tc "different seeds diverge" (fun () ->
        let a = Rng.create 1L and b = Rng.create 2L in
        check_bool "diff" true (Rng.next_int64 a <> Rng.next_int64 b));
    tc "int respects bound" (fun () ->
        let r = Rng.create 7L in
        for _ = 1 to 200 do
          let x = Rng.int r 10 in
          check_bool "bound" true (x >= 0 && x < 10)
        done);
    tc "int rejects non-positive bound" (fun () ->
        Alcotest.check_raises "bound"
          (Invalid_argument "Rng.int: bound must be positive") (fun () ->
            ignore (Rng.int (Rng.create 1L) 0)));
    tc "coin is fair-ish" (fun () ->
        let r = Rng.create 11L in
        let ones = ref 0 in
        for _ = 1 to 1000 do
          if Rng.coin r = 1 then incr ones
        done;
        check_bool "fair" true (!ones > 400 && !ones < 600));
    tc "split yields independent stream" (fun () ->
        let a = Rng.create 5L in
        let b = Rng.split a in
        check_bool "indep" true (Rng.next_int64 a <> Rng.next_int64 b));
    tc "copy preserves state" (fun () ->
        let a = Rng.create 9L in
        ignore (Rng.next_int64 a);
        let b = Rng.copy a in
        check_bool "same" true (Rng.next_int64 a = Rng.next_int64 b));
  ]

(* ----- fibers ------------------------------------------------------------------ *)

let fiber_tests =
  [
    tc "runs to completion without yields" (fun () ->
        let hit = ref false in
        let f = Fiber.spawn ~pid:1 (fun () -> hit := true) in
        check_bool "runnable" true (Fiber.status f = Fiber.Runnable);
        ignore (Fiber.step f);
        check_bool "hit" true !hit;
        check_bool "done" true (Fiber.status f = Fiber.Finished));
    tc "yield suspends exactly there" (fun () ->
        let stage = ref 0 in
        let f =
          Fiber.spawn ~pid:1 (fun () ->
              stage := 1;
              Fiber.yield ();
              stage := 2;
              Fiber.yield ();
              stage := 3)
        in
        ignore (Fiber.step f);
        check_int "stage1" 1 !stage;
        ignore (Fiber.step f);
        check_int "stage2" 2 !stage;
        ignore (Fiber.step f);
        check_int "stage3" 3 !stage;
        check_bool "done" true (Fiber.status f = Fiber.Finished));
    tc "stepping a finished fiber raises" (fun () ->
        let f = Fiber.spawn ~pid:1 (fun () -> ()) in
        ignore (Fiber.step f);
        Alcotest.check_raises "dead"
          (Invalid_argument "Fiber.step: fiber is not runnable") (fun () ->
            ignore (Fiber.step f)));
    tc "exception marks fiber failed" (fun () ->
        let f = Fiber.spawn ~pid:1 (fun () -> failwith "boom") in
        (match Fiber.step f with
        | Fiber.Failed (Failure m) -> Alcotest.(check string) "msg" "boom" m
        | _ -> Alcotest.fail "expected failure");
        check_bool "failed" true
          (match Fiber.status f with Fiber.Failed _ -> true | _ -> false));
    tc "exception after a yield" (fun () ->
        let f =
          Fiber.spawn ~pid:1 (fun () ->
              Fiber.yield ();
              failwith "later")
        in
        ignore (Fiber.step f);
        match Fiber.step f with
        | Fiber.Failed (Failure m) -> Alcotest.(check string) "msg" "later" m
        | _ -> Alcotest.fail "expected failure");
    tc "run_to_completion bounded" (fun () ->
        let f =
          Fiber.spawn ~pid:1 (fun () ->
              while true do
                Fiber.yield ()
              done)
        in
        check_bool "still runnable" true
          (Fiber.run_to_completion f ~max_steps:10 = Fiber.Runnable));
    tc "many fibers interleave independently" (fun () ->
        let log = ref [] in
        let mk tag =
          Fiber.spawn ~pid:0 (fun () ->
              log := (tag ^ "a") :: !log;
              Fiber.yield ();
              log := (tag ^ "b") :: !log)
        in
        let f1 = mk "x" and f2 = mk "y" in
        ignore (Fiber.step f1);
        ignore (Fiber.step f2);
        ignore (Fiber.step f2);
        ignore (Fiber.step f1);
        Alcotest.(check (list string)) "order" [ "xb"; "yb"; "ya"; "xa" ] !log);
  ]

(* ----- scheduler ----------------------------------------------------------------- *)

let sched_tests =
  [
    tc "spawn rejects duplicate pids" (fun () ->
        let s = Sched.create () in
        Sched.spawn s ~pid:1 (fun () -> ());
        Alcotest.check_raises "dup"
          (Invalid_argument "Sched.spawn: duplicate pid 1") (fun () ->
            Sched.spawn s ~pid:1 (fun () -> ())));
    tc "step unknown pid raises" (fun () ->
        let s = Sched.create () in
        Alcotest.check_raises "unknown" (Invalid_argument "Sched: unknown pid 9")
          (fun () -> ignore (Sched.step s ~pid:9)));
    tc "live_pids shrinks as fibers finish" (fun () ->
        let s = Sched.create () in
        Sched.spawn s ~pid:1 (fun () -> ());
        Sched.spawn s ~pid:2 (fun () -> Fiber.yield ());
        Alcotest.(check (list int)) "both" [ 1; 2 ] (Sched.live_pids s);
        ignore (Sched.step s ~pid:1);
        Alcotest.(check (list int)) "one" [ 2 ] (Sched.live_pids s));
    tc "crash removes a process from scheduling" (fun () ->
        let s = Sched.create () in
        Sched.spawn s ~pid:1 (fun () -> Fiber.yield ());
        Sched.crash s ~pid:1;
        check_bool "crashed" true (Sched.crashed s ~pid:1);
        check_bool "not live" true (Sched.live_pids s = []);
        Alcotest.check_raises "step crashed"
          (Invalid_argument "Sched.step: pid 1 has crashed") (fun () ->
            ignore (Sched.step s ~pid:1)));
    tc "round robin is fair" (fun () ->
        let s = Sched.create () in
        let counts = Array.make 3 0 in
        for pid = 0 to 2 do
          Sched.spawn s ~pid (fun () ->
              for _ = 1 to 10 do
                counts.(pid) <- counts.(pid) + 1;
                Fiber.yield ()
              done)
        done;
        ignore (Sched.run s ~policy:Sched.round_robin ~max_steps:15);
        check_bool "balanced" true
          (abs (counts.(0) - counts.(1)) <= 1 && abs (counts.(1) - counts.(2)) <= 1));
    tc "run halts when no fiber is live" (fun () ->
        let s = Sched.create () in
        Sched.spawn s ~pid:1 (fun () -> Fiber.yield ());
        let steps = Sched.run s ~policy:Sched.round_robin ~max_steps:100 in
        check_int "steps" 2 steps);
    tc "scripted policy follows the script" (fun () ->
        let s = Sched.create () in
        let log = ref [] in
        for pid = 1 to 2 do
          Sched.spawn s ~pid (fun () ->
              log := pid :: !log;
              Fiber.yield ();
              log := pid :: !log)
        done;
        ignore
          (Sched.run s ~policy:(Sched.scripted [ 2; 1; 1; 2 ]) ~max_steps:100);
        Alcotest.(check (list int)) "order" [ 2; 1; 1; 2 ] (List.rev !log));
    tc "restart revives a crashed pid with a bumped incarnation" (fun () ->
        let m = Obs.Metrics.create () in
        let s = Sched.create ~metrics:m () in
        let lives = ref [] in
        Sched.spawn s ~pid:1 (fun () ->
            lives := "first" :: !lives;
            Fiber.yield ());
        check_int "fresh pid" 0 (Sched.incarnation s ~pid:1);
        Sched.crash s ~pid:1;
        let inc = Sched.restart s ~pid:1 (fun () -> lives := "second" :: !lives) in
        check_int "bumped" 1 inc;
        check_int "readable" 1 (Sched.incarnation s ~pid:1);
        check_bool "no longer crashed" true (not (Sched.crashed s ~pid:1));
        ignore (Sched.run s ~policy:Sched.round_robin ~max_steps:100);
        check_bool "the new body ran" true (!lives = [ "second" ]);
        check_int "counted" 1 (Obs.Metrics.counter m "sched.restarts");
        (* crash + restart again: incarnations only ever grow *)
        Sched.crash s ~pid:1;
        check_int "second restart" 2
          (Sched.restart s ~pid:1 (fun () -> ())));
    tc "restart demands a crashed pid" (fun () ->
        let s = Sched.create () in
        Sched.spawn s ~pid:1 (fun () -> Fiber.yield ());
        Alcotest.check_raises "running"
          (Invalid_argument "Sched.restart: pid 1 has not crashed") (fun () ->
            ignore (Sched.restart s ~pid:1 (fun () -> ())));
        Alcotest.check_raises "unknown" (Invalid_argument "Sched: unknown pid 9")
          (fun () -> ignore (Sched.restart s ~pid:9 (fun () -> ()))));
    tc "recycle reuses a finished slot without bumping the incarnation"
      (fun () ->
        let m = Obs.Metrics.create () in
        let s = Sched.create ~metrics:m () in
        let log = ref [] in
        Sched.spawn s ~pid:1 (fun () -> log := "first" :: !log);
        ignore (Sched.step s ~pid:1);
        Sched.recycle s ~pid:1 (fun () -> log := "second" :: !log);
        Alcotest.(check (list int)) "live again" [ 1 ] (Sched.live_pids s);
        check_int "no incarnation bump" 0 (Sched.incarnation s ~pid:1);
        ignore (Sched.step s ~pid:1);
        Alcotest.(check (list string)) "both occupants ran"
          [ "second"; "first" ] !log;
        check_int "counted" 1 (Obs.Metrics.counter m "sched.recycles"));
    tc "recycle demands a finished, never-crashed pid" (fun () ->
        let s = Sched.create () in
        Sched.spawn s ~pid:1 (fun () -> Fiber.yield ());
        Alcotest.check_raises "still runnable"
          (Invalid_argument "Sched.recycle: pid 1 has not finished") (fun () ->
            Sched.recycle s ~pid:1 (fun () -> ()));
        Sched.spawn s ~pid:2 (fun () -> ());
        ignore (Sched.step s ~pid:2);
        Sched.crash s ~pid:2;
        Alcotest.check_raises "crashed"
          (Invalid_argument "Sched.recycle: pid 2 has crashed") (fun () ->
            Sched.recycle s ~pid:2 (fun () -> ())));
    tc "coin recorded in trace" (fun () ->
        let s = Sched.create ~seed:13L () in
        Sched.spawn s ~pid:1 (fun () -> ignore (Sched.coin s ~proc:1));
        ignore (Sched.step s ~pid:1);
        match Trace.coins (Sched.trace s) with
        | [ (_, 1, v) ] -> check_bool "bit" true (v = 0 || v = 1)
        | _ -> Alcotest.fail "expected one coin");
    tc "same seed, same coins" (fun () ->
        let flips seed =
          let s = Sched.create ~seed () in
          List.init 20 (fun _ -> Core.Rng.coin (Sched.rng s))
        in
        Alcotest.(check (list int)) "deterministic" (flips 5L) (flips 5L));
  ]

(* ----- trace ------------------------------------------------------------------- *)

let trace_tests =
  [
    tc "invoke/respond build a history" (fun () ->
        let tr = Trace.create () in
        let id = Trace.invoke tr ~proc:1 ~obj:"R" ~kind:Op.Read in
        Trace.respond tr ~op_id:id ~result:(Some (Core.Value.Int 0));
        let h = Trace.history tr in
        check_int "events" 2 (Core.Hist.length h);
        match Core.Hist.ops h with
        | [ o ] ->
            check_bool "complete" true (Op.is_complete o);
            check_bool "result" true (o.Op.result = Some (Core.Value.Int 0))
        | _ -> Alcotest.fail "one op expected");
    tc "op ids are fresh" (fun () ->
        let tr = Trace.create () in
        let a = Trace.invoke tr ~proc:1 ~obj:"R" ~kind:Op.Read in
        let b = Trace.invoke tr ~proc:2 ~obj:"R" ~kind:Op.Read in
        check_bool "fresh" true (a <> b));
    tc "times strictly increase" (fun () ->
        let tr = Trace.create () in
        ignore (Trace.invoke tr ~proc:1 ~obj:"R" ~kind:Op.Read);
        Trace.linearize tr ~op_id:1;
        Trace.coin tr ~proc:1 ~value:0;
        Trace.note tr ~tag:"t" ~text:"x";
        let ts = List.map Trace.entry_time (Trace.entries tr) in
        let rec increasing = function
          | a :: (b :: _ as rest) -> a < b && increasing rest
          | _ -> true
        in
        check_bool "increasing" true (increasing ts));
    tc "lin_time finds the linearization point" (fun () ->
        let tr = Trace.create () in
        let id = Trace.invoke tr ~proc:1 ~obj:"R" ~kind:Op.Read in
        Trace.linearize tr ~op_id:id;
        Trace.respond tr ~op_id:id ~result:None;
        match Trace.lin_time tr ~op_id:id with
        | Some t ->
            let h = Trace.history tr in
            let o = List.hd (Core.Hist.ops h) in
            check_bool "within interval" true
              (o.Op.invoked < t && t < Option.get o.Op.responded)
        | None -> Alcotest.fail "no lin point");
    tc "history ignores annotations" (fun () ->
        let tr = Trace.create () in
        Trace.note tr ~tag:"x" ~text:"y";
        Trace.coin tr ~proc:1 ~value:1;
        check_int "empty" 0 (Core.Hist.length (Trace.history tr)));
  ]

let suite =
  [
    ("simkit.rng", rng_tests);
    ("simkit.fiber", fiber_tests);
    ("simkit.sched", sched_tests);
    ("simkit.trace", trace_tests);
  ]
