(* Test entry point: one Alcotest section per library/module.  Property-
   based tests (QCheck) are registered as alcotest cases alongside the
   unit tests of the module they exercise. *)

let () =
  Alcotest.run "rlin"
    (Test_clocks.suite @ Test_history.suite @ Test_simkit.suite
   @ Test_adv_register.suite @ Test_registers.suite
   @ Test_weak_register.suite @ Test_lincheck.suite
   @ Test_treecheck.suite @ Test_alg3.suite @ Test_fstar.suite
   @ Test_game.suite @ Test_abd.suite @ Test_faults.suite @ Test_stable.suite
   @ Test_mwabd.suite
   @ Test_consensus.suite
   @ Test_multicore.suite @ Test_obs.suite @ Test_pool.suite
   @ Test_check.suite @ Test_parcheck.suite @ Test_tracer.suite
   @ Test_serve.suite @ Test_fleet.suite @ Test_experiments.suite)
