(* Tests for the streaming serve checker: the incremental reachable-set
   checker against the offline decision procedure, the engine against the
   reference oracle on replayed traces, ingest quarantine, budget
   degradation, backpressure shedding, checkpoint/resume plumbing, the
   lenient JSONL parser and the streaming linearizability monitor. *)

module V = Core.Value
module Op = Core.Op
module Event = Core.Event
module Hist = Core.Hist
module L = Core.Lincheck
module Gen = Core.Histgen
module Inc = Core.Increment
module Serve = Core.Serve
module Seg = Serve.Segmenter
module Engine = Serve.Engine
module Verdict = Serve.Verdict
module Reference = Serve.Reference
module Checkpoint = Serve.Checkpoint
module Ingest = Serve.Ingest
module J = Core.Json
module Monitor = Check.Monitor
module Config = Core.Abd_runs.Config

let tc name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---------- incremental checker vs the offline decision procedure ----- *)

let feed_increment ?cap ?state_budget ~entry hist =
  let inc = Inc.create ?cap ?state_budget ~entry () in
  List.iter
    (fun { Event.time; event } ->
      match event with
      | Event.Invoke { op_id; kind; _ } -> Inc.invoke inc ~id:op_id ~kind ~time
      | Event.Respond { op_id; result } ->
          Inc.respond inc ~id:op_id ~result ~time)
    (Hist.events hist);
  Inc.outcome inc

let spec = { Gen.default_spec with Gen.n_procs = 3; n_ops = 12 }

let increment_tests =
  [
    tc "incremental verdict = offline verdict on 200 seeded histories"
      (fun () ->
        let rand = Random.State.make [| 0xC0FFEE |] in
        let run gen =
          let h = QCheck.Gen.generate1 ~rand gen in
          let offline = L.check ~init:spec.Gen.init h in
          match feed_increment ~entry:[ spec.Gen.init ] h with
          | Inc.Pass _ -> check_bool "offline agrees on pass" true offline
          | Inc.Fail -> check_bool "offline agrees on fail" false offline
          | Inc.Unknown _ ->
              Alcotest.fail "unexpected unknown without a budget"
        in
        for _ = 1 to 100 do
          run (Gen.arbitrary_history spec)
        done;
        for _ = 1 to 100 do
          run (Gen.atomic_history spec)
        done);
    tc "state budget degrades to a structured unknown" (fun () ->
        let rand = Random.State.make [| 0xBEEF |] in
        let h = QCheck.Gen.generate1 ~rand (Gen.atomic_history spec) in
        match feed_increment ~state_budget:1 ~entry:[ spec.Gen.init ] h with
        | Inc.Unknown (Inc.State_budget { budget; _ }) ->
            check_int "budget echoed" 1 budget
        | _ -> Alcotest.fail "expected a state-budget unknown");
    tc "op cap degrades to a structured unknown" (fun () ->
        let rand = Random.State.make [| 0xBEEF |] in
        let h = QCheck.Gen.generate1 ~rand (Gen.atomic_history spec) in
        match feed_increment ~cap:2 ~entry:[ spec.Gen.init ] h with
        | Inc.Unknown (Inc.Op_cap { cap; _ }) -> check_int "cap echoed" 2 cap
        | _ -> Alcotest.fail "expected an op-cap unknown");
  ]

(* ---------- chunked line reader ---------------------------------------- *)

let reader_tests =
  [
    tc "partial tails are buffered across chunks" (fun () ->
        let r = Ingest.Reader.create () in
        Alcotest.(check (list string))
          "first chunk" [ "a" ]
          (Ingest.Reader.feed r "a\nb");
        Alcotest.(check (option string))
          "fragment pending" (Some "b") (Ingest.Reader.pending r);
        Alcotest.(check (list string))
          "fragment completed" [ "bc"; "" ]
          (Ingest.Reader.feed r "c\n\nd");
        Alcotest.(check (option string))
          "unterminated final line" (Some "d")
          (Ingest.Reader.take_rest r);
        Alcotest.(check (option string))
          "rest is consumed" None
          (Ingest.Reader.take_rest r));
  ]

(* ---------- engine vs reference oracle vs offline on replayed traces --- *)

let serve ?config lines =
  let verdicts = ref [] in
  let quarantined = ref [] in
  let engine =
    Engine.create ?config
      ~emit:(fun v -> verdicts := v :: !verdicts)
      ~on_quarantine:(fun ~line reason -> quarantined := (line, reason) :: !quarantined)
      ()
  in
  List.iter (Engine.feed_line engine) lines;
  Engine.finish engine;
  (engine, List.rev !verdicts, List.rev !quarantined)

let trace_lines trace = List.map J.to_string (Core.Trace.json_entries trace)

let workload i =
  let seed = Int64.of_int (4200 + i) in
  if i mod 3 = 0 then (
    let r =
      Core.Abd_runs.execute
        {
          Core.Abd_runs.default with
          Core.Abd_runs.seed;
          crash = [ 4 ];
          faults =
            { Core.Faults.none with Core.Faults.drop = 0.05; duplicate = 0.05 };
        }
    in
    (r.Core.Abd_runs.trace, r.Core.Abd_runs.history))
  else if i mod 3 = 1 then (
    let r =
      Core.Scenario.random_alg2_run ~n:3 ~writes_per_proc:2 ~reads_per_proc:2
        ~seed ()
    in
    (r.Core.Scenario.trace, r.Core.Scenario.history))
  else (
    let r =
      Core.Scenario.random_alg4_run ~n:3 ~writes_per_proc:2 ~reads_per_proc:2
        ~seed ()
    in
    (r.Core.Scenario.trace, r.Core.Scenario.history))

let engine_tests =
  [
    tc "engine = reference oracle = offline on benign and faulty traces"
      (fun () ->
        for i = 1 to 9 do
          let trace, hist = workload i in
          let lines = trace_lines trace in
          let engine, verdicts, _ = serve lines in
          check_int "no quarantine on a clean stream" 0
            (Engine.quarantined engine);
          let offline = L.check ~init:(V.Int 0) hist in
          check_bool "verdict conjunction = offline" offline
            (Engine.fail engine = 0);
          let r = Reference.run lines in
          let cmp =
            Reference.compare_verdicts ~engine:verdicts
              ~reference:r.Reference.verdicts
          in
          check_bool "reference agrees" true (Reference.agreed cmp);
          check_int "no skipped objects" 0 cmp.Reference.skipped
        done);
    tc "summary json carries the counters" (fun () ->
        let trace, _ = workload 1 in
        let engine, verdicts, _ = serve (trace_lines trace) in
        match Engine.summary_json engine with
        | J.Obj fields ->
            check_bool "kind" true
              (List.assoc_opt "kind" fields = Some (J.Str "serve_summary"));
            check_bool "lines counted" true
              (List.assoc_opt "lines" fields = Some (J.Int (Engine.lines engine)));
            check_int "verdict counters consistent"
              (List.length verdicts)
              (Engine.ok engine + Engine.fail engine + Engine.unknown engine)
        | _ -> Alcotest.fail "summary is not an object");
  ]

(* ---------- ingest quarantine on mutated streams ----------------------- *)

let quarantine_tests =
  [
    tc "corrupt lines are counted with 1-based numbers, never fatal"
      (fun () ->
        let trace, _ = workload 1 in
        let lines = trace_lines trace in
        let _, clean_verdicts, _ = serve lines in
        let stale =
          List.find
            (fun l ->
              match J.of_string l with
              | Ok j -> J.member "kind" j = Some (J.Str "invoke")
              | Error _ -> false)
            lines
        in
        (* leading garbage, an unknown schema kind, a replayed stale
           invoke, and a truncated tail *)
        let mutated =
          ("%% not json %%" :: "{\"kind\":\"mystery\",\"t\":0}" :: lines)
          @ [ stale; "{\"t\":9,\"ki" ]
        in
        let engine, verdicts, quarantined = serve mutated in
        check_int "exactly the injected lines quarantined" 4
          (Engine.quarantined engine);
        Alcotest.(check (list int))
          "1-based line numbers" [ 1; 2; List.length lines + 3; List.length lines + 4 ]
          (List.map fst quarantined);
        check_bool "verdicts unchanged by the mutations" true
          (List.length verdicts = List.length clean_verdicts
          && List.for_all2 Verdict.equal verdicts clean_verdicts));
    tc "non-monotone time and orphan ids quarantine, dup ids too" (fun () ->
        let ev ~time e = J.to_string (Ingest.event_json ~time e) in
        let inv ~t ~id v =
          ev ~time:t
            (Ingest.Invoke
               { op_id = id; proc = id; obj = "r"; kind = Op.Write (V.Int v) })
        in
        let rsp ~t ~id = ev ~time:t (Ingest.Respond { op_id = id; result = None }) in
        let lines =
          [
            inv ~t:1 ~id:1 10;
            inv ~t:1 ~id:2 20 (* equal time: quarantined *);
            inv ~t:2 ~id:1 30 (* duplicate op id: quarantined *);
            rsp ~t:3 ~id:9 (* orphan respond: quarantined *);
            rsp ~t:4 ~id:1;
          ]
        in
        let engine, verdicts, _ = serve lines in
        check_int "three quarantined" 3 (Engine.quarantined engine);
        check_int "one segment retired" 1 (List.length verdicts);
        check_int "and it passes" 1 (Engine.ok engine));
  ]

(* ---------- budget degradation and backpressure ------------------------ *)

let with_seg seg = { Engine.default_config with Engine.seg }

let degradation_tests =
  [
    tc "tiny state budget yields explicit state-budget unknowns" (fun () ->
        let trace, _ = workload 1 in
        let lines = trace_lines trace in
        let _, clean, _ = serve lines in
        let _, verdicts, _ =
          serve
            ~config:(with_seg { Seg.default_config with Seg.state_budget = 4 })
            lines
        in
        check_int "every segment still decided" (List.length clean)
          (List.length verdicts);
        check_bool "some state-budget unknown" true
          (List.exists
             (fun v ->
               match v.Verdict.outcome with
               | Verdict.Unknown r -> Inc.reason_cause r = "state-budget"
               | _ -> false)
             verdicts));
    tc "tiny op cap yields explicit op-cap unknowns" (fun () ->
        let trace, _ = workload 1 in
        let _, verdicts, _ =
          serve
            ~config:(with_seg { Seg.default_config with Seg.seg_cap = 2 })
            (trace_lines trace)
        in
        check_bool "some op-cap unknown" true
          (List.exists
             (fun v ->
               match v.Verdict.outcome with
               | Verdict.Unknown r -> Inc.reason_cause r = "op-cap"
               | _ -> false)
             verdicts));
    tc "backpressure sheds the overflowing segment" (fun () ->
        let ev ~time e = J.to_string (Ingest.event_json ~time e) in
        let lines =
          [
            ev ~time:1
              (Ingest.Invoke
                 { op_id = 1; proc = 1; obj = "r"; kind = Op.Write (V.Int 7) });
            ev ~time:2
              (Ingest.Invoke { op_id = 2; proc = 2; obj = "r"; kind = Op.Read });
            ev ~time:3 (Ingest.Respond { op_id = 1; result = None });
            ev ~time:4
              (Ingest.Respond { op_id = 2; result = Some (V.Int 7) });
          ]
        in
        let engine, verdicts, _ =
          serve
            ~config:{ Engine.default_config with Engine.max_pending = 1 }
            lines
        in
        check_bool "events were shed" true (Engine.shed_events engine > 0);
        match verdicts with
        | [ v ] -> (
            match v.Verdict.outcome with
            | Verdict.Unknown (Inc.Shed { max_pending; _ }) ->
                check_int "bound echoed" 1 max_pending
            | _ -> Alcotest.fail "expected a shed unknown")
        | _ -> Alcotest.fail "expected exactly one verdict");
  ]

(* ---------- checkpoint / resume ---------------------------------------- *)

let checkpoint_tests =
  [
    tc "checkpoint json round-trips" (fun () ->
        let trace, _ = workload 2 in
        let engine, _, _ = serve (trace_lines trace) in
        (* a scenario trace ends quiescent, so the fed (pre-finish)
           engine state is recoverable; re-feed to capture it *)
        let engine2 =
          Engine.create ~emit:(fun _ -> ()) ()
        in
        List.iter (Engine.feed_line engine2) (trace_lines trace);
        check_bool "quiescent at end of a completed trace" true
          (Engine.quiescent engine2);
        match Engine.checkpoint engine2 with
        | None -> Alcotest.fail "no checkpoint at a quiescent point"
        | Some ck -> (
            ignore engine;
            match Checkpoint.of_json (Checkpoint.json ck) with
            | Error e -> Alcotest.fail e
            | Ok ck' ->
                check_str "byte-identical rendering"
                  (J.to_string (Checkpoint.json ck))
                  (J.to_string (Checkpoint.json ck'))));
    tc "restore + remaining lines replays the full verdict stream" (fun () ->
        let trace, _ = workload 5 in
        let lines = trace_lines trace in
        let _, full, _ = serve lines in
        (* feed line by line, remembering the last mid-stream checkpoint *)
        let emitted = ref [] in
        let engine =
          Engine.create ~emit:(fun v -> emitted := v :: !emitted) ()
        in
        let best = ref None in
        List.iter
          (fun l ->
            Engine.feed_line engine l;
            match Engine.checkpoint engine with
            | Some ck when Checkpoint.verdicts ck > 0 ->
                best := Some (ck, List.rev !emitted)
            | _ -> ())
          lines;
        match !best with
        | None -> Alcotest.fail "no mid-stream quiescent checkpoint"
        | Some (ck, prefix) ->
            let resumed = ref [] in
            let engine' =
              Engine.restore ~emit:(fun v -> resumed := v :: !resumed) ck
            in
            List.iteri
              (fun i l ->
                if i >= ck.Checkpoint.cursor then Engine.feed_line engine' l)
              lines;
            Engine.finish engine';
            let replay = prefix @ List.rev !resumed in
            check_int "same verdict count" (List.length full)
              (List.length replay);
            check_bool "byte-identical verdicts" true
              (List.for_all2 Verdict.equal full replay));
    tc "truncate_jsonl keeps complete lines and rejects short logs"
      (fun () ->
        let path = Filename.temp_file "serve_test" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Out_channel.with_open_bin path (fun oc ->
                output_string oc "{\"a\":1}\n{\"a\":2}\n{\"a\":3}\n{\"a\":4");
            (match Checkpoint.truncate_jsonl ~path ~keep:2 with
            | Error e -> Alcotest.fail e
            | Ok () ->
                check_str "two complete lines survive" "{\"a\":1}\n{\"a\":2}\n"
                  (In_channel.with_open_bin path In_channel.input_all));
            match Checkpoint.truncate_jsonl ~path ~keep:5 with
            | Error _ -> ()
            | Ok () -> Alcotest.fail "short log must be rejected"));
  ]

(* ---------- lenient JSONL export parsing ------------------------------- *)

let lenient_tests =
  [
    tc "parse_lines_lenient separates good records from bad lines"
      (fun () ->
        let good, bad =
          Obs.Export.parse_lines_lenient
            "{\"a\":1}\ngarbage\n\n{\"b\":2}\n{broken"
        in
        check_int "good records" 2 (List.length good);
        Alcotest.(check (list int))
          "1-based bad line numbers" [ 2; 5 ] (List.map fst bad));
    tc "parse_file_lenient reports bad lines without failing" (fun () ->
        let path = Filename.temp_file "serve_test" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Out_channel.with_open_bin path (fun oc ->
                output_string oc "{\"a\":1}\nnope\n{\"b\":2}\n");
            match Obs.Export.parse_file_lenient path with
            | Error e -> Alcotest.fail e
            | Ok (good, bad) ->
                check_int "good records" 2 (List.length good);
                Alcotest.(check (list int))
                  "bad line numbers" [ 2 ] (List.map fst bad)));
  ]

(* ---------- streaming linearizability monitor -------------------------- *)

let violation_str = function
  | None -> "none"
  | Some v -> J.to_string (Monitor.violation_json v)

let monitor_tests =
  [
    tc "streaming monitor reports exactly the stock monitor's verdicts"
      (fun () ->
        let configs =
          Config.default
          :: List.map
               (fun seed ->
                 {
                   Config.default with
                   Config.writes_each = 2;
                   reads_each = 2;
                   quorum = Some 2;
                   seed = Int64.of_int seed;
                   faults =
                     {
                       Simkit.Faults.none with
                       Simkit.Faults.drop = 0.05;
                     };
                 })
               [ 1; 2; 3; 4; 5 ]
        in
        List.iter
          (fun cfg ->
            let stock =
              Monitor.run_config ~monitors:[ Monitor.linearizability ] cfg
            in
            let streaming =
              Monitor.run_config
                ~monitors:[ Monitor.linearizability_streaming ]
                cfg
            in
            check_str "same violation (or none)" (violation_str stock)
              (violation_str streaming))
          configs);
    tc "with_streaming_check swaps by name only" (fun () ->
        let swapped = Monitor.with_streaming_check Monitor.standard in
        check_int "same monitor count"
          (List.length Monitor.standard)
          (List.length swapped);
        check_bool "names preserved" true
          (List.for_all2
             (fun a b -> a.Monitor.name = b.Monitor.name)
             Monitor.standard swapped));
  ]

let suite =
  [
    ("serve:increment", increment_tests);
    ("serve:reader", reader_tests);
    ("serve:engine", engine_tests);
    ("serve:quarantine", quarantine_tests);
    ("serve:degradation", degradation_tests);
    ("serve:checkpoint", checkpoint_tests);
    ("serve:lenient-export", lenient_tests);
    ("serve:monitor", monitor_tests);
  ]
