(* Tests for the deterministic fault-injection layer: Simkit.Faults plans
   and draws, Net's fault policy and dead-letter handling, the scheduler
   watchdog, and end-to-end determinism + termination of the retransmitting
   ABD registers under faults. *)

module Sched = Core.Sched
module Net = Core.Net
module Faults = Core.Faults
module Runs = Core.Abd_runs

let tc name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let plan ?(drop = 0.) ?(dup = 0.) ?(delay = 0.) ?(delay_bound = 0)
    ?(crash_at = []) ?(recover_at = []) ?(partitions = []) () =
  {
    Faults.drop;
    duplicate = dup;
    delay;
    delay_bound;
    crash_at;
    recover_at;
    partitions;
  }

(* ----- plans and draws ------------------------------------------------------ *)

let faults_tests =
  [
    tc "validate rejects malformed plans" (fun () ->
        let bad p = try Faults.validate p; false with Invalid_argument _ -> true in
        check_bool "prob > 1" true (bad (plan ~drop:1.5 ()));
        check_bool "negative prob" true (bad (plan ~dup:(-0.1) ()));
        check_bool "sum > 1" true (bad (plan ~drop:0.5 ~dup:0.6 ()));
        check_bool "delay without bound" true (bad (plan ~delay:0.2 ()));
        check_bool "negative crash step" true
          (bad (plan ~crash_at:[ (-1, 3) ] ()));
        check_bool "benign ok" true (not (bad Faults.none));
        check_bool "mixed ok" true
          (not (bad (plan ~drop:0.2 ~dup:0.1 ~delay:0.1 ~delay_bound:4 ()))));
    tc "validate rejects bad partition intervals" (fun () ->
        let bad p = try Faults.validate p; false with Invalid_argument _ -> true in
        check_bool "negative start" true
          (bad (plan ~partitions:[ (-5, 10, [ 1 ]) ] ()));
        check_bool "inverted (non-positive length)" true
          (bad (plan ~partitions:[ (10, 0, [ 1 ]) ] ()));
        check_bool "empty isolated set" true
          (bad (plan ~partitions:[ (10, 5, []) ] ()));
        check_bool "overlapping intervals" true
          (bad (plan ~partitions:[ (0, 100, [ 1 ]); (50, 100, [ 2 ]) ] ()));
        check_bool "touching intervals ok" true
          (not (bad (plan ~partitions:[ (0, 50, [ 1 ]); (50, 50, [ 2 ]) ] ())));
        check_bool "unsorted but disjoint ok" true
          (not (bad (plan ~partitions:[ (100, 10, [ 2 ]); (0, 10, [ 1 ]) ] ()))));
    tc "plans round-trip through JSON and reject malformed input" (fun () ->
        let p =
          plan ~drop:0.1 ~dup:0.05 ~delay:0.2 ~delay_bound:4
            ~crash_at:[ (150, 3); (300, 4) ]
            ~partitions:[ (10, 40, [ 0; 2 ]) ]
            ()
        in
        (match Faults.plan_of_json (Faults.plan_json p) with
        | Ok p' -> check_bool "round-trip" true (p = p')
        | Error e -> Alcotest.fail e);
        (match Faults.plan_of_json (Faults.plan_json Faults.none) with
        | Ok p' -> check_bool "benign round-trip" true (p' = Faults.none)
        | Error e -> Alcotest.fail e);
        (* the parser re-validates: a hand-edited corpus entry cannot
           smuggle in an illegal plan *)
        let evil = Faults.plan_json (plan ()) in
        let evil =
          match evil with
          | Obs.Json.Obj fields ->
              Obs.Json.Obj
                (List.map
                   (function
                     | "drop", _ -> ("drop", Obs.Json.Float 2.5)
                     | kv -> kv)
                   fields)
          | _ -> assert false
        in
        check_bool "illegal probability rejected" true
          (Result.is_error (Faults.plan_of_json evil)));
    tc "shrink_plan descends one axis at a time" (fun () ->
        let p =
          plan ~drop:0.1 ~delay:0.05 ~delay_bound:4
            ~crash_at:[ (150, 3); (300, 4) ]
            ~partitions:[ (10, 40, [ 0 ]) ]
            ()
        in
        let cands = Faults.shrink_plan p in
        List.iter Faults.validate cands;
        check_bool "drop steps down the ladder" true
          (List.exists (fun q -> q.Faults.drop = 0.05 && q.Faults.delay = 0.05) cands);
        check_bool "crash entries dropped one at a time" true
          (List.exists (fun q -> q.Faults.crash_at = [ (300, 4) ]) cands
          && List.exists (fun q -> q.Faults.crash_at = [ (150, 3) ]) cands);
        check_bool "partition dropped" true
          (List.exists (fun q -> q.Faults.partitions = []) cands);
        check_bool "benign has no candidates" true
          (Faults.shrink_plan Faults.none = []));
    tc "none is benign; delivery-affecting is detected" (fun () ->
        check_bool "benign" true (Faults.is_benign Faults.none);
        check_bool "no delivery effect" false
          (Faults.affects_delivery Faults.none);
        check_bool "crash-only is not benign" false
          (Faults.is_benign (plan ~crash_at:[ (10, 3) ] ()));
        check_bool "crash-only does not affect delivery" false
          (Faults.affects_delivery (plan ~crash_at:[ (10, 3) ] ()));
        check_bool "drop affects delivery" true
          (Faults.affects_delivery (plan ~drop:0.1 ())));
    tc "same seed gives the same action stream" (fun () ->
        let p = plan ~drop:0.3 ~dup:0.2 ~delay:0.2 ~delay_bound:3 () in
        let stream () =
          let f = Faults.create ~seed:7L p in
          List.init 200 (fun _ -> Faults.draw f ~deferrals:0)
        in
        check_bool "identical" true (stream () = stream ()));
    tc "extreme probabilities behave as advertised" (fun () ->
        let all p deferrals =
          let f = Faults.create ~seed:3L p in
          List.init 100 (fun _ -> Faults.draw f ~deferrals)
        in
        check_bool "drop=1 always drops" true
          (List.for_all (( = ) Faults.Drop) (all (plan ~drop:1. ()) 0));
        check_bool "dup=1 always duplicates" true
          (List.for_all (( = ) Faults.Duplicate) (all (plan ~dup:1. ()) 0));
        let d = plan ~delay:1. ~delay_bound:2 () in
        check_bool "delay=1 defers under the bound" true
          (List.for_all (( = ) Faults.Defer) (all d 0));
        check_bool "delay=1 delivers at the bound" true
          (List.for_all (( = ) Faults.Deliver) (all d 2)));
    tc "partitions cut exactly one side during the interval" (fun () ->
        let f =
          Faults.create (plan ~partitions:[ (10, 5, [ 1; 2 ]) ] ())
        in
        check_bool "across the cut" true
          (Faults.partitioned f ~step:10 ~src:1 ~dst:3);
        check_bool "both isolated" false
          (Faults.partitioned f ~step:12 ~src:1 ~dst:2);
        check_bool "both outside" false
          (Faults.partitioned f ~step:12 ~src:3 ~dst:4);
        check_bool "before" false (Faults.partitioned f ~step:9 ~src:1 ~dst:3);
        check_bool "after" false (Faults.partitioned f ~step:15 ~src:1 ~dst:3);
        check_bool "active" true (Faults.partition_active f ~step:14);
        check_bool "inactive" false (Faults.partition_active f ~step:15));
    tc "crashes_due releases each node once, by step" (fun () ->
        let f =
          Faults.create (plan ~crash_at:[ (30, 4); (10, 3) ] ())
        in
        check_bool "nothing early" true (Faults.crashes_due f ~step:5 = []);
        check_bool "first due" true (Faults.crashes_due f ~step:10 = [ 3 ]);
        check_bool "not twice" true (Faults.crashes_due f ~step:20 = []);
        check_bool "second due" true (Faults.crashes_due f ~step:99 = [ 4 ]);
        check_bool "drained" true (Faults.crashes_due f ~step:999 = []));
    tc "validate demands crash/recover alternation per node" (fun () ->
        let bad p = try Faults.validate p; false with Invalid_argument _ -> true in
        check_bool "paired ok" true
          (not (bad (plan ~crash_at:[ (10, 3) ] ~recover_at:[ (50, 3) ] ())));
        check_bool "crash-recover-crash ok" true
          (not
             (bad
                (plan
                   ~crash_at:[ (10, 3); (100, 3) ]
                   ~recover_at:[ (50, 3) ]
                   ())));
        check_bool "recovery of a never-crashed node" true
          (bad (plan ~recover_at:[ (50, 3) ] ()));
        check_bool "recovery before its crash" true
          (bad (plan ~crash_at:[ (50, 3) ] ~recover_at:[ (10, 3) ] ()));
        check_bool "recovery at the crash step" true
          (bad (plan ~crash_at:[ (50, 3) ] ~recover_at:[ (50, 3) ] ()));
        check_bool "double recovery" true
          (bad (plan ~crash_at:[ (10, 3) ] ~recover_at:[ (50, 3); (60, 3) ] ()));
        check_bool "double crash without recovery" true
          (bad (plan ~crash_at:[ (10, 3); (20, 3) ] ()));
        check_bool "negative recovery step" true
          (bad (plan ~crash_at:[ (10, 3) ] ~recover_at:[ (-1, 3) ] ())));
    tc "recovery plans round-trip through JSON; old entries default" (fun () ->
        let p =
          plan
            ~crash_at:[ (150, 3); (300, 4) ]
            ~recover_at:[ (400, 3); (500, 4) ]
            ()
        in
        (match Faults.plan_of_json (Faults.plan_json p) with
        | Ok p' -> check_bool "round-trip" true (p = p')
        | Error e -> Alcotest.fail e);
        (* a plan serialized before the crash-recovery model has no
           "recover_at" field: it must parse to an empty schedule *)
        let old =
          match Faults.plan_json (plan ~crash_at:[ (10, 3) ] ()) with
          | Obs.Json.Obj fields ->
              Obs.Json.Obj (List.filter (fun (k, _) -> k <> "recover_at") fields)
          | _ -> assert false
        in
        match Faults.plan_of_json old with
        | Ok p' -> check_bool "defaults to []" true (p'.Faults.recover_at = [])
        | Error e -> Alcotest.fail e);
    tc "shrinking a crash drops its paired recovery" (fun () ->
        let p =
          plan
            ~crash_at:[ (150, 3); (300, 4) ]
            ~recover_at:[ (400, 3); (500, 4) ]
            ()
        in
        let cands = Faults.shrink_plan p in
        List.iter Faults.validate cands;
        check_bool "pair (3) dropped together" true
          (List.exists
             (fun q ->
               q.Faults.crash_at = [ (300, 4) ]
               && q.Faults.recover_at = [ (500, 4) ])
             cands);
        check_bool "pair (4) dropped together" true
          (List.exists
             (fun q ->
               q.Faults.crash_at = [ (150, 3) ]
               && q.Faults.recover_at = [ (400, 3) ])
             cands);
        check_bool "a recovery alone can be dropped" true
          (List.exists
             (fun q ->
               q.Faults.crash_at = p.Faults.crash_at
               && q.Faults.recover_at = [ (500, 4) ])
             cands));
    tc "recoveries_due releases each node once, by step" (fun () ->
        let f =
          Faults.create
            (plan
               ~crash_at:[ (5, 3); (5, 4) ]
               ~recover_at:[ (30, 4); (10, 3) ]
               ())
        in
        check_bool "nothing early" true (Faults.recoveries_due f ~step:7 = []);
        check_bool "first due" true (Faults.recoveries_due f ~step:10 = [ 3 ]);
        check_bool "not twice" true (Faults.recoveries_due f ~step:20 = []);
        check_bool "second due" true (Faults.recoveries_due f ~step:99 = [ 4 ]);
        check_bool "drained" true (Faults.recoveries_due f ~step:999 = []));
  ]

(* ----- the network under faults -------------------------------------------- *)

let net_fault_tests =
  [
    tc "drop=1 loses every delivery attempt; deliver_all bypasses" (fun () ->
        let metrics = Obs.Metrics.create () in
        let sched = Sched.create ~metrics () in
        let net : int Net.t = Net.create ~sched ~n:3 in
        Net.set_faults net (Faults.create (plan ~drop:1. ()));
        Net.send net ~src:0 ~dst:1 7;
        check_bool "attempted" true (Net.deliver_now net ~dst:1);
        check_int "dropped, not delivered" 0 (Net.mailbox_size net ~pid:1);
        check_int "counted" 1 (Obs.Metrics.counter metrics "net.faults.dropped");
        Net.send net ~src:0 ~dst:1 8;
        Net.deliver_all net;
        check_int "drain is fault-free" 1 (Net.mailbox_size net ~pid:1));
    tc "dup=1 delivers and re-enqueues a copy" (fun () ->
        let metrics = Obs.Metrics.create () in
        let sched = Sched.create ~metrics () in
        let net : int Net.t = Net.create ~sched ~n:3 in
        Net.set_faults net (Faults.create (plan ~dup:1. ()));
        Net.send net ~src:0 ~dst:1 9;
        check_bool "attempted" true (Net.deliver_now net ~dst:1);
        check_int "delivered once" 1 (Net.mailbox_size net ~pid:1);
        check_int "copy still in flight" 1 (Net.in_flight net);
        check_int "counted" 1
          (Obs.Metrics.counter metrics "net.faults.duplicated"));
    tc "deferrals are bounded by delay_bound" (fun () ->
        let sched = Sched.create ~metrics:(Obs.Metrics.create ()) () in
        let net : int Net.t = Net.create ~sched ~n:3 in
        Net.set_faults net (Faults.create (plan ~delay:1. ~delay_bound:3 ()));
        Net.send net ~src:0 ~dst:1 5;
        (* 3 deferrals allowed, the 4th attempt must deliver *)
        let attempts = ref 0 in
        while Net.mailbox_size net ~pid:1 = 0 do
          incr attempts;
          ignore (Net.deliver_now net ~dst:1)
        done;
        check_int "bound + 1 attempts" 4 !attempts);
    tc "a crash-only plan is not attached at all" (fun () ->
        let sched = Sched.create ~metrics:(Obs.Metrics.create ()) () in
        let net : int Net.t = Net.create ~sched ~n:3 in
        Net.set_faults net (Faults.create (plan ~crash_at:[ (5, 1) ] ()));
        check_bool "benign fast path" true (Net.faults net = None));
    tc "partitioned messages are held, then flow after healing" (fun () ->
        let metrics = Obs.Metrics.create () in
        let sched = Sched.create ~metrics () in
        let net : int Net.t = Net.create ~sched ~n:3 in
        (* partition {1} away for the first 4 scheduler steps *)
        Net.set_faults net
          (Faults.create (plan ~partitions:[ (0, 4, [ 1 ]) ] ()));
        Sched.spawn sched ~pid:2 (fun () ->
            while true do
              Core.Fiber.yield ()
            done);
        Net.send net ~src:0 ~dst:1 11;
        check_bool "attempt while cut" true (Net.deliver_now net ~dst:1);
        check_int "held" 0 (Net.mailbox_size net ~pid:1);
        check_int "still in flight" 1 (Net.in_flight net);
        for _ = 1 to 4 do
          ignore (Sched.step sched ~pid:2)
        done;
        check_bool "attempt after healing" true (Net.deliver_now net ~dst:1);
        check_int "delivered" 1 (Net.mailbox_size net ~pid:1));
    tc "mark_dead dead-letters queued and future mail" (fun () ->
        let metrics = Obs.Metrics.create () in
        let sched = Sched.create ~metrics () in
        let net : int Net.t = Net.create ~sched ~n:3 in
        Net.send net ~src:0 ~dst:1 1;
        ignore (Net.deliver_now net ~dst:1);
        check_int "queued" 1 (Net.mailbox_size net ~pid:1);
        Net.mark_dead net ~pid:1;
        check_bool "dead" true (Net.is_dead net ~pid:1);
        check_int "queue purged" 0 (Net.mailbox_size net ~pid:1);
        Net.send net ~src:0 ~dst:1 2;
        ignore (Net.deliver_now net ~dst:1);
        check_int "future mail dropped" 0 (Net.mailbox_size net ~pid:1);
        check_int "both counted" 2
          (Obs.Metrics.counter metrics "net.dead_letters");
        (* idempotent *)
        Net.mark_dead net ~pid:1;
        check_int "no double count" 2
          (Obs.Metrics.counter metrics "net.dead_letters"));
    tc "ring buffer preserves FIFO per destination across growth" (fun () ->
        let sched = Sched.create ~metrics:(Obs.Metrics.create ()) () in
        let net : int Net.t = Net.create ~sched ~n:3 in
        (* push enough to force several buffer growths, interleaving dsts *)
        for i = 1 to 100 do
          Net.send net ~src:0 ~dst:(i mod 2) i
        done;
        Net.drop_to net ~dst:0;
        check_int "half left" 50 (Net.in_flight net);
        let got = ref [] in
        while Net.deliver_now net ~dst:1 do
          ()
        done;
        let rec drain () =
          match Net.try_recv net ~pid:1 with
          | Some v ->
              got := v :: !got;
              drain ()
          | None -> ()
        in
        drain ();
        let expect = List.init 50 (fun i -> (2 * (49 - i)) + 1) in
        check_bool "oldest-first order kept" true (!got = expect));
  ]

(* ----- the scheduler watchdog ------------------------------------------------ *)

let watchdog_tests =
  [
    tc "the watchdog fires on a hand-built livelock" (fun () ->
        let metrics = Obs.Metrics.create () in
        let sched = Sched.create ~metrics () in
        let net : int Net.t = Net.create ~sched ~n:2 in
        (* two fibers waiting on messages nobody will ever send *)
        Sched.spawn sched ~pid:0 (fun () -> ignore (Net.recv net ~pid:0));
        Sched.spawn sched ~pid:1 (fun () -> ignore (Net.recv net ~pid:1));
        let fired =
          try
            ignore
              (Sched.run sched
                 ~watchdog:(Net.watchdog ~window:50 net)
                 ~policy:Sched.round_robin ~max_steps:100_000);
            None
          with Sched.Stalled diag -> Some diag
        in
        (match fired with
        | None -> Alcotest.fail "watchdog did not fire"
        | Some diag ->
            let msg = Sched.stall_message diag in
            let has needle =
              let nl = String.length needle and dl = String.length msg in
              let rec go i =
                i + nl <= dl && (String.sub msg i nl = needle || go (i + 1))
              in
              go 0
            in
            check_bool "names the window" true (has "no progress for 50 steps");
            check_bool "lists fibers" true (has "p0: runnable");
            check_bool "includes the network state" true (has "mailboxes");
            (* the structured record carries the same facts *)
            check_int "window" 50 diag.Sched.window;
            check_bool "both fibers listed" true
              (List.length diag.Sched.fibers = 2);
            (* and it exports as structured JSON for the obs layer *)
            let j = Sched.stall_json diag in
            check_bool "kind" true
              (Obs.Json.member "kind" j = Some (Obs.Json.Str "stall"));
            check_bool "window field" true
              (Obs.Json.member "window" j = Some (Obs.Json.Int 50));
            check_bool "fibers field" true
              (match Option.bind (Obs.Json.member "fibers" j) Obs.Json.to_list_opt with
              | Some fs -> List.length fs = 2
              | None -> false));
        check_int "metric fired" 1
          (Obs.Metrics.counter metrics "sched.watchdog.fired"));
    tc "the watchdog stays quiet while messages flow" (fun () ->
        let metrics = Obs.Metrics.create () in
        let sched = Sched.create ~metrics () in
        let net : int Net.t = Net.create ~sched ~n:2 in
        (* a ping-pong pair: constant progress, never finishes *)
        let rec bounce me other () =
          match Net.try_recv net ~pid:me with
          | Some v ->
              Net.send net ~src:me ~dst:other (v + 1);
              Core.Fiber.yield ();
              bounce me other ()
          | None ->
              Core.Fiber.yield ();
              bounce me other ()
        in
        Sched.spawn sched ~pid:0 (bounce 0 1);
        Sched.spawn sched ~pid:1 (bounce 1 0);
        Net.send net ~src:0 ~dst:1 0;
        let rng = Core.Rng.create 5L in
        let policy = Net.auto_deliver_policy net ~rng Sched.round_robin in
        let steps =
          Sched.run sched
            ~watchdog:(Net.watchdog ~window:100 net)
            ~policy ~max_steps:5_000
        in
        check_int "ran the full budget without stalling" 5_000 steps;
        check_int "never fired" 0
          (Obs.Metrics.counter metrics "sched.watchdog.fired"));
  ]

(* ----- end-to-end: determinism and termination under faults ------------------ *)

let lossy_plan =
  plan ~drop:0.15 ~dup:0.05 ~delay:0.05 ~delay_bound:4 ()

let e2e_tests =
  [
    tc "same seed + same fault plan = byte-identical run" (fun () ->
        let w = { Runs.default with faults = lossy_plan; seed = 99L } in
        let snap () =
          let run = Runs.execute ~metrics:(Obs.Metrics.create ()) w in
          ( run.Runs.completed,
            run.Runs.steps,
            List.map Obs.Json.to_string
              (Core.Trace.json_entries run.Runs.trace) )
        in
        let c1, s1, t1 = snap () in
        let c2, s2, t2 = snap () in
        check_bool "completed" true (c1 && c2);
        check_int "same steps" s1 s2;
        check_bool "identical trace JSONL" true (t1 = t2));
    tc "different fault seeds diverge (the faults really fire)" (fun () ->
        let metrics = Obs.Metrics.create () in
        let w = { Runs.default with faults = lossy_plan; seed = 99L } in
        ignore (Runs.execute ~metrics w);
        check_bool "dropped something" true
          (Obs.Metrics.counter metrics "net.faults.dropped" > 0));
    tc "ABD terminates under every single-minority crash schedule" (fun () ->
        (* readers are nodes 1-2; every crashable subset of {3,4}, crashed
           at several points of the step clock, under lossy links *)
        List.iter
          (fun crash_at ->
            let w =
              {
                Runs.default with
                faults = { lossy_plan with Faults.crash_at };
                seed = 7L;
              }
            in
            let run = Runs.execute w in
            check_bool "completed" true run.Runs.completed;
            check_bool "no stall" true (run.Runs.stalled = None);
            check_bool "checks pass" true (Runs.check run = Ok ()))
          [
            [ (0, 3) ];
            [ (200, 4) ];
            [ (100, 3); (400, 4) ];
            [ (0, 3); (0, 4) ];
          ]);
    tc "MW-ABD terminates and stays linearizable under faults" (fun () ->
        let run =
          Runs.execute_mw
            ~faults:{ lossy_plan with Faults.crash_at = [ (150, 3) ] }
            ~n:5 ~writers:[ 0; 1 ] ~writes_each:2 ~readers:[ 2 ] ~reads_each:2
            ~seed:11L ()
        in
        check_bool "completed" true run.Runs.completed;
        check_bool "linearizable" true
          (Core.Lincheck.check ~init:(Core.Value.Int 0) run.Runs.history));
    tc "ABD survives crash+recover schedules under lossy links" (fun () ->
        let metrics = Obs.Metrics.create () in
        let w =
          {
            Runs.default with
            faults =
              {
                lossy_plan with
                Faults.crash_at = [ (100, 3); (300, 4) ];
                recover_at = [ (250, 3); (450, 4) ];
              };
            seed = 23L;
          }
        in
        let run = Runs.execute ~metrics w in
        check_bool "completed" true run.Runs.completed;
        check_bool "no stall" true (run.Runs.stalled = None);
        check_bool "checks pass" true (Runs.check ~metrics run = Ok ());
        check_int "both nodes restarted" 2
          (Obs.Metrics.counter metrics "sched.restarts");
        check_int "one handshake per restart" 2
          (Obs.Metrics.counter metrics "reg.abd.state_transfer");
        check_int "no amnesia under write-through persistence" 0
          (Obs.Metrics.counter metrics "reg.abd.amnesia"));
    tc "recovery runs are byte-identical across executions" (fun () ->
        let w =
          {
            Runs.default with
            faults =
              {
                lossy_plan with
                Faults.crash_at = [ (100, 3) ];
                recover_at = [ (280, 3) ];
              };
            seed = 31L;
          }
        in
        let snap () =
          let run = Runs.execute ~metrics:(Obs.Metrics.create ()) w in
          ( run.Runs.completed,
            run.Runs.steps,
            List.map Obs.Json.to_string
              (Core.Trace.json_entries run.Runs.trace) )
        in
        check_bool "identical" true (snap () = snap ()));
    tc "crashing a majority via the plan is rejected" (fun () ->
        Alcotest.check_raises "majority"
          (Invalid_argument "Runs.execute: crash set must be a strict minority")
          (fun () ->
            ignore
              (Runs.execute
                 {
                   Runs.default with
                   faults =
                     {
                       Faults.none with
                       Faults.crash_at = [ (0, 2); (0, 3); (0, 4) ];
                     };
                 })));
    tc "stale replies are counted, quorums still distinct" (fun () ->
        (* duplication-heavy plan: every duplicated ack of a counted node
           is ignored for the quorum but the run still completes *)
        let metrics = Obs.Metrics.create () in
        let w =
          {
            Runs.default with
            faults = plan ~dup:0.3 ~delay:0.1 ~delay_bound:3 ();
            seed = 17L;
          }
        in
        let run = Runs.execute ~metrics w in
        check_bool "completed" true run.Runs.completed;
        check_bool "duplicates happened" true
          (Obs.Metrics.counter metrics "net.faults.duplicated" > 0);
        check_bool "checks pass" true (Runs.check ~metrics run = Ok ()));
  ]

let suite =
  [
    ("simkit.faults", faults_tests);
    ("msgpass.net.faults", net_fault_tests);
    ("simkit.watchdog", watchdog_tests);
    ("msgpass.faulty_runs", e2e_tests);
  ]
