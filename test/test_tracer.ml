(* The causal flight recorder: ring semantics, canonical JSON, causal
   parents on a real ABD run, exporter validity, determinism across
   re-executions and [-j], and the violation post-mortem pipeline. *)

module Tracer = Obs.Tracer
module Runs = Msgpass.Runs
module Config = Msgpass.Runs.Config
module Monitor = Check.Monitor

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let tc name f = Alcotest.test_case name `Quick f
let tcs name f = Alcotest.test_case name `Slow f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let emit_n t n =
  for i = 0 to n - 1 do
    ignore (Tracer.emit t ~sim:i ~cat:"test" (Printf.sprintf "e%d" i))
  done

let ring_tests =
  [
    tc "ring keeps the last K events after wrapping" (fun () ->
        let t = Tracer.create ~capacity:8 () in
        emit_n t 20;
        check_int "emitted" 20 (Tracer.emitted t);
        check_int "capacity" 8 (Tracer.capacity t);
        let evs = Tracer.events t in
        check_int "retained" 8 (List.length evs);
        Alcotest.(check (list int))
          "oldest-first seqs 12..19"
          [ 12; 13; 14; 15; 16; 17; 18; 19 ]
          (List.map (fun (e : Tracer.event) -> e.Tracer.seq) evs));
    tc "recent returns the tail" (fun () ->
        let t = Tracer.create ~capacity:16 () in
        emit_n t 10;
        Alcotest.(check (list int))
          "last 3" [ 7; 8; 9 ]
          (List.map
             (fun (e : Tracer.event) -> e.Tracer.seq)
             (Tracer.recent ~k:3 t)));
    tc "clear resets seq, ctx and retention" (fun () ->
        let t = Tracer.create ~capacity:4 () in
        emit_n t 6;
        Tracer.set_ctx t 5;
        Tracer.clear t;
        check_int "emitted" 0 (Tracer.emitted t);
        check_int "ctx" (-1) (Tracer.ctx t);
        check_bool "empty" true (Tracer.events t = []);
        check_int "fresh seq" 0 (Tracer.emit t ~sim:0 ~cat:"test" "e"));
    tc "disarmed tracer records nothing and allocQ-free emit returns -1"
      (fun () ->
        let t = Tracer.create ~capacity:8 ~armed:false () in
        check_int "emit" (-1) (Tracer.emit t ~sim:0 ~cat:"test" "e");
        Tracer.set_ctx t 3;
        check_int "ctx unchanged" (-1) (Tracer.ctx t);
        check_int "emitted" 0 (Tracer.emitted t);
        check_bool "no events" true (Tracer.events t = []));
    tc "the null tracer can never be armed" (fun () ->
        check_bool "disarmed" false (Tracer.armed Tracer.null);
        check_int "emit" (-1) (Tracer.emit Tracer.null ~sim:0 ~cat:"t" "e");
        match Tracer.set_armed Tracer.null true with
        | () -> Alcotest.fail "arming null should raise"
        | exception Invalid_argument _ -> ());
    tc "emit inherits the ambient ctx as parent" (fun () ->
        let t = Tracer.create () in
        let a = Tracer.emit t ~sim:0 ~cat:"test" "a" in
        Tracer.set_ctx t a;
        let b = Tracer.emit t ~sim:1 ~cat:"test" "b" in
        let c = Tracer.emit t ~parent:(-1) ~sim:2 ~cat:"test" "c" in
        let find s =
          List.find (fun (e : Tracer.event) -> e.Tracer.seq = s)
            (Tracer.events t)
        in
        check_int "b's parent is a" a (find b).Tracer.parent;
        check_int "explicit parent wins" (-1) (find c).Tracer.parent);
  ]

let json_tests =
  [
    tc "events round-trip through canonical JSON" (fun () ->
        let t = Tracer.create () in
        let a = Tracer.emit t ~track:3 ~sim:7 ~cat:"net" "send"
            ~args:[ ("dst", Obs.Json.Int 101); ("note", Obs.Json.Str "x") ]
        in
        Tracer.set_ctx t a;
        ignore (Tracer.emit t ~track:101 ~sim:9 ~cat:"net" "deliver");
        List.iter
          (fun ev ->
            let j = Tracer.event_json ev in
            (match Tracer.validate_event_json j with
            | Ok () -> ()
            | Error e -> Alcotest.fail e);
            match Tracer.event_of_json j with
            | Error e -> Alcotest.fail e
            | Ok ev' ->
                (* wall_ms is deliberately absent from the canonical form *)
                check_bool "round-trip" true
                  ({ ev with Tracer.wall_ms = 0. } = ev'))
          (Tracer.events t));
    tc "canonical JSON omits wall_ms unless asked" (fun () ->
        let t = Tracer.create () in
        ignore (Tracer.emit t ~sim:0 ~cat:"test" "e");
        let ev = List.hd (Tracer.events t) in
        check_bool "no wall_ms" true
          (Obs.Json.member "wall_ms" (Tracer.event_json ev) = None);
        check_bool "wall_ms on request" true
          (Obs.Json.member "wall_ms" (Tracer.event_json ~wall:true ev)
          <> None));
    tc "validate_event_json rejects corrupt records" (fun () ->
        let bad =
          [
            Obs.Json.Obj [ ("kind", Obs.Json.Str "trace_event") ];
            Obs.Json.Obj
              [
                ("kind", Obs.Json.Str "not_a_trace_event");
                ("seq", Obs.Json.Int 0);
              ];
            Obs.Json.Str "nope";
          ]
        in
        List.iter
          (fun j ->
            match Tracer.validate_event_json j with
            | Ok () -> Alcotest.fail "accepted a corrupt record"
            | Error _ -> ())
          bad);
    tc "write_line_verified streams verified records" (fun () ->
        let path = Filename.temp_file "tracer" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let t = Tracer.create () in
            emit_n t 5;
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                List.iter
                  (fun ev ->
                    match
                      Obs.Export.write_line_verified oc (Tracer.event_json ev)
                    with
                    | Ok () -> ()
                    | Error e -> Alcotest.fail e)
                  (Tracer.events t));
            match Obs.Export.parse_file path with
            | Ok lines -> check_int "5 lines" 5 (List.length lines)
            | Error e -> Alcotest.fail e));
  ]

(* a seeded single-writer ABD run under an armed recorder *)
let abd_events seed =
  let tracer = Tracer.create () in
  ignore (Runs.execute ~tracer { Runs.default with Runs.seed });
  Tracer.events tracer

let find_seq evs s =
  List.find_opt (fun (e : Tracer.event) -> e.Tracer.seq = s) evs

let causal_tests =
  [
    tcs "ABD run: every deliver/drop chains to its send" (fun () ->
        let evs = abd_events 5L in
        let checked = ref 0 in
        List.iter
          (fun (e : Tracer.event) ->
            if
              e.Tracer.cat = "net"
              && List.mem e.Tracer.name [ "deliver"; "drop"; "dead_letter" ]
            then
              match find_seq evs e.Tracer.parent with
              | Some p ->
                  incr checked;
                  check_str "parent is a send" "send" p.Tracer.name
              | None -> () (* parent fell off the ring: not auditable *))
          evs;
        check_bool "audited some deliveries" true (!checked > 50));
    tcs "ABD run: op phases chain respond->invoke and round->invoke"
      (fun () ->
        let evs = abd_events 6L in
        let audited = ref 0 in
        List.iter
          (fun (e : Tracer.event) ->
            if e.Tracer.cat = "reg" then
              match e.Tracer.name with
              | "respond" | "round" -> (
                  match find_seq evs e.Tracer.parent with
                  | Some p ->
                      incr audited;
                      check_str "parent is the invoke" "invoke" p.Tracer.name
                  | None -> ())
              | _ -> ())
          evs;
        check_bool "audited op phases" true (!audited > 5));
    tcs "ABD run: sends inside a round chain to that round" (fun () ->
        let evs = abd_events 7L in
        let audited = ref 0 in
        List.iter
          (fun (e : Tracer.event) ->
            if e.Tracer.cat = "net" && e.Tracer.name = "send" then
              match find_seq evs e.Tracer.parent with
              | Some p ->
                  if p.Tracer.cat = "reg" then begin
                    incr audited;
                    check_str "client send belongs to a round" "round"
                      p.Tracer.name
                  end
              | None -> ())
          evs;
        check_bool "audited round sends" true (!audited > 5));
    tcs "event streams are byte-identical across re-executions" (fun () ->
        let render evs =
          String.concat "\n"
            (List.map
               (fun ev -> Obs.Json.to_string (Tracer.event_json ev))
               evs)
        in
        check_str "same stream" (render (abd_events 5L))
          (render (abd_events 5L)));
  ]

let exporter_tests =
  [
    tcs "the Perfetto export of an ABD run validates" (fun () ->
        let evs = abd_events 5L in
        let doc = Tracer.perfetto_json evs in
        match Tracer.validate_perfetto doc with
        | Error e -> Alcotest.fail e
        | Ok n -> check_bool "non-trivial" true (n > List.length evs));
    tcs "Perfetto: thread metadata, flow pairs and counter samples"
      (fun () ->
        (* hand-built window exercising every record family *)
        let t = Tracer.create () in
        let s = Tracer.emit t ~track:0 ~sim:1 ~cat:"net" "send" in
        ignore (Tracer.emit t ~track:101 ~parent:s ~sim:2 ~cat:"net" "deliver");
        ignore
          (Tracer.emit t ~sim:3 ~cat:"check" "linchk.progress"
             ~args:[ ("states", Obs.Json.Int 42) ]);
        ignore
          (Tracer.emit t ~track:0 ~sim:4 ~cat:"span" "e6"
             ~args:[ ("ph", Obs.Json.Str "B") ]);
        ignore
          (Tracer.emit t ~track:0 ~sim:5 ~cat:"span" "e6"
             ~args:[ ("ph", Obs.Json.Str "E") ]);
        let doc = Tracer.perfetto_json (Tracer.events t) in
        (match Tracer.validate_perfetto doc with
        | Error e -> Alcotest.fail e
        | Ok _ -> ());
        let tes =
          match Obs.Json.member "traceEvents" doc with
          | Some (Obs.Json.List l) -> l
          | _ -> Alcotest.fail "no traceEvents"
        in
        let phs ph =
          List.length
            (List.filter
               (fun te ->
                 Option.bind (Obs.Json.member "ph" te) Obs.Json.to_string_opt
                 = Some ph)
               tes)
        in
        check_bool "thread metas" true (phs "M" >= 3);
        check_int "flow start" 1 (phs "s");
        check_int "flow finish" 1 (phs "f");
        check_int "counter sample" 1 (phs "C");
        check_int "span begin" 1 (phs "B");
        check_int "span end" 1 (phs "E"));
    tcs "validate_perfetto rejects a broken document" (fun () ->
        let bad =
          Obs.Json.Obj
            [
              ( "traceEvents",
                Obs.Json.List [ Obs.Json.Obj [ ("name", Obs.Json.Int 3) ] ] );
            ]
        in
        match Tracer.validate_perfetto bad with
        | Ok _ -> Alcotest.fail "accepted a broken document"
        | Error _ -> ());
    tc "DOT ancestry contains the causal cone, highlighted" (fun () ->
        let t = Tracer.create () in
        let a = Tracer.emit t ~sim:0 ~cat:"reg" "invoke" in
        let b = Tracer.emit t ~parent:a ~sim:1 ~cat:"reg" "round" in
        let c = Tracer.emit t ~parent:b ~sim:2 ~cat:"net" "send" in
        ignore (Tracer.emit t ~parent:(-1) ~sim:3 ~cat:"sched" "spawn");
        let dot = Tracer.dot_of_ancestry (Tracer.events t) ~seq:c in
        let has needle = contains dot needle in
        check_bool "digraph" true (has "digraph");
        check_bool "root present" true (has (Printf.sprintf "n%d" a));
        check_bool "edge a->b" true
          (has (Printf.sprintf "n%d -> n%d" a b));
        check_bool "unrelated event excluded" false (has "spawn"));
  ]

let span_tests =
  [
    tc "spans emit paired B/E events to the ambient tracer" (fun () ->
        let t = Tracer.create () in
        Obs.Span.set_tracer t;
        Fun.protect
          ~finally:(fun () -> Obs.Span.set_tracer Tracer.null)
          (fun () ->
            Obs.Span.with_root ~metrics:(Obs.Metrics.create ()) "battery"
              (fun () ->
                check_bool "root name" true
                  (Obs.Span.root () = Some "battery");
                Obs.Span.with_span ~metrics:(Obs.Metrics.create ()) "e1"
                  (fun () -> ())));
        let spans =
          List.filter
            (fun (e : Tracer.event) -> e.Tracer.cat = "span")
            (Tracer.events t)
        in
        check_int "4 span events" 4 (List.length spans);
        let ph (e : Tracer.event) =
          Option.bind (List.assoc_opt "ph" e.Tracer.args)
            Obs.Json.to_string_opt
        in
        (match spans with
        | [ b1; b2; e2; e1 ] ->
            check_str "outer begin" "battery" b1.Tracer.name;
            check_bool "outer is B" true (ph b1 = Some "B");
            check_str "inner path" "battery/e1" b2.Tracer.name;
            check_bool "inner is B" true (ph b2 = Some "B");
            check_bool "inner end first" true
              (ph e2 = Some "E" && e2.Tracer.name = "battery/e1");
            check_bool "outer end last" true
              (ph e1 = Some "E" && e1.Tracer.name = "battery");
            check_int "inner B chains to outer B" b1.Tracer.seq
              b2.Tracer.parent;
            check_int "E chains to its B" b2.Tracer.seq e2.Tracer.parent
        | _ -> Alcotest.fail "expected exactly B,B,E,E"));
  ]

let quorum_bug_config () =
  { Config.default with Config.quorum = Some 1 }

let postmortem_tests =
  [
    tcs "Monitor.postmortem attaches the last-K events to a violation"
      (fun () ->
        match Monitor.postmortem ~k:64 (quorum_bug_config ()) with
        | None -> Alcotest.fail "quorum bug not caught"
        | Some (v, events) ->
            check_str "monitor" "quorum-sanity" v.Check.Monitor.monitor;
            check_bool "events retained" true (List.length events > 0);
            check_bool "bounded by k" true (List.length events <= 64));
    tcs "postmortem of a healthy config is None" (fun () ->
        check_bool "no violation" true
          (Monitor.postmortem Config.default = None));
    tcs "chaos --flight: corpus entries carry validated post-mortems, \
         byte-identical across -j"
      (fun () ->
        let seed = 77L and budget = 6 in
        let run jobs =
          Check.Chaos.search ~jobs ~inject:Check.Chaos.Quorum_too_small
            ~flight:true ~flight_k:64 ~seed ~budget ()
        in
        let r1 = run 1 and r2 = run 2 in
        check_bool "found something" true (r1.Check.Chaos.findings <> []);
        List.iter
          (fun (f : Check.Chaos.finding) ->
            check_bool "post-mortem recorded" true
              (f.Check.Chaos.postmortem <> []))
          r1.Check.Chaos.findings;
        (* reports and corpus lines byte-identical across -j *)
        check_str "reports"
          (Obs.Json.to_string (Check.Chaos.report_json r1))
          (Obs.Json.to_string (Check.Chaos.report_json r2));
        let lines r =
          List.map
            (fun e -> Obs.Json.to_string (Check.Corpus.entry_json e))
            (Check.Chaos.to_entries r)
        in
        Alcotest.(check (list string)) "corpus lines" (lines r1) (lines r2);
        (* and the entries round-trip through the corpus file format,
           post-mortems included *)
        let path = Filename.temp_file "corpus" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Check.Corpus.save path (Check.Chaos.to_entries r1);
            match Check.Corpus.load path with
            | Error e -> Alcotest.fail e
            | Ok entries ->
                Alcotest.(check (list string))
                  "reloaded verbatim" (lines r1)
                  (List.map
                     (fun e ->
                       Obs.Json.to_string (Check.Corpus.entry_json e))
                     entries);
                List.iter
                  (fun (e : Check.Corpus.entry) ->
                    check_bool "post-mortem survived the file" true
                      (e.Check.Corpus.postmortem <> []))
                  entries));
  ]

(* small fixed history for the probe tests *)
let probe_history () =
  let op ?responded ?result ~id ~proc ~kind ~invoked () =
    Core.Op.make ~id ~proc ~obj:"R" ~kind ~invoked ?responded ?result ()
  in
  Core.Hist.of_ops
    [
      op ~id:1 ~proc:1
        ~kind:(Core.Op.Write (Core.Value.Int 1))
        ~invoked:1 ~responded:2 ();
      op ~id:2 ~proc:2 ~kind:Core.Op.Read ~invoked:3 ~responded:4
        ~result:(Core.Value.Int 1) ();
    ]

let probe_tests =
  [
    tc "treecheck emits progress probes on the armed tracer" (fun () ->
        let tracer = Tracer.create () in
        let metrics = Obs.Metrics.create () in
        (* park the node counter just below the probe cadence so the
           first visit of this small tree crosses it deterministically *)
        Obs.Metrics.incr_h ~by:63
          (Obs.Metrics.counter_h metrics "treecheck.nodes");
        let tree = Core.Treecheck.of_prefixes (probe_history ()) in
        check_bool "tree solvable" true
          (Core.Treecheck.write_strong ~metrics ~tracer
             ~init:(Core.Value.Int 0) tree);
        let probes =
          List.filter
            (fun (e : Tracer.event) ->
              e.Tracer.cat = "check"
              && e.Tracer.name = "treecheck.progress")
            (Tracer.events tracer)
        in
        check_bool "probe fired" true (probes <> []);
        let p = List.hd probes in
        check_bool "carries nodes" true
          (List.assoc_opt "nodes" p.Tracer.args = Some (Obs.Json.Int 64));
        check_bool "carries depth" true
          (List.mem_assoc "depth" p.Tracer.args));
    tc "a disarmed tracer suppresses probes entirely" (fun () ->
        let tracer = Tracer.create ~armed:false () in
        let metrics = Obs.Metrics.create () in
        Obs.Metrics.incr_h ~by:63
          (Obs.Metrics.counter_h metrics "treecheck.nodes");
        ignore
          (Core.Treecheck.write_strong ~metrics ~tracer
             ~init:(Core.Value.Int 0)
             (Core.Treecheck.of_prefixes (probe_history ())));
        check_int "nothing recorded" 0 (Tracer.emitted tracer));
  ]

let suite =
  [
    ("tracer:ring", ring_tests);
    ("tracer:json", json_tests);
    ("tracer:causality", causal_tests);
    ("tracer:exporters", exporter_tests);
    ("tracer:spans", span_tests);
    ("tracer:postmortem", postmortem_tests);
    ("tracer:probes", probe_tests);
  ]
