(* The chaos loop end-to-end: clean code is quiet, an injected quorum
   bug is caught, shrunk to a fixpoint, stored, and replays verbatim. *)

module Config = Msgpass.Runs.Config
module Monitor = Check.Monitor
module Shrink = Check.Shrink
module Corpus = Check.Corpus
module Chaos = Check.Chaos

let tc name f = Alcotest.test_case name `Quick f
let tcs name f = Alcotest.test_case name `Slow f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let json_str j = Obs.Json.to_string j

let monitor_tests =
  [
    tc "a benign default config passes every monitor" (fun () ->
        check_bool "no violation" true
          (Monitor.run_config Config.default = None));
    tc "the quorum override trips quorum-sanity" (fun () ->
        let c = { Config.default with Config.quorum = Some 2 } in
        match Monitor.run_config ~monitors:[ Monitor.quorum_sanity ] c with
        | Some v -> check_str "monitor" "quorum-sanity" v.Monitor.monitor
        | None -> Alcotest.fail "quorum-sanity did not fire");
    tc "an impossible step budget trips termination/budget" (fun () ->
        let c = { Config.default with Config.max_steps = Some 5 } in
        match Monitor.run_config ~monitors:[ Monitor.termination ] c with
        | Some v -> check_str "monitor" "termination/budget" v.Monitor.monitor
        | None -> Alcotest.fail "termination did not fire");
    tc "violations round-trip through JSON" (fun () ->
        let v = { Monitor.monitor = "linearizability"; detail = "d" } in
        match Monitor.violation_of_json (Monitor.violation_json v) with
        | Ok v' -> check_bool "equal" true (v = v')
        | Error e -> Alcotest.fail e);
    tc "configs round-trip through JSON" (fun () ->
        let c = Chaos.gen_config ~seed:99L 3 in
        match Config.of_json (Config.json c) with
        | Ok c' ->
            check_str "same rendering" (json_str (Config.json c))
              (json_str (Config.json c'))
        | Error e -> Alcotest.fail e);
    tc "recovery knobs round-trip; pre-recovery JSON gets defaults" (fun () ->
        let c =
          {
            Config.default with
            Config.persist = `Never;
            unsafe_recovery = true;
            faults =
              {
                Simkit.Faults.none with
                Simkit.Faults.crash_at = [ (100, 3) ];
                recover_at = [ (200, 3) ];
              };
          }
        in
        (match Config.of_json (Config.json c) with
        | Ok c' ->
            check_str "same rendering" (json_str (Config.json c))
              (json_str (Config.json c'))
        | Error e -> Alcotest.fail e);
        (* a config serialized before the crash-recovery model has no
           persist / unsafe_recovery fields: it must decode to the safe
           defaults, keeping the committed corpus replayable *)
        let stripped =
          match Config.json Config.default with
          | Obs.Json.Obj fs ->
              Obs.Json.Obj
                (List.filter
                   (fun (k, _) -> k <> "persist" && k <> "unsafe_recovery")
                   fs)
          | _ -> assert false
        in
        match Config.of_json stripped with
        | Ok c' ->
            check_bool "safe defaults" true
              (c'.Config.persist = `Every && not c'.Config.unsafe_recovery)
        | Error e -> Alcotest.fail e);
    tc "unsafe lossy recovery trips recovery-sanity" (fun () ->
        let c =
          {
            Config.default with
            Config.persist = `Never;
            unsafe_recovery = true;
            faults =
              {
                Simkit.Faults.none with
                Simkit.Faults.crash_at = [ (80, 3) ];
                recover_at = [ (160, 3) ];
              };
          }
        in
        match Monitor.run_config ~monitors:[ Monitor.recovery_sanity ] c with
        | Some v -> check_str "monitor" "recovery-sanity" v.Monitor.monitor
        | None -> Alcotest.fail "recovery-sanity did not fire");
    tc "the same schedule with safe recovery passes every monitor" (fun () ->
        let c =
          {
            Config.default with
            Config.persist = `Never;
            faults =
              {
                Simkit.Faults.none with
                Simkit.Faults.crash_at = [ (80, 3) ];
                recover_at = [ (160, 3) ];
              };
          }
        in
        check_bool "no violation" true (Monitor.run_config c = None));
  ]

(* an injected-bug config that fails fast: the shrink tests below
   minimize it, so keep the starting point small but not minimal *)
let buggy =
  {
    Config.default with
    Config.writes_each = 2;
    reads_each = 2;
    quorum = Some 2;
    faults = { Simkit.Faults.none with Simkit.Faults.drop = 0.05 };
  }

let buggy_violation () =
  match Monitor.run_config buggy with
  | Some v -> v
  | None -> Alcotest.fail "injected bug did not trip a monitor"

let shrink_tests =
  [
    tc "candidates are strictly simpler and valid" (fun () ->
        let cands = Shrink.candidates buggy in
        check_bool "some candidates" true (cands <> []);
        List.iter Config.validate cands;
        check_bool "drop ladder descends" true
          (List.exists
             (fun c -> c.Config.faults.Simkit.Faults.drop = 0.02)
             cands));
    tcs "minimize reaches a fixpoint and keeps the monitor" (fun () ->
        let v = buggy_violation () in
        let out = Shrink.minimize ~violation:v buggy in
        check_bool "not exhausted" false out.Shrink.exhausted;
        check_str "same monitor" v.Monitor.monitor
          out.Shrink.violation.Monitor.monitor;
        check_bool "made progress" true (out.Shrink.steps > 0);
        check_bool "drop shrunk to 0" true
          (out.Shrink.config.Config.faults.Simkit.Faults.drop = 0.);
        check_int "writes shrunk" 1 out.Shrink.config.Config.writes_each;
        (* a fixpoint: minimizing the minimum accepts nothing *)
        let again =
          Shrink.minimize ~violation:out.Shrink.violation out.Shrink.config
        in
        check_int "fixpoint" 0 again.Shrink.steps;
        check_str "fixpoint config unchanged"
          (json_str (Config.json out.Shrink.config))
          (json_str (Config.json again.Shrink.config)));
    tcs "minimize is deterministic" (fun () ->
        let v = buggy_violation () in
        let a = Shrink.minimize ~violation:v buggy in
        let b = Shrink.minimize ~violation:v buggy in
        check_str "same minimal config"
          (json_str (Config.json a.Shrink.config))
          (json_str (Config.json b.Shrink.config));
        check_int "same attempts" a.Shrink.attempts b.Shrink.attempts);
  ]

let corpus_tests =
  [
    tcs "entries replay to the identical violation" (fun () ->
        let v = buggy_violation () in
        let out = Shrink.minimize ~violation:v buggy in
        let entry =
          {
            Corpus.config = out.Shrink.config;
            violation = out.Shrink.violation;
            original = Some buggy;
            shrink_attempts = out.Shrink.attempts;
            postmortem = [];
          }
        in
        (match Corpus.replay entry with
        | Corpus.Reproduced -> ()
        | Corpus.Changed v' ->
            Alcotest.fail ("violation changed: " ^ v'.Monitor.detail)
        | Corpus.Fixed -> Alcotest.fail "violation vanished on replay");
        (* and byte-for-byte through the JSONL file format *)
        let path = Filename.temp_file "corpus" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Corpus.save path [ entry ];
            Corpus.append path entry;
            match Corpus.load path with
            | Ok [ e1; e2 ] ->
                check_str "line 1" (json_str (Corpus.entry_json entry))
                  (json_str (Corpus.entry_json e1));
                check_str "line 2" (json_str (Corpus.entry_json entry))
                  (json_str (Corpus.entry_json e2))
            | Ok es ->
                Alcotest.fail
                  (Printf.sprintf "expected 2 entries, got %d" (List.length es))
            | Error e -> Alcotest.fail e));
    tc "a fixed bug is reported as drift, not success" (fun () ->
        (* same config minus the bug: the stored violation must not
           reproduce any more *)
        let entry =
          {
            Corpus.config = { buggy with Config.quorum = None };
            violation = { Monitor.monitor = "quorum-sanity"; detail = "old" };
            original = None;
            shrink_attempts = 0;
            postmortem = [];
          }
        in
        check_bool "fixed" true (Corpus.replay entry = Corpus.Fixed));
  ]

let chaos_tests =
  [
    tcs "a clean sweep reports zero violations" (fun () ->
        let r = Chaos.search ~seed:42L ~budget:40 () in
        check_int "violations" 0 (List.length r.Chaos.findings));
    tcs "the report is identical at -j 1 and -j 2" (fun () ->
        let r1 = Chaos.search ~jobs:1 ~seed:42L ~budget:24 () in
        let r2 = Chaos.search ~jobs:2 ~seed:42L ~budget:24 () in
        check_str "byte-identical"
          (json_str (Chaos.report_json r1))
          (json_str (Chaos.report_json r2)));
    tcs "the injected quorum bug is found and shrunk" (fun () ->
        let r =
          Chaos.search ~inject:Chaos.Quorum_too_small ~seed:42L ~budget:6 ()
        in
        check_bool "found" true (r.Chaos.findings <> []);
        List.iter
          (fun f ->
            check_str "monitor" "quorum-sanity"
              f.Chaos.first.Monitor.monitor;
            let m = f.Chaos.shrunk.Shrink.config in
            check_bool "kept the bug" true (m.Config.quorum <> None);
            check_bool "at most one crash" true
              (List.length m.Config.faults.Simkit.Faults.crash_at <= 1);
            check_bool "drop shrunk away" true
              (m.Config.faults.Simkit.Faults.drop = 0.))
          r.Chaos.findings;
        (* every finding replays from its corpus entry *)
        List.iter
          (fun e ->
            check_bool "replays" true (Corpus.replay e = Corpus.Reproduced))
          (Chaos.to_entries r));
    tcs "the injected unsafe-recovery bug is found and shrunk" (fun () ->
        let r =
          Chaos.search ~inject:Chaos.Unsafe_recovery ~seed:42L ~budget:6 ()
        in
        check_bool "found" true (r.Chaos.findings <> []);
        List.iter
          (fun f ->
            (* amnesia is caught red-handed (recovery-sanity) or via the
               stale read it causes (linearizability) *)
            check_bool "monitor" true
              (List.mem f.Chaos.first.Monitor.monitor
                 [ "recovery-sanity"; "linearizability" ]);
            let m = f.Chaos.shrunk.Shrink.config in
            check_bool "kept the bug" true m.Config.unsafe_recovery;
            check_bool "at most one crash+recover pair" true
              (List.length m.Config.faults.Simkit.Faults.crash_at <= 1
              && List.length m.Config.faults.Simkit.Faults.recover_at <= 1);
            check_bool "link faults shrunk away" true
              (m.Config.faults.Simkit.Faults.drop = 0.
              && m.Config.faults.Simkit.Faults.duplicate = 0.))
          r.Chaos.findings;
        List.iter
          (fun e ->
            check_bool "replays" true (Corpus.replay e = Corpus.Reproduced))
          (Chaos.to_entries r));
  ]

let suite =
  [
    ("check.monitor", monitor_tests);
    ("check.shrink", shrink_tests);
    ("check.corpus", corpus_tests);
    ("check.chaos", chaos_tests);
  ]
