(* Tests for the history-tree checkers (Definitions 3 and 4): existence of
   strong / write-strong linearization functions over explicit trees. *)

module V = Core.Value
module Op = Core.Op
module Hist = Core.Hist
module T = Core.Treecheck

let tc name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let init = V.Int 0

let op ?responded ?result ~id ~proc ~kind ~invoked () =
  Op.make ~id ~proc ~obj:"R" ~kind ~invoked ?responded ?result ()

let w ?responded ~id ~proc ~invoked v =
  op ~id ~proc ~kind:(Op.Write (V.Int v)) ~invoked ?responded ()

let r ~id ~proc ~invoked ~responded v =
  op ~id ~proc ~kind:Op.Read ~invoked ~responded ~result:(V.Int v) ()

let structure_tests =
  [
    tc "node rejects non-extending children" (fun () ->
        let a = Hist.of_ops [ w ~id:1 ~proc:1 ~invoked:1 ~responded:2 100 ] in
        let b = Hist.of_ops [ w ~id:2 ~proc:1 ~invoked:1 ~responded:2 200 ] in
        Alcotest.check_raises "bad child"
          (Invalid_argument "Treecheck.node: child does not extend parent")
          (fun () -> ignore (T.node a [ T.node b [] ])));
    tc "chain rejects empty" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Treecheck.chain: empty")
          (fun () -> ignore (T.chain [])));
    tc "of_prefixes builds a full chain" (fun () ->
        let hist =
          Hist.of_ops
            [
              w ~id:1 ~proc:1 ~invoked:1 ~responded:2 100;
              r ~id:2 ~proc:2 ~invoked:3 ~responded:4 100;
            ]
        in
        let rec depth t =
          match t.T.children with [] -> 1 | c :: _ -> 1 + depth c
        in
        Alcotest.(check int) "depth" 5 (depth (T.of_prefixes hist)));
  ]

let wsl_tests =
  [
    tc "empty tree is trivially WSL" (fun () ->
        check_bool "empty" true (T.write_strong ~init (T.node Hist.empty [])));
    tc "sequential history chain is WSL" (fun () ->
        let hist =
          Hist.of_ops
            [
              w ~id:1 ~proc:1 ~invoked:1 ~responded:2 100;
              w ~id:2 ~proc:1 ~invoked:3 ~responded:4 200;
              r ~id:3 ~proc:2 ~invoked:5 ~responded:6 200;
            ]
        in
        check_bool "wsl" true (T.write_strong ~init (T.of_prefixes hist)));
    tc "concurrent writes on a single chain are WSL" (fun () ->
        let hist =
          Hist.of_ops
            [
              w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100;
              w ~id:2 ~proc:2 ~invoked:2 ~responded:9 200;
              r ~id:3 ~proc:3 ~invoked:11 ~responded:12 100;
            ]
        in
        check_bool "wsl" true (T.write_strong ~init (T.of_prefixes hist)));
    tc "branching tree can refute WSL (hand-built Thm-13 shape)" (fun () ->
        (* G: two concurrent writes, one complete.  H1 forces w1<w2 via a
           read; H2 forces w2<w1 via a read.  No single committed order of
           f(G) extends to both. *)
        let w1 = w ~id:1 ~proc:1 ~invoked:1 100 (* pending in G *) in
        let w2 = w ~id:2 ~proc:2 ~invoked:2 ~responded:5 200 in
        let g = Hist.of_ops [ w1; w2 ] in
        (* H1: w1 completes; a later read sees 200 then 100?  To force
           w1 < w2 use a read that returns 200 after w1 completed... *)
        let h1 =
          Hist.of_ops
            [
              { w1 with responded = Some 7 };
              w2;
              r ~id:3 ~proc:3 ~invoked:8 ~responded:9 200;
            ]
        in
        (* H2: a read after w2 completes returns 100 written by the still
           pending w1, then a LATER read returns ... hmm simpler: read
           returns 100, then a second read returns 200 is illegal...  Use:
           read after everything returns 100 => w1 last => w2 < w1. *)
        let h2 =
          Hist.of_ops
            [
              { w1 with responded = Some 7 };
              w2;
              r ~id:3 ~proc:3 ~invoked:8 ~responded:9 100;
            ]
        in
        check_bool "chain1" true (T.write_strong ~init (T.chain [ g; h1 ]));
        check_bool "chain2" true (T.write_strong ~init (T.chain [ g; h2 ]));
        check_bool "tree" false
          (T.write_strong ~init (T.node g [ T.node h1 []; T.node h2 [] ])));
    tc "witness returned on success extends along the chain" (fun () ->
        let hist =
          Hist.of_ops
            [
              w ~id:1 ~proc:1 ~invoked:1 ~responded:4 100;
              w ~id:2 ~proc:2 ~invoked:5 ~responded:8 200;
            ]
        in
        match T.write_strong_witness ~init (T.of_prefixes hist) with
        | None -> Alcotest.fail "expected a witness"
        | Some assignments ->
            let rec is_prefix p q =
              match (p, q) with
              | [], _ -> true
              | _, [] -> false
              | x :: p', y :: q' -> x = y && is_prefix p' q'
            in
            let rec chain_ok = function
              | (_, a) :: ((_, b) :: _ as rest) ->
                  is_prefix a b && chain_ok rest
              | _ -> true
            in
            check_bool "monotone" true (chain_ok assignments));
  ]

let strong_tests =
  [
    tc "atomic-looking chain is strongly linearizable" (fun () ->
        let hist =
          Hist.of_ops
            [
              w ~id:1 ~proc:1 ~invoked:1 ~responded:2 100;
              r ~id:2 ~proc:2 ~invoked:3 ~responded:4 100;
            ]
        in
        check_bool "strong" true (T.strong ~init (T.of_prefixes hist)));
    tc "WSL does not imply strong: a pending read refutes strong only"
      (fun () ->
        (* G: one complete write w, one pending read r.  H1 resolves r to
           the initial value (forcing r before w), H2 resolves it to w's
           value (forcing r after w).  Since the complete w must be in
           f(G), f(G) cannot be a prefix of both extensions: strong
           linearizability fails on the tree.  Write strong-
           linearizability is untouched — the write order never changes. *)
        let wo = w ~id:1 ~proc:1 ~invoked:1 ~responded:4 100 in
        let rd = op ~id:2 ~proc:2 ~kind:Op.Read ~invoked:2 () in
        let g = Hist.of_ops [ wo; rd ] in
        let h1 =
          Hist.of_ops
            [ wo; { rd with responded = Some 6; result = Some (V.Int 0) } ]
        in
        let h2 =
          Hist.of_ops
            [ wo; { rd with responded = Some 6; result = Some (V.Int 100) } ]
        in
        let tree = T.node g [ T.node h1 []; T.node h2 [] ] in
        check_bool "wsl ok" true (T.write_strong ~init tree);
        check_bool "strong refuted" false (T.strong ~init tree));
    tc "strong refuted when a committed write order must flip" (fun () ->
        let w1 = w ~id:1 ~proc:1 ~invoked:1 100 in
        let w2 = w ~id:2 ~proc:2 ~invoked:2 ~responded:5 200 in
        let g = Hist.of_ops [ w1; w2 ] in
        let h1 =
          Hist.of_ops
            [
              { w1 with responded = Some 7 };
              w2;
              r ~id:3 ~proc:3 ~invoked:8 ~responded:9 200;
            ]
        in
        let h2 =
          Hist.of_ops
            [
              { w1 with responded = Some 7 };
              w2;
              r ~id:3 ~proc:3 ~invoked:8 ~responded:9 100;
            ]
        in
        check_bool "strong refuted" false
          (T.strong ~init (T.node g [ T.node h1 []; T.node h2 [] ])));
  ]

let fig4_tests =
  [
    tc "fig4: no WSL function on the branching tree (Thm 13)" (fun () ->
        let f4 = Core.Scenario.fig4 () in
        check_bool "impossible" true f4.Core.Scenario.wsl_impossible);
    tc "fig4: each chain alone admits a WSL function" (fun () ->
        let f4 = Core.Scenario.fig4 () in
        check_bool "chains" true f4.Core.Scenario.chains_ok);
    tc "fig4: all three histories are linearizable (Thm 12)" (fun () ->
        let f4 = Core.Scenario.fig4 () in
        check_bool "lin" true f4.Core.Scenario.all_linearizable);
    tc "fig4: G really is a common prefix" (fun () ->
        let f4 = Core.Scenario.fig4 () in
        check_bool "h1" true
          (Hist.is_prefix f4.Core.Scenario.g ~of_:f4.Core.Scenario.h1);
        check_bool "h2" true
          (Hist.is_prefix f4.Core.Scenario.g ~of_:f4.Core.Scenario.h2));
  ]

(* property: prefix chains of atomic-register histories always admit a
   write strong-linearization (atomic registers are WSL) *)
let props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"atomic history prefix-chains admit WSL"
         ~count:40
         (Core.Histgen.arb_atomic
            { Core.Histgen.default_spec with n_ops = 6 })
         (fun hist -> T.write_strong ~init (T.of_prefixes hist)));
  ]

(* ----- prep cache vs the prep-per-visit path -------------------------------
   The tree search preps each node once and reuses the prepped form
   across the candidate/recursion loop.  This reference solver is the old
   path — Lincheck.subset_orders_extending (prep inside) on every visit —
   and must return identical witnesses. *)

let old_solve ~init ~sel t =
  let rec go (t : T.tree) ~prefix =
    let cands =
      Core.Lincheck.subset_orders_extending ~init t.T.hist ~sel ~prefix
        ~limit:4096
    in
    let rec try_cands = function
      | [] -> None
      | w :: rest -> (
          match children t.T.children ~prefix:w with
          | Some subs -> Some ((t.T.hist, w) :: subs)
          | None -> try_cands rest)
    in
    try_cands cands
  and children cs ~prefix =
    match cs with
    | [] -> Some []
    | c :: rest -> (
        match go c ~prefix with
        | None -> None
        | Some sub -> (
            match children rest ~prefix with
            | None -> None
            | Some subs -> Some (sub @ subs)))
  in
  go t ~prefix:[]

let shape w = List.map (fun (h, ws) -> (Hist.length h, ws)) w

let check_same_witness name t sel =
  match (old_solve ~init ~sel t, T.subset_strong_witness ~init ~sel t) with
  | None, None -> ()
  | Some a, Some b ->
      Alcotest.(check (list (pair int (list int))))
        (name ^ ": identical witness") (shape a) (shape b)
  | Some _, None -> Alcotest.failf "%s: verdict flipped to no" name
  | None, Some _ -> Alcotest.failf "%s: verdict flipped to yes" name

let prep_cache_tests =
  [
    tc "prep cache: identical witnesses on seeded prefix chains" (fun () ->
        let rand = Random.State.make [| 0xCACE |] in
        for i = 0 to 29 do
          let hist =
            Core.Histgen.atomic_history
              { Core.Histgen.default_spec with n_ops = 6 }
              rand
          in
          check_same_witness
            (Printf.sprintf "chain %d" i)
            (T.of_prefixes hist) Op.is_write
        done);
    tc "prep cache: identical on a branching refutation tree" (fun () ->
        let w1 = w ~id:1 ~proc:1 ~invoked:1 100 in
        let w2 = w ~id:2 ~proc:2 ~invoked:2 ~responded:5 200 in
        let g = Hist.of_ops [ w1; w2 ] in
        let h1 =
          Hist.of_ops
            [
              { w1 with responded = Some 7 };
              w2;
              r ~id:3 ~proc:3 ~invoked:8 ~responded:9 200;
            ]
        in
        let h2 =
          Hist.of_ops
            [
              { w1 with responded = Some 7 };
              w2;
              r ~id:3 ~proc:3 ~invoked:8 ~responded:9 100;
            ]
        in
        let tree = T.node g [ T.node h1 []; T.node h2 [] ] in
        check_same_witness "refutation tree" tree Op.is_write;
        check_same_witness "refutation tree, read order" tree Op.is_read);
  ]

let suite =
  [
    ("treecheck.structure", structure_tests);
    ("treecheck.write_strong", wsl_tests);
    ("treecheck.strong", strong_tests);
    ("treecheck.fig4", fig4_tests);
    ("treecheck.props", props);
    ("treecheck.prep_cache", prep_cache_tests);
  ]
