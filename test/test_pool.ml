(* Simkit.Pool: the work-sharing domain pool behind `-j N`, and the
   determinism contract the experiment battery relies on (reports and
   merged metrics independent of the degree of parallelism). *)

module Pool = Simkit.Pool

let tc name f = Alcotest.test_case name `Quick f

(* ----- map ------------------------------------------------------------------ *)

let test_all_tasks_once () =
  List.iter
    (fun jobs ->
      let n = 100 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      let out =
        Pool.map ~jobs n (fun i ->
            Atomic.incr hits.(i);
            i * i)
      in
      Array.iteri
        (fun i c ->
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d: task %d ran exactly once" jobs i)
            1 (Atomic.get c))
        hits;
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d: results indexed by task" jobs)
        (Array.init n (fun i -> i * i))
        out)
    [ 1; 2; 4; 7 ]

let test_degenerate () =
  Alcotest.(check (array int)) "n=0" [||] (Pool.map ~jobs:4 0 (fun i -> i));
  Alcotest.(check (array int)) "n=1" [| 7 |] (Pool.map ~jobs:4 1 (fun _ -> 7));
  Alcotest.(check (array int))
    "jobs=1 runs in index order on the calling domain"
    [| 0; 1; 2; 3 |]
    (let order = ref [] in
     let out = Pool.map ~jobs:1 4 (fun i -> order := i :: !order; i) in
     Alcotest.(check (list int)) "index order" [ 3; 2; 1; 0 ] !order;
     out);
  Alcotest.check_raises "negative task count rejected"
    (Invalid_argument "Pool.map: negative task count") (fun () ->
      ignore (Pool.map ~jobs:2 (-1) (fun i -> i)))

exception Boom of int

let test_exception_propagation () =
  List.iter
    (fun jobs ->
      let raised =
        try
          ignore (Pool.map ~jobs 50 (fun i -> if i = 17 then raise (Boom i)));
          None
        with Boom i -> Some i
      in
      Alcotest.(check (option int))
        (Printf.sprintf "jobs=%d: task 17's exception re-raised" jobs)
        (Some 17) raised)
    [ 1; 4 ];
  (* several failures: the lowest-index one wins, whatever the schedule *)
  let raised =
    try
      ignore
        (Pool.map ~jobs:1 50 (fun i ->
             if i mod 10 = 3 then raise (Boom i)));
      None
    with Boom i -> Some i
  in
  Alcotest.(check (option int)) "lowest-index failure wins" (Some 3) raised;
  (* large n forces chunked claiming (n > jobs * 8, so each CAS claims a
     run of indices): the lowest-index failure must still win even when
     the failing indices land mid-chunk on different domains *)
  List.iter
    (fun jobs ->
      let raised =
        try
          ignore
            (Pool.map ~jobs 400 (fun i ->
                 if i mod 25 = 11 then raise (Boom i)));
          None
        with Boom i -> Some i
      in
      Alcotest.(check (option int))
        (Printf.sprintf "jobs=%d: chunked claiming keeps lowest-index failure"
           jobs)
        (Some 11) raised)
    [ 2; 4 ]

(* ----- map_runs: per-run registries, merged in run order -------------------- *)

let test_map_runs_merge () =
  let runs = 20 in
  let record ~metrics i =
    Obs.Metrics.incr metrics ~by:(i + 1) "pool.test.counter";
    Obs.Metrics.observe metrics "pool.test.hist" (float_of_int i);
    i
  in
  let merged jobs =
    let m = Obs.Metrics.create () in
    let out = Pool.map_runs ~jobs ~metrics:m runs record in
    Alcotest.(check (array int))
      (Printf.sprintf "jobs=%d: results" jobs)
      (Array.init runs (fun i -> i))
      out;
    Obs.Metrics.snapshot m
  in
  let expect_counter = runs * (runs + 1) / 2 in
  let s1 = merged 1 and s4 = merged 4 in
  List.iter
    (fun (label, (s : Obs.Metrics.snapshot)) ->
      Alcotest.(check int)
        (label ^ ": counters sum across runs")
        expect_counter
        (List.assoc "pool.test.counter" s.Obs.Metrics.counters);
      match List.assoc_opt "pool.test.hist" s.Obs.Metrics.histograms with
      | None -> Alcotest.fail (label ^ ": histogram missing")
      | Some h ->
          Alcotest.(check int) (label ^ ": hist count") runs h.Obs.Metrics.count;
          Alcotest.(check (float 1e-9))
            (label ^ ": hist sum")
            (float_of_int (runs * (runs - 1) / 2))
            h.Obs.Metrics.sum)
    [ ("jobs=1", s1); ("jobs=4", s4) ];
  Alcotest.(check bool)
    "snapshots identical across jobs" true (s1 = s4)

(* ----- battery determinism --------------------------------------------------- *)

(* The guarantee `rlin experiments -j N` advertises: same ids, same
   pass/fail, same measured text, and the same metrics — wall-clock
   aside — whatever N is.  (The quick battery at -j 1 vs -j 4; global-
   registry deltas are part of each report, so this also exercises the
   merge-in-run-order path end to end.) *)
let test_battery_independent_of_jobs () =
  let strip (r : Experiments.report) =
    ( r.Experiments.id,
      r.Experiments.pass,
      r.Experiments.measured,
      (* anything wall-clock-derived varies run to run: the report's own
         wall_ms plus the span histogram's wall_ms.mean *)
      List.filter
        (fun (k, _) ->
          not
            (String.length k >= 7
            && List.exists
                 (fun i -> String.sub k i 7 = "wall_ms")
                 (List.init (String.length k - 6) (fun i -> i))))
        r.Experiments.metrics )
  in
  let only = Some [ "E1"; "E2"; "E5"; "E9"; "E11" ] in
  (* each battery starts from a clean registry, as `rlin experiments`
     does in a fresh process: gauges (e.g. net.in_flight) are last-write
     -wins, so a stale value from a previous battery would hide an
     identical gauge from the second delta *)
  Obs.Metrics.reset Obs.Metrics.global;
  let seq = List.map strip (Experiments.all ~jobs:1 ?only ~quick:true ()) in
  Obs.Metrics.reset Obs.Metrics.global;
  let par = List.map strip (Experiments.all ~jobs:4 ?only ~quick:true ()) in
  List.iter2
    (fun (id1, p1, m1, k1) (id2, p2, m2, k2) ->
      Alcotest.(check string) "id" id1 id2;
      Alcotest.(check bool) (id1 ^ ": pass") p1 p2;
      Alcotest.(check string) (id1 ^ ": measured") m1 m2;
      List.iter2
        (fun (ka, va) (kb, vb) ->
          Alcotest.(check string) (id1 ^ ": metric name") ka kb;
          Alcotest.(check (float 1e-9)) (id1 ^ ": metric " ^ ka) va vb)
        k1 k2)
    seq par

let test_only_selection () =
  let ids rs = List.map (fun r -> r.Experiments.id) rs in
  Alcotest.(check (list string))
    "subset in battery order, case-insensitive"
    [ "E4"; "E8" ]
    (ids (Experiments.all ~only:[ "e8"; "E4" ] ~quick:true ()));
  Alcotest.check_raises "unknown id rejected"
    (Invalid_argument
       "Experiments: unknown id \"E99\" (know E1, E2, E3, E4, E5, E6, E7, \
        E8, E9, E10, E11, E12, E13, E14, E15)") (fun () ->
      ignore (Experiments.all ~only:[ "E99" ] ~quick:true ()))

let suite =
  [
    ( "simkit.pool",
      [
        tc "every task runs exactly once, results indexed" test_all_tasks_once;
        tc "degenerate sizes and jobs=1 ordering" test_degenerate;
        tc "exceptions cancel and re-raise deterministically"
          test_exception_propagation;
        tc "map_runs merges per-run registries independent of jobs"
          test_map_runs_merge;
      ] );
    ( "experiments.parallel",
      [
        tc "battery reports independent of -j" test_battery_independent_of_jobs;
        tc "--only selects in battery order" test_only_selection;
      ] );
  ]
