(* Tests for the linearizability decision procedure (Definition 2). *)

module V = Core.Value
module Op = Core.Op
module Hist = Core.Hist
module L = Core.Lincheck
module Gen = Core.Histgen

let tc name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let init = V.Int 0

let op ?responded ?result ~id ~proc ~kind ~invoked () =
  Op.make ~id ~proc ~obj:"R" ~kind ~invoked ?responded ?result ()

let w ?responded ~id ~proc ~invoked v =
  op ~id ~proc ~kind:(Op.Write (V.Int v)) ~invoked ?responded ()

let r ~id ~proc ~invoked ~responded v =
  op ~id ~proc ~kind:Op.Read ~invoked ~responded ~result:(V.Int v) ()

let h ops = Hist.of_ops ops

let unit_tests =
  [
    tc "empty history is linearizable" (fun () ->
        check_bool "empty" true (L.check ~init Hist.empty));
    tc "sequential write;read is linearizable" (fun () ->
        check_bool "lin" true
          (L.check ~init
             (h [ w ~id:1 ~proc:1 ~invoked:1 ~responded:2 100;
                  r ~id:2 ~proc:2 ~invoked:3 ~responded:4 100 ])));
    tc "stale read after a completed write is NOT linearizable" (fun () ->
        check_bool "not lin" false
          (L.check ~init
             (h [ w ~id:1 ~proc:1 ~invoked:1 ~responded:2 100;
                  r ~id:2 ~proc:2 ~invoked:3 ~responded:4 0 ])));
    tc "stale read concurrent with the write IS linearizable" (fun () ->
        check_bool "lin" true
          (L.check ~init
             (h [ w ~id:1 ~proc:1 ~invoked:1 ~responded:5 100;
                  r ~id:2 ~proc:2 ~invoked:2 ~responded:4 0 ])));
    tc "read of a never-written value is NOT linearizable" (fun () ->
        check_bool "not lin" false
          (L.check ~init
             (h [ r ~id:1 ~proc:1 ~invoked:1 ~responded:2 999 ])));
    tc "new-old inversion between sequential reads is NOT linearizable" (fun () ->
        (* r1 sees the new value, then a later r2 (same or other proc,
           strictly after) sees the old one *)
        check_bool "not lin" false
          (L.check ~init
             (h
                [
                  w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100;
                  r ~id:2 ~proc:2 ~invoked:2 ~responded:3 100;
                  r ~id:3 ~proc:2 ~invoked:4 ~responded:5 0;
                ])));
    tc "old-then-new across concurrent reads IS linearizable" (fun () ->
        check_bool "lin" true
          (L.check ~init
             (h
                [
                  w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100;
                  r ~id:2 ~proc:2 ~invoked:2 ~responded:3 0;
                  r ~id:3 ~proc:2 ~invoked:4 ~responded:5 100;
                ])));
    tc "read may return a PENDING write's value" (fun () ->
        check_bool "lin" true
          (L.check ~init
             (h
                [
                  w ~id:1 ~proc:1 ~invoked:1 100 (* never responds *);
                  r ~id:2 ~proc:2 ~invoked:2 ~responded:3 100;
                ])));
    tc "pending write may also be ignored" (fun () ->
        check_bool "lin" true
          (L.check ~init
             (h
                [
                  w ~id:1 ~proc:1 ~invoked:1 100;
                  r ~id:2 ~proc:2 ~invoked:2 ~responded:3 0;
                ])));
    tc "two concurrent writes order both ways" (fun () ->
        let base =
          [ w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100;
            w ~id:2 ~proc:2 ~invoked:2 ~responded:9 200 ]
        in
        check_bool "reads 100 last" true
          (L.check ~init
             (h (base @ [ r ~id:3 ~proc:3 ~invoked:11 ~responded:12 100 ])));
        check_bool "reads 200 last" true
          (L.check ~init
             (h (base @ [ r ~id:3 ~proc:3 ~invoked:11 ~responded:12 200 ])));
        (* but two sequential readers cannot disagree on the final order *)
        check_bool "contradictory readers" false
          (L.check ~init
             (h
                (base
                @ [
                    r ~id:3 ~proc:3 ~invoked:11 ~responded:12 100;
                    r ~id:4 ~proc:3 ~invoked:13 ~responded:14 200;
                    r ~id:5 ~proc:4 ~invoked:15 ~responded:16 100;
                  ]))));
    tc "witness is a valid linearization" (fun () ->
        let hist =
          h
            [
              w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100;
              w ~id:2 ~proc:2 ~invoked:2 ~responded:9 200;
              r ~id:3 ~proc:3 ~invoked:3 ~responded:8 100;
              r ~id:4 ~proc:4 ~invoked:11 ~responded:12 200;
            ]
        in
        match L.witness ~init hist with
        | Some s ->
            check_bool "valid" true (Hist.Seq.is_linearization_of ~init hist s)
        | None -> Alcotest.fail "expected linearizable");
    tc "witness is None when not linearizable" (fun () ->
        check_bool "none" true
          (L.witness ~init
             (h [ r ~id:1 ~proc:1 ~invoked:1 ~responded:2 1 ])
          = None));
    tc "multi-object: per-object locality" (fun () ->
        let mixed =
          Hist.of_ops
            [
              Op.make ~id:1 ~proc:1 ~obj:"A" ~kind:(Op.Write (V.Int 1))
                ~invoked:1 ~responded:2 ();
              Op.make ~id:2 ~proc:2 ~obj:"B" ~kind:Op.Read ~invoked:3
                ~responded:4 ~result:(V.Int 0) ();
            ]
        in
        check_bool "both ok" true
          (L.check_multi ~init_of:(fun _ -> V.Int 0) mixed));
    tc "multi-object check rejected by single-object checker" (fun () ->
        let mixed =
          Hist.of_ops
            [
              Op.make ~id:1 ~proc:1 ~obj:"A" ~kind:Op.Read ~invoked:1
                ~responded:2 ~result:(V.Int 0) ();
              Op.make ~id:2 ~proc:2 ~obj:"B" ~kind:Op.Read ~invoked:3
                ~responded:4 ~result:(V.Int 0) ();
            ]
        in
        try
          ignore (L.check ~init mixed);
          Alcotest.fail "accepted multi-object history"
        with Invalid_argument _ -> ());
  ]

let enumerate_tests =
  [
    tc "enumerate finds both orders of concurrent writes" (fun () ->
        let hist =
          h
            [
              w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100;
              w ~id:2 ~proc:2 ~invoked:2 ~responded:9 200;
            ]
        in
        let ls = L.enumerate ~init hist ~limit:100 in
        Alcotest.(check int) "two" 2 (List.length ls));
    tc "enumerate_write_orders dedups by write sequence" (fun () ->
        let hist =
          h
            [
              w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100;
              w ~id:2 ~proc:2 ~invoked:2 ~responded:9 200;
              r ~id:3 ~proc:3 ~invoked:11 ~responded:12 200;
            ]
        in
        (* only one write order is consistent with the read *)
        Alcotest.(check int) "one" 1
          (List.length (L.enumerate_write_orders ~init hist ~limit:100)));
    tc "forced write prefix accepts consistent order" (fun () ->
        let hist =
          h
            [
              w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100;
              w ~id:2 ~proc:2 ~invoked:2 ~responded:9 200;
            ]
        in
        check_bool "1 then 2" true
          (L.check_with_forced_write_prefix ~init hist ~prefix:[ 1; 2 ]);
        check_bool "2 then 1" true
          (L.check_with_forced_write_prefix ~init hist ~prefix:[ 2; 1 ]));
    tc "forced write prefix rejects contradicted order" (fun () ->
        let hist =
          h
            [
              w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100;
              w ~id:2 ~proc:2 ~invoked:2 ~responded:9 200;
              r ~id:3 ~proc:3 ~invoked:11 ~responded:12 200;
            ]
        in
        (* the read of 200 forces write 2 last *)
        check_bool "2 then 1 impossible" false
          (L.check_with_forced_write_prefix ~init hist ~prefix:[ 2; 1 ]);
        check_bool "1 then 2 fine" true
          (L.check_with_forced_write_prefix ~init hist ~prefix:[ 1; 2 ]));
    tc "forced full prefix" (fun () ->
        let a = w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100 in
        let b = r ~id:2 ~proc:2 ~invoked:2 ~responded:9 0 in
        let hist = h [ a; b ] in
        check_bool "read first" true
          (L.check_with_forced_prefix ~init hist ~prefix:[ 2; 1 ]);
        check_bool "write first breaks read" false
          (L.check_with_forced_prefix ~init hist ~prefix:[ 1; 2 ]));
    tc "write_orders_extending" (fun () ->
        let hist =
          h
            [
              w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100;
              w ~id:2 ~proc:2 ~invoked:2 ~responded:9 200;
            ]
        in
        Alcotest.(check int) "extending [1]" 1
          (List.length (L.write_orders_extending ~init hist ~prefix:[ 1 ] ~limit:50)));
    tc "too large raises" (fun () ->
        let ops =
          List.init 63 (fun i ->
              w ~id:(i + 1) ~proc:(i + 1) ~invoked:((i * 2) + 1)
                ~responded:((i * 2) + 2)
                (100 + i))
        in
        try
          ignore (L.check ~init (h ops));
          Alcotest.fail "accepted 63 ops"
        with L.Too_large { n; cap } ->
          Alcotest.(check int) "n carried" 63 n;
          Alcotest.(check int) "cap carried" L.max_ops cap);
  ]

(* property: histories produced by an atomic register are always accepted,
   and the generator's own witness agrees with the checker's *)
let props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"atomic histories always linearizable" ~count:150
         (Gen.arb_atomic Gen.default_spec) (fun hist ->
           L.check ~init:Gen.default_spec.Gen.init hist));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"checker witness always validates" ~count:150
         (Gen.arb_atomic Gen.default_spec) (fun hist ->
           match L.witness ~init:Gen.default_spec.Gen.init hist with
           | Some s ->
               Hist.Seq.is_linearization_of ~init:Gen.default_spec.Gen.init
                 hist s
           | None -> false));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"on arbitrary histories, check = witness existence" ~count:150
         (Gen.arb_arbitrary { Gen.default_spec with n_ops = 6 })
         (fun hist ->
           L.check ~init:Gen.default_spec.Gen.init hist
           = Option.is_some (L.witness ~init:Gen.default_spec.Gen.init hist)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"non-distinct write values: atomic histories still accepted"
         ~count:100
         (Gen.arb_atomic { Gen.default_spec with distinct_writes = false })
         (fun hist -> L.check ~init:Gen.default_spec.Gen.init hist));
  ]

let suite =
  [
    ("lincheck.unit", unit_tests);
    ("lincheck.enumerate", enumerate_tests);
    ("lincheck.props", props);
  ]

(* ----- differential oracle -------------------------------------------------------
   A brute-force reference checker: enumerate every permutation of every
   subset that contains all complete ops (pending writes optional), and
   test the three properties of Definition 2 directly via Hist.Seq.  Only
   tractable for tiny histories — which is exactly what makes it a trusted
   oracle for the DFS. *)

let rec insertions x = function
  | [] -> [ [ x ] ]
  | y :: ys as l ->
      (x :: l) :: List.map (fun r -> y :: r) (insertions x ys)

let rec permutations = function
  | [] -> [ [] ]
  | x :: xs -> List.concat_map (insertions x) (permutations xs)

let rec subsets = function
  | [] -> [ [] ]
  | x :: xs ->
      let rest = subsets xs in
      rest @ List.map (fun s -> x :: s) rest

let brute_force ~init hist =
  let ops = Hist.ops hist in
  let complete = List.filter Op.is_complete ops in
  let pending_writes =
    List.filter (fun o -> Op.is_write o && Op.is_pending o) ops
  in
  List.exists
    (fun extra ->
      List.exists
        (fun seq -> Hist.Seq.is_linearization_of ~init hist seq)
        (permutations (complete @ extra)))
    (subsets pending_writes)

let oracle_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"DFS checker agrees with the brute-force oracle (arbitrary)"
         ~count:120
         (Gen.arb_arbitrary { Gen.default_spec with n_ops = 5; n_procs = 3 })
         (fun hist ->
           QCheck.assume (List.length (Hist.ops hist) <= 6);
           L.check ~init hist = brute_force ~init hist));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"DFS checker agrees with the oracle (repeated write values)"
         ~count:120
         (Gen.arb_arbitrary
            { Gen.default_spec with n_ops = 5; n_procs = 3; distinct_writes = false })
         (fun hist ->
           QCheck.assume (List.length (Hist.ops hist) <= 6);
           L.check ~init hist = brute_force ~init hist));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"DFS checker agrees with the oracle (atomic histories)"
         ~count:80
         (Gen.arb_atomic { Gen.default_spec with n_ops = 5 })
         (fun hist ->
           QCheck.assume (List.length (Hist.ops hist) <= 6);
           L.check ~init hist && brute_force ~init hist));
  ]

let suite = suite @ [ ("lincheck.oracle", oracle_tests) ]

(* ----- the int-pair memo set vs a Hashtbl oracle --------------------------------- *)

module Ipset = Linchk.Ipset

let ipset_tests =
  [
    tc "Ipset agrees with a Hashtbl set on random streams" (fun () ->
        let rand = Random.State.make [| 0x1953 |] in
        for _trial = 1 to 10 do
          let s = Ipset.create ~capacity:8 () in
          let oracle : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
          for _step = 1 to 3_000 do
            (* dense, highly regular keys, like the DFS produces: small
               masks and small cursor*nvals+vid packings (k2 may be any
               int, so the stream also exercises negatives) *)
            let k1 = Random.State.int rand 0x400 in
            let k2 = Random.State.int rand 600 - 100 in
            if Random.State.bool rand then begin
              Ipset.add s ~k1 ~k2;
              Hashtbl.replace oracle (k1, k2) ()
            end
            else
              Alcotest.(check bool) "mem agrees"
                (Hashtbl.mem oracle (k1, k2))
                (Ipset.mem s ~k1 ~k2)
          done;
          Alcotest.(check int) "cardinality agrees" (Hashtbl.length oracle)
            (Ipset.length s)
        done);
    tc "Ipset add is idempotent" (fun () ->
        let s = Ipset.create () in
        Ipset.add s ~k1:5 ~k2:7;
        Ipset.add s ~k1:5 ~k2:7;
        Alcotest.(check int) "size" 1 (Ipset.length s);
        Alcotest.(check bool) "mem" true (Ipset.mem s ~k1:5 ~k2:7);
        Alcotest.(check bool) "near miss k1" false (Ipset.mem s ~k1:6 ~k2:7);
        Alcotest.(check bool) "near miss k2" false (Ipset.mem s ~k1:5 ~k2:8));
    tc "Ipset rejects negative first components" (fun () ->
        let s = Ipset.create () in
        (try
           Ipset.add s ~k1:(-1) ~k2:0;
           Alcotest.fail "add accepted k1 < 0"
         with Invalid_argument _ -> ());
        try
          ignore (Ipset.mem s ~k1:(-1) ~k2:0);
          Alcotest.fail "mem accepted k1 < 0"
        with Invalid_argument _ -> ());
  ]

(* ----- interned decide vs the boxed-key reference -------------------------------
   A line-for-line reference of the pre-interning DFS: same candidate
   order, but the register value is carried as a V.t compared with
   V.equal and the failure memo is a Hashtbl keyed by the boxed
   (mask, cursor, value) triple.  Witness equality on seeded random
   histories pins that value interning changed neither the verdicts nor
   the witnesses the search returns. *)

let ref_witness ~init hist =
  let ops =
    Hist.ops hist
    |> List.filter (fun (o : Op.t) -> Op.is_write o || Op.is_complete o)
    |> Array.of_list
  in
  let n = Array.length ops in
  let pred = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if j <> i && Op.precedes ops.(j) ops.(i) then
        pred.(i) <- pred.(i) lor (1 lsl j)
    done
  done;
  let complete_mask = ref 0 in
  Array.iteri
    (fun i o -> if Op.is_complete o then complete_mask := !complete_mask lor (1 lsl i))
    ops;
  let complete_mask = !complete_mask in
  let failed = Hashtbl.create 64 in
  let rec go mask v path =
    if complete_mask land mask = complete_mask then Some (List.rev path)
    else if Hashtbl.mem failed (mask, 0, v) then None
    else begin
      let result = ref None in
      let i = ref 0 in
      while Option.is_none !result && !i < n do
        let idx = !i in
        incr i;
        if mask land (1 lsl idx) = 0 && pred.(idx) land mask = pred.(idx)
        then begin
          let o = ops.(idx) in
          match o.kind with
          | Op.Write wv -> (
              match go (mask lor (1 lsl idx)) wv (o :: path) with
              | Some _ as r -> result := r
              | None -> ())
          | Op.Read -> (
              match o.result with
              | Some rv when V.equal rv v -> (
                  match go (mask lor (1 lsl idx)) v (o :: path) with
                  | Some _ as r -> result := r
                  | None -> ())
              | _ -> ())
        end
      done;
      if Option.is_none !result then Hashtbl.add failed (mask, 0, v) ();
      !result
    end
  in
  go 0 init []

let ids_of ops = List.map (fun (o : Op.t) -> o.id) ops

let witness_equiv_tests =
  [
    tc "interned decide = boxed reference on 200 seeded histories" (fun () ->
        let rand = Random.State.make [| 0xC0FFEE |] in
        for i = 0 to 199 do
          let hist =
            match i mod 3 with
            | 0 ->
                Gen.atomic_history
                  { Gen.default_spec with n_ops = 10; n_procs = 4 }
                  rand
            | 1 ->
                Gen.arbitrary_history
                  { Gen.default_spec with n_ops = 9; n_procs = 3 }
                  rand
            | _ ->
                (* repeated write values stress the interning table *)
                Gen.arbitrary_history
                  {
                    Gen.default_spec with
                    n_ops = 9;
                    n_procs = 3;
                    distinct_writes = false;
                  }
                  rand
          in
          match (ref_witness ~init hist, L.witness ~init hist) with
          | None, None -> ()
          | Some a, Some b ->
              Alcotest.(check (list int))
                (Printf.sprintf "witness %d identical" i)
                (ids_of a) (ids_of b)
          | Some _, None -> Alcotest.failf "history %d: verdict flipped to no" i
          | None, Some _ ->
              Alcotest.failf "history %d: verdict flipped to yes" i
        done);
  ]

let suite =
  suite
  @ [
      ("lincheck.ipset", ipset_tests);
      ("lincheck.interning", witness_equiv_tests);
    ]
