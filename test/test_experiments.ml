(* Integration test: the full experiment battery (quick profile) must
   reproduce every claim of the paper. *)

let tcs name f = Alcotest.test_case name `Slow f

let suite =
  [
    ( "experiments.battery",
      [
        tcs "E1-E15: claims reproduce and every report carries metrics"
          (fun () ->
            let reports = Experiments.all ~quick:true () in
            List.iter
              (fun (r : Experiments.report) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: %s" r.Experiments.id r.Experiments.measured)
                  true r.Experiments.pass;
                let finite =
                  List.filter
                    (fun (_, v) -> Float.is_finite v)
                    r.Experiments.metrics
                in
                Alcotest.(check bool)
                  (Printf.sprintf "%s carries >= 3 finite metrics"
                     r.Experiments.id)
                  true
                  (List.length finite >= 3))
              reports);
      ] );
  ]
