(* Tests for the concrete register constructions: SWMR base registers,
   Algorithm 2 (vector timestamps) and Algorithm 4 (Lamport clocks),
   including the paper's Figure 3 scenario and randomized checking. *)

module V = Core.Value
module Sched = Core.Sched
module Swmr = Core.Swmr
module Alg2 = Core.Wsl_register
module Alg4 = Core.Lamport_register
module Vec = Core.Vector
module Lam = Core.Lamport

let tc name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let drive sched ~seed ~max_steps =
  let rng = Core.Rng.create seed in
  ignore (Sched.run sched ~policy:(Sched.random_policy rng) ~max_steps)

(* ----- SWMR base registers ------------------------------------------------------ *)

let swmr_tests =
  [
    tc "only the writer may write" (fun () ->
        let sched = Sched.create () in
        let r = Swmr.create ~writer:1 ~name:"V" 0 in
        let failed = ref false in
        Sched.spawn sched ~pid:2 (fun () ->
            try Swmr.write r ~proc:2 5
            with Invalid_argument _ -> failed := true);
        drive sched ~seed:1L ~max_steps:10;
        check_bool "rejected" true !failed;
        check_int "unchanged" 0 (Swmr.peek r));
    tc "write then read" (fun () ->
        let sched = Sched.create () in
        let r = Swmr.create ~writer:1 ~name:"V" 0 in
        let got = ref (-1) in
        Sched.spawn sched ~pid:1 (fun () ->
            Swmr.write r ~proc:1 42;
            got := Swmr.read r);
        drive sched ~seed:1L ~max_steps:10;
        check_int "read back" 42 !got);
    tc "each access costs one step" (fun () ->
        let sched = Sched.create () in
        let r = Swmr.create ~writer:1 ~name:"V" 0 in
        let phase = ref 0 in
        Sched.spawn sched ~pid:1 (fun () ->
            incr phase;
            ignore (Swmr.read r);
            incr phase;
            ignore (Swmr.read r);
            incr phase);
        ignore (Sched.step sched ~pid:1);
        check_int "before first read" 1 !phase;
        ignore (Sched.step sched ~pid:1);
        check_int "between reads" 2 !phase;
        ignore (Sched.step sched ~pid:1);
        check_int "done" 3 !phase);
  ]

(* ----- Algorithm 2 --------------------------------------------------------------- *)

let alg2_tests =
  [
    tc "sequential write/read round-trip" (fun () ->
        let sched = Sched.create () in
        let r = Alg2.create ~sched ~name:"R" ~n:3 ~init:0 in
        let got = ref (-1) in
        Sched.spawn sched ~pid:1 (fun () ->
            Alg2.write r ~proc:1 7;
            got := Alg2.read r ~proc:1);
        drive sched ~seed:1L ~max_steps:100;
        check_int "round trip" 7 !got);
    tc "read sees the lexicographically largest timestamp" (fun () ->
        let sched = Sched.create () in
        let r = Alg2.create ~sched ~name:"R" ~n:2 ~init:0 in
        let got = ref (-1) in
        Sched.spawn sched ~pid:1 (fun () -> Alg2.write r ~proc:1 11);
        Sched.spawn sched ~pid:2 (fun () ->
            Alg2.write r ~proc:2 22;
            got := Alg2.read r ~proc:2);
        (* run p1 fully, then p2: p2's write reads p1's published ts and
           dominates it *)
        while Sched.runnable sched ~pid:1 do
          ignore (Sched.step sched ~pid:1)
        done;
        while Sched.runnable sched ~pid:2 do
          ignore (Sched.step sched ~pid:2)
        done;
        check_int "latest" 22 !got);
    tc "published timestamps are complete" (fun () ->
        let sched = Sched.create () in
        let r = Alg2.create ~sched ~name:"R" ~n:3 ~init:0 in
        Sched.spawn sched ~pid:2 (fun () -> Alg2.write r ~proc:2 5);
        drive sched ~seed:2L ~max_steps:50;
        Array.iter
          (fun (_, ts) -> check_bool "complete" true (Vec.is_complete ts))
          (Alg2.val_contents r));
    tc "own component increments per write" (fun () ->
        let sched = Sched.create () in
        let r = Alg2.create ~sched ~name:"R" ~n:2 ~init:0 in
        Sched.spawn sched ~pid:1 (fun () ->
            Alg2.write r ~proc:1 1;
            Alg2.write r ~proc:1 2;
            Alg2.write r ~proc:1 3);
        drive sched ~seed:3L ~max_steps:200;
        let _, ts = (Alg2.val_contents r).(0) in
        check_bool "component 1 = 3" true (Vec.get ts 1 = Vec.Fin 3));
    tc "proc out of range rejected" (fun () ->
        let sched = Sched.create () in
        let r = Alg2.create ~sched ~name:"R" ~n:2 ~init:0 in
        Alcotest.check_raises "range"
          (Invalid_argument "R: process id 3 out of range 1..2") (fun () ->
            Alg2.write r ~proc:3 1));
    tc "read_with_ts returns the winning pair" (fun () ->
        let sched = Sched.create () in
        let r = Alg2.create ~sched ~name:"R" ~n:2 ~init:0 in
        let got = ref (0, Vec.zero 2) in
        Sched.spawn sched ~pid:1 (fun () ->
            Alg2.write r ~proc:1 9;
            got := Alg2.read_with_ts r ~proc:1);
        drive sched ~seed:4L ~max_steps:100;
        check_int "value" 9 (fst !got);
        check_bool "ts" true (Vec.equal (snd !got) (Vec.of_ints [ 1; 0 ])));
  ]

let alg2_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"random Alg2 runs satisfy (L) and (P) via Algorithm 3"
         ~count:30
         (QCheck.make QCheck.Gen.(map Int64.of_int (int_bound 100_000)))
         (fun seed ->
           let run =
             Core.Scenario.random_alg2_run ~n:3 ~writes_per_proc:2
               ~reads_per_proc:2 ~seed ()
           in
           Core.Scenario.check_alg2_run run = Ok ()));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random Alg2 runs are linearizable" ~count:20
         (QCheck.make QCheck.Gen.(map Int64.of_int (int_bound 100_000)))
         (fun seed ->
           let run =
             Core.Scenario.random_alg2_run ~n:4 ~writes_per_proc:1
               ~reads_per_proc:2 ~seed ()
           in
           run.Core.Scenario.completed
           && Core.Lincheck.check ~init:(V.Int 0) run.Core.Scenario.history));
  ]

(* ----- Algorithm 4 ---------------------------------------------------------------- *)

let alg4_tests =
  [
    tc "sequential write/read round-trip" (fun () ->
        let sched = Sched.create () in
        let r = Alg4.create ~sched ~name:"R" ~n:3 ~init:0 in
        let got = ref (-1) in
        Sched.spawn sched ~pid:1 (fun () ->
            Alg4.write r ~proc:1 7;
            got := Alg4.read r ~proc:1);
        drive sched ~seed:1L ~max_steps:100;
        check_int "round trip" 7 !got);
    tc "sequence numbers increase across writers" (fun () ->
        let sched = Sched.create () in
        let r = Alg4.create ~sched ~name:"R" ~n:2 ~init:0 in
        Sched.spawn sched ~pid:1 (fun () -> Alg4.write r ~proc:1 1);
        while Sched.runnable sched ~pid:1 do
          ignore (Sched.step sched ~pid:1)
        done;
        Sched.spawn sched ~pid:2 (fun () -> Alg4.write r ~proc:2 2);
        while Sched.runnable sched ~pid:2 do
          ignore (Sched.step sched ~pid:2)
        done;
        let _, ts1 = (Alg4.val_contents r).(0) in
        let _, ts2 = (Alg4.val_contents r).(1) in
        check_int "sq1" 1 ts1.Lam.sq;
        check_int "sq2" 2 ts2.Lam.sq;
        check_bool "order" true (Lam.lt ts1 ts2));
    tc "ties broken by pid" (fun () ->
        (* two writers that both read sq 0 produce ⟨1,1⟩ and ⟨1,2⟩:
           reader must return pid 2's value *)
        let sched = Sched.create () in
        let r = Alg4.create ~sched ~name:"R" ~n:2 ~init:0 in
        let got = ref (-1) in
        Sched.spawn sched ~pid:1 (fun () -> Alg4.write r ~proc:1 11);
        Sched.spawn sched ~pid:2 (fun () -> Alg4.write r ~proc:2 22);
        (* interleave the two writes completely before either publishes *)
        for _ = 1 to 4 do
          ignore (Sched.step sched ~pid:1);
          ignore (Sched.step sched ~pid:2)
        done;
        while Sched.runnable sched ~pid:1 do
          ignore (Sched.step sched ~pid:1)
        done;
        while Sched.runnable sched ~pid:2 do
          ignore (Sched.step sched ~pid:2)
        done;
        let sched2 = sched in
        Sched.spawn sched2 ~pid:4 (fun () -> got := Alg4.read r ~proc:2);
        while Sched.runnable sched2 ~pid:4 do
          ignore (Sched.step sched2 ~pid:4)
        done;
        check_int "pid 2 wins the tie" 22 !got);
  ]

let alg4_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random Alg4 runs are linearizable (Thm 12)"
         ~count:30
         (QCheck.make QCheck.Gen.(map Int64.of_int (int_bound 100_000)))
         (fun seed ->
           let run =
             Core.Scenario.random_alg4_run ~n:3 ~writes_per_proc:2
               ~reads_per_proc:2 ~seed ()
           in
           Core.Scenario.check_alg4_run run = Ok ()));
  ]

(* ----- Figure 3 -------------------------------------------------------------------- *)

let fig3_tests =
  [
    tc "on-line order committed at w2's completion (Fig 3)" (fun () ->
        let f3 = Core.Scenario.fig3 () in
        Alcotest.(check (list int)) "B at t = {w3, w2}"
          [ f3.Core.Scenario.w3; f3.Core.Scenario.w2 ]
          f3.Core.Scenario.ws_at_t);
    tc "final write order w3 < w2 < w1 (Fig 3)" (fun () ->
        let f3 = Core.Scenario.fig3 () in
        Alcotest.(check (list int)) "final"
          [ f3.Core.Scenario.w3; f3.Core.Scenario.w2; f3.Core.Scenario.w1 ]
          f3.Core.Scenario.final_ws);
    tc "fig3 history is linearizable" (fun () ->
        let f3 = Core.Scenario.fig3 () in
        check_bool "lin" true
          (Core.Lincheck.check ~init:(V.Int 0) f3.Core.Scenario.history));
  ]

let suite =
  [
    ("registers.swmr", swmr_tests);
    ("registers.alg2", alg2_tests @ alg2_props);
    ("registers.alg4", alg4_tests @ alg4_props);
    ("registers.fig3", fig3_tests);
  ]
