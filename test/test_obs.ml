(* Obs: metrics semantics, JSON round-trips, and the trace JSONL export. *)

let tc name f = Alcotest.test_case name `Quick f

(* ----- Metrics ------------------------------------------------------------- *)

let test_counter_semantics () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "a";
  Obs.Metrics.incr m "a" ~by:4;
  Obs.Metrics.incr m "b";
  Alcotest.(check int) "a accumulated" 5 (Obs.Metrics.counter m "a");
  Alcotest.(check int) "b accumulated" 1 (Obs.Metrics.counter m "b");
  Alcotest.(check int) "unknown counter reads 0" 0 (Obs.Metrics.counter m "c");
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Metrics.incr: counters are monotone (by < 0)") (fun () ->
      Obs.Metrics.incr m "a" ~by:(-1))

let test_histogram_semantics () =
  let m = Obs.Metrics.create () in
  List.iter (fun v -> Obs.Metrics.observe m "h" v) [ 5.; 1.; 3.; 2.; 4. ];
  let snap = Obs.Metrics.snapshot m in
  match List.assoc_opt "h" snap.Obs.Metrics.histograms with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some s ->
      Alcotest.(check int) "count" 5 s.Obs.Metrics.count;
      Alcotest.(check (float 1e-9)) "sum" 15. s.Obs.Metrics.sum;
      Alcotest.(check (float 1e-9)) "min" 1. s.Obs.Metrics.min;
      Alcotest.(check (float 1e-9)) "max" 5. s.Obs.Metrics.max;
      Alcotest.(check (float 1e-9)) "mean" 3. s.Obs.Metrics.mean;
      Alcotest.(check (float 1e-9)) "p50" 3. s.Obs.Metrics.p50

let test_delta () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "x" ~by:2;
  Obs.Metrics.observe m "h" 10.;
  let before = Obs.Metrics.snapshot m in
  Obs.Metrics.incr m "x" ~by:3;
  Obs.Metrics.incr m "y";
  Obs.Metrics.set_gauge m "g" 7.;
  Obs.Metrics.observe m "h" 20.;
  Obs.Metrics.observe m "h" 40.;
  let after = Obs.Metrics.snapshot m in
  let d = Obs.Metrics.delta ~before ~after in
  let get k =
    match List.assoc_opt k d with
    | Some v -> v
    | None -> Alcotest.failf "delta missing %s" k
  in
  Alcotest.(check (float 1e-9)) "counter increment" 3. (get "x");
  Alcotest.(check (float 1e-9)) "new counter" 1. (get "y");
  Alcotest.(check (float 1e-9)) "gauge at after value" 7. (get "g");
  Alcotest.(check (float 1e-9)) "new histogram samples" 2. (get "h.n");
  Alcotest.(check (float 1e-9)) "mean of new samples" 30. (get "h.mean");
  Alcotest.(check bool) "unchanged counter omitted" true
    (List.assoc_opt "x" d = Some 3. && not (List.mem_assoc "h.count" d))

(* ----- Handles (the allocation-free hot path) ------------------------------ *)

let test_handles_alias_string_api () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter_h m "k" in
  Obs.Metrics.incr_h c;
  Obs.Metrics.incr m "k" ~by:4;
  Obs.Metrics.incr_h c ~by:2;
  Alcotest.(check int) "handle and string hit the same cell" 7
    (Obs.Metrics.counter m "k");
  Alcotest.check_raises "handles keep counters monotone"
    (Invalid_argument "Metrics.incr: counters are monotone (by < 0)") (fun () ->
      Obs.Metrics.incr_h c ~by:(-1));
  let g = Obs.Metrics.gauge_h m "g" in
  Alcotest.(check bool) "resolving a gauge handle does not create the gauge"
    true
    (Obs.Metrics.gauge m "g" = None);
  Obs.Metrics.set_gauge_h g 3.;
  Obs.Metrics.set_gauge m "g" 5.;
  Obs.Metrics.set_gauge_h g 9.;
  Alcotest.(check (option (float 1e-9))) "gauge cell shared" (Some 9.)
    (Obs.Metrics.gauge m "g");
  let h = Obs.Metrics.hist_h m "h" in
  Obs.Metrics.observe_h h 1.;
  Obs.Metrics.observe m "h" 3.;
  match Obs.Metrics.summary m "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
      Alcotest.(check int) "observations from both paths" 2 s.Obs.Metrics.count;
      Alcotest.(check (float 1e-9)) "sum" 4. s.Obs.Metrics.sum

let test_merge_after_handle_use () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  let ca = Obs.Metrics.counter_h a "n" and cb = Obs.Metrics.counter_h b "n" in
  Obs.Metrics.incr_h ca ~by:3;
  Obs.Metrics.incr_h cb ~by:4;
  Obs.Metrics.observe_h (Obs.Metrics.hist_h b "h") 10.;
  Obs.Metrics.merge ~into:a b;
  Alcotest.(check int) "counters add" 7 (Obs.Metrics.counter a "n");
  (match Obs.Metrics.summary a "h" with
  | Some s -> Alcotest.(check int) "hist carried" 1 s.Obs.Metrics.count
  | None -> Alcotest.fail "merged histogram missing");
  (* the handle still points at the live cell after the merge *)
  Obs.Metrics.incr_h ca;
  Alcotest.(check int) "handle live after merge" 8 (Obs.Metrics.counter a "n")

let test_reservoir_growth_and_cap () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.hist_h m "h" in
  (* crossing the 16-slot initial reservoir must lose nothing *)
  for i = 1 to 17 do
    Obs.Metrics.observe_h h (float_of_int i)
  done;
  (match Obs.Metrics.summary m "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
      Alcotest.(check int) "count across growth" 17 s.Obs.Metrics.count;
      Alcotest.(check (float 1e-9)) "sum exact" 153. s.Obs.Metrics.sum;
      Alcotest.(check (float 1e-9)) "max exact" 17. s.Obs.Metrics.max);
  (* beyond reservoir_cap: count/sum/min/max stay exact, quantiles are
     computed over the first [reservoir_cap] retained samples *)
  let m2 = Obs.Metrics.create () in
  let h2 = Obs.Metrics.hist_h m2 "h" in
  for i = 1 to 5000 do
    Obs.Metrics.observe_h h2 (float_of_int i)
  done;
  match Obs.Metrics.summary m2 "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
      Alcotest.(check int) "count past the cap" 5000 s.Obs.Metrics.count;
      Alcotest.(check (float 1e-9)) "max past the cap" 5000. s.Obs.Metrics.max;
      Alcotest.(check (float 1e-9)) "sum exact past the cap" 12502500.
        s.Obs.Metrics.sum;
      (* reservoir retains samples 1..4096: p50 = round(0.5 * 4095) + 1 *)
      Alcotest.(check (float 1e-9)) "p50 over the retained prefix" 2049.
        s.Obs.Metrics.p50;
      Alcotest.(check bool) "p99 bounded by the cap" true
        (s.Obs.Metrics.p99 <= 4096.)

(* ----- Json ---------------------------------------------------------------- *)

let test_json_roundtrip () =
  let module J = Obs.Json in
  let v =
    J.Obj
      [
        ("s", J.Str "a \"quoted\" line\nwith \t escapes and unicode \xc3\xa9");
        ("i", J.Int (-42));
        ("f", J.Float 1.5);
        ("b", J.Bool true);
        ("n", J.Null);
        ("l", J.List [ J.Int 1; J.Str "two"; J.List [] ]);
      ]
  in
  match J.of_string (J.to_string v) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok v' -> Alcotest.(check bool) "round-trip equal" true (J.equal v v')

let test_json_unicode_escape () =
  let module J = Obs.Json in
  match J.of_string "\"caf\\u00e9\"" with
  | Ok (J.Str s) -> Alcotest.(check string) "utf-8 decoded" "caf\xc3\xa9" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "parse failed: %s" e

(* ----- Trace JSONL round-trip ---------------------------------------------- *)

let test_trace_jsonl_roundtrip () =
  let scn = Core.Scenario.fig3 () in
  let tr = scn.Core.Scenario.trace in
  let entries = Core.Trace.json_entries tr in
  Alcotest.(check bool) "fig3 trace non-empty" true (entries <> []);
  let text = Obs.Export.lines_to_string entries in
  match Obs.Export.parse_lines text with
  | Error e -> Alcotest.failf "JSONL parse failed: %s" e
  | Ok back ->
      Alcotest.(check int)
        "entry count preserved"
        (List.length entries) (List.length back);
      Alcotest.(check bool)
        "entries equal in Trace.entries order" true
        (List.equal Obs.Json.equal entries back)

let suite =
  [
    ( "obs",
      [
        tc "counter semantics" test_counter_semantics;
        tc "histogram summary" test_histogram_semantics;
        tc "snapshot delta" test_delta;
        tc "handles alias the string API" test_handles_alias_string_api;
        tc "merge after handle use" test_merge_after_handle_use;
        tc "reservoir growth and cap" test_reservoir_growth_and_cap;
        tc "json round-trip" test_json_roundtrip;
        tc "json \\uXXXX decoding" test_json_unicode_escape;
        tc "fig3 trace JSONL round-trip" test_trace_jsonl_roundtrip;
      ] );
  ]
