(* Tests for the multi-writer ABD register and its non-WSL counterexample
   (Figure 4 transposed to message passing). *)

module V = Core.Value
module Sched = Core.Sched
module Net = Core.Net
module Mw = Core.Mwabd
module Runs = Core.Abd_runs

let tc name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let basic_tests =
  [
    tc "any node can write; readers see the latest" (fun () ->
        let sched = Sched.create ~seed:1L () in
        let reg = Mw.create ~sched ~name:"MW" ~n:3 ~init:0 () in
        let got = ref (-1) in
        Sched.spawn sched ~pid:0 (fun () -> Mw.write reg ~proc:0 5);
        Sched.spawn sched ~pid:1 (fun () ->
            Mw.write reg ~proc:1 6;
            got := Mw.read reg ~reader:1);
        let rng = Core.Rng.create 2L in
        let policy =
          Net.auto_deliver_policy (Mw.net reg) ~rng (Sched.random_policy rng)
        in
        ignore (Sched.run sched ~policy ~max_steps:8000);
        check_bool "one of the writes" true (!got = 5 || !got = 6));
    tc "reader of a quiescent register reads the last write" (fun () ->
        let sched = Sched.create ~seed:3L () in
        let reg = Mw.create ~sched ~name:"MW" ~n:3 ~init:0 () in
        let got = ref (-1) in
        let w_done = ref false in
        Sched.spawn sched ~pid:0 (fun () ->
            Mw.write reg ~proc:0 7;
            w_done := true);
        let rng = Core.Rng.create 4L in
        let policy s =
          if !w_done then Sched.Halt
          else
            Net.auto_deliver_policy (Mw.net reg) ~rng (Sched.random_policy rng) s
        in
        ignore (Sched.run sched ~policy ~max_steps:4000);
        check_bool "write finished" true !w_done;
        Sched.spawn sched ~pid:2 (fun () -> got := Mw.read reg ~reader:2);
        let policy =
          Net.auto_deliver_policy (Mw.net reg) ~rng (Sched.random_policy rng)
        in
        ignore (Sched.run sched ~policy ~max_steps:4000);
        check_int "latest" 7 !got);
    tc "create validates n" (fun () ->
        Alcotest.check_raises "n" (Invalid_argument "Mwabd.create: n must be >= 2")
          (fun () ->
            ignore
              (Mw.create ~sched:(Sched.create ()) ~name:"X" ~n:1 ~init:0 ())));
  ]

let random_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random MW-ABD runs are linearizable" ~count:15
         (QCheck.make ~print:Int64.to_string
            QCheck.Gen.(map Int64.of_int (int_bound 1_000_000)))
         (fun seed ->
           let run =
             Runs.execute_mw ~n:3 ~writers:[ 0; 1 ] ~writes_each:2
               ~readers:[ 2 ] ~reads_each:3 ~seed ()
           in
           run.Runs.completed
           && Core.Lincheck.check ~init:(V.Int 0) run.Runs.history));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"5-node MW-ABD runs are linearizable" ~count:8
         (QCheck.make ~print:Int64.to_string
            QCheck.Gen.(map Int64.of_int (int_bound 1_000_000)))
         (fun seed ->
           let run =
             Runs.execute_mw ~n:5 ~writers:[ 0; 1; 2 ] ~writes_each:1
               ~readers:[ 3; 4 ] ~reads_each:2 ~seed ()
           in
           run.Runs.completed
           && Core.Lincheck.check ~init:(V.Int 0) run.Runs.history));
  ]

let scenario_tests =
  [
    tc "MW-ABD is not write strongly-linearizable (Fig 4 in messages)"
      (fun () ->
        let o = Core.Mwabd_scenario.run () in
        check_bool "tree impossible" true o.Core.Mwabd_scenario.wsl_impossible);
    tc "each branch alone admits a WSL function" (fun () ->
        let o = Core.Mwabd_scenario.run () in
        check_bool "chains" true o.Core.Mwabd_scenario.chains_ok);
    tc "all three histories are linearizable" (fun () ->
        let o = Core.Mwabd_scenario.run () in
        check_bool "lin" true o.Core.Mwabd_scenario.all_linearizable);
    tc "the branches really share G" (fun () ->
        let o = Core.Mwabd_scenario.run () in
        check_bool "h1" true
          (Core.Hist.is_prefix o.Core.Mwabd_scenario.g
             ~of_:o.Core.Mwabd_scenario.h1);
        check_bool "h2" true
          (Core.Hist.is_prefix o.Core.Mwabd_scenario.g
             ~of_:o.Core.Mwabd_scenario.h2));
    tc "the reads observed opposite writers" (fun () ->
        let o = Core.Mwabd_scenario.run () in
        let result h =
          Core.Hist.reads h
          |> List.find_map (fun (op : Core.Op.t) -> op.result)
        in
        check_bool "h1 saw w2" true (result o.Core.Mwabd_scenario.h1 = Some (V.Int 302));
        check_bool "h2 saw w1" true (result o.Core.Mwabd_scenario.h2 = Some (V.Int 301)));
  ]

let suite =
  [
    ("mwabd.basic", basic_tests);
    ("mwabd.random", random_tests);
    ("mwabd.scenario", scenario_tests);
  ]
