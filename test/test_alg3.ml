(* Tests for Algorithm 3 — the constructive, on-line write
   strong-linearization function for Algorithm 2's histories. *)

module V = Core.Value
module Op = Core.Op
module Hist = Core.Hist
module Sched = Core.Sched
module Trace = Core.Trace
module Alg2 = Core.Wsl_register
module A3 = Core.Wsl_function

let tc name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let init = V.Int 0

(* run a scripted or random Alg2 workload and return its trace *)
let run_workload ~n ~seed ~ops =
  let sched = Sched.create ~seed () in
  let r = Alg2.create ~sched ~name:"R" ~n ~init:0 in
  List.iteri
    (fun i prog ->
      Sched.spawn sched ~pid:(i + 1) (fun () -> prog r))
    ops;
  let rng = Core.Rng.create (Int64.add seed 5L) in
  ignore (Sched.run sched ~policy:(Sched.random_policy rng) ~max_steps:5000);
  Sched.trace sched

let unit_tests =
  [
    tc "empty trace linearizes to nothing" (fun () ->
        let tr = Trace.create () in
        Alcotest.(check int) "empty" 0 (List.length (A3.linearize tr ~obj:"R")));
    tc "single write linearizes to itself" (fun () ->
        let tr =
          run_workload ~n:2 ~seed:1L
            ~ops:[ (fun r -> Alg2.write r ~proc:1 100); (fun _ -> ()) ]
        in
        match A3.linearize tr ~obj:"R" with
        | [ o ] -> check_bool "write" true (Op.is_write o)
        | l -> Alcotest.fail (Printf.sprintf "expected 1 op, got %d" (List.length l)));
    tc "reads of the initial value are prepended" (fun () ->
        let tr =
          run_workload ~n:2 ~seed:2L
            ~ops:
              [
                (fun r -> ignore (Alg2.read r ~proc:1));
                (fun r -> Alg2.write r ~proc:2 100);
              ]
        in
        let s = A3.linearize tr ~obj:"R" in
        (* if the read returned 0 it must precede the write in S *)
        let h = Trace.history tr in
        let rd = List.find Op.is_read (Hist.ops h) in
        (match rd.Op.result with
        | Some (V.Int 0) ->
            check_bool "read first" true (Op.is_read (List.hd s))
        | _ ->
            (* read saw the write: it must come after it *)
            check_bool "write first" true (Op.is_write (List.hd s)));
        check_bool "valid" true (Hist.Seq.is_linearization_of ~init h s));
    tc "write_order grows monotonically in time" (fun () ->
        let tr =
          run_workload ~n:3 ~seed:3L
            ~ops:
              [
                (fun r -> Alg2.write r ~proc:1 101; Alg2.write r ~proc:1 102);
                (fun r -> Alg2.write r ~proc:2 201);
                (fun r -> ignore (Alg2.read r ~proc:3));
              ]
        in
        let rec is_prefix p q =
          match (p, q) with
          | [], _ -> true
          | _, [] -> false
          | x :: p', y :: q' -> x = y && is_prefix p' q'
        in
        let prev = ref [] in
        for t = 0 to Trace.now tr do
          let wo = A3.write_order tr ~obj:"R" ~time:t in
          check_bool "monotone" true (is_prefix !prev wo);
          prev := wo
        done);
    tc "linearize_upto excludes future operations" (fun () ->
        let tr =
          run_workload ~n:2 ~seed:4L
            ~ops:
              [
                (fun r -> Alg2.write r ~proc:1 100);
                (fun r -> Alg2.write r ~proc:2 200);
              ]
        in
        let early = A3.linearize_upto tr ~obj:"R" ~time:0 in
        Alcotest.(check int) "nothing yet" 0 (List.length early);
        let full = A3.linearize tr ~obj:"R" in
        Alcotest.(check int) "both eventually" 2 (List.length full));
    tc "fig3: B_i computed from partial timestamps" (fun () ->
        let f3 = Core.Scenario.fig3 () in
        (* at w2's completion, exactly w3 and w2 are linearized, w1 is not *)
        Alcotest.(check int) "two committed" 2
          (List.length f3.Core.Scenario.ws_at_t);
        check_bool "w1 deferred" true
          (not (List.mem f3.Core.Scenario.w1 f3.Core.Scenario.ws_at_t)));
  ]

let multi_register_tests =
  [
    tc "two Algorithm-2 registers in one run: per-object projection" (fun () ->
        (* Algorithm 3 must consume only the named register's annotations *)
        let sched = Sched.create ~seed:9L () in
        let ra = Alg2.create ~sched ~name:"A" ~n:2 ~init:0 in
        let rb = Alg2.create ~sched ~name:"B" ~n:2 ~init:0 in
        Sched.spawn sched ~pid:1 (fun () ->
            Alg2.write ra ~proc:1 11;
            Alg2.write rb ~proc:1 21);
        Sched.spawn sched ~pid:2 (fun () ->
            ignore (Alg2.read rb ~proc:2);
            ignore (Alg2.read ra ~proc:2));
        let rng = Core.Rng.create 10L in
        ignore
          (Sched.run sched ~policy:(Sched.random_policy rng) ~max_steps:2000);
        let tr = Sched.trace sched in
        let full = Trace.history tr in
        List.iter
          (fun obj ->
            let s = A3.linearize tr ~obj in
            let hobj = Hist.project full ~obj in
            check_bool
              (Printf.sprintf "linearization of %s valid" obj)
              true
              (Hist.Seq.is_linearization_of ~init hobj s);
            check_bool
              (Printf.sprintf "%s ops only" obj)
              true
              (List.for_all (fun (o : Op.t) -> String.equal o.obj obj) s))
          [ "A"; "B" ]);
    tc "a pending write that published is linearized; one that did not is not"
      (fun () ->
        let sched = Sched.create ~seed:11L () in
        let r = Alg2.create ~sched ~name:"R" ~n:2 ~init:0 in
        Sched.spawn sched ~pid:1 (fun () -> Alg2.write r ~proc:1 11);
        Sched.spawn sched ~pid:2 (fun () -> Alg2.write r ~proc:2 22);
        (* p1 publishes (invoke + 2 reads + publish = 4 steps) but never
           responds; p2 stops after its invocation *)
        for _ = 1 to 4 do
          ignore (Sched.step sched ~pid:1)
        done;
        ignore (Sched.step sched ~pid:2);
        let s = A3.linearize (Sched.trace sched) ~obj:"R" in
        Alcotest.(check int) "only the published write" 1 (List.length s));
  ]

let props =
  let seed_arb =
    QCheck.make
      ~print:Int64.to_string
      QCheck.Gen.(map Int64.of_int (int_bound 1_000_000))
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"(L): output is a linearization, any schedule"
         ~count:40 seed_arb (fun seed ->
           let run =
             Core.Scenario.random_alg2_run ~n:3 ~writes_per_proc:2
               ~reads_per_proc:1 ~seed ()
           in
           QCheck.assume run.Core.Scenario.completed;
           let s = A3.linearize run.Core.Scenario.trace ~obj:"R" in
           Hist.Seq.is_linearization_of ~init run.Core.Scenario.history s));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"(P): write order monotone over every prefix"
         ~count:25 seed_arb (fun seed ->
           let run =
             Core.Scenario.random_alg2_run ~n:3 ~writes_per_proc:2
               ~reads_per_proc:1 ~seed ()
           in
           QCheck.assume run.Core.Scenario.completed;
           Core.Scenario.check_alg2_run run = Ok ()));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"agreement: Algorithm 3's write order is one the tree checker \
                accepts"
         ~count:10 seed_arb (fun seed ->
           let run =
             Core.Scenario.random_alg2_run ~n:2 ~writes_per_proc:2
               ~reads_per_proc:1 ~seed ()
           in
           QCheck.assume run.Core.Scenario.completed;
           (* the final write order must extend to a full linearization *)
           let wo = A3.write_order run.Core.Scenario.trace ~obj:"R" ~time:max_int in
           Core.Lincheck.check_with_forced_write_prefix ~init
             run.Core.Scenario.history ~prefix:wo));
  ]

let suite =
  [
    ("alg3.unit", unit_tests);
    ("alg3.multi", multi_register_tests);
    ("alg3.props", props);
  ]
