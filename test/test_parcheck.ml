(* The parallel checker driver stack: the Chase–Lev deque and the
   work-stealing runner (Simkit.Deque / Simkit.Steal), the sharded
   failure memo (Linchk.Ipset.Sharded), and the determinism contract —
   parallel verdicts and witnesses byte-identical to sequential at
   every [jobs] (DESIGN.md §14). *)

module V = Core.Value
module Op = Core.Op
module Hist = Core.Hist
module Gen = Core.Histgen
module L = Core.Lincheck
module T = Core.Treecheck
module Deque = Core.Deque
module Steal = Core.Steal
module Ipset = Core.Ipset
module Chaos = Core.Chaos

let tc name f = Alcotest.test_case name `Quick f
let tcs name f = Alcotest.test_case name `Slow f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let init = V.Int 0
let ids_of ops = List.map (fun (o : Op.t) -> o.id) ops

(* ----- Deque ------------------------------------------------------------- *)

let deque_tests =
  [
    tc "pop is LIFO, steal is FIFO" (fun () ->
        let d = Deque.create () in
        List.iter (Deque.push d) [ 1; 2; 3; 4; 5 ];
        Alcotest.(check (option int)) "steal oldest" (Some 1) (Deque.steal d);
        Alcotest.(check (option int)) "steal next" (Some 2) (Deque.steal d);
        Alcotest.(check (option int)) "pop newest" (Some 5) (Deque.pop d);
        Alcotest.(check (option int)) "pop next" (Some 4) (Deque.pop d);
        Alcotest.(check (option int)) "last from either end" (Some 3)
          (Deque.steal d);
        Alcotest.(check (option int)) "pop empty" None (Deque.pop d);
        Alcotest.(check (option int)) "steal empty" None (Deque.steal d));
    tc "empty deque yields None and size 0" (fun () ->
        let d : int Deque.t = Deque.create () in
        check_int "size" 0 (Deque.size d);
        check_bool "pop" true (Deque.pop d = None);
        check_bool "steal" true (Deque.steal d = None));
    tc "grows past its initial capacity" (fun () ->
        let d = Deque.create ~capacity:8 () in
        for i = 0 to 199 do
          Deque.push d i
        done;
        check_int "size" 200 (Deque.size d);
        for i = 199 downto 0 do
          Alcotest.(check (option int))
            (Printf.sprintf "pop %d" i)
            (Some i) (Deque.pop d)
        done;
        check_bool "drained" true (Deque.pop d = None));
    tc "concurrent owner+thieves consume each element exactly once"
      (fun () ->
        let n = 2000 in
        let d = Deque.create ~capacity:16 () in
        for i = 0 to n - 1 do
          Deque.push d i
        done;
        let remaining = Atomic.make n in
        let consume take =
          let mine = ref [] in
          while Atomic.get remaining > 0 do
            match take () with
            | Some v ->
                mine := v :: !mine;
                Atomic.decr remaining
            | None -> Domain.cpu_relax ()
          done;
          !mine
        in
        let thieves =
          List.init 3 (fun _ -> Domain.spawn (fun () -> consume (fun () -> Deque.steal d)))
        in
        let owned = consume (fun () -> Deque.pop d) in
        let stolen = List.concat_map Domain.join thieves in
        let all = List.sort compare (owned @ stolen) in
        check_int "every element consumed once" n (List.length all);
        check_bool "no duplicates, no losses" true
          (all = List.init n Fun.id));
  ]

(* ----- Steal ------------------------------------------------------------- *)

let steal_tests =
  [
    tc "every task runs exactly once (jobs 4, n 100)" (fun () ->
        let n = 100 in
        let ran = Array.init n (fun _ -> Atomic.make 0) in
        let stats = Steal.run ~jobs:4 n (fun i -> Atomic.incr ran.(i)) in
        check_int "tasks" n stats.Steal.tasks;
        Array.iteri
          (fun i c ->
            check_int (Printf.sprintf "task %d ran once" i) 1 (Atomic.get c))
          ran;
        check_int "executed_by length" n (Array.length stats.Steal.executed_by);
        Array.iter
          (fun w -> check_bool "worker id in range" true (w >= 0 && w < 4))
          stats.Steal.executed_by);
    tc "stolen counts tasks executed off their home worker" (fun () ->
        let stats = Steal.run ~jobs:4 64 (fun _ -> ()) in
        let recount = ref 0 in
        Array.iteri
          (fun i w -> if w <> i mod 4 then incr recount)
          stats.Steal.executed_by;
        check_int "stolen consistent" !recount stats.Steal.stolen);
    tc "n = 0 and n = 1 degenerate cleanly" (fun () ->
        let s0 = Steal.run ~jobs:4 0 (fun _ -> assert false) in
        check_int "no tasks" 0 s0.Steal.tasks;
        let hit = ref 0 in
        let s1 = Steal.run ~jobs:4 1 (fun i -> assert (i = 0); incr hit) in
        check_int "one task" 1 s1.Steal.tasks;
        check_int "ran once" 1 !hit;
        check_int "on the caller" 0 s1.Steal.executed_by.(0));
    tc "jobs 1 runs in index order" (fun () ->
        let order = ref [] in
        let stats = Steal.run ~jobs:1 10 (fun i -> order := i :: !order) in
        check_bool "ascending" true (List.rev !order = List.init 10 Fun.id);
        check_int "nothing stolen" 0 stats.Steal.stolen);
    tc "a failing task's exception is re-raised" (fun () ->
        match Steal.run ~jobs:4 50 (fun i -> if i = 5 then failwith "boom")
        with
        | _ -> Alcotest.fail "exception swallowed"
        | exception Failure msg -> Alcotest.(check string) "exn" "boom" msg);
    tc "sequential fallback re-raises the lowest-index failure" (fun () ->
        match
          Steal.run ~jobs:1 50 (fun i ->
              if i mod 7 = 3 then failwith (string_of_int i))
        with
        | _ -> Alcotest.fail "exception swallowed"
        | exception Failure msg -> Alcotest.(check string) "exn" "3" msg);
  ]

(* ----- sharded Ipset ------------------------------------------------------ *)

let ipset_tests =
  [
    tc "plain set reports size/capacity/occupancy/grows" (fun () ->
        let s = Ipset.create ~capacity:8 () in
        for i = 0 to 19 do
          Ipset.add s ~k1:i ~k2:(i * i)
        done;
        let st = Ipset.stats s in
        check_int "size" 20 st.Ipset.size;
        check_int "size = length" (Ipset.length s) st.Ipset.size;
        check_int "capacity" (Ipset.capacity s) st.Ipset.capacity;
        check_bool "grew past 8 slots" true (st.Ipset.grows >= 1);
        check_bool "occupancy in (0, 0.5]" true
          (st.Ipset.occupancy > 0. && st.Ipset.occupancy <= 0.5);
        check_bool "occupancy accessor agrees" true
          (Ipset.occupancy s = st.Ipset.occupancy));
    tc "sharded set agrees with the plain set on 4000 random pairs"
      (fun () ->
        let rand = Random.State.make [| 0x5EED |] in
        let plain = Ipset.create () in
        let sharded = Ipset.Sharded.create ~shards:8 ~capacity:16 () in
        for _ = 1 to 4000 do
          let k1 = Random.State.int rand 700
          and k2 = Random.State.int rand 700 - 350 in
          if Random.State.bool rand then begin
            Ipset.add plain ~k1 ~k2;
            Ipset.Sharded.add sharded ~k1 ~k2
          end
          else
            check_bool "membership agrees" true
              (Ipset.mem plain ~k1 ~k2 = Ipset.Sharded.mem sharded ~k1 ~k2)
        done;
        check_int "sizes agree" (Ipset.length plain)
          (Ipset.Sharded.length sharded);
        let st = Ipset.Sharded.stats sharded in
        check_int "stats.size" (Ipset.Sharded.length sharded) st.Ipset.size;
        check_bool "grew" true (st.Ipset.grows >= 1);
        let occ = Ipset.Sharded.shard_occupancy sharded in
        check_int "one occupancy per shard"
          (Ipset.Sharded.shards sharded)
          (Array.length occ);
        Array.iter
          (fun o -> check_bool "shard occupancy sane" true (o >= 0. && o <= 0.5))
          occ);
    tc "concurrent adds from 4 domains are all found afterwards" (fun () ->
        let s = Ipset.Sharded.create ~shards:4 ~capacity:8 () in
        let per = 500 in
        let adders =
          List.init 4 (fun d ->
              Domain.spawn (fun () ->
                  for j = 0 to per - 1 do
                    Ipset.Sharded.add s ~k1:((d * per) + j) ~k2:(d lxor j)
                  done))
        in
        List.iter Domain.join adders;
        for d = 0 to 3 do
          for j = 0 to per - 1 do
            check_bool "present" true
              (Ipset.Sharded.mem s ~k1:((d * per) + j) ~k2:(d lxor j))
          done
        done;
        (* distinct keys: the size undercount races documented on
           [length] only involve rehash-copied duplicates *)
        check_bool "length <= true count" true
          (Ipset.Sharded.length s <= 4 * per));
  ]

(* ----- decide: parallel vs sequential oracle ----------------------------- *)

let spec_of i =
  match i mod 3 with
  | 0 -> (`Atomic, { Gen.default_spec with Gen.n_ops = 10; n_procs = 4 })
  | 1 -> (`Arbitrary, { Gen.default_spec with Gen.n_ops = 9; n_procs = 3 })
  | _ ->
      ( `Arbitrary,
        {
          Gen.default_spec with
          Gen.n_ops = 9;
          n_procs = 3;
          distinct_writes = false;
        } )

let gen_hist rand i =
  match spec_of i with
  | `Atomic, spec -> Gen.atomic_history spec rand
  | `Arbitrary, spec -> Gen.arbitrary_history spec rand

let decide_oracle_tests =
  [
    tc "jobs 2 and 4 match sequential on 200 seeded histories" (fun () ->
        let rand = Random.State.make [| 0xDECAF |] in
        let yes = ref 0 and no = ref 0 in
        for i = 0 to 199 do
          let hist = gen_hist rand i in
          let seq = L.witness ~init hist in
          (match seq with Some _ -> incr yes | None -> incr no);
          List.iter
            (fun jobs ->
              match (seq, L.witness ~jobs ~init hist) with
              | None, None -> ()
              | Some a, Some b ->
                  Alcotest.(check (list int))
                    (Printf.sprintf "witness %d identical at jobs %d" i jobs)
                    (ids_of a) (ids_of b)
              | Some _, None ->
                  Alcotest.failf "history %d: jobs %d flipped to no" i jobs
              | None, Some _ ->
                  Alcotest.failf "history %d: jobs %d flipped to yes" i jobs)
            [ 2; 4 ]
        done;
        (* the corpus must exercise both verdicts to mean anything *)
        check_bool "some linearizable" true (!yes > 0);
        check_bool "some non-linearizable" true (!no > 0));
  ]

(* ----- cancellation ------------------------------------------------------- *)

(* k concurrent writes of distinct values 1..k plus a later read of 1:
   every linearization must place the write of 1 last among the writes,
   so the lex-first frontier task (write-of-1 first) is a large
   guaranteed-failing subtree while the lex-least success lives in task
   1 — later tasks observe the winner and cancel mid-subtree. *)
let cancel_hist k =
  let ops =
    List.init k (fun i ->
        Op.make ~id:(i + 1) ~proc:(i + 1) ~obj:"R"
          ~kind:(Op.Write (V.Int (i + 1)))
          ~invoked:i
          ~responded:(100 + i)
          ())
    @ [
        Op.make ~id:(k + 1) ~proc:1 ~obj:"R" ~kind:Op.Read ~invoked:300
          ~responded:301 ~result:(V.Int 1) ();
      ]
  in
  Hist.of_ops ops

let cancel_tests =
  [
    tc "losing subtasks are cancelled, witness still sequential" (fun () ->
        let h = cancel_hist 12 in
        let seq = L.witness ~init h in
        let expect =
          (* writes 2..12 in id order, then write 1, then the read *)
          List.init 11 (fun i -> i + 2) @ [ 1; 13 ]
        in
        (match seq with
        | Some ops ->
            Alcotest.(check (list int)) "lex-least witness" expect (ids_of ops)
        | None -> Alcotest.fail "sequential verdict flipped");
        List.iter
          (fun jobs ->
            (* whether a losing subtree is still in flight when the
               winner posts is a race against the OS scheduler: a worker
               that finishes its whole task before the cancel signal
               lands records nothing.  Accumulate into one metrics sink
               across a few attempts — the verdict and witness are
               checked every time, only the cancellation count is
               allowed to need more than one try. *)
            let m = Core.Metrics.create () in
            let attempts = 20 in
            let rec go i =
              (match L.witness ~metrics:m ~jobs ~init h with
              | Some ops ->
                  Alcotest.(check (list int))
                    (Printf.sprintf "witness at jobs %d" jobs)
                    expect (ids_of ops)
              | None -> Alcotest.failf "jobs %d verdict flipped" jobs);
              if Core.Metrics.counter m "linchk.par.cancelled" < 1 && i < attempts
              then go (i + 1)
            in
            go 1;
            check_bool
              (Printf.sprintf "tasks spawned at jobs %d" jobs)
              true
              (Core.Metrics.counter m "linchk.par.tasks" > 1);
            check_bool
              (Printf.sprintf "cancellations observed at jobs %d" jobs)
              true
              (Core.Metrics.counter m "linchk.par.cancelled" >= 1);
            check_bool "memo occupancy gauge set" true
              (Core.Metrics.gauge m "linchk.par.memo_occupancy" <> None))
          [ 2; 4 ]);
  ]

(* ----- treecheck: parallel vs sequential --------------------------------- *)

let op ?responded ?result ~id ~proc ~kind ~invoked () =
  Op.make ~id ~proc ~obj:"R" ~kind ~invoked ?responded ?result ()

let w ?responded ~id ~proc ~invoked v =
  op ~id ~proc ~kind:(Op.Write (V.Int v)) ~invoked ?responded ()

let r ~id ~proc ~invoked ~responded v =
  op ~id ~proc ~kind:Op.Read ~invoked ~responded ~result:(V.Int v) ()

let orders_of assignments = List.map snd assignments

let tree_oracle_tests =
  [
    tc "prefix-chain trees match sequential at jobs 2 and 4 (40 seeded)"
      (fun () ->
        let rand = Random.State.make [| 0x7EA7 |] in
        for i = 0 to 39 do
          let spec = { Gen.default_spec with Gen.n_ops = 8; n_procs = 3 } in
          let hist =
            if i mod 2 = 0 then Gen.atomic_history spec rand
            else Gen.arbitrary_history spec rand
          in
          let tree = T.of_prefixes hist in
          let seq = T.write_strong_witness ~init tree in
          List.iter
            (fun jobs ->
              match (seq, T.write_strong_witness ~jobs ~init tree) with
              | None, None -> ()
              | Some a, Some b ->
                  check_bool
                    (Printf.sprintf "tree %d orders identical at jobs %d" i
                       jobs)
                    true
                    (orders_of a = orders_of b)
              | _ -> Alcotest.failf "tree %d: jobs %d flipped the verdict" i jobs)
            [ 2; 4 ]
        done);
    tc "branching refutation (Thm-13 shape) refuted at every jobs" (fun () ->
        let w1 = w ~id:1 ~proc:1 ~invoked:1 100 in
        let w2 = w ~id:2 ~proc:2 ~invoked:2 ~responded:5 200 in
        let g = Hist.of_ops [ w1; w2 ] in
        let h1 =
          Hist.of_ops
            [
              { w1 with Op.responded = Some 7 };
              w2;
              r ~id:3 ~proc:3 ~invoked:8 ~responded:9 200;
            ]
        in
        let h2 =
          Hist.of_ops
            [
              { w1 with Op.responded = Some 7 };
              w2;
              r ~id:3 ~proc:3 ~invoked:8 ~responded:9 100;
            ]
        in
        let tree = T.node g [ T.node h1 []; T.node h2 [] ] in
        List.iter
          (fun jobs ->
            check_bool
              (Printf.sprintf "refuted at jobs %d" jobs)
              false
              (T.write_strong ~jobs ~init tree))
          [ 1; 2; 4 ]);
    tc "satisfiable branching tree: identical witness at every jobs"
      (fun () ->
        let w1 = w ~id:1 ~proc:1 ~invoked:1 ~responded:3 100 in
        let w2 = w ~id:2 ~proc:2 ~invoked:4 ~responded:6 200 in
        let g = Hist.of_ops [ w1; w2 ] in
        let h1 =
          Hist.of_ops [ w1; w2; r ~id:3 ~proc:3 ~invoked:8 ~responded:9 200 ]
        in
        let h2 =
          Hist.of_ops [ w1; w2; w ~id:3 ~proc:3 ~invoked:8 ~responded:9 300 ]
        in
        let tree = T.node g [ T.node h1 []; T.node h2 [] ] in
        match T.write_strong_witness ~init tree with
        | None -> Alcotest.fail "sequential verdict flipped"
        | Some seq ->
            List.iter
              (fun jobs ->
                match T.write_strong_witness ~jobs ~init tree with
                | Some par ->
                    check_bool
                      (Printf.sprintf "orders at jobs %d" jobs)
                      true
                      (orders_of par = orders_of seq)
                | None -> Alcotest.failf "jobs %d flipped the verdict" jobs)
              [ 2; 4 ]);
  ]

(* ----- chaos with a parallel checker -------------------------------------- *)

let chaos_tests =
  [
    tcs "chaos report identical with check_jobs 2" (fun () ->
        let r1 = Chaos.search ~check_jobs:1 ~seed:42L ~budget:16 () in
        let r2 = Chaos.search ~check_jobs:2 ~seed:42L ~budget:16 () in
        Alcotest.(check string)
          "byte-identical"
          (Obs.Json.to_string (Chaos.report_json r1))
          (Obs.Json.to_string (Chaos.report_json r2)));
  ]

let suite =
  [
    ("parcheck.deque", deque_tests);
    ("parcheck.steal", steal_tests);
    ("parcheck.ipset", ipset_tests);
    ("parcheck.decide", decide_oracle_tests);
    ("parcheck.cancel", cancel_tests);
    ("parcheck.tree", tree_oracle_tests);
    ("parcheck.chaos", chaos_tests);
  ]
