(* Tests for Simkit.Stable: persist-point semantics of the write-ahead
   log, lost-suffix determinism of the Prob policy against a reference
   oracle driven by the same RNG stream, and the counters. *)

module Stable = Core.Stable
module Rng = Core.Rng

let tc name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let semantics_tests =
  [
    tc "Every is write-through: crashes lose nothing" (fun () ->
        let s : int Stable.t =
          Stable.create ~metrics:(Obs.Metrics.create ()) ~policy:Stable.Every
            ~n:2 ()
        in
        Stable.append s ~node:0 1;
        Stable.append s ~node:0 2;
        check_int "durable frontier tracks the log" 2
          (Stable.durable_len s ~node:0);
        check_int "crash loses nothing" 0 (Stable.crash s ~node:0);
        check_bool "last survives" true (Stable.last s ~node:0 = Some 2);
        check_bool "log intact" true (Stable.log s ~node:0 = [ 1; 2 ]));
    tc "Explicit keeps a volatile tail until persist" (fun () ->
        let s : int Stable.t =
          Stable.create ~metrics:(Obs.Metrics.create ())
            ~policy:Stable.Explicit ~n:2 ()
        in
        Stable.append s ~node:0 1;
        Stable.persist s ~node:0;
        Stable.append s ~node:0 2;
        Stable.append s ~node:0 3;
        check_int "one durable" 1 (Stable.durable_len s ~node:0);
        check_int "three total" 3 (Stable.len s ~node:0);
        check_bool "running node reads the tail" true
          (Stable.last s ~node:0 = Some 3);
        check_bool "durable copy lags" true
          (Stable.last_durable s ~node:0 = Some 1);
        check_int "crash chops the suffix" 2 (Stable.crash s ~node:0);
        check_bool "rolled back to the sync point" true
          (Stable.last s ~node:0 = Some 1);
        check_int "cumulative loss" 2 (Stable.lost s ~node:0);
        (* crash is idempotent once the tail is gone *)
        check_int "nothing left to lose" 0 (Stable.crash s ~node:0));
    tc "persist is a frontier move, not a copy" (fun () ->
        let s : int Stable.t =
          Stable.create ~metrics:(Obs.Metrics.create ())
            ~policy:Stable.Explicit ~n:1 ()
        in
        Stable.append s ~node:0 1;
        Stable.append s ~node:0 2;
        Stable.persist s ~node:0;
        check_int "both durable" 2 (Stable.durable_len s ~node:0);
        Stable.persist s ~node:0;
        check_int "idempotent" 2 (Stable.durable_len s ~node:0);
        check_int "crash loses nothing" 0 (Stable.crash s ~node:0));
    tc "nodes are independent" (fun () ->
        let s : int Stable.t =
          Stable.create ~metrics:(Obs.Metrics.create ())
            ~policy:Stable.Explicit ~n:3 ()
        in
        Stable.append s ~node:0 1;
        Stable.append s ~node:1 2;
        Stable.persist s ~node:1;
        check_int "node 0 loses its record" 1 (Stable.crash s ~node:0);
        check_bool "node 1 untouched" true (Stable.last s ~node:1 = Some 2);
        check_bool "empty log" true (Stable.last s ~node:0 = None));
    tc "create rejects bad arguments" (fun () ->
        let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
        check_bool "n = 0" true
          (bad (fun () -> (Stable.create ~n:0 () : int Stable.t)));
        check_bool "Prob > 1" true
          (bad (fun () ->
               (Stable.create ~policy:(Stable.Prob 1.5) ~n:1 () : int Stable.t)));
        check_bool "Prob < 0" true
          (bad (fun () ->
               (Stable.create ~policy:(Stable.Prob (-0.1)) ~n:1 ()
                 : int Stable.t))));
    tc "counters record appends, persists and losses" (fun () ->
        let m = Obs.Metrics.create () in
        let s : int Stable.t =
          Stable.create ~metrics:m ~policy:Stable.Explicit ~n:1 ()
        in
        Stable.append s ~node:0 1;
        Stable.append s ~node:0 2;
        Stable.persist s ~node:0;
        Stable.append s ~node:0 3;
        ignore (Stable.crash s ~node:0);
        check_int "appends" 3 (Obs.Metrics.counter m "stable.appends");
        check_int "persists" 2 (Obs.Metrics.counter m "stable.persists");
        check_int "lost" 1 (Obs.Metrics.counter m "stable.lost"));
  ]

(* The Prob policy must follow its dedicated RNG stream exactly: replay
   the same draws through a hand-written oracle and demand the same
   durable frontier after every append, across several seeds. *)
let prob_oracle_tests =
  [
    tc "Prob persists exactly when its own RNG stream says so" (fun () ->
        List.iter
          (fun seed ->
            let p = 0.4 in
            let s : int Stable.t =
              Stable.create ~metrics:(Obs.Metrics.create ())
                ~policy:(Stable.Prob p) ~rng:(Rng.create seed) ~n:1 ()
            in
            let oracle = Rng.create seed in
            let durable = ref 0 in
            for i = 1 to 100 do
              Stable.append s ~node:0 i;
              if Rng.float oracle < p then durable := i;
              Alcotest.(check int)
                (Printf.sprintf "frontier after append %d (seed %Ld)" i seed)
                !durable
                (Stable.durable_len s ~node:0)
            done;
            (* and the crash loses exactly the suffix the oracle predicts *)
            Alcotest.(check int)
              (Printf.sprintf "lost suffix (seed %Ld)" seed)
              (100 - !durable)
              (Stable.crash s ~node:0))
          [ 1L; 42L; 0xFA17L ]);
    tc "same seed, same losses: the store is deterministic" (fun () ->
        let run () =
          let s : int Stable.t =
            Stable.create ~metrics:(Obs.Metrics.create ())
              ~policy:(Stable.Prob 0.25) ~rng:(Rng.create 7L) ~n:2 ()
          in
          for i = 1 to 50 do
            Stable.append s ~node:(i mod 2) i
          done;
          let l0 = Stable.crash s ~node:0 in
          let l1 = Stable.crash s ~node:1 in
          (l0, l1, Stable.log s ~node:0, Stable.log s ~node:1)
        in
        check_bool "byte-identical" true (run () = run ()));
  ]

let suite =
  [
    ("simkit.stable", semantics_tests);
    ("simkit.stable.prob", prob_oracle_tests);
  ]
