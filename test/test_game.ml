(* Tests for Algorithm 1 (the game), its bounded variant, and the
   Theorem-6 / Theorem-7 adversaries — the paper's headline results. *)

module V = Core.Value
module Alg1 = Core.Game_alg1
module Adv = Core.Adv_register
module Thm6 = Core.Adversary
module Stats = Core.Game_stats
module Sched = Core.Sched
module Hist = Core.Hist

let tc name f = Alcotest.test_case name `Quick f
let tcs name f = Alcotest.test_case name `Slow f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ----- Theorem 6 ----------------------------------------------------------------- *)

let thm6_tests =
  [
    tc "adversary survives any budget, multiple seeds" (fun () ->
        List.iter
          (fun seed ->
            let res = Thm6.run_linearizable ~n:5 ~rounds:12 ~seed () in
            check_bool "alive" true (not res.Alg1.terminated);
            check_bool "deep" true (res.Alg1.max_round > 12))
          [ 1L; 2L; 3L; 4L; 5L; 1234L ]);
    tc "works for the minimum n = 3" (fun () ->
        let res = Thm6.run_linearizable ~n:3 ~rounds:8 ~seed:9L () in
        check_bool "alive" true (not res.Alg1.terminated));
    tc "works for larger n" (fun () ->
        let res = Thm6.run_linearizable ~n:8 ~rounds:6 ~seed:10L () in
        check_bool "alive" true (not res.Alg1.terminated));
    tc "bounded variant (Appendix B) behaves identically" (fun () ->
        let res = Thm6.run_bounded_linearizable ~n:5 ~rounds:10 ~seed:11L () in
        check_bool "alive" true (not res.Alg1.terminated);
        check_bool "deep" true (res.Alg1.max_round > 10));
    tc "every process is kept in the game (not just some)" (fun () ->
        let res = Thm6.run_linearizable ~n:5 ~rounds:7 ~seed:12L () in
        List.iter
          (fun (_, o) -> check_bool "no exit" true (o = Alg1.Exhausted))
          res.Alg1.outcomes);
    tc "rejects invalid parameters" (fun () ->
        Alcotest.check_raises "n"
          (Invalid_argument "Thm6.run_linearizable: n must be >= 3") (fun () ->
            ignore (Thm6.run_linearizable ~n:2 ~rounds:1 ~seed:1L ()));
        Alcotest.check_raises "rounds"
          (Invalid_argument "Thm6.run_linearizable: rounds must be >= 1")
          (fun () -> ignore (Thm6.run_linearizable ~n:3 ~rounds:0 ~seed:1L ())));
    tc "R1's run is genuinely linearizable (witness audit)" (fun () ->
        (* the adversary's edits went through the legality checks; confirm
           independently with the exact checker on the R1 projection of a
           short run *)
        let res = Thm6.run_linearizable ~n:4 ~rounds:2 ~seed:13L () in
        let h = res.Alg1.handles in
        let tr = Sched.trace h.Alg1.sched in
        let r1h = Hist.project (Core.Trace.history tr) ~obj:"R1" in
        check_bool "linearizable" true
          (Core.Lincheck.check ~init:V.Bot r1h));
    tc "adversary's committed R1 sequence is a valid linearization" (fun () ->
        let res = Thm6.run_linearizable ~n:4 ~rounds:3 ~seed:14L () in
        let h = res.Alg1.handles in
        let tr = Sched.trace h.Alg1.sched in
        let r1h = Hist.project (Core.Trace.history tr) ~obj:"R1" in
        let wit = Adv.linearization h.Alg1.r1 in
        check_bool "witness" true
          (Hist.Seq.is_linearization_of ~init:V.Bot r1h wit));
    tc "R1's write commit log shows a retroactive edit" (fun () ->
        (* run until a coin forces Case 2 (insertion before a committed
           write): across seeds, some round has coin=1 *)
        let res = Thm6.run_linearizable ~n:4 ~rounds:8 ~seed:15L () in
        let h = res.Alg1.handles in
        let log = List.map snd (Adv.write_commit_log h.Alg1.r1) in
        let rec is_prefix p q =
          match (p, q) with
          | [], _ -> true
          | _, [] -> false
          | x :: p', y :: q' -> x = y && is_prefix p' q'
        in
        let rec monotone = function
          | a :: (b :: _ as rest) -> is_prefix a b && monotone rest
          | _ -> true
        in
        check_bool "edited retroactively" false (monotone log));
  ]

(* ----- Theorem 7 ----------------------------------------------------------------- *)

let thm7_tests =
  [
    tc "WSL registers: the adversary cannot prevent termination" (fun () ->
        List.iter
          (fun seed ->
            let res = Thm6.run_write_strong ~n:5 ~max_rounds:60 ~seed () in
            check_bool "terminated" true res.Alg1.terminated)
          [ 1L; 2L; 3L; 4L; 5L; 6L; 7L; 8L ]);
    tc "all processes exit in the same round or the next" (fun () ->
        let res = Thm6.run_write_strong ~n:5 ~max_rounds:60 ~seed:3L () in
        match
          List.filter_map
            (fun (_, o) -> match o with Alg1.Exited j -> Some j | _ -> None)
            res.Alg1.outcomes
        with
        | [] -> Alcotest.fail "nobody exited"
        | js ->
            let mn = List.fold_left min max_int js in
            let mx = List.fold_left max 0 js in
            check_bool "tight" true (mx - mn <= 1));
    tc "bounded variant also terminates" (fun () ->
        let res =
          Thm6.run_write_strong ~variant:Alg1.Bounded ~n:5 ~max_rounds:60
            ~seed:21L ()
        in
        check_bool "terminated" true res.Alg1.terminated);
    tcs "termination round is geometric-ish (Lemma 19)" (fun () ->
        let t = Stats.e2_termination ~n:5 ~max_rounds:60 ~runs:300 ~seed:5L () in
        check_bool "all terminate" true (t.Stats.max < 60);
        (* mean of Geometric(1/2) is 2 *)
        check_bool "mean near 2" true (t.Stats.mean > 1.5 && t.Stats.mean < 2.6);
        (* survival halves per round, within generous sampling slack *)
        List.iter
          (fun (j, p) ->
            if j >= 1 && j <= 3 then begin
              let expected = 2. ** float_of_int (-j) in
              check_bool
                (Printf.sprintf "P(>%d)=%.3f vs %.3f" j p expected)
                true
                (p < (2. *. expected) +. 0.05 && p > expected /. 3.)
            end)
          t.Stats.tail);
    tc "WSL game histories are linearizable" (fun () ->
        let res = Thm6.run_write_strong ~n:4 ~max_rounds:40 ~seed:33L () in
        let tr = Sched.trace res.Alg1.handles.Alg1.sched in
        let h = Core.Trace.history tr in
        List.iter
          (fun (obj, init) ->
            check_bool obj true
              (Core.Lincheck.check ~init (Hist.project h ~obj)))
          [ ("R1", V.Bot); ("C", V.Bot) ]);
    tc "WSL mode write orders stayed append-only in the game" (fun () ->
        let res = Thm6.run_write_strong ~n:4 ~max_rounds:40 ~seed:34L () in
        let r1 = res.Alg1.handles.Alg1.r1 in
        let log = List.map snd (Adv.write_commit_log r1) in
        let rec is_prefix p q =
          match (p, q) with
          | [], _ -> true
          | _, [] -> false
          | x :: p', y :: q' -> x = y && is_prefix p' q'
        in
        let rec monotone = function
          | a :: (b :: _ as rest) -> is_prefix a b && monotone rest
          | _ -> true
        in
        check_bool "monotone" true (monotone log));
  ]

(* ----- baselines and variants ------------------------------------------------------ *)

let baseline_tests =
  [
    tc "atomic registers + random scheduler: quick termination" (fun () ->
        List.iter
          (fun seed ->
            let cfg = { Alg1.default with n = 5; max_rounds = 50; seed } in
            let res = Alg1.run_random cfg ~max_steps:100_000 in
            check_bool "terminated" true res.Alg1.terminated)
          [ 1L; 2L; 3L ]);
    tc "linearizable registers + RANDOM scheduler also terminate" (fun () ->
        (* without the adversary the auto-commit order is benign: the
           Theorem-6 behaviour needs the adversary, not just the weak
           registers *)
        List.iter
          (fun seed ->
            let cfg =
              {
                Alg1.default with
                n = 5;
                mode = Adv.Linearizable;
                max_rounds = 50;
                seed;
              }
            in
            let res = Alg1.run_random cfg ~max_steps:100_000 in
            check_bool "terminated" true res.Alg1.terminated)
          [ 4L; 5L; 6L ]);
    tc "round-robin + atomic terminates" (fun () ->
        let cfg = { Alg1.default with n = 4; max_rounds = 50; seed = 7L } in
        let res = Alg1.run_round_robin cfg ~max_steps:100_000 in
        check_bool "terminated" true res.Alg1.terminated);
    tc "bounded and unbounded agree under the same schedule" (fun () ->
        (* Appendix B: the two variants have the same runs; with identical
           seeds and the same policy the exit rounds coincide *)
        List.iter
          (fun seed ->
            let run variant =
              let cfg =
                { Alg1.default with n = 4; variant; max_rounds = 50; seed }
              in
              (Alg1.run_random cfg ~max_steps:100_000).Alg1.outcomes
            in
            let a = run Alg1.Unbounded and b = run Alg1.Bounded in
            List.iter2
              (fun (pa, oa) (pb, ob) ->
                check_int "pid" pa pb;
                check_bool "same outcome" true (oa = ob))
              a b)
          [ 8L; 9L; 10L ]);
    tc "setup rejects n < 3" (fun () ->
        Alcotest.check_raises "n" (Invalid_argument "Alg1.setup: n must be >= 3")
          (fun () -> ignore (Alg1.setup { Alg1.default with n = 2 })));
    tc "e1 survival is 100% everywhere" (fun () ->
        let s = Stats.e1_survival ~n:5 ~budgets:[ 1; 3; 9 ] ~runs:4 ~seed:50L () in
        List.iter
          (fun f -> check_bool "alive" true (f = 1.0))
          s.Stats.alive_fraction);
    tc "atomic termination stats are fast" (fun () ->
        let t = Stats.atomic_termination ~n:5 ~max_rounds:40 ~runs:30 ~seed:51L () in
        check_bool "all terminate" true (t.Stats.max < 40);
        check_bool "quick" true (t.Stats.mean < 4.));
  ]

let suite =
  [
    ("game.thm6", thm6_tests);
    ("game.thm7", thm7_tests);
    ("game.baselines", baseline_tests);
  ]
