(* Tests for the message-passing substrate (Net) and the ABD register. *)

module V = Core.Value
module Sched = Core.Sched
module Net = Core.Net
module Abd = Core.Abd
module Runs = Core.Abd_runs
module Hist = Core.Hist

let tc name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ----- Net ------------------------------------------------------------------------ *)

let net_tests =
  [
    tc "messages are invisible until delivered" (fun () ->
        let sched = Sched.create () in
        let net : int Net.t = Net.create ~sched ~n:3 in
        Net.send net ~src:0 ~dst:1 42;
        check_int "in flight" 1 (Net.in_flight net);
        check_bool "not receivable" true (Net.try_recv net ~pid:1 = None);
        check_bool "delivered" true (Net.deliver_now net ~dst:1);
        check_bool "receivable" true (Net.try_recv net ~pid:1 = Some 42));
    tc "deliver_now misses absent destinations" (fun () ->
        let sched = Sched.create () in
        let net : int Net.t = Net.create ~sched ~n:3 in
        Net.send net ~src:0 ~dst:1 1;
        check_bool "no msg for 2" false (Net.deliver_now net ~dst:2));
    tc "broadcast reaches everyone including the sender" (fun () ->
        let sched = Sched.create () in
        let net : int Net.t = Net.create ~sched ~n:3 in
        Net.broadcast net ~src:0 7;
        check_int "three" 3 (Net.in_flight net);
        Net.deliver_all net;
        for pid = 0 to 2 do
          check_int "mailbox" 1 (Net.mailbox_size net ~pid)
        done);
    tc "recv blocks until delivery" (fun () ->
        let sched = Sched.create () in
        let net : int Net.t = Net.create ~sched ~n:2 in
        let got = ref (-1) in
        Sched.spawn sched ~pid:1 (fun () -> got := Net.recv net ~pid:1);
        ignore (Sched.step sched ~pid:1);
        check_int "still waiting" (-1) !got;
        Net.send net ~src:0 ~dst:1 9;
        ignore (Net.deliver_now net ~dst:1);
        ignore (Sched.step sched ~pid:1);
        check_int "received" 9 !got);
    tc "drop_to discards in-flight mail" (fun () ->
        let sched = Sched.create () in
        let net : int Net.t = Net.create ~sched ~n:3 in
        Net.send net ~src:0 ~dst:1 1;
        Net.send net ~src:0 ~dst:2 2;
        Net.drop_to net ~dst:1;
        check_int "one left" 1 (Net.in_flight net));
    tc "pre-crash replies never count toward post-recovery quorums" (fun () ->
        let sched = Sched.create () in
        let net : int Net.t = Net.create ~sched ~n:3 in
        Sched.spawn sched ~pid:1 (fun () -> Core.Fiber.yield ());
        (* nodes 1 and 2 both reply (stamped incarnation 0), then node 1
           crashes and restarts: its stamp is now stale *)
        Net.send net ~src:1 ~dst:0 1;
        Net.send net ~src:2 ~dst:0 2;
        Net.deliver_all net;
        Sched.crash sched ~pid:1;
        ignore (Sched.restart sched ~pid:1 (fun () -> ()));
        let stale = ref 0 in
        let seen = Array.make 3 false in
        Sched.spawn sched ~pid:0 (fun () ->
            Net.collect_quorum net ~pid:0 ~need:1 ~seen
              ~classify:(fun v -> Some v)
              ~stale:(fun () -> incr stale)
              ~retry_after:0
              ~resend:(fun ~missing:_ -> ()));
        ignore (Sched.run sched ~policy:Sched.round_robin ~max_steps:100);
        check_int "old-incarnation reply handed to stale" 1 !stale;
        check_bool "not counted" true (not seen.(1));
        check_bool "fresh reply counted" true seen.(2));
    tc "revive restores delivery with an empty mailbox" (fun () ->
        let sched = Sched.create () in
        let net : int Net.t = Net.create ~sched ~n:2 in
        Net.send net ~src:0 ~dst:1 1;
        ignore (Net.deliver_now net ~dst:1);
        Net.mark_dead net ~pid:1;
        Net.send net ~src:0 ~dst:1 2;
        ignore (Net.deliver_now net ~dst:1);
        Net.revive net ~pid:1;
        check_bool "alive again" true (not (Net.is_dead net ~pid:1));
        check_int "fresh mailbox" 0 (Net.mailbox_size net ~pid:1);
        Net.send net ~src:0 ~dst:1 3;
        ignore (Net.deliver_now net ~dst:1);
        check_bool "post-revival mail flows" true
          (Net.try_recv net ~pid:1 = Some 3));
    tc "random delivery eventually drains" (fun () ->
        let sched = Sched.create () in
        let net : int Net.t = Net.create ~sched ~n:4 in
        for i = 1 to 10 do
          Net.send net ~src:0 ~dst:(i mod 4) i
        done;
        let rng = Core.Rng.create 3L in
        while Net.deliver_one net ~rng do
          ()
        done;
        check_int "drained" 0 (Net.in_flight net));
  ]

(* ----- ABD ------------------------------------------------------------------------- *)

let seeds = [ 1L; 2L; 3L; 4L; 5L ]

let abd_tests =
  [
    tc "writer reads back its own last write" (fun () ->
        let sched = Sched.create ~seed:1L () in
        let reg = Abd.create ~sched ~name:"ABD" ~n:3 ~writer:0 ~init:0 () in
        let got = ref (-1) in
        Sched.spawn sched ~pid:0 (fun () ->
            Abd.write reg 5;
            got := Abd.read reg ~reader:0);
        let rng = Core.Rng.create 2L in
        let policy =
          Net.auto_deliver_policy (Abd.net reg) ~rng (Sched.random_policy rng)
        in
        ignore (Sched.run sched ~policy ~max_steps:3000);
        check_int "read back" 5 !got);
    tc "majority is computed correctly" (fun () ->
        let reg =
          Abd.create ~sched:(Sched.create ()) ~name:"A" ~n:5 ~writer:0 ~init:0 ()
        in
        check_int "majority of 5" 3 (Abd.majority reg);
        let reg4 =
          Abd.create ~sched:(Sched.create ()) ~name:"B" ~n:4 ~writer:0 ~init:0 ()
        in
        check_int "majority of 4" 3 (Abd.majority reg4));
    tc "create validates parameters" (fun () ->
        let sched = Sched.create () in
        Alcotest.check_raises "n" (Invalid_argument "Abd.create: n must be >= 2")
          (fun () ->
            ignore (Abd.create ~sched ~name:"X" ~n:1 ~writer:0 ~init:0 ()));
        Alcotest.check_raises "writer"
          (Invalid_argument "Abd.create: writer out of range") (fun () ->
            ignore (Abd.create ~sched ~name:"Y" ~n:3 ~writer:5 ~init:0 ())));
    tc "operations complete despite minority crash" (fun () ->
        let w = { Runs.default with crash = [ 3; 4 ]; seed = 77L } in
        let run = Runs.execute w in
        check_bool "completed" true run.Runs.completed);
    tc "crashing the writer is rejected by the driver" (fun () ->
        Alcotest.check_raises "writer"
          (Invalid_argument "Runs.execute: crashed nodes cannot be clients")
          (fun () -> ignore (Runs.execute { Runs.default with crash = [ 0 ] })));
    tc "crashing a majority is rejected by the driver" (fun () ->
        Alcotest.check_raises "majority"
          (Invalid_argument "Runs.execute: crash set must be a strict minority")
          (fun () ->
            ignore (Runs.execute { Runs.default with crash = [ 1; 2; 3 ] })));
    tc "histories are linearizable across seeds" (fun () ->
        List.iter
          (fun seed ->
            let run = Runs.execute { Runs.default with seed } in
            check_bool "completed" true run.Runs.completed;
            check_bool "linearizable" true
              (Core.Lincheck.check ~init:(V.Int 0) run.Runs.history))
          seeds);
    tc "histories are WSL (f*) across seeds — Theorem 14" (fun () ->
        List.iter
          (fun seed ->
            let run = Runs.execute { Runs.default with seed } in
            check_bool "wsl" true (Runs.check run = Ok ()))
          seeds);
    tc "crashed runs are still linearizable + WSL" (fun () ->
        List.iter
          (fun seed ->
            let run =
              Runs.execute { Runs.default with seed; crash = [ 3; 4 ] }
            in
            check_bool "ok" true (Runs.check run = Ok ()))
          seeds);
    tc "no new-old inversion for a single reader" (fun () ->
        (* the write-back phase guarantees a reader's successive reads see
           non-decreasing values in writer order *)
        let w = { Runs.default with readers = [ 1 ]; reads_each = 6; seed = 13L } in
        let run = Runs.execute w in
        let values =
          Hist.ops run.Runs.history
          |> List.filter_map (fun (o : Core.Op.t) ->
                 if Core.Op.is_read o && o.Core.Op.proc = 1 then
                   match o.Core.Op.result with
                   | Some (V.Int v) -> Some v
                   | _ -> None
                 else None)
        in
        let rec non_decreasing = function
          | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
          | _ -> true
        in
        check_bool "monotone reads" true (non_decreasing values));
    tc "writer order equals f* write order" (fun () ->
        let run = Runs.execute { Runs.default with seed = 21L } in
        match Core.Fstar.wsl_function ~init:(V.Int 0) run.Runs.history with
        | Error e -> Alcotest.fail e
        | Ok orders ->
            let final = List.nth orders (List.length orders - 1) in
            let writer_order =
              Hist.writes run.Runs.history
              |> List.filter Core.Op.is_complete
              |> List.map (fun (o : Core.Op.t) -> o.id)
            in
            (* the completed writes appear in writer order; f* may include
               a trailing read-observed pending write, so compare prefixes *)
            let rec is_prefix p q =
              match (p, q) with
              | [], _ -> true
              | _, [] -> false
              | x :: p', y :: q' -> x = y && is_prefix p' q'
            in
            check_bool "writer order" true
              (is_prefix writer_order final || is_prefix final writer_order));
  ]

(* ----- crash-recovery -------------------------------------------------------- *)

let recovery_tests =
  [
    tc "safe recovery runs one state transfer and loses nothing" (fun () ->
        let m = Obs.Metrics.create () in
        let sched = Sched.create ~metrics:m ~seed:5L () in
        let reg =
          Abd.create ~sched ~name:"R" ~n:5 ~writer:0 ~init:0 ~persist:`Never ()
        in
        let got = ref (-1) in
        Sched.spawn sched ~pid:0 (fun () ->
            Abd.write reg 7;
            Abd.crash_node reg ~node:3;
            Abd.write reg 8;
            Abd.recover_node reg ~node:3;
            (* let the handshake finish before reading *)
            for _ = 1 to 100 do
              Core.Fiber.yield ()
            done;
            got := Abd.read reg ~reader:0);
        let rng = Core.Rng.create 2L in
        let policy =
          Net.auto_deliver_policy (Abd.net reg) ~rng (Sched.random_policy rng)
        in
        ignore (Sched.run sched ~policy ~max_steps:20_000);
        check_int "read sees the latest write" 8 !got;
        check_int "one restart" 1 (Obs.Metrics.counter m "sched.restarts");
        check_int "one handshake" 1
          (Obs.Metrics.counter m "reg.abd.state_transfer");
        check_int "one recovery" 1 (Obs.Metrics.counter m "reg.abd.recoveries");
        check_int "no amnesia" 0 (Obs.Metrics.counter m "reg.abd.amnesia"));
    tc "unsafe recovery with nothing durable is amnesia" (fun () ->
        let m = Obs.Metrics.create () in
        let sched = Sched.create ~metrics:m ~seed:5L () in
        let reg =
          Abd.create ~sched ~name:"R" ~n:5 ~writer:0 ~init:0 ~persist:`Never
            ~unsafe_recovery:true ()
        in
        Sched.spawn sched ~pid:0 (fun () ->
            Abd.write reg 7;
            (* make sure replica 3 has processed the write before it
               crashes, so the crash really discards acknowledged state *)
            Net.deliver_all (Abd.net reg);
            for _ = 1 to 100 do
              Core.Fiber.yield ()
            done;
            Abd.crash_node reg ~node:3;
            Abd.recover_node reg ~node:3;
            ignore (Abd.read reg ~reader:0));
        let rng = Core.Rng.create 2L in
        let policy =
          Net.auto_deliver_policy (Abd.net reg) ~rng (Sched.random_policy rng)
        in
        ignore (Sched.run sched ~policy ~max_steps:20_000);
        check_int "rolled-back rejoin counted" 1
          (Obs.Metrics.counter m "reg.abd.amnesia");
        check_int "no handshake ran" 0
          (Obs.Metrics.counter m "reg.abd.state_transfer"));
    tc "recover_node demands a crashed node" (fun () ->
        let sched = Sched.create () in
        let reg = Abd.create ~sched ~name:"R" ~n:3 ~writer:0 ~init:0 () in
        Alcotest.check_raises "running"
          (Invalid_argument "Sched.restart: pid 102 has not crashed") (fun () ->
            Abd.recover_node reg ~node:2));
  ]

let suite =
  [
    ("msgpass.net", net_tests);
    ("msgpass.abd", abd_tests);
    ("msgpass.abd.recovery", recovery_tests);
  ]
