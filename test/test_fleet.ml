(* The fleet engine: sharding, the generational client pool, delivery
   batching, and the determinism contract (reports byte-identical across
   -j, batching verdict-neutral).  Configs are small — hundreds of ops —
   so the whole suite stays quick; E15 exercises the scale end. *)

let tc name f = Alcotest.test_case name `Quick f
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let faults =
  {
    Core.Faults.none with
    Core.Faults.drop = 0.05;
    duplicate = 0.02;
    delay = 0.05;
    delay_bound = 4;
  }

let small =
  {
    Core.Fleet.default with
    Core.Fleet.shards = 3;
    slots = 3;
    ops = 600;
    session_len = 3;
    keys = 32;
    faults;
    seed = 42L;
    sample = 3;
  }

let report_str r = Core.Json.to_string (Core.Fleet.report_json r)

(* the report minus its config echo: what must coincide when two
   different configs are required to behave identically *)
let behaviour_str r =
  Core.Json.to_string
    (Core.Json.List (List.map Core.Fleet.shard_json r.Core.Fleet.shards_r))

let shard_tests =
  [
    tc "shard_of_key is total and in range" (fun () ->
        for k = 0 to 999 do
          let s = Core.Fleet.shard_of_key ~shards:7 k in
          check_bool "in range" true (s >= 0 && s < 7);
          check_int "stable" s (Core.Fleet.shard_of_key ~shards:7 k)
        done);
    tc "ops_per_shard accounts for every op" (fun () ->
        List.iter
          (fun (shards, ops, keys) ->
            let c =
              { small with Core.Fleet.shards; ops; keys; sample = 0 }
            in
            let per = Core.Fleet.ops_per_shard c in
            check_int "shard count" shards (Array.length per);
            check_int "sums to ops" ops (Array.fold_left ( + ) 0 per))
          [ (1, 100, 16); (3, 600, 32); (8, 1000, 5); (4, 7, 64) ]);
    tc "validate rejects ill-formed configs" (fun () ->
        let rejects c =
          match Core.Fleet.validate c with
          | () -> Alcotest.fail "expected Invalid_argument"
          | exception Invalid_argument _ -> ()
        in
        rejects { small with Core.Fleet.shards = 0 };
        rejects { small with Core.Fleet.n = 1 };
        rejects { small with Core.Fleet.n = 90; slots = 20 };
        rejects { small with Core.Fleet.write_ratio = 1.5 };
        rejects { small with Core.Fleet.session_len = 0 };
        rejects { small with Core.Fleet.sample = -1 };
        (* Sw: node 0 is the writer client and cannot crash *)
        rejects
          {
            small with
            Core.Fleet.faults =
              { faults with Core.Faults.crash_at = [ (50, 0) ] };
          };
        (* a crashed majority is rejected per shard like everywhere else *)
        rejects
          {
            small with
            Core.Fleet.faults =
              { faults with Core.Faults.crash_at = [ (50, 1); (60, 2) ] };
          })
  ]

let determinism_tests =
  [
    tc "reports are byte-identical across -j" (fun () ->
        let r1 = Core.Fleet.run ~jobs:1 ~metrics:(Core.Metrics.create ()) small
        and r2 = Core.Fleet.run ~jobs:2 ~metrics:(Core.Metrics.create ()) small
        and r3 =
          Core.Fleet.run ~jobs:3 ~metrics:(Core.Metrics.create ()) small
        in
        Alcotest.(check string) "-j1 = -j2" (report_str r1) (report_str r2);
        Alcotest.(check string) "-j1 = -j3" (report_str r1) (report_str r3));
    tc "merged metrics are jobs-invariant" (fun () ->
        let counters jobs =
          let m = Core.Metrics.create () in
          ignore (Core.Fleet.run ~jobs ~metrics:m small);
          (Core.Metrics.snapshot m).Core.Metrics.counters
        in
        check_bool "counter multiset identical" true (counters 1 = counters 2));
    tc "disabled batching is inert whatever batch_max" (fun () ->
        (* batching is active only when window > 0 AND max > 1: with the
           window at 0 the batch_max knob must not perturb a single
           delivery draw *)
        let off1 =
          Core.Fleet.run ~metrics:(Core.Metrics.create ())
            { small with Core.Fleet.batch_window = 0; batch_max = 1 }
        and off8 =
          Core.Fleet.run ~metrics:(Core.Metrics.create ())
            { small with Core.Fleet.batch_window = 0; batch_max = 8 }
        and window_only =
          Core.Fleet.run ~metrics:(Core.Metrics.create ())
            { small with Core.Fleet.batch_window = 8; batch_max = 1 }
        in
        Alcotest.(check string) "batch_max 1 = 8 when window 0"
          (behaviour_str off1) (behaviour_str off8);
        Alcotest.(check string) "window without max is off too"
          (behaviour_str off1)
          (behaviour_str window_only));
  ]

let engine_tests =
  [
    tc "batching preserves verdicts and amortizes delivery" (fun () ->
        let unbatched =
          Core.Fleet.run ~metrics:(Core.Metrics.create ()) small
        in
        let batched =
          Core.Fleet.run ~metrics:(Core.Metrics.create ())
            { small with Core.Fleet.batch_window = 8; batch_max = 8 }
        in
        check_bool "unbatched completed" true unbatched.Core.Fleet.completed;
        check_bool "batched completed" true batched.Core.Fleet.completed;
        check_int "no unbatched check failures" 0
          unbatched.Core.Fleet.total_fails;
        check_int "no batched check failures" 0 batched.Core.Fleet.total_fails;
        check_int "same ops" unbatched.Core.Fleet.total_ops
          batched.Core.Fleet.total_ops;
        check_int "same sessions" unbatched.Core.Fleet.total_sessions
          batched.Core.Fleet.total_sessions;
        check_bool "fewer delivery attempts" true
          (batched.Core.Fleet.total_attempts
          < unbatched.Core.Fleet.total_attempts);
        check_bool "coalescing happened" true
          (batched.Core.Fleet.total_coalesced > 0);
        check_bool "attempts/op ordering" true
          (Core.Fleet.attempts_per_op batched
          < Core.Fleet.attempts_per_op unbatched));
    tc "generational pool: one-op sessions recycle every slot" (fun () ->
        let c = { small with Core.Fleet.session_len = 1; sample = 0 } in
        let r = Core.Fleet.run ~metrics:(Core.Metrics.create ()) c in
        check_bool "completed" true r.Core.Fleet.completed;
        (* every op is its own client session… *)
        check_int "sessions = ops" r.Core.Fleet.total_ops
          r.Core.Fleet.total_sessions;
        (* …and all but each slot's first occupant arrived via recycle *)
        let recycles =
          List.fold_left
            (fun a s -> a + s.Core.Fleet.recycles)
            0 r.Core.Fleet.shards_r
        in
        check_int "recycles = sessions - first occupants"
          (r.Core.Fleet.total_sessions
          - (c.Core.Fleet.shards * c.Core.Fleet.slots))
          recycles);
    tc "sampled shards stream-check clean" (fun () ->
        let r = Core.Fleet.run ~metrics:(Core.Metrics.create ()) small in
        check_bool "segments retired" true (r.Core.Fleet.total_segments > 0);
        check_int "no failures" 0 r.Core.Fleet.total_fails;
        List.iter
          (fun s ->
            check_bool "sampled iff below the sample count"
              (s.Core.Fleet.index < small.Core.Fleet.sample)
              s.Core.Fleet.sampled)
          r.Core.Fleet.shards_r);
    tc "mwabd fleet under crash + recovery completes clean" (fun () ->
        let c =
          {
            small with
            Core.Fleet.proto = Core.Fleet.Mw;
            slots = 4;
            ops = 400;
            faults =
              {
                faults with
                Core.Faults.crash_at = [ (300, 2) ];
                recover_at = [ (700, 2) ];
              };
          }
        in
        let r1 = Core.Fleet.run ~jobs:1 ~metrics:(Core.Metrics.create ()) c in
        let r2 = Core.Fleet.run ~jobs:2 ~metrics:(Core.Metrics.create ()) c in
        check_bool "completed" true r1.Core.Fleet.completed;
        check_int "no failures" 0 r1.Core.Fleet.total_fails;
        check_int "all ops ran" 400 r1.Core.Fleet.total_ops;
        Alcotest.(check string) "deterministic" (report_str r1) (report_str r2));
    tc "abd fleet rides out a replica crash + recovery" (fun () ->
        let c =
          {
            small with
            Core.Fleet.faults =
              {
                faults with
                Core.Faults.crash_at = [ (300, 2) ];
                recover_at = [ (700, 2) ];
              };
          }
        in
        let r = Core.Fleet.run ~metrics:(Core.Metrics.create ()) c in
        check_bool "completed" true r.Core.Fleet.completed;
        check_int "no failures" 0 r.Core.Fleet.total_fails;
        check_int "all ops ran" 600 r.Core.Fleet.total_ops);
  ]

let suite =
  [
    ("fleet.sharding", shard_tests);
    ("fleet.determinism", determinism_tests);
    ("fleet.engine", engine_tests);
  ]
