(* Benchmark harness: regenerates every experiment of the paper.

   Part 1 (Bechamel): one micro-benchmark per experiment family, measuring
   the wall-clock cost of the artifact it exercises — the E8 comparison
   (Algorithm 2's vector timestamps vs Algorithm 4's Lamport clocks vs the
   atomic baseline) across register sizes, the adversary rounds of E1/E2,
   the checkers of E3-E5, the ABD workload of E6 and the A' composition of
   E7.

   Part 2: the full experiment battery E1-E11 (paper-shaped tables with
   claim / expected / measured / PASS), as indexed in DESIGN.md and
   recorded in EXPERIMENTS.md.

     dune exec bench/main.exe
     dune exec bench/main.exe -- --json BENCH_pr1.json   # also write JSONL

   With --json FILE, every Bechamel estimate is written as a
   {"kind":"bench",...} JSONL record and every battery report as a
   {"kind":"report",...} record — the regression-trackable form of this
   run (see DESIGN.md "Observability").
*)

open Bechamel
open Toolkit

(* ----- helpers to run small simulations inside a benchmark fn -------------- *)

let run_mwmr_ops ~make ~write ~read ~n ~ops () =
  let sched = Core.Sched.create ~seed:7L () in
  let r = make sched in
  let done_ = ref false in
  Core.Sched.spawn sched ~pid:1 (fun () ->
      for k = 1 to ops do
        write r 1 k;
        ignore (read r 1)
      done;
      done_ := true);
  while not !done_ do
    ignore (Core.Sched.step sched ~pid:1)
  done;
  ignore n

let alg2_ops n ops () =
  run_mwmr_ops ~n ~ops
    ~make:(fun sched -> Core.wsl_mwmr sched ~name:"R" ~n ~init:0)
    ~write:(fun r p v -> Core.Wsl_register.write r ~proc:p v)
    ~read:(fun r p -> Core.Wsl_register.read r ~proc:p)
    ()

let alg4_ops n ops () =
  run_mwmr_ops ~n ~ops
    ~make:(fun sched -> Core.lamport_mwmr sched ~name:"R" ~n ~init:0)
    ~write:(fun r p v -> Core.Lamport_register.write r ~proc:p v)
    ~read:(fun r p -> Core.Lamport_register.read r ~proc:p)
    ()

let atomic_ops ops () =
  let sched = Core.Sched.create ~seed:7L () in
  let r =
    Core.adversarial_register sched ~name:"R" ~init:(Core.Value.Int 0)
      ~mode:Core.Adv_register.Atomic
  in
  let done_ = ref false in
  Core.Sched.spawn sched ~pid:1 (fun () ->
      for k = 1 to ops do
        Core.Adv_register.write r ~proc:1 (Core.Value.Int k);
        ignore (Core.Adv_register.read r ~proc:1)
      done;
      done_ := true);
  while not !done_ do
    ignore (Core.Sched.step sched ~pid:1)
  done

(* a fixed random Alg2 run reused by the checker benchmarks *)
let checker_run =
  lazy
    (Core.Scenario.random_alg2_run ~n:3 ~writes_per_proc:2 ~reads_per_proc:2
       ~seed:5L ())

(* ----- Part 1b: checker hot-path throughput --------------------------------

   The perf gate for the allocation-free checker loops: fixed-seed history
   sets, rates computed from the checker's own counters (linchk.states,
   treecheck.nodes) over a timed window.  Rows are written as
   {"kind":"bench","name":"hot/...","per_sec":...} and diffed across
   commits by scripts/bench_compare. *)

let hot_rng seed = Random.State.make [| 0x5EED; seed |]

let gen_histories spec gen ~count ~seed =
  let rand = hot_rng seed in
  List.init count (fun _ -> gen spec rand)

(* Checker-heavy set: concurrent atomic histories (always linearizable —
   the DFS must find a witness) and arbitrary histories (often not — the
   DFS must exhaust the state space through the memo set). *)
let hot_decide_histories =
  lazy
    (gen_histories
       { Core.Histgen.default_spec with n_ops = 14; n_procs = 4 }
       Core.Histgen.atomic_history ~count:12 ~seed:1
    @ gen_histories
        { Core.Histgen.default_spec with n_ops = 12; n_procs = 4 }
        Core.Histgen.arbitrary_history ~count:12 ~seed:2)

let hot_trees =
  lazy
    (gen_histories
       { Core.Histgen.default_spec with n_ops = 8; n_procs = 3 }
       Core.Histgen.atomic_history ~count:8 ~seed:3
    |> List.map Core.Treecheck.of_prefixes)

(* Parallel-driver set: fewer, harder histories (deeper DFS per call), so
   the per-call domain spawn of the work-stealing driver amortizes and
   the rows measure search throughput, not setup.  Recorded at -j 1 and
   -j 2 on whatever this machine is — on the 1-core CI container the
   -j 2 row honestly shows the coordination overhead. *)
let hot_par_histories =
  lazy
    (gen_histories
       { Core.Histgen.default_spec with n_ops = 18; n_procs = 5 }
       Core.Histgen.atomic_history ~count:4 ~seed:4
    @ gen_histories
        { Core.Histgen.default_spec with n_ops = 16; n_procs = 5 }
        Core.Histgen.arbitrary_history ~count:4 ~seed:5)

let hot_par_trees =
  lazy
    (gen_histories
       { Core.Histgen.default_spec with n_ops = 10; n_procs = 4 }
       Core.Histgen.atomic_history ~count:4 ~seed:6
    |> List.map Core.Treecheck.of_prefixes)

(* Streaming-checker set: the decide workload concatenated into one
   multi-segment JSONL stream (times shifted, op ids offset), replayed
   through a fresh serve engine per pass — measures the full ingest path
   (parse, segment, incremental check, verdict). *)
let hot_serve_lines =
  lazy
    (let hists =
       gen_histories
         { Core.Histgen.default_spec with n_ops = 12; n_procs = 4 }
         Core.Histgen.atomic_history ~count:8 ~seed:7
       @ gen_histories
           { Core.Histgen.default_spec with n_ops = 10; n_procs = 4 }
           Core.Histgen.arbitrary_history ~count:4 ~seed:8
     in
     let lines = ref [] in
     let toff = ref 0 and idoff = ref 0 in
     List.iter
       (fun h ->
         let maxt = ref 0 and maxid = ref 0 in
         List.iter
           (fun { Core.Event.time; event } ->
             let time = time + !toff in
             maxt := max !maxt time;
             let ev =
               match event with
               | Core.Event.Invoke { op_id; proc; obj; kind } ->
                   let op_id = op_id + !idoff in
                   maxid := max !maxid op_id;
                   Core.Serve.Ingest.Invoke { op_id; proc; obj; kind }
               | Core.Event.Respond { op_id; result } ->
                   let op_id = op_id + !idoff in
                   maxid := max !maxid op_id;
                   Core.Serve.Ingest.Respond { op_id; result }
             in
             lines :=
               Obs.Json.to_string (Core.Serve.Ingest.event_json ~time ev)
               :: !lines)
           (Core.Hist.events h);
         toff := !maxt + 1;
         idoff := !maxid + 1)
       hists;
     List.rev !lines)

(* Run [pass] repeatedly for [window_ms], then report
   counter-increments-per-second read from a private registry. *)
let measure_rate ~name ~counter ~window_ms pass =
  pass (Obs.Metrics.create ());
  (* warmup *)
  let m = Obs.Metrics.create () in
  let t0 = Obs.Span.now_ms () in
  let reps = ref 0 in
  while Obs.Span.now_ms () -. t0 < window_ms do
    pass m;
    incr reps
  done;
  let dt_s = (Obs.Span.now_ms () -. t0) /. 1000. in
  let total = Obs.Metrics.counter m counter in
  let per_sec = float_of_int total /. dt_s in
  Printf.printf "%-36s %16.0f %s/sec  (%d passes)\n" name per_sec counter
    !reps;
  Obs.Json.Obj
    [
      ("kind", Obs.Json.Str "bench");
      ("name", Obs.Json.Str name);
      ("per_sec", Obs.Json.Float per_sec);
      ("counter", Obs.Json.Str counter);
      ("passes", Obs.Json.Int !reps);
    ]

(* Fleet engine rows: a small sharded workload under link faults, with
   and without delivery batching — the ops/sec CI gate for E15.  The
   full-scale recording path is [--fleet OPS] below. *)
let fleet_bench_config ~batched =
  {
    Core.Fleet.default with
    Core.Fleet.shards = 2;
    ops = 4_000;
    session_len = 4;
    keys = 64;
    faults =
      { Core.Faults.none with Core.Faults.drop = 0.05; duplicate = 0.02 };
    seed = 10L;
    sample = 1;
    batch_window = (if batched then 8 else 0);
    batch_max = (if batched then 8 else 1);
  }

let throughput_rows ~window_ms () =
  let init = Core.Value.Int 0 in
  (* a disarmed flight recorder threaded through the same decide workload:
     the row must track hot/decide within noise, proving the tracing
     instrumentation costs one branch when off (DESIGN.md §13) *)
  let disarmed = Core.Tracer.create ~capacity:256 ~armed:false () in
  [
    measure_rate ~name:"hot/decide-states-per-sec" ~counter:"linchk.states"
      ~window_ms (fun m ->
        List.iter
          (fun h -> ignore (Core.Lincheck.witness ~metrics:m ~init h))
          (Lazy.force hot_decide_histories));
    measure_rate ~name:"hot/tracer-overhead-states-per-sec"
      ~counter:"linchk.states" ~window_ms (fun m ->
        List.iter
          (fun h ->
            ignore (Core.Lincheck.witness ~metrics:m ~tracer:disarmed ~init h))
          (Lazy.force hot_decide_histories));
    measure_rate ~name:"hot/treecheck-nodes-per-sec"
      ~counter:"treecheck.nodes" ~window_ms (fun m ->
        List.iter
          (fun t -> ignore (Core.Treecheck.write_strong ~metrics:m ~init t))
          (Lazy.force hot_trees));
    measure_rate ~name:"hot/serve-ingest-events-per-sec"
      ~counter:"serve.events" ~window_ms (fun m ->
        let engine = Core.Serve.Engine.create ~metrics:m ~emit:ignore () in
        List.iter
          (Core.Serve.Engine.feed_line engine)
          (Lazy.force hot_serve_lines);
        Core.Serve.Engine.finish engine);
    (* a full ABD run through two crash + state-transfer recoveries with
       nothing durable: the recovery path (restart, incarnation bump,
       read-back handshake) priced per scheduler step *)
    measure_rate ~name:"e14/abd-recovery-steps-per-sec"
      ~counter:"sched.steps" ~window_ms (fun m ->
        ignore
          (Core.Abd_runs.execute_config ~metrics:m
             {
               Core.Run_config.default with
               Core.Run_config.seed = 9L;
               persist = `Never;
               faults =
                 {
                   Core.Faults.none with
                   Core.Faults.crash_at = [ (60, 3); (120, 4) ];
                   recover_at = [ (110, 3); (170, 4) ];
                 };
             }));
    measure_rate ~name:"hot/incremental-segment-states-per-sec"
      ~counter:"linchk.inc.states" ~window_ms (fun m ->
        List.iter
          (fun h ->
            let inc = Core.Increment.create ~metrics:m ~entry:[ init ] () in
            List.iter
              (fun { Core.Event.time; event } ->
                match event with
                | Core.Event.Invoke { op_id; kind; _ } ->
                    Core.Increment.invoke inc ~id:op_id ~kind ~time
                | Core.Event.Respond { op_id; result } ->
                    Core.Increment.respond inc ~id:op_id ~result ~time)
              (Core.Hist.events h);
            ignore (Core.Increment.outcome inc))
          (Lazy.force hot_decide_histories));
    measure_rate ~name:"e15/fleet-quick-unbatched-ops-per-sec"
      ~counter:"trace.responds" ~window_ms (fun m ->
        ignore (Core.Fleet.run ~metrics:m (fleet_bench_config ~batched:false)));
    measure_rate ~name:"e15/fleet-quick-batched-ops-per-sec"
      ~counter:"trace.responds" ~window_ms (fun m ->
        ignore (Core.Fleet.run ~metrics:m (fleet_bench_config ~batched:true)));
  ]
  @ List.concat_map
      (fun jobs ->
        [
          measure_rate
            ~name:(Printf.sprintf "hot/decide-par-j%d-states-per-sec" jobs)
            ~counter:"linchk.states" ~window_ms (fun m ->
              List.iter
                (fun h ->
                  ignore (Core.Lincheck.witness ~metrics:m ~jobs ~init h))
                (Lazy.force hot_par_histories));
          measure_rate
            ~name:(Printf.sprintf "hot/treecheck-par-j%d-nodes-per-sec" jobs)
            ~counter:"treecheck.nodes" ~window_ms (fun m ->
              List.iter
                (fun t ->
                  ignore (Core.Treecheck.write_strong ~metrics:m ~jobs ~init t))
                (Lazy.force hot_par_trees));
        ])
      [ 1; 2 ]

let tests =
  [
    (* --- E1: a Theorem-6 adversary round --------------------------------- *)
    Test.make ~name:"e1/thm6-adversary-5-rounds"
      (Staged.stage (fun () ->
           ignore (Core.Adversary.run_linearizable ~n:5 ~rounds:5 ~seed:17L ())));
    (* --- E2: a full WSL game (gate) to termination ------------------------ *)
    Test.make ~name:"e2/wsl-game-to-termination"
      (Staged.stage (fun () ->
           ignore
             (Core.Adversary.run_write_strong ~n:5 ~max_rounds:40 ~seed:23L ())));
    (* --- E8: per-op cost of the register constructions ------------------- *)
    Test.make ~name:"e8/atomic-20ops" (Staged.stage (atomic_ops 20));
    Test.make ~name:"e8/alg4-n4-20ops" (Staged.stage (alg4_ops 4 20));
    Test.make ~name:"e8/alg2-n4-20ops" (Staged.stage (alg2_ops 4 20));
    Test.make ~name:"e8/alg4-n16-20ops" (Staged.stage (alg4_ops 16 20));
    Test.make ~name:"e8/alg2-n16-20ops" (Staged.stage (alg2_ops 16 20));
    (* --- E3: Algorithm 3 (the WSL function) on a recorded run ------------- *)
    Test.make ~name:"e3/alg3-linearize"
      (Staged.stage (fun () ->
           let run = Lazy.force checker_run in
           ignore
             (Core.Wsl_function.linearize run.Core.Scenario.trace ~obj:"R")));
    (* --- E5: the exact linearizability checker ---------------------------- *)
    Test.make ~name:"e5/lincheck-12ops"
      (Staged.stage (fun () ->
           let run = Lazy.force checker_run in
           ignore
             (Core.Lincheck.check ~init:(Core.Value.Int 0)
                run.Core.Scenario.history)));
    (* --- E4: the history-tree refutation ----------------------------------- *)
    Test.make ~name:"e4/fig4-tree-refutation"
      (Staged.stage (fun () -> ignore (Core.Scenario.fig4 ())));
    (* --- E6: one ABD workload under random asynchrony ---------------------- *)
    Test.make ~name:"e6/abd-workload"
      (Staged.stage (fun () ->
           ignore
             (Core.Abd_runs.execute { Core.Abd_runs.default with seed = 9L })));
    (* --- E7: A' end-to-end (gate + consensus) ------------------------------ *)
    Test.make ~name:"e7/cor9-live"
      (Staged.stage (fun () ->
           ignore
             (Core.Cor9.run_live
                { n = 4; gate_rounds = 40; consensus_max_rounds = 200; seed = 3L }
                ~inputs:(fun pid -> pid mod 2))));
    (* --- E9: the mixed-mode ablation game ----------------------------------- *)
    Test.make ~name:"e9/ablation-r1-lin-aux-wsl"
      (Staged.stage (fun () ->
           ignore (Core.Adversary.run_linearizable_r1_only ~n:5 ~rounds:5 ~seed:61L ())));
    (* --- E10: multi-writer ABD workload + counterexample --------------------- *)
    Test.make ~name:"e10/mwabd-workload"
      (Staged.stage (fun () ->
           ignore
             (Core.Abd_runs.execute_mw ~n:3 ~writers:[ 0; 1 ] ~writes_each:2
                ~readers:[ 2 ] ~reads_each:2 ~seed:11L ())));
    Test.make ~name:"e10/mwabd-tree-refutation"
      (Staged.stage (fun () -> ignore (Core.Mwabd_scenario.run ())));
    (* --- E11: the same ABD workload under a lossy, duplicating link -------- *)
    Test.make ~name:"e11/abd-workload-faulty"
      (Staged.stage (fun () ->
           ignore
             (Core.Abd_runs.execute
                {
                  Core.Abd_runs.default with
                  seed = 9L;
                  faults =
                    {
                      Core.Faults.none with
                      Core.Faults.drop = 0.15;
                      duplicate = 0.05;
                      delay = 0.05;
                      delay_bound = 4;
                    };
                })));
    (* --- E14: an ABD workload through a crash + state-transfer recovery ----- *)
    Test.make ~name:"e14/abd-recovery"
      (Staged.stage (fun () ->
           ignore
             (Core.Abd_runs.execute_config
                {
                  Core.Run_config.default with
                  Core.Run_config.seed = 9L;
                  persist = `Never;
                  faults =
                    {
                      Core.Faults.none with
                      Core.Faults.crash_at = [ (60, 3); (120, 4) ];
                      recover_at = [ (110, 3); (170, 4) ];
                    };
                })));
  ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"rlin" ~fmt:"%s %s" tests)
  in
  List.map (fun i -> Analyze.all ols i raw) instances

let json_out () =
  let rec scan = function
    | "--json" :: path :: _ -> Some path
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

(* [-j N]: domains for the battery's Monte-Carlo loops (default: all). *)
let jobs_opt () =
  let rec scan = function
    | "-j" :: n :: _ -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> n
        | _ ->
            prerr_endline "bench: -j expects a positive integer";
            exit 2)
    | _ :: rest -> scan rest
    | [] -> Core.Pool.default_jobs ()
  in
  scan (Array.to_list Sys.argv)

(* [--quick]: only the checker-throughput rows (Part 1b), with a short
   measurement window — the CI perf gate. *)
let quick_opt () = Array.exists (String.equal "--quick") Sys.argv

(* [--fleet OPS]: the E15 recording path — one full-scale fleet run at
   OPS total client operations (E15's config: 8 ABD shards, one-op
   sessions, link faults + a crash/recovery pair), batched and
   unbatched, printing ops/sec and the process max RSS; with --json the
   two rows are what BENCH_pr10.json records at the 1M scale. *)
let fleet_opt () =
  let rec scan = function
    | "--fleet" :: n :: _ -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> Some n
        | _ ->
            prerr_endline "bench: --fleet expects a positive op count";
            exit 2)
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

(* VmHWM from /proc/self/status: the high-water RSS, the flat-memory
   evidence the fleet rows carry (0 where /proc is unavailable). *)
let max_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let rss = ref 0 in
      (try
         while true do
           let line = input_line ic in
           try Scanf.sscanf line "VmHWM: %d kB" (fun k -> rss := k) with
           | Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
         done
       with End_of_file -> ());
      close_in ic;
      !rss

let scale_label ops =
  if ops mod 1_000_000 = 0 then Printf.sprintf "%dM" (ops / 1_000_000)
  else if ops mod 1_000 = 0 then Printf.sprintf "%dk" (ops / 1_000)
  else string_of_int ops

let fleet_rows ~jobs ~ops =
  let base =
    {
      Core.Fleet.default with
      Core.Fleet.shards = 8;
      ops;
      slots = 4;
      session_len = 1;
      write_ratio = 0.2;
      keys = 256;
      faults =
        {
          Core.Faults.none with
          Core.Faults.drop = 0.05;
          duplicate = 0.02;
          delay = 0.05;
          delay_bound = 4;
          crash_at = [ (400, 2) ];
          recover_at = [ (900, 2) ];
        };
      persist = `Every;
      seed = 15L;
      sample = 2;
    }
  in
  let row suffix cfg =
    let m = Obs.Metrics.create () in
    let t0 = Obs.Span.now_ms () in
    let r = Core.Fleet.run ~jobs ~metrics:m cfg in
    let dt_s = (Obs.Span.now_ms () -. t0) /. 1000. in
    let per_sec = float_of_int r.Core.Fleet.total_ops /. dt_s in
    let rss = max_rss_kb () in
    let ok = r.Core.Fleet.completed && r.Core.Fleet.total_fails = 0 in
    let name =
      Printf.sprintf "e15/fleet-%s-%s-ops-per-sec" (scale_label ops) suffix
    in
    Printf.printf
      "%-40s %12.0f ops/sec  %.2f attempts/op, %d sessions, %d segments \
       (%d fail, %d unknown), max RSS %d kB, %s\n%!"
      name per_sec
      (Core.Fleet.attempts_per_op r)
      r.Core.Fleet.total_sessions r.Core.Fleet.total_segments
      r.Core.Fleet.total_fails r.Core.Fleet.total_unknowns rss
      (if ok then "ok" else "FAILED");
    if not ok then exit 1;
    Obs.Json.Obj
      [
        ("kind", Obs.Json.Str "bench");
        ("name", Obs.Json.Str name);
        ("per_sec", Obs.Json.Float per_sec);
        ("counter", Obs.Json.Str "trace.responds");
        ("passes", Obs.Json.Int 1);
        ("ops", Obs.Json.Int r.Core.Fleet.total_ops);
        ("sessions", Obs.Json.Int r.Core.Fleet.total_sessions);
        ("attempts_per_op", Obs.Json.Float (Core.Fleet.attempts_per_op r));
        ("coalesced", Obs.Json.Int r.Core.Fleet.total_coalesced);
        ("segments", Obs.Json.Int r.Core.Fleet.total_segments);
        ("seg_fails", Obs.Json.Int r.Core.Fleet.total_fails);
        ("max_rss_kb", Obs.Json.Int rss);
      ]
  in
  (* let-bound so the unbatched run goes first: VmHWM is monotone, so
     row order is what makes the two RSS figures comparable *)
  let unbatched = row "unbatched" base in
  let batched =
    row "batched" { base with Core.Fleet.batch_window = 8; batch_max = 8 }
  in
  [ unbatched; batched ]

let () =
  let json = json_out () in
  let jobs = jobs_opt () in
  (match fleet_opt () with
  | None -> ()
  | Some ops ->
      Printf.printf "=== E15 fleet recording (%s ops, -j %d) ===\n"
        (scale_label ops) jobs;
      let rows = fleet_rows ~jobs ~ops in
      (match json with
      | None -> ()
      | Some path ->
          Obs.Export.to_file path rows;
          Printf.printf "wrote %d JSONL records to %s\n" (List.length rows)
            path);
      exit 0);
  if quick_opt () then begin
    print_endline "=== checker hot-path throughput (--quick) ===";
    let rows = throughput_rows ~window_ms:500. () in
    (match json with
    | None -> ()
    | Some path ->
        Obs.Export.to_file path rows;
        Printf.printf "wrote %d JSONL records to %s\n" (List.length rows) path);
    exit 0
  end;
  begin
  print_endline "=== Part 1: micro-benchmarks (Bechamel, monotonic clock) ===";
  let bench_rows =
    match benchmark () with
    | [ tbl ] ->
        let rows =
          Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        in
        Printf.printf "%-36s %16s %10s\n" "benchmark" "ns/run" "r^2";
        List.map
          (fun (name, ols) ->
            let ns_per_run =
              match Analyze.OLS.estimates ols with
              | Some (e :: _) -> Some e
              | _ -> None
            in
            let r_square = Analyze.OLS.r_square ols in
            let show fmt = function
              | Some v -> Printf.sprintf fmt v
              | None -> "-"
            in
            Printf.printf "%-36s %16s %10s\n" name
              (show "%16.0f" ns_per_run)
              (show "%10.4f" r_square);
            Obs.Export.bench_json ~name ~ns_per_run ~r_square)
          rows
    | _ -> assert false
  in
  print_endline "";
  print_endline "=== Part 1b: checker hot-path throughput ===";
  let hot_rows = throughput_rows ~window_ms:1000. () in
  print_endline "";
  Printf.printf "=== Part 2: experiment battery (paper-shaped tables, -j %d) ===\n"
    jobs;
  let battery_t0 = Obs.Span.now_ms () in
  let reports = Experiments.all ~jobs ~quick:false () in
  let battery_ms = Obs.Span.now_ms () -. battery_t0 in
  List.iter (fun r -> Format.printf "%a@." Experiments.pp_report r) reports;
  let passed = List.length (List.filter (fun r -> r.Experiments.pass) reports) in
  Format.printf "=== %d/%d experiments reproduce the paper's claims ===@."
    passed (List.length reports);
  Printf.printf "battery wall time: %.0f ms (-j %d)\n" battery_ms jobs;
  match json with
  | None -> ()
  | Some path ->
      let battery_row =
        Obs.Json.Obj
          [
            ("kind", Obs.Json.Str "battery");
            ("jobs", Obs.Json.Int jobs);
            ("wall_ms", Obs.Json.Float battery_ms);
          ]
      in
      let rows =
        bench_rows @ hot_rows
        @ List.map Experiments.report_json reports
        @ [ battery_row ]
      in
      Obs.Export.to_file path rows;
      Printf.printf "wrote %d JSONL records to %s\n" (List.length rows) path
  end
