(* Command-line driver for the reproduction of "On Register Linearizability
   and Termination" (PODC 2021).

   Subcommands:
     rlin experiments [--quick] [-j N] [--only E1,E5] [--json FILE]
                      [--drop P] [--dup P] [--delay P] [--crash n@s,...]
                      [--recover n@s,...]
                                       run the E1-E15 battery
     rlin game --mode MODE ...         run Algorithm 1 under a chosen regime
     rlin fig3 | rlin fig4             replay the paper's figures
     rlin abd ...                      run an ABD workload and check it
     rlin mwabd                        multi-writer ABD + its non-WSL refutation
     rlin check -j N ...               seeded history batteries through the
                                       (work-stealing parallel) checker
     rlin chaos run ...                random config search + online monitors
     rlin chaos replay PATH            replay the regression corpus verbatim
     rlin chaos shrink PATH            re-minimize corpus entries
     rlin chaos adv --mode MODE        chaos adversary vs the exact checker
     rlin fleet ...                    sharded fleet workload: batched quorum
                                       delivery, generational client sessions
     rlin consensus ...                run Corollary 9's A'
     rlin trace --source S --out FILE  dump a run's trace as JSONL
     rlin serve ...                    streaming linearizability checker
     rlin metrics --source S           run a workload, print its metrics
*)

open Cmdliner

let seed_arg =
  let doc = "Random seed (determines coins, schedules, workloads)." in
  Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc)

let n_arg default =
  let doc = "Number of processes." in
  Arg.(value & opt int default & info [ "n" ] ~docv:"N" ~doc)

let write_jsonl path lines =
  if path = "-" then Obs.Export.write_lines stdout lines
  else
    try Obs.Export.to_file path lines
    with Sys_error msg ->
      Printf.eprintf "rlin: cannot write %s (%s)\n" path msg;
      exit 1

(* ----- fault flags ------------------------------------------------------------ *)

(* Shared by `experiments` and `abd`: a deterministic link-fault plan
   (Simkit.Faults).  All-zero probabilities mean "no plan" — the benign
   fast path, with no fault RNG attached at all. *)
let faults_term =
  let prob name doc =
    Arg.(value & opt float 0. & info [ name ] ~docv:"P" ~doc)
  in
  let drop = prob "drop" "Per-delivery-attempt drop probability." in
  let dup = prob "dup" "Per-delivery-attempt duplication probability." in
  let delay =
    prob "delay"
      "Per-delivery-attempt deferral probability (bounded reorder window)."
  in
  let delay_bound =
    Arg.(
      value & opt int 4
      & info [ "delay-bound" ] ~docv:"K"
          ~doc:"Max deferrals per message (the reorder window).")
  in
  let build drop dup delay delay_bound =
    if drop = 0. && dup = 0. && delay = 0. then None
    else
      Some
        {
          Core.Faults.none with
          Core.Faults.drop;
          duplicate = dup;
          delay;
          delay_bound;
        }
  in
  Term.(const build $ drop $ dup $ delay $ delay_bound)

(* ----- crash schedules -------------------------------------------------------- *)

(* `--crash` entries: either a bare node (crash once the run is underway —
   the legacy `rlin abd` form) or node@step (crash on the scheduler's step
   clock, the Simkit.Faults.crash_at form). *)
let crash_item_conv =
  let parse s =
    match String.index_opt s '@' with
    | None -> (
        match int_of_string_opt s with
        | Some node -> Ok (`Node node)
        | None -> Error (`Msg (Printf.sprintf "bad crash entry %S" s)))
    | Some i -> (
        let node = String.sub s 0 i in
        let step = String.sub s (i + 1) (String.length s - i - 1) in
        match (int_of_string_opt node, int_of_string_opt step) with
        | Some node, Some step when step >= 0 -> Ok (`At (step, node))
        | _ ->
            Error
              (`Msg
                 (Printf.sprintf "bad crash entry %S (want NODE or NODE@STEP)"
                    s)))
  in
  let print fmt = function
    | `Node n -> Format.fprintf fmt "%d" n
    | `At (s, n) -> Format.fprintf fmt "%d@%d" n s
  in
  Arg.conv (parse, print)

let crash_arg ~doc = Arg.(value & opt (list crash_item_conv) [] & info [ "crash" ] ~docv:"SPECS" ~doc)

let split_crash_items items =
  List.partition_map
    (function `Node n -> Left n | `At (s, n) -> Right (s, n))
    items

(* `--recover` entries: NODE@STEP only — a recovery is always pinned to
   the step clock, and validation demands it follow a crash of the same
   node (see Runs.validate_crash_schedule). *)
let recover_arg ~what =
  let term =
    Arg.(
      value
      & opt (list crash_item_conv) []
      & info [ "recover" ] ~docv:"SPECS"
          ~doc:
            "Comma-separated NODE@STEP recovery schedule, e.g. \
             $(b,3@400): restart node 3 at step 400 with a fresh \
             incarnation.  Each entry must recover a node crashed \
             earlier by $(b,--crash) (crash/recover must alternate per \
             node).")
  in
  let check items =
    List.map
      (function
        | `At (s, n) -> (s, n)
        | `Node n ->
            Printf.eprintf
              "rlin: %s --recover takes NODE@STEP entries (got bare node %d)\n"
              what n;
            exit 2)
      items
  in
  Term.(const check $ term)

(* ----- experiments --------------------------------------------------------- *)

let jobs_arg =
  let doc =
    "Run independent Monte-Carlo runs on up to $(docv) domains (default: \
     the machine's recommended domain count).  Reports are identical \
     whatever $(docv) is; only wall-clock changes."
  in
  Arg.(
    value
    & opt int (Core.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let experiments_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller run counts (seconds).")
  in
  let only =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "only" ] ~docv:"IDS"
          ~doc:
            "Comma-separated experiment ids to run (e.g. $(b,E1,E5)); \
             always executed in battery order.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also write the battery as line-delimited JSON, one record per \
             report ('-' for stdout).")
  in
  let run quick jobs only json faults crash recover =
    (match only with
    | Some ids when
        List.exists
          (fun id ->
            not (List.mem (String.uppercase_ascii id) Experiments.ids))
          ids ->
        Printf.eprintf "rlin: unknown experiment id in --only (know %s)\n"
          (String.concat ", " Experiments.ids);
        exit 2
    | _ -> ());
    let faults =
      (* --crash n@s[,n@s...] joins the link-fault plan as its crash_at
         schedule (--recover as its recover_at); validated against E6's
         topology (5 nodes, clients 0/1/2) — the only fault-aware
         experiment with crashable nodes *)
      let legacy, schedule = split_crash_items crash in
      if legacy <> [] then begin
        Printf.eprintf
          "rlin: experiments --crash takes NODE@STEP entries (got a bare \
           node)\n";
        exit 2
      end;
      (try
         Core.Abd_runs.validate_crash_schedule ~what:"rlin experiments" ~n:5
           ~clients:[ 0; 1; 2 ] ~recoveries:recover schedule
       with Invalid_argument msg ->
         Printf.eprintf "rlin: %s\n" msg;
         exit 2);
      match (faults, schedule) with
      | None, [] -> None
      | Some plan, schedule ->
          Some
            { plan with Core.Faults.crash_at = schedule; recover_at = recover }
      | None, schedule ->
          Some
            {
              Core.Faults.none with
              Core.Faults.crash_at = schedule;
              recover_at = recover;
            }
    in
    (match faults with
    | Some plan -> (
        try Core.Faults.validate plan
        with Invalid_argument msg ->
          Printf.eprintf "rlin: bad fault plan: %s\n" msg;
          exit 2)
    | None -> ());
    let reports = Experiments.all ~jobs ?only ?faults ~quick () in
    List.iter
      (fun r -> Format.printf "%a@." Experiments.pp_report r)
      reports;
    let passed = List.filter (fun r -> r.Experiments.pass) reports in
    Format.printf "=== %d/%d experiments reproduce the paper's claims ===@."
      (List.length passed) (List.length reports);
    Option.iter
      (fun path -> write_jsonl path (List.map Experiments.report_json reports))
      json;
    if List.length passed = List.length reports then 0 else 1
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:
         "Run the full experiment battery (E1-E14), one per paper artifact; \
          $(b,--drop)/$(b,--dup)/$(b,--delay)/$(b,--crash)/$(b,--recover) \
          subject the fault-aware experiments (E6, E10) to a deterministic \
          link-fault plan (crash/recovery schedules affect E6 only: E10's \
          nodes are all clients).")
    Term.(
      const run $ quick $ jobs_arg $ only $ json $ faults_term
      $ crash_arg
          ~doc:
            "Comma-separated NODE@STEP crash schedule for the fault-aware \
             experiments, e.g. $(b,3@150,4@300) (E6 topology: 5 nodes, \
             clients 0-2)."
      $ recover_arg ~what:"experiments")

(* ----- game ----------------------------------------------------------------- *)

let mode_conv =
  let parse = function
    | "atomic" -> Ok Core.Adv_register.Atomic
    | "wsl" | "write-strong" -> Ok Core.Adv_register.Write_strong
    | "lin" | "linearizable" -> Ok Core.Adv_register.Linearizable
    | s -> Error (`Msg (Printf.sprintf "unknown mode %S (atomic|wsl|lin)" s))
  in
  let print fmt m =
    Format.pp_print_string fmt
      (match m with
      | Core.Adv_register.Atomic -> "atomic"
      | Core.Adv_register.Write_strong -> "wsl"
      | Core.Adv_register.Linearizable -> "lin")
  in
  Arg.conv (parse, print)

let mode_conv_term =
  Arg.(
    value
    & opt mode_conv Core.Adv_register.Linearizable
    & info [ "mode" ] ~docv:"MODE"
        ~doc:"Register mode: atomic, wsl or lin.")

let game_cmd =
  let mode =
    Arg.(
      value
      & opt mode_conv Core.Adv_register.Write_strong
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Register mode: atomic, wsl (write strongly-linearizable) or \
                lin (merely linearizable; runs the Theorem-6 adversary).")
  in
  let rounds =
    Arg.(
      value & opt int 20
      & info [ "rounds" ] ~docv:"R" ~doc:"Round budget / adversary rounds.")
  in
  let run mode rounds n seed =
    (match mode with
    | Core.Adv_register.Linearizable ->
        let res = Core.Adversary.run_linearizable ~n ~rounds ~seed () in
        Printf.printf
          "Theorem-6 adversary, %d rounds driven: terminated=%b, every \
           process in round %d\n"
          rounds res.Core.Game_alg1.terminated res.Core.Game_alg1.max_round
    | Core.Adv_register.Write_strong ->
        let res = Core.Adversary.run_write_strong ~n ~max_rounds:rounds ~seed () in
        Printf.printf
          "same adversary vs WSL registers: terminated=%b at round %d\n"
          res.Core.Game_alg1.terminated res.Core.Game_alg1.max_round
    | Core.Adv_register.Atomic ->
        let cfg =
          { Core.Game_alg1.default with n; max_rounds = rounds; seed }
        in
        let res = Core.Game_alg1.run_random cfg ~max_steps:(rounds * n * 200) in
        Printf.printf "atomic registers, random scheduler: terminated=%b at round %d\n"
          res.Core.Game_alg1.terminated res.Core.Game_alg1.max_round);
    0
  in
  Cmd.v
    (Cmd.info "game"
       ~doc:"Run Algorithm 1 (the termination game) under a register mode.")
    Term.(const run $ mode $ rounds $ n_arg 5 $ seed_arg)

(* ----- figures --------------------------------------------------------------- *)

let fig3_cmd =
  let run () =
    let f3 = Core.Scenario.fig3 () in
    print_endline "Figure 3: three concurrent writes under Algorithm 2";
    print_string (Core.Timeline.render f3.Core.Scenario.history);
    Printf.printf "write order committed at w2's completion (t=%d): [%s]\n"
      f3.Core.Scenario.t_w2
      (String.concat "; " (List.map string_of_int f3.Core.Scenario.ws_at_t));
    Printf.printf "final write order: [%s]\n"
      (String.concat "; " (List.map string_of_int f3.Core.Scenario.final_ws));
    0
  in
  Cmd.v
    (Cmd.info "fig3" ~doc:"Replay Figure 3 (on-line ordering of concurrent writes).")
    Term.(const run $ const ())

let fig4_cmd =
  let run () =
    let f4 = Core.Scenario.fig4 () in
    print_endline "Figure 4: the Theorem-13 counterexample on Algorithm 4";
    print_endline "G:";
    print_string (Core.Timeline.render f4.Core.Scenario.g);
    print_endline "H1 (forces w1 < w2):";
    print_string (Core.Timeline.render f4.Core.Scenario.h1);
    print_endline "H2 (forces w2 < w1):";
    print_string (Core.Timeline.render f4.Core.Scenario.h2);
    Printf.printf
      "write strong-linearization impossible on {G -> H1, H2}: %b\n"
      f4.Core.Scenario.wsl_impossible;
    if f4.Core.Scenario.wsl_impossible then 0 else 1
  in
  Cmd.v
    (Cmd.info "fig4" ~doc:"Replay Figure 4 (Algorithm 4 is not WSL).")
    Term.(const run $ const ())

(* ----- abd ------------------------------------------------------------------- *)

let abd_cmd =
  let writes =
    Arg.(value & opt int 5 & info [ "writes" ] ~docv:"K" ~doc:"Writer operations.")
  in
  let run n writes crash recover seed faults =
    (* bare nodes crash once the run is underway (the legacy behaviour);
       NODE@STEP entries join the fault plan's step-clock schedule *)
    let legacy, schedule = split_crash_items crash in
    (try
       Core.Abd_runs.validate_crash_schedule ~what:"rlin abd" ~n
         ~clients:[ 0; 1; 2 ] ~recoveries:recover schedule
     with Invalid_argument msg ->
       Printf.eprintf "rlin: %s\n" msg;
       exit 2);
    let faults = Option.value faults ~default:Core.Faults.none in
    let faults =
      { faults with Core.Faults.crash_at = schedule; recover_at = recover }
    in
    let w =
      {
        Core.Abd_runs.n;
        writes;
        readers = [ 1; 2 ];
        reads_each = writes - 1;
        crash = legacy;
        faults;
        seed;
      }
    in
    let run =
      try Core.Abd_runs.execute w
      with Invalid_argument msg ->
        Printf.eprintf "rlin: %s\n" msg;
        exit 2
    in
    print_string (Core.Timeline.render run.Core.Abd_runs.history);
    match Core.Abd_runs.check run with
    | Ok () ->
        print_endline "check: linearizable and write strongly-linearizable";
        0
    | Error e ->
        Printf.printf "check FAILED: %s\n" e;
        1
  in
  Cmd.v
    (Cmd.info "abd"
       ~doc:
         "Run an ABD workload in the message-passing simulator, optionally \
          under a link-fault plan ($(b,--drop)/$(b,--dup)/$(b,--delay)) \
          and a crash/recovery schedule ($(b,--crash 3,4@200): crash node \
          3 once underway, node 4 at step 200; $(b,--recover 4@500): \
          restart node 4 at step 500).")
    Term.(
      const run $ n_arg 5 $ writes
      $ crash_arg
          ~doc:
            "Comma-separated crash entries: a bare NODE crashes after the \
             first write completes, NODE@STEP crashes on the scheduler's \
             step clock."
      $ recover_arg ~what:"abd" $ seed_arg $ faults_term)

(* ----- consensus ------------------------------------------------------------- *)

let consensus_cmd =
  let blocked =
    Arg.(
      value & flag
      & info [ "blocked" ]
          ~doc:"Run the blocked variant (linearizable gate + adversary).")
  in
  let run n blocked seed =
    let cfg =
      { Core.Cor9.n; gate_rounds = 30; consensus_max_rounds = 300; seed }
    in
    if blocked then begin
      let o = Core.Cor9.run_blocked cfg in
      Printf.printf "gate blocked forever: %b (no process started consensus)\n"
        o.Core.Cor9.blocked;
      if o.Core.Cor9.blocked then 0 else 1
    end
    else begin
      let o = Core.Cor9.run_live cfg ~inputs:(fun pid -> pid mod 2) in
      let decided =
        List.filter (fun (_, d) -> d <> None)
          o.Core.Cor9.consensus.Core.Rand_consensus.decisions
      in
      Printf.printf
        "gate opened at round %d; %d/%d decided; agreement=%b validity=%b\n"
        o.Core.Cor9.game.Core.Game_alg1.max_round (List.length decided) n
        o.Core.Cor9.consensus.Core.Rand_consensus.agreed
        o.Core.Cor9.consensus.Core.Rand_consensus.valid;
      0
    end
  in
  Cmd.v
    (Cmd.info "consensus" ~doc:"Run Corollary 9's A' (gate + consensus).")
    Term.(const run $ n_arg 5 $ blocked $ seed_arg)

(* ----- mwabd ------------------------------------------------------------------ *)

let mwabd_cmd =
  let run seed =
    let run =
      Core.Abd_runs.execute_mw ~n:3 ~writers:[ 0; 1 ] ~writes_each:2
        ~readers:[ 2 ] ~reads_each:3 ~seed ()
    in
    print_string (Core.Timeline.render run.Core.Abd_runs.history);
    Printf.printf "linearizable: %b
"
      (Core.Lincheck.check ~init:(Core.Value.Int 0) run.Core.Abd_runs.history);
    let sc = Core.Mwabd_scenario.run () in
    Printf.printf
      "write strong-linearization impossible on the delivery-order tree: %b
"
      sc.Core.Mwabd_scenario.wsl_impossible;
    if sc.Core.Mwabd_scenario.wsl_impossible then 0 else 1
  in
  Cmd.v
    (Cmd.info "mwabd"
       ~doc:"Run a multi-writer ABD workload and its non-WSL counterexample.")
    Term.(const run $ seed_arg)

(* ----- chaos ------------------------------------------------------------------ *)

let violation_line (v : Core.Monitor.violation) =
  Printf.sprintf "%s: %s" v.Core.Monitor.monitor v.Core.Monitor.detail

let chaos_run_cmd =
  let budget =
    Arg.(
      value & opt int 200
      & info [ "budget" ] ~docv:"N"
          ~doc:"Number of random configurations to execute.")
  in
  let inject =
    Arg.(
      value & flag
      & info [ "inject-quorum-bug" ]
          ~doc:
            "Self-test: generate configs whose quorum override is majority \
             - 1 (no quorum intersection), proving the monitor -> shrinker \
             -> corpus loop catches a real protocol bug.")
  in
  let inject_recovery =
    Arg.(
      value & flag
      & info [ "inject-recovery-bug" ]
          ~doc:
            "Self-test: generate configs that pair every crash with a \
             recovery, persist nothing, and skip the state-transfer \
             handshake — recovered replicas rejoin quorums amnesiac, \
             which the recovery-sanity (or linearizability) monitor must \
             catch.  Mutually exclusive with $(b,--inject-quorum-bug).")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Append every minimal reproducer to \
             $(docv)/found-SEED.jsonl for $(b,rlin chaos replay).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the search report as one JSONL record ('-' for stdout); \
             carries no wall-clock, so reports diff clean across -j.")
  in
  let flight =
    Arg.(
      value & flag
      & info [ "flight-recorder" ]
          ~doc:
            "Re-execute every shrunk reproducer under an armed causal \
             flight recorder and attach the last recorded events to its \
             corpus entry as a post-mortem (sequential, deterministic; \
             reports still diff clean across -j).")
  in
  let check_jobs =
    Arg.(
      value & opt int 1
      & info [ "check-jobs" ] ~docv:"JOBS"
          ~doc:
            "Run the linearizability monitor's checker on up to $(docv) \
             domains per audited run (the work-stealing parallel driver).  \
             Verdicts, reports and corpora are identical whatever $(docv) \
             is.")
  in
  let run budget seed jobs check_jobs inject inject_recovery corpus json
      flight =
    if inject && inject_recovery then begin
      Printf.eprintf
        "rlin: --inject-quorum-bug and --inject-recovery-bug are mutually \
         exclusive\n";
      exit 2
    end;
    let inject =
      if inject then Some Core.Chaos.Quorum_too_small
      else if inject_recovery then Some Core.Chaos.Unsafe_recovery
      else None
    in
    let report =
      Core.Chaos.search ~jobs ~check_jobs ?inject ~flight
        ~telemetry:Obs.Metrics.global ~seed ~budget ()
    in
    let findings = report.Core.Chaos.findings in
    Printf.printf "chaos: %d configs explored (seed %Ld), %d violations\n"
      budget seed (List.length findings);
    List.iter
      (fun f ->
        Printf.printf "  [%d] %s\n      shrunk to %s in %d executions\n"
          f.Core.Chaos.index
          (violation_line f.Core.Chaos.first)
          (Core.Json.to_string
             (Core.Run_config.json f.Core.Chaos.shrunk.Core.Shrink.config))
          f.Core.Chaos.shrunk.Core.Shrink.attempts;
        if flight then
          Printf.printf "      post-mortem: %d flight-recorder events\n"
            (List.length f.Core.Chaos.postmortem))
      findings;
    Option.iter
      (fun dir ->
        if findings <> [] then begin
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let path =
            Filename.concat dir (Printf.sprintf "found-%Ld.jsonl" seed)
          in
          List.iter (Core.Corpus.append path) (Core.Chaos.to_entries report);
          Printf.printf "wrote %d reproducers to %s\n" (List.length findings)
            path
        end)
      corpus;
    Option.iter
      (fun path -> write_jsonl path [ Core.Chaos.report_json report ])
      json;
    if findings = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Random chaos search: sample (workload x fault plan x \
          crash/recovery schedule x persist policy) configurations, \
          execute each against the online monitors (linearizability, \
          termination, quorum sanity, recovery sanity), and delta-debug \
          every violation to a minimal reproducer.  Exits non-zero when \
          violations were found.")
    Term.(
      const run $ budget $ seed_arg $ jobs_arg $ check_jobs $ inject
      $ inject_recovery $ corpus $ json $ flight)

let replay_path path =
  match Core.Corpus.load path with
  | Error e ->
      Printf.eprintf "rlin chaos replay: %s\n" e;
      2
  | Ok [] ->
      Printf.printf "no corpus entries under %s\n" path;
      0
  | Ok entries ->
      let drift = ref 0 in
      List.iteri
        (fun i (e : Core.Corpus.entry) ->
          match Core.Corpus.replay e with
          | Core.Corpus.Reproduced ->
              Printf.printf "[%d] reproduced: %s\n" i
                (violation_line e.Core.Corpus.violation)
          | Core.Corpus.Changed v ->
              incr drift;
              Printf.printf "[%d] CHANGED: stored %s, now %s\n" i
                (violation_line e.Core.Corpus.violation)
                (violation_line v)
          | Core.Corpus.Fixed ->
              incr drift;
              Printf.printf "[%d] FIXED: %s no longer reproduces\n" i
                (violation_line e.Core.Corpus.violation))
        entries;
      let total = List.length entries in
      Printf.printf "%d/%d entries reproduce verbatim\n" (total - !drift)
        total;
      if !drift = 0 then 0 else 1

let corpus_path_arg =
  Arg.(
    value & pos 0 string "corpus"
    & info [] ~docv:"PATH"
        ~doc:"A .jsonl corpus file, or a directory of them.")

let chaos_replay_cmd =
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute every regression-corpus entry from its recorded \
          config and demand the byte-identical violation.  Exits non-zero \
          on drift — a silently fixed entry and a changed failure mode \
          both count.")
    Term.(const replay_path $ corpus_path_arg)

let chaos_shrink_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the re-minimized entries as a fresh corpus file.")
  in
  let run path out =
    match Core.Corpus.load path with
    | Error e ->
        Printf.eprintf "rlin chaos shrink: %s\n" e;
        2
    | Ok entries ->
        let shrunk =
          List.filter_map
            (fun (e : Core.Corpus.entry) ->
              match Core.Monitor.run_config e.Core.Corpus.config with
              | None ->
                  Printf.printf "dropping fixed entry (%s)\n"
                    (violation_line e.Core.Corpus.violation);
                  None
              | Some v ->
                  let o =
                    Core.Shrink.minimize ~violation:v e.Core.Corpus.config
                  in
                  Printf.printf
                    "%s: %d further reduction(s) in %d executions\n"
                    v.Core.Monitor.monitor o.Core.Shrink.steps
                    o.Core.Shrink.attempts;
                  Some
                    {
                      e with
                      Core.Corpus.config = o.Core.Shrink.config;
                      violation = o.Core.Shrink.violation;
                      shrink_attempts =
                        e.Core.Corpus.shrink_attempts + o.Core.Shrink.attempts;
                    })
            entries
        in
        (match out with
        | Some f ->
            Core.Corpus.save f shrunk;
            Printf.printf "wrote %d entries to %s\n" (List.length shrunk) f
        | None -> ());
        0
  in
  Cmd.v
    (Cmd.info "shrink"
       ~doc:
         "Re-run the delta-debugging shrinker over existing corpus entries \
          (useful after widening the shrink lattice); entries that no \
          longer fail are dropped.")
    Term.(const run $ corpus_path_arg $ out)

let chaos_adv_cmd =
  let run mode seed =
    let o = Core.Scenario.Chaos.run ~mode ~n_procs:3 ~ops_per_proc:4 ~seed in
    print_string (Core.Timeline.render o.Core.Scenario.Chaos.history);
    Printf.printf
      "edits attempted %d (refused %d); history linearizable: %b
"
      o.Core.Scenario.Chaos.attempted_edits o.Core.Scenario.Chaos.refused_edits
      (Core.Lincheck.check ~init:(Core.Value.Int 0)
         o.Core.Scenario.Chaos.history);
    0
  in
  Cmd.v
    (Cmd.info "adv"
       ~doc:"Drive a register with the chaos adversary and check the history.")
    Term.(const run $ mode_conv_term $ seed_arg)

let chaos_cmd =
  let replay_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"PATH"
          ~doc:"Shorthand for $(b,rlin chaos replay) $(docv).")
  in
  let default =
    Term.(
      ret
        (const (function
           | Some path -> `Ok (replay_path path)
           | None -> `Help (`Pager, Some "chaos"))
        $ replay_opt))
  in
  Cmd.group ~default
    (Cmd.info "chaos"
       ~doc:
         "Chaos search with online invariant monitors, counterexample \
          shrinking and a replayable regression corpus ($(b,run), \
          $(b,replay), $(b,shrink)); $(b,adv) drives the adversarial \
          register from the earlier scenarios.")
    [ chaos_run_cmd; chaos_replay_cmd; chaos_shrink_cmd; chaos_adv_cmd ]

(* ----- trace ------------------------------------------------------------------ *)

let trace_source_conv =
  Arg.enum
    [
      ("fig3", `Fig3);
      ("alg2", `Alg2);
      ("alg4", `Alg4);
      ("game", `Game);
      ("abd", `Abd);
      ("mwabd", `Mwabd);
    ]

(* Streaming write with per-record verification: each line is re-parsed
   and structurally compared as it is written, so --out and --follow never
   buffer the whole stream just to audit it afterwards (the old scheme
   re-read the finished file, which an unbounded --follow can't do). *)
let write_jsonl_verified path lines =
  let go oc =
    let rec loop n = function
      | [] -> Ok n
      | v :: rest -> (
          match Obs.Export.write_line_verified oc v with
          | Ok () -> loop (n + 1) rest
          | Error e -> Error e)
    in
    loop 0 lines
  in
  if path = "-" then go stdout
  else
    match open_out path with
    | oc -> Fun.protect ~finally:(fun () -> close_out oc) (fun () -> go oc)
    | exception Sys_error msg -> Error msg

(* --validate FILE: a Perfetto document (one JSON object with a
   "traceEvents" member) or a JSONL stream of canonical trace events. *)
let validate_trace_file file =
  match Obs.Export.parse_file file with
  | Error e ->
      Printf.eprintf "rlin trace --validate: %s\n" e;
      2
  | Ok [ doc ] when Obs.Json.member "traceEvents" doc <> None -> (
      match Core.Tracer.validate_perfetto doc with
      | Ok n ->
          Printf.printf "%s: valid Perfetto trace (%d trace events)\n" file n;
          0
      | Error e ->
          Printf.eprintf "%s: INVALID Perfetto trace: %s\n" file e;
          1)
  | Ok records ->
      let rec go i = function
        | [] ->
            Printf.printf "%s: %d valid trace event records\n" file i;
            0
        | v :: rest -> (
            match Core.Tracer.validate_event_json v with
            | Ok () -> go (i + 1) rest
            | Error e ->
                Printf.eprintf "%s: record %d: %s\n" file (i + 1) e;
                1)
      in
      go 0 records

(* --validate FILE --follow: tail a JSONL stream another process is still
   writing.  Chunks go through the partial-line-tolerant reader, so a
   final line caught mid-write is buffered and retried as the writer
   finishes it; only after [idle_ms] without growth is a leftover
   fragment declared truncated — and even then it is a warning, not a
   failure (the writer was killed mid-line; the complete records before
   it are intact). *)
let validate_trace_follow file ~idle_ms =
  match open_in_bin file with
  | exception Sys_error e ->
      Printf.eprintf "rlin trace --validate: %s\n" e;
      2
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let reader = Core.Serve.Ingest.Reader.create () in
          let buf = Bytes.create 65536 in
          let count = ref 0 in
          let bad = ref None in
          let check_line line =
            if !bad = None && String.trim line <> "" then
              match
                Result.bind (Obs.Json.of_string line)
                  Core.Tracer.validate_event_json
              with
              | Ok () -> incr count
              | Error e ->
                  bad := Some (Printf.sprintf "record %d: %s" (!count + 1) e)
          in
          let rec loop idle =
            if !bad = None then begin
              let n = input ic buf 0 (Bytes.length buf) in
              if n > 0 then begin
                List.iter check_line
                  (Core.Serve.Ingest.Reader.feed reader
                     (Bytes.sub_string buf 0 n));
                loop 0.
              end
              else if idle < float_of_int idle_ms then begin
                Unix.sleepf 0.02;
                loop (idle +. 20.)
              end
            end
          in
          loop 0.;
          match !bad with
          | Some e ->
              Printf.eprintf "%s: %s\n" file e;
              1
          | None ->
              (match Core.Serve.Ingest.Reader.take_rest reader with
              | Some frag when String.trim frag <> "" -> (
                  match
                    Result.bind (Obs.Json.of_string frag)
                      Core.Tracer.validate_event_json
                  with
                  | Ok () -> incr count
                  | Error _ ->
                      Printf.eprintf
                        "%s: final line truncated mid-write, ignored\n" file)
              | _ -> ());
              Printf.printf "%s: %d valid trace event records (followed)\n"
                file !count;
              0)

let trace_cmd =
  let source =
    Arg.(
      value
      & opt trace_source_conv `Fig3
      & info [ "source" ] ~docv:"SOURCE"
          ~doc:
            "Which run to trace: $(b,fig3) (the paper's Figure 3), \
             $(b,alg2)/$(b,alg4) (a random MWMR workload), $(b,game) (a \
             Theorem-7 game to termination), $(b,abd)/$(b,mwabd) (a \
             message-passing workload).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the operation trace as JSONL here ('-' for stdout); \
             every record is verified (rendered, re-parsed and compared) \
             as it streams.")
  in
  let perfetto =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:
            "Export the flight recorder as Chrome trace_event JSON — open \
             it at https://ui.perfetto.dev.  One track per node/fiber, \
             flow arrows along message causality, counter tracks from \
             checker progress probes.  Flight-recorded sources \
             ($(b,abd)/$(b,mwabd)) only.")
  in
  let events_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:
            "Write the flight recorder's canonical events as JSONL \
             ('-' for stdout).  Flight-recorded sources only.")
  in
  let dot_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:
            "Write a Graphviz DOT causal graph of one event's ancestry \
             (see $(b,--op)).  Flight-recorded sources only.")
  in
  let op_seq =
    Arg.(
      value
      & opt (some int) None
      & info [ "op" ] ~docv:"SEQ"
          ~doc:
            "Event sequence number whose causal cone $(b,--dot) renders \
             (default: the last register $(i,respond) event — a complete \
             operation's full ancestry).")
  in
  let follow =
    Arg.(
      value & flag
      & info [ "follow" ]
          ~doc:
            "Stream flight-recorder events to stdout as JSONL while the \
             run executes (each line verified as written; nothing is \
             buffered).  Flight-recorded sources only.  With \
             $(b,--validate), tail the file instead: keep validating as \
             the writer appends, tolerating a partial (mid-write) final \
             line, and stop after $(b,--idle-ms) without growth.")
  in
  let validate_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "validate" ] ~docv:"FILE"
          ~doc:
            "Validate an existing trace artifact — a Perfetto document or \
             an event JSONL stream — against the schema, then exit \
             (ignores every other flag except $(b,--follow)).")
  in
  let idle_ms =
    Arg.(
      value & opt int 1000
      & info [ "idle-ms" ] ~docv:"MS"
          ~doc:
            "With --validate --follow: stop once the file has not grown \
             for this long.")
  in
  let flight =
    Arg.(
      value & opt int 65536
      & info [ "flight" ] ~docv:"K"
          ~doc:"Flight-recorder ring capacity (retains the last K events).")
  in
  let run source out perfetto events_out dot_out op_seq follow validate_file
      flight idle_ms seed =
    match validate_file with
    | Some file ->
        if follow then validate_trace_follow file ~idle_ms
        else validate_trace_file file
    | None -> (
        let wants_recorder =
          perfetto <> None || events_out <> None || dot_out <> None || follow
        in
        let recorded_source =
          match source with `Abd | `Mwabd -> true | _ -> false
        in
        if wants_recorder && not recorded_source then begin
          Printf.eprintf
            "rlin trace: --perfetto/--events/--dot/--follow need a \
             flight-recorded source (--source abd or mwabd)\n";
          2
        end
        else begin
          let tracer =
            if wants_recorder then Core.Tracer.create ~capacity:flight ()
            else Core.Tracer.null
          in
          if follow then
            Core.Tracer.set_sink tracer
              (Some
                 (fun ev ->
                   (match
                      Obs.Export.write_line_verified stdout
                        (Core.Tracer.event_json ev)
                    with
                   | Ok () -> ()
                   | Error e ->
                       Printf.eprintf "rlin trace --follow: %s\n" e);
                   flush stdout));
          let trace =
            match source with
            | `Fig3 -> (Core.Scenario.fig3 ()).Core.Scenario.trace
            | `Alg2 ->
                (Core.Scenario.random_alg2_run ~n:3 ~writes_per_proc:2
                   ~reads_per_proc:2 ~seed ())
                  .Core.Scenario.trace
            | `Alg4 ->
                (Core.Scenario.random_alg4_run ~n:3 ~writes_per_proc:2
                   ~reads_per_proc:2 ~seed ())
                  .Core.Scenario.trace
            | `Game ->
                let res =
                  Core.Adversary.run_write_strong ~n:5 ~max_rounds:40 ~seed ()
                in
                Core.Sched.trace
                  res.Core.Game_alg1.handles.Core.Game_alg1.sched
            | `Abd ->
                (Core.Abd_runs.execute ~tracer
                   { Core.Abd_runs.default with seed })
                  .Core.Abd_runs.trace
            | `Mwabd ->
                (Core.Abd_runs.execute_mw ~tracer ~n:3 ~writers:[ 0; 1 ]
                   ~writes_each:2 ~readers:[ 2 ] ~reads_each:3 ~seed ())
                  .Core.Abd_runs.trace
          in
          Core.Tracer.set_sink tracer None;
          let recorded = Core.Tracer.events tracer in
          let rc = ref 0 in
          let fail fmt =
            Printf.ksprintf
              (fun m ->
                Printf.eprintf "rlin trace: %s\n" m;
                rc := 1)
              fmt
          in
          (match out with
          | None -> ()
          | Some path -> (
              let lines = Core.Trace.json_entries trace in
              match write_jsonl_verified path lines with
              | Ok n ->
                  if path <> "-" then
                    Printf.printf
                      "wrote %d trace entries to %s (each record verified \
                       as written)\n"
                      n path
              | Error e -> fail "--out %s: %s" path e));
          (match events_out with
          | None -> ()
          | Some path -> (
              let lines =
                List.map (fun ev -> Core.Tracer.event_json ev) recorded
              in
              match write_jsonl_verified path lines with
              | Ok n ->
                  if path <> "-" then
                    Printf.printf "wrote %d flight-recorder events to %s\n" n
                      path
              | Error e -> fail "--events %s: %s" path e));
          (match perfetto with
          | None -> ()
          | Some path -> (
              let doc = Core.Tracer.perfetto_json recorded in
              match Core.Tracer.validate_perfetto doc with
              | Error e -> fail "--perfetto: generated trace is invalid: %s" e
              | Ok n -> (
                  try
                    let oc = open_out path in
                    Fun.protect
                      ~finally:(fun () -> close_out oc)
                      (fun () -> output_string oc (Core.Json.to_string doc));
                    Printf.printf
                      "wrote Perfetto trace (%d trace events) to %s — open \
                       at https://ui.perfetto.dev\n"
                      n path
                  with Sys_error e -> fail "--perfetto %s: %s" path e)));
          (match dot_out with
          | None -> ()
          | Some path -> (
              let target =
                match op_seq with
                | Some s -> Some s
                | None ->
                    (* default: the last completed register operation *)
                    List.fold_left
                      (fun acc (ev : Core.Tracer.event) ->
                        if ev.Core.Tracer.cat = "reg"
                           && ev.Core.Tracer.name = "respond"
                        then Some ev.Core.Tracer.seq
                        else acc)
                      None recorded
              in
              match target with
              | None -> fail "--dot: no register respond event recorded"
              | Some seq -> (
                  try
                    let oc = open_out path in
                    Fun.protect
                      ~finally:(fun () -> close_out oc)
                      (fun () ->
                        output_string oc
                          (Core.Tracer.dot_of_ancestry recorded ~seq));
                    Printf.printf "wrote causal ancestry of event %d to %s\n"
                      seq path
                  with Sys_error e -> fail "--dot %s: %s" path e)));
          if (not wants_recorder) && out = None then
            Printf.printf
              "nothing to write: pass --out, --events, --perfetto, --dot \
               or --follow\n";
          !rc
        end)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a workload and dump its traces: the operation trace \
          (history events, linearization points, coin flips) as verified \
          JSONL, and — for the message-passing sources — the causal \
          flight recorder as Perfetto JSON, event JSONL, a live --follow \
          stream, or a DOT ancestry graph.")
    Term.(
      const run $ source $ out $ perfetto $ events_out $ dot_out $ op_seq
      $ follow $ validate_file $ flight $ idle_ms $ seed_arg)

(* ----- serve: crash-tolerant streaming linearizability checker --------------- *)

exception Serve_io of string

let serve_cmd =
  let in_arg =
    Arg.(
      value & opt string "-"
      & info [ "in" ] ~docv:"FILE"
          ~doc:
            "Trace JSONL input: a file, or $(b,-) for stdin (the default).")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket instead of --in: accept one \
             connection, ingest it to EOF, then unlink the socket.")
  in
  let out_arg =
    Arg.(
      value & opt string "-"
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Verdict JSONL output (verified and flushed per record); \
             $(b,-) for stdout (the default).")
  in
  let ckpt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Write a resumable checkpoint (atomically) at every globally \
             quiescent point that emitted new verdicts.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from --checkpoint: truncate --out back to the \
             checkpoint's verdict count (discarding any partial final \
             line a kill left), skip the already-consumed input lines, \
             and re-emit the remaining verdicts byte-identically.")
  in
  let follow_arg =
    Arg.(
      value & flag
      & info [ "follow" ]
          ~doc:
            "Tail --in FILE while a writer appends, stopping after \
             --idle-ms without growth (partial final lines are buffered \
             and retried, never mis-parsed).")
  in
  let idle_arg =
    Arg.(
      value & opt int 1000
      & info [ "idle-ms" ] ~docv:"MS"
          ~doc:"With --follow: stop once the input stops growing for this long.")
  in
  let state_budget_arg =
    Arg.(
      value
      & opt int Core.Increment.default_state_budget
      & info [ "state-budget" ] ~docv:"N"
          ~doc:
            "Per-segment reachable-state budget; exceeding it degrades \
             the segment to an explicit unknown verdict.")
  in
  let seg_cap_arg =
    Arg.(
      value & opt int Core.Lincheck.max_ops
      & info [ "segment-cap" ] ~docv:"N"
          ~doc:
            "Per-segment operation cap (at most the checker's hard cap); \
             exceeding it degrades the segment to an unknown verdict.")
  in
  let max_pending_arg =
    Arg.(
      value & opt int 100_000
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "Events buffered across all open segments before backpressure \
             sheds the overflowing segment to an unknown verdict.")
  in
  let wall_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "wall-budget-ms" ] ~docv:"MS"
          ~doc:
            "Per-segment wall-clock budget.  Off by default: a wall \
             budget makes verdicts timing-dependent, so --resume is no \
             longer guaranteed byte-identical.")
  in
  let values_cap_arg =
    Arg.(
      value & opt int 64
      & info [ "values-cap" ] ~docv:"N"
          ~doc:
            "Max entry-set candidates materialized after a failed or \
             unknown segment.")
  in
  let init_arg =
    Arg.(
      value & opt int 0
      & info [ "init" ] ~docv:"V"
          ~doc:"Initial register value (an integer) for every object.")
  in
  let self_check_arg =
    Arg.(
      value & flag
      & info [ "self-check" ]
          ~doc:
            "Buffer the stream and re-decide it with the offline \
             reference checker afterwards; exit 3 on any verdict \
             mismatch.  Incompatible with --resume (the reference needs \
             the whole stream).")
  in
  let summary_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary-json" ] ~docv:"FILE"
          ~doc:
            "Write a final serve_summary record (lines, events, \
             quarantined, shed, verdict counts); $(b,-) for stdout.")
  in
  let run in_file socket out ckpt_path resume follow idle_ms state_budget
      seg_cap max_pending wall values_cap init self_check summary =
    let fail2 msg =
      Printf.eprintf "rlin serve: %s\n" msg;
      2
    in
    if self_check && resume then fail2 "--self-check cannot be combined with --resume"
    else if resume && ckpt_path = None then fail2 "--resume needs --checkpoint FILE"
    else if socket <> None && follow then fail2 "--follow applies to --in FILE, not --socket"
    else if seg_cap < 1 || seg_cap > Core.Lincheck.max_ops then
      fail2
        (Printf.sprintf "--segment-cap %d outside 1..%d" seg_cap
           Core.Lincheck.max_ops)
    else if values_cap < 1 then fail2 "--values-cap must be at least 1"
    else if max_pending < 1 then fail2 "--max-pending must be at least 1"
    else begin
      let config =
        {
          Core.Serve.Engine.init = Core.Value.Int init;
          seg =
            {
              Core.Serve.Segmenter.seg_cap;
              state_budget;
              wall_budget_ms = wall;
              values_cap;
            };
          max_pending;
        }
      in
      (* --resume reconciliation: load the checkpoint, rewind the verdict
         log to exactly the records it accounts for. *)
      let restored =
        if not resume then Ok None
        else
          match Core.Serve.Checkpoint.load (Option.get ckpt_path) with
          | Error e -> Error (Printf.sprintf "cannot load checkpoint: %s" e)
          | Ok ck ->
              let keep = Core.Serve.Checkpoint.verdicts ck in
              if out = "-" then Ok (Some ck)
              else if Sys.file_exists out then (
                match Core.Serve.Checkpoint.truncate_jsonl ~path:out ~keep with
                | Ok () -> Ok (Some ck)
                | Error e -> Error e)
              else if keep = 0 then Ok (Some ck)
              else
                Error
                  (Printf.sprintf
                     "verdict log %s is missing but the checkpoint expects %d \
                      verdicts"
                     out keep)
      in
      match restored with
      | Error e -> fail2 e
      | Ok restored -> (
          let out_oc =
            if out = "-" then Ok stdout
            else
              match
                if resume then
                  open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 out
                else open_out out
              with
              | oc -> Ok oc
              | exception Sys_error e -> Error e
          in
          match out_oc with
          | Error e -> fail2 e
          | Ok out_oc ->
              let close_out_oc () = if out <> "-" then close_out out_oc in
              let engine_verdicts = ref [] in
              let emit v =
                (match
                   Obs.Export.write_line_verified out_oc
                     (Core.Serve.Verdict.json v)
                 with
                | Ok () -> flush out_oc
                | Error e -> raise (Serve_io e));
                if self_check then engine_verdicts := v :: !engine_verdicts
              in
              let on_quarantine ~line msg =
                Printf.eprintf "rlin serve: quarantined line %d: %s\n%!" line
                  msg
              in
              let engine =
                match restored with
                | Some ck ->
                    Core.Serve.Engine.restore ~config ~emit ~on_quarantine ck
                | None ->
                    Core.Serve.Engine.create ~config ~emit ~on_quarantine ()
              in
              let skip =
                ref
                  (match restored with
                  | Some ck -> ck.Core.Serve.Checkpoint.cursor
                  | None -> 0)
              in
              let last_saved =
                ref (match restored with Some ck -> Core.Serve.Checkpoint.verdicts ck | None -> -1)
              in
              let maybe_checkpoint () =
                match ckpt_path with
                | None -> ()
                | Some path ->
                    if Core.Serve.Engine.verdicts engine > !last_saved then (
                      match Core.Serve.Engine.checkpoint engine with
                      | Some ck ->
                          flush out_oc;
                          Core.Serve.Checkpoint.save path ck;
                          last_saved := Core.Serve.Engine.verdicts engine
                      | None -> ())
              in
              let collected = ref [] in
              let feed_line l =
                if !skip > 0 then decr skip
                else begin
                  if self_check then collected := l :: !collected;
                  Core.Serve.Engine.feed_line engine l;
                  maybe_checkpoint ()
                end
              in
              let reader = Core.Serve.Ingest.Reader.create () in
              let feed_chunk chunk =
                List.iter feed_line (Core.Serve.Ingest.Reader.feed reader chunk)
              in
              let buf = Bytes.create 65536 in
              let ingest_channel ic ~tail =
                let rec loop idle =
                  let n = input ic buf 0 (Bytes.length buf) in
                  if n > 0 then begin
                    feed_chunk (Bytes.sub_string buf 0 n);
                    loop 0.
                  end
                  else if tail && idle < float_of_int idle_ms then begin
                    Unix.sleepf 0.02;
                    loop (idle +. 20.)
                  end
                in
                loop 0.
              in
              let ingest () =
                match socket with
                | Some path ->
                    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
                    Fun.protect
                      ~finally:(fun () ->
                        Unix.close sock;
                        if Sys.file_exists path then Unix.unlink path)
                      (fun () ->
                        if Sys.file_exists path then Unix.unlink path;
                        Unix.bind sock (Unix.ADDR_UNIX path);
                        Unix.listen sock 1;
                        let fd, _ = Unix.accept sock in
                        Fun.protect
                          ~finally:(fun () -> Unix.close fd)
                          (fun () ->
                            let rec loop () =
                              let n = Unix.read fd buf 0 (Bytes.length buf) in
                              if n > 0 then begin
                                feed_chunk (Bytes.sub_string buf 0 n);
                                loop ()
                              end
                            in
                            loop ()))
                | None ->
                    if in_file = "-" then ingest_channel stdin ~tail:false
                    else (
                      match open_in_bin in_file with
                      | ic ->
                          Fun.protect
                            ~finally:(fun () -> close_in ic)
                            (fun () -> ingest_channel ic ~tail:follow)
                      | exception Sys_error e -> raise (Serve_io e))
              in
              match
                (try
                   ingest ();
                   (match Core.Serve.Ingest.Reader.take_rest reader with
                   | Some frag -> feed_line frag
                   | None -> ());
                   (* Only checkpoint a clean ending.  If the stream was
                      cut mid-segment, [finish] emits flush verdicts for
                      state a resumed run (seeing the segment whole) must
                      re-derive — checkpointing after the flush would
                      bake that partial view in.  Leaving the checkpoint
                      at the last true quiescent point is what makes
                      kill-then-resume byte-identical. *)
                   let clean_end = Core.Serve.Engine.quiescent engine in
                   Core.Serve.Engine.finish engine;
                   if clean_end then maybe_checkpoint ();
                   Ok ()
                 with
                | Serve_io e -> Error e
                | Unix.Unix_error (err, fn, _) ->
                    Error (Printf.sprintf "%s: %s" fn (Unix.error_message err)))
              with
              | Error e ->
                  close_out_oc ();
                  fail2 e
              | Ok () ->
                  (match summary with
                  | None -> ()
                  | Some path ->
                      let record = Core.Serve.Engine.summary_json engine in
                      if path = "-" then (
                        Obs.Export.write_line stdout record;
                        flush stdout)
                      else Obs.Export.to_file path [ record ]);
                  let self_check_rc =
                    if not self_check then 0
                    else begin
                      let r =
                        Core.Serve.Reference.run ~config
                          (List.rev !collected)
                      in
                      let cmp =
                        Core.Serve.Reference.compare_verdicts
                          ~engine:(List.rev !engine_verdicts)
                          ~reference:r.Core.Serve.Reference.verdicts
                      in
                      if Core.Serve.Reference.agreed cmp then begin
                        Printf.eprintf
                          "rlin serve: self-check ok (%d verdicts matched, %d \
                           skipped)\n"
                          cmp.Core.Serve.Reference.matched
                          cmp.Core.Serve.Reference.skipped;
                        0
                      end
                      else begin
                        List.iter
                          (fun (ev, rv) ->
                            let s = function
                              | Some v ->
                                  Obs.Json.to_string (Core.Serve.Verdict.json v)
                              | None -> "(missing)"
                            in
                            Printf.eprintf
                              "rlin serve: self-check MISMATCH\n  engine:    \
                               %s\n  reference: %s\n"
                              (s ev) (s rv))
                          cmp.Core.Serve.Reference.mismatches;
                        3
                      end
                    end
                  in
                  close_out_oc ();
                  if self_check_rc <> 0 then self_check_rc
                  else if Core.Serve.Engine.fail engine > 0 then 1
                  else 0)
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running streaming linearizability checker: ingest a trace \
          JSONL stream (file, stdin, or Unix socket), segment each \
          object's history at quiescent points, decide segments \
          incrementally with bounded memory, and emit per-segment verdict \
          records.  Corrupt or impossible lines are quarantined (counted, \
          reported, skipped — never fatal); over-budget segments degrade \
          to explicit unknown verdicts; --checkpoint/--resume survive \
          kills with byte-identical output.  Exits 1 if any segment \
          failed, 2 on I/O or config errors, 3 on a --self-check \
          mismatch.")
    Term.(
      const run $ in_arg $ socket_arg $ out_arg $ ckpt_arg $ resume_arg
      $ follow_arg $ idle_arg $ state_budget_arg $ seg_cap_arg
      $ max_pending_arg $ wall_arg $ values_cap_arg $ init_arg
      $ self_check_arg $ summary_arg)

(* ----- metrics ----------------------------------------------------------------- *)

let metrics_cmd =
  let source =
    Arg.(
      value
      & opt (Arg.enum [ ("experiments", `Experiments); ("game", `Game); ("abd", `Abd) ]) `Experiments
      & info [ "source" ] ~docv:"SOURCE"
          ~doc:
            "Workload to run before printing the metric registry: \
             $(b,experiments) (the quick battery), $(b,game), $(b,abd).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the snapshot as a JSONL metrics record.")
  in
  let run source json seed =
    Obs.Metrics.reset Obs.Metrics.global;
    let label =
      match source with
      | `Experiments ->
          ignore (Experiments.all ~quick:true ());
          "experiments-quick"
      | `Game ->
          ignore (Core.Adversary.run_write_strong ~n:5 ~max_rounds:40 ~seed ());
          "game-wsl"
      | `Abd ->
          ignore (Core.Abd_runs.execute { Core.Abd_runs.default with seed });
          "abd"
    in
    Format.printf "%a@." Obs.Metrics.pp Obs.Metrics.global;
    Option.iter
      (fun path ->
        write_jsonl path
          [ Obs.Export.metrics_json ~label (Obs.Metrics.snapshot Obs.Metrics.global) ])
      json;
    0
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a workload and print every counter, gauge and histogram the \
          instrumented stack recorded (scheduler, trace, network, checkers).")
    Term.(const run $ source $ json $ seed_arg)

(* ----- main ------------------------------------------------------------------ *)

(* ----- check: seeded history batteries through the (parallel) checker ------- *)

let check_cmd =
  let count =
    Arg.(
      value & opt int 50
      & info [ "count" ] ~docv:"N"
          ~doc:"Number of seeded histories to generate and check.")
  in
  let ops =
    Arg.(
      value & opt int 12
      & info [ "ops" ] ~docv:"K" ~doc:"Operations per generated history.")
  in
  let procs =
    Arg.(
      value & opt int 3
      & info [ "procs" ] ~docv:"P" ~doc:"Processes per generated history.")
  in
  let family =
    Arg.(
      value
      & opt
          (enum
             [ ("mixed", `Mixed); ("atomic", `Atomic); ("arbitrary", `Arbitrary) ])
          `Mixed
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:
            "History family: $(b,atomic) (linearizable by construction), \
             $(b,arbitrary) (may or may not linearize) or $(b,mixed) \
             (alternating).")
  in
  let tree =
    Arg.(
      value & flag
      & info [ "tree" ]
          ~doc:
            "Also run the write strong-linearizability tree check over \
             each history's prefix chain.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write a JSONL report ('-' for stdout): one check_run header \
             (which carries the jobs count and the effective op cap), then \
             one record per history.  Per-history records are identical at \
             every -j; only the header differs.")
  in
  let run count ops procs family tree seed jobs json =
    let cap = Core.Lincheck.effective_cap ~jobs in
    let rand =
      Random.State.make [| Int64.to_int seed land 0x3FFFFFFF; 0xC0FFEE |]
    in
    let spec =
      { Core.Histgen.default_spec with n_ops = ops; n_procs = procs }
    in
    let init = spec.Core.Histgen.init in
    let n_ok = ref 0 and n_fail = ref 0 and n_large = ref 0 in
    let tree_ok = ref 0 and tree_fail = ref 0 in
    let rows = ref [] in
    let emit row = rows := row :: !rows in
    for i = 0 to count - 1 do
      let hist =
        match family with
        | `Atomic -> Core.Histgen.atomic_history spec rand
        | `Arbitrary -> Core.Histgen.arbitrary_history spec rand
        | `Mixed ->
            if i mod 2 = 0 then Core.Histgen.atomic_history spec rand
            else Core.Histgen.arbitrary_history spec rand
      in
      let verdict, witness =
        match Core.Lincheck.prep ~cap ~init hist with
        | p -> (
            match Core.Lincheck.decide_prepped ~jobs p with
            | Some w ->
                incr n_ok;
                ( "ok",
                  Core.Json.List
                    (List.map
                       (fun (o : Core.Op.t) -> Core.Json.Int o.id)
                       w) )
            | None ->
                incr n_fail;
                ("fail", Core.Json.Null))
        | exception Core.Lincheck.Too_large { n; cap } ->
            incr n_large;
            ( "too_large",
              Core.Json.Obj
                [ ("n", Core.Json.Int n); ("cap", Core.Json.Int cap) ] )
      in
      emit
        (Core.Json.Obj
           [
             ("kind", Core.Json.Str "check");
             ("index", Core.Json.Int i);
             ("len", Core.Json.Int (Core.Hist.length hist));
             ("verdict", Core.Json.Str verdict);
             ("witness", witness);
           ]);
      if tree then begin
        let tverdict, torders =
          match
            Core.Treecheck.write_strong_witness ~jobs ~init
              (Core.Treecheck.of_prefixes hist)
          with
          | Some assign ->
              incr tree_ok;
              ( "ok",
                Core.Json.List
                  (List.map
                     (fun (_, order) ->
                       Core.Json.List
                         (List.map (fun id -> Core.Json.Int id) order))
                     assign) )
          | None ->
              incr tree_fail;
              ("fail", Core.Json.Null)
          | exception Core.Lincheck.Too_large { n; cap } ->
              ( "too_large",
                Core.Json.Obj
                  [ ("n", Core.Json.Int n); ("cap", Core.Json.Int cap) ] )
        in
        emit
          (Core.Json.Obj
             [
               ("kind", Core.Json.Str "check_tree");
               ("index", Core.Json.Int i);
               ("verdict", Core.Json.Str tverdict);
               ("orders", torders);
             ])
      end
    done;
    Printf.printf
      "check: %d histories (seed %Ld, jobs %d, cap %d): %d linearizable, %d \
       not, %d too large\n"
      count seed jobs cap !n_ok !n_fail !n_large;
    if tree then
      Printf.printf "check: prefix trees: %d write-strong, %d not\n" !tree_ok
        !tree_fail;
    Option.iter
      (fun path ->
        let header =
          Core.Json.Obj
            [
              ("kind", Core.Json.Str "check_run");
              ("count", Core.Json.Int count);
              ("ops", Core.Json.Int ops);
              ("procs", Core.Json.Int procs);
              ("seed", Core.Json.Str (Int64.to_string seed));
              ("jobs", Core.Json.Int jobs);
              ("effective_cap", Core.Json.Int cap);
            ]
        in
        write_jsonl path (header :: List.rev !rows))
      json;
    0
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Generate seeded histories and decide their linearizability \
          (optionally plus the prefix-tree write strong-linearizability \
          check) on up to JOBS domains via the work-stealing parallel \
          checker.  Verdicts and witnesses are identical at every -j; the \
          Too_large op cap is raised with the domain budget \
          (Lincheck.effective_cap) and surfaced in the report header.")
    Term.(
      const run $ count $ ops $ procs $ family $ tree $ seed_arg $ jobs_arg
      $ json)

(* ----- fleet ----------------------------------------------------------------- *)

let fleet_cmd =
  let shards =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"N"
          ~doc:"Register shards (independent ABD/MW-ABD groups).")
  in
  let n =
    Arg.(
      value & opt int 3
      & info [ "n" ] ~docv:"K" ~doc:"Replica nodes per shard.")
  in
  let proto =
    Arg.(
      value
      & opt (enum [ ("abd", Core.Fleet.Sw); ("mwabd", Core.Fleet.Mw) ])
          Core.Fleet.Sw
      & info [ "proto" ] ~docv:"PROTO"
          ~doc:"Shard register: $(b,abd) (one writer) or $(b,mwabd).")
  in
  let slots =
    Arg.(
      value & opt int 4
      & info [ "slots" ] ~docv:"S"
          ~doc:
            "Client fiber slots per shard — the fixed pool the \
             generational sessions recycle through.")
  in
  let ops =
    Arg.(
      value & opt int 100_000
      & info [ "ops" ] ~docv:"M"
          ~doc:"Total client operations across the fleet.")
  in
  let clients =
    Arg.(
      value
      & opt (some int) None
      & info [ "clients" ] ~docv:"C"
          ~doc:
            "Simulated client sessions to drive through the slots \
             (sets the session length to ~OPS/$(docv); \
             $(b,--clients 1000000 --ops 1000000) is the \
             one-op-per-client churn extreme).  Overrides \
             $(b,--session-len).")
  in
  let session_len =
    Arg.(
      value & opt int 4
      & info [ "session-len" ] ~docv:"L"
          ~doc:"Operations per client session before its slot recycles.")
  in
  let mix =
    Arg.(
      value & opt float 0.2
      & info [ "mix" ] ~docv:"P"
          ~doc:"Write fraction of the op mix, in [0,1].")
  in
  let keys =
    Arg.(
      value & opt int 64
      & info [ "keys" ] ~docv:"K"
          ~doc:"Key-space size (key -> shard by hash).")
  in
  let persist =
    Arg.(
      value
      & opt (enum [ ("every", `Every); ("never", `Never) ]) `Every
      & info [ "persist" ] ~docv:"POLICY"
          ~doc:"Replica sync-point policy (see $(b,rlin chaos)).")
  in
  let batch_window =
    Arg.(
      value & opt int 0
      & info [ "batch-window" ] ~docv:"W"
          ~doc:
            "Per-destination delivery batching: coalesce same-destination \
             messages found among the oldest $(docv) in-flight positions \
             into one delivery attempt (0 disables).")
  in
  let batch_max =
    Arg.(
      value & opt int 1
      & info [ "batch-max" ] ~docv:"B"
          ~doc:"Max messages moved per delivery attempt (1 disables).")
  in
  let sample =
    Arg.(
      value & opt int 1
      & info [ "sample" ] ~docv:"S"
          ~doc:
            "Stream-check the histories of the first $(docv) shards with \
             the incremental linearizability checker (the rest drop their \
             drained traces — memory stays flat either way).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the fleet report as one JSONL record ('-' for stdout); \
             carries no wall-clock, so reports diff clean across -j.")
  in
  let run shards n proto slots ops clients session_len mix keys faults
      crash_items recoveries persist batch_window batch_max sample seed jobs
      json =
    let legacy, crash_at = split_crash_items crash_items in
    if legacy <> [] then begin
      Printf.eprintf "rlin: fleet --crash takes NODE@STEP entries\n";
      exit 2
    end;
    let session_len =
      match clients with
      | None -> session_len
      | Some c when c >= 1 -> max 1 ((ops + c - 1) / c)
      | Some _ ->
          Printf.eprintf "rlin: --clients must be >= 1\n";
          exit 2
    in
    let plan =
      {
        (Option.value faults ~default:Core.Faults.none) with
        Core.Faults.crash_at;
        recover_at = recoveries;
      }
    in
    let config =
      {
        Core.Fleet.shards;
        n;
        proto;
        slots;
        ops;
        session_len;
        write_ratio = mix;
        keys;
        faults = plan;
        persist;
        batch_window;
        batch_max;
        seed;
        sample;
        drain_every = Core.Fleet.default.Core.Fleet.drain_every;
      }
    in
    (match Core.Fleet.validate config with
    | () -> ()
    | exception Invalid_argument msg ->
        Printf.eprintf "rlin: %s\n" msg;
        exit 2);
    let t0 = Obs.Span.now_ms () in
    let report = Core.Fleet.run ~jobs config in
    let wall_ms = Obs.Span.now_ms () -. t0 in
    Format.printf "%a@." Core.Fleet.pp report;
    (* wall clock to stdout only: the report itself stays -j-diffable *)
    Printf.printf "ops/sec: %.0f (%.0f ms wall, -j %d)\n"
      (float_of_int report.Core.Fleet.total_ops /. (wall_ms /. 1000.))
      wall_ms jobs;
    Option.iter
      (fun path -> write_jsonl path [ Core.Fleet.report_json report ])
      json;
    if report.Core.Fleet.completed && report.Core.Fleet.total_fails = 0 then 0
    else 1
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run the fleet-scale workload engine: a key-space of register \
          shards (key -> shard by hash, each an independent ABD/MW-ABD \
          group), millions of short-lived client sessions recycled \
          through fixed fiber slots, optional per-destination message \
          batching, and per-shard history sampling through the streaming \
          linearizability checker.  Exits non-zero if any shard stalled \
          or a sampled segment failed the check.")
    Term.(
      const run $ shards $ n $ proto $ slots $ ops $ clients $ session_len
      $ mix $ keys $ faults_term
      $ crash_arg
          ~doc:
            "Comma-separated NODE@STEP crash schedule applied to every \
             shard's node set (crashed nodes must leave a majority; for \
             $(b,abd) node 0 is the writer client and must survive)."
      $ recover_arg ~what:"fleet" $ persist $ batch_window $ batch_max
      $ sample $ seed_arg $ jobs_arg $ json)

let () =
  let doc =
    "Reproduction of 'On Register Linearizability and Termination' (PODC 2021)."
  in
  let info = Cmd.info "rlin" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            experiments_cmd;
            game_cmd;
            fig3_cmd;
            fig4_cmd;
            abd_cmd;
            mwabd_cmd;
            check_cmd;
            chaos_cmd;
            fleet_cmd;
            consensus_cmd;
            trace_cmd;
            serve_cmd;
            metrics_cmd;
          ]))
