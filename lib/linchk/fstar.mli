(** Theorem 14 of the paper: every linearizable implementation of a SWMR
    register is write strongly-linearizable.

    The proof takes an arbitrary linearization function [f] and derives
    [f*] by removing, from each [f(H)], a trailing incomplete write.  The
    write operations of a SWMR history are totally ordered by their start
    times (Observation 66 — there is a single writer and it is
    sequential), so the write sequence of any linearization is forced; the
    only freedom [f] has about writes is whether the at-most-one pending
    write (Observation 65) is included, and dropping it when nothing
    depends on it makes the write sequence grow monotonically with the
    history.

    This module implements [f*] constructively for SWMR register
    histories:
    - {!linearize} computes a canonical linearization (writes in writer
      order; each completed read after the write whose value it returned,
      reads of equal value ordered by invocation; a pending write included
      only if some completed read returned its value);
    - {!wsl_function} applies it to every event-prefix of a history and
      checks that the resulting write orders form a ⊑-chain — i.e. that
      the function is a write strong-linearization function on that
      execution (it is, whenever the input history is linearizable). *)

val linearize :
  ?metrics:Obs.Metrics.t ->
  init:History.Value.t ->
  History.Hist.t ->
  History.Op.t list option
(** [f*(H)] for a single-object SWMR history, or [None] if [H] is not
    linearizable (e.g. not actually single-writer, or a read returns a
    stale value).  The result, when present, satisfies Definition 2. *)

val wsl_function :
  ?metrics:Obs.Metrics.t ->
  init:History.Value.t ->
  History.Hist.t ->
  (int list list, string) result
(** Apply [f*] to every event-prefix; on success return the write order of
    each prefix (each a prefix of the next — property (P)).  [Error]
    explains which prefix failed to linearize or broke monotonicity.
    [metrics] (default {!Obs.Metrics.global}) receives
    [fstar.linearizations] / [fstar.prefixes]. *)
