(** Decision procedure for linearizability of register histories
    (Definition 2 of the paper).

    The checker performs a memoized depth-first search over the states
    (set of linearized operations, current register value): at each step it
    may linearize any operation all of whose real-time predecessors are
    already linearized, provided a completed read returns the current
    value.  Complete operations must eventually be linearized; pending
    operations may be linearized (writes take effect, reads are dropped —
    including a pending read never enables an otherwise-impossible
    linearization, so dropping them is complete for decision purposes).

    This is exact and terminating for finite histories; the search is
    exponential in the number of concurrent operations in the worst case
    but fast for the history sizes the experiments produce (the memo key
    is the pair (done-set, last-written value), which collapses most of
    the permutation space).

    Histories with more than {!max_ops} (62) operations on one object are
    rejected ({!Too_large}) — the done-set of the DFS state is a bitmask
    in one OCaml machine int (63 usable bits, one kept in reserve so
    [1 lsl n] stays positive), and the experiments stay far below this. *)

val max_ops : int
(** The per-object operation cap, 62. *)

exception Too_large of { n : int; cap : int }
(** Raised by every checker entry point when the single-object history
    has [n > cap] operations ([cap] defaults to {!max_ops}; drivers may
    impose a lower one via {!prep}'s [?cap]). *)

val effective_cap : jobs:int -> int
(** The operation cap a driver should impose given [jobs] domains:
    [min max_ops (53 + 9 * (jobs - 1))].  The bitmask encoding pins the
    hard ceiling at {!max_ops}; below it the ceiling is wall-clock, and
    each extra domain buys roughly nine more ops.  Library entry points
    do {e not} apply this — their cap stays {!max_ops} at every [jobs],
    so verdicts (including [Too_large]) never depend on [-j]; the
    [rlin check] driver applies it and reports the cap it used. *)

val check :
  ?metrics:Obs.Metrics.t ->
  ?tracer:Obs.Tracer.t ->
  ?jobs:int ->
  init:History.Value.t ->
  History.Hist.t ->
  bool
(** [check ~init h]: is the single-object history [h] linearizable with
    initial register value [init]?  [metrics] (default
    {!Obs.Metrics.global}) receives the checker's counters
    ([linchk.states], [linchk.memo_prunes], [linchk.backtracks]) — every
    entry point below takes the same optional registry, so parallel
    drivers can isolate each run's numbers (see [Simkit.Pool]).

    With an armed [tracer] (default {!Obs.Tracer.null}), the DFS emits a
    [linchk.progress] event (category ["check"]) every 16384 states —
    states explored, memo prunes and size, backtracks, frontier depth —
    which the Perfetto export renders as counter tracks.  Disarmed, the
    probe costs one branch per state.

    [jobs] (default 1) > 1 runs the work-stealing parallel driver: the
    search splits at the top-of-tree frontier into lex-ordered subtree
    tasks sharing a sharded failure memo, and the lowest-index success
    wins (higher-index tasks are cancelled), so the verdict {e and}
    witness are identical to the sequential search at every [jobs] — see
    DESIGN.md §14.  Parallel runs add [linchk.par.tasks] /
    [linchk.par.stolen] / [linchk.par.cancelled] counters and a
    [linchk.par.memo_occupancy] gauge, and with an armed [tracer] emit a
    post-hoc [linchk.par.done] summary event (tasks run inside the
    parallel driver never trace — the recorder is not thread-safe).
    @raise Invalid_argument if [h] spans several objects. *)

val witness :
  ?metrics:Obs.Metrics.t ->
  ?tracer:Obs.Tracer.t ->
  ?jobs:int ->
  init:History.Value.t ->
  History.Hist.t ->
  History.Op.t list option
(** A linearization order, if one exists.  Pending writes that the witness
    chose to linearize appear in place; pending reads never appear.
    Byte-identical at every [jobs] (lowest-index-success rule). *)

val check_multi :
  ?metrics:Obs.Metrics.t ->
  ?jobs:int ->
  init_of:(string -> History.Value.t) ->
  History.Hist.t ->
  bool
(** Check each object's projection independently.  (Linearizability is a
    local property — Herlihy & Wing, Theorem 1 — so a multi-object history
    of registers is linearizable iff each per-object projection is.) *)

val enumerate :
  ?metrics:Obs.Metrics.t ->
  init:History.Value.t ->
  History.Hist.t ->
  limit:int ->
  History.Op.t list list
(** Up to [limit] distinct linearizations (used by the history-tree
    checkers in {!Treecheck}). *)

val enumerate_write_orders :
  ?metrics:Obs.Metrics.t ->
  init:History.Value.t ->
  History.Hist.t ->
  limit:int ->
  History.Op.t list list
(** The distinct {e write subsequences} of linearizations of [h], each
    returned once (used by the write strong-linearizability tree check). *)

val check_with_forced_write_prefix :
  ?metrics:Obs.Metrics.t ->
  init:History.Value.t ->
  History.Hist.t ->
  prefix:int list ->
  bool
(** Is there a linearization whose write subsequence starts with exactly
    the given op ids, in order?  (Used to test extendability of a parent's
    committed write order — property (P) of Definition 4.) *)

val check_with_forced_prefix :
  ?metrics:Obs.Metrics.t ->
  init:History.Value.t ->
  History.Hist.t ->
  prefix:int list ->
  bool
(** Is there a linearization whose full op sequence starts with exactly the
    given op ids?  (Property (P) of Definition 3.) *)

val write_orders_extending :
  ?metrics:Obs.Metrics.t ->
  init:History.Value.t ->
  History.Hist.t ->
  prefix:int list ->
  limit:int ->
  int list list
(** Distinct write-order id sequences of linearizations of [h] extending
    [prefix], up to [limit]. *)

val check_with_forced_subset_prefix :
  ?metrics:Obs.Metrics.t ->
  init:History.Value.t ->
  History.Hist.t ->
  sel:(History.Op.t -> bool) ->
  prefix:int list ->
  bool
(** §7 of the paper generalizes write strong-linearizability to strong
    linearizability {e with respect to a subset O of operations}: only the
    O-subsequence of the linearization must be fixed on-line.  This asks
    whether a linearization exists whose [sel]-subsequence starts with
    exactly the given op ids. *)

val subset_orders_extending :
  ?metrics:Obs.Metrics.t ->
  init:History.Value.t ->
  History.Hist.t ->
  sel:(History.Op.t -> bool) ->
  prefix:int list ->
  limit:int ->
  int list list
(** Distinct [sel]-subsequence id orders of linearizations of [h] extending
    [prefix]. *)

(** {2 Prepped histories}

    Every entry point above starts by preprocessing the history — an
    O(n²) precedence pass plus write-value interning.  Callers that probe
    the {e same} history under many different prefixes (the {!Treecheck}
    tree search) prep once and reuse: *)

type prepped
(** A history preprocessed for the search: ops array, precedence
    bitmasks, completion mask, and the interned write-value table. *)

val prep : ?cap:int -> init:History.Value.t -> History.Hist.t -> prepped
(** @raise Too_large on more than [cap] (default {!max_ops}) operations.
    @raise Invalid_argument on a multi-object history, a completed
    read with no recorded result, or [cap] outside [1..max_ops]. *)

val decide_prepped :
  ?metrics:Obs.Metrics.t ->
  ?tracer:Obs.Tracer.t ->
  ?jobs:int ->
  prepped ->
  History.Op.t list option
(** {!witness} on a prepped history ([jobs] as in {!check}). *)

val enumerate_prepped :
  ?metrics:Obs.Metrics.t -> prepped -> limit:int -> History.Op.t list list
(** {!enumerate} on a prepped history. *)

val orders_extending_prepped :
  ?metrics:Obs.Metrics.t ->
  prepped ->
  sel:(History.Op.t -> bool) ->
  prefix:int list ->
  limit:int ->
  int list list
(** {!subset_orders_extending} on a prepped history: same results, same
    (sorted) candidate order. *)
