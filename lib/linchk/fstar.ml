module V = History.Value
module Op = History.Op
module Hist = History.Hist

(* Candidate write for a read's value: the latest write (in writer order)
   carrying that value that does not contradict real-time order with the
   read.  With the distinct write values used throughout the experiments
   the candidate is unique. *)
let candidate_write writes (r : Op.t) v =
  let n = Array.length writes in
  let ok i =
    let w = writes.(i) in
    V.equal (Op.write_value w) v
    && (not (Op.precedes r w))
    && (* every later write must be allowed after r *)
    (let later_ok = ref true in
     for j = i + 1 to n - 1 do
       if Op.precedes writes.(j) r then later_ok := false
     done;
     !later_ok)
  in
  let rec scan i = if i < 0 then None else if ok i then Some i else scan (i - 1) in
  scan (n - 1)

let linearize ?(metrics = Obs.Metrics.global) ~init h =
  Obs.Metrics.incr_h (Obs.Metrics.counter_h metrics "fstar.linearizations");
  match Hist.objects h with
  | [] -> Some []
  | _ :: _ :: _ -> invalid_arg "Fstar.linearize: multi-object history"
  | [ _obj ] -> (
      let writes_l = Hist.writes h in
      (* SWMR sanity: one writer, sequential *)
      match writes_l with
      | [] ->
          (* only reads; all must return init *)
          let reads = List.filter Op.is_complete (Hist.reads h) in
          if
            List.for_all
              (fun (r : Op.t) ->
                match r.result with Some v -> V.equal v init | None -> false)
              reads
          then
            Some
              (List.sort (fun (a : Op.t) b -> Int.compare a.invoked b.invoked) reads)
          else None
      | w0 :: rest ->
          if List.exists (fun (w : Op.t) -> w.proc <> w0.proc) rest then
            invalid_arg "Fstar.linearize: not single-writer";
          let writes =
            Array.of_list
              (List.sort (fun (a : Op.t) b -> Int.compare a.invoked b.invoked)
                 writes_l)
          in
          let n = Array.length writes in
          (* group completed reads: index -1 = initial value *)
          let groups = Array.make (n + 1) [] in
          let assign_ok = ref true in
          List.iter
            (fun (r : Op.t) ->
              if Op.is_complete r then
                match r.result with
                | None -> assign_ok := false
                | Some v -> (
                    match candidate_write writes r v with
                    | Some i -> groups.(i + 1) <- r :: groups.(i + 1)
                    | None ->
                        if
                          V.equal v init
                          && not (List.exists (fun (w : Op.t) -> Op.precedes w r)
                                    (Array.to_list writes))
                        then groups.(0) <- r :: groups.(0)
                        else assign_ok := false))
            (Hist.reads h);
          if not !assign_ok then None
          else begin
            (* include the pending write only if some read returned its
               value (the f* trimming step of Lemma 67) *)
            let included i =
              Op.is_complete writes.(i) || groups.(i + 1) <> []
            in
            (* a pending write is last in writer order; if it is excluded we
               must not have any included op after it — automatic since it
               is last and its group is empty *)
            let by_start l =
              List.sort (fun (a : Op.t) b -> Int.compare a.invoked b.invoked) l
            in
            let out = ref (by_start groups.(0)) in
            for i = 0 to n - 1 do
              if included i then out := !out @ (writes.(i) :: by_start groups.(i + 1))
            done;
            let s = !out in
            if Hist.Seq.is_linearization_of ~init h s then Some s else None
          end)

let write_ids s = List.filter Op.is_write s |> List.map (fun (o : Op.t) -> o.id)

let rec is_int_prefix p q =
  match (p, q) with
  | [], _ -> true
  | _, [] -> false
  | x :: p', y :: q' -> x = y && is_int_prefix p' q'

let wsl_function ?(metrics = Obs.Metrics.global) ~init h =
  let prefs = Hist.prefixes h in
  Obs.Metrics.incr_h ~by:(List.length prefs)
    (Obs.Metrics.counter_h metrics "fstar.prefixes");
  let rec go acc prev = function
    | [] -> Ok (List.rev acc)
    | g :: rest -> (
        match linearize ~metrics ~init g with
        | None ->
            Error
              (Printf.sprintf "prefix with %d events is not linearizable"
                 (Hist.length g))
        | Some s ->
            let w = write_ids s in
            if is_int_prefix prev w then go (w :: acc) w rest
            else
              Error
                (Printf.sprintf
                   "write order of the %d-event prefix does not extend its \
                    predecessor"
                   (Hist.length g)))
  in
  go [] [] prefs
