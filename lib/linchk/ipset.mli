(** Open-addressed hash set of int pairs.

    The failure-memo set of the {!Lincheck} DFS: a memo probe must not
    allocate, so keys are two machine ints (the packed DFS state — see
    [Lincheck.prep]'s value interning) stored inline in two parallel
    arrays with linear probing and a power-of-two capacity.

    Both components may be any int with [k1 >= 0] ([k1] is offset by one
    internally so 0 can mark an empty slot). *)

type t

type stats = {
  size : int;  (** distinct pairs stored *)
  capacity : int;  (** current slot count (sum over shards if sharded) *)
  occupancy : float;  (** [size /. capacity], in [0, 0.5] by the growth rule *)
  grows : int;  (** table rehashes since [create] (sum over shards) *)
}

val create : ?capacity:int -> unit -> t
(** [capacity] (default 256) is rounded up to a power of two [>= 8]. *)

val mem : t -> k1:int -> k2:int -> bool
(** @raise Invalid_argument if [k1 < 0]. *)

val add : t -> k1:int -> k2:int -> unit
(** Idempotent. @raise Invalid_argument if [k1 < 0]. *)

val length : t -> int
(** Number of distinct pairs added. *)

val capacity : t -> int
val occupancy : t -> float
val stats : t -> stats

(** A sharded variant safe for concurrent use from multiple domains —
    the shared failure memo of the parallel checker driver.

    The pair hash picks a shard; each shard is an open-addressed table
    of immutable boxed [Pair] entries held in per-slot [Atomic.t] cells,
    inserted by CAS, so a reader either sees a whole pair or an empty
    slot — torn reads are impossible and therefore so are false
    positives.  False {e negatives} are possible (an add racing a shard
    rehash may be momentarily invisible) and are sound for a failure
    memo: the worst case is re-exploring a subtree already known to
    fail.  Adds are never lost: an adder that observes its shard's table
    superseded re-inserts into the published table. *)
module Sharded : sig
  type t

  val create : ?shards:int -> ?capacity:int -> unit -> t
  (** [shards] (default 8) is rounded up to a power of two [>= 1];
      [capacity] (default 256) is the initial {e per-shard} slot count,
      rounded up to a power of two [>= 8]. *)

  val mem : t -> k1:int -> k2:int -> bool
  (** Lock-free. @raise Invalid_argument if [k1 < 0]. *)

  val add : t -> k1:int -> k2:int -> unit
  (** Idempotent; lock-free except when a shard rehashes (per-shard
      mutex). @raise Invalid_argument if [k1 < 0]. *)

  val length : t -> int
  (** Approximate under concurrent adds (racing inserts that a rehash
      also copied may be counted once or not at all); exact once all
      adders have quiesced modulo such races, and always [<=] the true
      element count. *)

  val shards : t -> int
  val occupancy : t -> float
  val stats : t -> stats
  val shard_occupancy : t -> float array
  (** Per-shard occupancy, for the memo-shard gauge. *)
end
