(** Open-addressed hash set of int pairs.

    The failure-memo set of the {!Lincheck} DFS: a memo probe must not
    allocate, so keys are two machine ints (the packed DFS state — see
    [Lincheck.prep]'s value interning) stored inline in two parallel
    arrays with linear probing and a power-of-two capacity.

    Both components may be any int with [k1 >= 0] ([k1] is offset by one
    internally so 0 can mark an empty slot). *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 256) is rounded up to a power of two [>= 8]. *)

val mem : t -> k1:int -> k2:int -> bool
(** @raise Invalid_argument if [k1 < 0]. *)

val add : t -> k1:int -> k2:int -> unit
(** Idempotent. @raise Invalid_argument if [k1 < 0]. *)

val length : t -> int
(** Number of distinct pairs added. *)
