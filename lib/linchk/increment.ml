module V = History.Value
module Op = History.Op

(* Incremental single-object linearizability over an event stream.

   [Lincheck.decide] explores the DFS tree of (done-mask, value-id)
   states over a *finished* history.  This module maintains, instead,
   the full *reachable set* R of those states over a growing prefix:
   after each event, R = { (mask, vid) | some linearization of a subset
   of the ops seen so far sets exactly [mask] and leaves the register
   holding value [vid] }, under exactly [decide]'s availability rules
   (op not yet taken, every really-preceding op taken, reads only
   against the value they returned).

   Keeping the whole reachable set — not just a "must linearize
   responded ops now" frontier — is what makes the online verdict agree
   with the offline one.  The cheap frontier is unsound: with
   R(0) concurrent to W(1) where the read responds after the write
   begins, the read must linearize *before* the write even though its
   value is unknown at the write's invocation.  The reachable set keeps
   both worlds alive until the history itself decides.

   At a quiescent point (every invoked op responded) the terminal states
   (mask ⊇ complete-mask) witness linearizability of the whole segment,
   and their vids are exactly the register values the segment can leave
   behind — the entry set of the next segment (see Serve.Segmenter and
   DESIGN.md §15).

   Hot-path discipline matches Lincheck: states are two machine ints in
   an {!Ipset} plus two parallel growth arrays (insertion order = the
   deterministic iteration order), values are interned into dense ids,
   and the metric handles are resolved once at [create]. *)

type reason =
  | Op_cap of { n : int; cap : int }
  | State_budget of { states : int; budget : int }
  | Wall_budget of { budget_ms : float }
  | Shed of { pending : int; max_pending : int }
  | Entry_overflow of { cap : int }

let reason_cause = function
  | Op_cap _ -> "op-cap"
  | State_budget _ -> "state-budget"
  | Wall_budget _ -> "wall-budget"
  | Shed _ -> "shed"
  | Entry_overflow _ -> "entry-overflow"

type outcome = Pass of V.t list | Fail | Unknown of reason

let default_state_budget = 2_000_000

type t = {
  cap : int;
  state_budget : int;
  wall_budget_ms : float option;
  created_ms : float;
  (* ops, as parallel growth arrays indexed by arrival order *)
  mutable n : int;
  mutable pending : int;
  mutable inv_t : int array;
  mutable resp_t : int array; (* max_int while pending *)
  mutable pred : int array; (* bitmask of ops that really precede op i *)
  mutable wvid : int array; (* interned written value, -1 for reads *)
  mutable rvid : int array; (* required read value, -1 if unknown/unmatchable *)
  mutable complete_mask : int;
  ids : (int, int) Hashtbl.t; (* op id -> dense index *)
  (* reads that responded with a value nobody has written (yet): they
     resolve retroactively if a later write interns that value, exactly
     like the offline prep's whole-table rvid lookup *)
  mutable unresolved : (int * V.t) list;
  (* interned register values: entry values first, then writes in
     first-write order *)
  mutable vals : V.t array;
  mutable nvals : int;
  (* the reachable set: membership in [set], iteration order in the
     st_* arrays *)
  mutable set : Ipset.t;
  mutable st_mask : int array;
  mutable st_vid : int array;
  mutable st_n : int;
  mutable degraded : reason option;
  states_c : Obs.Metrics.Counter.t;
  events_c : Obs.Metrics.Counter.t;
}

let n t = t.n
let pending t = t.pending
let states t = t.st_n
let degraded t = t.degraded

(* Degradation frees the frontier immediately — a shed or over-budget
   segment keeps consuming events (op/pending counts still advance so
   quiescence is still detected) but costs O(1) per event from here on. *)
let degrade t reason =
  if Option.is_none t.degraded then begin
    t.degraded <- Some reason;
    t.set <- Ipset.create ~capacity:8 ();
    t.st_mask <- [||];
    t.st_vid <- [||];
    t.st_n <- 0;
    t.unresolved <- []
  end

let check_wall t =
  match t.wall_budget_ms with
  | Some budget_ms
    when Option.is_none t.degraded
         && Obs.Span.now_ms () -. t.created_ms > budget_ms ->
      degrade t (Wall_budget { budget_ms })
  | _ -> ()

let grow a n ~zero =
  let b = Array.make (2 * Array.length a) zero in
  Array.blit a 0 b 0 n;
  b

let ensure_ops t =
  if t.n >= Array.length t.inv_t then begin
    t.inv_t <- grow t.inv_t t.n ~zero:0;
    t.resp_t <- grow t.resp_t t.n ~zero:0;
    t.pred <- grow t.pred t.n ~zero:0;
    t.wvid <- grow t.wvid t.n ~zero:0;
    t.rvid <- grow t.rvid t.n ~zero:0
  end

let ensure_states t =
  if t.st_n >= Array.length t.st_mask then begin
    t.st_mask <- grow t.st_mask t.st_n ~zero:0;
    t.st_vid <- grow t.st_vid t.st_n ~zero:0
  end

let add_state t mask vid =
  if Option.is_none t.degraded && not (Ipset.mem t.set ~k1:mask ~k2:vid) then begin
    if t.st_n >= t.state_budget then
      degrade t
        (State_budget { states = t.st_n + 1; budget = t.state_budget })
    else begin
      Ipset.add t.set ~k1:mask ~k2:vid;
      ensure_states t;
      t.st_mask.(t.st_n) <- mask;
      t.st_vid.(t.st_n) <- vid;
      t.st_n <- t.st_n + 1;
      Obs.Metrics.incr_h t.states_c
    end
  end

(* Attempt op [idx] from state [si] — the availability rules of
   [Lincheck.decide]'s candidate loop, verbatim. *)
let try_from t si idx =
  if Option.is_none t.degraded then begin
    let mask = t.st_mask.(si) in
    let bit = 1 lsl idx in
    if mask land bit = 0 && t.pred.(idx) land mask = t.pred.(idx) then begin
      let w = t.wvid.(idx) in
      if w >= 0 then add_state t (mask lor bit) w
      else if t.rvid.(idx) = t.st_vid.(si) then
        add_state t (mask lor bit) t.st_vid.(si)
    end
  end

(* Try one op against every state below [bound] (a newly enabled op must
   be offered to the whole existing set: every (state, op) pair is
   attempted exactly when the later of the two appears). *)
let scan_op t idx ~bound =
  let si = ref 0 in
  while Option.is_none t.degraded && !si < bound do
    try_from t !si idx;
    incr si
  done

(* Close over the states appended at index >= [from]: each new state is
   offered every op, and states it spawns are appended and processed in
   turn (a worklist by array cursor). *)
let closure t ~from =
  let cur = ref from in
  while Option.is_none t.degraded && !cur < t.st_n do
    let idx = ref 0 in
    while Option.is_none t.degraded && !idx < t.n do
      try_from t !cur !idx;
      incr idx
    done;
    incr cur
  done

let lookup t v =
  let rec go i =
    if i >= t.nvals then -1 else if V.equal t.vals.(i) v then i else go (i + 1)
  in
  go 0

let ensure_vals t =
  if t.nvals >= Array.length t.vals then
    t.vals <- grow t.vals t.nvals ~zero:V.Bot

(* A freshly interned value may be exactly what an already-responded
   read has been waiting for; resolving it re-offers that read to every
   current state (the caller's closure covers states added later). *)
let resolve_unresolved t v vid =
  let resolved, keep =
    List.partition (fun (_, rv) -> V.equal rv v) t.unresolved
  in
  t.unresolved <- keep;
  List.iter
    (fun (idx, _) ->
      t.rvid.(idx) <- vid;
      scan_op t idx ~bound:t.st_n)
    resolved

let intern t v =
  match lookup t v with
  | -1 ->
      ensure_vals t;
      t.vals.(t.nvals) <- v;
      t.nvals <- t.nvals + 1;
      let vid = t.nvals - 1 in
      resolve_unresolved t v vid;
      vid
  | i -> i

let create ?(metrics = Obs.Metrics.global) ?(cap = Lincheck.max_ops)
    ?(state_budget = default_state_budget) ?wall_budget_ms ~entry () =
  if cap < 1 || cap > Lincheck.max_ops then
    invalid_arg
      (Printf.sprintf "Increment.create: cap %d outside 1..%d" cap
         Lincheck.max_ops);
  if entry = [] then invalid_arg "Increment.create: empty entry set";
  let t =
    {
      cap;
      state_budget = max 1 state_budget;
      wall_budget_ms;
      created_ms = Obs.Span.now_ms ();
      n = 0;
      pending = 0;
      inv_t = Array.make 16 0;
      resp_t = Array.make 16 0;
      pred = Array.make 16 0;
      wvid = Array.make 16 0;
      rvid = Array.make 16 0;
      complete_mask = 0;
      ids = Hashtbl.create 32;
      unresolved = [];
      vals = Array.make 8 V.Bot;
      nvals = 0;
      set = Ipset.create ~capacity:64 ();
      st_mask = Array.make 64 0;
      st_vid = Array.make 64 0;
      st_n = 0;
      degraded = None;
      states_c = Obs.Metrics.counter_h metrics "linchk.inc.states";
      events_c = Obs.Metrics.counter_h metrics "linchk.inc.events";
    }
  in
  List.iter (fun v -> add_state t 0 (intern t v)) entry;
  t

let invoke t ~id ~kind ~time =
  Obs.Metrics.incr_h t.events_c;
  check_wall t;
  t.pending <- t.pending + 1;
  match t.degraded with
  | Some _ -> t.n <- t.n + 1
  | None ->
      if t.n >= t.cap then begin
        degrade t (Op_cap { n = t.n + 1; cap = t.cap });
        t.n <- t.n + 1
      end
      else begin
        ensure_ops t;
        let i = t.n in
        t.inv_t.(i) <- time;
        t.resp_t.(i) <- max_int;
        let m = ref 0 in
        for j = 0 to i - 1 do
          if t.resp_t.(j) < time then m := !m lor (1 lsl j)
        done;
        t.pred.(i) <- !m;
        let old_st = t.st_n in
        (match kind with
        | Op.Write v ->
            t.wvid.(i) <- intern t v;
            t.rvid.(i) <- -1
        | Op.Read ->
            t.wvid.(i) <- -1;
            t.rvid.(i) <- -1);
        t.n <- i + 1;
        Hashtbl.replace t.ids id i;
        (* a fresh write is available at once; a fresh read matches no
           value yet — either way, offer it to the existing set and
           close over whatever appears *)
        scan_op t i ~bound:t.st_n;
        closure t ~from:old_st
      end

let respond t ~id ~result ~time =
  Obs.Metrics.incr_h t.events_c;
  check_wall t;
  t.pending <- t.pending - 1;
  if Option.is_none t.degraded then
    match Hashtbl.find_opt t.ids id with
    | None -> () (* invoked after degradation: only the counts matter *)
    | Some i -> (
        t.resp_t.(i) <- time;
        t.complete_mask <- t.complete_mask lor (1 lsl i);
        if t.wvid.(i) < 0 then
          match result with
          | None -> () (* screened upstream; an unmatchable read *)
          | Some v -> (
              match lookup t v with
              | -1 -> t.unresolved <- (i, v) :: t.unresolved
              | vid ->
                  t.rvid.(i) <- vid;
                  let old_st = t.st_n in
                  scan_op t i ~bound:old_st;
                  closure t ~from:old_st))

let outcome t =
  match t.degraded with
  (* the op-cap reason reports the segment's final op count, which keeps
     growing after the trip — so the record matches what an offline
     count of the same segment would say *)
  | Some (Op_cap { cap; _ }) -> Unknown (Op_cap { n = t.n; cap })
  | Some r -> Unknown r
  | None ->
      let seen = Array.make (max 1 t.nvals) false in
      let found = ref 0 in
      for s = 0 to t.st_n - 1 do
        if
          t.complete_mask land t.st_mask.(s) = t.complete_mask
          && not seen.(t.st_vid.(s))
        then begin
          seen.(t.st_vid.(s)) <- true;
          incr found
        end
      done;
      if !found = 0 then Fail
      else begin
        let vals = ref [] in
        for v = t.nvals - 1 downto 0 do
          if seen.(v) then vals := t.vals.(v) :: !vals
        done;
        Pass !vals
      end
