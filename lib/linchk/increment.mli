(** Incremental single-object linearizability over an event stream.

    Where {!Lincheck.decide} searches a {e finished} history, this module
    maintains the full set of reachable DFS states — (done-mask,
    interned-value-id) pairs under exactly [decide]'s availability rules
    — across one event fed at a time.  At a quiescent point (no pending
    invocation) the terminal states decide the segment and their value
    ids are precisely the register values the segment can leave behind,
    which seeds the next segment's entry set (DESIGN.md §15).

    Verdicts agree with the offline checker by construction: the
    reachable set is closed under the same transition relation
    [Lincheck.decide] explores, so "some terminal state is reachable"
    here iff [decide] finds a witness on the same (sub-)history.

    One deliberate asymmetry: the op cap counts {e every} invocation,
    including reads that are still pending when the segment is flushed
    at end-of-stream (the offline prep drops those before counting).
    At a quiescent boundary there are no pending ops, so the counts
    coincide exactly where verdict agreement is promised. *)

type reason =
  | Op_cap of { n : int; cap : int }
  | State_budget of { states : int; budget : int }
  | Wall_budget of { budget_ms : float }
  | Shed of { pending : int; max_pending : int }
  | Entry_overflow of { cap : int }
      (** The last three never originate here: [Wall_budget] only with an
          armed wall budget, [Shed]/[Entry_overflow] via {!degrade} from
          the serving layer's backpressure and entry-set propagation. *)

val reason_cause : reason -> string
(** Stable short tag: ["op-cap"], ["state-budget"], ["wall-budget"],
    ["shed"], ["entry-overflow"] — the ["cause"] field of serialized
    verdict reasons. *)

type outcome =
  | Pass of History.Value.t list
      (** Linearizable; the values are the feasible boundary values (every
          value some linearization leaves in the register), in interning
          order — entry values first, then first-write order. *)
  | Fail
  | Unknown of reason

type t

val default_state_budget : int

val create :
  ?metrics:Obs.Metrics.t ->
  ?cap:int ->
  ?state_budget:int ->
  ?wall_budget_ms:float ->
  entry:History.Value.t list ->
  unit ->
  t
(** [create ~entry ()] starts a segment whose register may initially hold
    any value in [entry] (non-empty; duplicates ignored).  [cap]
    (default {!Lincheck.max_ops}) bounds ops per segment; [state_budget]
    bounds reachable states; [wall_budget_ms] (default: none — it is
    wall-clock and would break deterministic resume) bounds elapsed time
    since [create].  Exceeding any budget degrades the segment: state is
    freed, events keep counting, and {!outcome} reports [Unknown].
    @raise Invalid_argument on an empty entry set or a cap outside
    [1..Lincheck.max_ops]. *)

val invoke : t -> id:int -> kind:History.Op.kind -> time:int -> unit
(** Feed an invocation.  [id] must be fresh within the segment and [time]
    non-decreasing — the serving layer quarantines violations before they
    reach here. *)

val respond : t -> id:int -> result:History.Value.t option -> time:int -> unit
(** Feed a response.  A read's required value resolves here (and
    retroactively, if the value is only written later in the stream —
    matching the offline prep's whole-table lookup). *)

val degrade : t -> reason -> unit
(** Externally force degradation (backpressure shed, entry-set overflow).
    Idempotent: the first reason wins. *)

val n : t -> int
(** Invocations fed so far (including post-degradation ones). *)

val pending : t -> int
(** Invoked but not yet responded.  [pending t = 0] with [n t > 0] is the
    quiescent condition under which {!outcome}'s [Pass] values are exact
    boundary values. *)

val states : t -> int
(** Current reachable-set size (0 after degradation). *)

val degraded : t -> reason option

val outcome : t -> outcome
(** Decide the segment as fed so far.  Terminal = every {e completed} op
    linearized, so at end-of-stream flush pending reads are ignored and
    pending writes are optional — the same contract as
    {!Lincheck.prep}. *)
