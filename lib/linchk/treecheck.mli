(** Existence of (write-)strong linearization functions over explicit
    history trees.

    Definitions 3 and 4 of the paper quantify over {e sets} of histories:
    a (write) strong linearization function must map every history of the
    implementation to a linearization, consistently on prefixes.  A single
    history can never refute such a property — the refutation in Theorem 13
    needs a common prefix [G] with {e two} incompatible extensions
    [H₁], [H₂].  This module therefore checks trees:

    each node is a history, each child extends its parent (event-prefix),
    and we ask whether linearizations can be assigned to every node such
    that along each edge the (write) sequence of the parent's linearization
    is a prefix of the child's.

    The check is exact under the following proviso: pending {e reads} in
    internal (non-leaf) nodes are never included in the chosen
    linearizations.  For write strong-linearizability this loses nothing —
    property (P) constrains only write subsequences, so a read's inclusion
    in [f(G)] is irrelevant to every other node.  For full strong
    linearizability it makes the check conservative (it may report
    "impossible" when a function exists that linearizes a read before its
    response); the tests only apply {!strong} to trees whose internal nodes
    have no pending reads, where it is exact. *)

type tree = { hist : History.Hist.t; children : tree list }

val node : History.Hist.t -> tree list -> tree
(** Smart constructor.
    @raise Invalid_argument if some child does not extend the parent. *)

val chain : History.Hist.t list -> tree
(** A linear tree from a ⊑-increasing list of histories.
    @raise Invalid_argument on an empty list or a non-chain. *)

val of_prefixes : History.Hist.t -> tree
(** The chain of all event-prefixes of a history — the tree over which
    property (P) is tested for a single execution. *)

val write_strong :
  ?metrics:Obs.Metrics.t ->
  ?tracer:Obs.Tracer.t ->
  ?jobs:int ->
  init:History.Value.t ->
  tree ->
  bool
(** Does a write strong-linearization function exist on this tree
    (Definition 4 restricted to the tree's histories)?  [metrics]
    (default {!Obs.Metrics.global}) receives [treecheck.nodes] /
    [treecheck.candidates] and the underlying {!Lincheck} counters —
    pass a private registry to isolate a parallel run's numbers.

    An armed [tracer] (default {!Obs.Tracer.null}) receives a
    [treecheck.progress] event (category ["check"]) every 64 node visits:
    nodes visited, candidate orders generated, current tree depth.

    [jobs] (default 1) > 1 preps the tree's nodes in parallel and runs
    the work-stealing tree search: the OR structure of the search
    (candidate orders, nested along single-child spines) is expanded
    into lex-ordered alternatives, each solved as a task, and the
    lowest-index success wins — verdicts and witnesses are identical to
    the sequential search at every [jobs] (DESIGN.md §14).  Parallel
    runs add [treecheck.par.tasks] / [treecheck.par.stolen] /
    [treecheck.par.cancelled] counters and, with an armed [tracer], a
    post-hoc [treecheck.par.done] summary event. *)

val strong : ?metrics:Obs.Metrics.t -> init:History.Value.t -> tree -> bool
(** Does a strong linearization function exist on this tree
    (Definition 3 restricted to the tree's histories)?  Conservative if an
    internal node has pending reads; exact otherwise. *)

val write_strong_witness :
  ?metrics:Obs.Metrics.t ->
  ?tracer:Obs.Tracer.t ->
  ?jobs:int ->
  init:History.Value.t ->
  tree ->
  (History.Hist.t * int list) list option
(** On success, for each node (pre-order) the chosen write order (op ids). *)

(** {2 §7 generalization: strong linearizability w.r.t. a subset O} *)

val subset_strong :
  ?metrics:Obs.Metrics.t ->
  ?tracer:Obs.Tracer.t ->
  ?jobs:int ->
  init:History.Value.t ->
  sel:(History.Op.t -> bool) ->
  tree ->
  bool
(** Does a linearization function exist whose [sel]-subsequence is fixed
    irrevocably on-line — i.e. is a prefix along every edge of the tree?
    [sel = Op.is_write] is write strong-linearizability (Definition 4);
    [sel = fun _ -> true] is full strong linearizability restricted to the
    tree (with the pending-read caveat of {!strong});
    [sel = fun _ -> false] degenerates to per-node linearizability.  The
    same caveat as {!strong} applies to pending operations selected by
    [sel]: they are never included in internal nodes' linearizations. *)

val subset_strong_witness :
  ?metrics:Obs.Metrics.t ->
  ?tracer:Obs.Tracer.t ->
  ?jobs:int ->
  init:History.Value.t ->
  sel:(History.Op.t -> bool) ->
  tree ->
  (History.Hist.t * int list) list option

val read_strong :
  ?metrics:Obs.Metrics.t ->
  ?tracer:Obs.Tracer.t ->
  ?jobs:int ->
  init:History.Value.t ->
  tree ->
  bool
(** [subset_strong ~sel:Op.is_read]: only the {e read} order must be fixed
    on-line — the mirror image of Definition 4. *)
