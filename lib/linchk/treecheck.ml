module Hist = History.Hist

type tree = { hist : Hist.t; children : tree list }

let node hist children =
  List.iter
    (fun c ->
      if not (Hist.is_prefix hist ~of_:c.hist) then
        invalid_arg "Treecheck.node: child does not extend parent")
    children;
  { hist; children }

let chain = function
  | [] -> invalid_arg "Treecheck.chain: empty"
  | hs ->
      let rec build = function
        | [] -> assert false
        | [ h ] -> node h []
        | h :: rest -> node h [ build rest ]
      in
      build hs

let of_prefixes h = chain (Hist.prefixes h)

(* Search: assign to each node a linearization whose (write) sequence
   extends the parent's committed (write) prefix.  We enumerate the
   distinct candidate orders at each node (bounded) and recurse.

   Prep cache: the search probes each node under many prefixes (one per
   surviving candidate of its parent, re-entered on backtrack), but
   Lincheck's O(n²) preprocessing depends only on the node's history — so
   the tree is annotated with its prepped form once, up front, and the
   candidate/recursion loop reuses it. *)

let enum_limit = 4096

type ptree = { phist : Hist.t; p : Lincheck.prepped; pchildren : ptree list }

let rec prep_tree ~init t =
  {
    phist = t.hist;
    p = Lincheck.prep ~init t.hist;
    pchildren = List.map (prep_tree ~init) t.children;
  }

(* tree-search progress probe cadence (node visits between events) *)
let probe_interval = 64

let rec solve_sub ~m ~trc ~nodes ~cands_total ~sel t ~prefix ~depth =
  Obs.Metrics.incr_h nodes;
  (* flight-recorder heartbeat: node visits, candidates generated, depth —
     armed-guarded so untraced searches pay one branch per node *)
  if Obs.Tracer.armed trc then begin
    let nv = Obs.Metrics.read_h nodes in
    if nv mod probe_interval = 0 then
      ignore
        (Obs.Tracer.emit trc ~parent:(-1)
           ~args:
             [
               ("nodes", Obs.Json.Int nv);
               ("candidates", Obs.Json.Int (Obs.Metrics.read_h cands_total));
               ("depth", Obs.Json.Int depth);
             ]
           ~sim:nv ~cat:"check" "treecheck.progress")
  end;
  (* candidate [sel]-subsequence orders of this node extending [prefix] *)
  let cands =
    Lincheck.orders_extending_prepped ~metrics:m t.p ~sel ~prefix
      ~limit:enum_limit
  in
  Obs.Metrics.incr_h ~by:(List.length cands) cands_total;
  let rec try_cands = function
    | [] -> None
    | w :: rest -> (
        match
          solve_children_sub ~m ~trc ~nodes ~cands_total ~sel t.pchildren
            ~prefix:w ~depth:(depth + 1)
        with
        | Some subs -> Some ((t.phist, w) :: subs)
        | None -> try_cands rest)
  in
  try_cands cands

and solve_children_sub ~m ~trc ~nodes ~cands_total ~sel children ~prefix ~depth
    =
  (* reversed-accumulator build (the naive [sub @ subs] was quadratic in
     the pre-order concatenation) *)
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | c :: rest -> (
        match solve_sub ~m ~trc ~nodes ~cands_total ~sel c ~prefix ~depth with
        | None -> None
        | Some sub -> go (List.rev_append sub acc) rest)
  in
  go [] children

let subset_strong_witness ?(metrics = Obs.Metrics.global)
    ?(tracer = Obs.Tracer.null) ~init ~sel t =
  let nodes = Obs.Metrics.counter_h metrics "treecheck.nodes" in
  let cands_total = Obs.Metrics.counter_h metrics "treecheck.candidates" in
  solve_sub ~m:metrics ~trc:tracer ~nodes ~cands_total ~sel (prep_tree ~init t)
    ~prefix:[] ~depth:0

let subset_strong ?metrics ?tracer ~init ~sel t =
  Option.is_some (subset_strong_witness ?metrics ?tracer ~init ~sel t)

let write_strong_witness ?metrics ?tracer ~init t =
  subset_strong_witness ?metrics ?tracer ~init ~sel:History.Op.is_write t

let write_strong ?metrics ?tracer ~init t =
  Option.is_some (write_strong_witness ?metrics ?tracer ~init t)

let read_strong ?metrics ?tracer ~init t =
  subset_strong ?metrics ?tracer ~init ~sel:History.Op.is_read t

(* Full strong linearizability: same search over full op sequences. *)
let rec solve_s ~m t ~prefix =
  let cands =
    Lincheck.enumerate_prepped ~metrics:m t.p ~limit:enum_limit
    |> List.map (List.map (fun (o : History.Op.t) -> o.id))
    |> List.filter (fun seq ->
           let rec starts_with p s =
             match (p, s) with
             | [], _ -> true
             | _, [] -> false
             | x :: p', y :: s' -> x = y && starts_with p' s'
           in
           starts_with prefix seq)
  in
  List.exists
    (fun seq -> List.for_all (fun c -> solve_s ~m c ~prefix:seq) t.pchildren)
    cands

let strong ?(metrics = Obs.Metrics.global) ~init t =
  solve_s ~m:metrics (prep_tree ~init t) ~prefix:[]
