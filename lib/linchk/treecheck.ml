module Hist = History.Hist

type tree = { hist : Hist.t; children : tree list }

let node hist children =
  List.iter
    (fun c ->
      if not (Hist.is_prefix hist ~of_:c.hist) then
        invalid_arg "Treecheck.node: child does not extend parent")
    children;
  { hist; children }

let chain = function
  | [] -> invalid_arg "Treecheck.chain: empty"
  | hs ->
      let rec build = function
        | [] -> assert false
        | [ h ] -> node h []
        | h :: rest -> node h [ build rest ]
      in
      build hs

let of_prefixes h = chain (Hist.prefixes h)

(* Search: assign to each node a linearization whose (write) sequence
   extends the parent's committed (write) prefix.  We enumerate the
   distinct candidate orders at each node (bounded) and recurse. *)

let enum_limit = 4096

let rec solve_sub ~m ~init ~sel t ~prefix =
  Obs.Metrics.incr m "treecheck.nodes";
  (* candidate [sel]-subsequence orders of this node extending [prefix] *)
  let cands =
    Lincheck.subset_orders_extending ~metrics:m ~init t.hist ~sel ~prefix
      ~limit:enum_limit
  in
  Obs.Metrics.incr m ~by:(List.length cands) "treecheck.candidates";
  let rec try_cands = function
    | [] -> None
    | w :: rest -> (
        match solve_children_sub ~m ~init ~sel t.children ~prefix:w with
        | Some subs -> Some ((t.hist, w) :: subs)
        | None -> try_cands rest)
  in
  try_cands cands

and solve_children_sub ~m ~init ~sel children ~prefix =
  match children with
  | [] -> Some []
  | c :: rest -> (
      match solve_sub ~m ~init ~sel c ~prefix with
      | None -> None
      | Some sub -> (
          match solve_children_sub ~m ~init ~sel rest ~prefix with
          | None -> None
          | Some subs -> Some (sub @ subs)))

let subset_strong_witness ?(metrics = Obs.Metrics.global) ~init ~sel t =
  solve_sub ~m:metrics ~init ~sel t ~prefix:[]

let subset_strong ?metrics ~init ~sel t =
  Option.is_some (subset_strong_witness ?metrics ~init ~sel t)

let write_strong_witness ?metrics ~init t =
  subset_strong_witness ?metrics ~init ~sel:History.Op.is_write t

let write_strong ?metrics ~init t =
  Option.is_some (write_strong_witness ?metrics ~init t)

let read_strong ?metrics ~init t =
  subset_strong ?metrics ~init ~sel:History.Op.is_read t

(* Full strong linearizability: same search over full op sequences. *)
let rec solve_s ~m ~init t ~prefix =
  let cands =
    Lincheck.enumerate ~metrics:m ~init t.hist ~limit:enum_limit
    |> List.map (List.map (fun (o : History.Op.t) -> o.id))
    |> List.filter (fun seq ->
           let rec starts_with p s =
             match (p, s) with
             | [], _ -> true
             | _, [] -> false
             | x :: p', y :: s' -> x = y && starts_with p' s'
           in
           starts_with prefix seq)
  in
  List.exists
    (fun seq ->
      List.for_all (fun c -> solve_s ~m ~init c ~prefix:seq) t.children)
    cands

let strong ?(metrics = Obs.Metrics.global) ~init t =
  solve_s ~m:metrics ~init t ~prefix:[]
