module Hist = History.Hist

type tree = { hist : Hist.t; children : tree list }

let node hist children =
  List.iter
    (fun c ->
      if not (Hist.is_prefix hist ~of_:c.hist) then
        invalid_arg "Treecheck.node: child does not extend parent")
    children;
  { hist; children }

let chain = function
  | [] -> invalid_arg "Treecheck.chain: empty"
  | hs ->
      let rec build = function
        | [] -> assert false
        | [ h ] -> node h []
        | h :: rest -> node h [ build rest ]
      in
      build hs

let of_prefixes h = chain (Hist.prefixes h)

(* Search: assign to each node a linearization whose (write) sequence
   extends the parent's committed (write) prefix.  We enumerate the
   distinct candidate orders at each node (bounded) and recurse.

   Prep cache: the search probes each node under many prefixes (one per
   surviving candidate of its parent, re-entered on backtrack), but
   Lincheck's O(n²) preprocessing depends only on the node's history — so
   the tree is annotated with its prepped form once, up front, and the
   candidate/recursion loop reuses it. *)

let enum_limit = 4096

type ptree = { phist : Hist.t; p : Lincheck.prepped; pchildren : ptree list }

let rec prep_tree_seq ~init t =
  {
    phist = t.hist;
    p = Lincheck.prep ~init t.hist;
    pchildren = List.map (prep_tree_seq ~init) t.children;
  }

(* Prep is O(n²) per node and embarrassingly parallel across nodes, so
   with a domain budget it goes through the pool (pre-order flatten, map,
   rebuild in the same order).  A [Too_large] node raises either way —
   [Pool.map] re-raises the lowest task index, i.e. the same pre-order
   first offender the sequential walk hits. *)
let prep_tree ?(jobs = 1) ~init t =
  if jobs <= 1 then prep_tree_seq ~init t
  else begin
    let hists = ref [] in
    let rec collect t =
      hists := t.hist :: !hists;
      List.iter collect t.children
    in
    collect t;
    let arr = Array.of_list (List.rev !hists) in
    let preps =
      Simkit.Pool.map ~jobs (Array.length arr) (fun i ->
          Lincheck.prep ~init arr.(i))
    in
    let idx = ref 0 in
    let rec build t =
      let p = preps.(!idx) in
      incr idx;
      { phist = t.hist; p; pchildren = List.map build t.children }
    in
    build t
  end

(* tree-search progress probe cadence (node visits between events) *)
let probe_interval = 64

(* Raised out of a parallel subtree task when a lower-index task has
   already produced the winning assignment (see [solve_par]). *)
exception Cancelled

let no_stop () = false

let rec solve_sub ~m ~trc ~stop ~nodes ~cands_total ~sel t ~prefix ~depth =
  if stop () then raise Cancelled;
  Obs.Metrics.incr_h nodes;
  (* flight-recorder heartbeat: node visits, candidates generated, depth —
     armed-guarded so untraced searches pay one branch per node *)
  if Obs.Tracer.armed trc then begin
    let nv = Obs.Metrics.read_h nodes in
    if nv mod probe_interval = 0 then
      ignore
        (Obs.Tracer.emit trc ~parent:(-1)
           ~args:
             [
               ("nodes", Obs.Json.Int nv);
               ("candidates", Obs.Json.Int (Obs.Metrics.read_h cands_total));
               ("depth", Obs.Json.Int depth);
             ]
           ~sim:nv ~cat:"check" "treecheck.progress")
  end;
  (* candidate [sel]-subsequence orders of this node extending [prefix] *)
  let cands =
    Lincheck.orders_extending_prepped ~metrics:m t.p ~sel ~prefix
      ~limit:enum_limit
  in
  Obs.Metrics.incr_h ~by:(List.length cands) cands_total;
  let rec try_cands = function
    | [] -> None
    | w :: rest -> (
        match
          solve_children_sub ~m ~trc ~stop ~nodes ~cands_total ~sel t.pchildren
            ~prefix:w ~depth:(depth + 1)
        with
        | Some subs -> Some ((t.phist, w) :: subs)
        | None -> try_cands rest)
  in
  try_cands cands

and solve_children_sub ~m ~trc ~stop ~nodes ~cands_total ~sel children ~prefix
    ~depth =
  (* reversed-accumulator build (the naive [sub @ subs] was quadratic in
     the pre-order concatenation) *)
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | c :: rest -> (
        match
          solve_sub ~m ~trc ~stop ~nodes ~cands_total ~sel c ~prefix ~depth
        with
        | None -> None
        | Some sub -> go (List.rev_append sub acc) rest)
  in
  go [] children

(* {2 Parallel tree search}

   The search tree is an OR/AND alternation: a node ORs over its
   candidate orders, and each candidate ANDs over the node's children.
   Splitting descends the OR structure only — single-child spines (the
   shape [of_prefixes] produces) — so a frontier entry is one {e
   alternative}, carrying the (hist, order) assignments committed on the
   way down:

   - [Tdone]: a complete assignment (every node on the path was a leaf
     by the time its order was chosen) — an instant success;
   - [Tnode]: "solve this subtree under this committed prefix";
   - [Tand]: "solve this ≥2-child family under this prefix" — kept whole
     (an AND cannot be OR-split without changing task semantics).

   Entries are generated in candidate order, so entry i's alternatives
   precede entry i+1's in the sequential backtracking order; with the
   lowest-index-success rule (and cancellation only of strictly higher
   indices) the parallel witness is the sequential one — the same
   argument as the flat checker's frontier, DESIGN.md §14. *)

type passign = (Hist.t * int list) list

type tentry =
  | Tdone of passign
  | Tnode of { gnode : ptree; gprefix : int list; gacc : passign (* rev *) }
  | Tand of { gkids : ptree list; gprefix : int list; gacc : passign }

let expand_entries ~m ~nodes ~cands_total ~sel ~target root_entry =
  let expandable = function Tnode _ -> true | _ -> false in
  let expand_one = function
    | Tnode { gnode; gprefix; gacc } ->
        Obs.Metrics.incr_h nodes;
        let cands =
          Lincheck.orders_extending_prepped ~metrics:m gnode.p ~sel
            ~prefix:gprefix ~limit:enum_limit
        in
        Obs.Metrics.incr_h ~by:(List.length cands) cands_total;
        List.map
          (fun w ->
            let acc' = (gnode.phist, w) :: gacc in
            match gnode.pchildren with
            | [] -> Tdone (List.rev acc')
            | [ c ] -> Tnode { gnode = c; gprefix = w; gacc = acc' }
            | cs -> Tand { gkids = cs; gprefix = w; gacc = acc' })
          cands
    | e -> [ e ]
  in
  let rec level frontier =
    if
      List.length frontier >= target
      || not (List.exists expandable frontier)
    then frontier
    else begin
      let hit_terminal = ref false in
      let out = ref [] in
      List.iter
        (fun e ->
          if !hit_terminal then out := e :: !out
          else
            match e with
            | Tdone _ ->
                hit_terminal := true;
                out := e :: !out
            | e -> List.iter (fun c -> out := c :: !out) (expand_one e))
        frontier;
      let frontier' = List.rev !out in
      if !hit_terminal then frontier' else level frontier'
    end
  in
  level [ root_entry ]

let solve_par ~m ~trc ~jobs ~sel pt =
  let nodes = Obs.Metrics.counter_h m "treecheck.nodes" in
  let cands_total = Obs.Metrics.counter_h m "treecheck.candidates" in
  let entries =
    expand_entries ~m ~nodes ~cands_total ~sel ~target:(4 * jobs)
      (Tnode { gnode = pt; gprefix = []; gacc = [] })
  in
  let par_tasks = Obs.Metrics.counter_h m "treecheck.par.tasks" in
  let par_stolen = Obs.Metrics.counter_h m "treecheck.par.stolen" in
  let par_cancelled = Obs.Metrics.counter_h m "treecheck.par.cancelled" in
  match entries with
  | [] -> None
  | entries ->
      let tasks = Array.of_list entries in
      let ntasks = Array.length tasks in
      let regs = Array.init ntasks (fun _ -> Obs.Metrics.create ()) in
      let best = Atomic.make max_int in
      let results = Array.make ntasks None in
      let n_cancelled = Atomic.make 0 in
      let run_task ti =
        let reg = regs.(ti) in
        let tnodes = Obs.Metrics.counter_h reg "treecheck.nodes" in
        let tcands = Obs.Metrics.counter_h reg "treecheck.candidates" in
        let stop () = Atomic.get best < ti in
        let compute () =
          match tasks.(ti) with
          | Tdone a -> Some a
          | Tnode { gnode; gprefix; gacc } -> (
              match
                solve_sub ~m:reg ~trc:Obs.Tracer.null ~stop ~nodes:tnodes
                  ~cands_total:tcands ~sel gnode ~prefix:gprefix
                  ~depth:(List.length gacc)
              with
              | Some sub -> Some (List.rev_append gacc sub)
              | None -> None)
          | Tand { gkids; gprefix; gacc } -> (
              match
                solve_children_sub ~m:reg ~trc:Obs.Tracer.null ~stop
                  ~nodes:tnodes ~cands_total:tcands ~sel gkids ~prefix:gprefix
                  ~depth:(List.length gacc)
              with
              | Some subs -> Some (List.rev_append gacc subs)
              | None -> None)
        in
        match compute () with
        | Some a ->
            results.(ti) <- Some a;
            let rec cas_min () =
              let b = Atomic.get best in
              if ti < b && not (Atomic.compare_and_set best b ti) then
                cas_min ()
            in
            cas_min ()
        | None -> ()
        | exception Cancelled -> Atomic.incr n_cancelled
      in
      let stats = Simkit.Steal.run ~jobs ntasks run_task in
      Array.iter (fun r -> Obs.Metrics.merge ~into:m r) regs;
      Obs.Metrics.incr_h ~by:ntasks par_tasks;
      Obs.Metrics.incr_h ~by:stats.Simkit.Steal.stolen par_stolen;
      Obs.Metrics.incr_h ~by:(Atomic.get n_cancelled) par_cancelled;
      if Obs.Tracer.armed trc then
        ignore
          (Obs.Tracer.emit trc ~parent:(-1)
             ~args:
               [
                 ("tasks", Obs.Json.Int ntasks);
                 ("stolen", Obs.Json.Int stats.Simkit.Steal.stolen);
                 ("cancelled", Obs.Json.Int (Atomic.get n_cancelled));
               ]
             ~sim:0 ~cat:"check" "treecheck.par.done");
      let b = Atomic.get best in
      if b = max_int then None else results.(b)

let subset_strong_witness ?(metrics = Obs.Metrics.global)
    ?(tracer = Obs.Tracer.null) ?(jobs = 1) ~init ~sel t =
  let pt = prep_tree ~jobs ~init t in
  if jobs <= 1 then begin
    let nodes = Obs.Metrics.counter_h metrics "treecheck.nodes" in
    let cands_total = Obs.Metrics.counter_h metrics "treecheck.candidates" in
    solve_sub ~m:metrics ~trc:tracer ~stop:no_stop ~nodes ~cands_total ~sel pt
      ~prefix:[] ~depth:0
  end
  else solve_par ~m:metrics ~trc:tracer ~jobs ~sel pt

let subset_strong ?metrics ?tracer ?jobs ~init ~sel t =
  Option.is_some (subset_strong_witness ?metrics ?tracer ?jobs ~init ~sel t)

let write_strong_witness ?metrics ?tracer ?jobs ~init t =
  subset_strong_witness ?metrics ?tracer ?jobs ~init ~sel:History.Op.is_write t

let write_strong ?metrics ?tracer ?jobs ~init t =
  Option.is_some (write_strong_witness ?metrics ?tracer ?jobs ~init t)

let read_strong ?metrics ?tracer ?jobs ~init t =
  subset_strong ?metrics ?tracer ?jobs ~init ~sel:History.Op.is_read t

(* Full strong linearizability: same search over full op sequences. *)
let rec solve_s ~m t ~prefix =
  let cands =
    Lincheck.enumerate_prepped ~metrics:m t.p ~limit:enum_limit
    |> List.map (List.map (fun (o : History.Op.t) -> o.id))
    |> List.filter (fun seq ->
           let rec starts_with p s =
             match (p, s) with
             | [], _ -> true
             | _, [] -> false
             | x :: p', y :: s' -> x = y && starts_with p' s'
           in
           starts_with prefix seq)
  in
  List.exists
    (fun seq -> List.for_all (fun c -> solve_s ~m c ~prefix:seq) t.pchildren)
    cands

let strong ?(metrics = Obs.Metrics.global) ~init t =
  solve_s ~m:metrics (prep_tree ~init t) ~prefix:[]
