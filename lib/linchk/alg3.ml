module V = History.Value
module Op = History.Op
module Vec = Clocks.Vector
module Trace = Simkit.Trace

type info = {
  op : Op.t;
  snapshots : (int * Vec.t) list; (* ascending time *)
  val_write : int option; (* time of the line-8 write, if reached *)
}

(* Collect, from the trace clipped at [time], everything Algorithm 3 needs. *)
let gather tr ~obj ~time:cutoff =
  let entries =
    List.filter (fun e -> Trace.entry_time e <= cutoff) (Trace.entries tr)
  in
  (* history events -> ops (clipped: late responses dropped) *)
  let ops_tbl : (int, Op.t) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun e ->
      match e with
      | Trace.Ev { History.Event.time; event } -> (
          match event with
          | History.Event.Invoke { op_id; proc; obj = o; kind }
            when String.equal o obj ->
              Hashtbl.replace ops_tbl op_id
                (Op.make ~id:op_id ~proc ~obj ~kind ~invoked:time ());
              order := op_id :: !order
          | History.Event.Respond { op_id; result } -> (
              match Hashtbl.find_opt ops_tbl op_id with
              | Some o ->
                  Hashtbl.replace ops_tbl op_id
                    { o with responded = Some time; result }
              | None -> ())
          | _ -> ())
      | _ -> ())
    entries;
  let snapshots : (int, (int * Vec.t) list) Hashtbl.t = Hashtbl.create 32 in
  let val_writes = ref [] in
  let read_tss : (int, Vec.t) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun e ->
      match e with
      | Trace.TsSnapshot { time; op_id; ts; _ }
        when Hashtbl.mem ops_tbl op_id ->
          (* accumulate reversed (cons, not append) — reversed once below *)
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt snapshots op_id)
          in
          Hashtbl.replace snapshots op_id ((time, ts) :: prev)
      | Trace.ValWrite { time; op_id; _ } when Hashtbl.mem ops_tbl op_id ->
          val_writes := (time, op_id) :: !val_writes
      | Trace.ReadTs { op_id; ts; _ } when Hashtbl.mem ops_tbl op_id ->
          Hashtbl.replace read_tss op_id ts
      | _ -> ())
    entries;
  let infos =
    List.rev !order
    |> List.map (fun id ->
           let op = Hashtbl.find ops_tbl id in
           ( id,
             {
               op;
               snapshots =
                 List.rev
                   (Option.value ~default:[] (Hashtbl.find_opt snapshots id));
               val_write =
                 List.find_map
                   (fun (t, oid) -> if oid = id then Some t else None)
                   !val_writes;
             } ))
  in
  (infos, List.rev !val_writes, read_tss)

let dim_of infos =
  List.find_map
    (fun (_, i) ->
      match i.snapshots with (_, ts) :: _ -> Some (Vec.dim ts) | [] -> None)
    infos

(* The writer's new_ts at time [t]: the last snapshot at or before [t];
   [[∞,…,∞]] if none was recorded yet. *)
let ts_at info ~t ~n =
  let rec last acc = function
    | (time, ts) :: rest when time <= t -> last (Some ts) rest
    | _ -> acc
  in
  match last None info.snapshots with Some ts -> ts | None -> Vec.all_inf n

(* The complete timestamp a write published at line 8 (if it got there). *)
let final_ts info ~n =
  match info.val_write with
  | None -> None
  | Some t -> Some (ts_at info ~t ~n)

let linearize_upto ?(metrics = Obs.Metrics.global) tr ~obj ~time =
  let linearizations = Obs.Metrics.counter_h metrics "alg3.linearizations" in
  let ops_placed = Obs.Metrics.counter_h metrics "alg3.ops_placed" in
  Obs.Metrics.incr_h linearizations;
  let infos, val_writes, read_tss = gather tr ~obj ~time in
  Obs.Metrics.incr_h ~by:(List.length infos) ops_placed;
  match dim_of infos with
  | None ->
      (* no write ever took a snapshot: history has no writes past line 1;
         only reads of the initial value can exist *)
      infos
      |> List.filter_map (fun (_, i) ->
             if Op.is_read i.op && Op.is_complete i.op then Some i.op else None)
      |> List.sort (fun (a : Op.t) b -> Int.compare a.invoked b.invoked)
  | Some n ->
      let find_info id = List.assoc id infos in
      (* --- lines 1–19: linearize the writes ----------------------------- *)
      let ws = ref [] (* reverse order *) in
      let in_ws id = List.mem id !ws in
      List.iter
        (fun (t_i, wi) ->
          if not (in_ws wi) then begin
            let wi_info = find_info wi in
            let ts_wi = ts_at wi_info ~t:t_i ~n in
            (* C_i: writes not yet linearized and active at t_i *)
            let c_i =
              List.filter
                (fun (id, info) ->
                  Op.is_write info.op
                  && (not (in_ws id))
                  && Op.active_at info.op t_i)
                infos
            in
            (* B_i: those whose (possibly incomplete) timestamp at t_i is
               <= ts_{w_i} *)
            let b_i =
              List.filter_map
                (fun (id, info) ->
                  let ts = ts_at info ~t:t_i ~n in
                  if Vec.le ts ts_wi then Some (id, ts) else None)
                c_i
            in
            let sorted =
              List.sort
                (fun (ida, tsa) (idb, tsb) ->
                  match Vec.compare tsa tsb with
                  | 0 -> Int.compare ida idb
                  | c -> c)
                b_i
            in
            List.iter (fun (id, _) -> ws := id :: !ws) sorted
          end)
        val_writes;
      let ws = List.rev !ws in
      (* --- lines 21–31: insert the reads --------------------------------- *)
      (* group completed reads by the timestamp they observed *)
      let read_groups : (int * info) list =
        List.filter
          (fun (id, i) ->
            Op.is_read i.op && Op.is_complete i.op && Hashtbl.mem read_tss id)
          infos
      in
      let zero = Vec.zero n in
      let prefix_reads = ref [] in
      let attached : (int, Op.t list) Hashtbl.t = Hashtbl.create 16 in
      (* writer op of a timestamp *)
      let writer_of ts =
        List.find_map
          (fun (id, info) ->
            match final_ts info ~n with
            | Some fts when Vec.equal fts ts -> Some id
            | _ -> None)
          infos
      in
      List.iter
        (fun (id, i) ->
          let ts = Hashtbl.find read_tss id in
          if Vec.equal ts zero then prefix_reads := i.op :: !prefix_reads
          else
            match writer_of ts with
            | Some wid ->
                (* reversed accumulator; re-reversed before the sort below *)
                let prev = Option.value ~default:[] (Hashtbl.find_opt attached wid) in
                Hashtbl.replace attached wid (i.op :: prev)
            | None ->
                invalid_arg
                  (Printf.sprintf
                     "Alg3: read #%d observed a timestamp written by no \
                      operation in the history"
                     id))
        read_groups;
      let by_start = List.sort (fun (a : Op.t) b -> Int.compare a.invoked b.invoked) in
      let prefix_reads = by_start (List.rev !prefix_reads) in
      let body =
        List.concat_map
          (fun wid ->
            let w = (find_info wid).op in
            let rs =
              by_start
                (List.rev
                   (Option.value ~default:[] (Hashtbl.find_opt attached wid)))
            in
            w :: rs)
          ws
      in
      prefix_reads @ body

let linearize ?metrics tr ~obj = linearize_upto ?metrics tr ~obj ~time:max_int

let write_order ?metrics tr ~obj ~time =
  linearize_upto ?metrics tr ~obj ~time
  |> List.filter Op.is_write
  |> List.map (fun (o : Op.t) -> o.id)
