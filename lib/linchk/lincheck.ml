module V = History.Value
module Op = History.Op
module Hist = History.Hist

(* Checker observability: counters accumulate in the caller's registry
   (default: the global one); drivers measure a run by snapshot/delta,
   and parallel drivers pass the run's private registry (see Obs.Metrics
   and Simkit.Pool). *)

exception Too_large

type prepped = {
  ops : Op.t array; (* pending reads removed *)
  pred : int array; (* bitmask of ops that must precede op i *)
  complete_mask : int;
  init : V.t;
}

let prep ~init h =
  (match Hist.objects h with
  | [] | [ _ ] -> ()
  | objs ->
      invalid_arg
        (Printf.sprintf "Lincheck: history spans %d objects; project first"
           (List.length objs)));
  let ops =
    Hist.ops h
    |> List.filter (fun (o : Op.t) -> Op.is_write o || Op.is_complete o)
    |> Array.of_list
  in
  let n = Array.length ops in
  if n > 62 then raise Too_large;
  Array.iter
    (fun (o : Op.t) ->
      if Op.is_read o && Op.is_complete o && Option.is_none o.result then
        invalid_arg
          (Printf.sprintf "Lincheck: completed read #%d has no recorded result"
             o.id))
    ops;
  let pred = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if j <> i && Op.precedes ops.(j) ops.(i) then
        pred.(i) <- pred.(i) lor (1 lsl j)
    done
  done;
  let complete_mask = ref 0 in
  Array.iteri (fun i o -> if Op.is_complete o then complete_mask := !complete_mask lor (1 lsl i)) ops;
  { ops; pred; complete_mask = !complete_mask; init }

(* The scope of a forced id prefix: the selected subsequence of the
   linearization (e.g. all ops, only writes, only reads) must follow the
   prefix.  This implements the paper's §7 generalization — strong
   linearizability with respect to a subset O of operations. *)
type scope = Op.t -> bool

let all_ops : scope = fun _ -> true
let writes_only : scope = Op.is_write

(* Core decision DFS with failure memoization.  [forced] is an id list the
   (write) subsequence of the linearization must start with. *)
let decide ~m p ~forced ~scope =
  let n = Array.length p.ops in
  let forced = Array.of_list forced in
  let module Key = struct
    type t = int * int * V.t (* mask, forced-cursor, value *)

    let equal (m1, c1, v1) (m2, c2, v2) = m1 = m2 && c1 = c2 && V.equal v1 v2

    (* [V.equal] is structural, so the polymorphic hash is consistent
       with it; hashing the value directly keeps the memo probe off the
       allocation path (formatting the value through [V.show] dominated
       the DFS inner loop). *)
    let hash (k : t) = Hashtbl.hash k
  end in
  let module Memo = Hashtbl.Make (Key) in
  let failed = Memo.create 256 in
  let rec go mask cursor value path =
    Obs.Metrics.incr m "linchk.states";
    if
      p.complete_mask land mask = p.complete_mask
      && cursor = Array.length forced
    then Some (List.rev path)
    else if Memo.mem failed (mask, cursor, value) then begin
      Obs.Metrics.incr m "linchk.memo_prunes";
      None
    end
    else begin
      let result = ref None in
      let i = ref 0 in
      while Option.is_none !result && !i < n do
        let idx = !i in
        incr i;
        if mask land (1 lsl idx) = 0 && p.pred.(idx) land mask = p.pred.(idx)
        then begin
          let o = p.ops.(idx) in
          let allowed_by_forced, cursor' =
            if cursor < Array.length forced && scope o then
              if o.id = forced.(cursor) then (true, cursor + 1)
              else (false, cursor)
            else (true, cursor)
          in
          if allowed_by_forced then
            match o.kind with
            | Op.Write v -> (
                match go (mask lor (1 lsl idx)) cursor' v (o :: path) with
                | Some _ as r -> result := r
                | None -> ())
            | Op.Read -> (
                match o.result with
                | Some r when V.equal r value -> (
                    match
                      go (mask lor (1 lsl idx)) cursor' value (o :: path)
                    with
                    | Some _ as res -> result := res
                    | None -> ())
                | _ -> ())
        end
      done;
      if Option.is_none !result then begin
        Obs.Metrics.incr m "linchk.backtracks";
        Memo.replace failed (mask, cursor, value) ()
      end;
      !result
    end
  in
  go 0 0 p.init []

let witness ?(metrics = Obs.Metrics.global) ~init h =
  let p = prep ~init h in
  decide ~m:metrics p ~forced:[] ~scope:all_ops

let check ?metrics ~init h = Option.is_some (witness ?metrics ~init h)

let check_multi ?metrics ~init_of h =
  List.for_all
    (fun obj -> check ?metrics ~init:(init_of obj) (Hist.project h ~obj))
    (Hist.objects h)

(* Enumeration (no memoization: we need all solutions, bounded by limit). *)
let enum ~m p ~forced ~scope ~limit ~collect =
  let n = Array.length p.ops in
  let forced = Array.of_list forced in
  let out = ref [] in
  let count = ref 0 in
  let seen = Hashtbl.create 64 in
  let emit path =
    let sol = List.rev path in
    let key = collect sol in
    if not (Hashtbl.mem seen key) then begin
      Obs.Metrics.incr m "linchk.enum.solutions";
      Hashtbl.add seen key ();
      out := sol :: !out;
      incr count
    end
  in
  let rec go mask cursor value path =
    Obs.Metrics.incr m "linchk.enum.states";
    if !count >= limit then ()
    else begin
      if
        p.complete_mask land mask = p.complete_mask
        && cursor = Array.length forced
      then emit path;
      (* keep extending: pending writes may still be appended, and other
         interleavings explored *)
      for idx = 0 to n - 1 do
        if
          !count < limit
          && mask land (1 lsl idx) = 0
          && p.pred.(idx) land mask = p.pred.(idx)
        then begin
          let o = p.ops.(idx) in
          let allowed_by_forced, cursor' =
            if cursor < Array.length forced && scope o then
              if o.id = forced.(cursor) then (true, cursor + 1)
              else (false, cursor)
            else (true, cursor)
          in
          if allowed_by_forced then
            match o.kind with
            | Op.Write v -> go (mask lor (1 lsl idx)) cursor' v (o :: path)
            | Op.Read -> (
                match o.result with
                | Some r when V.equal r value ->
                    go (mask lor (1 lsl idx)) cursor' value (o :: path)
                | _ -> ())
        end
      done
    end
  in
  go 0 0 p.init [];
  List.rev !out

let ids ops = List.map (fun (o : Op.t) -> o.id) ops
let write_ids ops = ids (List.filter Op.is_write ops)

let enumerate ?(metrics = Obs.Metrics.global) ~init h ~limit =
  let p = prep ~init h in
  enum ~m:metrics p ~forced:[] ~scope:all_ops ~limit ~collect:ids

let sel_ids sel ops = ids (List.filter sel ops)

let enumerate_write_orders ?(metrics = Obs.Metrics.global) ~init h ~limit =
  let p = prep ~init h in
  enum ~m:metrics p ~forced:[] ~scope:writes_only ~limit ~collect:write_ids
  |> List.map (List.filter Op.is_write)

let check_with_forced_write_prefix ?(metrics = Obs.Metrics.global) ~init h
    ~prefix =
  let p = prep ~init h in
  Option.is_some (decide ~m:metrics p ~forced:prefix ~scope:writes_only)

let check_with_forced_prefix ?(metrics = Obs.Metrics.global) ~init h ~prefix =
  let p = prep ~init h in
  Option.is_some (decide ~m:metrics p ~forced:prefix ~scope:all_ops)

let check_with_forced_subset_prefix ?(metrics = Obs.Metrics.global) ~init h
    ~sel ~prefix =
  let p = prep ~init h in
  Option.is_some (decide ~m:metrics p ~forced:prefix ~scope:sel)

let write_orders_extending ?(metrics = Obs.Metrics.global) ~init h ~prefix
    ~limit =
  let p = prep ~init h in
  enum ~m:metrics p ~forced:prefix ~scope:writes_only ~limit ~collect:write_ids
  |> List.map (List.filter Op.is_write)
  |> List.map ids
  |> List.sort_uniq compare

let subset_orders_extending ?(metrics = Obs.Metrics.global) ~init h ~sel
    ~prefix ~limit =
  let p = prep ~init h in
  enum ~m:metrics p ~forced:prefix ~scope:sel ~limit ~collect:(sel_ids sel)
  |> List.map (fun l -> sel_ids sel l)
  |> List.sort_uniq compare
