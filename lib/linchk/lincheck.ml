module V = History.Value
module Op = History.Op
module Hist = History.Hist

(* Checker observability: counters accumulate in the caller's registry
   (default: the global one); drivers measure a run by snapshot/delta,
   and parallel drivers pass the run's private registry (see Obs.Metrics
   and Simkit.Pool).  Counter handles are resolved once per search entry
   (never per DFS state) — see DESIGN.md "hot-path discipline". *)

(* Histories are encoded into 62-bit done-masks, so one object carries at
   most [max_ops] operations. *)
let max_ops = 62

exception Too_large of { n : int; cap : int }

(* The cap a driver should impose given its domain budget.  The bitmask
   encoding pins the hard ceiling at [max_ops]; below it, the practical
   ceiling is time, and parallel search buys headroom — each extra domain
   is worth roughly a 9-op raise before wall-clock parity breaks down.
   Only the [rlin check] driver applies this (library entry points keep
   the full [max_ops] default so verdicts never depend on [-j]). *)
let effective_cap ~jobs =
  let jobs = max 1 jobs in
  min max_ops (53 + (9 * (jobs - 1)))

(* The preprocessed search form of a history.  Write values are interned
   into dense ids ([0 .. nvals-1], the initial value first) so a DFS
   state packs into two machine ints: the done-mask and
   [cursor * nvals + vid].  [wvid]/[rvid] carry, per op index, the
   interned id a write installs / a completed read requires ([rvid = -1]
   when the result can never be produced, or for writes). *)
type prepped = {
  ops : Op.t array; (* pending reads removed *)
  pred : int array; (* bitmask of ops that must precede op i *)
  complete_mask : int;
  init : V.t;
  nvals : int;
  init_vid : int;
  wvid : int array;
  rvid : int array;
}

(* Build the ops array straight from the event list in one pass:
   [Hist.ops]/[Hist.objects] re-derive through intermediate tables and
   lists, which is most of the prep cost on the small histories the
   experiments check (prep runs once per checked history, so its constant
   matters as much as the DFS). *)
let ops_of_events h =
  let module E = History.Event in
  let evs = Hist.events h in
  let n_inv =
    List.fold_left
      (fun acc { E.event; _ } ->
        match event with E.Invoke _ -> acc + 1 | _ -> acc)
      0 evs
  in
  if n_inv = 0 then [||]
  else begin
    let dummy = Op.make ~id:0 ~proc:0 ~obj:"" ~kind:Op.Read ~invoked:0 () in
    let all = Array.make n_inv dummy in
    let slot = ref 0 in
    let objs = ref [] in
    (* op lookup on respond is a backwards scan (the responding op is
       usually recent, and n <= 62 anyway) — no id table to allocate *)
    let find_slot op_id =
      let rec go i =
        if i < 0 then invalid_arg "Lincheck: response without invocation"
        else if (all.(i) : Op.t).id = op_id then i
        else go (i - 1)
      in
      go (!slot - 1)
    in
    List.iter
      (fun { E.time; event } ->
        match event with
        | E.Invoke { op_id; proc; obj; kind } ->
            if not (List.exists (String.equal obj) !objs) then
              objs := obj :: !objs;
            all.(!slot) <- Op.make ~id:op_id ~proc ~obj ~kind ~invoked:time ();
            incr slot
        | E.Respond { op_id; result } ->
            let i = find_slot op_id in
            all.(i) <- { all.(i) with responded = Some time; result })
      evs;
    (match !objs with
    | [] | [ _ ] -> ()
    | objs ->
        invalid_arg
          (Printf.sprintf "Lincheck: history spans %d objects; project first"
             (List.length objs)));
    all
  end

let prep ?(cap = max_ops) ~init h =
  if cap < 1 || cap > max_ops then
    invalid_arg
      (Printf.sprintf "Lincheck.prep: cap %d outside 1..%d" cap max_ops);
  let all = ops_of_events h in
  let kept o = Op.is_write o || Op.is_complete o in
  let n =
    Array.fold_left (fun acc o -> if kept o then acc + 1 else acc) 0 all
  in
  let ops =
    if n = Array.length all then all
    else begin
      let out = Array.make n all.(0) in
      let j = ref 0 in
      Array.iter
        (fun o ->
          if kept o then begin
            out.(!j) <- o;
            incr j
          end)
        all;
      out
    end
  in
  if n > cap then raise (Too_large { n; cap });
  Array.iter
    (fun (o : Op.t) ->
      if Op.is_read o && Op.is_complete o && Option.is_none o.result then
        invalid_arg
          (Printf.sprintf "Lincheck: completed read #%d has no recorded result"
             o.id))
    ops;
  (* the precedence pass is the O(n^2) core of prep: run it over plain
     int arrays ([Op.precedes o o'] is [responded o < invoked o'], with
     pending mapped to +inf so it never precedes anything) *)
  let inv_t = Array.map (fun (o : Op.t) -> o.invoked) ops in
  let resp_t =
    Array.map
      (fun (o : Op.t) ->
        match o.responded with Some r -> r | None -> max_int)
      ops
  in
  let pred = Array.make n 0 in
  for i = 0 to n - 1 do
    let inv_i = inv_t.(i) in
    let m = ref 0 in
    for j = 0 to n - 1 do
      if j <> i && resp_t.(j) < inv_i then m := !m lor (1 lsl j)
    done;
    pred.(i) <- !m
  done;
  let complete_mask = ref 0 in
  Array.iteri (fun i o -> if Op.is_complete o then complete_mask := !complete_mask lor (1 lsl i)) ops;
  (* Intern the reachable register values: the initial value plus every
     written value, deduplicated by V.equal (at most n + 1 of them, so
     the quadratic scan is nothing next to the O(n^2) pred pass). *)
  let table = Array.make (n + 1) init in
  let nvals = ref 1 in
  let lookup v =
    let rec go i =
      if i >= !nvals then -1 else if V.equal table.(i) v then i else go (i + 1)
    in
    go 0
  in
  let intern v =
    match lookup v with
    | -1 ->
        table.(!nvals) <- v;
        incr nvals;
        !nvals - 1
    | i -> i
  in
  let wvid =
    Array.map
      (fun (o : Op.t) ->
        match o.kind with Op.Write v -> intern v | Op.Read -> -1)
      ops
  in
  (* Read requirements resolve against the full table (a read may return
     a value written later in program order); a result outside the table
     can never be matched by any reachable state. *)
  let rvid =
    Array.map
      (fun (o : Op.t) ->
        match (o.kind, o.result) with
        | Op.Read, Some r -> lookup r
        | _ -> -1)
      ops
  in
  {
    ops;
    pred;
    complete_mask = !complete_mask;
    init;
    nvals = !nvals;
    init_vid = 0;
    wvid;
    rvid;
  }

(* The scope of a forced id prefix: the selected subsequence of the
   linearization (e.g. all ops, only writes, only reads) must follow the
   prefix.  This implements the paper's §7 generalization — strong
   linearizability with respect to a subset O of operations. *)
type scope = Op.t -> bool

let all_ops : scope = fun _ -> true
let writes_only : scope = Op.is_write

(* Core decision DFS with failure memoization.  [forced] is an id list the
   (write) subsequence of the linearization must start with.

   The inner loop is allocation-free: the state is (done-mask, forced
   cursor, interned value id), the failure memo is an open-addressed
   int-pair set keyed by (mask, cursor * nvals + vid), and the counters
   are pre-resolved handles.  Candidate order (op index ascending) is the
   same as it ever was, so witnesses are unchanged.

   With an armed [trc], every [probe_interval] states a progress event
   (category "check") reports the search counters and frontier depth —
   the counter tracks of the Perfetto export.  Disarmed, the probe is
   the one [Tracer.armed] branch per state. *)
let probe_interval = 16_384

let decide ?(trc = Obs.Tracer.null) ~m p ~forced ~scope =
  let n = Array.length p.ops in
  let forced = Array.of_list forced in
  let nforced = Array.length forced in
  let states = Obs.Metrics.counter_h m "linchk.states" in
  let memo_prunes = Obs.Metrics.counter_h m "linchk.memo_prunes" in
  let backtracks = Obs.Metrics.counter_h m "linchk.backtracks" in
  let nvals = p.nvals in
  (* start tiny: most checked histories fail/succeed within a few dozen
     states, and the set doubles on demand for the big searches *)
  let failed = Ipset.create ~capacity:16 () in
  let rec go mask cursor vid path =
    Obs.Metrics.incr_h states;
    if Obs.Tracer.armed trc then begin
      let s = Obs.Metrics.read_h states in
      if s mod probe_interval = 0 then
        ignore
          (Obs.Tracer.emit trc ~parent:(-1)
             ~args:
               [
                 ("states", Obs.Json.Int s);
                 ( "memo_prunes",
                   Obs.Json.Int (Obs.Metrics.read_h memo_prunes) );
                 ("backtracks", Obs.Json.Int (Obs.Metrics.read_h backtracks));
                 ("memo_size", Obs.Json.Int (Ipset.length failed));
                 ("depth", Obs.Json.Int (List.length path));
               ]
             ~sim:s ~cat:"check" "linchk.progress")
    end;
    if p.complete_mask land mask = p.complete_mask && cursor = nforced then
      Some (List.rev path)
    else if Ipset.mem failed ~k1:mask ~k2:((cursor * nvals) + vid) then begin
      Obs.Metrics.incr_h memo_prunes;
      None
    end
    else begin
      let result = ref None in
      let i = ref 0 in
      while Option.is_none !result && !i < n do
        let idx = !i in
        incr i;
        if mask land (1 lsl idx) = 0 && p.pred.(idx) land mask = p.pred.(idx)
        then begin
          let o = p.ops.(idx) in
          let allowed_by_forced, cursor' =
            if cursor < nforced && scope o then
              if o.id = forced.(cursor) then (true, cursor + 1)
              else (false, cursor)
            else (true, cursor)
          in
          if allowed_by_forced then
            if p.wvid.(idx) >= 0 then begin
              (* write: installs its interned value *)
              match go (mask lor (1 lsl idx)) cursor' p.wvid.(idx) (o :: path) with
              | Some _ as r -> result := r
              | None -> ()
            end
            else if p.rvid.(idx) = vid then begin
              (* read: linearizable only against the value it returned *)
              match go (mask lor (1 lsl idx)) cursor' vid (o :: path) with
              | Some _ as res -> result := res
              | None -> ()
            end
        end
      done;
      if Option.is_none !result then begin
        Obs.Metrics.incr_h backtracks;
        Ipset.add failed ~k1:mask ~k2:((cursor * nvals) + vid)
      end;
      !result
    end
  in
  go 0 0 p.init_vid []

(* {2 Parallel driver}

   The DFS state has been three machine ints since PR 5, so forking the
   search is cheap: expand the root into a lex-ordered frontier of
   subtree tasks, run them under the work-stealing runner, and share the
   failure memo through a sharded concurrent set.

   Determinism is by construction, not by luck (DESIGN.md §14):
   - the frontier lists subtrees in exactly the sequential DFS's
     candidate order, so task i's whole subtree precedes task i+1's in
     DFS order;
   - the winner is the lowest-index successful task ([best] is
     CAS-min'ed), and a task is cancelled only when a strictly lower
     index has already succeeded — so the surviving witness is the
     lex-least successful path, which is what the sequential search
     returns;
   - memo entries are only written when a subtree has been fully
     explored and failed, and "no completion from (mask, cursor, vid)"
     is path-independent, so sharing them across tasks prunes only
     genuinely dead subtrees and can never change a verdict or witness
     (a racing miss just re-explores — sound, merely slower). *)

exception Cancelled

type fstate = { fmask : int; fcursor : int; fvid : int; frpath : Op.t list }

(* How often a task polls the shared [best] cell, in DFS states.  Large
   enough that the atomic read vanishes in the state cost, small enough
   that losing tasks die within microseconds of a winner. *)
let cancel_interval = 512

(* One level of frontier expansion mirrors [decide]'s candidate loop
   exactly (same order, same forced/scope gating, same read/write value
   rules); a state with no children is a dead end and is dropped —
   exactly the subtree the sequential search would backtrack out of. *)
let children p ~forced ~nforced ~scope s =
  let n = Array.length p.ops in
  let out = ref [] in
  for idx = n - 1 downto 0 do
    if s.fmask land (1 lsl idx) = 0 && p.pred.(idx) land s.fmask = p.pred.(idx)
    then begin
      let o = p.ops.(idx) in
      let allowed_by_forced, cursor' =
        if s.fcursor < nforced && scope o then
          if o.id = forced.(s.fcursor) then (true, s.fcursor + 1)
          else (false, s.fcursor)
        else (true, s.fcursor)
      in
      if allowed_by_forced then
        if p.wvid.(idx) >= 0 then
          out :=
            {
              fmask = s.fmask lor (1 lsl idx);
              fcursor = cursor';
              fvid = p.wvid.(idx);
              frpath = o :: s.frpath;
            }
            :: !out
        else if p.rvid.(idx) = s.fvid then
          out :=
            {
              fmask = s.fmask lor (1 lsl idx);
              fcursor = cursor';
              fvid = s.fvid;
              frpath = o :: s.frpath;
            }
            :: !out
    end
  done;
  !out

(* Expand breadth-first until the frontier holds at least [target]
   subtree tasks.  Stops early at the first {e terminal} state produced
   (a terminal's task succeeds instantly, and by the lowest-index rule
   no deeper split of the states after it could ever win against it —
   though states before it must keep their place, so they stay whole).
   An empty result means every path died during expansion: verdict
   [None] with no tasks to run. *)
let expand_frontier p ~forced ~nforced ~scope ~target root =
  let terminal s =
    p.complete_mask land s.fmask = p.complete_mask && s.fcursor = nforced
  in
  let rec level frontier =
    if List.length frontier >= target then frontier
    else begin
      let hit_terminal = ref false in
      let expanded = ref false in
      let out = ref [] in
      List.iter
        (fun s ->
          if !hit_terminal then out := s :: !out
          else if terminal s then begin
            hit_terminal := true;
            out := s :: !out
          end
          else begin
            expanded := true;
            List.iter
              (fun c -> out := c :: !out)
              (children p ~forced ~nforced ~scope s)
          end)
        frontier;
      let frontier' = List.rev !out in
      if !hit_terminal || not !expanded then frontier'
      else if frontier' = [] then []
      else level frontier'
    end
  in
  let root_terminal = terminal root in
  if root_terminal then [ root ] else level [ root ]

let decide_par ?(trc = Obs.Tracer.null) ~m ~jobs p ~forced ~scope =
  let forced_arr = Array.of_list forced in
  let nforced = Array.length forced_arr in
  let nvals = p.nvals in
  let root = { fmask = 0; fcursor = 0; fvid = p.init_vid; frpath = [] } in
  let tasks =
    Array.of_list
      (expand_frontier p ~forced:forced_arr ~nforced ~scope ~target:(4 * jobs)
         root)
  in
  let ntasks = Array.length tasks in
  let par_tasks = Obs.Metrics.counter_h m "linchk.par.tasks" in
  let par_stolen = Obs.Metrics.counter_h m "linchk.par.stolen" in
  let par_cancelled = Obs.Metrics.counter_h m "linchk.par.cancelled" in
  if ntasks = 0 then None
  else begin
    let memo =
      Ipset.Sharded.create ~shards:(min 16 (2 * jobs)) ~capacity:64 ()
    in
    let regs = Array.init ntasks (fun _ -> Obs.Metrics.create ()) in
    let best = Atomic.make max_int in
    let results = Array.make ntasks None in
    let n_cancelled = Atomic.make 0 in
    let run_task ti =
      let m = regs.(ti) in
      let states = Obs.Metrics.counter_h m "linchk.states" in
      let memo_prunes = Obs.Metrics.counter_h m "linchk.memo_prunes" in
      let backtracks = Obs.Metrics.counter_h m "linchk.backtracks" in
      let poll = ref cancel_interval in
      (* the sequential [go] loop, with the shared sharded memo and a
         periodic cancellation poll in place of the tracer probe *)
      let rec go mask cursor vid path =
        Obs.Metrics.incr_h states;
        decr poll;
        if !poll <= 0 then begin
          poll := cancel_interval;
          if Atomic.get best < ti then raise Cancelled
        end;
        if p.complete_mask land mask = p.complete_mask && cursor = nforced then
          Some (List.rev path)
        else if Ipset.Sharded.mem memo ~k1:mask ~k2:((cursor * nvals) + vid)
        then begin
          Obs.Metrics.incr_h memo_prunes;
          None
        end
        else begin
          let result = ref None in
          let i = ref 0 in
          let n = Array.length p.ops in
          while Option.is_none !result && !i < n do
            let idx = !i in
            incr i;
            if
              mask land (1 lsl idx) = 0
              && p.pred.(idx) land mask = p.pred.(idx)
            then begin
              let o = p.ops.(idx) in
              let allowed_by_forced, cursor' =
                if cursor < nforced && scope o then
                  if o.id = forced_arr.(cursor) then (true, cursor + 1)
                  else (false, cursor)
                else (true, cursor)
              in
              if allowed_by_forced then
                if p.wvid.(idx) >= 0 then begin
                  match
                    go (mask lor (1 lsl idx)) cursor' p.wvid.(idx) (o :: path)
                  with
                  | Some _ as r -> result := r
                  | None -> ()
                end
                else if p.rvid.(idx) = vid then begin
                  match go (mask lor (1 lsl idx)) cursor' vid (o :: path) with
                  | Some _ as res -> result := res
                  | None -> ()
                end
            end
          done;
          if Option.is_none !result then begin
            Obs.Metrics.incr_h backtracks;
            Ipset.Sharded.add memo ~k1:mask ~k2:((cursor * nvals) + vid)
          end;
          !result
        end
      in
      let s0 = tasks.(ti) in
      match go s0.fmask s0.fcursor s0.fvid s0.frpath with
      | Some w ->
          results.(ti) <- Some w;
          let rec cas_min () =
            let b = Atomic.get best in
            if ti < b && not (Atomic.compare_and_set best b ti) then cas_min ()
          in
          cas_min ()
      | None -> ()
      | exception Cancelled -> Atomic.incr n_cancelled
    in
    let stats = Simkit.Steal.run ~jobs ntasks run_task in
    Array.iter (fun r -> Obs.Metrics.merge ~into:m r) regs;
    Obs.Metrics.incr_h ~by:ntasks par_tasks;
    Obs.Metrics.incr_h ~by:stats.Simkit.Steal.stolen par_stolen;
    Obs.Metrics.incr_h ~by:(Atomic.get n_cancelled) par_cancelled;
    Obs.Metrics.set_gauge m "linchk.par.memo_occupancy"
      (Ipset.Sharded.occupancy memo);
    if Obs.Tracer.armed trc then begin
      let mstats = Ipset.Sharded.stats memo in
      ignore
        (Obs.Tracer.emit trc ~parent:(-1)
           ~args:
             [
               ("tasks", Obs.Json.Int ntasks);
               ("stolen", Obs.Json.Int stats.Simkit.Steal.stolen);
               ("cancelled", Obs.Json.Int (Atomic.get n_cancelled));
               ("memo_size", Obs.Json.Int mstats.Ipset.size);
               ("memo_shards", Obs.Json.Int (Ipset.Sharded.shards memo));
               ("memo_occupancy", Obs.Json.Float mstats.Ipset.occupancy);
             ]
           ~sim:0 ~cat:"check" "linchk.par.done")
    end;
    let b = Atomic.get best in
    if b = max_int then None else results.(b)
  end

let decide_any ?trc ~m ~jobs p ~forced ~scope =
  if jobs <= 1 then decide ?trc ~m p ~forced ~scope
  else decide_par ?trc ~m ~jobs p ~forced ~scope

let decide_prepped ?(metrics = Obs.Metrics.global) ?tracer ?(jobs = 1) p =
  decide_any ?trc:tracer ~m:metrics ~jobs p ~forced:[] ~scope:all_ops

let witness ?(metrics = Obs.Metrics.global) ?tracer ?(jobs = 1) ~init h =
  let p = prep ~init h in
  decide_any ?trc:tracer ~m:metrics ~jobs p ~forced:[] ~scope:all_ops

let check ?metrics ?tracer ?jobs ~init h =
  Option.is_some (witness ?metrics ?tracer ?jobs ~init h)

let check_multi ?metrics ?jobs ~init_of h =
  List.for_all
    (fun obj -> check ?metrics ?jobs ~init:(init_of obj) (Hist.project h ~obj))
    (Hist.objects h)

(* Enumeration (no memoization: we need all solutions, bounded by limit). *)
let enum ~m p ~forced ~scope ~limit ~collect =
  let n = Array.length p.ops in
  let forced = Array.of_list forced in
  let nforced = Array.length forced in
  let states = Obs.Metrics.counter_h m "linchk.enum.states" in
  let solutions = Obs.Metrics.counter_h m "linchk.enum.solutions" in
  let out = ref [] in
  let count = ref 0 in
  let seen = Hashtbl.create 64 in
  let emit path =
    let sol = List.rev path in
    let key = collect sol in
    if not (Hashtbl.mem seen key) then begin
      Obs.Metrics.incr_h solutions;
      Hashtbl.add seen key ();
      out := sol :: !out;
      incr count
    end
  in
  let rec go mask cursor vid path =
    Obs.Metrics.incr_h states;
    if !count >= limit then ()
    else begin
      if p.complete_mask land mask = p.complete_mask && cursor = nforced then
        emit path;
      (* keep extending: pending writes may still be appended, and other
         interleavings explored *)
      for idx = 0 to n - 1 do
        if
          !count < limit
          && mask land (1 lsl idx) = 0
          && p.pred.(idx) land mask = p.pred.(idx)
        then begin
          let o = p.ops.(idx) in
          let allowed_by_forced, cursor' =
            if cursor < nforced && scope o then
              if o.id = forced.(cursor) then (true, cursor + 1)
              else (false, cursor)
            else (true, cursor)
          in
          if allowed_by_forced then
            if p.wvid.(idx) >= 0 then
              go (mask lor (1 lsl idx)) cursor' p.wvid.(idx) (o :: path)
            else if p.rvid.(idx) = vid then
              go (mask lor (1 lsl idx)) cursor' vid (o :: path)
        end
      done
    end
  in
  go 0 0 p.init_vid [];
  List.rev !out

let ids ops = List.map (fun (o : Op.t) -> o.id) ops
let write_ids ops = ids (List.filter Op.is_write ops)

let enumerate_prepped ?(metrics = Obs.Metrics.global) p ~limit =
  enum ~m:metrics p ~forced:[] ~scope:all_ops ~limit ~collect:ids

let enumerate ?metrics ~init h ~limit =
  enumerate_prepped ?metrics (prep ~init h) ~limit

let sel_ids sel ops = ids (List.filter sel ops)

let enumerate_write_orders ?(metrics = Obs.Metrics.global) ~init h ~limit =
  let p = prep ~init h in
  enum ~m:metrics p ~forced:[] ~scope:writes_only ~limit ~collect:write_ids
  |> List.map (List.filter Op.is_write)

let check_with_forced_write_prefix ?(metrics = Obs.Metrics.global) ~init h
    ~prefix =
  let p = prep ~init h in
  Option.is_some (decide ~m:metrics p ~forced:prefix ~scope:writes_only)

let check_with_forced_prefix ?(metrics = Obs.Metrics.global) ~init h ~prefix =
  let p = prep ~init h in
  Option.is_some (decide ~m:metrics p ~forced:prefix ~scope:all_ops)

let check_with_forced_subset_prefix ?(metrics = Obs.Metrics.global) ~init h
    ~sel ~prefix =
  let p = prep ~init h in
  Option.is_some (decide ~m:metrics p ~forced:prefix ~scope:sel)

(* [enum ~collect] already dedups solutions by their [collect] projection,
   so each returned linearization has a distinct key: one projection per
   solution suffices, and the former List.sort_uniq degenerates to a
   plain sort (kept — candidate order feeds the Treecheck search, which
   relies on it being deterministic and sorted). *)

let orders_extending_prepped ?(metrics = Obs.Metrics.global) p ~sel ~prefix
    ~limit =
  enum ~m:metrics p ~forced:prefix ~scope:sel ~limit ~collect:(sel_ids sel)
  |> List.map (sel_ids sel)
  |> List.sort compare

let write_orders_extending ?metrics ~init h ~prefix ~limit =
  orders_extending_prepped ?metrics (prep ~init h) ~sel:Op.is_write ~prefix
    ~limit

let subset_orders_extending ?metrics ~init h ~sel ~prefix ~limit =
  orders_extending_prepped ?metrics (prep ~init h) ~sel ~prefix ~limit
