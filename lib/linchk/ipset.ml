(* Open-addressed hash set of int pairs — the failure-memo set of the
   Lincheck DFS.  Linear probing over two parallel int arrays with a
   power-of-two capacity: a probe is two array reads and an int compare,
   no allocation (the previous Hashtbl.Make set boxed a (mask, cursor,
   value) tuple per probe and hashed it polymorphically).

   Key encoding: [k1] is stored as [k1 + 1] so that 0 marks an empty
   slot — callers' first components are >= 0 (a DFS done-mask), which
   the add/mem entry points enforce. *)

type t = {
  mutable k1 : int array; (* k1 + 1; 0 = empty *)
  mutable k2 : int array;
  mutable size : int;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable grows : int;
}

type stats = { size : int; capacity : int; occupancy : float; grows : int }

let round_cap capacity =
  let rec up c = if c >= capacity && c >= 8 then c else up (2 * c) in
  up 8

let create ?(capacity = 256) () =
  let cap = round_cap capacity in
  {
    k1 = Array.make cap 0;
    k2 = Array.make cap 0;
    size = 0;
    mask = cap - 1;
    grows = 0;
  }

let length (t : t) = t.size
let capacity (t : t) = Array.length t.k1
let occupancy (t : t) = float_of_int t.size /. float_of_int (Array.length t.k1)

let stats (t : t) =
  { size = t.size; capacity = capacity t; occupancy = occupancy t; grows = t.grows }

(* SplitMix64-style finalizing mixer over the packed pair: cheap, and
   avalanches low bits well enough that linear probing stays short even
   on the dense, highly regular masks the DFS produces. *)
let hash k1 k2 =
  (* constants are xxhash64 primes truncated to OCaml's 63-bit int range *)
  let h = ref (k1 lxor (k2 * 0x27d4eb2f165667c5)) in
  h := (!h lxor (!h lsr 29)) * 0x165667b19e3779f9;
  h := (!h lxor (!h lsr 32)) * 0x27d4eb2f165667c5;
  !h lxor (!h lsr 29)

let rec probe t k1' k2 i =
  let s = t.k1.(i) in
  if s = 0 then (i, false)
  else if s = k1' && t.k2.(i) = k2 then (i, true)
  else probe t k1' k2 ((i + 1) land t.mask)

let slot t k1 k2 = probe t (k1 + 1) k2 (hash k1 k2 land t.mask)

let mem t ~k1 ~k2 =
  if k1 < 0 then invalid_arg "Ipset: k1 must be >= 0";
  snd (slot t k1 k2)

let grow t =
  let old_k1 = t.k1 and old_k2 = t.k2 in
  let cap = 2 * Array.length old_k1 in
  t.k1 <- Array.make cap 0;
  t.k2 <- Array.make cap 0;
  t.mask <- cap - 1;
  t.grows <- t.grows + 1;
  Array.iteri
    (fun i s ->
      if s <> 0 then begin
        let j, _ = probe t s old_k2.(i) (hash (s - 1) old_k2.(i) land t.mask) in
        t.k1.(j) <- s;
        t.k2.(j) <- old_k2.(i)
      end)
    old_k1

let add t ~k1 ~k2 =
  if k1 < 0 then invalid_arg "Ipset: k1 must be >= 0";
  let i, present = slot t k1 k2 in
  if not present then begin
    t.k1.(i) <- k1 + 1;
    t.k2.(i) <- k2;
    t.size <- t.size + 1;
    (* grow at 1/2 load so probe chains stay O(1) *)
    if 2 * t.size > Array.length t.k1 then grow t
  end

(* Sharded concurrent variant (see the .mli for the soundness story).
   Entries are immutable boxed pairs behind per-slot atomics: a slot CAS
   from [Empty] is the only mutation a live table ever sees, so readers
   can never observe a torn pair — false positives are structurally
   impossible, which is what the memo's pruning soundness rests on. *)
module Sharded = struct
  type entry = Empty | Pair of int * int

  type shard = {
    tab : entry Atomic.t array Atomic.t;
    size : int Atomic.t;
    grows : int Atomic.t;
    lock : Mutex.t; (* serializes rehashes only; add/mem stay lock-free *)
  }

  type t = {
    shards : shard array;
    shard_mask : int;
    shard_bits : int; (* slot hash = pair hash shifted past shard bits *)
  }

  let fresh_tab cap = Array.init cap (fun _ -> Atomic.make Empty)

  let create ?(shards = 8) ?(capacity = 256) () =
    let ns =
      let rec up c = if c >= shards && c >= 1 then c else up (2 * c) in
      up 1
    in
    let bits =
      let rec go b c = if c <= 1 then b else go (b + 1) (c / 2) in
      go 0 ns
    in
    let cap = round_cap capacity in
    {
      shards =
        Array.init ns (fun _ ->
            {
              tab = Atomic.make (fresh_tab cap);
              size = Atomic.make 0;
              grows = Atomic.make 0;
              lock = Mutex.create ();
            });
      shard_mask = ns - 1;
      shard_bits = bits;
    }

  let shards t = Array.length t.shards

  let mem t ~k1 ~k2 =
    if k1 < 0 then invalid_arg "Ipset.Sharded: k1 must be >= 0";
    let h = hash k1 k2 in
    let sh = t.shards.(h land t.shard_mask) in
    let tab = Atomic.get sh.tab in
    let mask = Array.length tab - 1 in
    let rec probe i steps =
      (* [steps] bounds the scan: a racing rehash could otherwise chase a
         chain across tables forever.  Bailing out early is a sound
         false negative. *)
      if steps > mask then false
      else
        match Atomic.get tab.(i) with
        | Empty -> false
        | Pair (a, b) when a = k1 && b = k2 -> true
        | Pair _ -> probe ((i + 1) land mask) (steps + 1)
    in
    probe ((h lsr t.shard_bits) land mask) 0

  (* Rehash [sh] into a table twice the size of [cur].  Under the shard
     lock; re-checks that [cur] is still current so two adders racing to
     grow don't double it twice. *)
  let grow_shard t sh cur =
    Mutex.lock sh.lock;
    if Atomic.get sh.tab == cur then begin
      let cap = 2 * Array.length cur in
      let mask = cap - 1 in
      let tab = fresh_tab cap in
      Array.iter
        (fun slot ->
          match Atomic.get slot with
          | Empty -> ()
          | Pair (a, b) as e ->
              let rec place i =
                match Atomic.get tab.(i) with
                | Empty -> Atomic.set tab.(i) e
                | Pair _ -> place ((i + 1) land mask)
              in
              place ((hash a b lsr t.shard_bits) land mask))
        cur;
      Atomic.incr sh.grows;
      Atomic.set sh.tab tab
    end;
    Mutex.unlock sh.lock

  let add t ~k1 ~k2 =
    if k1 < 0 then invalid_arg "Ipset.Sharded: k1 must be >= 0";
    let h = hash k1 k2 in
    let sh = t.shards.(h land t.shard_mask) in
    let rec attempt () =
      let tab = Atomic.get sh.tab in
      let mask = Array.length tab - 1 in
      let rec probe i =
        match Atomic.get tab.(i) with
        | Pair (a, b) when a = k1 && b = k2 -> `Present
        | Pair _ -> probe ((i + 1) land mask)
        | Empty ->
            if Atomic.compare_and_set tab.(i) Empty (Pair (k1, k2)) then
              `Inserted
            else probe i (* lost the slot; re-inspect it *)
      in
      match probe ((h lsr t.shard_bits) land mask) with
      | `Present -> ()
      | `Inserted ->
          if Atomic.get sh.tab != tab then
            (* A rehash raced us and may have copied the old table before
               our CAS landed: re-insert into the published table (finding
               ourselves already copied is the common case).  The insert
               into the retired table is invisible and harmless. *)
            attempt ()
          else begin
            let size = 1 + Atomic.fetch_and_add sh.size 1 in
            if 2 * size > Array.length tab then grow_shard t sh tab
          end
    in
    attempt ()

  let length t =
    Array.fold_left (fun acc sh -> acc + Atomic.get sh.size) 0 t.shards

  let capacity t =
    Array.fold_left
      (fun acc sh -> acc + Array.length (Atomic.get sh.tab))
      0 t.shards

  let occupancy t = float_of_int (length t) /. float_of_int (capacity t)

  let stats t =
    {
      size = length t;
      capacity = capacity t;
      occupancy = occupancy t;
      grows = Array.fold_left (fun acc sh -> acc + Atomic.get sh.grows) 0 t.shards;
    }

  let shard_occupancy t =
    Array.map
      (fun sh ->
        float_of_int (Atomic.get sh.size)
        /. float_of_int (Array.length (Atomic.get sh.tab)))
      t.shards
end
