(* Open-addressed hash set of int pairs — the failure-memo set of the
   Lincheck DFS.  Linear probing over two parallel int arrays with a
   power-of-two capacity: a probe is two array reads and an int compare,
   no allocation (the previous Hashtbl.Make set boxed a (mask, cursor,
   value) tuple per probe and hashed it polymorphically).

   Key encoding: [k1] is stored as [k1 + 1] so that 0 marks an empty
   slot — callers' first components are >= 0 (a DFS done-mask), which
   the add/mem entry points enforce. *)

type t = {
  mutable k1 : int array; (* k1 + 1; 0 = empty *)
  mutable k2 : int array;
  mutable size : int;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
}

let create ?(capacity = 256) () =
  let cap =
    let rec up c = if c >= capacity && c >= 8 then c else up (2 * c) in
    up 8
  in
  { k1 = Array.make cap 0; k2 = Array.make cap 0; size = 0; mask = cap - 1 }

let length t = t.size

(* SplitMix64-style finalizing mixer over the packed pair: cheap, and
   avalanches low bits well enough that linear probing stays short even
   on the dense, highly regular masks the DFS produces. *)
let hash k1 k2 =
  (* constants are xxhash64 primes truncated to OCaml's 63-bit int range *)
  let h = ref (k1 lxor (k2 * 0x27d4eb2f165667c5)) in
  h := (!h lxor (!h lsr 29)) * 0x165667b19e3779f9;
  h := (!h lxor (!h lsr 32)) * 0x27d4eb2f165667c5;
  !h lxor (!h lsr 29)

let rec probe t k1' k2 i =
  let s = t.k1.(i) in
  if s = 0 then (i, false)
  else if s = k1' && t.k2.(i) = k2 then (i, true)
  else probe t k1' k2 ((i + 1) land t.mask)

let slot t k1 k2 = probe t (k1 + 1) k2 (hash k1 k2 land t.mask)

let mem t ~k1 ~k2 =
  if k1 < 0 then invalid_arg "Ipset: k1 must be >= 0";
  snd (slot t k1 k2)

let grow t =
  let old_k1 = t.k1 and old_k2 = t.k2 in
  let cap = 2 * Array.length old_k1 in
  t.k1 <- Array.make cap 0;
  t.k2 <- Array.make cap 0;
  t.mask <- cap - 1;
  Array.iteri
    (fun i s ->
      if s <> 0 then begin
        let j, _ = probe t s old_k2.(i) (hash (s - 1) old_k2.(i) land t.mask) in
        t.k1.(j) <- s;
        t.k2.(j) <- old_k2.(i)
      end)
    old_k1

let add t ~k1 ~k2 =
  if k1 < 0 then invalid_arg "Ipset: k1 must be >= 0";
  let i, present = slot t k1 k2 in
  if not present then begin
    t.k1.(i) <- k1 + 1;
    t.k2.(i) <- k2;
    t.size <- t.size + 1;
    (* grow at 1/2 load so probe chains stay O(1) *)
    if 2 * t.size > Array.length t.k1 then grow t
  end
