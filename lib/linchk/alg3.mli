(** Algorithm 3 of the paper: the constructive write strong-linearization
    function [f] for the histories of Algorithm 2.

    The function consumes an annotated trace of a run of
    [Registers.Alg2] — the history events plus the [ValWrite],
    [TsSnapshot] and [ReadTs] annotations the implementation records — and
    produces a sequential history [S = f(H)]:

    - it scans the [Val[-]] writes in time order, maintaining the sequence
      [WS] of already-linearized write operations; when the [i]-th
      [Val[-]] write (at time [t_i], by operation [w_i]) is not yet in
      [WS], it collects the set [C_i] of write operations active at [t_i]
      and not in [WS], evaluates each one's {e possibly incomplete} vector
      timestamp at [t_i] (the writer's [new_ts], which starts at
      [[∞,…,∞]] and is non-increasing), selects those
      [B_i = { w ∈ C_i | ts_w ≤ ts_{w_i} }], and appends them to [WS] in
      increasing timestamp order (Algorithm 3, lines 3–15);
    - read operations returning a value with timestamp [ts] are inserted
      immediately after the write that published [ts] (or before all
      writes if [ts = [0,…,0]]), in increasing invocation order
      (lines 22–31).

    Because [WS] is only ever appended to, the write order of [f(G)] is a
    prefix of that of [f(H)] whenever [G ⊑ H] — property (P) of
    Definition 4; the property tests in [test/test_alg3.ml] verify both
    (L) and (P) on randomly scheduled runs by applying this function to
    every prefix of the trace. *)

val linearize :
  ?metrics:Obs.Metrics.t -> Simkit.Trace.t -> obj:string -> History.Op.t list
(** [f(H)] for the full trace.  [metrics] (default {!Obs.Metrics.global})
    receives [alg3.linearizations] / [alg3.ops_placed]; parallel drivers
    pass the run's private registry. *)

val linearize_upto :
  ?metrics:Obs.Metrics.t ->
  Simkit.Trace.t ->
  obj:string ->
  time:int ->
  History.Op.t list
(** [f(G)] where [G] is the prefix of the history up to (and including)
    trace time [time].  Operations without a response by [time] are
    treated as pending, exactly as Algorithm 3 sees them on-line. *)

val write_order :
  ?metrics:Obs.Metrics.t -> Simkit.Trace.t -> obj:string -> time:int -> int list
(** Op ids of the write sequence of [f(G)] — the object of property (P). *)
