module V = History.Value
module Op = History.Op
module Adv = Registers.Adv_register
module Sched = Simkit.Sched
module Trace = Simkit.Trace

exception Stuck of string

(* Step [pid] until [pred ()] holds, with fuel so a mis-scripted schedule
   fails loudly instead of spinning. *)
let step_until sched ~pid ~what pred =
  let fuel = ref 64 in
  while not (pred ()) do
    if !fuel = 0 then
      raise (Stuck (Printf.sprintf "step_until p%d: %s" pid what));
    decr fuel;
    ignore (Sched.step sched ~pid)
  done

let pending_kind reg ~proc =
  Adv.pending reg
  |> List.find_map (fun (id, p, kind) ->
         if p = proc then Some (id, kind) else None)

let has_pending_read reg ~proc =
  match pending_kind reg ~proc with
  | Some (_, Op.Read) -> true
  | _ -> false

let has_pending_write reg ~proc =
  match pending_kind reg ~proc with
  | Some (_, Op.Write _) -> true
  | _ -> false

let no_pending reg ~proc = Option.is_none (Adv.pending_of_proc reg ~proc)

let pending_id reg ~proc =
  match Adv.pending_of_proc reg ~proc with
  | Some id -> id
  | None -> raise (Stuck (Printf.sprintf "no pending op by p%d" proc))

let position reg ~op_id =
  match Adv.position_of reg ~op_id with
  | Some p -> p
  | None -> raise (Stuck (Printf.sprintf "op #%d not committed" op_id))

let last_coin sched =
  match List.rev (Trace.coins (Sched.trace sched)) with
  | (_, _, v) :: _ -> v
  | [] -> raise (Stuck "no coin flipped yet")

(* One full round of the Theorem-6 schedule.  [reorder] says whether the
   adversary is allowed to insert host 1's write before host 0's
   (linearizable registers) or must append it (write strongly-linearizable
   ones).  [first_writer] is the host whose R1 write is linearized first
   when both orders are available pre-coin (the WSL adversary's guess).
   Returns [true] if all processes survived into the next round. *)
let play_round (h : Alg1.handles) ~players ~reorder ~first_writer =
  let sched = h.sched in
  let r1 = h.r1 and r2 = h.r2 and c = h.c in
  (* --- Phase 1, step 1: players reset R1 and C, then invoke their
     line-21 read of R1, which stays pending --------------------------- *)
  List.iter
    (fun p ->
      step_until sched ~pid:p ~what:"reach the pending line-21 read" (fun () ->
          has_pending_read r1 ~proc:p))
    players;
  (* --- step 2: both hosts invoke their R1 writes (t0) ------------------ *)
  let invoke_host i =
    step_until sched ~pid:i ~what:"invoke the round's R1 write" (fun () ->
        has_pending_write r1 ~proc:i)
  in
  invoke_host 0;
  invoke_host 1;
  let w0 = pending_id r1 ~proc:0 and w1 = pending_id r1 ~proc:1 in
  (* --- step 3: fix the pre-coin commit order -------------------------- *)
  (* Under write strong-linearizability the adversary must choose now; the
     guess is realized by stepping the guessed-first host to completion
     first.  Under plain linearizability the adversary lets host 0 commit
     (it must, to reach its coin flip) and keeps w1 pending. *)
  if (not reorder) && first_writer = 1 then
    step_until sched ~pid:1 ~what:"commit+respond w1 first (guess)" (fun () ->
        no_pending r1 ~proc:1);
  (* host 0 completes its write; the same step flips the coin and invokes
     the write of C (t1 < t_coin < t_c) *)
  step_until sched ~pid:0 ~what:"complete w0, flip coin" (fun () ->
      no_pending r1 ~proc:0);
  step_until sched ~pid:0 ~what:"complete the write of C" (fun () ->
      no_pending c ~proc:0);
  let coin = last_coin sched in
  (* --- step 4: linearize w1 against w0 based on the coin --------------- *)
  (* After this block, [first] is the R1 write linearized first and
     [second] the one linearized second. *)
  let first, second =
    if reorder then begin
      (* Theorem 6: the adversary sees the coin and then decides. *)
      if coin = 0 then begin
        (* Case 1: [1,j] after [0,j] — just let p1 run; auto-append. *)
        step_until sched ~pid:1 ~what:"append w1 after w0" (fun () ->
            no_pending r1 ~proc:1);
        (w0, w1)
      end
      else begin
        (* Case 2: insert [1,j] before [0,j] retroactively. *)
        Adv.commit r1 ~op_id:w1 ~pos:(position r1 ~op_id:w0);
        step_until sched ~pid:1 ~what:"respond the pre-inserted w1" (fun () ->
            no_pending r1 ~proc:1);
        (w1, w0)
      end
    end
    else begin
      (* Write_strong: order already fixed by the guess. *)
      if first_writer = 1 then begin
        (* w1 already committed and responded; w0 committed after it. *)
        (w1, w0)
      end
      else begin
        step_until sched ~pid:1 ~what:"append w1 after w0" (fun () ->
            no_pending r1 ~proc:1);
        (w0, w1)
      end
    end
  in
  (* --- step 5: slot the players' pending line-21 reads between the two
     writes, then let the players run through line 23 ------------------- *)
  List.iter
    (fun p ->
      let rd = pending_id r1 ~proc:p in
      Adv.commit r1 ~op_id:rd ~pos:(position r1 ~op_id:second))
    players;
  ignore first;
  (* Each player: respond line-21 read, perform line-22 read (auto-commits
     at the end, i.e. after [second]), read C, evaluate the guards.  If the
     coin matched the order they reach line 31 and invoke the R2 reset;
     otherwise they exit. *)
  let survived = ref true in
  List.iter
    (fun p ->
      step_until sched ~pid:p ~what:"run through the line-27 guard" (fun () ->
          has_pending_write r2 ~proc:p
          || (match Sched.status sched ~pid:p with
             | Simkit.Fiber.Runnable -> false
             | _ -> true)
          || Option.is_some (h.outcome_of p));
      if Option.is_some (h.outcome_of p) then survived := false)
    players;
  if not !survived then begin
    (* mismatch round: drive everyone out of the game *)
    List.iter
      (fun p ->
        let fuel = ref 128 in
        while Sched.runnable sched ~pid:p && !fuel > 0 do
          decr fuel;
          ignore (Sched.step sched ~pid:p)
        done)
      (players @ [ 0; 1 ]);
    false
  end
  else begin
    (* --- Phase 2 -------------------------------------------------------- *)
    (* hosts commit their R2 resets (line 10) and invoke the line-11 read *)
    List.iter
      (fun i ->
        step_until sched ~pid:i ~what:"commit the R2 reset (line 10)"
          (fun () -> no_pending r2 ~proc:i || has_pending_read r2 ~proc:i);
        step_until sched ~pid:i ~what:"invoke the line-11 read" (fun () ->
            has_pending_read r2 ~proc:i))
      [ 0; 1 ];
    (* players commit their R2 resets (line 31) *)
    List.iter
      (fun p ->
        step_until sched ~pid:p ~what:"commit the R2 reset (line 31)"
          (fun () -> has_pending_read r2 ~proc:p))
      players;
    (* players increment sequentially (lines 32–34), each running on into
       the next round until it has invoked its line-19 write of R1 *)
    List.iter
      (fun p ->
        step_until sched ~pid:p ~what:"finish lines 32-34, reach line 19"
          (fun () -> has_pending_write r1 ~proc:p))
      players;
    (* hosts read R2 = n-2 (line 11), survive, and invoke the next round's
       R1 write *)
    List.iter
      (fun i ->
        step_until sched ~pid:i ~what:"read R2 and enter the next round"
          (fun () -> has_pending_write r1 ~proc:i))
      [ 0; 1 ];
    true
  end

let players_of n = List.init (n - 2) (fun k -> k + 2)

let run_linearizable_variant ?(aux_mode = None) ?metrics ~variant ~n ~rounds
    ~seed () =
  if n < 3 then invalid_arg "Thm6.run_linearizable: n must be >= 3";
  if rounds < 1 then invalid_arg "Thm6.run_linearizable: rounds must be >= 1";
  let cfg =
    {
      Alg1.n;
      mode = Adv.Linearizable;
      aux_mode;
      variant;
      max_rounds = rounds + 2;
      seed;
    }
  in
  let h = Alg1.setup ?metrics cfg in
  let players = players_of n in
  for _ = 1 to rounds do
    if not (play_round h ~players ~reorder:true ~first_writer:0) then
      raise (Stuck "Theorem 6 adversary failed to keep the game alive")
  done;
  Alg1.collect cfg h

let run_linearizable ?metrics ~n ~rounds ~seed () =
  run_linearizable_variant ?metrics ~variant:Alg1.Unbounded ~n ~rounds ~seed ()

let run_bounded_linearizable ?metrics ~n ~rounds ~seed () =
  run_linearizable_variant ?metrics ~variant:Alg1.Bounded ~n ~rounds ~seed ()

let run_linearizable_r1_only ?metrics ~n ~rounds ~seed () =
  (* ablation: R1 merely linearizable, R2 and C write strongly-
     linearizable — the adversary still wins, because its power comes
     entirely from reordering R1's writes after the coin *)
  run_linearizable_variant ?metrics
    ~aux_mode:(Some Adv.Write_strong)
    ~variant:Alg1.Unbounded ~n ~rounds ~seed ()

let run_write_strong ?(variant = Alg1.Unbounded) ?(aux_mode = None) ?metrics ~n
    ~max_rounds ~seed () =
  if n < 3 then invalid_arg "Thm6.run_write_strong: n must be >= 3";
  let cfg =
    {
      Alg1.n;
      mode = Adv.Write_strong;
      aux_mode;
      variant;
      max_rounds = max_rounds + 2;
      seed;
    }
  in
  let h = Alg1.setup ?metrics cfg in
  let players = players_of n in
  let guess_rng = Simkit.Rng.create (Int64.logxor seed 0xADEADBEEFL) in
  let continue_ = ref true in
  let r = ref 0 in
  while !continue_ && !r < max_rounds do
    incr r;
    let guess = Simkit.Rng.coin guess_rng in
    continue_ := play_round h ~players ~reorder:false ~first_writer:guess
  done;
  (* drive any stragglers (e.g. hosts after a mismatch round) to completion *)
  ignore
    (Sched.run h.sched
       ~policy:(fun s -> Sched.round_robin s)
       ~max_steps:(n * 200));
  Alg1.collect cfg h
