(** The strong adversary of Theorem 6, and its best-effort counterpart for
    Theorem 7.

    {!run_linearizable} executes the schedule from the proof of Theorem 6
    against Algorithm 1 with [Linearizable] registers: in each round it
    lets host 0's write of [[0,j]] complete, observes the coin, and only
    {e then} linearizes host 1's still-pending write of [[1,j]] before or
    after it — choosing whichever order matches the coin — and slots the
    players' pending reads of [R1] between the two writes.  Every guard
    then passes and every process survives into round [j+1], for as many
    rounds as requested: the game provably never ends, regardless of coin
    outcomes.  Every register edit goes through [Adv_register]'s legality
    checks, so the constructed run is linearizable by construction.

    {!run_write_strong} plays the same adversary against [Write_strong]
    registers.  There the write order of [R1] is already irrevocable when
    host 0 completes its write — before the coin is visible — so the
    adversary can only {e guess}: it commits the two writes in a guessed
    order, and when the coin disagrees (probability 1/2 per round) the
    players' line-27 guard fails, everyone exits, and the game ends.  The
    returned result records the round at which termination happened,
    giving the geometric distribution of Theorem 7's argument
    (Lemma 19). *)

val play_round :
  Alg1.handles -> players:int list -> reorder:bool -> first_writer:int -> bool
(** Drive one full round of the schedule against an already-set-up game
    (exposed for the Corollary 9 experiments).  [reorder] grants the
    post-coin insertion power (sound only against [Linearizable]
    registers); [first_writer] is the pre-coin guess used when
    [reorder = false].  Returns whether all processes survived the
    round. *)

exception Stuck of string
(** A scripted schedule could not make the progress it expected (e.g. the
    adversary attempted an edit the register's mode forbids). *)

val run_linearizable :
  ?metrics:Obs.Metrics.t -> n:int -> rounds:int -> seed:int64 -> unit ->
  Alg1.result
(** Drive [rounds] full rounds of the game with merely-linearizable
    registers; every process is still in the game at the end
    ([terminated = false], [max_round > rounds]).
    @raise Invalid_argument if [n < 3] or [rounds < 1]. *)

val run_linearizable_r1_only :
  ?metrics:Obs.Metrics.t -> n:int -> rounds:int -> seed:int64 -> unit ->
  Alg1.result
(** Ablation (E9): [R1] merely linearizable but [R2] and [C] write
    strongly-linearizable.  The adversary still prevents termination —
    its power lies entirely in reordering [R1]'s writes after seeing the
    coin, pinning Theorem 7's mechanism on [R1]. *)

val run_write_strong :
  ?variant:Alg1.variant ->
  ?aux_mode:Registers.Adv_register.mode option ->
  ?metrics:Obs.Metrics.t ->
  n:int -> max_rounds:int -> seed:int64 -> unit ->
  Alg1.result
(** Same adversary, write strongly-linearizable registers.  Returns when
    the game ends (or at [max_rounds]).  The adversary's per-round guess
    is drawn from a stream derived from [seed]. *)

val run_bounded_linearizable :
  ?metrics:Obs.Metrics.t -> n:int -> rounds:int -> seed:int64 -> unit ->
  Alg1.result
(** Theorem 6 against the Appendix-B bounded-register variant: the same
    schedule works verbatim, confirming the appendix's claim that the
    bounded game has the same runs. *)
