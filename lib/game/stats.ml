type survival = {
  budgets : int list;
  alive_fraction : float list;
  runs : int;
}

let e1_survival ?(jobs = 1) ?(metrics = Obs.Metrics.global) ~n ~budgets ~runs
    ~seed () =
  (* flattened over budgets x runs so a single pool call load-balances the
     whole grid; the per-run seed depends only on r, as it always did *)
  let budgets_a = Array.of_list budgets in
  let alive =
    Simkit.Pool.map_runs ~jobs ~metrics
      (Array.length budgets_a * runs)
      (fun ~metrics i ->
        let budget = budgets_a.(i / runs) and r = i mod runs in
        let seed_r = Int64.add seed (Int64.of_int (r * 7919)) in
        let res =
          Thm6.run_linearizable ~metrics ~n ~rounds:budget ~seed:seed_r ()
        in
        if res.Alg1.terminated then 0 else 1)
  in
  let alive_fraction =
    List.mapi
      (fun b _ ->
        let tally = ref 0 in
        for r = 0 to runs - 1 do
          tally := !tally + alive.((b * runs) + r)
        done;
        float_of_int !tally /. float_of_int runs)
      budgets
  in
  { budgets; alive_fraction; runs }

type termination = {
  rounds : int array;
  runs : int;
  mean : float;
  max : int;
  tail : (int * float) list;
}

let summarize (rounds : int array) : termination =
  let runs = Array.length rounds in
  let mean =
    Array.fold_left (fun a r -> a +. float_of_int r) 0. rounds
    /. float_of_int (Stdlib.max 1 runs)
  in
  let max_r = Array.fold_left Stdlib.max 0 rounds in
  let tail =
    List.init (Stdlib.min 10 (max_r + 1)) (fun j ->
        let beyond = Array.fold_left (fun a r -> if r > j then a + 1 else a) 0 rounds in
        (j, float_of_int beyond /. float_of_int (Stdlib.max 1 runs)))
  in
  { rounds; runs; mean; max = max_r; tail }

let e2_termination ?(variant = Alg1.Unbounded) ?(jobs = 1)
    ?(metrics = Obs.Metrics.global) ~n ~max_rounds ~runs ~seed () =
  let rounds =
    Simkit.Pool.map_runs ~jobs ~metrics runs (fun ~metrics r ->
        let seed_r = Int64.add seed (Int64.of_int ((r * 6151) + 13)) in
        let res =
          Thm6.run_write_strong ~variant ~metrics ~n ~max_rounds ~seed:seed_r ()
        in
        res.Alg1.max_round)
  in
  summarize rounds

let atomic_termination ?(jobs = 1) ?(metrics = Obs.Metrics.global) ~n
    ~max_rounds ~runs ~seed () =
  let rounds =
    Simkit.Pool.map_runs ~jobs ~metrics runs (fun ~metrics r ->
        let seed_r = Int64.add seed (Int64.of_int ((r * 4241) + 7)) in
        let cfg =
          {
            Alg1.n;
            mode = Registers.Adv_register.Atomic;
            aux_mode = None;
            variant = Alg1.Unbounded;
            max_rounds;
            seed = seed_r;
          }
        in
        let res = Alg1.run_random ~metrics cfg ~max_steps:(max_rounds * n * 100) in
        res.Alg1.max_round)
  in
  summarize rounds

let pp_survival fmt (s : survival) =
  Format.fprintf fmt "@[<v>%-12s %-10s (%d runs each)@," "budget" "alive" s.runs;
  List.iter2
    (fun b f -> Format.fprintf fmt "%-12d %-10.3f@," b f)
    s.budgets s.alive_fraction;
  Format.fprintf fmt "@]"

let pp_termination fmt (t : termination) =
  Format.fprintf fmt
    "@[<v>%d runs: mean termination round %.2f, max %d@,%-6s %-12s %-12s@,"
    t.runs t.mean t.max "j" "P(round>j)" "2^-j";
  List.iter
    (fun (j, p) ->
      Format.fprintf fmt "%-6d %-12.4f %-12.4f@," j p (2. ** float_of_int (-j)))
    t.tail;
  Format.fprintf fmt "@]"
