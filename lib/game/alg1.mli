(** Algorithm 1 of the paper: the randomized game for [n >= 3] processes
    whose termination separates linearizability from write
    strong-linearizability.

    Processes [0] and [1] are the {e hosts}, processes [2 … n-1] the
    {e players}; they share three MWMR registers [R1], [R2] and [C].  Each
    asynchronous round has two phases:

    - Phase 1: host [i] writes [[i, j]] into [R1] (line 3); host [0] then
      flips a coin [c] and publishes it in [C] (lines 6–7).  Each player
      first resets [R1] and [C] to [⊥] (lines 19–20), reads [R1] twice
      (lines 21–22) and [C] once (line 23), and stays in the game only if
      it read [[c, j]] then [[1-c, j]] — i.e. only if the order in which
      the two hosts' writes took effect {e matches the coin} (lines 24–29).
    - Phase 2: everyone resets [R2] to 0; players increment it (lines
      31–34); the hosts stay only if they observe that all [n-2] players
      are still in (lines 10–13).

    With atomic or write strongly-linearizable registers the write order
    of [R1] is fixed before the coin is flipped, so each round survives
    with probability at most 1/2 and the game ends almost surely
    (Theorem 7).  With registers that are merely linearizable, a strong
    adversary can decide the write order {e after} seeing the coin and
    keep every process in the game forever (Theorem 6) — the scripted
    adversary in {!Thm6} does exactly that.

    The bounded-register variant of Appendix B (hosts write [i] instead of
    [[i, j]]) is selected with {!variant}; Lemma 20 shows the two variants
    have identical runs, which [test/test_game.ml] checks empirically. *)

type variant =
  | Unbounded  (** hosts write [[i, j]]: register [R1] grows with [j] *)
  | Bounded  (** Appendix B: hosts write [i]; [R1] holds only [⊥], 0, 1 *)

type outcome =
  | Exited of int  (** returned, after exiting the loop in round [j] *)
  | Exhausted  (** still looping when it hit the round cap *)

type config = {
  n : int;  (** number of processes, [>= 3] *)
  mode : Registers.Adv_register.mode;  (** register [R1]'s mode *)
  aux_mode : Registers.Adv_register.mode option;
      (** mode of [R2] and [C]; [None] = same as [mode].  The ablation
          experiment (E9) sets these apart: Theorem 7's coin argument
          hinges on [R1] alone, and indeed the game's fate tracks [R1]'s
          mode, not the auxiliary registers'. *)
  variant : variant;
  max_rounds : int;  (** safety cap so non-terminating runs stop *)
  seed : int64;
}

val default : config
(** [n = 5], atomic, unbounded, 64 rounds, seed 1. *)

type handles = {
  sched : Simkit.Sched.t;
  r1 : Registers.Adv_register.t;
  r2 : Registers.Adv_register.t;
  c : Registers.Adv_register.t;
  outcome_of : int -> outcome option;  (** per-process result so far *)
  round_of : int -> int;  (** round the process is currently in (0 if not started) *)
}

val setup :
  ?after:(pid:int -> unit) -> ?metrics:Obs.Metrics.t -> config -> handles
(** Create the registers and spawn the [n] fibers (hosts 0,1 and players
    2…n-1).  The caller drives the scheduler — directly (adversaries) or
    with a policy.  [after] runs in the process's fiber when (and only
    when) it exits the game by returning — the composition hook used by
    the Corollary 9 construction 𝒜′ = Algorithm 1 ; 𝒜.  [metrics]
    (default {!Obs.Metrics.global}) is handed to the run's scheduler and
    trace; parallel harnesses pass a per-run registry so concurrent games
    never share a sink. *)

type result = {
  outcomes : (int * outcome) list;  (** pid → outcome, every pid present *)
  max_round : int;  (** largest round any process entered *)
  terminated : bool;  (** all processes returned (no [Exhausted]) *)
  handles : handles;
}

val collect : config -> handles -> result
(** Snapshot the run's results ([Exhausted] for processes still looping). *)

val run_with_policy :
  ?metrics:Obs.Metrics.t ->
  config ->
  policy:Simkit.Sched.policy ->
  max_steps:int ->
  result
(** Set up and drive to quiescence (all fibers done or [max_steps]). *)

val run_random : ?metrics:Obs.Metrics.t -> config -> max_steps:int -> result
(** Uniformly random scheduler seeded from [config.seed]. *)

val run_round_robin :
  ?metrics:Obs.Metrics.t -> config -> max_steps:int -> result
