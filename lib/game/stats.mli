(** Statistics harnesses for the termination experiments (E1, E2).

    E1 (Theorem 6): under the scripted adversary with merely-linearizable
    registers, the game survives {e every} round budget — the measured
    survival rate is 1.0 at every budget, for every seed (i.e. for every
    sequence of coin outcomes).

    E2 (Theorem 7): with write strongly-linearizable registers the same
    adversary terminates the game at a round distributed geometrically:
    measured [P(round > j)] tracks [2^{-j}] (Lemma 19: each round survives
    with probability at most 1/2). *)

type survival = {
  budgets : int list;  (** round budgets probed *)
  alive_fraction : float list;  (** fraction of seeds still running *)
  runs : int;
}

val e1_survival :
  ?jobs:int -> ?metrics:Obs.Metrics.t ->
  n:int -> budgets:int list -> runs:int -> seed:int64 -> unit -> survival
(** Theorem-6 adversary, linearizable registers: for each budget, the
    fraction of seeds for which the game is still alive after that many
    rounds (expected: 1.0 everywhere).  Runs execute on up to [jobs]
    domains (default 1); each run records into a private registry, folded
    into [metrics] (default the global one) in run order, and per-run
    seeds depend only on the run index — so the result and the folded
    metrics are identical for every [jobs]. *)

type termination = {
  rounds : int array;  (** termination round per run *)
  runs : int;
  mean : float;
  max : int;
  tail : (int * float) list;  (** (j, empirical P(round > j)) *)
}

val e2_termination :
  ?variant:Alg1.variant -> ?jobs:int -> ?metrics:Obs.Metrics.t ->
  n:int -> max_rounds:int -> runs:int -> seed:int64 ->
  unit -> termination
(** Theorem-7 experiment: the same adversary against write
    strongly-linearizable registers, [runs] independent seeds.
    [jobs]/[metrics] as in {!e1_survival}. *)

val atomic_termination :
  ?jobs:int -> ?metrics:Obs.Metrics.t ->
  n:int -> max_rounds:int -> runs:int -> seed:int64 -> unit -> termination
(** Baseline: atomic registers under a random scheduler — the regime in
    which the paper's footnote observes the adversary has no power at all.
    [jobs]/[metrics] as in {!e1_survival}. *)

val pp_survival : Format.formatter -> survival -> unit
val pp_termination : Format.formatter -> termination -> unit
