module V = History.Value
module Adv = Registers.Adv_register
module Sched = Simkit.Sched

type variant = Unbounded | Bounded
type outcome = Exited of int | Exhausted

type config = {
  n : int;
  mode : Adv.mode; (* R1's mode — the register the coin argument hinges on *)
  aux_mode : Adv.mode option; (* R2 and C; [None] means same as [mode] *)
  variant : variant;
  max_rounds : int;
  seed : int64;
}

let default =
  {
    n = 5;
    mode = Adv.Atomic;
    aux_mode = None;
    variant = Unbounded;
    max_rounds = 64;
    seed = 1L;
  }

type handles = {
  sched : Sched.t;
  r1 : Adv.t;
  r2 : Adv.t;
  c : Adv.t;
  outcome_of : int -> outcome option;
  round_of : int -> int;
}

(* value written by host [i] into R1 in round [j] (line 3 / Appendix B) *)
let host_r1_value variant i j =
  match variant with Unbounded -> V.Pair (i, j) | Bounded -> V.Int i

(* the guard of line 27 (or its Appendix-B replacement) *)
let line27_mismatch variant ~u1 ~u2 ~c ~j =
  match variant with
  | Unbounded ->
      (not (V.equal u1 (V.Pair (c, j)))) || not (V.equal u2 (V.Pair (1 - c, j)))
  | Bounded -> (not (V.equal u1 (V.Int c))) || not (V.equal u2 (V.Int (1 - c)))

let setup ?(after = fun ~pid:_ -> ()) ?metrics cfg =
  if cfg.n < 3 then invalid_arg "Alg1.setup: n must be >= 3";
  if cfg.max_rounds < 1 then invalid_arg "Alg1.setup: max_rounds must be >= 1";
  let sched = Sched.create ~seed:cfg.seed ?metrics () in
  let aux = Option.value ~default:cfg.mode cfg.aux_mode in
  let r1 = Adv.create ~sched ~name:"R1" ~init:V.Bot ~mode:cfg.mode in
  let r2 = Adv.create ~sched ~name:"R2" ~init:(V.Int 0) ~mode:aux in
  let c = Adv.create ~sched ~name:"C" ~init:V.Bot ~mode:aux in
  let outcomes : (int, outcome) Hashtbl.t = Hashtbl.create 16 in
  let rounds = Array.make cfg.n 0 in
  let record pid o = Hashtbl.replace outcomes pid o in

  (* ----- hosts: processes 0 and 1 (lines 1–16) -------------------------- *)
  let host i () =
    let exited = ref false in
    let j = ref 0 in
    while (not !exited) && !j < cfg.max_rounds do
      incr j;
      rounds.(i) <- !j;
      (* Phase 1 *)
      Adv.write r1 ~proc:i (host_r1_value cfg.variant i !j) (* line 3 *);
      if i = 0 then begin
        let cv = Sched.coin sched ~proc:i (* line 6 *) in
        Adv.write c ~proc:i (V.Int cv) (* line 7 *)
      end;
      (* Phase 2 *)
      Adv.write r2 ~proc:i (V.Int 0) (* line 10 *);
      let v =
        match Adv.read r2 ~proc:i (* line 11 *) with
        | V.Int v -> v
        | other ->
            invalid_arg
              (Printf.sprintf "Alg1: R2 held non-integer %s" (V.to_string other))
      in
      if v < cfg.n - 2 then begin
        (* lines 12–13 *)
        record i (Exited !j);
        exited := true
      end
    done;
    if !exited then after ~pid:i else record i Exhausted
  in

  (* ----- players: processes 2 … n-1 (lines 17–36) ------------------------ *)
  let player i () =
    let exited = ref false in
    let j = ref 0 in
    while (not !exited) && !j < cfg.max_rounds do
      incr j;
      rounds.(i) <- !j;
      (* Phase 1 *)
      Adv.write r1 ~proc:i V.Bot (* line 19 *);
      Adv.write c ~proc:i V.Bot (* line 20 *);
      let u1 = Adv.read r1 ~proc:i (* line 21 *) in
      let u2 = Adv.read r1 ~proc:i (* line 22 *) in
      let cv = Adv.read c ~proc:i (* line 23 *) in
      if V.equal u1 V.Bot || V.equal u2 V.Bot || V.equal cv V.Bot then begin
        (* lines 24–25 *)
        record i (Exited !j);
        exited := true
      end
      else begin
        let cbit =
          match cv with
          | V.Int b when b = 0 || b = 1 -> b
          | other ->
              invalid_arg
                (Printf.sprintf "Alg1: C held unexpected %s" (V.to_string other))
        in
        if line27_mismatch cfg.variant ~u1 ~u2 ~c:cbit ~j:!j then begin
          (* lines 27–28 *)
          record i (Exited !j);
          exited := true
        end
        else begin
          (* Phase 2 *)
          Adv.write r2 ~proc:i (V.Int 0) (* line 31 *);
          let v =
            match Adv.read r2 ~proc:i (* line 32 *) with
            | V.Int v -> v
            | other ->
                invalid_arg
                  (Printf.sprintf "Alg1: R2 held non-integer %s"
                     (V.to_string other))
          in
          Adv.write r2 ~proc:i (V.Int (v + 1)) (* lines 33–34 *)
        end
      end
    done;
    if !exited then after ~pid:i else record i Exhausted
  in

  for i = 0 to cfg.n - 1 do
    if i <= 1 then Sched.spawn sched ~pid:i (host i)
    else Sched.spawn sched ~pid:i (player i)
  done;
  {
    sched;
    r1;
    r2;
    c;
    outcome_of = (fun pid -> Hashtbl.find_opt outcomes pid);
    round_of = (fun pid -> rounds.(pid));
  }

type result = {
  outcomes : (int * outcome) list;
  max_round : int;
  terminated : bool;
  handles : handles;
}

let collect cfg h =
  let outcomes =
    List.init cfg.n (fun pid ->
        (pid, Option.value ~default:Exhausted (h.outcome_of pid)))
  in
  let max_round =
    List.fold_left (fun acc pid -> max acc (h.round_of pid)) 0
      (List.init cfg.n Fun.id)
  in
  let terminated =
    List.for_all (fun (_, o) -> match o with Exited _ -> true | _ -> false)
      outcomes
  in
  { outcomes; max_round; terminated; handles = h }

let run_with_policy ?metrics cfg ~policy ~max_steps =
  let h = setup ?metrics cfg in
  ignore (Sched.run h.sched ~policy ~max_steps);
  collect cfg h

let run_random ?metrics cfg ~max_steps =
  let rng = Simkit.Rng.create (Int64.add cfg.seed 0x5DEECE66DL) in
  run_with_policy ?metrics cfg ~policy:(Sched.random_policy rng) ~max_steps

let run_round_robin ?metrics cfg ~max_steps =
  run_with_policy ?metrics cfg
    ~policy:(fun s -> Sched.round_robin s)
    ~max_steps
