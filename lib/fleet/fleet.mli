(** The fleet-scale workload engine (DESIGN.md §17): a key-space of
    register shards — key → shard by hash, each shard an independent
    {!Msgpass.Abd} / {!Msgpass.Mwabd} group with its own scheduler and
    network — driven by a {e generational pool} of short-lived client
    sessions that reuse a fixed set of fiber slots
    ({!Simkit.Sched.recycle}).

    Flat-memory discipline, the property the 1M+-op experiment (E15)
    certifies: the trace is drained on a fixed decision cadence (sampled
    shards feed the drained events to the streaming linearizability
    checker, {!Serve.Segmenter}; the rest drop them), replica stable logs
    auto-compact, and the metric histograms are capped reservoirs — every
    structure is bounded by the configuration, not the operation count.

    Shards share no mutable state, so they fan out over domains
    ({!Simkit.Pool.map_runs}) and reports are byte-identical at any
    [jobs]. *)

type proto = Sw | Mw  (** {!Msgpass.Abd} (one writer/shard) or {!Msgpass.Mwabd}. *)

type config = {
  shards : int;  (** register groups, [>= 1] *)
  n : int;  (** nodes per shard, in [\[2, 100)] *)
  proto : proto;
  slots : int;  (** client fiber slots per shard; [n + slots <= 100] *)
  ops : int;  (** total client operations across the fleet *)
  session_len : int;  (** ops per client session before its slot recycles *)
  write_ratio : float;  (** op mix: fraction of writes, in [\[0, 1\]] *)
  keys : int;  (** key-space size; op [i] carries key [i mod keys] *)
  faults : Simkit.Faults.plan;
      (** applied to every shard over its own node set (per-shard fault
          RNGs are derived from the shard seed, so shards draw
          independently); [crash_at] nodes must leave a majority and, for
          [Sw], spare node 0 (the writer client) *)
  persist : [ `Every | `Never ];
  batch_window : int;  (** {!Msgpass.Net.set_batching}; [0] disables *)
  batch_max : int;  (** [1] disables *)
  seed : int64;
  sample : int;  (** the first [sample] shards are stream-checked *)
  drain_every : int;  (** trace drain cadence, in scheduler decisions *)
}

val default : config
val validate : config -> unit
(** @raise Invalid_argument on any ill-formed field. *)

val shard_of_key : shards:int -> int -> int
(** The key hash: a SplitMix64-style finalizer reduced mod [shards]. *)

val ops_per_shard : config -> int array
(** Per-shard operation counts under the key hash ([O(keys)] to
    compute).  Sums to [ops]. *)

type shard = {
  index : int;
  shard_ops : int;  (** operations completed (trace responds) *)
  sessions : int;  (** client sessions driven through the slots *)
  steps : int;
  completed : bool;
  stalled : bool;
  sampled : bool;
  segments : int;  (** streaming-checker verdicts (sampled shards only) *)
  fails : int;  (** [Fail] verdicts — must be 0 on healthy runs *)
  unknowns : int;
  sends : int;
  delivered : int;
  attempts : int;  (** delivery attempts ([net.delivery_attempts]) *)
  coalesced : int;  (** extra messages moved by batching *)
  recycles : int;
}

type report = {
  config : config;
  shards_r : shard list;  (** ascending shard index *)
  total_ops : int;
  total_sessions : int;
  total_steps : int;
  total_attempts : int;
  total_delivered : int;
  total_coalesced : int;
  total_segments : int;
  total_fails : int;
  total_unknowns : int;
  completed : bool;  (** every shard completed without stalling *)
}

val run : ?jobs:int -> ?metrics:Obs.Metrics.t -> config -> report
(** Execute the fleet: one {!Simkit.Pool.map_runs} task per shard, each
    with a private metric registry merged into [metrics] (default
    {!Obs.Metrics.global}) in shard order.  Deterministic in the config
    alone; carries no wall clock (throughput is the caller's
    measurement).
    @raise Invalid_argument if {!validate} does. *)

val attempts_per_op : report -> float
(** [total_attempts / total_ops] — the amortization figure the batched
    vs. unbatched bench rows compare. *)

val config_json : config -> Obs.Json.t
val shard_json : shard -> Obs.Json.t

val report_json : report -> Obs.Json.t
(** [{"kind":"fleet_report",…}]; wall-clock-free, so reports diff clean
    across [-j]. *)

val pp : Format.formatter -> report -> unit
