module V = History.Value
module Sched = Simkit.Sched
module Trace = Simkit.Trace
module Rng = Simkit.Rng
module Faults = Simkit.Faults
module Pool = Simkit.Pool
module Net = Msgpass.Net
module Abd = Msgpass.Abd
module Mwabd = Msgpass.Mwabd

(* The fleet-scale workload engine (DESIGN.md §17): a key-space of
   register shards, each an independent ABD / MW-ABD group with its own
   scheduler and network, driven by a generational pool of short-lived
   client sessions.  Shards never share mutable state, so they fan out
   over domains with Pool.map_runs and the whole report is a function of
   the config alone — byte-identical at any [jobs].

   Memory discipline (the 1M+-op requirement): client sessions recycle a
   fixed set of fiber slots (Sched.recycle), the trace is drained on a
   fixed decision cadence and fed to the streaming checker (or dropped),
   and each replica's stable log auto-compacts — so every structure is
   bounded by the configuration, not the operation count. *)

type proto = Sw | Mw

type config = {
  shards : int;
  n : int;
  proto : proto;
  slots : int;
  ops : int;
  session_len : int;
  write_ratio : float;
  keys : int;
  faults : Faults.plan;
  persist : [ `Every | `Never ];
  batch_window : int;
  batch_max : int;
  seed : int64;
  sample : int;
  drain_every : int;
}

let default =
  {
    shards = 4;
    n = 3;
    proto = Sw;
    slots = 4;
    ops = 10_000;
    session_len = 4;
    write_ratio = 0.2;
    keys = 64;
    faults = Faults.none;
    persist = `Every;
    batch_window = 0;
    batch_max = 1;
    seed = 1L;
    sample = 1;
    drain_every = 512;
  }

let validate c =
  let bad msg = invalid_arg ("Fleet: " ^ msg) in
  if c.shards < 1 then bad "shards must be >= 1";
  if c.n < 2 || c.n >= 100 then bad "n must be in [2, 100)";
  if c.slots < 1 then bad "slots must be >= 1";
  (* client slots live at pids n .. n+slots-1 (plus pid 0, the Sw
     writer); server pids start at 100, so the two ranges must not meet *)
  if c.n + c.slots > 100 then bad "n + slots must be <= 100";
  if c.ops < 1 then bad "ops must be >= 1";
  if c.session_len < 1 then bad "session_len must be >= 1";
  if c.write_ratio < 0. || c.write_ratio > 1. then
    bad "write_ratio must be in [0, 1]";
  if c.keys < 1 then bad "keys must be >= 1";
  if c.sample < 0 || c.sample > c.shards then
    bad "sample must be in [0, shards]";
  if c.drain_every < 1 then bad "drain_every must be >= 1";
  if c.batch_window < 0 then bad "batch_window must be >= 0";
  if c.batch_max < 1 then bad "batch_max must be >= 1";
  Faults.validate c.faults;
  (* every shard applies the same plan to its own node set; Sw's writer
     client is node 0's fiber, so node 0 must survive *)
  let clients = match c.proto with Sw -> [ 0 ] | Mw -> [] in
  Msgpass.Runs.validate_crash_schedule
    ~recoveries:c.faults.Faults.recover_at ~what:"Fleet" ~n:c.n ~clients
    c.faults.Faults.crash_at

(* ----- the key space ---------------------------------------------------------- *)

(* key -> shard by a SplitMix64-style finalizer: adjacent keys land on
   avalanche-decorrelated shards, so hot key ranges spread instead of
   pinning one group *)
let shard_of_key ~shards key =
  let z = Int64.add (Int64.of_int key) 0x9E3779B97F4A7C15L in
  let z = Int64.logxor z (Int64.shift_right_logical z 30) in
  let z = Int64.mul z 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) in
  let z = Int64.mul z 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.rem (Int64.logand z Int64.max_int) (Int64.of_int shards))

(* operation i carries key (i mod keys); a shard's load is the op count
   of the keys hashing to it.  O(keys) to compute, whatever [ops] is. *)
let ops_per_shard c =
  let per = Array.make c.shards 0 in
  let keys = min c.keys c.ops in
  for k = 0 to keys - 1 do
    let count = (c.ops / keys) + (if k < c.ops mod keys then 1 else 0) in
    let s = shard_of_key ~shards:c.shards k in
    per.(s) <- per.(s) + count
  done;
  per

(* ----- per-shard seeds (the chaos task_seed discipline) ----------------------- *)

let golden = 0x9E3779B97F4A7C15L
let shard_seed ~seed i = Int64.add seed (Int64.mul (Int64.of_int (i + 1)) golden)
let fault_seed s = Int64.logxor s 0xFA17FA17L

(* ----- results ---------------------------------------------------------------- *)

type shard = {
  index : int;
  shard_ops : int;  (** operations completed (trace responds) *)
  sessions : int;  (** client sessions driven through the slots *)
  steps : int;
  completed : bool;
  stalled : bool;
  sampled : bool;
  segments : int;  (** streaming-checker verdicts (sampled shards only) *)
  fails : int;
  unknowns : int;
  sends : int;
  delivered : int;
  attempts : int;  (** delivery attempts (net.delivery_attempts) *)
  coalesced : int;
  recycles : int;
}

type report = {
  config : config;
  shards_r : shard list;
  total_ops : int;
  total_sessions : int;
  total_steps : int;
  total_attempts : int;
  total_delivered : int;
  total_coalesced : int;
  total_segments : int;
  total_fails : int;
  total_unknowns : int;
  completed : bool;
}

(* ----- one shard -------------------------------------------------------------- *)

let run_shard ~metrics (c : config) ~index ~ops =
  let seed = shard_seed ~seed:c.seed index in
  let sched = Sched.create ~seed ~metrics () in
  let name = Printf.sprintf "S%d" index in
  let sampled = index < c.sample in
  let seg =
    if not sampled then None
    else
      Some
        (Serve.Segmenter.create ~metrics ~config:Serve.Segmenter.default_config
           ~obj:name
           ~entry:(Serve.Segmenter.entry_exact [ V.Int 0 ])
           ~index:0 ())
  in
  let segments = ref 0 and fails = ref 0 and unknowns = ref 0 in
  let note = function
    | None -> ()
    | Some v -> (
        incr segments;
        match v.Serve.Verdict.outcome with
        | Serve.Verdict.Fail -> incr fails
        | Serve.Verdict.Unknown _ -> incr unknowns
        | Serve.Verdict.Ok_ -> ())
  in
  (* drained trace entries go to the streaming checker on sampled shards
     and are dropped on the rest — either way the trace never grows past
     one drain interval *)
  let feed entries =
    match seg with
    | None -> ()
    | Some s ->
        List.iter
          (function
            | Trace.Ev { History.Event.event; time } -> (
                match event with
                | History.Event.Invoke { op_id; kind; _ } -> (
                    match Serve.Segmenter.invoke s ~id:op_id ~kind ~time with
                    | Ok () | Error _ -> ())
                | History.Event.Respond { op_id; result } -> (
                    match Serve.Segmenter.respond s ~id:op_id ~result ~time with
                    | Ok v -> note v
                    | Error _ -> ()))
            | _ -> ())
          entries
  in
  let fpolicy =
    if Faults.is_benign c.faults then None
    else Some (Faults.create ~seed:(fault_seed seed) c.faults)
  in
  (* generic over the register's message type, like Runs.execute_config *)
  let drive net ~crash ~recover ~write ~read =
    Option.iter (Net.set_faults net) fpolicy;
    Net.set_batching net ~window:c.batch_window ~max:c.batch_max;
    (* slot layout: Sw's writer client is node 0's fiber (Abd.write must
       run there); every other slot lives above the node range so a
       crash_at node never takes a client slot down with it *)
    let slot_pid = function
      | 0 when c.proto = Sw -> 0
      | s -> c.n + (if c.proto = Sw then s - 1 else s)
    in
    (* exact per-slot quotas, fixed up front: Sw sends every write
       through slot 0; Mw deals writes round-robin.  Reads fill the
       remaining capacity round-robin from the last slot backwards, so
       read load spreads even when writes saturate the first slots. *)
    let writes =
      let w = int_of_float (Float.round (c.write_ratio *. float_of_int ops)) in
      max 0 (min ops w)
    in
    let w_left = Array.make c.slots 0 and r_left = Array.make c.slots 0 in
    (match c.proto with
    | Sw -> w_left.(0) <- writes
    | Mw ->
        for i = 0 to writes - 1 do
          let s = i mod c.slots in
          w_left.(s) <- w_left.(s) + 1
        done);
    for i = 0 to ops - writes - 1 do
      let s = c.slots - 1 - (i mod c.slots) in
      r_left.(s) <- r_left.(s) + 1
    done;
    let remaining = Array.init c.slots (fun s -> w_left.(s) + r_left.(s)) in
    (* per-slot op-order RNG (Mw mix): draws happen only in the slot's
       own fiber, so the stream depends on the slot, not the schedule *)
    let slot_rng =
      Array.init c.slots (fun s ->
          Rng.split
            (Rng.create (Int64.add seed (Int64.mul (Int64.of_int (s + 1)) golden))))
    in
    (* write values cycle through a domain smaller than the segmenter's
       values_cap (64): after an op-cap segment the entry set is the
       domain plus the initial value, still materializable, so one
       Unknown segment never degrades the segments after it *)
    let value_domain = 48 in
    let next_value = ref 0 in
    let next_op slot =
      let w = w_left.(slot) > 0 and r = r_left.(slot) > 0 in
      let is_write =
        match c.proto with
        | Sw -> w (* writes first; slot 0 may carry reads after them *)
        | Mw -> if w && r then Rng.float slot_rng.(slot) < c.write_ratio else w
      in
      if is_write then begin
        w_left.(slot) <- w_left.(slot) - 1;
        incr next_value;
        write (slot_pid slot) (1 + ((!next_value - 1) mod value_domain))
      end
      else begin
        r_left.(slot) <- r_left.(slot) - 1;
        read (slot_pid slot)
      end
    in
    (* the generational pool: each session is one occupant of a slot; on
       normal termination it queues its slot for recycling and the policy
       installs the next session in place — no scheduler growth *)
    let finished = Queue.create () in
    let sessions = ref 0 in
    let live = ref 0 in
    let session slot k () =
      for _ = 1 to k do
        next_op slot
      done;
      incr sessions;
      Queue.push slot finished
    in
    let start_session ~via slot =
      let k = min c.session_len remaining.(slot) in
      remaining.(slot) <- remaining.(slot) - k;
      via (slot_pid slot) (session slot k)
    in
    for slot = 0 to c.slots - 1 do
      if remaining.(slot) > 0 then begin
        incr live;
        start_session ~via:(fun pid f -> Sched.spawn sched ~pid f) slot
      end
    done;
    let rng = Rng.create (Int64.logxor seed 0x7E57AB1EL) in
    let rand_pol = Sched.random_policy rng in
    let decisions = ref 0 in
    let base s =
      incr decisions;
      while not (Queue.is_empty finished) do
        let slot = Queue.pop finished in
        if remaining.(slot) > 0 then
          start_session ~via:(fun pid f -> Sched.recycle sched ~pid f) slot
        else decr live
      done;
      (match fpolicy with
      | Some f ->
          let step = Sched.steps sched in
          List.iter crash (Faults.crashes_due f ~step);
          List.iter recover (Faults.recoveries_due f ~step)
      | None -> ());
      if !decisions mod c.drain_every = 0 then
        feed (Trace.drain (Sched.trace sched));
      if !live = 0 then Sched.Halt else rand_pol s
    in
    let policy = Net.auto_deliver_policy net ~rng base in
    let max_steps =
      (ops * c.n * 800) + (2_000 * List.length c.faults.Faults.recover_at)
    in
    let stalled = ref false in
    let steps =
      try Sched.run sched ~watchdog:(Net.watchdog net) ~policy ~max_steps
      with Sched.Stalled _ ->
        stalled := true;
        Sched.steps sched
    in
    feed (Trace.drain (Sched.trace sched));
    note (Option.bind seg Serve.Segmenter.flush);
    let counter = Obs.Metrics.counter metrics in
    {
      index;
      shard_ops = counter "trace.responds";
      sessions = !sessions;
      steps;
      completed = !live = 0;
      stalled = !stalled;
      sampled;
      segments = !segments;
      fails = !fails;
      unknowns = !unknowns;
      sends = counter "net.sends";
      delivered = counter "net.delivered";
      attempts = counter "net.delivery_attempts";
      coalesced = counter "net.batch.coalesced";
      recycles = counter "sched.recycles";
    }
  in
  match c.proto with
  | Sw ->
      let reg =
        Abd.create ~persist:c.persist ~compact:true ~sched ~name ~n:c.n
          ~writer:0 ~init:0 ()
      in
      drive (Abd.net reg)
        ~crash:(fun node -> Abd.crash_node reg ~node)
        ~recover:(fun node -> Abd.recover_node reg ~node)
        ~write:(fun _pid v -> Abd.write reg v)
        ~read:(fun pid -> ignore (Abd.read reg ~reader:pid))
  | Mw ->
      let reg =
        Mwabd.create ~persist:c.persist ~compact:true ~sched ~name ~n:c.n
          ~init:0 ()
      in
      drive (Mwabd.net reg)
        ~crash:(fun node -> Mwabd.crash_node reg ~node)
        ~recover:(fun node -> Mwabd.recover_node reg ~node)
        ~write:(fun pid v -> Mwabd.write reg ~proc:pid v)
        ~read:(fun pid -> ignore (Mwabd.read reg ~reader:pid))

(* ----- the fleet -------------------------------------------------------------- *)

let run ?(jobs = 1) ?(metrics = Obs.Metrics.global) c =
  validate c;
  let per = ops_per_shard c in
  let results =
    Pool.map_runs ~jobs ~metrics c.shards (fun ~metrics i ->
        run_shard ~metrics c ~index:i ~ops:per.(i))
  in
  let shards_r = Array.to_list results in
  let sum f = List.fold_left (fun a s -> a + f s) 0 shards_r in
  {
    config = c;
    shards_r;
    total_ops = sum (fun s -> s.shard_ops);
    total_sessions = sum (fun s -> s.sessions);
    total_steps = sum (fun s -> s.steps);
    total_attempts = sum (fun s -> s.attempts);
    total_delivered = sum (fun s -> s.delivered);
    total_coalesced = sum (fun s -> s.coalesced);
    total_segments = sum (fun s -> s.segments);
    total_fails = sum (fun s -> s.fails);
    total_unknowns = sum (fun s -> s.unknowns);
    completed =
      List.for_all (fun (s : shard) -> s.completed && not s.stalled) shards_r;
  }

(* ----- reporting -------------------------------------------------------------- *)

let config_json c =
  Obs.Json.Obj
    [
      ("kind", Obs.Json.Str "fleet_config");
      ("shards", Obs.Json.Int c.shards);
      ("n", Obs.Json.Int c.n);
      ("proto", Obs.Json.Str (match c.proto with Sw -> "abd" | Mw -> "mwabd"));
      ("slots", Obs.Json.Int c.slots);
      ("ops", Obs.Json.Int c.ops);
      ("session_len", Obs.Json.Int c.session_len);
      ("write_ratio", Obs.Json.Float c.write_ratio);
      ("keys", Obs.Json.Int c.keys);
      ("faults", Faults.plan_json c.faults);
      ( "persist",
        Obs.Json.Str (match c.persist with `Every -> "every" | `Never -> "never")
      );
      ("batch_window", Obs.Json.Int c.batch_window);
      ("batch_max", Obs.Json.Int c.batch_max);
      ("seed", Obs.Json.Str (Int64.to_string c.seed));
      ("sample", Obs.Json.Int c.sample);
      ("drain_every", Obs.Json.Int c.drain_every);
    ]

let shard_json s =
  Obs.Json.Obj
    [
      ("index", Obs.Json.Int s.index);
      ("ops", Obs.Json.Int s.shard_ops);
      ("sessions", Obs.Json.Int s.sessions);
      ("steps", Obs.Json.Int s.steps);
      ("completed", Obs.Json.Bool s.completed);
      ("stalled", Obs.Json.Bool s.stalled);
      ("sampled", Obs.Json.Bool s.sampled);
      ("segments", Obs.Json.Int s.segments);
      ("fails", Obs.Json.Int s.fails);
      ("unknowns", Obs.Json.Int s.unknowns);
      ("sends", Obs.Json.Int s.sends);
      ("delivered", Obs.Json.Int s.delivered);
      ("attempts", Obs.Json.Int s.attempts);
      ("coalesced", Obs.Json.Int s.coalesced);
      ("recycles", Obs.Json.Int s.recycles);
    ]

(* deliberately no wall-clock field: CI diffs these across [-j] *)
let report_json r =
  Obs.Json.Obj
    [
      ("kind", Obs.Json.Str "fleet_report");
      ("config", config_json r.config);
      ("ops", Obs.Json.Int r.total_ops);
      ("sessions", Obs.Json.Int r.total_sessions);
      ("steps", Obs.Json.Int r.total_steps);
      ("attempts", Obs.Json.Int r.total_attempts);
      ("delivered", Obs.Json.Int r.total_delivered);
      ("coalesced", Obs.Json.Int r.total_coalesced);
      ("segments", Obs.Json.Int r.total_segments);
      ("fails", Obs.Json.Int r.total_fails);
      ("unknowns", Obs.Json.Int r.total_unknowns);
      ("completed", Obs.Json.Bool r.completed);
      ("shards", Obs.Json.List (List.map shard_json r.shards_r));
    ]

(* delivery attempts per quorum operation: the number the batched vs.
   unbatched bench rows compare (batching amortizes quorum round-trips,
   so this drops when coalescing is on) *)
let attempts_per_op r =
  if r.total_ops = 0 then 0.
  else float_of_int r.total_attempts /. float_of_int r.total_ops

let pp fmt r =
  Format.fprintf fmt
    "@[<v>fleet: %d shards x %d nodes (%s), %d ops, %d sessions over %d \
     slots/shard@,\
     steps %d, delivery attempts %d (%.2f/op), coalesced %d@,\
     sampled shards: %d segments, %d fail, %d unknown@,\
     %s@]"
    r.config.shards r.config.n
    (match r.config.proto with Sw -> "abd" | Mw -> "mwabd")
    r.total_ops r.total_sessions r.config.slots r.total_steps r.total_attempts
    (attempts_per_op r) r.total_coalesced r.total_segments r.total_fails
    r.total_unknowns
    (if r.completed then "all shards completed" else "INCOMPLETE/STALLED")
