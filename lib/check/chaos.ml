module Config = Msgpass.Runs.Config
module Faults = Simkit.Faults
module Rng = Simkit.Rng
module Pool = Simkit.Pool

type bug = Quorum_too_small | Unsafe_recovery

let pick rng xs = List.nth xs (Rng.int rng (List.length xs))

(* the generator stays below the top prob_ladder rungs: heavy loss is the
   shrinker's territory, the search must never trip the termination
   monitor on healthy code *)
let gen_rungs = [ 0.; 0.01; 0.02; 0.05; 0.1; 0.15; 0.2 ]

(* Per-index stream: configs depend only on (seed, index), never on
   scheduling order.  The [split] matters — it routes the raw counter
   through the SplitMix finalizer twice, so adjacent indices get
   avalanche-decorrelated streams rather than one stream offset by a
   draw (which is what a golden-gamma stride alone would produce). *)
let task_seed ~seed index =
  Int64.add seed (Int64.mul (Int64.of_int (index + 1)) 0x9E3779B97F4A7C15L)

let gen_config ?inject ~seed index =
  let rng = Rng.split (Rng.create (task_seed ~seed index)) in
  let proto = if Rng.bool rng then Config.Sw else Config.Mw in
  let n =
    match inject with
    (* the seeded recovery bug needs room for a crash+recover pair
       alongside the clients, so pin the 5-node topology *)
    | Some Unsafe_recovery -> 5
    | Some Quorum_too_small | None -> if Rng.bool rng then 3 else 5
  in
  let writers =
    match proto with
    | Config.Sw -> [ 0 ]
    | Config.Mw -> if n = 5 && Rng.bool rng then [ 0; 1 ] else [ 0 ]
  in
  let rest = List.filter (fun x -> not (List.mem x writers)) (List.init n Fun.id) in
  let n_readers = 1 + Rng.int rng 2 in
  let readers = List.filteri (fun i _ -> i < n_readers) rest in
  let writes_each = 1 + Rng.int rng 3 in
  let reads_each = Rng.int rng 4 in
  let drop = pick rng gen_rungs in
  let duplicate = pick rng gen_rungs in
  let delay = pick rng gen_rungs in
  let delay_bound = if delay > 0. then pick rng [ 2; 5; 10 ] else 0 in
  let clients = writers @ readers in
  let crashable =
    List.filter (fun x -> not (List.mem x clients)) (List.init n Fun.id)
  in
  let max_crashes = min (List.length crashable) ((n - 1) / 2) in
  let n_crashes =
    match inject with
    | Some Unsafe_recovery -> 1 + Rng.int rng max_crashes (* >= 1 pair *)
    | Some Quorum_too_small | None -> Rng.int rng (max_crashes + 1)
  in
  let crash_at =
    List.filteri (fun i _ -> i < n_crashes) crashable
    |> List.map (fun node ->
           (* amnesia needs the pair to land while the run is still
              stepping (short runs finish within a few hundred steps),
              after the node has absorbed un-persisted state — so the
              injected bug crashes early; clean searches roam wide *)
           let step =
             match inject with
             | Some Unsafe_recovery -> 30 + Rng.int rng 120
             | Some Quorum_too_small | None -> Rng.int rng 1500
           in
           (step, node))
  in
  (* the recovery lattice: each crashed node may restart later in the
     run.  Clean searches draw the pairing (and the persist policy)
     randomly — safe recoveries must never trip a monitor; the injected
     recovery bug pairs every crash so amnesia is reachable. *)
  let recover_at =
    List.filter_map
      (fun (s, node) ->
        match inject with
        | Some Unsafe_recovery -> Some (s + 30 + Rng.int rng 90, node)
        | Some Quorum_too_small | None ->
            if Rng.bool rng then Some (s + 100 + Rng.int rng 1200, node)
            else None)
      crash_at
  in
  let partitions =
    if Rng.int rng 4 = 0 then
      [ (Rng.int rng 800, 100 + Rng.int rng 300, [ Rng.int rng n ]) ]
    else []
  in
  let policy = if Rng.int rng 4 = 0 then `Round_robin else `Random in
  let quorum =
    match inject with
    | Some Quorum_too_small -> Some (n / 2) (* majority - 1: no intersection *)
    | Some Unsafe_recovery | None -> None
  in
  let persist, unsafe_recovery =
    match inject with
    (* nothing durable + no handshake: recovery rolls the replica back *)
    | Some Unsafe_recovery -> (`Never, true)
    | Some Quorum_too_small | None ->
        ((if Rng.int rng 4 = 0 then `Never else `Every), false)
  in
  (* the batching lattice: a quarter of clean searches turn on
     per-destination delivery coalescing (Net.set_batching) — batching
     preserves per-message fault draws, so a batched healthy run must
     never trip a monitor.  The injected-bug searches stay unbatched:
     their crash/step windows are tuned to the unbatched delivery rate. *)
  let batch_window, batch_max =
    match inject with
    | Some Unsafe_recovery | Some Quorum_too_small -> (0, 1)
    | None ->
        if Rng.int rng 4 = 0 then
          (pick rng [ 4; 8; 16 ], pick rng [ 2; 4; 8 ])
        else (0, 1)
  in
  let c =
    {
      Config.proto;
      n;
      writers;
      writes_each;
      readers;
      reads_each;
      faults =
        {
          Faults.drop;
          duplicate;
          delay;
          delay_bound;
          crash_at;
          recover_at;
          partitions;
        };
      seed = Rng.next_int64 rng;
      policy;
      max_steps = None;
      quorum;
      persist;
      unsafe_recovery;
      batch_window;
      batch_max;
    }
  in
  Config.validate c;
  c

type finding = {
  index : int;
  original : Config.t;
  first : Monitor.violation;
  shrunk : Shrink.outcome;
  postmortem : Obs.Tracer.event list;
}

type report = { seed : int64; budget : int; findings : finding list }

let search ?(monitors = Monitor.standard) ?(jobs = 1) ?(check_jobs = 1) ?inject
    ?(shrink_attempts = 400) ?(flight = false) ?(flight_k = 200) ?telemetry
    ~seed ~budget () =
  (* substitute once: the find phase, the shrinker's oracle and the
     post-mortems then all audit with the same (jobs-invariant) monitor
     list, so reports stay byte-identical at every [check_jobs] *)
  let monitors = Monitor.with_check_jobs ~jobs:check_jobs monitors in
  let metrics =
    match telemetry with Some m -> m | None -> Obs.Metrics.create ()
  in
  (* the parallel part is pure per-index search; shrinking runs
     sequentially afterwards, in index order, so the whole report is a
     function of (seed, budget) alone — byte-identical at any [-j].
     Flight-recorder post-mortems are likewise sequential re-executions
     of the (deterministic) shrunk configs: the tracer is not shared
     across domains, and the canonical events carry no wall clock. *)
  let hits =
    Pool.map_runs ~jobs ~metrics budget (fun ~metrics i ->
        let c = gen_config ?inject ~seed i in
        match Monitor.run_config ~monitors ~telemetry:metrics c with
        | None -> None
        | Some v -> Some (i, c, v))
  in
  let findings =
    Array.to_list hits
    |> List.filter_map Fun.id
    |> List.map (fun (index, original, first) ->
           let shrunk =
             Shrink.minimize ~monitors ~max_attempts:shrink_attempts
               ~violation:first original
           in
           let postmortem =
             if not flight then []
             else
               match
                 Monitor.postmortem ~monitors ~k:flight_k
                   shrunk.Shrink.config
               with
               | Some (_, events) -> events
               | None -> [] (* shrink oracle guarantees this can't happen *)
           in
           { index; original; first; shrunk; postmortem })
  in
  { seed; budget; findings }

let to_entries report =
  List.map
    (fun f ->
      {
        Corpus.config = f.shrunk.Shrink.config;
        violation = f.shrunk.Shrink.violation;
        original = Some f.original;
        shrink_attempts = f.shrunk.Shrink.attempts;
        postmortem = List.map (fun ev -> Obs.Tracer.event_json ev) f.postmortem;
      })
    report.findings

let finding_json f =
  Obs.Json.Obj
    [
      ("index", Obs.Json.Int f.index);
      ("first", Monitor.violation_json f.first);
      ("violation", Monitor.violation_json f.shrunk.Shrink.violation);
      ("original", Config.json f.original);
      ("minimal", Config.json f.shrunk.Shrink.config);
      ("shrink_attempts", Obs.Json.Int f.shrunk.Shrink.attempts);
      ("shrink_steps", Obs.Json.Int f.shrunk.Shrink.steps);
      (* a count, not the events: reports stay compact and diff clean
         whether or not the recorder ran (see the corpus for the events) *)
      ("postmortem_events", Obs.Json.Int (List.length f.postmortem));
    ]

(* deliberately no wall-clock field: CI diffs these across [-j] *)
let report_json r =
  Obs.Json.Obj
    [
      ("kind", Obs.Json.Str "chaos_report");
      ("seed", Obs.Json.Str (Int64.to_string r.seed));
      ("budget", Obs.Json.Int r.budget);
      ("violations", Obs.Json.Int (List.length r.findings));
      ("findings", Obs.Json.List (List.map finding_json r.findings));
    ]
