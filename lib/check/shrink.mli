(** Delta-debugging shrinker for chaos counterexamples.

    Given a config that tripped a monitor, descend the shrink lattice —
    fault probabilities one ladder rung at a time towards 0, the crash
    schedule and partitions by subset, workload operation counts towards
    a single write, the step budget by halving — accepting a neighbour
    only when re-executing it still trips the {e same} monitor.  Every
    step re-runs deterministically from the candidate's recorded seed, so
    shrinking is reproducible and its result is a valid corpus entry. *)

val candidates : Msgpass.Runs.Config.t -> Msgpass.Runs.Config.t list
(** One round of strictly-simpler valid neighbours, in a fixed
    deterministic order (fault plan, then workload, then budget).
    Exposed for the lattice tests. *)

type outcome = {
  config : Msgpass.Runs.Config.t;  (** the minimal failing config *)
  violation : Monitor.violation;  (** its violation (same monitor) *)
  attempts : int;  (** oracle executions performed *)
  steps : int;  (** accepted reductions *)
  exhausted : bool;  (** stopped on the attempt budget, not a fixpoint *)
}

val minimize :
  ?monitors:Monitor.t list ->
  ?max_attempts:int ->
  violation:Monitor.violation ->
  Msgpass.Runs.Config.t ->
  outcome
(** Greedy first-improvement descent to a fixpoint (no neighbour still
    fails the same way) or until [max_attempts] (default 400) oracle
    executions.  When [exhausted] is [false], the result is a fixpoint:
    minimizing it again accepts zero further reductions. *)
