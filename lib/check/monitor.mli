(** Online invariant monitors for chaos runs.

    A monitor audits one executed {!Msgpass.Runs.Config.t} — its run
    record and the private metric registry the execution recorded into —
    and reports at most one {!violation}.  Monitors are pure in the
    (config, run, metrics) triple, so re-executing a config reproduces
    its violation exactly; that is what makes the corpus replayable. *)

type violation = {
  monitor : string;
      (** which invariant failed: ["linearizability"],
          ["termination/stalled"], ["termination/budget"],
          ["quorum-sanity"] or ["recovery-sanity"] *)
  detail : string;  (** human-readable specifics *)
}

val violation_json : violation -> Obs.Json.t
(** [{"kind":"violation","monitor":…,"detail":…}]. *)

val violation_of_json : Obs.Json.t -> (violation, string) result

type t = {
  name : string;
  check :
    config:Msgpass.Runs.Config.t ->
    run:Msgpass.Runs.run ->
    metrics:Obs.Metrics.t ->
    violation option;
}

val linearizability : t
(** The run's projected history passes {!Linchk.Lincheck.check}.  Applies
    to incomplete runs too (pending operations are handled exactly). *)

val linearizability_jobs : jobs:int -> t
(** {!linearizability} with the checker's work-stealing parallel driver
    on [jobs] domains.  Reports the exact same violations at every
    [jobs] (the checker's verdicts are [jobs]-invariant), so the two are
    interchangeable; [jobs:1] {e is} {!linearizability}. *)

val with_check_jobs : jobs:int -> t list -> t list
(** Replace any monitor named ["linearizability"] with
    {!linearizability_jobs}[ ~jobs]; identity when [jobs <= 1] or the
    list has no such monitor. *)

val linearizability_streaming : t
(** The same invariant decided by the streaming path: the run's events
    fed one at a time through {!Serve.Segmenter}, segments retired at
    quiescent points, verdicts conjoined.  Reports the exact violations
    of {!linearizability} (same name, same detail string) on every run
    where no segment outgrows the checker's op cap — where both stay
    silent.  Not in {!standard}, so recorded corpora replay under the
    stock monitor byte-identically. *)

val with_streaming_check : t list -> t list
(** Replace any monitor named ["linearizability"] with
    {!linearizability_streaming}. *)

val termination : t
(** The run completed within its step budget and the watchdog never
    fired.  Reports as ["termination/stalled"] (with the structured
    watchdog diagnostic rendered) or ["termination/budget"] — two names,
    so the shrinker cannot silently trade one failure mode for the
    other. *)

val quorum_sanity : t
(** Every quorum round waited for enough replies to guarantee
    intersection ([2*need > n]), audited from the [reg.*.quorum.need]
    histogram.  Catches the test-only [quorum] override of
    {!Msgpass.Abd.create} even on schedules where the history happens to
    linearize anyway. *)

val recovery_sanity : t
(** No replica rejoined quorums after losing acknowledged state: the
    [reg.*.amnesia] counter (bumped by an [unsafe_recovery] restart whose
    crash dropped un-persisted records, see {!Msgpass.Abd.recover_node})
    must stay 0.  Catches the test-only [unsafe_recovery + `Never] bug
    even on schedules where the history happens to linearize anyway. *)

val standard : t list
(** [linearizability; termination; quorum_sanity; recovery_sanity], in
    that order. *)

val run_config :
  ?monitors:t list ->
  ?check_jobs:int ->
  ?telemetry:Obs.Metrics.t ->
  ?tracer:Obs.Tracer.t ->
  Msgpass.Runs.Config.t ->
  violation option
(** Execute the config against a fresh private registry and return the
    first violation ([monitors] order; default {!standard}).  The private
    registry is merged into [telemetry] afterwards when given, so
    parallel searches can aggregate without polluting the monitors'
    per-run view.  An armed [tracer] (default {!Obs.Tracer.null})
    receives the run's scheduler/network/register events.
    [check_jobs] (default 1) applies {!with_check_jobs} to [monitors].
    Deterministic in the config, at every [check_jobs]. *)

val postmortem :
  ?monitors:t list ->
  ?check_jobs:int ->
  ?k:int ->
  Msgpass.Runs.Config.t ->
  (violation * Obs.Tracer.event list) option
(** Re-execute the config with an armed flight recorder of capacity [k]
    (default 200) and return the violation together with the last events
    the ring retained — the causal post-mortem attached to corpus
    entries.  [None] if no monitor trips (e.g. after a fix).  Sequential
    and deterministic: same config, same events, byte-for-byte (event
    wall-clock stamps are excluded from the canonical serialization). *)
