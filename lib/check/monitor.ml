module Runs = Msgpass.Runs
module Sched = Simkit.Sched

type violation = { monitor : string; detail : string }

let violation_json v =
  Obs.Json.Obj
    [
      ("kind", Obs.Json.Str "violation");
      ("monitor", Obs.Json.Str v.monitor);
      ("detail", Obs.Json.Str v.detail);
    ]

let violation_of_json j =
  match
    ( Option.bind (Obs.Json.member "monitor" j) Obs.Json.to_string_opt,
      Option.bind (Obs.Json.member "detail" j) Obs.Json.to_string_opt )
  with
  | Some monitor, Some detail -> Ok { monitor; detail }
  | _ -> Error "Monitor.violation_of_json: missing \"monitor\" or \"detail\""

type t = {
  name : string;
  check :
    config:Runs.Config.t ->
    run:Runs.run ->
    metrics:Obs.Metrics.t ->
    violation option;
}

(* Lincheck is exact on partial histories (pending operations are
   handled), so a stalled or budget-exhausted run is still audited: an
   incomplete run must merely be linearizable so far.  [jobs] selects
   the checker's parallel driver; its verdicts are identical at every
   [jobs] (Lincheck's lowest-index-success rule), so swapping it in
   never changes what a monitor reports. *)
let linearizability_jobs ~jobs =
  {
    name = "linearizability";
    check =
      (fun ~config:_ ~run ~metrics ->
        match
          Linchk.Lincheck.check ~metrics ~jobs ~init:(History.Value.Int 0)
            run.Runs.history
        with
        | true -> None
        | false ->
            Some
              {
                monitor = "linearizability";
                detail =
                  Printf.sprintf "history of %d ops is not linearizable"
                    (History.Hist.length run.Runs.history);
              }
        | exception Linchk.Lincheck.Too_large _ ->
            (* unreachable for chaos-sized workloads; never misreport *)
            None);
  }

let linearizability = linearizability_jobs ~jobs:1

(* Two distinct names on purpose: a watchdog stall and a plain budget
   exhaustion are different bugs, and the shrinker's same-monitor oracle
   must not let one degenerate into the other while minimizing. *)
let termination =
  {
    name = "termination";
    check =
      (fun ~config ~run ~metrics:_ ->
        match run.Runs.stalled with
        | Some diag ->
            Some
              {
                monitor = "termination/stalled";
                detail = Sched.stall_message diag;
              }
        | None ->
            if run.Runs.completed then None
            else
              Some
                {
                  monitor = "termination/budget";
                  detail =
                    Printf.sprintf
                      "clients still running after %d steps (budget %d)"
                      run.Runs.steps
                      (match config.Runs.Config.max_steps with
                      | Some m -> m
                      | None -> Runs.Config.auto_max_steps config);
                });
  }

(* Every quorum round records the reply count it waited for in the
   [reg.*.quorum.need] histogram; intersection needs 2*q > n.  This is
   what catches the injected [quorum = majority - 1] bug even on runs
   whose histories happen to linearize. *)
let quorum_sanity =
  {
    name = "quorum-sanity";
    check =
      (fun ~config ~run:_ ~metrics ->
        let hist =
          match config.Runs.Config.proto with
          | Runs.Config.Sw -> "reg.abd.quorum.need"
          | Runs.Config.Mw -> "reg.mwabd.quorum.need"
        in
        match Obs.Metrics.summary metrics hist with
        | None -> None (* no round ran; nothing to audit *)
        | Some s ->
            let n = config.Runs.Config.n in
            let need = int_of_float s.Obs.Metrics.min in
            if 2 * need > n then None
            else
              Some
                {
                  monitor = "quorum-sanity";
                  detail =
                    Printf.sprintf
                      "a round waited for only %d of %d replies: quorums \
                       need not intersect"
                      need n;
                });
  }

(* Every unsafe recovery that actually lost acknowledged state bumps the
   [reg.*.amnesia] counter (see [Abd.recover_node]): the replica rejoined
   quorums with a rolled-back copy, so quorum intersection no longer
   spans the crash.  This is what catches the injected
   [unsafe_recovery + `Never] bug even on runs whose histories happen to
   linearize. *)
let recovery_sanity =
  {
    name = "recovery-sanity";
    check =
      (fun ~config ~run:_ ~metrics ->
        let ctr =
          match config.Runs.Config.proto with
          | Runs.Config.Sw -> "reg.abd.amnesia"
          | Runs.Config.Mw -> "reg.mwabd.amnesia"
        in
        let lost = Obs.Metrics.counter metrics ctr in
        if lost = 0 then None
        else
          Some
            {
              monitor = "recovery-sanity";
              detail =
                Printf.sprintf
                  "%d unsafe recover%s rejoined quorums after losing \
                   acknowledged state: quorum intersection does not span \
                   the crash"
                  lost
                  (if lost = 1 then "y" else "ies");
            });
  }

(* The same invariant decided by the streaming path: the run's events
   are fed one at a time through [Serve.Segmenter], which retires a
   segment at every quiescent point and conjoins the verdicts.  A [Fail]
   verdict reports the exact detail string of the offline monitor (the
   corpus stores violations by these strings); an [Unknown] — only
   possible if a segment outgrows the checker's op cap, where the
   offline monitor's [Too_large] escape also stays silent — reports
   nothing.  Not in {!standard}: the stock monitor remains the default
   so recorded corpora replay byte-identically. *)
let linearizability_streaming =
  {
    name = "linearizability";
    check =
      (fun ~config:_ ~run ~metrics ->
        let seg =
          Serve.Segmenter.create ~metrics
            ~config:Serve.Segmenter.default_config ~obj:"r"
            ~entry:(Serve.Segmenter.entry_exact [ History.Value.Int 0 ])
            ~index:0 ()
        in
        let failed = ref false in
        let note = function
          | Some { Serve.Verdict.outcome = Serve.Verdict.Fail; _ } ->
              failed := true
          | Some _ | None -> ()
        in
        List.iter
          (fun { History.Event.event; time } ->
            match event with
            | History.Event.Invoke { op_id; kind; _ } -> (
                match Serve.Segmenter.invoke seg ~id:op_id ~kind ~time with
                | Ok () | Error _ -> ())
            | History.Event.Respond { op_id; result } -> (
                match Serve.Segmenter.respond seg ~id:op_id ~result ~time with
                | Ok v -> note v
                | Error _ -> ()))
          (History.Hist.events run.Runs.history);
        note (Serve.Segmenter.flush seg);
        if !failed then
          Some
            {
              monitor = "linearizability";
              detail =
                Printf.sprintf "history of %d ops is not linearizable"
                  (History.Hist.length run.Runs.history);
            }
        else None);
  }

let standard = [ linearizability; termination; quorum_sanity; recovery_sanity ]

(* Swap the stock linearizability monitor for its [jobs]-domain variant.
   Sound because the checker's verdicts are [jobs]-invariant; a no-op on
   lists that don't contain the stock monitor. *)
let with_check_jobs ~jobs monitors =
  if jobs <= 1 then monitors
  else
    List.map
      (fun m ->
        if m.name = "linearizability" then linearizability_jobs ~jobs else m)
      monitors

(* Swap the stock linearizability monitor for the streaming decision
   path — same violations on every run where no segment outgrows the op
   cap (where both stay silent). *)
let with_streaming_check monitors =
  List.map
    (fun m ->
      if m.name = "linearizability" then linearizability_streaming else m)
    monitors

let run_config ?(monitors = standard) ?(check_jobs = 1) ?telemetry ?tracer
    config =
  let monitors = with_check_jobs ~jobs:check_jobs monitors in
  let metrics = Obs.Metrics.create () in
  let run = Runs.execute_config ~metrics ?tracer config in
  let v = List.find_map (fun m -> m.check ~config ~run ~metrics) monitors in
  Option.iter (fun into -> Obs.Metrics.merge ~into metrics) telemetry;
  v

(* Post-mortem: re-execute with an armed flight recorder of bounded
   capacity and keep what the ring retained.  Configs re-execute
   deterministically from their own seeds, so the violation — if still
   reported — is the same one, now with its last-K causal events. *)
let postmortem ?monitors ?check_jobs ?(k = 200) config =
  let tracer = Obs.Tracer.create ~capacity:k () in
  match run_config ?monitors ?check_jobs ~tracer config with
  | None -> None
  | Some v -> Some (v, Obs.Tracer.events tracer)
