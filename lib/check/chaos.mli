(** Randomized chaos search over run configurations.

    Samples (workload × fault plan × crash schedule × scheduler policy)
    configurations from a seed, executes each against the online
    {!Monitor}s, and delta-debugs every violation down to a minimal
    reproducer.  The whole report is a deterministic function of
    [(seed, budget)]: per-index config generation uses a SplitMix-style
    stride, the parallel phase runs under the {!Simkit.Pool} determinism
    contract, and shrinking is sequential in index order — so [-j 1] and
    [-j N] produce byte-identical reports. *)

(** Self-test fault injections proving the search → shrink → corpus loop
    catches real protocol bugs:
    - [Quorum_too_small]: configs whose [quorum] override is
      [majority - 1], breaking quorum intersection (E12);
    - [Unsafe_recovery]: configs pairing every crash with a recovery
      under [persist = `Never] and [unsafe_recovery = true], so a
      restarted replica rejoins quorums with rolled-back state (E14,
      caught by {!Monitor.recovery_sanity}). *)
type bug = Quorum_too_small | Unsafe_recovery

val gen_config :
  ?inject:bug -> seed:int64 -> int -> Msgpass.Runs.Config.t
(** The [index]-th config of stream [seed]; always {!Msgpass.Runs.Config.validate}-clean.
    Probabilities stay on the lower {!Simkit.Faults.prob_ladder} rungs,
    crash schedules are strict minorities of non-client nodes, and each
    crashed node may draw a paired later recovery (clean searches use
    the safe state-transfer handshake, so recoveries never trip a
    monitor on healthy code). *)

type finding = {
  index : int;  (** which sampled config *)
  original : Msgpass.Runs.Config.t;
  first : Monitor.violation;  (** as found, pre-shrink *)
  shrunk : Shrink.outcome;  (** the minimal reproducer *)
  postmortem : Obs.Tracer.event list;
      (** last-K flight-recorder events of a sequential re-execution of
          the shrunk config ([flight:true]); [[]] with the recorder off *)
}

type report = { seed : int64; budget : int; findings : finding list }

val search :
  ?monitors:Monitor.t list ->
  ?jobs:int ->
  ?check_jobs:int ->
  ?inject:bug ->
  ?shrink_attempts:int ->
  ?flight:bool ->
  ?flight_k:int ->
  ?telemetry:Obs.Metrics.t ->
  seed:int64 ->
  budget:int ->
  unit ->
  report
(** Execute configs [0..budget-1] on [jobs] domains (default 1), shrink
    every violation ([shrink_attempts] oracle executions each, default
    400).  Per-run metrics are folded into [telemetry] in index order
    when given.  [check_jobs] (default 1) runs the linearizability
    monitor's checker on that many domains ({!Monitor.with_check_jobs})
    throughout — find phase, shrink oracle and post-mortems; reports
    stay byte-identical at every [check_jobs] (and [jobs]) value.

    With [flight:true] every finding's shrunk config is re-executed
    sequentially under an armed flight recorder of capacity [flight_k]
    (default 200, see {!Monitor.postmortem}) and the retained events are
    attached.  The re-executions happen after the parallel phase and are
    deterministic, so reports and corpora stay byte-identical across
    [-j] values. *)

val to_entries : report -> Corpus.entry list
(** The findings as corpus entries (minimal config + violation +
    pre-shrink original + flight-recorder post-mortem when recorded). *)

val report_json : report -> Obs.Json.t
(** [{"kind":"chaos_report",…}] — carries no wall-clock or job-count
    fields, so reports from different [-j] runs diff clean.  Each finding
    reports its [postmortem_events] count; the events themselves live in
    the corpus entries. *)
