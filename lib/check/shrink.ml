module Runs = Msgpass.Runs
module Config = Msgpass.Runs.Config
module Faults = Simkit.Faults

let drop_nth xs i = List.filteri (fun j _ -> j <> i) xs

(* shrink candidates for an int field, most aggressive first: the floor,
   then halfway down, then one off *)
let int_steps v ~floor =
  if v <= floor then []
  else
    List.filter
      (fun x -> x < v)
      (List.sort_uniq Int.compare
         [ floor; floor + ((v - floor) / 2); v - 1 ])

let valid c = match Config.validate c with () -> true | exception _ -> false

(* One round of strictly-simpler neighbours, in a deterministic order:
   fault plan first (probabilities down the ladder, crash schedule by
   subset, partitions by subset), then workload size, then the step
   budget.  Each axis matches ISSUE/DESIGN's shrink lattice. *)
let candidates (c : Config.t) =
  let faults =
    List.map (fun p -> { c with Config.faults = p }) (Faults.shrink_plan c.faults)
  in
  let writes =
    List.map
      (fun w -> { c with Config.writes_each = w })
      (int_steps c.Config.writes_each ~floor:1)
  in
  let reads =
    List.map
      (fun r -> { c with Config.reads_each = r })
      (int_steps c.Config.reads_each ~floor:0)
  in
  let drop_readers =
    List.mapi
      (fun i _ -> { c with Config.readers = drop_nth c.Config.readers i })
      c.Config.readers
  in
  let drop_writers =
    match c.Config.proto with
    | Config.Sw -> []
    | Config.Mw ->
        if List.length c.Config.writers <= 1 then []
        else
          List.mapi
            (fun i _ -> { c with Config.writers = drop_nth c.Config.writers i })
            c.Config.writers
  in
  let budget =
    match c.Config.max_steps with
    | None -> []
    | Some m ->
        List.map
          (fun s -> { c with Config.max_steps = Some s })
          (int_steps m ~floor:1)
  in
  (* batching off first (the single biggest simplification: the repro
     stops depending on coalescing at all), then the window/max down *)
  let batching =
    if c.Config.batch_window = 0 && c.Config.batch_max = 1 then []
    else
      { c with Config.batch_window = 0; batch_max = 1 }
      :: List.map
           (fun w -> { c with Config.batch_window = w })
           (int_steps c.Config.batch_window ~floor:0)
      @ List.map
          (fun m -> { c with Config.batch_max = m })
          (int_steps c.Config.batch_max ~floor:1)
  in
  List.filter valid
    (faults @ batching @ writes @ reads @ drop_readers @ drop_writers @ budget)

type outcome = {
  config : Config.t;  (** the minimal failing config *)
  violation : Monitor.violation;  (** its violation (same monitor) *)
  attempts : int;  (** oracle executions performed *)
  steps : int;  (** accepted reductions *)
  exhausted : bool;  (** stopped on the attempt budget, not a fixpoint *)
}

(* Greedy first-improvement descent: take the first neighbour that still
   trips the SAME monitor, restart from it.  Every oracle call re-executes
   the candidate deterministically from its own seed, so the result
   depends only on (config, violation, monitors, max_attempts). *)
let minimize ?(monitors = Monitor.standard) ?(max_attempts = 400) ~violation
    config =
  let attempts = ref 0 and steps = ref 0 in
  let oracle cand =
    incr attempts;
    match Monitor.run_config ~monitors cand with
    | Some v when v.Monitor.monitor = violation.Monitor.monitor -> Some v
    | _ -> None
  in
  let rec go c v =
    let rec first = function
      | [] -> (c, v, false)
      | cand :: rest ->
          if !attempts >= max_attempts then (c, v, true)
          else begin
            match oracle cand with
            | Some v' ->
                incr steps;
                go cand v'
            | None -> first rest
          end
    in
    first (candidates c)
  in
  let config, violation, exhausted = go config violation in
  { config; violation; attempts = !attempts; steps = !steps; exhausted }
