(** The replayable regression corpus: minimal chaos reproducers as JSONL.

    Each line is a [{"kind":"chaos_repro",…}] record carrying the minimal
    config, the violation it produces, the pre-shrink config (for
    forensics), and how many shrink executions it took.  Because configs
    re-execute deterministically from their own seeds, [rlin chaos
    replay] re-runs every entry and demands the {e same serialized
    violation} — a silent fix and a changed failure mode are both
    reported. *)

type entry = {
  config : Msgpass.Runs.Config.t;  (** minimal reproducer *)
  violation : Monitor.violation;  (** what it produces *)
  original : Msgpass.Runs.Config.t option;  (** pre-shrink config *)
  shrink_attempts : int;  (** oracle executions spent shrinking *)
  postmortem : Obs.Json.t list;
      (** flight-recorder post-mortem: the last-K canonical trace events
          of a re-execution of [config] ({!Monitor.postmortem}), [[]]
          when no recorder ran.  Serialized only when non-empty, so
          recorder-off corpora are byte-identical to pre-recorder ones;
          loading validates each event against the trace schema. *)
}

val entry_json : entry -> Obs.Json.t
val entry_of_json : Obs.Json.t -> (entry, string) result

val load : string -> (entry list, string) result
(** From a [.jsonl] file, or every [*.jsonl] in a directory (sorted by
    file name). *)

val save : string -> entry list -> unit
(** Create/truncate a file. *)

val append : string -> entry -> unit
(** Append one line, creating the file if needed. *)

type replay_outcome =
  | Reproduced  (** same violation, byte-for-byte serialized *)
  | Changed of Monitor.violation  (** still fails, differently *)
  | Fixed  (** no monitor trips any more *)

val replay : ?monitors:Monitor.t list -> entry -> replay_outcome
(** Re-execute the entry's config (default {!Monitor.standard}) and
    compare violations. *)
