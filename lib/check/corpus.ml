module Config = Msgpass.Runs.Config

type entry = {
  config : Config.t;
  violation : Monitor.violation;
  original : Config.t option;
  shrink_attempts : int;
  postmortem : Obs.Json.t list;
}

let entry_json e =
  Obs.Json.Obj
    ([
       ("kind", Obs.Json.Str "chaos_repro");
       ("config", Config.json e.config);
       ("violation", Monitor.violation_json e.violation);
       ( "original",
         match e.original with
         | Some c -> Config.json c
         | None -> Obs.Json.Null );
       ("shrink_attempts", Obs.Json.Int e.shrink_attempts);
     ]
    (* flight-recorder post-mortem only when recorded: old corpora and
       recorder-off runs serialize exactly as before *)
    @
    match e.postmortem with
    | [] -> []
    | evs -> [ ("postmortem", Obs.Json.List evs) ])

let entry_of_json j =
  let ( let* ) = Result.bind in
  let* () =
    match Option.bind (Obs.Json.member "kind" j) Obs.Json.to_string_opt with
    | Some "chaos_repro" -> Ok ()
    | _ -> Error "Corpus.entry_of_json: kind is not \"chaos_repro\""
  in
  let* config =
    match Obs.Json.member "config" j with
    | Some c -> Config.of_json c
    | None -> Error "Corpus.entry_of_json: missing \"config\""
  in
  let* violation =
    match Obs.Json.member "violation" j with
    | Some v -> Monitor.violation_of_json v
    | None -> Error "Corpus.entry_of_json: missing \"violation\""
  in
  let* original =
    match Obs.Json.member "original" j with
    | None | Some Obs.Json.Null -> Ok None
    | Some c -> Result.map Option.some (Config.of_json c)
  in
  let shrink_attempts =
    match
      Option.bind (Obs.Json.member "shrink_attempts" j) Obs.Json.to_int_opt
    with
    | Some n -> n
    | None -> 0
  in
  let* postmortem =
    match Obs.Json.member "postmortem" j with
    | None | Some Obs.Json.Null -> Ok []
    | Some (Obs.Json.List evs) ->
        (* validate the attached events are well-formed trace records *)
        List.fold_left
          (fun acc ev ->
            let* evs = acc in
            let* () = Obs.Tracer.validate_event_json ev in
            Ok (evs @ [ ev ]))
          (Ok []) evs
    | Some _ -> Error "Corpus.entry_of_json: \"postmortem\" is not a list"
  in
  Ok { config; violation; original; shrink_attempts; postmortem }

let load_file path =
  let ( let* ) = Result.bind in
  let* values = Obs.Export.parse_file path in
  List.fold_left
    (fun acc v ->
      let* entries = acc in
      let* e =
        Result.map_error (fun m -> path ^ ": " ^ m) (entry_of_json v)
      in
      Ok (entries @ [ e ]))
    (Ok []) values

let load path =
  if Sys.file_exists path && Sys.is_directory path then
    let files =
      Sys.readdir path |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
      |> List.sort String.compare
      |> List.map (Filename.concat path)
    in
    List.fold_left
      (fun acc f ->
        Result.bind acc (fun entries ->
            Result.map (fun es -> entries @ es) (load_file f)))
      (Ok []) files
  else load_file path

let save path entries = Obs.Export.to_file path (List.map entry_json entries)

let append path entry =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Obs.Export.write_line oc (entry_json entry))

type replay_outcome = Reproduced | Changed of Monitor.violation | Fixed

(* "Byte-for-byte": compare the serialized violations, which is what the
   JSONL corpus stores and what CI diffs. *)
let replay ?monitors entry =
  match Monitor.run_config ?monitors entry.config with
  | None -> Fixed
  | Some v ->
      if
        String.equal
          (Obs.Json.to_string (Monitor.violation_json v))
          (Obs.Json.to_string (Monitor.violation_json entry.violation))
      then Reproduced
      else Changed v
