(** Causal flight recorder: a bounded ring buffer of typed events.

    Instrumented components (the scheduler, the network, the registers,
    the checkers) emit events stamped with sim-time, wall-time, a track
    (node/fiber pid) and a causal parent; the recorder keeps the last
    [capacity] of them.  Exporters turn a retained window into Chrome
    [trace_event] JSON (openable in Perfetto/chrome://tracing) or a DOT
    causal graph of one operation's ancestry; {!event_json} is the JSONL
    shape streamed by [rlin trace --events/--follow] and attached to
    chaos corpus entries as violation post-mortems.

    {b Overhead discipline} (DESIGN.md §13): when a tracer is not armed
    the recording path is a single branch on {!armed} — a bare field
    read — and allocates nothing.  Call sites must guard the whole
    [emit], including the construction of its [~args] list, behind
    [if Tracer.armed t then ...]; building the arguments first and
    letting [emit] discard them would pay allocation on the hot path the
    flag exists to protect.  {!null} is the shared never-armed tracer
    every component defaults to. *)

type event = {
  seq : int;  (** per-tracer sequence number: the event's identity *)
  sim : int;  (** scheduler step clock (checker probes use their own
                  progress counter) *)
  wall_ms : float;
      (** wall clock at emission; omitted from canonical JSON so event
          streams stay byte-identical across re-executions *)
  track : int;  (** node/fiber pid; [-1] is the run-level track *)
  cat : string;  (** ["sched"], ["net"], ["reg"], ["check"] or ["span"] *)
  name : string;
  parent : int;  (** causal parent's [seq]; [-1] when the event is a root *)
  args : (string * Json.t) list;
}

type sink = event -> unit

type t

val create : ?capacity:int -> ?armed:bool -> unit -> t
(** A fresh recorder. [capacity] (default 65536) bounds retained events;
    [armed] (default [true]) sets the initial state of the flag.
    @raise Invalid_argument if [capacity <= 0]. *)

val null : t
(** The shared never-armed tracer: the default wherever a tracer is
    optional, so instrumented code needs no option check.
    @raise Invalid_argument if {!set_armed} tries to arm it. *)

val armed : t -> bool
(** The one branch on the recording path: a bare field read. *)

val set_armed : t -> bool -> unit

val capacity : t -> int

val emit :
  t ->
  ?track:int ->
  ?parent:int ->
  ?args:(string * Json.t) list ->
  sim:int ->
  cat:string ->
  string ->
  int
(** Record an event; returns its sequence number ([-1] if disarmed —
    but see the guard discipline above: don't rely on that).  [parent]
    defaults to the ambient {!ctx}; [track] defaults to [-1]. *)

val emitted : t -> int
(** Total events emitted (≥ retained count once the ring has wrapped). *)

val events : t -> event list
(** Retained events, oldest first. *)

val recent : ?k:int -> t -> event list
(** The last [k] (default 200) retained events, oldest first. *)

val clear : t -> unit
(** Drop every retained event and reset the sequence counter and {!ctx}. *)

(** {2 Causal context}

    The simulator is single-threaded (cooperative fibers under one
    scheduler), so one ambient cell carries the "current cause": [Net]
    sets it to the deliver event on message receipt, the registers set
    it around an operation's rounds, and emits with no explicit
    [~parent] inherit it.  [-1] means no ambient cause. *)

val ctx : t -> int
val set_ctx : t -> int -> unit
(** No-op when disarmed (so call sites need no extra guard). *)

val set_sink : t -> sink option -> unit
(** A callback invoked synchronously on every emit, after the event is
    stored — the [--follow] streaming hook. *)

(** {2 JSONL}

    The canonical record: [{"kind":"trace_event","seq":…,"t":…,
    "track":…,"cat":…,"name":…,"parent":…,"args":{…}}].  [wall_ms] is
    included only on request: canonical streams must be byte-identical
    across [-j 1]/[-j 2] and across re-executions (CI diffs them, the
    corpus replays them). *)

val event_json : ?wall:bool -> event -> Json.t
val event_of_json : Json.t -> (event, string) result
(** Missing [wall_ms] parses as [0.]. *)

val validate_event_json : Json.t -> (unit, string) result
(** Schema check for one canonical record (the CI gate). *)

(** {2 Exporters} *)

val perfetto_json : ?track_name:(int -> string) -> event list -> Json.t
(** Chrome [trace_event] JSON: one thread per track with a
    [thread_name] metadata record, an ["X"] slice per event, ["B"]/["E"]
    slices for span events, ["C"] counter samples for each numeric
    argument of ["check"]-category events (the progress-probe counter
    tracks), and ["s"]/["f"] flow pairs along cross-track causal edges
    (message send → deliver).  Timestamps are the sim clock. *)

val validate_perfetto : Json.t -> (int, string) result
(** Validate a whole [{"traceEvents":[…]}] document; [Ok n] is the
    number of trace events. *)

val dot_of_ancestry : event list -> seq:int -> string
(** A DOT digraph of the causal cone containing event [seq]: its
    ancestor chain's root plus every retained event reaching that root,
    edges parent → child; the target node is highlighted. *)
