let write_line oc v =
  output_string oc (Json.to_string v);
  output_char oc '\n'

(* Streaming round-trip verification: render, re-parse the rendered line,
   and compare structurally — per record, so a tail/pipe consumer
   ([rlin trace --follow]) verifies without buffering the stream, and
   [--out] no longer re-reads the whole file afterwards. *)
let write_line_verified oc v =
  let line = Json.to_string v in
  match Json.of_string line with
  | Ok v' when Json.equal v v' ->
      output_string oc line;
      output_char oc '\n';
      Ok ()
  | Ok _ -> Error (Printf.sprintf "round-trip mismatch: %s" line)
  | Error e -> Error (Printf.sprintf "round-trip parse failure: %s: %s" e line)

let write_lines oc vs = List.iter (write_line oc) vs

let to_file path vs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_lines oc vs)

let lines_to_string vs =
  String.concat "" (List.map (fun v -> Json.to_string v ^ "\n") vs)

let parse_lines s =
  let lines = String.split_on_char '\n' s in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go (i + 1) acc rest
        else (
          match Json.of_string line with
          | Ok v -> go (i + 1) (v :: acc) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" i e))
  in
  go 1 [] lines

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> parse_lines s
  | exception Sys_error e -> Error e

(* The lenient variant quarantines instead of failing: bad lines are
   returned as (1-based line number, error) for the caller to count or
   report, and the good records still parse.  [rlin serve]'s ingest
   tolerance, available to any JSONL reader. *)
let parse_lines_lenient s =
  let lines = String.split_on_char '\n' s in
  let rec go i acc bad = function
    | [] -> (List.rev acc, List.rev bad)
    | line :: rest ->
        if String.trim line = "" then go (i + 1) acc bad rest
        else (
          match Json.of_string line with
          | Ok v -> go (i + 1) (v :: acc) bad rest
          | Error e -> go (i + 1) acc ((i, e) :: bad) rest)
  in
  go 1 [] [] lines

let parse_file_lenient path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> Ok (parse_lines_lenient s)
  | exception Sys_error e -> Error e

let summary_json (s : Metrics.summary) =
  Json.Obj
    ([
       ("count", Json.Int s.count);
       ("sum", Json.Float s.sum);
       ("min", Json.Float s.min);
       ("max", Json.Float s.max);
       ("mean", Json.Float s.mean);
       ("p50", Json.Float s.p50);
       ("p90", Json.Float s.p90);
       ("p95", Json.Float s.p95);
       ("p99", Json.Float s.p99);
     ]
    (* only once truncation happened: small-run dumps stay byte-stable *)
    @
    if s.retained < s.count then [ ("retained", Json.Int s.retained) ]
    else [])

let metrics_json ?label (s : Metrics.snapshot) =
  let base = [ ("kind", Json.Str "metrics") ] in
  let label =
    match label with Some l -> [ ("label", Json.Str l) ] | None -> []
  in
  Json.Obj
    (base @ label
    @ [
        ( "counters",
          Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.counters) );
        ( "gauges",
          Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) s.gauges) );
        ( "histograms",
          Json.Obj
            (List.map (fun (n, h) -> (n, summary_json h)) s.histograms) );
      ])

let report_json ~id ~claim ~expected ~measured ~pass ~metrics =
  Json.Obj
    [
      ("kind", Json.Str "report");
      ("id", Json.Str id);
      ("claim", Json.Str claim);
      ("expected", Json.Str expected);
      ("measured", Json.Str measured);
      ("pass", Json.Bool pass);
      ( "metrics",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) metrics) );
    ]

let bench_json ~name ~ns_per_run ~r_square =
  let opt = function Some f -> Json.Float f | None -> Json.Null in
  Json.Obj
    [
      ("kind", Json.Str "bench");
      ("name", Json.Str name);
      ("ns_per_run", opt ns_per_run);
      ("r_square", opt r_square);
    ]
