(** Nestable timing scopes over wall-clock and simulated time.

    [with_span name f] times [f ()] and records, in the target registry:

    - counter [span.<path>.calls];
    - histogram [span.<path>.wall_ms] (wall-clock milliseconds);
    - histogram [span.<path>.sim] (simulated-clock delta) when a
      [sim_clock] is supplied — pass [fun () -> Sched.now sched] to
      measure in scheduler time.

    [<path>] is the [/]-separated chain of the enclosing spans, so nested
    scopes produce distinguishable metrics ([span.e6/abd-run.wall_ms]).
    Exceptions propagate; the span still closes and records. *)

val with_span :
  ?metrics:Metrics.t ->
  ?sim_clock:(unit -> int) ->
  string ->
  (unit -> 'a) ->
  'a
(** Defaults to {!Metrics.global}. *)

val current_path : unit -> string option
(** The active span path, if any (for correlating ad-hoc records). *)

val now_ms : unit -> float
(** Monotonic-ish wall clock in milliseconds (the one spans use) — exposed
    so drivers can stamp durations without opening a span. *)
