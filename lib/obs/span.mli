(** Nestable timing scopes over wall-clock and simulated time.

    [with_span name f] times [f ()] and records, in the target registry:

    - counter [span.<path>.calls];
    - histogram [span.<path>.wall_ms] (wall-clock milliseconds);
    - histogram [span.<path>.sim] (simulated-clock delta) when a
      [sim_clock] is supplied — pass [fun () -> Sched.now sched] to
      measure in scheduler time.

    [<path>] is the [/]-separated chain of the enclosing spans, so nested
    scopes produce distinguishable metrics ([span.e6/abd-run.wall_ms]).
    Exceptions propagate; the span still closes and records.

    When an ambient {!Tracer} is installed ({!set_tracer}), every span
    additionally emits a begin/end event pair (category ["span"], name =
    path, [args.ph] = ["B"]/["E"]), which the Perfetto exporter renders
    as slices — experiment phases appear on the timeline alongside the
    scheduler/network events they enclose.  The default tracer is
    {!Tracer.null}, so untraced runs pay one field read per span. *)

val with_span :
  ?metrics:Metrics.t ->
  ?sim_clock:(unit -> int) ->
  string ->
  (unit -> 'a) ->
  'a
(** Defaults to {!Metrics.global}. *)

val with_root :
  ?metrics:Metrics.t ->
  ?sim_clock:(unit -> int) ->
  string ->
  (unit -> 'a) ->
  'a
(** Like {!with_span}, but asserts it opens the {e outermost} span — the
    named top-level slice for a whole run or battery ([rlin experiments]
    wraps the E-battery in [with_root "battery"]).
    @raise Invalid_argument if a span is already open. *)

val current_path : unit -> string option
(** The active span path, if any (for correlating ad-hoc records). *)

val root : unit -> string option
(** The outermost active span's name, if any. *)

val set_tracer : Tracer.t -> unit
(** Install the ambient tracer span events go to ({!Tracer.null} to
    uninstall).  Spans read it at entry/exit; installing mid-span yields
    an end event with no matching begin, which the exporters tolerate. *)

val now_ms : unit -> float
(** Monotonic-ish wall clock in milliseconds (the one spans use) — exposed
    so drivers can stamp durations without opening a span. *)
