(* Flight recorder: a bounded ring of typed events.

   The recording path is built around one invariant: when the tracer is
   not armed, instrumented code pays exactly one branch ([armed t] is a
   bare field read) and allocates nothing.  Call sites therefore guard
   every [emit] — including the construction of its [~args] list — behind
   [if Tracer.armed t then ...]; [emit] itself re-checks and returns [-1]
   when disarmed, but by then the caller has already paid for the event
   record, so the guard is the contract, not a convenience.

   Events are stamped with a per-tracer sequence number which doubles as
   the event's identity: causal parents are sequence numbers, and the
   message-id a [Net] send event returns is the id its deliver events
   point back at.  The ring keeps the last [capacity] events; older ones
   are overwritten in place (the post-mortem use case: a violation wants
   the last K events, not the first K). *)

type event = {
  seq : int;  (** per-tracer, dense from 0 *)
  sim : int;  (** scheduler step clock (checker probes: states/nodes) *)
  wall_ms : float;  (** wall clock at emission; excluded from canonical JSON *)
  track : int;  (** node/fiber pid; [-1] = the run itself *)
  cat : string;  (** "sched" | "net" | "reg" | "check" | "span" *)
  name : string;
  parent : int;  (** causal parent's [seq]; [-1] = root *)
  args : (string * Json.t) list;
}

type sink = event -> unit

type t = {
  mutable armed : bool;
  mutable next : int;  (** next sequence number *)
  ring : event option array;
  mutable ctx : int;  (** ambient causal parent, [-1] when none *)
  mutable sink : sink option;
}

let create ?(capacity = 65536) ?(armed = true) () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  { armed; next = 0; ring = Array.make capacity None; ctx = -1; sink = None }

(* The shared never-armed tracer: the default everywhere a tracer is
   optional.  Its ring has capacity 1 so it costs nothing; arming it is a
   programming error (state would be shared process-wide). *)
let null = { armed = false; next = 0; ring = [| None |]; ctx = -1; sink = None }

let armed t = t.armed

let set_armed t on =
  if on && t == null then invalid_arg "Tracer.set_armed: cannot arm Tracer.null";
  t.armed <- on

let capacity t = Array.length t.ring
let ctx t = t.ctx
let set_ctx t seq = if t.armed then t.ctx <- seq
let set_sink t s = t.sink <- s

let emit t ?(track = -1) ?parent ?(args = []) ~sim ~cat name =
  if not t.armed then -1
  else begin
    let seq = t.next in
    t.next <- seq + 1;
    let parent = match parent with Some p -> p | None -> t.ctx in
    let ev =
      { seq; sim; wall_ms = Unix.gettimeofday () *. 1000.; track; cat; name;
        parent; args }
    in
    t.ring.(seq mod Array.length t.ring) <- Some ev;
    (match t.sink with Some f -> f ev | None -> ());
    seq
  end

let emitted t = t.next

let clear t =
  t.next <- 0;
  t.ctx <- -1;
  Array.fill t.ring 0 (Array.length t.ring) None

(* Retained events, oldest first.  The ring index of seq [s] is
   [s mod capacity]; the oldest retained seq is [max 0 (next - capacity)]. *)
let events t =
  let cap = Array.length t.ring in
  let lo = Stdlib.max 0 (t.next - cap) in
  let rec go s acc =
    if s < lo then acc
    else
      match t.ring.(s mod cap) with
      | Some ev -> go (s - 1) (ev :: acc)
      | None -> go (s - 1) acc
  in
  go (t.next - 1) []

let recent ?(k = 200) t =
  let evs = events t in
  let n = List.length evs in
  if n <= k then evs
  else
    (* drop the oldest n-k *)
    let rec drop i l = if i = 0 then l else drop (i - 1) (List.tl l) in
    drop (n - k) evs

(* ----- JSON ----------------------------------------------------------------

   The canonical rendering deliberately omits [wall_ms]: event streams
   must be byte-identical across [-j 1]/[-j 2] and across re-executions
   of the same config (CI diffs them, the corpus replays them).  Pass
   [~wall:true] for interactive tails where latency matters more than
   reproducibility. *)

let event_json ?(wall = false) ev =
  let base =
    [
      ("kind", Json.Str "trace_event");
      ("seq", Json.Int ev.seq);
      ("t", Json.Int ev.sim);
      ("track", Json.Int ev.track);
      ("cat", Json.Str ev.cat);
      ("name", Json.Str ev.name);
      ("parent", Json.Int ev.parent);
    ]
  in
  let wall =
    if wall then [ ("wall_ms", Json.Float ev.wall_ms) ] else []
  in
  let args = if ev.args = [] then [] else [ ("args", Json.Obj ev.args) ] in
  Json.Obj (base @ wall @ args)

let event_of_json j =
  let int name =
    match Option.bind (Json.member name j) Json.to_int_opt with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "trace_event: missing int %S" name)
  in
  let str name =
    match Option.bind (Json.member name j) Json.to_string_opt with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "trace_event: missing string %S" name)
  in
  let ( let* ) = Result.bind in
  let* () =
    match Option.bind (Json.member "kind" j) Json.to_string_opt with
    | Some "trace_event" -> Ok ()
    | _ -> Error "trace_event: kind is not \"trace_event\""
  in
  let* seq = int "seq" in
  let* sim = int "t" in
  let* track = int "track" in
  let* cat = str "cat" in
  let* name = str "name" in
  let* parent = int "parent" in
  let args =
    match Json.member "args" j with Some (Json.Obj kv) -> kv | _ -> []
  in
  let wall_ms =
    match Option.bind (Json.member "wall_ms" j) Json.to_float_opt with
    | Some w -> w
    | None -> 0.
  in
  Ok { seq; sim; wall_ms; track; cat; name; parent; args }

let validate_event_json j =
  Result.map (fun (_ : event) -> ()) (event_of_json j)

(* ----- Chrome trace_event (Perfetto) export -------------------------------

   One "X" (complete) event per recorded event, on a thread per track
   (pid 0 is the process, tid = track + 2 so the run track -1 lands on
   tid 1).  Causality appears as s/f flow pairs whenever the parent is
   retained and lives on a different track.  Events of category "check"
   additionally emit a "C" counter sample per numeric arg, which is how
   checker progress probes become counter tracks.  Span begin/end events
   map to "B"/"E" slices.  Timestamps are the sim clock, reported in
   microseconds. *)

let perfetto_json ?track_name events =
  let track_label tr =
    match track_name with
    | Some f -> f tr
    | None -> if tr < 0 then "run" else "node " ^ string_of_int tr
  in
  let tid tr = tr + 2 in
  let by_seq = Hashtbl.create 256 in
  List.iter (fun ev -> Hashtbl.replace by_seq ev.seq ev) events;
  let tracks = Hashtbl.create 16 in
  List.iter (fun ev -> Hashtbl.replace tracks ev.track ()) events;
  let meta =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.Str "rlin") ]);
      ]
    :: (Hashtbl.fold (fun tr () acc -> tr :: acc) tracks []
       |> List.sort compare
       |> List.map (fun tr ->
              Json.Obj
                [
                  ("name", Json.Str "thread_name");
                  ("ph", Json.Str "M");
                  ("pid", Json.Int 0);
                  ("tid", Json.Int (tid tr));
                  ("args", Json.Obj [ ("name", Json.Str (track_label tr)) ]);
                ]))
  in
  let common ev rest =
    Json.Obj
      ([
         ("name", Json.Str ev.name);
         ("cat", Json.Str ev.cat);
         ("pid", Json.Int 0);
         ("tid", Json.Int (tid ev.track));
         ("ts", Json.Int ev.sim);
       ]
      @ rest)
  in
  let span_phase ev =
    match List.assoc_opt "ph" ev.args with
    | Some (Json.Str p) -> p
    | _ -> "X"
  in
  let body =
    List.concat_map
      (fun ev ->
        let args =
          ("seq", Json.Int ev.seq) :: ("parent", Json.Int ev.parent)
          :: ev.args
        in
        let main =
          if ev.cat = "span" then
            (* begin/end slice; the slice name is the span path *)
            common ev
              [ ("ph", Json.Str (span_phase ev)); ("args", Json.Obj args) ]
          else
            common ev
              [
                ("ph", Json.Str "X");
                ("dur", Json.Int 1);
                ("args", Json.Obj args);
              ]
        in
        let counters =
          if ev.cat <> "check" then []
          else
            List.filter_map
              (fun (k, v) ->
                match v with
                | Json.Int _ | Json.Float _ ->
                    Some
                      (Json.Obj
                         [
                           ("name", Json.Str (ev.name ^ "." ^ k));
                           ("cat", Json.Str ev.cat);
                           ("ph", Json.Str "C");
                           ("pid", Json.Int 0);
                           ("ts", Json.Int ev.sim);
                           ("args", Json.Obj [ (k, v) ]);
                         ])
                | _ -> None)
              ev.args
        in
        let flows =
          match Hashtbl.find_opt by_seq ev.parent with
          | Some p when p.track <> ev.track ->
              let flow ph e =
                Json.Obj
                  [
                    ("name", Json.Str "causal");
                    ("cat", Json.Str "flow");
                    ("ph", Json.Str ph);
                    ("id", Json.Int ev.seq);
                    ("pid", Json.Int 0);
                    ("tid", Json.Int (tid e.track));
                    ("ts", Json.Int e.sim);
                    ("bp", Json.Str "e");
                  ]
              in
              [ flow "s" p; flow "f" ev ]
          | _ -> []
        in
        (main :: counters) @ flows)
      events
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ body));
      ("displayTimeUnit", Json.Str "ms");
    ]

let validate_perfetto j =
  match Json.member "traceEvents" j with
  | None -> Error "perfetto: missing \"traceEvents\""
  | Some evs -> (
      match Json.to_list_opt evs with
      | None -> Error "perfetto: \"traceEvents\" is not a list"
      | Some l ->
          let check i e =
            let str name =
              Option.bind (Json.member name e) Json.to_string_opt
            in
            let int name = Option.bind (Json.member name e) Json.to_int_opt in
            match str "ph" with
            | None -> Error (Printf.sprintf "perfetto: event %d: no \"ph\"" i)
            | Some ph -> (
                if str "name" = None then
                  Error (Printf.sprintf "perfetto: event %d: no \"name\"" i)
                else if int "pid" = None then
                  Error (Printf.sprintf "perfetto: event %d: no \"pid\"" i)
                else
                  match ph with
                  | "M" -> Ok ()
                  | "s" | "f" ->
                      if int "id" = None then
                        Error
                          (Printf.sprintf "perfetto: event %d: flow without id"
                             i)
                      else Ok ()
                  | "X" | "B" | "E" | "C" ->
                      if int "ts" = None then
                        Error
                          (Printf.sprintf "perfetto: event %d: no \"ts\"" i)
                      else Ok ()
                  | other ->
                      Error
                        (Printf.sprintf "perfetto: event %d: unknown ph %S" i
                           other))
          in
          let rec go i = function
            | [] -> Ok (List.length l)
            | e :: rest -> (
                match check i e with Ok () -> go (i + 1) rest | Error _ as e -> e)
          in
          go 0 l)

(* ----- DOT causal ancestry -------------------------------------------------

   The causal neighbourhood of one event: its ancestor chain up to a
   root, plus every retained event whose parent chain reaches that same
   root — i.e. the full causal cone of the operation the event belongs
   to.  Rendered as a DOT digraph, parent -> child. *)

let dot_of_ancestry events ~seq =
  let by_seq = Hashtbl.create 256 in
  List.iter (fun ev -> Hashtbl.replace by_seq ev.seq ev) events;
  let rec root s =
    match Hashtbl.find_opt by_seq s with
    | None -> s
    | Some ev -> if ev.parent < 0 then s else root ev.parent
  in
  let target_root = root seq in
  let included =
    List.filter (fun ev -> root ev.seq = target_root) events
  in
  let esc s =
    String.concat ""
      (List.map
         (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  let label ev =
    let args =
      match ev.args with
      | [] -> ""
      | kv ->
          "\n"
          ^ String.concat ", "
              (List.map (fun (k, v) -> k ^ "=" ^ Json.to_string v) kv)
    in
    Printf.sprintf "#%d %s.%s @%d%s" ev.seq ev.cat ev.name ev.sim args
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "digraph causal {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  List.iter
    (fun ev ->
      let l =
        String.concat "\\n" (String.split_on_char '\n' (esc (label ev)))
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"%s];\n" ev.seq l
           (if ev.seq = seq then ", style=bold, color=red" else "")))
    included;
  List.iter
    (fun ev ->
      if ev.parent >= 0 && Hashtbl.mem by_seq ev.parent then
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d;\n" ev.parent ev.seq))
    included;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
