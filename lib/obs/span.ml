let now_ms () = Unix.gettimeofday () *. 1000.

(* The active span chain, innermost first.  The simulator is single-
   threaded (cooperative fibers under one scheduler), so one stack
   suffices. *)
let stack : string list ref = ref []

let current_path () =
  match !stack with
  | [] -> None
  | l -> Some (String.concat "/" (List.rev l))

let with_span ?(metrics = Metrics.global) ?sim_clock name f =
  stack := name :: !stack;
  let path = Option.get (current_path ()) in
  let t0 = now_ms () in
  let s0 = match sim_clock with Some c -> c () | None -> 0 in
  let finish () =
    stack := List.tl !stack;
    Metrics.incr metrics ("span." ^ path ^ ".calls");
    Metrics.observe metrics ("span." ^ path ^ ".wall_ms") (now_ms () -. t0);
    match sim_clock with
    | Some c ->
        Metrics.observe metrics ("span." ^ path ^ ".sim")
          (float_of_int (c () - s0))
    | None -> ()
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e
