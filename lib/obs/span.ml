let now_ms () = Unix.gettimeofday () *. 1000.

(* The active span chain, innermost first.  The simulator is single-
   threaded (cooperative fibers under one scheduler), so one stack
   suffices.  [seqs] mirrors [stack] with each span's begin-event
   sequence number (-1 when the ambient tracer was disarmed at entry),
   so nested spans parent to the enclosing span's begin event. *)
let stack : string list ref = ref []
let seqs : int list ref = ref []

(* The ambient tracer spans emit begin/end events to; {!Tracer.null} by
   default, so spans cost nothing extra until a recorder is installed
   (rlin trace does, around a traced run). *)
let tracer = ref Tracer.null

let set_tracer t = tracer := t

let current_path () =
  match !stack with
  | [] -> None
  | l -> Some (String.concat "/" (List.rev l))

let root () = match List.rev !stack with [] -> None | r :: _ -> Some r

let with_span ?(metrics = Metrics.global) ?sim_clock name f =
  stack := name :: !stack;
  let path = Option.get (current_path ()) in
  let t0 = now_ms () in
  let s0 = match sim_clock with Some c -> c () | None -> 0 in
  let trc = !tracer in
  let bseq =
    if Tracer.armed trc then
      Tracer.emit trc
        ~parent:(match !seqs with p :: _ -> p | [] -> -1)
        ~args:[ ("ph", Json.Str "B") ]
        ~sim:s0 ~cat:"span" path
    else -1
  in
  seqs := bseq :: !seqs;
  let finish () =
    stack := List.tl !stack;
    seqs := List.tl !seqs;
    (let trc = !tracer in
     if Tracer.armed trc then
       ignore
         (Tracer.emit trc ~parent:bseq
            ~args:[ ("ph", Json.Str "E") ]
            ~sim:(match sim_clock with Some c -> c () | None -> 0)
            ~cat:"span" path));
    Metrics.incr metrics ("span." ^ path ^ ".calls");
    Metrics.observe metrics ("span." ^ path ^ ".wall_ms") (now_ms () -. t0);
    match sim_clock with
    | Some c ->
        Metrics.observe metrics ("span." ^ path ^ ".sim")
          (float_of_int (c () - s0))
    | None -> ()
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let with_root ?metrics ?sim_clock name f =
  if !stack <> [] then
    invalid_arg
      (Printf.sprintf "Span.with_root %S: a span is already open (%s)" name
         (Option.value ~default:"?" (current_path ())));
  with_span ?metrics ?sim_clock name f
