(** Line-delimited JSON (JSONL) export.

    One {!Json.t} value per line; every record carries a ["kind"] field so
    mixed streams (metrics + reports + bench rows) stay self-describing.
    Serialization of domain types that live above this library in the
    dependency graph stays with those types ([Simkit.Trace.entry_json],
    [Experiments.report_json]); this module provides the record shapes
    that need only metrics, plus the writer/parser machinery. *)

(** {2 Writing} *)

val write_line : out_channel -> Json.t -> unit
(** One rendered value, then a newline. *)

val write_line_verified : out_channel -> Json.t -> (unit, string) result
(** Like {!write_line}, but round-trip-verified per record: the rendered
    line is re-parsed and compared structurally before being written.
    Streaming — no buffering of earlier records — so it is safe on an
    unbounded pipe ([rlin trace --follow]) as well as on files (where it
    replaces re-reading the whole file after the fact).  On [Error]
    nothing is written for this record. *)

val write_lines : out_channel -> Json.t list -> unit

val to_file : string -> Json.t list -> unit
(** Create/truncate [path] and write every value, one per line. *)

val lines_to_string : Json.t list -> string

(** {2 Reading back} *)

val parse_lines : string -> (Json.t list, string) result
(** Parse a JSONL document (empty lines ignored); the error message names
    the offending line. *)

val parse_file : string -> (Json.t list, string) result

val parse_lines_lenient : string -> Json.t list * (int * string) list
(** Like {!parse_lines} but a malformed line doesn't fail the parse: the
    good records are returned together with the bad lines as (1-based
    line number, error) pairs — the caller decides whether a non-empty
    second component is fatal. *)

val parse_file_lenient :
  string -> (Json.t list * (int * string) list, string) result
(** [Error] only on I/O failure. *)

(** {2 Record shapes} *)

val metrics_json : ?label:string -> Metrics.snapshot -> Json.t
(** [{"kind":"metrics","label":…,"counters":{…},"gauges":{…},
     "histograms":{name:{count,sum,min,max,mean,p50,p90,p99}}}] *)

val report_json :
  id:string ->
  claim:string ->
  expected:string ->
  measured:string ->
  pass:bool ->
  metrics:(string * float) list ->
  Json.t
(** [{"kind":"report","id":…,…,"metrics":{name:value}}] — the schema of
    [rlin experiments --json]. *)

val bench_json :
  name:string -> ns_per_run:float option -> r_square:float option -> Json.t
(** [{"kind":"bench","name":…,"ns_per_run":…,"r_square":…}] — the schema
    of [bench/main.exe --json]. *)
