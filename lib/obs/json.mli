(** A minimal JSON representation with a serializer and parser, hand-rolled
    so the observability layer adds no dependencies.

    The emitter produces one-line (no newline) renderings, which is what
    {!Export} needs for line-delimited JSON; the parser accepts any
    standard JSON text and is used by the round-trip tests and by external
    tooling checks.  Floats that are NaN or infinite serialize as [null]
    (JSON has no representation for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val equal : t -> t -> bool
(** Structural equality; [Int n] and [Float f] are distinct even when
    numerically equal (round-trips preserve the constructor). *)

val to_string : t -> string
(** Render on one line (no embedded newlines: strings are escaped). *)

val of_string : string -> (t, string) result
(** Parse a single JSON value; [Error msg] carries a position. *)

val pp : Format.formatter -> t -> unit

(** {2 Accessors (total, for tests and tooling)} *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] otherwise. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both convert. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
