type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | List x, List y -> List.equal equal x y
  | Obj x, Obj y ->
      List.equal (fun (k, v) (k', v') -> String.equal k k' && equal v v') x y
  | _ -> false

(* ----- emission -------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_nan f || Float.abs f = Float.infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr f)
  | Str s -> escape_to buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  emit buf v;
  Buffer.contents buf

let pp fmt v = Format.pp_print_string fmt (to_string v)

(* ----- parsing --------------------------------------------------------- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* encode a Unicode codepoint as UTF-8 bytes *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' -> Buffer.add_char buf '"'; go ()
            | '\\' -> Buffer.add_char buf '\\'; go ()
            | '/' -> Buffer.add_char buf '/'; go ()
            | 'n' -> Buffer.add_char buf '\n'; go ()
            | 'r' -> Buffer.add_char buf '\r'; go ()
            | 't' -> Buffer.add_char buf '\t'; go ()
            | 'b' -> Buffer.add_char buf '\b'; go ()
            | 'f' -> Buffer.add_char buf '\012'; go ()
            | 'u' ->
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                let cp =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape"
                in
                add_utf8 buf cp;
                go ()
            | _ -> fail "bad escape")
        | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' ->
          is_float := true;
          true
      | _ -> false
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
      Error (Printf.sprintf "json: at offset %d: %s" p msg)

(* ----- accessors -------------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_float_opt = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | _ -> None

let to_int_opt = function Int n -> Some n | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
