(** Named metric registries: monotone counters, gauges and histograms.

    Instrumented code (the scheduler, the network, the checkers, the
    registers) records into a registry by metric name; analysis code reads
    it back as a {!snapshot}.  A process-wide {!global} registry is the
    default sink — experiment drivers measure a workload by taking a
    snapshot before and after and computing the {!delta}, so concurrent
    accumulation from unrelated code is harmless.

    Metric names are dot-separated paths ([sched.steps], [linchk.states],
    [net.sends], [span.e1.wall_ms]); see DESIGN.md "Observability" for the
    catalogue. *)

type t
(** A registry. *)

val reservoir_cap : int
(** Histogram sample-retention cap (4096): quantiles are computed over at
    most this many samples per histogram, while count/sum/min/max/mean
    stay exact at any scale.  {!summary.retained} and the [".sampled"]
    {!delta} row state the basis whenever a histogram outgrows it. *)

val create : unit -> t

val global : t
(** The default process-wide registry; every instrumented component
    records here unless given another registry explicitly. *)

val reset : t -> unit
(** Drop every metric (used by tests to isolate measurements). *)

(** {2 Recording} *)

val incr : ?by:int -> t -> string -> unit
(** Bump a monotone counter (created at 0 on first use).
    @raise Invalid_argument if [by < 0] — counters only go up. *)

val set_gauge : t -> string -> float -> unit
(** Set a gauge to its current value (e.g. messages in flight). *)

val observe : t -> string -> float -> unit
(** Add one sample to a histogram (e.g. a latency in simulated steps). *)

(** {2 Handles — the allocation-free recording path}

    The string API above hashes the metric name on every recording; that
    is fine for per-run events but dominates checker inner loops (one
    DFS state = one [incr]).  A handle resolves the name once and pins
    the metric's interior cell: [incr_h] is a bare [ref] bump, no
    hashing, no allocation.  Handles alias the cells the string API
    updates — both paths hit the same counter, and {!merge},
    {!snapshot}/{!delta} and the per-run-registry isolation of
    [Simkit.Pool.map_runs] are oblivious to which path recorded.

    Resolve handles at component construction or checker entry — never
    per event (that would re-pay the lookup the handle exists to avoid).
    {!reset} empties the name tables and thereby detaches live handles
    (their bumps land in orphaned cells): re-resolve after a reset.
    See DESIGN.md "hot-path discipline". *)

module Counter : sig
  type t
end

module Gauge : sig
  type t
end

module Hist : sig
  type t
end

val counter_h : t -> string -> Counter.t
(** Resolve (creating at 0 if absent) a counter handle. *)

val incr_h : ?by:int -> Counter.t -> unit
(** Bump through a handle.
    @raise Invalid_argument if [by < 0]. *)

val read_h : Counter.t -> int
(** Current value through a handle — a bare dereference, cheap enough for
    periodic probes inside checker inner loops. *)

val gauge_h : t -> string -> Gauge.t
(** Resolve a gauge handle.  Does {e not} create the gauge: a gauge
    appears in snapshots only once set (there is no neutral value), so
    the cell is bound on the first {!set_gauge_h}. *)

val set_gauge_h : Gauge.t -> float -> unit

val hist_h : t -> string -> Hist.t
(** Resolve (creating empty if absent) a histogram handle.  An empty
    histogram is invisible to {!snapshot} until its first sample. *)

val observe_h : Hist.t -> float -> unit

val merge : into:t -> t -> unit
(** [merge ~into src] folds [src] into [into] as if every recording made
    into [src] had been made into [into] instead, in the same order:
    counters add, gauges overwrite, histograms concatenate (count, sum,
    min, max exact; retained samples appended until the reservoir cap).
    The parallel run harness ({!Simkit.Pool.map_runs}) gives each run a
    private registry and folds them in run order, so the merged registry
    — and hence any snapshot {!delta} over it — is independent of the
    degree of parallelism.  [src] is left untouched. *)

(** {2 Reading} *)

val counter : t -> string -> int
(** Current counter value; 0 if never incremented. *)

val gauge : t -> string -> float option

type summary = {
  count : int;  (** samples seen — exact forever, never truncated *)
  sum : float;
  min : float;
  max : float;
  mean : float;
  retained : int;
      (** samples retained in the reservoir — the quantile basis.  Equal
          to [count] up to {!reservoir_cap}; strictly smaller past it
          (million-sample fleet runs), where [p50/p90/p95/p99] cover only
          the first [retained] samples. *)
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
      (** Quantiles are exact over the first {!reservoir_cap} samples;
          beyond that, count/sum/min/max/mean stay exact and quantiles
          are computed on the retained prefix ([retained] states the
          basis). *)
}

val summary : t -> string -> summary option
(** Summary of a histogram; [None] if it has no samples. *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * summary) list;
}
(** All three families, each sorted by name. *)

val snapshot : t -> snapshot

val delta : before:snapshot -> after:snapshot -> (string * float) list
(** The change between two snapshots, as flat name/value pairs suitable
    for an experiment report: counter increments (only those [> 0]),
    gauges at their [after] value (only those set or changed), and for
    each histogram the sample-count increment as [name ^ ".n"], the mean
    over the new samples as [name ^ ".mean"], and the [after]-reservoir
    quantiles as [name ^ ".p50"/".p95"/".p99"] (exact for the window when
    the histogram is new in it, whole-reservoir otherwise).  When the
    histogram outgrew {!reservoir_cap}, a [name ^ ".sampled"] row states
    how many samples the quantiles cover.  Sorted by name. *)

val pp : Format.formatter -> t -> unit
(** A human-readable table of the whole registry. *)
