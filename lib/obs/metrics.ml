(* Sample retention cap: quantiles are exact up to this many samples per
   histogram; count/sum/min/max stay exact forever.  Million-sample runs
   (the fleet workloads) keep the first [reservoir_cap] samples as their
   quantile basis — [summary.retained] states that basis explicitly, and
   [delta] emits a [".sampled"] row whenever it is smaller than the
   window's sample count, so reporting at scale never silently pretends
   its percentiles cover every sample. *)
let reservoir_cap = 4096

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable samples : floatarray;
  mutable filled : int;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 16;
  }

let global = create ()

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.hists

(* ----- handles: the allocation-free recording path ------------------------

   A handle is the interior mutable cell of a metric, resolved from the
   name table once (at registry/component construction or checker entry)
   so the per-event cost is a bare [ref] bump instead of a string hash +
   Hashtbl probe.  Handles alias the same cells the string API updates,
   so [merge], [snapshot]/[delta] and the per-run-registry isolation of
   Simkit.Pool.map_runs see recordings from either path identically.
   [reset] detaches live handles (it empties the name tables); re-resolve
   after a reset. *)

module Counter = struct
  type t = int ref
end

module Gauge = struct
  (* Resolving a gauge handle must NOT create the gauge: a gauge exists
     in snapshots only once set (unlike counters, gauges have no neutral
     value — reporting an unset gauge as 0 would change deltas).  The
     cell is therefore bound lazily on the first [set]. *)
  type t = {
    tbl : (string, float ref) Hashtbl.t;
    name : string;
    mutable cell : float ref option;
  }
end

module Hist = struct
  type t = hist
end

let counter_h t name : Counter.t =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr_h ?(by = 1) (c : Counter.t) =
  if by < 0 then invalid_arg "Metrics.incr: counters are monotone (by < 0)";
  c := !c + by

let read_h (c : Counter.t) = !c

let gauge_h t name : Gauge.t =
  { Gauge.tbl = t.gauges; name; cell = Hashtbl.find_opt t.gauges name }

let set_gauge_h (g : Gauge.t) v =
  match g.Gauge.cell with
  | Some r -> r := v
  | None -> (
      match Hashtbl.find_opt g.Gauge.tbl g.Gauge.name with
      | Some r ->
          g.Gauge.cell <- Some r;
          r := v
      | None ->
          let r = ref v in
          Hashtbl.add g.Gauge.tbl g.Gauge.name r;
          g.Gauge.cell <- Some r)

let hist_h t name : Hist.t =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      let h =
        {
          count = 0;
          sum = 0.;
          min_v = Float.infinity;
          max_v = Float.neg_infinity;
          samples = Float.Array.create 16;
          filled = 0;
        }
      in
      Hashtbl.add t.hists name h;
      h

let observe_h (h : Hist.t) v =
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  assert (h.filled <= reservoir_cap);
  if h.filled < reservoir_cap then begin
    if h.filled = Float.Array.length h.samples then begin
      let bigger =
        Float.Array.create (Stdlib.min reservoir_cap (2 * h.filled))
      in
      Float.Array.blit h.samples 0 bigger 0 h.filled;
      h.samples <- bigger
    end;
    Float.Array.set h.samples h.filled v;
    h.filled <- h.filled + 1
  end

(* ----- string API: thin wrappers over the handles ------------------------- *)

let incr ?by t name = incr_h ?by (counter_h t name)
let set_gauge t name v = set_gauge_h (gauge_h t name) v
let observe t name v = observe_h (hist_h t name) v

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

(* Fold [src] into [into], exactly as if every recording made into [src]
   had been made into [into] instead, in the same order: counters add,
   gauges overwrite (last write wins), histograms concatenate (count, sum
   and extrema are exact; reservoir samples append until the cap).  Used
   by the parallel run harness (Simkit.Pool.map_runs) to fold per-run
   registries into the experiment's registry in run order. *)
let merge ~into src =
  Hashtbl.iter (fun name r -> incr ~by:!r into name) src.counters;
  Hashtbl.iter (fun name r -> set_gauge into name !r) src.gauges;
  Hashtbl.iter
    (fun name (h : hist) ->
      if h.count > 0 then begin
        let d =
          match Hashtbl.find_opt into.hists name with
          | Some d -> d
          | None ->
              let d =
                {
                  count = 0;
                  sum = 0.;
                  min_v = Float.infinity;
                  max_v = Float.neg_infinity;
                  samples = Float.Array.create 16;
                  filled = 0;
                }
              in
              Hashtbl.add into.hists name d;
              d
        in
        d.count <- d.count + h.count;
        d.sum <- d.sum +. h.sum;
        if h.min_v < d.min_v then d.min_v <- h.min_v;
        if h.max_v > d.max_v then d.max_v <- h.max_v;
        let want = Stdlib.min reservoir_cap (d.filled + h.filled) in
        if want > Float.Array.length d.samples then begin
          let bigger = Float.Array.create want in
          Float.Array.blit d.samples 0 bigger 0 d.filled;
          d.samples <- bigger
        end;
        let extra = want - d.filled in
        if extra > 0 then begin
          Float.Array.blit h.samples 0 d.samples d.filled extra;
          d.filled <- want
        end
      end)
    src.hists

let gauge t name =
  Option.map (fun r -> !r) (Hashtbl.find_opt t.gauges name)

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  retained : int;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

let summarize (h : hist) =
  if h.count = 0 then None
  else begin
    let sorted = Float.Array.sub h.samples 0 h.filled in
    Float.Array.sort Float.compare sorted;
    let quantile q =
      let i =
        int_of_float (Float.round (q *. float_of_int (h.filled - 1)))
      in
      Float.Array.get sorted (Stdlib.max 0 (Stdlib.min (h.filled - 1) i))
    in
    Some
      {
        count = h.count;
        sum = h.sum;
        min = h.min_v;
        max = h.max_v;
        mean = h.sum /. float_of_int h.count;
        retained = h.filled;
        p50 = quantile 0.5;
        p90 = quantile 0.9;
        p95 = quantile 0.95;
        p99 = quantile 0.99;
      }
  end

let summary t name = Option.join (Option.map summarize (Hashtbl.find_opt t.hists name))

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * summary) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot (t : t) =
  {
    counters =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
      |> List.sort by_name;
    gauges =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.gauges []
      |> List.sort by_name;
    histograms =
      Hashtbl.fold
        (fun k h acc ->
          match summarize h with Some s -> (k, s) :: acc | None -> acc)
        t.hists []
      |> List.sort by_name;
  }

let delta ~before ~after =
  let counter_before n =
    Option.value ~default:0 (List.assoc_opt n before.counters)
  in
  let counters =
    List.filter_map
      (fun (n, v) ->
        let d = v - counter_before n in
        if d > 0 then Some (n, float_of_int d) else None)
      after.counters
  in
  let gauges =
    List.filter_map
      (fun (n, v) ->
        match List.assoc_opt n before.gauges with
        | Some v' when Float.equal v v' -> None
        | _ -> Some (n, v))
      after.gauges
  in
  let hists =
    List.concat_map
      (fun (n, (s : summary)) ->
        let before_s = List.assoc_opt n before.histograms in
        let c0, sum0 =
          match before_s with Some b -> (b.count, b.sum) | None -> (0, 0.)
        in
        let dc = s.count - c0 in
        if dc <= 0 then []
        else
          (* Quantiles are read from the [after] summary: exact when the
             histogram is new in this window (the common case — each
             experiment names its own), approximate (whole-reservoir)
             when samples predate the window.  Past the reservoir cap the
             basis shrinks below the sample count; the [".sampled"] row
             states how many samples the percentiles actually cover, so
             million-sample fleet reports declare their sampling basis. *)
          (n ^ ".n", float_of_int dc)
          :: (n ^ ".mean", (s.sum -. sum0) /. float_of_int dc)
          :: (n ^ ".p50", s.p50)
          :: (n ^ ".p95", s.p95)
          :: (n ^ ".p99", s.p99)
          ::
          (if s.retained < s.count then
             [ (n ^ ".sampled", float_of_int s.retained) ]
           else []))
      after.histograms
  in
  List.sort by_name (counters @ gauges @ hists)

let pp fmt t =
  let s = snapshot t in
  Format.fprintf fmt "@[<v>";
  if s.counters <> [] then begin
    Format.fprintf fmt "%-34s %12s@," "counter" "value";
    List.iter
      (fun (n, v) -> Format.fprintf fmt "%-34s %12d@," n v)
      s.counters
  end;
  if s.gauges <> [] then begin
    Format.fprintf fmt "%-34s %12s@," "gauge" "value";
    List.iter
      (fun (n, v) -> Format.fprintf fmt "%-34s %12.2f@," n v)
      s.gauges
  end;
  if s.histograms <> [] then begin
    Format.fprintf fmt "%-34s %8s %10s %10s %10s %10s %10s@," "histogram"
      "n" "mean" "p50" "p95" "p99" "max";
    List.iter
      (fun (n, (h : summary)) ->
        Format.fprintf fmt "%-34s %8d %10.2f %10.2f %10.2f %10.2f %10.2f%s@,"
          n h.count h.mean h.p50 h.p95 h.p99 h.max
          (if h.retained < h.count then
             Printf.sprintf "  (quantiles over first %d)" h.retained
           else ""))
      s.histograms
  end;
  Format.fprintf fmt "@]"
