(** Public facade of the library: everything the paper defines, under one
    roof.

    This library reproduces {e On Register Linearizability and
    Termination} (Hadzilacos, Hu, Toueg — PODC 2021).  The paper's
    artifacts map to modules as follows:

    - Definitions 1–5 (precedence, linearization functions, strong and
      write-strong linearizability): {!Hist} ({!Hist.Seq} in particular)
      and the checkers in {!Lincheck}/{!Treecheck};
    - Algorithm 1 (the game) and its Appendix-B bounded variant:
      {!Game_alg1}; the Theorem-6/7 adversaries: {!Adversary};
    - Algorithm 2 (write strongly-linearizable MWMR from SWMR, vector
      timestamps): {!Wsl_register}; its multicore port:
      {!Mc_registers.Alg2};
    - Algorithm 3 (the constructive write strong-linearization function):
      {!Wsl_function};
    - Algorithm 4 (Lamport-clock MWMR, linearizable only):
      {!Lamport_register};
    - Theorem 14's [f*] for SWMR registers: {!Fstar}; the ABD register it
      applies to: {!Abd};
    - Corollary 9's construction 𝒜′: {!Cor9} with {!Rand_consensus} as
      the task 𝒜;
    - Figures 1–4 as executable scenarios: {!Adversary} (Figs 1–2) and
      {!Scenario} (Figs 3–4).

    See DESIGN.md for the experiment index (E1–E8) and EXPERIMENTS.md for
    measured results. *)

(* ----- foundational types -------------------------------------------------- *)

module Value = History.Value
module Op = History.Op
module Event = History.Event
module Hist = History.Hist
module Timeline = History.Timeline
module Histgen = History.Gen
module Lamport = Clocks.Lamport
module Vector = Clocks.Vector

(* ----- observability --------------------------------------------------------- *)

module Json = Obs.Json
module Metrics = Obs.Metrics
module Span = Obs.Span
module Export = Obs.Export
module Tracer = Obs.Tracer

(* ----- simulation substrate ------------------------------------------------ *)

module Rng = Simkit.Rng
module Fiber = Simkit.Fiber
module Faults = Simkit.Faults
module Stable = Simkit.Stable
module Sched = Simkit.Sched
module Trace = Simkit.Trace
module Pool = Simkit.Pool
module Deque = Simkit.Deque
module Steal = Simkit.Steal

(* ----- registers ------------------------------------------------------------ *)

module Adv_register = Registers.Adv_register
module Weak_register = Registers.Weak_register
module Swmr = Registers.Swmr
module Wsl_register = Registers.Alg2
module Lamport_register = Registers.Alg4

(* ----- checkers and constructive linearization functions ------------------- *)

module Lincheck = Linchk.Lincheck
module Treecheck = Linchk.Treecheck
module Ipset = Linchk.Ipset
module Wsl_function = Linchk.Alg3
module Fstar = Linchk.Fstar
module Increment = Linchk.Increment

(* ----- streaming service ------------------------------------------------------ *)

module Serve = Serve

(* ----- the game, adversaries, experiments ----------------------------------- *)

module Game_alg1 = Game.Alg1
module Adversary = Game.Thm6
module Game_stats = Game.Stats
module Scenario = Scenarios

(* ----- message passing / ABD ------------------------------------------------- *)

module Net = Msgpass.Net
module Abd = Msgpass.Abd
module Mwabd = Msgpass.Mwabd
module Mwabd_scenario = Msgpass.Mwabd_scenario
module Abd_runs = Msgpass.Runs
module Run_config = Msgpass.Runs.Config

(* ----- the fleet engine -------------------------------------------------------- *)

module Fleet = Fleet

(* ----- chaos checking --------------------------------------------------------- *)

module Monitor = Check.Monitor
module Shrink = Check.Shrink
module Corpus = Check.Corpus
module Chaos = Check.Chaos

(* ----- consensus / Corollary 9 ----------------------------------------------- *)

module Commit_adopt = Consensus.Commit_adopt
module Rand_consensus = Consensus.Rand_consensus
module Cor9 = Consensus.Cor9

(* ----- multicore -------------------------------------------------------------- *)

module Mclog = Multicore.Mclog
module Mc_registers = Multicore.Mc_registers

(* ----- convenience constructors ----------------------------------------------- *)

(** [wsl_mwmr sched ~name ~n ~init] is a fresh write strongly-linearizable
    MWMR register (Algorithm 2) for processes 1…n. *)
let wsl_mwmr sched ~name ~n ~init = Registers.Alg2.create ~sched ~name ~n ~init

(** [lamport_mwmr sched ~name ~n ~init] is a fresh merely-linearizable
    MWMR register (Algorithm 4). *)
let lamport_mwmr sched ~name ~n ~init =
  Registers.Alg4.create ~sched ~name ~n ~init

(** [adversarial_register sched ~name ~init ~mode] is a register whose
    linearization the adversary controls to exactly the degree [mode]
    permits (the executable form of "assume the registers are only
    linearizable / write strongly-linearizable / atomic"). *)
let adversarial_register sched ~name ~init ~mode =
  Registers.Adv_register.create ~sched ~name ~init ~mode

(** Is this (single-object) history linearizable?  (Definition 2.) *)
let is_linearizable ~init h = Linchk.Lincheck.check ~init h

(** Does a write strong-linearization function exist on this history tree?
    (Definition 4; trees because the property quantifies over sets of
    histories — see {!Treecheck}.) *)
let is_write_strongly_linearizable ~init tree =
  Linchk.Treecheck.write_strong ~init tree
