(** Scripted replays of the paper's figures and random-run drivers for the
    register constructions.

    {2 Figure 3 (E3)} — three concurrent writes under Algorithm 2: [w2]
    completes at a time [t] while [w1] and [w3] are still active, and
    their eventually-computed timestamps end up respectively greater and
    smaller than [w2]'s.  The scenario shows Algorithm 3 ordering them
    correctly {e at time t} from their partially-formed timestamps
    ([w3 < w2], [w1] deferred), which is exactly the on-line decision the
    [[∞,…,∞]] initialization enables.

    {2 Figure 4 (E4)} — the two-extension counterexample behind
    Theorem 13: a common prefix [G] (where [w1] by [p1] has read
    [Val[1..2]] and [w2] by [p2] has completed) extended either by
    finishing [w1] and reading (forcing [w1] before [w2] in any
    linearization) or by a third write [w3] and reading (forcing [w2]
    before [w1]).  Any write strong-linearization function must commit an
    order for [f(G)], and one of the two extensions contradicts it —
    so Algorithm 4 is not write strongly-linearizable.  The history-tree
    checker certifies this mechanically. *)

type fig3 = {
  trace : Simkit.Trace.t;
  history : History.Hist.t;
  t_w2 : int;  (** the completion time of w2, the paper's [t] *)
  ws_at_t : int list;  (** Algorithm 3's write order at time [t] *)
  final_ws : int list;  (** final write order: w3, w2, w1 *)
  w1 : int;
  w2 : int;
  w3 : int;  (** op ids *)
}

val fig3 : unit -> fig3

type fig4 = {
  g : History.Hist.t;
  h1 : History.Hist.t;  (** case 1 extension: forces w1 < w2 *)
  h2 : History.Hist.t;  (** case 2 extension: forces w2 < w1 *)
  tree : Linchk.Treecheck.tree;  (** G with children H1, H2 *)
  wsl_impossible : bool;  (** no write strong-linearization exists on the tree *)
  chains_ok : bool;  (** but each single chain G⊑H admits one *)
  all_linearizable : bool;  (** and every history alone is linearizable *)
}

val fig4 : unit -> fig4

(** {2 Random-run drivers} *)

type mwmr_run = {
  trace : Simkit.Trace.t;
  history : History.Hist.t;  (** the implemented register's history *)
  completed : bool;
}

val random_alg2_run :
  ?metrics:Obs.Metrics.t ->
  n:int -> writes_per_proc:int -> reads_per_proc:int -> seed:int64 -> unit ->
  mwmr_run
(** [n] processes hammering one Algorithm 2 register under a seeded random
    scheduler; write values are globally distinct.  [metrics] is the
    registry the run's scheduler/network instrumentation records into
    (default the global one). *)

val random_alg4_run :
  ?metrics:Obs.Metrics.t ->
  n:int -> writes_per_proc:int -> reads_per_proc:int -> seed:int64 -> unit ->
  mwmr_run

val check_alg2_run : ?metrics:Obs.Metrics.t -> mwmr_run -> (unit, string) result
(** E3's per-run verification: Algorithm 3's output is a linearization of
    the history (Definition 2) and its write order is monotone across
    every trace prefix (property (P) of Definition 4). *)

val check_alg4_run : ?metrics:Obs.Metrics.t -> mwmr_run -> (unit, string) result
(** E5's per-run verification: plain linearizability (Theorem 12). *)

module Chaos = Chaos
(** The randomized strong adversary for {!Registers.Adv_register} — see
    {!Chaos.run}. *)
