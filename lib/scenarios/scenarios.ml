module V = History.Value
module Op = History.Op
module Hist = History.Hist
module Sched = Simkit.Sched
module Trace = Simkit.Trace
module Alg2 = Registers.Alg2
module Alg4 = Registers.Alg4

let step sched pid = ignore (Sched.step sched ~pid)

let steps sched pid k =
  for _ = 1 to k do
    step sched pid
  done

let run_out sched pid =
  let fuel = ref 64 in
  while Sched.runnable sched ~pid && !fuel > 0 do
    decr fuel;
    step sched pid
  done

let prefix_upto_time h t =
  let k =
    List.length
      (List.filter (fun e -> e.History.Event.time <= t) (Hist.events h))
  in
  Hist.prefix h k

(* ---------- Figure 3 ------------------------------------------------------ *)

type fig3 = {
  trace : Trace.t;
  history : Hist.t;
  t_w2 : int;
  ws_at_t : int list;
  final_ws : int list;
  w1 : int;
  w2 : int;
  w3 : int;
}

let fig3 () =
  let sched = Sched.create ~seed:7L () in
  let r = Alg2.create ~sched ~name:"R" ~n:3 ~init:0 in
  Sched.spawn sched ~pid:1 (fun () -> Alg2.write r ~proc:1 101);
  Sched.spawn sched ~pid:2 (fun () -> Alg2.write r ~proc:2 102);
  Sched.spawn sched ~pid:3 (fun () -> Alg2.write r ~proc:3 103);
  (* w3 reads every Val[-] (complete timestamp [0,0,1]) but does not
     publish yet *)
  steps sched 3 4;
  (* w1 reads only Val[1]: its partial timestamp is [1,∞,∞] *)
  steps sched 1 2;
  (* w2 runs to completion: timestamp [0,1,0]; this is the paper's time t *)
  run_out sched 2;
  let tr = Sched.trace sched in
  let t_w2 = Trace.now tr in
  let ws_at_t = Linchk.Alg3.write_order tr ~obj:"R" ~time:t_w2 in
  (* let w3 publish, then w1 finish *)
  run_out sched 3;
  run_out sched 1;
  let history = Trace.history tr in
  let ids_by_proc p =
    Hist.ops history
    |> List.find_map (fun (o : Op.t) ->
           if o.proc = p && Op.is_write o then Some o.id else None)
    |> Option.get
  in
  {
    trace = tr;
    history;
    t_w2;
    ws_at_t;
    final_ws = Linchk.Alg3.write_order tr ~obj:"R" ~time:max_int;
    w1 = ids_by_proc 1;
    w2 = ids_by_proc 2;
    w3 = ids_by_proc 3;
  }

(* ---------- Figure 4 ------------------------------------------------------ *)

type fig4 = {
  g : Hist.t;
  h1 : Hist.t;
  h2 : Hist.t;
  tree : Linchk.Treecheck.tree;
  wsl_impossible : bool;
  chains_ok : bool;
  all_linearizable : bool;
}

(* The common prefix G: w1 (by p1) reads Val[1..2] then stalls; w2 (by p2)
   runs to completion.  [p3] is the third process whose behaviour differs
   between the two extensions. *)
let fig4_run ~p3_code =
  let sched = Sched.create ~seed:11L () in
  let r = Alg4.create ~sched ~name:"R" ~n:3 ~init:0 in
  Sched.spawn sched ~pid:1 (fun () -> Alg4.write r ~proc:1 201);
  Sched.spawn sched ~pid:2 (fun () -> Alg4.write r ~proc:2 202);
  Sched.spawn sched ~pid:3 (p3_code r);
  (* w1: invoke, read Val[1], read Val[2] *)
  steps sched 1 3;
  (* w2: full execution *)
  run_out sched 2;
  let g_time = Trace.now (Sched.trace sched) in
  (sched, r, g_time)

let fig4 () =
  (* Case-1 extension H1: w1 completes, then p3 reads (observes w2). *)
  let sched_a, _r_a, g_time_a =
    fig4_run ~p3_code:(fun r () -> ignore (Alg4.read r ~proc:3))
  in
  run_out sched_a 1;
  run_out sched_a 3;
  let h1 = Trace.history (Sched.trace sched_a) in
  let g_a = prefix_upto_time h1 g_time_a in
  (* Case-2 extension H2: w3 (by p3) completes, then w1 completes having
     seen w3's larger timestamp, then p3 reads (observes w1). *)
  let sched_b, _r_b, g_time_b =
    fig4_run ~p3_code:(fun r () ->
        Alg4.write r ~proc:3 203;
        ignore (Alg4.read r ~proc:3))
  in
  (* w3: invoke + 3 reads + publish = 5 steps (the same fiber then begins
     its read; stepping it 5 times completes exactly the write) *)
  steps sched_b 3 5;
  run_out sched_b 1;
  run_out sched_b 3;
  let h2 = Trace.history (Sched.trace sched_b) in
  let g_b = prefix_upto_time h2 g_time_b in
  if not (Hist.is_prefix g_a ~of_:h1 && Hist.is_prefix g_b ~of_:h2) then
    invalid_arg "Scenarios.fig4: prefix construction broken";
  if not (List.equal History.Event.equal_timed (Hist.events g_a) (Hist.events g_b))
  then invalid_arg "Scenarios.fig4: the two runs diverged inside G";
  let init = V.Int 0 in
  let tree =
    Linchk.Treecheck.node g_a
      [ Linchk.Treecheck.node h1 []; Linchk.Treecheck.node h2 [] ]
  in
  let chain1 = Linchk.Treecheck.chain [ g_a; h1 ] in
  let chain2 = Linchk.Treecheck.chain [ g_b; h2 ] in
  {
    g = g_a;
    h1;
    h2;
    tree;
    wsl_impossible = not (Linchk.Treecheck.write_strong ~init tree);
    chains_ok =
      Linchk.Treecheck.write_strong ~init chain1
      && Linchk.Treecheck.write_strong ~init chain2;
    all_linearizable =
      List.for_all (Linchk.Lincheck.check ~init) [ g_a; h1; h2 ];
  }

(* ---------- random-run drivers ------------------------------------------- *)

type mwmr_run = { trace : Trace.t; history : Hist.t; completed : bool }

let random_run ?metrics ~n ~writes_per_proc ~reads_per_proc ~seed ~make ~write
    ~read () =
  let sched = Sched.create ~seed ?metrics () in
  let r = make sched in
  let remaining = ref n in
  for p = 1 to n do
    Sched.spawn sched ~pid:p (fun () ->
        for k = 1 to max writes_per_proc reads_per_proc do
          if k <= writes_per_proc then write r p ((1000 * p) + k);
          if k <= reads_per_proc then ignore (read r p)
        done;
        decr remaining)
  done;
  let rng = Simkit.Rng.create (Int64.logxor seed 0x51AB07L) in
  let steps_cap = n * (writes_per_proc + reads_per_proc + 1) * (n + 4) * 8 in
  ignore
    (Sched.run sched
       ~policy:(fun s ->
         if !remaining = 0 then Sched.Halt else Sched.random_policy rng s)
       ~max_steps:steps_cap);
  let tr = Sched.trace sched in
  { trace = tr; history = Trace.history tr; completed = !remaining = 0 }

let random_alg2_run ?metrics ~n ~writes_per_proc ~reads_per_proc ~seed () =
  random_run ?metrics ~n ~writes_per_proc ~reads_per_proc ~seed
    ~make:(fun sched -> Alg2.create ~sched ~name:"R" ~n ~init:0)
    ~write:(fun r p v -> Alg2.write r ~proc:p v)
    ~read:(fun r p -> Alg2.read r ~proc:p)
    ()

let random_alg4_run ?metrics ~n ~writes_per_proc ~reads_per_proc ~seed () =
  random_run ?metrics ~n ~writes_per_proc ~reads_per_proc ~seed
    ~make:(fun sched -> Alg4.create ~sched ~name:"R" ~n ~init:0)
    ~write:(fun r p v -> Alg4.write r ~proc:p v)
    ~read:(fun r p -> Alg4.read r ~proc:p)
    ()

let check_alg2_run ?metrics run =
  if not run.completed then Error "run did not complete"
  else begin
    let init = V.Int 0 in
    let s = Linchk.Alg3.linearize ?metrics run.trace ~obj:"R" in
    if not (Hist.Seq.is_linearization_of ~init run.history s) then
      Error "Algorithm 3's output is not a linearization (L fails)"
    else begin
      (* property (P): the write order is monotone over trace prefixes *)
      let rec check_monotone prev t =
        if t > Trace.now run.trace then Ok ()
        else
          let w = Linchk.Alg3.write_order ?metrics run.trace ~obj:"R" ~time:t in
          let rec is_prefix p q =
            match (p, q) with
            | [], _ -> true
            | _, [] -> false
            | x :: p', y :: q' -> x = y && is_prefix p' q'
          in
          if is_prefix prev w then check_monotone w (t + 1)
          else
            Error
              (Printf.sprintf "write order shrank or changed at trace time %d" t)
      in
      check_monotone [] 0
    end
  end

let check_alg4_run ?metrics run =
  if not run.completed then Error "run did not complete"
  else if Linchk.Lincheck.check ?metrics ~init:(V.Int 0) run.history then Ok ()
  else Error "Algorithm 4 produced a non-linearizable history"

(* Re-export: [scenarios] is a wrapped library whose main module hides its
   siblings; expose the chaos adversary through the interface module. *)
module Chaos = Chaos
