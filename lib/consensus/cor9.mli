(** Corollary 9 of the paper: from any randomized algorithm 𝒜 solving a
    task T, build 𝒜′ = "run Algorithm 1; upon returning, run 𝒜".  Then

    + 𝒜′ uses three extra shared registers (Algorithm 1's [R1], [R2], [C]);
    + if those registers are merely linearizable, a strong adversary
      prevents 𝒜′ from terminating — the gate never opens, so the task
      code never even starts;
    + if they are write strongly-linearizable, 𝒜′ terminates with
      probability 1 and solves T.

    Here 𝒜 is the randomized consensus of {!Rand_consensus}; the
    composition reuses the Theorem-6 adversary via {!Game.Thm6.play_round}
    on both sides, so the {e only} difference between the blocked and the
    live run is the register mode — precisely the paper's claim. *)

type cfg = {
  n : int;  (** processes (>= 3); consensus runs among all [n] *)
  gate_rounds : int;
      (** rounds to drive the adversary for (blocked case) / cap (live case) *)
  consensus_max_rounds : int;
  seed : int64;
}

type outcome = {
  game : Game.Alg1.result;
  consensus : Rand_consensus.result;
  blocked : bool;  (** true iff no process ever started 𝒜 *)
}

val run_blocked : ?metrics:Obs.Metrics.t -> cfg -> outcome
(** 𝒜′ with [Linearizable] registers under the Theorem-6 adversary:
    after [gate_rounds] rounds every process is still inside Algorithm 1
    and no consensus fiber has taken a single step
    ([blocked = true], all decisions [None]). *)

val run_live : ?metrics:Obs.Metrics.t -> cfg -> inputs:(int -> int) -> outcome
(** 𝒜′ with [Write_strong] registers under the same adversary: the gate
    opens almost surely; every process then decides, and agreement/
    validity hold ([blocked = false]). *)
