module Adv = Registers.Adv_register
module Sched = Simkit.Sched
module Alg1 = Game.Alg1
module Thm6 = Game.Thm6

type cfg = {
  n : int;
  gate_rounds : int;
  consensus_max_rounds : int;
  seed : int64;
}

type outcome = {
  game : Alg1.result;
  consensus : Rand_consensus.result;
  blocked : bool;
}

let players_of n = List.init (n - 2) (fun k -> k + 2)

(* Build 𝒜′: Algorithm 1 whose [after] hook runs the consensus body.  The
   consensus instance shares the game's scheduler; consensus process ids
   are 1-based (game pid + 1). *)
let setup_a' ?metrics cfg ~mode ~inputs =
  let game_cfg =
    {
      Alg1.n = cfg.n;
      mode;
      aux_mode = None;
      variant = Alg1.Unbounded;
      max_rounds = cfg.gate_rounds + 2;
      seed = cfg.seed;
    }
  in
  (* the scheduler is created inside Alg1.setup; thread the consensus
     instance lazily through a forward reference *)
  let inst = ref None in
  let after ~pid =
    match !inst with
    | Some t -> Rand_consensus.body t ~proc:(pid + 1) ~input:(inputs pid)
    | None -> assert false
  in
  let handles = Alg1.setup ~after ?metrics game_cfg in
  let ccfg =
    {
      Rand_consensus.n = cfg.n;
      max_rounds = cfg.consensus_max_rounds;
      seed = Int64.logxor cfg.seed 0x00C0FFEEL;
    }
  in
  inst := Some (Rand_consensus.make ~sched:handles.Alg1.sched ccfg);
  (game_cfg, handles, Option.get !inst)

let run_blocked ?metrics cfg =
  if cfg.n < 3 then invalid_arg "Cor9.run_blocked: n must be >= 3";
  let game_cfg, handles, inst =
    setup_a' ?metrics cfg ~mode:Adv.Linearizable ~inputs:(fun pid -> pid mod 2)
  in
  let players = players_of cfg.n in
  for _ = 1 to cfg.gate_rounds do
    if not (Thm6.play_round handles ~players ~reorder:true ~first_writer:0)
    then invalid_arg "Cor9.run_blocked: the adversary lost control"
  done;
  let game = Alg1.collect game_cfg handles in
  let consensus = Rand_consensus.results inst in
  let blocked =
    List.for_all (fun (_, d) -> Option.is_none d)
      consensus.Rand_consensus.decisions
    && not game.Alg1.terminated
  in
  { game; consensus; blocked }

let run_live ?metrics cfg ~inputs =
  if cfg.n < 3 then invalid_arg "Cor9.run_live: n must be >= 3";
  let game_cfg, handles, inst =
    setup_a' ?metrics cfg ~mode:Adv.Write_strong ~inputs
  in
  let players = players_of cfg.n in
  let guess_rng = Simkit.Rng.create (Int64.logxor cfg.seed 0xBADC0DEL) in
  let continue_ = ref true in
  let r = ref 0 in
  while !continue_ && !r < cfg.gate_rounds do
    incr r;
    let guess = Simkit.Rng.coin guess_rng in
    continue_ := Thm6.play_round handles ~players ~reorder:false ~first_writer:guess
  done;
  (* the gate has opened (almost surely); let the consensus fibers run *)
  ignore
    (Sched.run handles.Alg1.sched
       ~policy:(fun s -> Sched.round_robin s)
       ~max_steps:(cfg.n * cfg.n * cfg.consensus_max_rounds * 100));
  let game = Alg1.collect game_cfg handles in
  let consensus = Rand_consensus.results inst in
  { game; consensus; blocked = false }
