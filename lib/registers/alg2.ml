module V = History.Value
module Op = History.Op
module Vec = Clocks.Vector
module Trace = Simkit.Trace
module Sched = Simkit.Sched

type t = {
  sched : Sched.t;
  name_ : string;
  n_ : int;
  vals : (int * Vec.t) Swmr.t array; (* Val[1..n], 0-indexed storage *)
}

let create ~sched ~name ~n ~init =
  if n < 1 then invalid_arg "Alg2.create: n must be >= 1";
  let vals =
    Array.init n (fun i ->
        Swmr.create ~writer:(i + 1)
          ~name:(Printf.sprintf "%s.Val[%d]" name (i + 1))
          (init, Vec.zero n))
  in
  { sched; name_ = name; n_ = n; vals }

let name t = t.name_
let n t = t.n_

let check_proc t proc =
  if proc < 1 || proc > t.n_ then
    invalid_arg
      (Printf.sprintf "%s: process id %d out of range 1..%d" t.name_ proc t.n_)

let write t ~proc v =
  check_proc t proc;
  Obs.Metrics.incr (Sched.metrics t.sched) "reg.alg2.writes";
  let tr = Sched.trace t.sched in
  let op_id = Trace.invoke tr ~proc ~obj:t.name_ ~kind:(Op.Write (V.Int v)) in
  (* local new_ts starts as [∞,…,∞] (its value between operations) *)
  let new_ts = ref (Vec.all_inf t.n_) in
  Trace.ts_snapshot tr ~op_id ~proc ~ts:!new_ts;
  (* lines 1–7: build the timestamp incrementally, in index order *)
  for i = 1 to t.n_ do
    let _, ts_i = Swmr.read t.vals.(i - 1) in
    let base = match Vec.get ts_i i with Vec.Fin x -> x | Vec.Inf -> assert false in
    let comp = if i = proc then base + 1 else base in
    new_ts := Vec.set !new_ts i comp;
    Trace.ts_snapshot tr ~op_id ~proc ~ts:!new_ts
  done;
  (* line 8: publish (v, new_ts) to Val[k]; the annotation's time is the
     t_i consumed by Algorithm 3 *)
  Swmr.write t.vals.(proc - 1) ~proc (v, !new_ts);
  Trace.val_write tr ~op_id ~proc ~idx:proc;
  (* line 9: reset new_ts to [∞,…,∞] *)
  new_ts := Vec.all_inf t.n_;
  Trace.ts_snapshot tr ~op_id ~proc ~ts:!new_ts;
  (* line 10 *)
  Trace.respond tr ~op_id ~result:None

let read_impl t ~proc =
  check_proc t proc;
  Obs.Metrics.incr (Sched.metrics t.sched) "reg.alg2.reads";
  let tr = Sched.trace t.sched in
  let op_id = Trace.invoke tr ~proc ~obj:t.name_ ~kind:Op.Read in
  (* lines 11–13: collect all Val[-] *)
  let pairs = Array.make t.n_ (0, Vec.zero t.n_) in
  for i = 1 to t.n_ do
    pairs.(i - 1) <- Swmr.read t.vals.(i - 1)
  done;
  (* lines 14–15: lexicographic max *)
  let best = ref pairs.(0) in
  Array.iter (fun (v, ts) -> if Vec.compare ts (snd !best) > 0 then best := (v, ts)) pairs;
  let v, ts = !best in
  Trace.read_ts tr ~op_id ~proc ~ts;
  Trace.respond tr ~op_id ~result:(Some (V.Int v));
  (v, ts)

let read_with_ts t ~proc = read_impl t ~proc
let read t ~proc = fst (read_impl t ~proc)
let val_contents t = Array.map Swmr.peek t.vals
