module V = History.Value
module Op = History.Op
module Lam = Clocks.Lamport
module Trace = Simkit.Trace
module Sched = Simkit.Sched

type t = {
  sched : Sched.t;
  name_ : string;
  n_ : int;
  vals : (int * Lam.t) Swmr.t array;
}

let create ~sched ~name ~n ~init =
  if n < 1 then invalid_arg "Alg4.create: n must be >= 1";
  let vals =
    Array.init n (fun i ->
        Swmr.create ~writer:(i + 1)
          ~name:(Printf.sprintf "%s.Val[%d]" name (i + 1))
          (init, Lam.initial ~pid:(i + 1)))
  in
  { sched; name_ = name; n_ = n; vals }

let name t = t.name_
let n t = t.n_

let check_proc t proc =
  if proc < 1 || proc > t.n_ then
    invalid_arg
      (Printf.sprintf "%s: process id %d out of range 1..%d" t.name_ proc t.n_)

let write t ~proc v =
  check_proc t proc;
  Obs.Metrics.incr (Sched.metrics t.sched) "reg.alg4.writes";
  let tr = Sched.trace t.sched in
  let op_id = Trace.invoke tr ~proc ~obj:t.name_ ~kind:(Op.Write (V.Int v)) in
  (* lines 1–3: read every Val[-] *)
  let max_sq = ref 0 in
  for i = 1 to t.n_ do
    let _, ts_i = Swmr.read t.vals.(i - 1) in
    max_sq := max !max_sq ts_i.Lam.sq
  done;
  (* lines 4–6: new timestamp, publish *)
  let new_ts = Lam.bump ~max_sq:!max_sq ~pid:proc in
  Swmr.write t.vals.(proc - 1) ~proc (v, new_ts);
  Trace.val_write tr ~op_id ~proc ~idx:proc;
  (* line 7 *)
  Trace.respond tr ~op_id ~result:None

let read_impl t ~proc =
  check_proc t proc;
  Obs.Metrics.incr (Sched.metrics t.sched) "reg.alg4.reads";
  let tr = Sched.trace t.sched in
  let op_id = Trace.invoke tr ~proc ~obj:t.name_ ~kind:Op.Read in
  (* lines 8–10 *)
  let pairs = Array.make t.n_ (0, Lam.initial ~pid:1) in
  for i = 1 to t.n_ do
    pairs.(i - 1) <- Swmr.read t.vals.(i - 1)
  done;
  (* lines 11–12: lexicographic max *)
  let best = ref pairs.(0) in
  Array.iter
    (fun (v, ts) -> if Lam.compare ts (snd !best) > 0 then best := (v, ts))
    pairs;
  let v, _ts = !best in
  Trace.respond tr ~op_id ~result:(Some (V.Int v));
  !best

let read_with_ts t ~proc = read_impl t ~proc
let read t ~proc = fst (read_impl t ~proc)
let val_contents t = Array.map Swmr.peek t.vals
