module V = History.Value
module Op = History.Op
module Trace = Simkit.Trace
module Sched = Simkit.Sched
module Fiber = Simkit.Fiber

exception Illegal of string

type mode = Atomic | Write_strong | Linearizable

type slot = {
  op_id : int;
  proc : int;
  kind : Op.kind;
  invoked_at : int;
  mutable captured : V.t option; (* reads: value fixed at linearization *)
  mutable responded_at : int option;
}

type t = {
  sched : Sched.t;
  name_ : string;
  init : V.t;
  mode_ : mode;
  mutable seq : slot list; (* committed linearization, in order *)
  mutable pend : slot list; (* invoked, uncommitted, invocation order *)
  mutable commit_log : (int * int list) list; (* reverse order *)
}

let create ~sched ~name ~init ~mode =
  { sched; name_ = name; init; mode_ = mode; seq = []; pend = []; commit_log = [] }

let name t = t.name_
let mode t = t.mode_
let illegal fmt = Format.kasprintf (fun s -> raise (Illegal s)) fmt

(* ----- queries ----------------------------------------------------------- *)

let pending t = List.map (fun s -> (s.op_id, s.proc, s.kind)) t.pend

let pending_of_proc t ~proc =
  List.find_map (fun s -> if s.proc = proc then Some s.op_id else None) t.pend

let committed_ids t = List.map (fun s -> s.op_id) t.seq

let position_of t ~op_id =
  let rec go i = function
    | [] -> None
    | s :: _ when s.op_id = op_id -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.seq

let last_write_value ~init slots =
  List.fold_left
    (fun acc s -> match s.kind with Op.Write v -> v | Op.Read -> acc)
    init slots

let current_value t = last_write_value ~init:t.init t.seq

(* ----- legality ----------------------------------------------------------- *)

let take n l =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: xs -> x :: go (n - 1) xs
  in
  go n l

let drop n l =
  let rec go n = function
    | l when n = 0 -> l
    | [] -> []
    | _ :: xs -> go (n - 1) xs
  in
  go n l

(* Check that inserting [slot] at [pos] preserves every committed read's
   captured value and respects real-time precedence. *)
let check_insertion t slot pos =
  let before = take pos t.seq and after = drop pos t.seq in
  (* real-time precedence: nothing at or after [pos] may have responded
     before [slot] was invoked *)
  List.iter
    (fun s ->
      match s.responded_at with
      | Some r when r < slot.invoked_at ->
          illegal
            "%s: op #%d cannot be linearized before op #%d, which completed \
             before it was invoked"
            t.name_ slot.op_id s.op_id
      | _ -> ())
    after;
  (* committed reads after the insertion point must keep their values *)
  (match slot.kind with
  | Op.Read -> ()
  | Op.Write _ ->
      let rec scan current = function
        | [] -> ()
        | s :: rest -> (
            match s.kind with
            | Op.Write v -> scan v rest
            | Op.Read -> (
                match s.captured with
                | Some v when not (V.equal v current) ->
                    illegal
                      "%s: inserting write #%d at %d would change the value \
                       observed by already-linearized read #%d"
                      t.name_ slot.op_id pos s.op_id
                | _ -> scan current rest))
      in
      let v_ins =
        match slot.kind with Op.Write v -> v | Op.Read -> assert false
      in
      scan v_ins after);
  ignore before

let find_pending t op_id =
  match List.find_opt (fun s -> s.op_id = op_id) t.pend with
  | Some s -> s
  | None -> (
      match List.find_opt (fun s -> s.op_id = op_id) t.seq with
      | Some _ -> illegal "%s: op #%d is already linearized" t.name_ op_id
      | None -> illegal "%s: unknown pending op #%d" t.name_ op_id)

let log_if_write t slot =
  match slot.kind with
  | Op.Write _ ->
      let writes =
        List.filter_map
          (fun s ->
            match s.kind with Op.Write _ -> Some s.op_id | Op.Read -> None)
          t.seq
      in
      t.commit_log <- (Trace.now (Sched.trace t.sched), writes) :: t.commit_log
  | Op.Read -> ()

let do_commit t slot pos =
  check_insertion t slot pos;
  (match slot.kind with
  | Op.Read ->
      slot.captured <- Some (last_write_value ~init:t.init (take pos t.seq))
  | Op.Write _ -> ());
  t.seq <- take pos t.seq @ [ slot ] @ drop pos t.seq;
  t.pend <- List.filter (fun s -> s.op_id <> slot.op_id) t.pend;
  Trace.linearize (Sched.trace t.sched) ~op_id:slot.op_id;
  log_if_write t slot

let commit_end_slot t slot = do_commit t slot (List.length t.seq)

let commit_end t ~op_id = commit_end_slot t (find_pending t op_id)

let commit t ~op_id ~pos =
  (match t.mode_ with
  | Atomic -> illegal "%s: atomic registers admit no adversarial commits" t.name_
  | Write_strong | Linearizable -> ());
  let slot = find_pending t op_id in
  if pos < 0 || pos > List.length t.seq then
    illegal "%s: commit position %d out of range" t.name_ pos;
  (match (t.mode_, slot.kind) with
  | Write_strong, Op.Write _ ->
      (* a write may only be appended after every committed write *)
      let writes_after =
        drop pos t.seq
        |> List.exists (fun s ->
               match s.kind with Op.Write _ -> true | Op.Read -> false)
      in
      if writes_after then
        illegal
          "%s: write strong-linearizability forbids inserting write #%d \
           before an already-linearized write"
          t.name_ slot.op_id
  | _ -> ());
  do_commit t slot pos

(* ----- process side -------------------------------------------------------- *)

let invoke t ~proc ~kind =
  let tr = Sched.trace t.sched in
  (match pending_of_proc t ~proc with
  | Some id ->
      illegal "%s: process %d invokes while op #%d is pending" t.name_ proc id
  | None -> ());
  let op_id = Trace.invoke tr ~proc ~obj:t.name_ ~kind in
  let slot =
    {
      op_id;
      proc;
      kind;
      invoked_at = Trace.now tr;
      captured = None;
      responded_at = None;
    }
  in
  t.pend <- t.pend @ [ slot ];
  slot

let respond t slot =
  let tr = Sched.trace t.sched in
  let result = match slot.kind with Op.Read -> slot.captured | Op.Write _ -> None in
  Trace.respond tr ~op_id:slot.op_id ~result;
  slot.responded_at <- Some (Trace.now tr)

let is_committed t slot = List.exists (fun s -> s.op_id = slot.op_id) t.seq

let await_and_respond t slot =
  (* Block until the adversary steps us again; auto-commit if needed. *)
  Fiber.yield ();
  if not (is_committed t slot) then commit_end_slot t slot;
  respond t slot

let write t ~proc v =
  Obs.Metrics.incr (Sched.metrics t.sched) "reg.adv.writes";
  let slot = invoke t ~proc ~kind:(Op.Write v) in
  match t.mode_ with
  | Atomic ->
      commit_end_slot t slot;
      respond t slot;
      Fiber.yield ()
  | Write_strong | Linearizable -> await_and_respond t slot

let read t ~proc =
  Obs.Metrics.incr (Sched.metrics t.sched) "reg.adv.reads";
  let slot = invoke t ~proc ~kind:Op.Read in
  (match t.mode_ with
  | Atomic ->
      commit_end_slot t slot;
      respond t slot;
      Fiber.yield ()
  | Write_strong | Linearizable -> await_and_respond t slot);
  match slot.captured with
  | Some v -> v
  | None -> assert false (* committed reads always capture *)

(* ----- witnesses ------------------------------------------------------------ *)

let linearization t =
  List.map
    (fun s ->
      Op.make ~id:s.op_id ~proc:s.proc ~obj:t.name_ ~kind:s.kind
        ~invoked:s.invoked_at
        ?responded:s.responded_at
        ?result:(match s.kind with Op.Read -> s.captured | Op.Write _ -> None)
        ())
    t.seq

let write_commit_log t = List.rev t.commit_log
