(** Deterministic pseudo-random number generator (SplitMix64).

    Every source of randomness in the simulator — coin flips, random
    schedulers, workload generators — draws from one of these, so whole
    experiments are reproducible from a single 64-bit seed.  We do not use
    [Stdlib.Random] because its global state would couple unrelated
    components and break run-for-run determinism. *)

type t

val create : int64 -> t
val copy : t -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)] (53 bits of precision) — used by the
    fault-injection layer to test per-message probabilities. *)

val bool : t -> bool

val coin : t -> int
(** 0 or 1, uniform — the paper's coin flip (Algorithm 1, line 6). *)

val split : t -> t
(** Derive an independent stream (for per-process randomness). *)
