(** Deterministic, seed-driven fault plans for the message-passing layer.

    The paper's model is adversarial: Theorem 6's non-termination and the
    ABD constructions only make sense relative to a scheduler/network that
    may misbehave.  A {!plan} describes the misbehaviour statistically —
    per-delivery drop / duplication / deferral probabilities, a bounded
    reorder window, a crash schedule, and partition intervals — and a
    {!t} turns it into a reproducible stream of fault decisions drawn from
    a {e dedicated} {!Rng} (never the scheduler's or the delivery
    policy's), so attaching or detaching faults perturbs no other random
    stream, and identical (plan, seed) pairs replay identical faults
    whatever the degree of experiment parallelism.

    Faults apply at {e delivery} time ({!Msgpass.Net} consults {!draw}
    once per delivery attempt):
    - [Drop]: the message is discarded;
    - [Duplicate]: the message is delivered {e and} a copy is re-enqueued
      in flight (the copy is itself subject to faults later);
    - [Defer]: the message returns to the back of the in-flight queue —
      bounded per message by [delay_bound], so deferral alone can reorder
      a message past at most [delay_bound] delivery attempts and can never
      starve it forever;
    - [Deliver]: normal delivery.

    Crash schedules ([crash_at]) and partitions are time-based, keyed on
    the scheduler's step counter ({!Sched.steps}); the run driver applies
    {!crashes_due} from its policy, the network consults {!partitioned}
    before drawing.  All of it is deterministic in (plan, seed, schedule). *)

type plan = {
  drop : float;  (** per-delivery-attempt drop probability, in [0,1] *)
  duplicate : float;  (** per-delivery duplication probability, in [0,1] *)
  delay : float;  (** per-delivery deferral probability, in [0,1] *)
  delay_bound : int;
      (** max deferrals per message (the reorder window); must be > 0 for
          [delay] to have any effect *)
  crash_at : (int * int) list;
      (** [(step, node)]: crash [node] once the scheduler step counter
          reaches [step] — consumed via {!crashes_due} by the run driver *)
  recover_at : (int * int) list;
      (** [(step, node)]: restart [node] once the scheduler step counter
          reaches [step] — consumed via {!recoveries_due}.  Each entry must
          pair with an earlier [crash_at] entry for the same node: per
          node, crash and recover events must alternate starting with a
          crash, at strictly increasing steps (so a recovery of a
          never-crashed or still-running node is rejected by
          {!validate}). *)
  partitions : (int * int * int list) list;
      (** [(start, length, isolated)]: during scheduler steps
          [start <= step < start + length], messages crossing the boundary
          between [isolated] and the rest are deferred (held in flight) *)
}

val none : plan
(** The benign plan: all probabilities 0, no crashes, no partitions. *)

val is_benign : plan -> bool
(** No fault of any kind can ever fire. *)

val affects_delivery : plan -> bool
(** Some per-delivery fault (drop/duplicate/delay/partition) can fire —
    i.e. the network needs to consult the fault stream at delivery time. *)

val validate : plan -> unit
(** @raise Invalid_argument unless all probabilities are in [0,1], their
    sum is <= 1 (one uniform draw decides the action), [delay_bound >= 0]
    (and > 0 whenever [delay > 0]), crash/recover steps are non-negative,
    each node's crash and recover events alternate (crash first, strictly
    increasing steps), and the partition intervals are non-inverted
    (positive length), non-empty (isolate at least one node) and pairwise
    non-overlapping in time. *)

val plan_json : plan -> Obs.Json.t
(** The plan as data — embedded verbatim in chaos regression-corpus
    entries, so a minimal reproducer replays the exact fault plan. *)

val plan_of_json : Obs.Json.t -> (plan, string) result
(** Inverse of {!plan_json}; the parsed plan is {!validate}d, so a corpus
    entry can never smuggle in a malformed plan. *)

val prob_ladder : float list
(** The probability lattice (ascending, starting at 0) that the chaos
    generator draws drop/duplicate/delay rates from and the shrinker
    descends one rung at a time. *)

val shrink_plan : plan -> plan list
(** Mutation hook for the delta-debugging shrinker: every plan strictly
    smaller than [p] along exactly one axis — each probability moved one
    {!prob_ladder} rung toward 0, each [crash_at] entry dropped (together
    with the recovery paired to it, so alternation survives), each
    [recover_at] entry dropped on its own (crash–recover degrades to
    crash-stop), each partition dropped, the reorder window halved.
    Every candidate {!validate}s; a fully-benign plan has no
    candidates. *)

val pp_plan : Format.formatter -> plan -> unit
(** One-line rendering, e.g. [drop=0.1 dup=0.05 delay=0 crashes=2]. *)

type action = Deliver | Drop | Duplicate | Defer

type t
(** A plan plus its dedicated fault RNG and crash-schedule cursor. *)

val create : ?seed:int64 -> plan -> t
(** Validates the plan.  [seed] (default [0xFA17L]) seeds the dedicated
    fault stream. *)

val plan : t -> plan

val draw : t -> deferrals:int -> action
(** Decide the fate of one delivery attempt, consuming exactly one RNG
    draw whatever the outcome (so fault streams stay aligned across
    plans with equal probabilities).  [deferrals] is how often this
    message was already deferred; at [delay_bound] the [Defer] band
    resolves to [Deliver]. *)

val partitioned : t -> step:int -> src:int -> dst:int -> bool
(** Does a partition interval active at [step] separate [src] from
    [dst]?  (Both inside or both outside an isolated set communicate.) *)

val partition_active : t -> step:int -> bool

val crashes_due : t -> step:int -> int list
(** Nodes whose [crash_at] step has arrived, each returned exactly once
    across the life of [t] (ascending schedule order). *)

val recoveries_due : t -> step:int -> int list
(** Nodes whose [recover_at] step has arrived, each entry returned
    exactly once across the life of [t] (ascending schedule order).  The
    run driver applies crashes before recoveries within one policy tick;
    validation guarantees a due recovery's crash fired at a strictly
    earlier step. *)
