(** Execution traces.

    A trace records everything that happens in a run, in global time order:
    the high-level invocation/response events that form the {e history}
    (in the Herlihy–Wing sense), plus internal annotations that are not part
    of the history but that the paper's constructions need:

    - linearization points chosen by register implementations (used to
      audit that a register really linearized each operation within its
      interval);
    - coin flips (visible to a {e strong} adversary only after they occur);
    - the base-register writes and partial-timestamp snapshots of
      Algorithm 2, which are exactly the inputs Algorithm 3 (the on-line
      write strong-linearization function) consumes. *)

type entry =
  | Ev of History.Event.timed  (** history event *)
  | Lin of { time : int; op_id : int }
      (** linearization point of operation [op_id] *)
  | Coin of { time : int; proc : int; value : int }
  | ValWrite of { time : int; op_id : int; proc : int; idx : int }
      (** Algorithm 2 line 8: the write to [Val[idx]] performed on behalf of
          high-level write [op_id] *)
  | TsSnapshot of { time : int; op_id : int; proc : int; ts : Clocks.Vector.t }
      (** the value of the writer's [new_ts] after an update, while
          executing high-level write [op_id] *)
  | ReadTs of { time : int; op_id : int; proc : int; ts : Clocks.Vector.t }
      (** the winning timestamp selected by a completed read of the
          Algorithm 2 register (line 14) — lets Algorithm 3 match the read
          to the write whose value it returned even when values repeat *)
  | Note of { time : int; tag : string; text : string }

type t

val create : ?metrics:Obs.Metrics.t -> unit -> t
(** [metrics] (default {!Obs.Metrics.global}) receives the trace's
    counters ([trace.invokes], [trace.responds], [trace.lins]) and the
    per-operation simulated-time latency histogram [op.latency.sim]. *)

val metrics : t -> Obs.Metrics.t

val now : t -> int
(** The current clock: the time of the last recorded entry. *)

val next_time : t -> int
(** Advance the clock and return the fresh timestamp.  Every recorded entry
    calls this internally, so all entries have distinct times. *)

val invoke : t -> proc:int -> obj:string -> kind:History.Op.kind -> int
(** Record an invocation; returns the fresh operation id. *)

val respond : t -> op_id:int -> result:History.Value.t option -> unit
val linearize : t -> op_id:int -> unit
val coin : t -> proc:int -> value:int -> unit
val val_write : t -> op_id:int -> proc:int -> idx:int -> unit
val ts_snapshot : t -> op_id:int -> proc:int -> ts:Clocks.Vector.t -> unit
val read_ts : t -> op_id:int -> proc:int -> ts:Clocks.Vector.t -> unit
val note : t -> tag:string -> text:string -> unit

val entries : t -> entry list
(** In time order. *)

val drain : t -> entry list
(** The accumulated entries in time order, removing them from the trace.
    The clock and the op-id counter are untouched, so entries recorded
    after a drain continue the same timeline (distinct times, distinct
    op ids).  Long-running workloads (the fleet's million-op runs) drain
    periodically and feed the events into the streaming checker, keeping
    trace memory bounded by the drain interval instead of the run
    length.  {!history}/{!lin_time}/{!coins} afterwards see only what
    was recorded since the last drain. *)

val history : t -> History.Hist.t
(** The history (the [Ev] entries only). *)

val lin_time : t -> op_id:int -> int option
(** Time of the (first) recorded linearization point of an operation. *)

val coins : t -> (int * int * int) list
(** [(time, proc, value)] for every coin flip, in time order. *)

val entry_time : entry -> int
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

(** {2 JSONL serialization}

    One JSON object per entry, each with a [t] (time) and [kind] field;
    see DESIGN.md "Observability" for the full schema.  [Obs.Export]
    provides the line-delimited writer these feed into. *)

val value_json : History.Value.t -> Obs.Json.t
val entry_json : entry -> Obs.Json.t

val json_entries : t -> Obs.Json.t list
(** The whole trace in time order — [Obs.Export.to_file] writes it as the
    JSONL dump behind [rlin trace --out]. *)
