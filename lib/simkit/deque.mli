(** Chase–Lev work-stealing deque over [Domain]/[Atomic] (no new deps).

    One domain owns the deque and works its bottom end ({!push}/{!pop},
    LIFO); any other domain may {!steal} from the top end (FIFO), so the
    oldest task migrates first and the owner keeps cache-warm recent
    work.  This is the per-domain task store of the work-stealing
    checker driver ([Simkit.Steal]) — distinct from [Simkit.Pool], which
    shares a single atomic cursor {e across} runs.

    Implementation notes (the OCaml-memory-model-friendly shape, after
    Chase & Lev 2005 and domainslib's [ws_deque]):
    - slots are individual ['a option Atomic.t] cells, so a stolen value
      is read whole — no torn pairs;
    - [top] only ever increases, and advancing it (owner taking the last
      element, or a thief taking the oldest) goes through a CAS, which
      is the single arbitration point;
    - the circular buffer grows by publishing a fresh slot array through
      an [Atomic.t]; a thief still probing the superseded array is safe
      because the CAS on [top] decides ownership and retired arrays are
      never written again.

    Owner-only operations must be called from one domain at a time;
    {!steal} is safe from any domain, concurrently with everything. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] (default 32) is rounded up to a power of two [>= 8];
    the deque grows on demand past it. *)

val push : 'a t -> 'a -> unit
(** Owner only: add at the bottom. *)

val pop : 'a t -> 'a option
(** Owner only: take the most recently pushed element, or [None] when
    the deque is empty (a thief may have emptied it). *)

val steal : 'a t -> 'a option
(** Any domain: take the {e oldest} element, or [None] when empty.
    Lock-free; retries internally on CAS contention until it either
    takes an element or observes an empty deque. *)

val size : 'a t -> int
(** A racy snapshot of the current element count (monitoring only). *)
