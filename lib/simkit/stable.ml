type policy = Every | Explicit | Prob of float

type 'a node_log = {
  mutable records : 'a list; (* newest first *)
  mutable len_ : int;
  mutable durable_ : int; (* durable frontier: oldest [durable_] records *)
  mutable lost_ : int;
}

type 'a t = {
  logs : 'a node_log array;
  policy : policy;
  auto_compact : bool;
  rng : Rng.t;
  appends_c : Obs.Metrics.Counter.t;
  persists_c : Obs.Metrics.Counter.t;
  lost_c : Obs.Metrics.Counter.t;
  compacted_c : Obs.Metrics.Counter.t;
}

let create ?(metrics = Obs.Metrics.global) ?(policy = Every)
    ?(auto_compact = false) ?rng ~n () =
  if n <= 0 then invalid_arg "Stable.create: n must be > 0";
  (match policy with
  | Prob p when not (p >= 0. && p <= 1.) ->
      invalid_arg "Stable.create: Prob probability must be in [0,1]"
  | _ -> ());
  {
    logs =
      Array.init n (fun _ ->
          { records = []; len_ = 0; durable_ = 0; lost_ = 0 });
    policy;
    auto_compact;
    rng = (match rng with Some r -> r | None -> Rng.create 0x57AB1EL);
    appends_c = Obs.Metrics.counter_h metrics "stable.appends";
    persists_c = Obs.Metrics.counter_h metrics "stable.persists";
    lost_c = Obs.Metrics.counter_h metrics "stable.lost";
    compacted_c = Obs.Metrics.counter_h metrics "stable.compacted";
  }

let node_log t node =
  if node < 0 || node >= Array.length t.logs then
    invalid_arg (Printf.sprintf "Stable: node %d out of range" node);
  t.logs.(node)

(* Checkpoint semantics: the newest durable record supersedes every older
   durable one — recovery only ever reads {!last_durable} — so the
   superseded prefix can be dropped without changing what any crash or
   recovery observes.  The volatile tail is untouched (a crash must still
   chop exactly it).  Returns the number of records dropped. *)
let compact t ~node =
  let l = node_log t node in
  if l.durable_ <= 1 then 0
  else begin
    let keep = l.len_ - l.durable_ + 1 in
    let dropped = l.durable_ - 1 in
    l.records <- List.filteri (fun i _ -> i < keep) l.records;
    l.len_ <- keep;
    l.durable_ <- 1;
    Obs.Metrics.incr_h ~by:dropped t.compacted_c;
    dropped
  end

let persist t ~node =
  let l = node_log t node in
  let newly = l.len_ - l.durable_ in
  if newly > 0 then begin
    l.durable_ <- l.len_;
    Obs.Metrics.incr_h ~by:newly t.persists_c;
    (* bounded-log mode: every sync point compacts, so a node's log holds
       at most one durable record plus the volatile tail — flat memory
       across million-write fleet runs *)
    if t.auto_compact then ignore (compact t ~node : int)
  end

let append t ~node v =
  let l = node_log t node in
  l.records <- v :: l.records;
  l.len_ <- l.len_ + 1;
  Obs.Metrics.incr_h t.appends_c;
  match t.policy with
  | Every -> persist t ~node
  | Explicit -> ()
  | Prob p -> if Rng.float t.rng < p then persist t ~node

let crash t ~node =
  let l = node_log t node in
  let dropped = l.len_ - l.durable_ in
  if dropped > 0 then begin
    let rec chop k xs = if k = 0 then xs else chop (k - 1) (List.tl xs) in
    l.records <- chop dropped l.records;
    l.len_ <- l.durable_;
    l.lost_ <- l.lost_ + dropped;
    Obs.Metrics.incr_h ~by:dropped t.lost_c
  end;
  dropped

let last t ~node =
  match (node_log t node).records with [] -> None | v :: _ -> Some v

let last_durable t ~node =
  let l = node_log t node in
  if l.durable_ = 0 then None
  else Some (List.nth l.records (l.len_ - l.durable_))

let log t ~node = List.rev (node_log t node).records
let durable_len t ~node = (node_log t node).durable_
let len t ~node = (node_log t node).len_
let lost t ~node = (node_log t node).lost_
