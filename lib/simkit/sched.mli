(** The scheduler: the executable form of the paper's adversary.

    A schedule is a sequence of decisions "which process takes the next
    step".  A {e strong} adversary makes each decision with full knowledge
    of the run so far — including the outcomes of past coin flips — but not
    of future ones.  Concretely, a policy here is an OCaml function that
    inspects the scheduler (trace, fiber statuses, any register state it
    holds a handle to) and picks the next process to step; scripted
    adversaries (like the one in the proof of Theorem 6) simply call
    {!step} directly. *)

type t

val create :
  ?seed:int64 -> ?metrics:Obs.Metrics.t -> ?tracer:Obs.Tracer.t -> unit -> t
(** [metrics] (default {!Obs.Metrics.global}) receives the scheduler's
    counters — [sched.steps], [sched.coins], [sched.crashes],
    [sched.restarts], [sched.recycles], [sched.spawns], [sched.runs] —
    and the per-{!run}
    step histogram
    [sched.run.steps], plus everything its {!Trace.t} records.

    [tracer] (default {!Obs.Tracer.null}, i.e. off) is the flight
    recorder this scheduler — and every component built on it
    ({!Msgpass.Net}, the registers) — emits causal events to: [spawn],
    [step], [coin], [crash] and [watchdog] events in category ["sched"],
    stamped with the step clock and the acting pid as track. *)

val trace : t -> Trace.t
val rng : t -> Rng.t
val now : t -> int

val steps : t -> int
(** Total process steps taken so far, across every {!step}/{!run} call —
    the scheduler-step clock that time-based fault schedules
    ({!Faults.plan}'s [crash_at] and partitions) are keyed on. *)

val metrics : t -> Obs.Metrics.t
(** The registry this scheduler (and its trace, and any component built on
    it, e.g. {!Msgpass.Net}) records into. *)

val tracer : t -> Obs.Tracer.t
(** The flight recorder passed at {!create} ({!Obs.Tracer.null} when
    tracing is off) — components built on this scheduler emit through
    it, so one [?tracer] argument arms the whole stack. *)

val spawn : t -> pid:int -> (unit -> unit) -> unit
(** Register process [pid] with the given code.
    @raise Invalid_argument on duplicate pid. *)

val pids : t -> int list
(** All spawned pids, ascending. *)

val status : t -> pid:int -> Fiber.status
val runnable : t -> pid:int -> bool
(** Runnable and not crashed. *)

val live_pids : t -> int list
(** Pids that are runnable and not crashed. *)

val step : t -> pid:int -> Fiber.status
(** Let process [pid] run until its next yield.
    @raise Invalid_argument if [pid] is unknown, crashed or finished. *)

val crash : t -> pid:int -> unit
(** Crash-stop the process: it takes no further steps.  Models the paper's
    crash failures (and ABD's assumption that fewer than half of the
    processes crash). *)

val crashed : t -> pid:int -> bool

val restart : t -> pid:int -> (unit -> unit) -> int
(** Crash–recovery: restart a crashed process with fresh code (a recovery
    routine — the crashed fiber's control state is gone for good, only
    whatever the process persisted elsewhere survives).  Bumps and
    returns the pid's {!incarnation}, clears the crashed flag, replaces
    the fiber, fires the [sched.restarts] counter and emits a ["recover"]
    flight-recorder event.
    @raise Invalid_argument if [pid] is unknown or has not crashed. *)

val recycle : t -> pid:int -> (unit -> unit) -> unit
(** Generational slot reuse: replace the {e finished} fiber at [pid] with
    fresh code.  Grows no scheduler structure (the pid keeps its slot)
    and bumps no incarnation (the previous occupant terminated normally —
    there is no pre-crash ghost to reject), so a fleet can run millions
    of short-lived client sessions through a fixed set of fiber slots
    with flat memory.  Fires [sched.recycles] and emits a ["recycle"]
    flight-recorder event.
    @raise Invalid_argument if [pid] is unknown, still runnable, failed,
    or crashed (crashed slots go through {!restart}). *)

val incarnation : t -> pid:int -> int
(** How many times [pid] has been {!restart}ed (0 for a first-incarnation
    process).  {!Msgpass.Net} stamps every send with the sender's current
    incarnation so quorum collection can reject pre-crash ghosts. *)

val coin : t -> proc:int -> int
(** Flip a fair coin using the scheduler's RNG, record it in the trace
    (visible to the adversary from this moment on), and return 0 or 1. *)

type decision = Step of int | Halt

type policy = t -> decision
(** A schedule policy; consulted before every step. *)

type stall = {
  window : int;  (** the watchdog window that elapsed without progress *)
  total_steps : int;  (** scheduler step-clock value when it fired *)
  fibers : (int * string * bool) list;
      (** [(pid, status, crashed)] for every spawned fiber, ascending pid;
          status is ["runnable"], ["finished"] or ["failed"] *)
  detail : string;
      (** whatever the watchdog's [describe] adds — mailbox and in-flight
          state when built with [Net.watchdog]; [""] if none *)
}
(** A structured stall diagnostic: chaos reports and the regression corpus
    embed it as data ({!stall_json}); the CLI renders {!stall_message}. *)

exception Stalled of stall
(** Raised by {!run} when its watchdog fires. *)

val stall_message : stall -> string
(** The pre-rendered multi-line dump the CLI prints (fiber statuses, crash
    markers, the [detail] block). *)

val stall_json : stall -> Obs.Json.t
(** [{"kind":"stall","window":…,"total_steps":…,"fibers":[…],"detail":…}] *)

type watchdog = {
  window : int;  (** steps without progress before firing *)
  progress : unit -> int;
      (** a monotone progress measure (e.g. a sum of delivery and
          response counters); if it is unchanged across a whole window
          the system is quiescent-livelocked *)
  describe : unit -> string;
      (** extra component state for the stall report (may be [""]) *)
}

val run : ?watchdog:watchdog -> t -> policy:policy -> max_steps:int -> int
(** Drive the system with [policy] until it halts, no process is runnable,
    or [max_steps] decisions have been taken.  Returns the number of steps
    taken.

    With [watchdog], every [window] steps the [progress] measure is
    polled; if it did not move at all, the run is livelocked (every live
    fiber just spins/yields with nothing in flight and nothing completing)
    and {!Stalled} is raised with a structured diagnostic — instead of
    silently burning the remaining [max_steps].  Fires the
    [sched.watchdog.fired] counter and leaves a [watchdog] note in the
    trace. *)

val round_robin : policy
(** Fair policy: cycles over live processes. *)

val random_policy : Rng.t -> policy
(** Uniformly random live process each step — the (weak) randomized
    scheduler used by the termination experiments. *)

val scripted : int list -> policy
(** Follow a fixed pid script, skipping non-runnable entries; halts when
    the script is exhausted. *)
