type stats = { tasks : int; stolen : int; executed_by : int array }

(* Mirrors Pool's failure rule: remember the lowest task index that
   raised, re-raise its exception after all workers join. *)
type failure = { idx : int; exn : exn; bt : Printexc.raw_backtrace }

let run_seq n f =
  let executed_by = Array.make n 0 in
  for i = 0 to n - 1 do
    f i
  done;
  { tasks = n; stolen = 0; executed_by }

let run ~jobs n f =
  if n < 0 then invalid_arg "Steal.run: negative task count";
  if jobs <= 1 || n <= 1 then run_seq n f
  else begin
    let w = min jobs n in
    let deques = Array.init w (fun _ -> Deque.create ~capacity:(2 + (n / w)) ()) in
    (* Deal round-robin, pushing high indices first so each owner pops
       its lowest dealt index first (LIFO pop): work proceeds roughly in
       index order, which makes the lowest-index winner finish early. *)
    for i = n - 1 downto 0 do
      Deque.push deques.(i mod w) i
    done;
    let remaining = Atomic.make n in
    let cancelled = Atomic.make false in
    let failure : failure option Atomic.t = Atomic.make None in
    let executed_by = Array.make n (-1) in
    let record_failure idx exn bt =
      let rec go () =
        let cur = Atomic.get failure in
        let better =
          match cur with None -> true | Some f -> idx < f.idx
        in
        if better && not (Atomic.compare_and_set failure cur (Some { idx; exn; bt }))
        then go ()
      in
      go ();
      Atomic.set cancelled true
    in
    let exec wid i =
      executed_by.(i) <- wid;
      (try f i
       with exn -> record_failure i exn (Printexc.get_raw_backtrace ()));
      Atomic.decr remaining
    in
    (* One steal sweep over the other workers' deques, nearest first. *)
    let try_steal wid =
      let rec probe k =
        if k >= w then None
        else
          match Deque.steal deques.((wid + k) mod w) with
          | Some _ as r -> r
          | None -> probe (k + 1)
      in
      probe 1
    in
    let worker wid =
      let dq = deques.(wid) in
      let rec loop () =
        if Atomic.get remaining > 0 then begin
          if Atomic.get cancelled then begin
            (* Drain without executing so [remaining] still reaches 0. *)
            (match Deque.pop dq with
            | Some _ -> Atomic.decr remaining
            | None -> (
                match try_steal wid with
                | Some _ -> Atomic.decr remaining
                | None -> Domain.cpu_relax ()));
            loop ()
          end
          else begin
            (match Deque.pop dq with
            | Some i -> exec wid i
            | None -> (
                match try_steal wid with
                | Some i -> exec wid i
                | None -> Domain.cpu_relax ()));
            loop ()
          end
        end
      in
      loop ()
    in
    let domains =
      Array.init (w - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
    in
    worker 0;
    Array.iter Domain.join domains;
    (match Atomic.get failure with
    | Some { exn; bt; _ } -> Printexc.raise_with_backtrace exn bt
    | None -> ());
    let stolen = ref 0 in
    for i = 0 to n - 1 do
      if executed_by.(i) >= 0 && executed_by.(i) <> i mod w then incr stolen
    done;
    { tasks = n; stolen = !stolen; executed_by }
  end
