(* Chase–Lev work-stealing deque (see deque.mli for the memory-model
   notes).  [top] and [bottom] are indices into an unbounded virtual
   array; the physical circular buffer holds indices modulo its length
   and is republished (never mutated in place, except slot CASes) when
   it fills. *)

type 'a t = {
  top : int Atomic.t; (* next index a thief takes; only increases *)
  bottom : int Atomic.t; (* next index the owner pushes at *)
  tab : 'a option Atomic.t array Atomic.t;
}

let round_cap capacity =
  let rec up c = if c >= capacity then c else up (2 * c) in
  up 8

let fresh_tab cap = Array.init cap (fun _ -> Atomic.make None)

let create ?(capacity = 32) () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    tab = Atomic.make (fresh_tab (round_cap capacity));
  }

let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

(* Owner only.  Copy [tp, b) into a buffer twice the size and publish it.
   Thieves racing on the old array are harmless: slot values for any
   index in [tp, b) are identical in both arrays, and the CAS on [top]
   decides who owns an index whichever array it was read from. *)
let grow t old tp b =
  let cap = 2 * Array.length old in
  let mask = cap - 1 and old_mask = Array.length old - 1 in
  let tab = fresh_tab cap in
  for i = tp to b - 1 do
    Atomic.set tab.(i land mask) (Atomic.get old.(i land old_mask))
  done;
  Atomic.set t.tab tab;
  tab

let push t v =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let tab = Atomic.get t.tab in
  let tab = if b - tp >= Array.length tab then grow t tab tp b else tab in
  Atomic.set tab.(b land (Array.length tab - 1)) (Some v);
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* already empty; restore the canonical empty shape *)
    Atomic.set t.bottom tp;
    None
  end
  else begin
    let tab = Atomic.get t.tab in
    let slot = tab.(b land (Array.length tab - 1)) in
    let v = Atomic.get slot in
    if b > tp then begin
      Atomic.set slot None;
      v
    end
    else begin
      (* last element: race thieves through the CAS on top *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then begin
        Atomic.set slot None;
        v
      end
      else None
    end
  end

let rec steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else begin
    let tab = Atomic.get t.tab in
    let v = Atomic.get tab.(tp land (Array.length tab - 1)) in
    if Atomic.compare_and_set t.top tp (tp + 1) then
      (* the CAS succeeded, so [tp] was still unowned when we read the
         slot: [v] is the element published for index [tp] *)
      v
    else steal t
  end
