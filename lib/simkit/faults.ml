type plan = {
  drop : float;
  duplicate : float;
  delay : float;
  delay_bound : int;
  crash_at : (int * int) list;
  partitions : (int * int * int list) list;
}

let none =
  {
    drop = 0.;
    duplicate = 0.;
    delay = 0.;
    delay_bound = 0;
    crash_at = [];
    partitions = [];
  }

let is_benign p =
  p.drop = 0. && p.duplicate = 0. && p.delay = 0. && p.crash_at = []
  && p.partitions = []

let affects_delivery p =
  p.drop > 0. || p.duplicate > 0. || p.delay > 0. || p.partitions <> []

let validate p =
  let prob name v =
    if not (v >= 0. && v <= 1.) then
      invalid_arg (Printf.sprintf "Faults: %s must be in [0,1] (got %g)" name v)
  in
  prob "drop" p.drop;
  prob "duplicate" p.duplicate;
  prob "delay" p.delay;
  if p.drop +. p.duplicate +. p.delay > 1. then
    invalid_arg "Faults: drop + duplicate + delay must be <= 1";
  if p.delay_bound < 0 then invalid_arg "Faults: delay_bound must be >= 0";
  if p.delay > 0. && p.delay_bound = 0 then
    invalid_arg "Faults: delay > 0 needs delay_bound > 0";
  List.iter
    (fun (step, _) ->
      if step < 0 then invalid_arg "Faults: crash_at steps must be >= 0")
    p.crash_at;
  List.iter
    (fun (start, len, isolated) ->
      if start < 0 then
        invalid_arg
          (Printf.sprintf "Faults: partition start must be >= 0 (got %d)" start);
      if len <= 0 then
        invalid_arg
          (Printf.sprintf
             "Faults: partition interval [%d, %d) is inverted or empty (length \
              %d must be > 0)"
             start (start + len) len);
      if isolated = [] then
        invalid_arg
          (Printf.sprintf
             "Faults: partition at step %d isolates nothing (empty node set)"
             start))
    p.partitions;
  (* overlapping intervals would make [partitioned] an implicit OR of two
     cuts — almost never what a plan author meant; reject loudly *)
  let by_start =
    List.sort
      (fun (a, _, _) (b, _, _) -> Int.compare a b)
      p.partitions
  in
  let rec check_overlap = function
    | (s1, l1, _) :: ((s2, l2, _) :: _ as rest) ->
        if s1 + l1 > s2 then
          invalid_arg
            (Printf.sprintf
               "Faults: partition intervals [%d, %d) and [%d, %d) overlap" s1
               (s1 + l1) s2 (s2 + l2));
        check_overlap rest
    | _ -> ()
  in
  check_overlap by_start

(* ----- serialization --------------------------------------------------------- *)

let plan_json p =
  Obs.Json.Obj
    [
      ("drop", Obs.Json.Float p.drop);
      ("duplicate", Obs.Json.Float p.duplicate);
      ("delay", Obs.Json.Float p.delay);
      ("delay_bound", Obs.Json.Int p.delay_bound);
      ( "crash_at",
        Obs.Json.List
          (List.map
             (fun (step, node) ->
               Obs.Json.Obj
                 [ ("step", Obs.Json.Int step); ("node", Obs.Json.Int node) ])
             p.crash_at) );
      ( "partitions",
        Obs.Json.List
          (List.map
             (fun (start, len, isolated) ->
               Obs.Json.Obj
                 [
                   ("start", Obs.Json.Int start);
                   ("length", Obs.Json.Int len);
                   ( "isolated",
                     Obs.Json.List
                       (List.map (fun n -> Obs.Json.Int n) isolated) );
                 ])
             p.partitions) );
    ]

let plan_of_json j =
  let ( let* ) = Result.bind in
  let field name conv =
    match Obs.Json.member name j with
    | Some v -> (
        match conv v with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "Faults.plan_of_json: bad %S" name))
    | None -> Error (Printf.sprintf "Faults.plan_of_json: missing %S" name)
  in
  let list_field name item =
    field name (fun v ->
        Option.map (List.filter_map item) (Obs.Json.to_list_opt v))
  in
  let* drop = field "drop" Obs.Json.to_float_opt in
  let* duplicate = field "duplicate" Obs.Json.to_float_opt in
  let* delay = field "delay" Obs.Json.to_float_opt in
  let* delay_bound = field "delay_bound" Obs.Json.to_int_opt in
  let* crash_at =
    list_field "crash_at" (fun e ->
        match
          ( Option.bind (Obs.Json.member "step" e) Obs.Json.to_int_opt,
            Option.bind (Obs.Json.member "node" e) Obs.Json.to_int_opt )
        with
        | Some step, Some node -> Some (step, node)
        | _ -> None)
  in
  let* partitions =
    list_field "partitions" (fun e ->
        match
          ( Option.bind (Obs.Json.member "start" e) Obs.Json.to_int_opt,
            Option.bind (Obs.Json.member "length" e) Obs.Json.to_int_opt,
            Option.bind (Obs.Json.member "isolated" e) Obs.Json.to_list_opt )
        with
        | Some start, Some len, Some iso ->
            Some (start, len, List.filter_map Obs.Json.to_int_opt iso)
        | _ -> None)
  in
  let p = { drop; duplicate; delay; delay_bound; crash_at; partitions } in
  match validate p with
  | () -> Ok p
  | exception Invalid_argument msg -> Error msg

(* ----- the shrink lattice ----------------------------------------------------- *)

(* The probability ladder the chaos generator draws from and the shrinker
   descends: shrinking replaces a probability by the next rung below it,
   so "minimal drop probability" is a well-defined lattice point and the
   shrinker terminates in at most (ladder length) moves per axis. *)
let prob_ladder = [ 0.; 0.01; 0.02; 0.05; 0.1; 0.15; 0.2; 0.3; 0.5 ]

let rung_below v =
  if v <= 0. then None
  else
    List.fold_left
      (fun best rung -> if rung < v then Some rung else best)
      None prob_ladder

(* Every plan strictly smaller along exactly one axis, in a fixed order
   (probabilities toward 0, crash schedule by single-element subsets,
   partitions dropped, the reorder window halved).  All candidates
   validate: the shrinker never has to catch Invalid_argument. *)
let shrink_plan p =
  let drop_nth xs k = List.filteri (fun i _ -> i <> k) xs in
  let probs =
    List.concat
      [
        (match rung_below p.drop with
        | Some d -> [ { p with drop = d } ]
        | None -> []);
        (match rung_below p.duplicate with
        | Some d -> [ { p with duplicate = d } ]
        | None -> []);
        (match rung_below p.delay with
        | Some d ->
            [ { p with delay = d; delay_bound = (if d = 0. then 0 else p.delay_bound) } ]
        | None -> []);
      ]
  in
  let crashes =
    List.init (List.length p.crash_at) (fun k ->
        { p with crash_at = drop_nth p.crash_at k })
  in
  let partitions =
    List.init (List.length p.partitions) (fun k ->
        { p with partitions = drop_nth p.partitions k })
  in
  let window =
    if p.delay = 0. && p.delay_bound > 0 then [ { p with delay_bound = 0 } ]
    else if p.delay > 0. && p.delay_bound > 1 then
      [ { p with delay_bound = p.delay_bound / 2 } ]
    else []
  in
  probs @ crashes @ partitions @ window

let pp_plan fmt p =
  Format.fprintf fmt "drop=%g dup=%g delay=%g(<=%d) crashes=%d partitions=%d"
    p.drop p.duplicate p.delay p.delay_bound
    (List.length p.crash_at)
    (List.length p.partitions)

type action = Deliver | Drop | Duplicate | Defer

type t = {
  plan_ : plan;
  rng : Rng.t;
  mutable pending_crashes : (int * int) list; (* ascending by step *)
}

let create ?(seed = 0xFA17L) plan_ =
  validate plan_;
  {
    plan_;
    rng = Rng.create seed;
    pending_crashes =
      List.sort (fun (a, _) (b, _) -> Int.compare a b) plan_.crash_at;
  }

let plan t = t.plan_

let draw t ~deferrals =
  let p = t.plan_ in
  let u = Rng.float t.rng in
  if u < p.drop then Drop
  else if u < p.drop +. p.duplicate then Duplicate
  else if u < p.drop +. p.duplicate +. p.delay && deferrals < p.delay_bound
  then Defer
  else Deliver

let partition_active t ~step =
  List.exists
    (fun (start, len, _) -> step >= start && step < start + len)
    t.plan_.partitions

let partitioned t ~step ~src ~dst =
  List.exists
    (fun (start, len, isolated) ->
      step >= start
      && step < start + len
      && List.mem src isolated <> List.mem dst isolated)
    t.plan_.partitions

let crashes_due t ~step =
  let due, rest =
    List.partition (fun (s, _) -> s <= step) t.pending_crashes
  in
  t.pending_crashes <- rest;
  List.map snd due
