type plan = {
  drop : float;
  duplicate : float;
  delay : float;
  delay_bound : int;
  crash_at : (int * int) list;
  recover_at : (int * int) list;
  partitions : (int * int * int list) list;
}

let none =
  {
    drop = 0.;
    duplicate = 0.;
    delay = 0.;
    delay_bound = 0;
    crash_at = [];
    recover_at = [];
    partitions = [];
  }

let is_benign p =
  p.drop = 0. && p.duplicate = 0. && p.delay = 0. && p.crash_at = []
  && p.recover_at = [] && p.partitions = []

let affects_delivery p =
  p.drop > 0. || p.duplicate > 0. || p.delay > 0. || p.partitions <> []

let validate p =
  let prob name v =
    if not (v >= 0. && v <= 1.) then
      invalid_arg (Printf.sprintf "Faults: %s must be in [0,1] (got %g)" name v)
  in
  prob "drop" p.drop;
  prob "duplicate" p.duplicate;
  prob "delay" p.delay;
  if p.drop +. p.duplicate +. p.delay > 1. then
    invalid_arg "Faults: drop + duplicate + delay must be <= 1";
  if p.delay_bound < 0 then invalid_arg "Faults: delay_bound must be >= 0";
  if p.delay > 0. && p.delay_bound = 0 then
    invalid_arg "Faults: delay > 0 needs delay_bound > 0";
  List.iter
    (fun (step, _) ->
      if step < 0 then invalid_arg "Faults: crash_at steps must be >= 0")
    p.crash_at;
  List.iter
    (fun (step, _) ->
      if step < 0 then invalid_arg "Faults: recover_at steps must be >= 0")
    p.recover_at;
  (* a recovery only makes sense for a node that is down when it fires:
     merge each node's crash and recover events on the timeline and insist
     they alternate crash, recover, crash, ... at strictly increasing
     steps.  This is what rejects recoveries of never-crashed nodes and
     recover-before-crash schedules in one rule. *)
  let nodes =
    List.sort_uniq Int.compare
      (List.map snd p.crash_at @ List.map snd p.recover_at)
  in
  List.iter
    (fun node ->
      let events =
        List.sort compare
          (List.filter_map
             (fun (s, n) -> if n = node then Some (s, `Crash) else None)
             p.crash_at
          @ List.filter_map
              (fun (s, n) -> if n = node then Some (s, `Recover) else None)
              p.recover_at)
      in
      let rec alternate last_step expect = function
        | [] -> ()
        | (step, kind) :: rest ->
            if kind <> expect then
              invalid_arg
                (Printf.sprintf
                   "Faults: node %d %s at step %d without an intervening %s"
                   node
                   (match kind with `Crash -> "crashes" | `Recover -> "recovers")
                   step
                   (match kind with `Crash -> "recovery" | `Recover -> "crash"))
            else if last_step >= 0 && step <= last_step then
              invalid_arg
                (Printf.sprintf
                   "Faults: node %d has two crash/recover events at steps %d \
                    and %d (must be strictly increasing)"
                   node last_step step)
            else
              alternate step
                (match kind with `Crash -> `Recover | `Recover -> `Crash)
                rest
      in
      alternate (-1) `Crash events)
    nodes;
  List.iter
    (fun (start, len, isolated) ->
      if start < 0 then
        invalid_arg
          (Printf.sprintf "Faults: partition start must be >= 0 (got %d)" start);
      if len <= 0 then
        invalid_arg
          (Printf.sprintf
             "Faults: partition interval [%d, %d) is inverted or empty (length \
              %d must be > 0)"
             start (start + len) len);
      if isolated = [] then
        invalid_arg
          (Printf.sprintf
             "Faults: partition at step %d isolates nothing (empty node set)"
             start))
    p.partitions;
  (* overlapping intervals would make [partitioned] an implicit OR of two
     cuts — almost never what a plan author meant; reject loudly *)
  let by_start =
    List.sort
      (fun (a, _, _) (b, _, _) -> Int.compare a b)
      p.partitions
  in
  let rec check_overlap = function
    | (s1, l1, _) :: ((s2, l2, _) :: _ as rest) ->
        if s1 + l1 > s2 then
          invalid_arg
            (Printf.sprintf
               "Faults: partition intervals [%d, %d) and [%d, %d) overlap" s1
               (s1 + l1) s2 (s2 + l2));
        check_overlap rest
    | _ -> ()
  in
  check_overlap by_start

(* ----- serialization --------------------------------------------------------- *)

let plan_json p =
  Obs.Json.Obj
    [
      ("drop", Obs.Json.Float p.drop);
      ("duplicate", Obs.Json.Float p.duplicate);
      ("delay", Obs.Json.Float p.delay);
      ("delay_bound", Obs.Json.Int p.delay_bound);
      ( "crash_at",
        Obs.Json.List
          (List.map
             (fun (step, node) ->
               Obs.Json.Obj
                 [ ("step", Obs.Json.Int step); ("node", Obs.Json.Int node) ])
             p.crash_at) );
      ( "recover_at",
        Obs.Json.List
          (List.map
             (fun (step, node) ->
               Obs.Json.Obj
                 [ ("step", Obs.Json.Int step); ("node", Obs.Json.Int node) ])
             p.recover_at) );
      ( "partitions",
        Obs.Json.List
          (List.map
             (fun (start, len, isolated) ->
               Obs.Json.Obj
                 [
                   ("start", Obs.Json.Int start);
                   ("length", Obs.Json.Int len);
                   ( "isolated",
                     Obs.Json.List
                       (List.map (fun n -> Obs.Json.Int n) isolated) );
                 ])
             p.partitions) );
    ]

let plan_of_json j =
  let ( let* ) = Result.bind in
  let field name conv =
    match Obs.Json.member name j with
    | Some v -> (
        match conv v with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "Faults.plan_of_json: bad %S" name))
    | None -> Error (Printf.sprintf "Faults.plan_of_json: missing %S" name)
  in
  let list_field name item =
    field name (fun v ->
        Option.map (List.filter_map item) (Obs.Json.to_list_opt v))
  in
  let* drop = field "drop" Obs.Json.to_float_opt in
  let* duplicate = field "duplicate" Obs.Json.to_float_opt in
  let* delay = field "delay" Obs.Json.to_float_opt in
  let* delay_bound = field "delay_bound" Obs.Json.to_int_opt in
  let* crash_at =
    list_field "crash_at" (fun e ->
        match
          ( Option.bind (Obs.Json.member "step" e) Obs.Json.to_int_opt,
            Option.bind (Obs.Json.member "node" e) Obs.Json.to_int_opt )
        with
        | Some step, Some node -> Some (step, node)
        | _ -> None)
  in
  (* [recover_at] postdates the first committed corpus entries; a missing
     field means the crash-stop era's empty schedule, so old reproducers
     keep parsing unchanged. *)
  let* recover_at =
    match Obs.Json.member "recover_at" j with
    | None -> Ok []
    | Some v -> (
        match Obs.Json.to_list_opt v with
        | None -> Error "Faults.plan_of_json: bad \"recover_at\""
        | Some items ->
            Ok
              (List.filter_map
                 (fun e ->
                   match
                     ( Option.bind (Obs.Json.member "step" e) Obs.Json.to_int_opt,
                       Option.bind (Obs.Json.member "node" e) Obs.Json.to_int_opt
                     )
                   with
                   | Some step, Some node -> Some (step, node)
                   | _ -> None)
                 items))
  in
  let* partitions =
    list_field "partitions" (fun e ->
        match
          ( Option.bind (Obs.Json.member "start" e) Obs.Json.to_int_opt,
            Option.bind (Obs.Json.member "length" e) Obs.Json.to_int_opt,
            Option.bind (Obs.Json.member "isolated" e) Obs.Json.to_list_opt )
        with
        | Some start, Some len, Some iso ->
            Some (start, len, List.filter_map Obs.Json.to_int_opt iso)
        | _ -> None)
  in
  let p =
    { drop; duplicate; delay; delay_bound; crash_at; recover_at; partitions }
  in
  match validate p with
  | () -> Ok p
  | exception Invalid_argument msg -> Error msg

(* ----- the shrink lattice ----------------------------------------------------- *)

(* The probability ladder the chaos generator draws from and the shrinker
   descends: shrinking replaces a probability by the next rung below it,
   so "minimal drop probability" is a well-defined lattice point and the
   shrinker terminates in at most (ladder length) moves per axis. *)
let prob_ladder = [ 0.; 0.01; 0.02; 0.05; 0.1; 0.15; 0.2; 0.3; 0.5 ]

let rung_below v =
  if v <= 0. then None
  else
    List.fold_left
      (fun best rung -> if rung < v then Some rung else best)
      None prob_ladder

(* Every plan strictly smaller along exactly one axis, in a fixed order
   (probabilities toward 0, crash schedule by single-element subsets,
   partitions dropped, the reorder window halved).  All candidates
   validate: the shrinker never has to catch Invalid_argument. *)
let shrink_plan p =
  let drop_nth xs k = List.filteri (fun i _ -> i <> k) xs in
  let probs =
    List.concat
      [
        (match rung_below p.drop with
        | Some d -> [ { p with drop = d } ]
        | None -> []);
        (match rung_below p.duplicate with
        | Some d -> [ { p with duplicate = d } ]
        | None -> []);
        (match rung_below p.delay with
        | Some d ->
            [ { p with delay = d; delay_bound = (if d = 0. then 0 else p.delay_bound) } ]
        | None -> []);
      ]
  in
  (* dropping a crash also drops the recovery paired with it (the first
     recovery of that node after the crash step — alternation makes that
     the unique match), so every candidate still validates *)
  let crashes =
    List.init (List.length p.crash_at) (fun k ->
        let step, node = List.nth p.crash_at k in
        let paired =
          List.fold_left
            (fun best (s, n) ->
              if n = node && s > step then
                match best with Some b when b <= s -> best | _ -> Some s
              else best)
            None p.recover_at
        in
        let recover_at =
          match paired with
          | None -> p.recover_at
          | Some s ->
              let dropped = ref false in
              List.filter
                (fun (s', n') ->
                  if (not !dropped) && s' = s && n' = node then (
                    dropped := true;
                    false)
                  else true)
                p.recover_at
        in
        { p with crash_at = drop_nth p.crash_at k; recover_at })
  in
  (* a recovery dropped on its own turns a crash–recover pair back into
     crash-stop — strictly simpler; alternation-breaking drops (a middle
     recovery with a later crash of the same node) are filtered out *)
  let recoveries =
    List.filter
      (fun cand -> match validate cand with
        | () -> true
        | exception Invalid_argument _ -> false)
      (List.init (List.length p.recover_at) (fun k ->
           { p with recover_at = drop_nth p.recover_at k }))
  in
  let partitions =
    List.init (List.length p.partitions) (fun k ->
        { p with partitions = drop_nth p.partitions k })
  in
  let window =
    if p.delay = 0. && p.delay_bound > 0 then [ { p with delay_bound = 0 } ]
    else if p.delay > 0. && p.delay_bound > 1 then
      [ { p with delay_bound = p.delay_bound / 2 } ]
    else []
  in
  probs @ crashes @ recoveries @ partitions @ window

let pp_plan fmt p =
  Format.fprintf fmt
    "drop=%g dup=%g delay=%g(<=%d) crashes=%d recoveries=%d partitions=%d"
    p.drop p.duplicate p.delay p.delay_bound
    (List.length p.crash_at)
    (List.length p.recover_at)
    (List.length p.partitions)

type action = Deliver | Drop | Duplicate | Defer

type t = {
  plan_ : plan;
  rng : Rng.t;
  mutable pending_crashes : (int * int) list; (* ascending by step *)
  mutable pending_recoveries : (int * int) list; (* ascending by step *)
}

let create ?(seed = 0xFA17L) plan_ =
  validate plan_;
  {
    plan_;
    rng = Rng.create seed;
    pending_crashes =
      List.sort (fun (a, _) (b, _) -> Int.compare a b) plan_.crash_at;
    pending_recoveries =
      List.sort (fun (a, _) (b, _) -> Int.compare a b) plan_.recover_at;
  }

let plan t = t.plan_

let draw t ~deferrals =
  let p = t.plan_ in
  let u = Rng.float t.rng in
  if u < p.drop then Drop
  else if u < p.drop +. p.duplicate then Duplicate
  else if u < p.drop +. p.duplicate +. p.delay && deferrals < p.delay_bound
  then Defer
  else Deliver

let partition_active t ~step =
  List.exists
    (fun (start, len, _) -> step >= start && step < start + len)
    t.plan_.partitions

let partitioned t ~step ~src ~dst =
  List.exists
    (fun (start, len, isolated) ->
      step >= start
      && step < start + len
      && List.mem src isolated <> List.mem dst isolated)
    t.plan_.partitions

let crashes_due t ~step =
  let due, rest =
    List.partition (fun (s, _) -> s <= step) t.pending_crashes
  in
  t.pending_crashes <- rest;
  List.map snd due

let recoveries_due t ~step =
  let due, rest =
    List.partition (fun (s, _) -> s <= step) t.pending_recoveries
  in
  t.pending_recoveries <- rest;
  List.map snd due
