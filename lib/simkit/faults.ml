type plan = {
  drop : float;
  duplicate : float;
  delay : float;
  delay_bound : int;
  crash_at : (int * int) list;
  partitions : (int * int * int list) list;
}

let none =
  {
    drop = 0.;
    duplicate = 0.;
    delay = 0.;
    delay_bound = 0;
    crash_at = [];
    partitions = [];
  }

let is_benign p =
  p.drop = 0. && p.duplicate = 0. && p.delay = 0. && p.crash_at = []
  && p.partitions = []

let affects_delivery p =
  p.drop > 0. || p.duplicate > 0. || p.delay > 0. || p.partitions <> []

let validate p =
  let prob name v =
    if not (v >= 0. && v <= 1.) then
      invalid_arg (Printf.sprintf "Faults: %s must be in [0,1] (got %g)" name v)
  in
  prob "drop" p.drop;
  prob "duplicate" p.duplicate;
  prob "delay" p.delay;
  if p.drop +. p.duplicate +. p.delay > 1. then
    invalid_arg "Faults: drop + duplicate + delay must be <= 1";
  if p.delay_bound < 0 then invalid_arg "Faults: delay_bound must be >= 0";
  if p.delay > 0. && p.delay_bound = 0 then
    invalid_arg "Faults: delay > 0 needs delay_bound > 0";
  List.iter
    (fun (step, _) ->
      if step < 0 then invalid_arg "Faults: crash_at steps must be >= 0")
    p.crash_at;
  List.iter
    (fun (start, len, _) ->
      if start < 0 || len < 0 then
        invalid_arg "Faults: partition intervals must be non-negative")
    p.partitions

let pp_plan fmt p =
  Format.fprintf fmt "drop=%g dup=%g delay=%g(<=%d) crashes=%d partitions=%d"
    p.drop p.duplicate p.delay p.delay_bound
    (List.length p.crash_at)
    (List.length p.partitions)

type action = Deliver | Drop | Duplicate | Defer

type t = {
  plan_ : plan;
  rng : Rng.t;
  mutable pending_crashes : (int * int) list; (* ascending by step *)
}

let create ?(seed = 0xFA17L) plan_ =
  validate plan_;
  {
    plan_;
    rng = Rng.create seed;
    pending_crashes =
      List.sort (fun (a, _) (b, _) -> Int.compare a b) plan_.crash_at;
  }

let plan t = t.plan_

let draw t ~deferrals =
  let p = t.plan_ in
  let u = Rng.float t.rng in
  if u < p.drop then Drop
  else if u < p.drop +. p.duplicate then Duplicate
  else if u < p.drop +. p.duplicate +. p.delay && deferrals < p.delay_bound
  then Defer
  else Deliver

let partition_active t ~step =
  List.exists
    (fun (start, len, _) -> step >= start && step < start + len)
    t.plan_.partitions

let partitioned t ~step ~src ~dst =
  List.exists
    (fun (start, len, isolated) ->
      step >= start
      && step < start + len
      && List.mem src isolated <> List.mem dst isolated)
    t.plan_.partitions

let crashes_due t ~step =
  let due, rest =
    List.partition (fun (s, _) -> s <= step) t.pending_crashes
  in
  t.pending_crashes <- rest;
  List.map snd due
