(** A small work-sharing domain pool for embarrassingly-parallel run
    batteries (Monte-Carlo adversary games, random-run checkers).

    Tasks are identified by their index [0..n-1] and claimed from a
    shared cursor, so load balances automatically however uneven the
    per-task cost.  When tasks vastly outnumber domains (fleet-scale
    batteries fanning out millions of tiny tasks) each claim takes a
    short {e chunk} of consecutive indices per atomic fetch instead of
    one, so the cursor cache line stops bouncing on every task; with few
    tasks the chunk degenerates to 1 and behaviour is unchanged.

    Determinism contract: a task must derive all its randomness from its
    index (per-run seeds) and must not touch shared mutable state — in
    particular it must record metrics into a per-task registry (use
    {!map_runs}), never into {!Obs.Metrics.global}.  Under that contract,
    [map ~jobs:n] returns the exact array [map ~jobs:1] returns. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [-j] default of the CLIs. *)

val map : jobs:int -> int -> (int -> 'a) -> 'a array
(** [map ~jobs n f] evaluates [f i] for each [i] in [0..n-1] on up to
    [jobs] domains (the calling domain included) and returns the results
    indexed by task.  [jobs <= 1] runs sequentially, in index order, on
    the calling domain.  If a task raises, the run is cancelled (already
    started tasks finish, no new ones start) and the exception of the
    lowest-index failed task is re-raised. *)

val iter : jobs:int -> int -> (int -> unit) -> unit

val map_runs :
  jobs:int ->
  metrics:Obs.Metrics.t ->
  int ->
  (metrics:Obs.Metrics.t -> int -> 'a) ->
  'a array
(** Like {!map}, but hands each task a fresh private metric registry and,
    after every domain has joined, folds the per-task registries into
    [metrics] in task order with {!Obs.Metrics.merge}.  This is the only
    sanctioned way for parallel tasks to feed an experiment's
    snapshot/delta measurement: the target registry is only ever touched
    from the calling domain, and the fold order (hence the merged
    registry) is independent of [jobs]. *)
