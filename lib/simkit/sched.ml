type t = {
  tr : Trace.t;
  rng_ : Rng.t;
  fibers : (int, Fiber.t) Hashtbl.t;
  mutable crashed_ : int list;
  incarnations : (int, int) Hashtbl.t; (* absent = 0 *)
  mutable rr_cursor : int;
  mutable steps_ : int;
  metrics_ : Obs.Metrics.t;
  tracer_ : Obs.Tracer.t;
  (* metric handles, resolved once at creation (hot-path discipline) *)
  spawns_c : Obs.Metrics.Counter.t;
  steps_c : Obs.Metrics.Counter.t;
  crashes_c : Obs.Metrics.Counter.t;
  restarts_c : Obs.Metrics.Counter.t;
  recycles_c : Obs.Metrics.Counter.t;
  coins_c : Obs.Metrics.Counter.t;
  runs_c : Obs.Metrics.Counter.t;
  watchdog_c : Obs.Metrics.Counter.t;
  run_steps_h : Obs.Metrics.Hist.t;
}

let create ?(seed = 1L) ?(metrics = Obs.Metrics.global)
    ?(tracer = Obs.Tracer.null) () =
  {
    tr = Trace.create ~metrics ();
    rng_ = Rng.create seed;
    fibers = Hashtbl.create 16;
    crashed_ = [];
    incarnations = Hashtbl.create 8;
    rr_cursor = 0;
    steps_ = 0;
    metrics_ = metrics;
    tracer_ = tracer;
    spawns_c = Obs.Metrics.counter_h metrics "sched.spawns";
    steps_c = Obs.Metrics.counter_h metrics "sched.steps";
    crashes_c = Obs.Metrics.counter_h metrics "sched.crashes";
    restarts_c = Obs.Metrics.counter_h metrics "sched.restarts";
    recycles_c = Obs.Metrics.counter_h metrics "sched.recycles";
    coins_c = Obs.Metrics.counter_h metrics "sched.coins";
    runs_c = Obs.Metrics.counter_h metrics "sched.runs";
    watchdog_c = Obs.Metrics.counter_h metrics "sched.watchdog.fired";
    run_steps_h = Obs.Metrics.hist_h metrics "sched.run.steps";
  }

let trace t = t.tr
let rng t = t.rng_
let now t = Trace.now t.tr
let steps t = t.steps_
let metrics t = t.metrics_
let tracer t = t.tracer_

let spawn t ~pid f =
  if Hashtbl.mem t.fibers pid then
    invalid_arg (Printf.sprintf "Sched.spawn: duplicate pid %d" pid);
  Obs.Metrics.incr_h t.spawns_c;
  if Obs.Tracer.armed t.tracer_ then
    ignore
      (Obs.Tracer.emit t.tracer_ ~track:pid ~parent:(-1) ~sim:t.steps_
         ~cat:"sched" "spawn");
  Hashtbl.add t.fibers pid (Fiber.spawn ~pid f)

let pids t =
  Hashtbl.fold (fun pid _ acc -> pid :: acc) t.fibers []
  |> List.sort Int.compare

let find t pid =
  match Hashtbl.find_opt t.fibers pid with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Sched: unknown pid %d" pid)

let status t ~pid = Fiber.status (find t pid)
let crashed t ~pid = List.mem pid t.crashed_

let runnable t ~pid =
  (not (crashed t ~pid))
  && match status t ~pid with Fiber.Runnable -> true | _ -> false

let live_pids t = List.filter (fun pid -> runnable t ~pid) (pids t)

let step t ~pid =
  if crashed t ~pid then
    invalid_arg (Printf.sprintf "Sched.step: pid %d has crashed" pid);
  let f = find t pid in
  (match Fiber.status f with
  | Fiber.Runnable -> ()
  | _ -> invalid_arg (Printf.sprintf "Sched.step: pid %d is not runnable" pid));
  Obs.Metrics.incr_h t.steps_c;
  t.steps_ <- t.steps_ + 1;
  if Obs.Tracer.armed t.tracer_ then
    ignore
      (Obs.Tracer.emit t.tracer_ ~track:pid ~parent:(-1) ~sim:t.steps_
         ~cat:"sched" "step");
  match Fiber.step f with
  | Fiber.Failed e -> raise e
  | s -> s

let crash t ~pid =
  ignore (find t pid);
  if not (crashed t ~pid) then begin
    t.crashed_ <- pid :: t.crashed_;
    Obs.Metrics.incr_h t.crashes_c;
    if Obs.Tracer.armed t.tracer_ then
      ignore
        (Obs.Tracer.emit t.tracer_ ~track:pid ~parent:(-1) ~sim:t.steps_
           ~cat:"sched" "crash");
    Trace.note t.tr ~tag:"crash" ~text:(Printf.sprintf "p%d" pid)
  end

let incarnation t ~pid =
  Option.value (Hashtbl.find_opt t.incarnations pid) ~default:0

let restart t ~pid f =
  ignore (find t pid);
  if not (crashed t ~pid) then
    invalid_arg (Printf.sprintf "Sched.restart: pid %d has not crashed" pid);
  t.crashed_ <- List.filter (fun p -> p <> pid) t.crashed_;
  Hashtbl.replace t.fibers pid (Fiber.spawn ~pid f);
  let inc = incarnation t ~pid + 1 in
  Hashtbl.replace t.incarnations pid inc;
  Obs.Metrics.incr_h t.restarts_c;
  if Obs.Tracer.armed t.tracer_ then
    ignore
      (Obs.Tracer.emit t.tracer_ ~track:pid ~parent:(-1)
         ~args:[ ("incarnation", Obs.Json.Int inc) ]
         ~sim:t.steps_ ~cat:"sched" "recover");
  Trace.note t.tr ~tag:"recover" ~text:(Printf.sprintf "p%d i%d" pid inc);
  inc

(* Generational slot reuse: replace a finished fiber with fresh code at
   the same pid.  Unlike [spawn] this grows no table (Hashtbl.replace on
   an existing key), and unlike [restart] it bumps no incarnation — the
   slot's previous occupant terminated normally, so there is no pre-crash
   ghost for the network to reject.  This is what lets a fleet run
   millions of short-lived client sessions through a fixed set of fiber
   slots with flat scheduler memory. *)
let recycle t ~pid f =
  (match Fiber.status (find t pid) with
  | Fiber.Finished -> ()
  | Fiber.Runnable | Fiber.Failed _ ->
      invalid_arg (Printf.sprintf "Sched.recycle: pid %d has not finished" pid));
  if crashed t ~pid then
    invalid_arg (Printf.sprintf "Sched.recycle: pid %d has crashed" pid);
  Hashtbl.replace t.fibers pid (Fiber.spawn ~pid f);
  Obs.Metrics.incr_h t.recycles_c;
  if Obs.Tracer.armed t.tracer_ then
    ignore
      (Obs.Tracer.emit t.tracer_ ~track:pid ~parent:(-1) ~sim:t.steps_
         ~cat:"sched" "recycle")

let coin t ~proc =
  let v = Rng.coin t.rng_ in
  Obs.Metrics.incr_h t.coins_c;
  if Obs.Tracer.armed t.tracer_ then
    ignore
      (Obs.Tracer.emit t.tracer_ ~track:proc ~parent:(-1)
         ~args:[ ("value", Obs.Json.Int v) ]
         ~sim:t.steps_ ~cat:"sched" "coin");
  Trace.coin t.tr ~proc ~value:v;
  v

type decision = Step of int | Halt
type policy = t -> decision

type stall = {
  window : int;
  total_steps : int;
  fibers : (int * string * bool) list;
  detail : string;
}

exception Stalled of stall

type watchdog = {
  window : int;
  progress : unit -> int;
  describe : unit -> string;
}

let stall_report t w =
  {
    window = w.window;
    total_steps = t.steps_;
    fibers =
      List.map
        (fun pid ->
          ( pid,
            (match status t ~pid with
            | Fiber.Runnable -> "runnable"
            | Fiber.Finished -> "finished"
            | Fiber.Failed _ -> "failed"),
            crashed t ~pid ))
        (pids t);
    detail = w.describe ();
  }

let stall_message (s : stall) =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "scheduler watchdog: no progress for %d steps (total steps %d)\nfibers:\n"
    s.window s.total_steps;
  List.iter
    (fun (pid, status, crashed) ->
      Printf.bprintf b "  p%d: %s%s\n" pid status
        (if crashed then " (crashed)" else ""))
    s.fibers;
  if s.detail <> "" then Printf.bprintf b "%s\n" s.detail;
  Buffer.contents b

let stall_json (s : stall) =
  Obs.Json.Obj
    [
      ("kind", Obs.Json.Str "stall");
      ("window", Obs.Json.Int s.window);
      ("total_steps", Obs.Json.Int s.total_steps);
      ( "fibers",
        Obs.Json.List
          (List.map
             (fun (pid, status, crashed) ->
               Obs.Json.Obj
                 [
                   ("pid", Obs.Json.Int pid);
                   ("status", Obs.Json.Str status);
                   ("crashed", Obs.Json.Bool crashed);
                 ])
             s.fibers) );
      ("detail", Obs.Json.Str s.detail);
    ]

let run ?watchdog t ~policy ~max_steps =
  let steps = ref 0 in
  let continue_ = ref true in
  (* watchdog state: the progress value at the last window boundary *)
  let last_progress =
    ref (match watchdog with Some w -> w.progress () | None -> 0)
  in
  let since = ref 0 in
  Obs.Metrics.incr_h t.runs_c;
  while !continue_ && !steps < max_steps do
    if live_pids t = [] then continue_ := false
    else
      match policy t with
      | Halt -> continue_ := false
      | Step pid ->
          ignore (step t ~pid);
          incr steps;
          (match watchdog with
          | None -> ()
          | Some w ->
              incr since;
              if !since >= w.window then begin
                let p = w.progress () in
                if p = !last_progress then begin
                  Obs.Metrics.incr_h t.watchdog_c;
                  Obs.Metrics.observe_h t.run_steps_h (float_of_int !steps);
                  if Obs.Tracer.armed t.tracer_ then
                    ignore
                      (Obs.Tracer.emit t.tracer_ ~parent:(-1)
                         ~args:[ ("window", Obs.Json.Int w.window) ]
                         ~sim:t.steps_ ~cat:"sched" "watchdog");
                  let report = stall_report t w in
                  Trace.note t.tr ~tag:"watchdog"
                    ~text:
                      (Printf.sprintf "stalled after %d steps without progress"
                         w.window);
                  raise (Stalled report)
                end;
                last_progress := p;
                since := 0
              end)
  done;
  Obs.Metrics.observe_h t.run_steps_h (float_of_int !steps);
  !steps

let round_robin t =
  match live_pids t with
  | [] -> Halt
  | live ->
      let n = List.length live in
      let pid = List.nth live (t.rr_cursor mod n) in
      t.rr_cursor <- t.rr_cursor + 1;
      Step pid

let random_policy rng t =
  match live_pids t with
  | [] -> Halt
  | live -> Step (List.nth live (Rng.int rng (List.length live)))

let scripted script =
  let remaining = ref script in
  fun t ->
    let rec next () =
      match !remaining with
      | [] -> Halt
      | pid :: rest ->
          remaining := rest;
          if runnable t ~pid then Step pid else next ()
    in
    next ()
