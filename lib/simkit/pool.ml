(* A chunk-free work-sharing domain pool: tasks are indices 0..n-1 pulled
   from a shared atomic cursor, so domains that finish early steal the
   remaining work automatically.  No dependencies beyond the stdlib
   (Domain / Atomic / Mutex); [jobs <= 1] degenerates to a plain
   sequential loop on the calling domain. *)

let default_jobs () = Domain.recommended_domain_count ()

(* Outcome of task [i]; [None] means not executed (only possible after a
   sibling task raised and cancelled the run). *)
type 'a cell = 'a option

let map ~jobs n f =
  if n < 0 then invalid_arg "Pool.map: negative task count";
  if n = 0 then [||]
  else if jobs <= 1 || n = 1 then Array.init n (fun i -> f i)
  else begin
    let results : ('a, exn) result cell array = Array.make n None in
    let next = Atomic.make 0 in
    let cancelled = Atomic.make false in
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get cancelled then continue_ := false
        else
          match f i with
          | v -> results.(i) <- Some (Ok v)
          | exception e ->
              results.(i) <- Some (Error e);
              Atomic.set cancelled true
      done
    in
    let spawned = Stdlib.min jobs n - 1 in
    let domains = Array.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    (* fail with the lowest-index exception for reproducible reports *)
    Array.iter
      (function Some (Error e) -> raise e | Some (Ok _) | None -> ())
      results;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error _) | None -> assert false (* unreachable: no error *))
      results
  end

let iter ~jobs n f = ignore (map ~jobs n f : unit array)

(* The per-run metrics-isolation harness (see DESIGN.md "Parallel
   harness"): every task records into its own fresh registry — the global
   registry is never touched off the calling domain — and the registries
   are folded into [metrics] in task order once every domain has joined.
   Folding in index order makes the merged registry identical whatever
   [jobs] is, so parallel and sequential batteries report the same
   metric deltas. *)
let map_runs ~jobs ~metrics n f =
  let out =
    map ~jobs n (fun i ->
        let m = Obs.Metrics.create () in
        let v = f ~metrics:m i in
        (v, m))
  in
  Array.map
    (fun (v, m) ->
      Obs.Metrics.merge ~into:metrics m;
      v)
    out
