(* A work-sharing domain pool: tasks are indices 0..n-1 claimed from a
   shared atomic cursor, so domains that finish early steal the remaining
   work automatically.  No dependencies beyond the stdlib (Domain /
   Atomic / Mutex); [jobs <= 1] degenerates to a plain sequential loop on
   the calling domain. *)

let default_jobs () = Domain.recommended_domain_count ()

(* Outcome of task [i]; [None] means not executed (only possible after a
   sibling task raised and cancelled the run). *)
type 'a cell = 'a option

(* How many indices one fetch_and_add claims.  Whole-simulation tasks
   (milliseconds each) amortize a single atomic trivially, but fleet-
   scale batteries fan out millions of tiny tasks — there the cursor
   line bounces between every domain on every task.  Claiming a short
   run per CAS divides that traffic by [chunk] while bounding the load
   imbalance a straggler can cause at the tail to [chunk - 1] tasks. *)
let chunk_for ~jobs n =
  if n <= jobs * 8 then 1 else Stdlib.min 64 (n / (jobs * 8))

let map ~jobs n f =
  if n < 0 then invalid_arg "Pool.map: negative task count";
  if n = 0 then [||]
  else if jobs <= 1 || n = 1 then Array.init n (fun i -> f i)
  else begin
    let results : ('a, exn) result cell array = Array.make n None in
    let next = Atomic.make 0 in
    let cancelled = Atomic.make false in
    let chunk = chunk_for ~jobs n in
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        let start = Atomic.fetch_and_add next chunk in
        if start >= n || Atomic.get cancelled then continue_ := false
        else begin
          (* run the claimed chunk; a cancellation (ours or a sibling's)
             stops new tasks, matching the one-index-per-CAS behaviour *)
          let stop = Stdlib.min n (start + chunk) in
          let i = ref start in
          while !i < stop && not (Atomic.get cancelled) do
            (match f !i with
            | v -> results.(!i) <- Some (Ok v)
            | exception e ->
                results.(!i) <- Some (Error e);
                Atomic.set cancelled true);
            incr i
          done
        end
      done
    in
    let spawned = Stdlib.min jobs n - 1 in
    let domains = Array.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    (* fail with the lowest-index exception for reproducible reports *)
    Array.iter
      (function Some (Error e) -> raise e | Some (Ok _) | None -> ())
      results;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error _) | None -> assert false (* unreachable: no error *))
      results
  end

let iter ~jobs n f = ignore (map ~jobs n f : unit array)

(* The per-run metrics-isolation harness (see DESIGN.md "Parallel
   harness"): every task records into its own fresh registry — the global
   registry is never touched off the calling domain — and the registries
   are folded into [metrics] in task order once every domain has joined.
   Folding in index order makes the merged registry identical whatever
   [jobs] is, so parallel and sequential batteries report the same
   metric deltas. *)
let map_runs ~jobs ~metrics n f =
  let out =
    map ~jobs n (fun i ->
        let m = Obs.Metrics.create () in
        let v = f ~metrics:m i in
        (v, m))
  in
  Array.map
    (fun (v, m) ->
      Obs.Metrics.merge ~into:metrics m;
      v)
    out
