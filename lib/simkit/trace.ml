type entry =
  | Ev of History.Event.timed
  | Lin of { time : int; op_id : int }
  | Coin of { time : int; proc : int; value : int }
  | ValWrite of { time : int; op_id : int; proc : int; idx : int }
  | TsSnapshot of { time : int; op_id : int; proc : int; ts : Clocks.Vector.t }
  | ReadTs of { time : int; op_id : int; proc : int; ts : Clocks.Vector.t }
  | Note of { time : int; tag : string; text : string }

type t = {
  mutable clock : int;
  mutable rev_entries : entry list;
  mutable next_op : int;
  metrics : Obs.Metrics.t;
  (* metric handles, resolved once at creation (hot-path discipline) *)
  invokes_c : Obs.Metrics.Counter.t;
  responds_c : Obs.Metrics.Counter.t;
  lins_c : Obs.Metrics.Counter.t;
  latency_h : Obs.Metrics.Hist.t;
  invoked_at : (int, int) Hashtbl.t; (* op_id -> invocation time *)
}

let create ?(metrics = Obs.Metrics.global) () =
  {
    clock = 0;
    rev_entries = [];
    next_op = 0;
    metrics;
    invokes_c = Obs.Metrics.counter_h metrics "trace.invokes";
    responds_c = Obs.Metrics.counter_h metrics "trace.responds";
    lins_c = Obs.Metrics.counter_h metrics "trace.lins";
    latency_h = Obs.Metrics.hist_h metrics "op.latency.sim";
    invoked_at = Hashtbl.create 32;
  }

let metrics t = t.metrics
let now t = t.clock

let next_time t =
  t.clock <- t.clock + 1;
  t.clock

let push t e = t.rev_entries <- e :: t.rev_entries

let invoke t ~proc ~obj ~kind =
  t.next_op <- t.next_op + 1;
  let op_id = t.next_op in
  let time = next_time t in
  Hashtbl.replace t.invoked_at op_id time;
  Obs.Metrics.incr_h t.invokes_c;
  push t (Ev { History.Event.time; event = History.Event.Invoke { op_id; proc; obj; kind } });
  op_id

let respond t ~op_id ~result =
  let time = next_time t in
  Obs.Metrics.incr_h t.responds_c;
  (match Hashtbl.find_opt t.invoked_at op_id with
  | Some t0 ->
      Obs.Metrics.observe_h t.latency_h (float_of_int (time - t0));
      (* the op is closed: retiring its entry keeps the table bounded by
         the number of *pending* ops, not the ops ever invoked *)
      Hashtbl.remove t.invoked_at op_id
  | None -> ());
  push t (Ev { History.Event.time; event = History.Event.Respond { op_id; result } })

let linearize t ~op_id =
  Obs.Metrics.incr_h t.lins_c;
  push t (Lin { time = next_time t; op_id })

let coin t ~proc ~value = push t (Coin { time = next_time t; proc; value })

let val_write t ~op_id ~proc ~idx =
  push t (ValWrite { time = next_time t; op_id; proc; idx })

let ts_snapshot t ~op_id ~proc ~ts =
  push t (TsSnapshot { time = next_time t; op_id; proc; ts })

let read_ts t ~op_id ~proc ~ts =
  push t (ReadTs { time = next_time t; op_id; proc; ts })

let note t ~tag ~text = push t (Note { time = next_time t; tag; text })
let entries t = List.rev t.rev_entries

(* Streaming consumption: hand the accumulated entries over and clear the
   buffer, keeping the clock and op-id counter monotone so later entries
   continue the same timeline.  A long-running fleet drains between
   client-pool generations and feeds the events straight into the
   streaming checker — trace memory is then bounded by the drain
   interval, not the run length. *)
let drain t =
  let es = List.rev t.rev_entries in
  t.rev_entries <- [];
  es

let history t =
  entries t
  |> List.filter_map (function Ev e -> Some e | _ -> None)
  |> History.Hist.of_events_exn

let lin_time t ~op_id =
  entries t
  |> List.find_map (function
       | Lin { time; op_id = id } when id = op_id -> Some time
       | _ -> None)

let coins t =
  entries t
  |> List.filter_map (function
       | Coin { time; proc; value } -> Some (time, proc, value)
       | _ -> None)

let entry_time = function
  | Ev { History.Event.time; _ }
  | Lin { time; _ }
  | Coin { time; _ }
  | ValWrite { time; _ }
  | TsSnapshot { time; _ }
  | ReadTs { time; _ }
  | Note { time; _ } ->
      time

let pp_entry fmt = function
  | Ev e -> History.Event.pp_timed fmt e
  | Lin { time; op_id } -> Format.fprintf fmt "%d:lin(#%d)" time op_id
  | Coin { time; proc; value } ->
      Format.fprintf fmt "%d:coin(p%d)=%d" time proc value
  | ValWrite { time; op_id; proc; idx } ->
      Format.fprintf fmt "%d:valwrite(#%d p%d Val[%d])" time op_id proc idx
  | TsSnapshot { time; op_id; proc; ts } ->
      Format.fprintf fmt "%d:ts(#%d p%d %a)" time op_id proc Clocks.Vector.pp ts
  | ReadTs { time; op_id; proc; ts } ->
      Format.fprintf fmt "%d:readts(#%d p%d %a)" time op_id proc Clocks.Vector.pp ts
  | Note { time; tag; text } -> Format.fprintf fmt "%d:%s:%s" time tag text

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@]" (Format.pp_print_list pp_entry) (entries t)

(* ----- JSONL serialization (see DESIGN.md "Observability") ------------- *)

module J = Obs.Json

let vector_json v =
  J.List
    (List.map
       (function
         | Clocks.Vector.Fin k -> J.Int k
         | Clocks.Vector.Inf -> J.Str "inf")
       (Clocks.Vector.to_list v))

let value_json : History.Value.t -> J.t = function
  | History.Value.Bot -> J.Obj [ ("type", J.Str "bot") ]
  | History.Value.Int n -> J.Obj [ ("type", J.Str "int"); ("v", J.Int n) ]
  | History.Value.Pair (a, b) ->
      J.Obj [ ("type", J.Str "pair"); ("a", J.Int a); ("b", J.Int b) ]
  | History.Value.VecStamped (v, ts) ->
      J.Obj [ ("type", J.Str "vec"); ("v", J.Int v); ("ts", vector_json ts) ]
  | History.Value.LamStamped (v, ts) ->
      J.Obj
        [
          ("type", J.Str "lam");
          ("v", J.Int v);
          ("sq", J.Int ts.Clocks.Lamport.sq);
          ("pid", J.Int ts.Clocks.Lamport.pid);
        ]

let entry_json = function
  | Ev { History.Event.time; event = History.Event.Invoke { op_id; proc; obj; kind } } ->
      J.Obj
        ([
           ("t", J.Int time);
           ("kind", J.Str "invoke");
           ("op", J.Int op_id);
           ("proc", J.Int proc);
           ("obj", J.Str obj);
         ]
        @
        match kind with
        | History.Op.Read -> [ ("opkind", J.Str "read") ]
        | History.Op.Write v ->
            [ ("opkind", J.Str "write"); ("value", value_json v) ])
  | Ev { History.Event.time; event = History.Event.Respond { op_id; result } } ->
      J.Obj
        [
          ("t", J.Int time);
          ("kind", J.Str "respond");
          ("op", J.Int op_id);
          ( "result",
            match result with Some v -> value_json v | None -> J.Null );
        ]
  | Lin { time; op_id } ->
      J.Obj [ ("t", J.Int time); ("kind", J.Str "lin"); ("op", J.Int op_id) ]
  | Coin { time; proc; value } ->
      J.Obj
        [
          ("t", J.Int time);
          ("kind", J.Str "coin");
          ("proc", J.Int proc);
          ("value", J.Int value);
        ]
  | ValWrite { time; op_id; proc; idx } ->
      J.Obj
        [
          ("t", J.Int time);
          ("kind", J.Str "valwrite");
          ("op", J.Int op_id);
          ("proc", J.Int proc);
          ("idx", J.Int idx);
        ]
  | TsSnapshot { time; op_id; proc; ts } ->
      J.Obj
        [
          ("t", J.Int time);
          ("kind", J.Str "ts");
          ("op", J.Int op_id);
          ("proc", J.Int proc);
          ("ts", vector_json ts);
        ]
  | ReadTs { time; op_id; proc; ts } ->
      J.Obj
        [
          ("t", J.Int time);
          ("kind", J.Str "readts");
          ("op", J.Int op_id);
          ("proc", J.Int proc);
          ("ts", vector_json ts);
        ]
  | Note { time; tag; text } ->
      J.Obj
        [
          ("t", J.Int time);
          ("kind", J.Str "note");
          ("tag", J.Str tag);
          ("text", J.Str text);
        ]

let json_entries t = List.map entry_json (entries t)
