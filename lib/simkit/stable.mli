(** Per-node stable storage: the durable half of the crash–recovery model.

    Crash-stop needs no disk — a dead node never speaks again.  Crash–
    {e recovery} is only meaningful relative to what survives the crash,
    and this module is that model: each node owns a write-ahead log of
    records.  {!append} adds a record to the {e volatile} tail (page
    cache); {!persist} moves the durable frontier to the end of the log
    (fsync).  {!crash} discards the un-persisted suffix — exactly the
    torn-write semantics a real machine gives you — and returns how many
    records were lost, so callers can tell a lossless restart from
    amnesia.

    Persistence discipline is a {!policy}:
    - [Every]: every {!append} is immediately durable (write-through;
      safe and slow — the baseline the registers default to);
    - [Explicit]: nothing is durable until the caller says {!persist}
      (the register's "sync point" knob; [Never] is spelled "create with
      [Explicit] and never call {!persist}");
    - [Prob p]: each append flips a coin from the store's {e dedicated}
      RNG and persists with probability [p] — a seed-driven model of
      periodic background flushing.  The RNG is the store's own (derive
      its seed from the fault stream), so attaching stable storage
      perturbs no scheduler or fault draw and runs stay byte-identical
      at any [-j].

    All state is per-node and in-memory; "durable" is a frontier index,
    not an actual file. *)

type policy = Every | Explicit | Prob of float

type 'a t

val create :
  ?metrics:Obs.Metrics.t ->
  ?policy:policy ->
  ?auto_compact:bool ->
  ?rng:Rng.t ->
  n:int ->
  unit ->
  'a t
(** An empty store for nodes [0..n-1].  [policy] defaults to [Every].
    [auto_compact] (default [false]) runs {!compact} after every sync
    point, bounding each node's log to one durable record plus the
    volatile tail — the flat-memory mode million-write fleet runs need.
    [rng] is consulted only by [Prob] (default: a fresh RNG seeded
    [0x57AB1EL]).  [metrics] (default {!Obs.Metrics.global}) receives
    [stable.appends], [stable.persists] (records made durable),
    [stable.lost] (records discarded by crashes) and [stable.compacted]
    (superseded durable records dropped by compaction).
    @raise Invalid_argument if [n <= 0] or a [Prob] probability is
    outside [0,1]. *)

val compact : 'a t -> node:int -> int
(** Drop every durable record of [node] except the newest — recovery only
    ever reads {!last_durable}, so the superseded prefix changes nothing
    a crash or recovery can observe.  The volatile tail is untouched.
    Returns how many records were dropped (counted in
    [stable.compacted]).  After compaction {!durable_len} is at most 1
    and {!log} starts at the surviving checkpoint. *)

val append : 'a t -> node:int -> 'a -> unit
(** Append one record to [node]'s volatile tail (then maybe persist, per
    the policy). *)

val persist : 'a t -> node:int -> unit
(** Move [node]'s durable frontier to the end of its log (no-op if
    already there). *)

val crash : 'a t -> node:int -> int
(** Discard [node]'s un-persisted suffix and return how many records
    were lost.  The durable prefix is untouched — it is what the node
    recovers from. *)

val last : 'a t -> node:int -> 'a option
(** The most recent surviving record (durable or volatile), i.e. what a
    running node reads back; [None] if the log is empty. *)

val last_durable : 'a t -> node:int -> 'a option
(** The most recent {e durable} record — all a node has after {!crash}. *)

val log : 'a t -> node:int -> 'a list
(** The surviving log, oldest first (durable prefix then volatile tail). *)

val durable_len : 'a t -> node:int -> int
(** Length of the durable prefix. *)

val len : 'a t -> node:int -> int
(** Total surviving log length ([durable_len] + volatile tail). *)

val lost : 'a t -> node:int -> int
(** Cumulative records this node has lost to {!crash}es. *)
