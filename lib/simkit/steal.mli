(** A work-stealing task runner over {!Deque}: the in-check parallelism
    substrate of the Lincheck/Treecheck parallel drivers.

    Tasks are indices [0..n-1], dealt round-robin across up to [jobs]
    per-domain Chase–Lev deques; a worker pops its own deque (LIFO) and,
    when empty, steals the oldest task from the nearest non-empty victim
    (FIFO), so load balances however uneven the per-task cost — the deep
    refutation subtree ends up shared while cheap subtrees drain.

    Contrast with [Simkit.Pool]: [Pool] parallelizes {e across} runs by
    pulling indices off one shared cursor (every pull contends on the
    same atomic); [Steal] parallelizes {e within} one search, where
    subtree tasks are spawned together, wildly uneven, and mostly
    consumed by their home domain without touching shared state.

    Determinism contract: like [Pool], a task must derive everything
    from its index and record metrics into a per-task registry; the
    {e assignment} of tasks to workers (and hence {!stats.stolen}) is
    timing-dependent, so callers must never let it influence results —
    the checker drivers select the winner by lowest task index, never by
    completion order. *)

type stats = {
  tasks : int;  (** [n] *)
  stolen : int;
      (** tasks executed by a worker other than the one they were dealt
          to (timing-dependent; monitoring only) *)
  executed_by : int array;
      (** worker id per task index; [-1] if the task never ran (only
          possible after a sibling raised and cancelled the run) *)
}

val run : jobs:int -> int -> (int -> unit) -> stats
(** [run ~jobs n f] evaluates [f i] for each [i] in [0..n-1] on up to
    [jobs] domains (the calling domain included).  [jobs <= 1] (or
    [n <= 1]) runs sequentially, in index order, on the calling domain.
    If a task raises, the run is cancelled (already started tasks
    finish, no new ones start) and the exception of the lowest-index
    failed task is re-raised — the same rule as [Pool.map].
    @raise Invalid_argument if [n < 0]. *)
