module J = Obs.Json

(* Checkpoint/resume for [rlin serve].

   A checkpoint is taken only at *globally* quiescent points (no object
   has an open segment), so the whole serving state reduces to: the
   input cursor (lines consumed), the running counters, the time
   high-water mark, and — per object — the next segment's index and
   entry set.  Re-feeding the stream from [cursor] through a restored
   engine re-emits exactly the verdicts the uninterrupted run would have
   emitted from that point, because everything downstream is a
   deterministic function of (entry sets, remaining lines).

   One JSON record, written atomically (tmp + rename) so a kill during
   the write leaves the previous checkpoint intact. *)

let schema = 1

type obj_state = { obj : string; index : int; entry : Segmenter.entry }

type t = {
  cursor : int; (* input lines consumed, including quarantined ones *)
  last_time : int; (* monotonicity high-water mark *)
  events : int;
  annotations : int;
  quarantined : int;
  shed_events : int;
  ok : int;
  fail : int;
  unknown : int;
  objects : obj_state list; (* sorted by object name *)
}

let verdicts t = t.ok + t.fail + t.unknown

let obj_json o =
  J.Obj
    [
      ("obj", J.Str o.obj);
      ("segment", J.Int o.index);
      ("exact", J.Bool o.entry.Segmenter.exact);
      ("overflow", J.Bool o.entry.Segmenter.overflow);
      ( "values",
        J.List (List.map Ingest.value_json o.entry.Segmenter.values) );
    ]

let obj_of_json j =
  let str k = Option.bind (J.member k j) J.to_string_opt in
  let int k = Option.bind (J.member k j) J.to_int_opt in
  let bool k =
    Option.bind (J.member k j) (function J.Bool b -> Some b | _ -> None)
  in
  match
    ( str "obj",
      int "segment",
      bool "exact",
      bool "overflow",
      Option.bind (J.member "values" j) J.to_list_opt )
  with
  | Some obj, Some index, Some exact, Some overflow, Some vals -> (
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | v :: rest -> (
            match Ingest.value_of_json v with
            | Ok v -> go (v :: acc) rest
            | Error e -> Error e)
      in
      match go [] vals with
      | Ok values ->
          Ok { obj; index; entry = { Segmenter.exact; values; overflow } }
      | Error e -> Error (Printf.sprintf "object %s: %s" obj e))
  | _ -> Error "checkpoint object: missing or mistyped field"

let json t =
  J.Obj
    [
      ("kind", J.Str "serve_checkpoint");
      ("schema", J.Int schema);
      ("cursor", J.Int t.cursor);
      ("last_time", J.Int t.last_time);
      ("events", J.Int t.events);
      ("annotations", J.Int t.annotations);
      ("quarantined", J.Int t.quarantined);
      ("shed_events", J.Int t.shed_events);
      ("ok", J.Int t.ok);
      ("fail", J.Int t.fail);
      ("unknown", J.Int t.unknown);
      ("objects", J.List (List.map obj_json t.objects));
    ]

let of_json j =
  let int k = Option.bind (J.member k j) J.to_int_opt in
  match Option.bind (J.member "kind" j) J.to_string_opt with
  | Some "serve_checkpoint" -> (
      match int "schema" with
      | Some s when s <> schema ->
          Error (Printf.sprintf "unsupported checkpoint schema %d" s)
      | None -> Error "checkpoint: missing \"schema\""
      | Some _ -> (
          match
            ( int "cursor",
              int "last_time",
              int "events",
              int "annotations",
              int "quarantined",
              int "shed_events",
              int "ok",
              int "fail",
              int "unknown",
              Option.bind (J.member "objects" j) J.to_list_opt )
          with
          | ( Some cursor,
              Some last_time,
              Some events,
              Some annotations,
              Some quarantined,
              Some shed_events,
              Some ok,
              Some fail,
              Some unknown,
              Some objs ) -> (
              let rec go acc = function
                | [] -> Ok (List.rev acc)
                | o :: rest -> (
                    match obj_of_json o with
                    | Ok o -> go (o :: acc) rest
                    | Error e -> Error e)
              in
              match go [] objs with
              | Ok objects ->
                  Ok
                    {
                      cursor;
                      last_time;
                      events;
                      annotations;
                      quarantined;
                      shed_events;
                      ok;
                      fail;
                      unknown;
                      objects;
                    }
              | Error e -> Error e)
          | _ -> Error "checkpoint: missing or mistyped field"))
  | Some k -> Error (Printf.sprintf "not a checkpoint record (kind %S)" k)
  | None -> Error "checkpoint: missing \"kind\""

(* Write-then-rename alone survives a process kill, but not a machine
   crash: the rename can hit disk before the data does, publishing an
   empty or torn checkpoint.  Flush and fsync the temp file before the
   rename, then best-effort fsync the directory so the rename itself is
   durable (some filesystems don't allow directory fds — skip then). *)
let atomic_replace ~path ~write =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      write oc;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path;
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let save path t =
  atomic_replace ~path ~write:(fun oc -> Obs.Export.write_line oc (json t))

let load path =
  match Obs.Export.parse_file path with
  | Error e -> Error e
  | Ok [ j ] -> of_json j
  | Ok records ->
      Error
        (Printf.sprintf "checkpoint file holds %d records, expected 1"
           (List.length records))

(* Rewrite a verdict log down to its first [keep] complete lines — the
   resume-time reconciliation that discards both verdicts emitted after
   the checkpoint and a partial final line a kill left behind. *)
let truncate_jsonl ~path ~keep =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | s ->
      let lines = String.split_on_char '\n' s in
      (* everything before the last '\n' is a complete line; the final
         element of the split is a fragment (or empty) *)
      let rec complete acc = function
        | [] | [ _ ] -> List.rev acc
        | l :: rest -> complete (l :: acc) rest
      in
      let complete_lines = complete [] lines in
      if List.length complete_lines < keep then
        Error
          (Printf.sprintf
             "verdict log %s has %d complete lines, checkpoint expects %d"
             path
             (List.length complete_lines)
             keep)
      else begin
        let kept = List.filteri (fun i _ -> i < keep) complete_lines in
        atomic_replace ~path ~write:(fun oc ->
            List.iter
              (fun l ->
                output_string oc l;
                output_char oc '\n')
              kept);
        Ok ()
      end
