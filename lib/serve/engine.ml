module V = History.Value

(* The serving engine: line-oriented ingest over any number of objects,
   with quarantine (malformed or semantically impossible records are
   counted, reported and skipped — never fatal), backpressure (a bound
   on events buffered across all open segments; the segment that
   overflows it is shed to an explicit [Unknown] and costs O(1) per
   event from then on), and checkpointing at globally quiescent points.

   Everything observable — verdict records, their order, the quarantine
   and event counts — is a deterministic function of the configuration
   and the input lines, which is what makes [--resume] byte-identical
   and the offline self-check meaningful. *)

type config = {
  init : V.t; (* each object's initial register value *)
  seg : Segmenter.config;
  max_pending : int; (* events buffered across all open segments *)
}

let default_config =
  { init = V.Int 0; seg = Segmenter.default_config; max_pending = 100_000 }

type t = {
  cfg : config;
  metrics : Obs.Metrics.t;
  emit : Verdict.t -> unit;
  on_quarantine : line:int -> string -> unit;
  reader : Ingest.Reader.t;
  objects : (string, Segmenter.t) Hashtbl.t;
  open_ids : (int, string) Hashtbl.t; (* open op id -> object *)
  mutable lines : int;
  mutable events : int;
  mutable annotations : int;
  mutable quarantined : int;
  mutable shed_events : int;
  mutable ok : int;
  mutable fail : int;
  mutable unknown : int;
  mutable open_events : int;
  mutable last_time : int;
  lines_c : Obs.Metrics.Counter.t;
  events_c : Obs.Metrics.Counter.t;
  quarantined_c : Obs.Metrics.Counter.t;
  shed_c : Obs.Metrics.Counter.t;
  verdict_ok_c : Obs.Metrics.Counter.t;
  verdict_fail_c : Obs.Metrics.Counter.t;
  verdict_unknown_c : Obs.Metrics.Counter.t;
  pending_g : Obs.Metrics.Gauge.t;
}

let make ?(metrics = Obs.Metrics.global) ?(config = default_config) ~emit
    ?(on_quarantine = fun ~line:_ _ -> ()) () =
  {
    cfg = config;
    metrics;
    emit;
    on_quarantine;
    reader = Ingest.Reader.create ();
    objects = Hashtbl.create 8;
    open_ids = Hashtbl.create 256;
    lines = 0;
    events = 0;
    annotations = 0;
    quarantined = 0;
    shed_events = 0;
    ok = 0;
    fail = 0;
    unknown = 0;
    open_events = 0;
    last_time = -1;
    lines_c = Obs.Metrics.counter_h metrics "serve.lines";
    events_c = Obs.Metrics.counter_h metrics "serve.events";
    quarantined_c = Obs.Metrics.counter_h metrics "serve.quarantined";
    shed_c = Obs.Metrics.counter_h metrics "serve.shed_events";
    verdict_ok_c = Obs.Metrics.counter_h metrics "serve.verdicts.ok";
    verdict_fail_c = Obs.Metrics.counter_h metrics "serve.verdicts.fail";
    verdict_unknown_c = Obs.Metrics.counter_h metrics "serve.verdicts.unknown";
    pending_g = Obs.Metrics.gauge_h metrics "serve.open_events";
  }

let create ?metrics ?config ~emit ?on_quarantine () =
  make ?metrics ?config ~emit ?on_quarantine ()

let restore ?metrics ?config ~emit ?on_quarantine (ck : Checkpoint.t) =
  let t = make ?metrics ?config ~emit ?on_quarantine () in
  t.lines <- ck.Checkpoint.cursor;
  t.last_time <- ck.Checkpoint.last_time;
  t.events <- ck.Checkpoint.events;
  t.annotations <- ck.Checkpoint.annotations;
  t.quarantined <- ck.Checkpoint.quarantined;
  t.shed_events <- ck.Checkpoint.shed_events;
  t.ok <- ck.Checkpoint.ok;
  t.fail <- ck.Checkpoint.fail;
  t.unknown <- ck.Checkpoint.unknown;
  List.iter
    (fun (o : Checkpoint.obj_state) ->
      Hashtbl.replace t.objects o.Checkpoint.obj
        (Segmenter.create ~metrics:t.metrics ~config:t.cfg.seg
           ~obj:o.Checkpoint.obj ~entry:o.Checkpoint.entry
           ~index:o.Checkpoint.index ()))
    ck.Checkpoint.objects;
  t

let lines t = t.lines
let events t = t.events
let annotations t = t.annotations
let quarantined t = t.quarantined
let shed_events t = t.shed_events
let ok t = t.ok
let fail t = t.fail
let unknown t = t.unknown
let verdicts t = t.ok + t.fail + t.unknown

let quarantine t msg =
  t.quarantined <- t.quarantined + 1;
  Obs.Metrics.incr_h t.quarantined_c;
  t.on_quarantine ~line:t.lines msg

let emit_verdict t (v : Verdict.t) =
  (match v.Verdict.outcome with
  | Verdict.Ok_ ->
      t.ok <- t.ok + 1;
      Obs.Metrics.incr_h t.verdict_ok_c
  | Verdict.Fail ->
      t.fail <- t.fail + 1;
      Obs.Metrics.incr_h t.verdict_fail_c
  | Verdict.Unknown _ ->
      t.unknown <- t.unknown + 1;
      Obs.Metrics.incr_h t.verdict_unknown_c);
  t.emit v

let segmenter t obj =
  match Hashtbl.find_opt t.objects obj with
  | Some s -> s
  | None ->
      let s =
        Segmenter.create ~metrics:t.metrics ~config:t.cfg.seg ~obj
          ~entry:(Segmenter.entry_exact [ t.cfg.init ])
          ~index:0 ()
      in
      Hashtbl.replace t.objects obj s;
      s

(* Track the cross-object buffered-event count through a segmenter call:
   +1 per buffered event, -cost when a retire or shed releases a whole
   segment.  A zero delta on an {e accepted} event means it went to a
   degraded segment — that is exactly a shed (unbuffered) event.  A
   rejected (Error) call changes nothing and counts nothing. *)
let with_cost t seg f =
  let before = Segmenter.open_cost seg in
  let r = f () in
  let delta = Segmenter.open_cost seg - before in
  t.open_events <- t.open_events + delta;
  (match r with
  | Ok _ when delta = 0 ->
      t.shed_events <- t.shed_events + 1;
      Obs.Metrics.incr_h t.shed_c
  | _ -> ());
  Obs.Metrics.set_gauge_h t.pending_g (float_of_int t.open_events);
  r

let backpressure t seg =
  if t.open_events > t.cfg.max_pending then begin
    let cost = Segmenter.open_cost seg in
    Segmenter.shed seg ~pending:t.open_events ~max_pending:t.cfg.max_pending;
    t.open_events <- t.open_events - cost;
    Obs.Metrics.set_gauge_h t.pending_g (float_of_int t.open_events)
  end

let process t time ev =
  if time < 0 then quarantine t (Printf.sprintf "negative event time %d" time)
  else if time <= t.last_time then
    (* strictly increasing, matching [Hist.of_events] well-formedness —
       what keeps the stream comparable to the offline checker *)
    quarantine t
      (Printf.sprintf "non-increasing time (t=%d after t=%d)" time t.last_time)
  else
    match ev with
    | Ingest.Invoke { op_id; obj; kind; proc = _ } -> (
        if Hashtbl.mem t.open_ids op_id then
          quarantine t
            (Printf.sprintf "duplicate invocation of open op id #%d" op_id)
        else
          let seg = segmenter t obj in
          match
            with_cost t seg (fun () -> Segmenter.invoke seg ~id:op_id ~kind ~time)
          with
          | Error e -> quarantine t e
          | Ok () ->
              t.last_time <- time;
              t.events <- t.events + 1;
              Obs.Metrics.incr_h t.events_c;
              Hashtbl.replace t.open_ids op_id obj;
              backpressure t seg)
    | Ingest.Respond { op_id; result } -> (
        match Hashtbl.find_opt t.open_ids op_id with
        | None ->
            quarantine t
              (Printf.sprintf "response without invocation (op id #%d)" op_id)
        | Some obj -> (
            let seg = Hashtbl.find t.objects obj in
            match
              with_cost t seg (fun () ->
                  Segmenter.respond seg ~id:op_id ~result ~time)
            with
            | Error e -> quarantine t e
            | Ok retired ->
                t.last_time <- time;
                t.events <- t.events + 1;
                Obs.Metrics.incr_h t.events_c;
                Hashtbl.remove t.open_ids op_id;
                Option.iter (emit_verdict t) retired))

let feed_line t line =
  t.lines <- t.lines + 1;
  Obs.Metrics.incr_h t.lines_c;
  if String.trim line = "" then ()
  else
    match Ingest.parse_line line with
    | Error e -> quarantine t e
    | Ok (Ingest.Annotation _) -> t.annotations <- t.annotations + 1
    | Ok (Ingest.Event { time; ev }) -> process t time ev

let feed_chunk t chunk =
  List.iter (feed_line t) (Ingest.Reader.feed t.reader chunk)

let sorted_objects t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.objects []
  |> List.sort String.compare

let quiescent t =
  Hashtbl.length t.open_ids = 0
  && Hashtbl.fold (fun _ s acc -> acc && not (Segmenter.is_open s)) t.objects
       true

let checkpoint t =
  if not (quiescent t) then None
  else
    Some
      {
        Checkpoint.cursor = t.lines;
        last_time = t.last_time;
        events = t.events;
        annotations = t.annotations;
        quarantined = t.quarantined;
        shed_events = t.shed_events;
        ok = t.ok;
        fail = t.fail;
        unknown = t.unknown;
        objects =
          List.map
            (fun obj ->
              let s = Hashtbl.find t.objects obj in
              {
                Checkpoint.obj;
                index = Segmenter.index s;
                entry = Segmenter.entry s;
              })
            (sorted_objects t);
      }

let finish t =
  (match Ingest.Reader.take_rest t.reader with
  | Some fragment -> feed_line t fragment
  | None -> ());
  List.iter
    (fun obj ->
      match Segmenter.flush (Hashtbl.find t.objects obj) with
      | Some v -> emit_verdict t v
      | None -> ())
    (sorted_objects t);
  t.open_events <- 0;
  Hashtbl.reset t.open_ids;
  Obs.Metrics.set_gauge_h t.pending_g 0.

let summary_json t =
  Obs.Json.Obj
    [
      ("kind", Obs.Json.Str "serve_summary");
      ("lines", Obs.Json.Int t.lines);
      ("events", Obs.Json.Int t.events);
      ("annotations", Obs.Json.Int t.annotations);
      ("quarantined", Obs.Json.Int t.quarantined);
      ("shed_events", Obs.Json.Int t.shed_events);
      ( "verdicts",
        Obs.Json.Obj
          [
            ("ok", Obs.Json.Int t.ok);
            ("fail", Obs.Json.Int t.fail);
            ("unknown", Obs.Json.Int t.unknown);
          ] );
    ]
