(** Per-object streaming segmentation over {!Linchk.Increment}.

    The segmentation invariant (DESIGN.md §15): a quiescent point — an
    event after which every invoked op on the object has responded —
    splits its history into independently-checkable segments; the only
    state crossing a boundary is the register's value, so segment [k+1]
    starts from segment [k]'s feasible boundary values and the
    conjunction of segment verdicts equals the offline verdict on the
    whole history. *)

type config = {
  seg_cap : int;  (** max ops per segment (≤ {!Linchk.Lincheck.max_ops}) *)
  state_budget : int;  (** max reachable states per segment *)
  wall_budget_ms : float option;
      (** wall-clock budget per segment; [None] (the default) keeps
          verdicts deterministic and resume byte-identical *)
  values_cap : int;
      (** max materialized entry-set candidates after a non-[Ok] segment *)
}

val default_config : config

type entry = { exact : bool; values : History.Value.t list; overflow : bool }
(** A segment's entry set: the register values it may start from.
    [exact = false] marks the over-approximation used after a [Fail] or
    [Unknown] segment; [overflow = true] means even that set outgrew
    [values_cap], so the segment degrades to [Entry_overflow]. *)

val entry_exact : History.Value.t list -> entry

type t

val create :
  ?metrics:Obs.Metrics.t ->
  config:config ->
  obj:string ->
  entry:entry ->
  index:int ->
  unit ->
  t

val obj : t -> string
val index : t -> int
(** The index the {e next} (or current open) segment carries. *)

val entry : t -> entry
(** The entry set of the next (or current open) segment — with {!index},
    the whole cross-segment state, which is what checkpoints persist. *)

val is_open : t -> bool
val open_cost : t -> int
(** Events buffered by the open segment while not degraded — the
    object's contribution to the engine's pending-event bound. *)

val invoke :
  t -> id:int -> kind:History.Op.kind -> time:int -> (unit, string) result
(** [Error] is a semantic quarantine (duplicate op id in the segment);
    the event must then be dropped by the caller. *)

val respond :
  t ->
  id:int ->
  result:History.Value.t option ->
  time:int ->
  (Verdict.t option, string) result
(** [Ok (Some v)] when this response made the object quiescent and
    retired the segment.  [Error] quarantines: unknown id, double
    response, or a read response without a result (the op then stays
    pending — conservative). *)

val shed : t -> pending:int -> max_pending:int -> unit
(** Backpressure: degrade the open segment to a [Shed] unknown, freeing
    its frontier; subsequent events cost O(1) until quiescence. *)

val flush : t -> Verdict.t option
(** End-of-stream: decide the open segment (if any) with pending ops
    treated as {!Linchk.Lincheck.prep} treats them, marked
    [closed = false]. *)
