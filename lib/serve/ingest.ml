module J = Obs.Json
module V = History.Value

(* Stream ingestion for [rlin serve]: a chunk-to-line reader that
   tolerates mid-write (partial) tails, plus a strict-but-total parser
   from the [Simkit.Trace.entry_json] JSONL schema into typed events.
   Every malformed shape becomes an [Error] for the quarantine — parsing
   never raises. *)

(* ----- partial-line-tolerant reader ------------------------------------- *)

module Reader = struct
  (* Bytes arrive in arbitrary chunks (pipe reads, socket frames, a tail
     of a file another process is still writing).  [feed] returns only
     the complete ('\n'-terminated) lines; a trailing fragment is
     buffered and completed by the next chunk.  [take_rest] surrenders
     the fragment at end-of-stream (a final line the writer never
     terminated). *)
  type t = { buf : Buffer.t }

  let create () = { buf = Buffer.create 256 }
  let pending t = if Buffer.length t.buf = 0 then None else Some (Buffer.contents t.buf)

  let feed t chunk =
    match String.index_opt chunk '\n' with
    | None ->
        Buffer.add_string t.buf chunk;
        []
    | Some _ ->
        let joined = Buffer.contents t.buf ^ chunk in
        Buffer.clear t.buf;
        let parts = String.split_on_char '\n' joined in
        (* the last part is the (possibly empty) unterminated tail *)
        let rec split_last acc = function
          | [] -> (List.rev acc, "")
          | [ last ] -> (List.rev acc, last)
          | x :: rest -> split_last (x :: acc) rest
        in
        let lines, tail = split_last [] parts in
        Buffer.add_string t.buf tail;
        lines

  let take_rest t =
    if Buffer.length t.buf = 0 then None
    else begin
      let s = Buffer.contents t.buf in
      Buffer.clear t.buf;
      Some s
    end
end

(* ----- values ----------------------------------------------------------- *)

(* Inverse of [Simkit.Trace.value_json]. *)
let value_of_json j =
  let int k = Option.bind (J.member k j) J.to_int_opt in
  match Option.bind (J.member "type" j) J.to_string_opt with
  | Some "bot" -> Ok V.Bot
  | Some "int" -> (
      match int "v" with
      | Some n -> Ok (V.Int n)
      | None -> Error "int value: missing \"v\"")
  | Some "pair" -> (
      match (int "a", int "b") with
      | Some a, Some b -> Ok (V.Pair (a, b))
      | _ -> Error "pair value: missing \"a\" or \"b\"")
  | Some "vec" -> (
      match (int "v", Option.bind (J.member "ts" j) J.to_list_opt) with
      | Some v, Some entries -> (
          let entry = function
            | J.Int k when k >= 0 -> Some (Clocks.Vector.Fin k)
            | J.Str "inf" -> Some Clocks.Vector.Inf
            | _ -> None
          in
          match
            List.fold_right
              (fun e acc ->
                match (entry e, acc) with
                | Some e, Some acc -> Some (e :: acc)
                | _ -> None)
              entries (Some [])
          with
          | Some [] | None -> Error "vec value: bad \"ts\" entries"
          | Some es -> Ok (V.VecStamped (v, Clocks.Vector.of_list es)))
      | _ -> Error "vec value: missing \"v\" or \"ts\"")
  | Some "lam" -> (
      match (int "v", int "sq", int "pid") with
      | Some v, Some sq, Some pid when sq >= 0 && pid >= 1 ->
          Ok (V.LamStamped (v, Clocks.Lamport.make ~sq ~pid))
      | Some _, Some _, Some _ -> Error "lam value: sq/pid out of range"
      | _ -> Error "lam value: missing \"v\", \"sq\" or \"pid\"")
  | Some ty -> Error (Printf.sprintf "unknown value type %S" ty)
  | None -> Error "value: missing \"type\""

let value_json = Simkit.Trace.value_json

(* ----- events ----------------------------------------------------------- *)

type event =
  | Invoke of { op_id : int; proc : int; obj : string; kind : History.Op.kind }
  | Respond of { op_id : int; result : V.t option }

type parsed =
  | Event of { time : int; ev : event }
  | Annotation of string  (** a known non-history record kind *)

(* Trace annotations ride alongside history events in [rlin trace --out]
   streams; serve counts and skips them (they carry linearization points,
   coin flips and timestamps, not operations). *)
let annotation_kinds = [ "lin"; "coin"; "valwrite"; "ts"; "readts"; "note" ]

let parse_json j =
  let int k = Option.bind (J.member k j) J.to_int_opt in
  let str k = Option.bind (J.member k j) J.to_string_opt in
  match str "kind" with
  | None -> Error "missing \"kind\""
  | Some "invoke" -> (
      match (int "t", int "op", int "proc", str "obj", str "opkind") with
      | Some time, Some op_id, Some proc, Some obj, Some "read" ->
          Ok
            (Event
               {
                 time;
                 ev = Invoke { op_id; proc; obj; kind = History.Op.Read };
               })
      | Some time, Some op_id, Some proc, Some obj, Some "write" -> (
          match J.member "value" j with
          | None -> Error "invoke: write without \"value\""
          | Some vj -> (
              match value_of_json vj with
              | Ok v ->
                  Ok
                    (Event
                       {
                         time;
                         ev =
                           Invoke
                             { op_id; proc; obj; kind = History.Op.Write v };
                       })
              | Error e -> Error ("invoke: " ^ e)))
      | _, _, _, _, Some k ->
          Error (Printf.sprintf "invoke: bad \"opkind\" %S or missing field" k)
      | _ -> Error "invoke: missing \"t\", \"op\", \"proc\", \"obj\" or \"opkind\"")
  | Some "respond" -> (
      match (int "t", int "op", J.member "result" j) with
      | Some time, Some op_id, Some J.Null ->
          Ok (Event { time; ev = Respond { op_id; result = None } })
      | Some time, Some op_id, Some vj -> (
          match value_of_json vj with
          | Ok v -> Ok (Event { time; ev = Respond { op_id; result = Some v } })
          | Error e -> Error ("respond: " ^ e))
      | _ -> Error "respond: missing \"t\", \"op\" or \"result\"")
  | Some k when List.mem k annotation_kinds -> Ok (Annotation k)
  | Some k -> Error (Printf.sprintf "unknown record kind %S" k)

let parse_line line =
  match J.of_string line with
  | Error e -> Error ("bad JSON: " ^ e)
  | Ok j -> parse_json j

(* ----- rendering (for tests and the experiment battery) ------------------ *)

let event_json ~time ev =
  Simkit.Trace.entry_json
    (Simkit.Trace.Ev
       {
         History.Event.time;
         event =
           (match ev with
           | Invoke { op_id; proc; obj; kind } ->
               History.Event.Invoke { op_id; proc; obj; kind }
           | Respond { op_id; result } ->
               History.Event.Respond { op_id; result });
       })
