(** The offline oracle behind [rlin serve --self-check]: same screens,
    same segmentation, same entry-set propagation as {!Engine}, but each
    segment is decided by the offline {!Linchk.Lincheck.check} (feasible
    final values via a synthetic appended read).  On a run with no
    resource degradation the verdict records are byte-identical to the
    engine's. *)

type result = {
  verdicts : Verdict.t list;
  lines : int;
  events : int;
  annotations : int;
  quarantined : int;
}

val run : ?config:Engine.config -> string list -> result
(** Replay the raw input lines offline.  [config]'s [state_budget],
    [wall_budget_ms] and [max_pending] are ignored — this oracle is
    unbounded by construction. *)

val resource_unknown : Verdict.t -> bool
(** An [Unknown] whose reason (state budget, wall budget, shed) the
    oracle cannot mirror. *)

type comparison = {
  matched : int;
  skipped : int;  (** resource-degraded objects' tails — not comparable *)
  mismatches : (Verdict.t option * Verdict.t option) list;
      (** (engine, reference) pairs that should have agreed but differ *)
}

val agreed : comparison -> bool

val compare_verdicts :
  engine:Verdict.t list -> reference:Verdict.t list -> comparison
(** Pair by (object, segment index); strict {!Verdict.equal} until an
    object's first resource-[Unknown] on the engine side, skipped from
    there on (the entry sets legitimately diverge). *)
