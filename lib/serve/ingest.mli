(** Stream ingestion for [rlin serve]: chunked-line reading that tolerates
    partial (mid-write) tails, and total parsing of the
    [Simkit.Trace.entry_json] JSONL schema into typed events.  Malformed
    input becomes [Error] for the quarantine — nothing here raises. *)

module Reader : sig
  type t

  val create : unit -> t

  val feed : t -> string -> string list
  (** Feed an arbitrary byte chunk; returns the complete
      (newline-terminated) lines it finishes, in order.  An unterminated
      tail is buffered for the next chunk — the fix for following a file
      whose writer is mid-line at our EOF. *)

  val pending : t -> string option
  (** The buffered fragment, if any (not consumed). *)

  val take_rest : t -> string option
  (** Surrender the fragment at end-of-stream: a final line the writer
      never newline-terminated is still a line. *)
end

val value_of_json : Obs.Json.t -> (History.Value.t, string) result
(** Inverse of {!Simkit.Trace.value_json}. *)

val value_json : History.Value.t -> Obs.Json.t

type event =
  | Invoke of {
      op_id : int;
      proc : int;
      obj : string;
      kind : History.Op.kind;
    }
  | Respond of { op_id : int; result : History.Value.t option }

type parsed =
  | Event of { time : int; ev : event }
  | Annotation of string
      (** A known non-history record kind (lin/coin/valwrite/ts/readts/
          note) — counted and skipped, not quarantined. *)

val parse_json : Obs.Json.t -> (parsed, string) result
val parse_line : string -> (parsed, string) result

val event_json : time:int -> event -> Obs.Json.t
(** Render back to the trace schema (exact inverse of {!parse_line} on
    events) — test and experiment harness plumbing. *)
