module V = History.Value
module Op = History.Op
module E = History.Event
module Hist = History.Hist
module Inc = Linchk.Increment

(* The offline oracle behind [rlin serve --self-check]: re-run the same
   stream through the same screens and segmentation, but decide each
   segment with the offline [Lincheck.check] instead of the incremental
   reachable-set engine.

   The screens (quarantine rules), the segment boundaries, the op-cap
   and entry-overflow degradations and the entry-set propagation mirror
   {!Engine}/{!Segmenter} exactly, so on a run where no *resource*
   degradation fires (state budget, wall budget, shed — which this
   oracle, being offline and unbounded, cannot mirror) the verdict
   records are byte-identical.  {!compare_verdicts} encodes that rule:
   strict equality until an object's first resource-[Unknown], skipped
   from there on (its entry sets legitimately diverge). *)

type result = {
  verdicts : Verdict.t list;
  lines : int;
  events : int;
  annotations : int;
  quarantined : int;
}

(* ---- offline decision of one segment ---- *)

(* [Hist] well-formedness also demands sequential processes; the stream's
   proc ids are irrelevant to linearizability (only intervals matter),
   so give every op its own process and the constraint holds vacuously. *)
let mk_hist events =
  let events =
    List.map
      (fun ({ E.time; event } as te) ->
        match event with
        | E.Invoke { op_id; obj; kind; proc = _ } ->
            { E.time; event = E.Invoke { op_id; proc = op_id; obj; kind } }
        | E.Respond _ -> te)
      events
  in
  match Hist.of_events events with
  | Ok h -> h
  | Error e -> invalid_arg (Printf.sprintf "Reference: internal: %s" e)

let dedup_mem vs v = List.exists (V.equal v) vs

let dedup_append base extra =
  List.fold_left
    (fun acc v -> if dedup_mem acc v then acc else acc @ [ v ])
    base extra

(* Is [v] a feasible final register value of the (linearizable) closed
   segment?  Append a synthetic completed read returning [v] after every
   real event: the extended history linearizes from some entry value iff
   a linearization of the segment leaves the register holding [v]. *)
let feasible_final metrics ~entries ~obj ~events v =
  let last_t, max_id =
    List.fold_left
      (fun (t, m) { E.time; event } -> (max t time, max m (E.op_id event)))
      (0, 0) events
  in
  let probe = max_id + 1 in
  let events =
    events
    @ [
        {
          E.time = last_t + 1;
          event = E.Invoke { op_id = probe; proc = probe; obj; kind = Op.Read };
        };
        {
          E.time = last_t + 2;
          event = E.Respond { op_id = probe; result = Some v };
        };
      ]
  in
  let h = mk_hist events in
  List.exists (fun e -> Linchk.Lincheck.check ~metrics ~init:e h) entries

(* ---- stream state, mirroring Engine/Segmenter ---- *)

type op_state = Open of bool (* is_read *) | Done

type seg_state = {
  mutable revents : E.timed list;
  ids : (int, op_state) Hashtbl.t;
  mutable seg_writes : V.t list; (* distinct, reverse first-write order *)
  mutable wcount : int;
  mutable woverflow : bool;
  mutable first_t : int;
  mutable last_t : int;
  mutable ops : int;
  mutable open_ops : int;
}

type obj_state = {
  mutable index : int;
  mutable entry : Segmenter.entry;
  mutable seg : seg_state option;
}

let fresh_seg () =
  {
    revents = [];
    ids = Hashtbl.create 64;
    seg_writes = [];
    wcount = 0;
    woverflow = false;
    first_t = 0;
    last_t = 0;
    ops = 0;
    open_ops = 0;
  }

let note_write cfg seg v =
  if not (dedup_mem seg.seg_writes v) then begin
    if seg.wcount >= cfg.Segmenter.values_cap then seg.woverflow <- true
    else begin
      seg.seg_writes <- v :: seg.seg_writes;
      seg.wcount <- seg.wcount + 1
    end
  end

let retire metrics (cfg : Segmenter.config) ~obj (st : obj_state) seg ~closed =
  let entries =
    if st.entry.Segmenter.values = [] then [ V.Bot ]
    else st.entry.Segmenter.values
  in
  let events = List.rev seg.revents in
  let inexact () =
    let values =
      dedup_append st.entry.Segmenter.values (List.rev seg.seg_writes)
    in
    let overflow =
      st.entry.Segmenter.overflow || seg.woverflow
      || List.length values > cfg.values_cap
    in
    let values =
      if overflow then List.filteri (fun i _ -> i < cfg.values_cap) values
      else values
    in
    { Segmenter.exact = false; values; overflow }
  in
  let outcome, final_vals, next_entry =
    if st.entry.Segmenter.overflow then
      (Verdict.Unknown (Inc.Entry_overflow { cap = cfg.values_cap }), 0, inexact ())
    else if seg.ops > cfg.seg_cap then
      (Verdict.Unknown (Inc.Op_cap { n = seg.ops; cap = cfg.seg_cap }), 0, inexact ())
    else
      let h = mk_hist events in
      let pass =
        List.exists (fun e -> Linchk.Lincheck.check ~metrics ~init:e h) entries
      in
      if not pass then (Verdict.Fail, 0, inexact ())
      else if not closed then (Verdict.Ok_, 0, st.entry)
      else
        let candidates = dedup_append entries (List.rev seg.seg_writes) in
        let finals =
          List.filter (feasible_final metrics ~entries ~obj ~events) candidates
        in
        (Verdict.Ok_, List.length finals, Segmenter.entry_exact finals)
  in
  let v =
    {
      Verdict.obj;
      segment = st.index;
      from_t = seg.first_t;
      to_t = seg.last_t;
      ops = seg.ops;
      closed;
      outcome;
      entry_vals = List.length st.entry.Segmenter.values;
      entry_any =
        (not st.entry.Segmenter.exact) || st.entry.Segmenter.overflow;
      final_vals;
    }
  in
  st.seg <- None;
  st.index <- st.index + 1;
  st.entry <- next_entry;
  v

let run ?(config = Engine.default_config) lines =
  let metrics = Obs.Metrics.create () in
  let cfg = config.Engine.seg in
  let objects : (string, obj_state) Hashtbl.t = Hashtbl.create 8 in
  let open_ids : (int, string) Hashtbl.t = Hashtbl.create 256 in
  let nlines = ref 0 in
  let events = ref 0 in
  let annotations = ref 0 in
  let quarantined = ref 0 in
  let last_time = ref (-1) in
  let rverdicts = ref [] in
  let emit v = rverdicts := v :: !rverdicts in
  let quarantine () = incr quarantined in
  let obj_state obj =
    match Hashtbl.find_opt objects obj with
    | Some st -> st
    | None ->
        let st =
          {
            index = 0;
            entry = Segmenter.entry_exact [ config.Engine.init ];
            seg = None;
          }
        in
        Hashtbl.replace objects obj st;
        st
  in
  let accept time = last_time := time; incr events in
  let process time ev =
    if time < 0 || time <= !last_time then quarantine ()
    else
      match ev with
      | Ingest.Invoke { op_id; obj; kind; proc } ->
          if Hashtbl.mem open_ids op_id then quarantine ()
          else begin
            let st = obj_state obj in
            let seg =
              match st.seg with
              | Some s -> s
              | None ->
                  let s = fresh_seg () in
                  st.seg <- Some s;
                  s
            in
            if Hashtbl.mem seg.ids op_id then quarantine ()
            else begin
              if seg.ops = 0 then seg.first_t <- time;
              seg.last_t <- time;
              seg.ops <- seg.ops + 1;
              seg.open_ops <- seg.open_ops + 1;
              (match kind with
              | Op.Write v -> note_write cfg seg v
              | Op.Read -> ());
              Hashtbl.replace seg.ids op_id (Open (kind = Op.Read));
              seg.revents <-
                { E.time; event = E.Invoke { op_id; proc; obj; kind } }
                :: seg.revents;
              Hashtbl.replace open_ids op_id obj;
              accept time
            end
          end
      | Ingest.Respond { op_id; result } -> (
          match Hashtbl.find_opt open_ids op_id with
          | None -> quarantine ()
          | Some obj -> (
              let st = obj_state obj in
              let seg =
                match st.seg with Some s -> s | None -> assert false
              in
              match Hashtbl.find_opt seg.ids op_id with
              | None | Some Done -> quarantine ()
              | Some (Open is_read) ->
                  if is_read && Option.is_none result then quarantine ()
                  else begin
                    seg.last_t <- time;
                    Hashtbl.replace seg.ids op_id Done;
                    seg.open_ops <- seg.open_ops - 1;
                    seg.revents <-
                      { E.time; event = E.Respond { op_id; result } }
                      :: seg.revents;
                    Hashtbl.remove open_ids op_id;
                    accept time;
                    if seg.open_ops = 0 then
                      emit (retire metrics cfg ~obj st seg ~closed:true)
                  end))
  in
  List.iter
    (fun line ->
      incr nlines;
      if String.trim line = "" then ()
      else
        match Ingest.parse_line line with
        | Error _ -> quarantine ()
        | Ok (Ingest.Annotation _) -> incr annotations
        | Ok (Ingest.Event { time; ev }) -> process time ev)
    lines;
  let sorted =
    Hashtbl.fold (fun k _ acc -> k :: acc) objects [] |> List.sort String.compare
  in
  List.iter
    (fun obj ->
      let st = Hashtbl.find objects obj in
      match st.seg with
      | Some seg -> emit (retire metrics cfg ~obj st seg ~closed:false)
      | None -> ())
    sorted;
  {
    verdicts = List.rev !rverdicts;
    lines = !nlines;
    events = !events;
    annotations = !annotations;
    quarantined = !quarantined;
  }

(* ---- comparison, the --self-check core ---- *)

let resource_unknown (v : Verdict.t) =
  match v.Verdict.outcome with
  | Verdict.Unknown (Inc.State_budget _ | Inc.Wall_budget _ | Inc.Shed _) ->
      true
  | _ -> false

type comparison = {
  matched : int;
  skipped : int;  (** resource-degraded objects' tails — not comparable *)
  mismatches : (Verdict.t option * Verdict.t option) list;
      (** (engine, reference) pairs that should have agreed but differ *)
}

let agreed c = c.mismatches = []

(* Pair engine and reference verdicts by (object, segment index).  Once
   the engine reports a resource-[Unknown] for an object, its entry sets
   diverge from the oracle's for good — every later verdict on that
   object is skipped rather than compared. *)
let compare_verdicts ~engine ~reference =
  let tainted = Hashtbl.create 8 in
  let key (v : Verdict.t) = (v.Verdict.obj, v.Verdict.segment) in
  let ref_tbl = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace ref_tbl (key v) v) reference;
  let matched = ref 0 and skipped = ref 0 and mismatches = ref [] in
  List.iter
    (fun (ev : Verdict.t) ->
      let k = key ev in
      let rv = Hashtbl.find_opt ref_tbl k in
      Hashtbl.remove ref_tbl k;
      if Hashtbl.mem tainted ev.Verdict.obj then incr skipped
      else if resource_unknown ev then begin
        Hashtbl.replace tainted ev.Verdict.obj ();
        incr skipped
      end
      else
        match rv with
        | Some rv when Verdict.equal ev rv -> incr matched
        | Some rv -> mismatches := (Some ev, Some rv) :: !mismatches
        | None -> mismatches := (Some ev, None) :: !mismatches)
    engine;
  (* reference verdicts the engine never produced *)
  Hashtbl.iter
    (fun (obj, _) rv ->
      if Hashtbl.mem tainted obj then incr skipped
      else mismatches := (None, Some rv) :: !mismatches)
    ref_tbl;
  { matched = !matched; skipped = !skipped; mismatches = List.rev !mismatches }
