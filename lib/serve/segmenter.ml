module V = History.Value
module Op = History.Op
module Inc = Linchk.Increment

(* Per-object streaming segmentation.

   The segmentation invariant (DESIGN.md §15): a quiescent point — an
   event after which every invoked op has responded — splits the
   object's history into independently-checkable segments, because any
   linearization of the whole history decomposes at the boundary (every
   op on the left really-precedes every op on the right).  The only
   cross-boundary state is the register's value, so each segment starts
   from the previous one's feasible boundary values ({!Inc.outcome}'s
   [Pass] list) and the conjunction of segment verdicts equals the
   offline verdict on the whole history.

   After a [Fail] or [Unknown] segment the exact boundary set is
   unavailable; the entry set becomes the over-approximation "anything
   the register could hold" — the previous candidates plus every value
   the segment wrote — flagged [exact = false] in subsequent verdicts.
   If that set outgrows [values_cap] it cannot be materialized and
   later segments degrade to an explicit [Entry_overflow] unknown
   rather than guessing. *)

type config = {
  seg_cap : int;
  state_budget : int;
  wall_budget_ms : float option;
  values_cap : int;
}

let default_config =
  {
    seg_cap = Linchk.Lincheck.max_ops;
    state_budget = Inc.default_state_budget;
    wall_budget_ms = None;
    values_cap = 64;
  }

type entry = { exact : bool; values : V.t list; overflow : bool }

let entry_exact values = { exact = true; values; overflow = false }

type op_state = Open of bool (* is_read *) | Done

type t = {
  obj : string;
  cfg : config;
  metrics : Obs.Metrics.t;
  mutable index : int;
  mutable entry : entry;
  mutable inc : Inc.t option;
  ids : (int, op_state) Hashtbl.t; (* this segment's op ids *)
  mutable seg_writes : V.t list; (* distinct, reverse first-write order *)
  mutable seg_write_count : int;
  mutable writes_overflow : bool;
  mutable first_t : int;
  mutable last_t : int;
  mutable ops : int;
  mutable open_cost : int; (* events buffered while not degraded *)
}

let create ?(metrics = Obs.Metrics.global) ~config ~obj ~entry ~index () =
  {
    obj;
    cfg = config;
    metrics;
    index;
    entry;
    inc = None;
    ids = Hashtbl.create 64;
    seg_writes = [];
    seg_write_count = 0;
    writes_overflow = false;
    first_t = 0;
    last_t = 0;
    ops = 0;
    open_cost = 0;
  }

let obj t = t.obj
let index t = t.index
let entry t = t.entry
let is_open t = Option.is_some t.inc
let open_cost t = t.open_cost

let start_segment t =
  let inc =
    Inc.create ~metrics:t.metrics ~cap:t.cfg.seg_cap
      ~state_budget:t.cfg.state_budget ?wall_budget_ms:t.cfg.wall_budget_ms
      ~entry:(if t.entry.values = [] then [ V.Bot ] else t.entry.values)
      ()
  in
  if t.entry.overflow then
    Inc.degrade inc (Inc.Entry_overflow { cap = t.cfg.values_cap });
  t.inc <- Some inc;
  inc

let dedup_mem vs v = List.exists (V.equal v) vs

let note_write t v =
  if not (dedup_mem t.seg_writes v) then begin
    if t.seg_write_count >= t.cfg.values_cap then t.writes_overflow <- true
    else begin
      t.seg_writes <- v :: t.seg_writes;
      t.seg_write_count <- t.seg_write_count + 1
    end
  end

let shed t ~pending ~max_pending =
  match t.inc with
  | None -> ()
  | Some inc ->
      Inc.degrade inc (Inc.Shed { pending; max_pending });
      t.open_cost <- 0

(* Retire the current segment: decide it, compute the next entry set,
   reset per-segment state.  [closed] is false only at EOF flush. *)
let retire t inc ~closed =
  let outcome = Inc.outcome inc in
  let verdict_outcome, final_vals, next_entry =
    match outcome with
    | Inc.Pass finals ->
        let next =
          if closed then entry_exact finals
          else t.entry (* flush: stream over, entry unused *)
        in
        (Verdict.Ok_, (if closed then List.length finals else 0), next)
    | Inc.Fail | Inc.Unknown _ ->
        let out =
          match outcome with
          | Inc.Fail -> Verdict.Fail
          | Inc.Unknown r -> Verdict.Unknown r
          | Inc.Pass _ -> assert false
        in
        (* anything the register could hold now: the old candidates plus
           everything this segment wrote *)
        let values =
          List.fold_left
            (fun acc v -> if dedup_mem acc v then acc else acc @ [ v ])
            t.entry.values (List.rev t.seg_writes)
        in
        let overflow =
          t.entry.overflow || t.writes_overflow
          || List.length values > t.cfg.values_cap
        in
        (* keep the materialized list bounded even once overflowed *)
        let values =
          if overflow then List.filteri (fun i _ -> i < t.cfg.values_cap) values
          else values
        in
        (out, 0, { exact = false; values; overflow })
  in
  let v =
    {
      Verdict.obj = t.obj;
      segment = t.index;
      from_t = t.first_t;
      to_t = t.last_t;
      ops = t.ops;
      closed;
      outcome = verdict_outcome;
      entry_vals = List.length t.entry.values;
      entry_any = (not t.entry.exact) || t.entry.overflow;
      final_vals;
    }
  in
  t.inc <- None;
  Hashtbl.reset t.ids;
  t.seg_writes <- [];
  t.seg_write_count <- 0;
  t.writes_overflow <- false;
  t.ops <- 0;
  t.open_cost <- 0;
  t.index <- t.index + 1;
  t.entry <- next_entry;
  v

let invoke t ~id ~kind ~time =
  if Hashtbl.mem t.ids id then
    Error (Printf.sprintf "duplicate op id #%d in segment %d" id t.index)
  else begin
    let inc = match t.inc with Some i -> i | None -> start_segment t in
    if t.ops = 0 then t.first_t <- time;
    t.last_t <- time;
    t.ops <- t.ops + 1;
    (match kind with Op.Write v -> note_write t v | Op.Read -> ());
    Hashtbl.replace t.ids id (Open (kind = Op.Read));
    Inc.invoke inc ~id ~kind ~time;
    if Option.is_none (Inc.degraded inc) then
      t.open_cost <- t.open_cost + 1;
    Ok ()
  end

let respond t ~id ~result ~time =
  match Hashtbl.find_opt t.ids id with
  | None -> Error (Printf.sprintf "response for unknown op id #%d" id)
  | Some Done -> Error (Printf.sprintf "second response for op id #%d" id)
  | Some (Open is_read) ->
      if is_read && Option.is_none result then
        (* screened here because the offline prep rejects a completed
           read without a result; the op stays pending (conservative) *)
        Error (Printf.sprintf "read op #%d responded without a result" id)
      else begin
        let inc = match t.inc with Some i -> i | None -> assert false in
        t.last_t <- time;
        Hashtbl.replace t.ids id Done;
        Inc.respond inc ~id ~result ~time;
        if Option.is_none (Inc.degraded inc) then
          t.open_cost <- t.open_cost + 1;
        if Inc.pending inc = 0 then Ok (Some (retire t inc ~closed:true))
        else Ok None
      end

let flush t =
  match t.inc with
  | None -> None
  | Some inc -> Some (retire t inc ~closed:false)
