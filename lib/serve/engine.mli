(** The [rlin serve] engine: line-oriented ingest over any number of
    registers, dispatching events to per-object {!Segmenter}s and
    emitting {!Verdict} records as segments retire.

    Robustness properties:
    - {b quarantine} — malformed or semantically impossible lines
      (bad JSON, unknown schema, duplicate / orphan op ids,
      non-monotone times) are counted, reported via [on_quarantine]
      with their 1-based line number, and skipped.  Never fatal.
    - {b backpressure} — at most [max_pending] events are buffered
      across all open segments; the segment that overflows the bound is
      shed to an explicit [Unknown (Shed _)] and costs O(1) per event
      until it closes.
    - {b determinism} — verdicts, their order and all counters are a
      function of (config, input lines) only, so [--resume] is
      byte-identical and the {!Reference} self-check is meaningful. *)

type config = {
  init : History.Value.t;  (** each object's initial register value *)
  seg : Segmenter.config;
  max_pending : int;  (** events buffered across all open segments *)
}

val default_config : config

type t

val create :
  ?metrics:Obs.Metrics.t ->
  ?config:config ->
  emit:(Verdict.t -> unit) ->
  ?on_quarantine:(line:int -> string -> unit) ->
  unit ->
  t

val restore :
  ?metrics:Obs.Metrics.t ->
  ?config:config ->
  emit:(Verdict.t -> unit) ->
  ?on_quarantine:(line:int -> string -> unit) ->
  Checkpoint.t ->
  t
(** An engine whose cross-segment state (counters, time high-water mark,
    per-object segment index and entry set) comes from a checkpoint.
    The caller then feeds the stream from line [cursor + 1] on. *)

val feed_line : t -> string -> unit
(** One input line (no trailing newline needed; blank lines ignored). *)

val feed_chunk : t -> string -> unit
(** Arbitrary bytes; complete lines are processed, a partial tail is
    buffered ({!Ingest.Reader}).  Call {!finish} to flush the tail. *)

val finish : t -> unit
(** End of stream: process any buffered partial line, then flush every
    open segment to a [closed = false] verdict. *)

val checkpoint : t -> Checkpoint.t option
(** [Some _] only at globally quiescent points (no open op anywhere). *)

val quiescent : t -> bool

val summary_json : t -> Obs.Json.t

(** {2 Counters} *)

val lines : t -> int
val events : t -> int
val annotations : t -> int
val quarantined : t -> int
val shed_events : t -> int
val ok : t -> int
val fail : t -> int
val unknown : t -> int
val verdicts : t -> int
