module J = Obs.Json
module Inc = Linchk.Increment

(* Per-segment verdict records: the serving checker's unit of output.

   Deliberately wall-clock-free — every field is a deterministic function
   of the input event stream and the serve configuration, so a
   [--resume]d run re-emits byte-identical records and CI can diff the
   stream against the offline reference checker.  The [Unknown] reasons
   reuse the structured-record idiom of [Simkit.Sched.stall_json]: a
   stable short cause plus the numbers that tripped it. *)

type outcome = Ok_ | Fail | Unknown of Inc.reason

type t = {
  obj : string;
  segment : int; (* per-object segment number, 0-based *)
  from_t : int; (* time of the segment's first invocation *)
  to_t : int; (* time of its last event *)
  ops : int; (* invocations in the segment *)
  closed : bool; (* true: retired at a quiescent point; false: EOF flush *)
  outcome : outcome;
  entry_vals : int; (* size of the feasible entry-value set *)
  entry_any : bool; (* entry set was an over-approximation *)
  final_vals : int; (* feasible boundary values (0 unless closed Ok) *)
}

let reason_json r =
  let base = [ ("cause", J.Str (Inc.reason_cause r)) ] in
  J.Obj
    (base
    @
    match r with
    | Inc.Op_cap { n; cap } -> [ ("n", J.Int n); ("cap", J.Int cap) ]
    | Inc.State_budget { states; budget } ->
        [ ("states", J.Int states); ("budget", J.Int budget) ]
    | Inc.Wall_budget { budget_ms } -> [ ("budget_ms", J.Float budget_ms) ]
    | Inc.Shed { pending; max_pending } ->
        [ ("pending", J.Int pending); ("max_pending", J.Int max_pending) ]
    | Inc.Entry_overflow { cap } -> [ ("cap", J.Int cap) ])

let reason_of_json j =
  let int k = Option.bind (J.member k j) J.to_int_opt in
  let float k = Option.bind (J.member k j) J.to_float_opt in
  match Option.bind (J.member "cause" j) J.to_string_opt with
  | Some "op-cap" -> (
      match (int "n", int "cap") with
      | Some n, Some cap -> Ok (Inc.Op_cap { n; cap })
      | _ -> Error "op-cap reason: missing \"n\" or \"cap\"")
  | Some "state-budget" -> (
      match (int "states", int "budget") with
      | Some states, Some budget -> Ok (Inc.State_budget { states; budget })
      | _ -> Error "state-budget reason: missing \"states\" or \"budget\"")
  | Some "wall-budget" -> (
      match float "budget_ms" with
      | Some budget_ms -> Ok (Inc.Wall_budget { budget_ms })
      | None -> Error "wall-budget reason: missing \"budget_ms\"")
  | Some "shed" -> (
      match (int "pending", int "max_pending") with
      | Some pending, Some max_pending ->
          Ok (Inc.Shed { pending; max_pending })
      | _ -> Error "shed reason: missing \"pending\" or \"max_pending\"")
  | Some "entry-overflow" -> (
      match int "cap" with
      | Some cap -> Ok (Inc.Entry_overflow { cap })
      | None -> Error "entry-overflow reason: missing \"cap\"")
  | Some c -> Error (Printf.sprintf "unknown verdict reason cause %S" c)
  | None -> Error "verdict reason: missing \"cause\""

let json v =
  J.Obj
    ([
       ("kind", J.Str "segment_verdict");
       ("obj", J.Str v.obj);
       ("segment", J.Int v.segment);
       ("from", J.Int v.from_t);
       ("to", J.Int v.to_t);
       ("ops", J.Int v.ops);
       ("closed", J.Bool v.closed);
       ( "verdict",
         J.Str
           (match v.outcome with
           | Ok_ -> "ok"
           | Fail -> "fail"
           | Unknown _ -> "unknown") );
     ]
    @ (match v.outcome with
      | Unknown r -> [ ("reason", reason_json r) ]
      | Ok_ | Fail -> [])
    @ [
        ("entry_vals", J.Int v.entry_vals);
        ("entry_any", J.Bool v.entry_any);
        ("final_vals", J.Int v.final_vals);
      ])

let of_json j =
  let str k = Option.bind (J.member k j) J.to_string_opt in
  let int k = Option.bind (J.member k j) J.to_int_opt in
  let bool k =
    Option.bind (J.member k j) (function J.Bool b -> Some b | _ -> None)
  in
  match
    ( str "obj",
      int "segment",
      int "from",
      int "to",
      int "ops",
      bool "closed",
      str "verdict",
      int "entry_vals",
      bool "entry_any",
      int "final_vals" )
  with
  | ( Some obj,
      Some segment,
      Some from_t,
      Some to_t,
      Some ops,
      Some closed,
      Some verdict,
      Some entry_vals,
      Some entry_any,
      Some final_vals ) -> (
      let mk outcome =
        Ok
          {
            obj;
            segment;
            from_t;
            to_t;
            ops;
            closed;
            outcome;
            entry_vals;
            entry_any;
            final_vals;
          }
      in
      match verdict with
      | "ok" -> mk Ok_
      | "fail" -> mk Fail
      | "unknown" -> (
          match J.member "reason" j with
          | None -> Error "unknown verdict without a \"reason\""
          | Some r -> (
              match reason_of_json r with
              | Ok r -> mk (Unknown r)
              | Error e -> Error e))
      | v -> Error (Printf.sprintf "unknown verdict %S" v))
  | _ -> Error "segment_verdict: missing or mistyped field"

let equal a b = J.equal (json a) (json b)

let pp fmt v =
  Format.fprintf fmt "%s[%d] t%d..%d %dops %s%s" v.obj v.segment v.from_t
    v.to_t v.ops
    (match v.outcome with
    | Ok_ -> "ok"
    | Fail -> "FAIL"
    | Unknown r -> "unknown(" ^ Inc.reason_cause r ^ ")")
    (if v.closed then "" else " (flush)")
