(** The experiment suite: one entry per figure/theorem of the paper
    (E1–E8 in DESIGN.md).  Each [run_*] function executes the experiment
    and returns a printable report; {!run_all} prints the whole battery
    in the shape recorded in EXPERIMENTS.md.

    [quick] variants use smaller run counts (used by `dune runtest`);
    the full battery is what `dune exec bench/main.exe` and
    `rlin experiments` print.

    [jobs] (default 1) runs each experiment's independent Monte-Carlo
    runs on up to that many domains ({!Core.Pool}).  Every run records
    into a private metric registry folded back into the global one in run
    order, and per-run seeds depend only on the run index, so reports are
    identical — pass/measured text and metrics alike (modulo [wall_ms])
    — whatever [jobs] is. *)

type report = {
  id : string;  (** e.g. "E1" *)
  claim : string;  (** the paper's claim being probed *)
  expected : string;  (** the shape the paper predicts *)
  measured : string;  (** what this run measured *)
  pass : bool;
  metrics : (string * float) list;
      (** structured numbers behind [measured]: the experiment's headline
          figures (runs, means, steps/op) plus the instrumented stack's
          delta while it ran — scheduler steps and coins, checker states
          explored, simulated-time op latencies, wall-clock.  This is what
          [rlin experiments --json] exports, one JSONL record per report. *)
}

val pp_report : Format.formatter -> report -> unit

val report_json : report -> Obs.Json.t
(** The JSONL record: [{"kind":"report","id":…,"pass":…,"metrics":{…}}]. *)

val export_jsonl : report list -> out_channel -> unit
(** One {!report_json} line per report. *)

val e1_nontermination : ?jobs:int -> quick:bool -> unit -> report
(** Theorem 6 / Figures 1–2: survival under the adversary. *)

val e2_wsl_termination : ?jobs:int -> quick:bool -> unit -> report
(** Theorem 7: geometric termination with WSL registers. *)

val e3_alg2_wsl : ?jobs:int -> quick:bool -> unit -> report
(** Theorem 10 / Figure 3: Algorithm 2 runs are write strongly-
    linearizable, witnessed on-line by Algorithm 3. *)

val e4_fig4_counterexample : ?jobs:int -> quick:bool -> unit -> report
(** Theorem 13 / Figure 4: no WSL function for Algorithm 4. *)

val e5_alg4_linearizable : ?jobs:int -> quick:bool -> unit -> report
(** Theorem 12: Algorithm 4 runs are linearizable. *)

val e6_abd :
  ?jobs:int -> ?faults:Core.Faults.plan -> quick:bool -> unit -> report
(** Theorem 14 / §6: ABD is linearizable and write strongly-linearizable,
    under crashes — and, with [faults], under a lossy/duplicating/delaying
    link plan too ({!Core.Faults}). *)

val e7_cor9 : ?jobs:int -> quick:bool -> unit -> report
(** Corollary 9: the gate blocks or opens with the register mode. *)

val e8_cost : ?jobs:int -> quick:bool -> unit -> report
(** §5 "harder than": per-operation step cost of Algorithm 2 (vector
    timestamps) vs Algorithm 4 (Lamport clocks), growing with n. *)

val e9_ablation : ?jobs:int -> quick:bool -> unit -> report
(** Ablation (DESIGN.md §5): only [R1]'s mode matters — swapping the modes
    of [R2]/[C] changes nothing, pinning Theorem 7's mechanism on the
    on-line ordering of [R1]'s writes. *)

val e10_mwabd :
  ?jobs:int -> ?faults:Core.Faults.plan -> quick:bool -> unit -> report
(** Extension: multi-writer ABD is linearizable but not write
    strongly-linearizable — Figure 4 transposed to message passing.
    [faults] as in {!e6_abd}, except its [crash_at] schedule is ignored:
    E10's 3-node topology makes every node a client, so there is nothing
    crashable ([rlin experiments --crash] therefore only affects E6). *)

val e11_faults : ?jobs:int -> quick:bool -> unit -> report
(** Robustness sweep: drop/duplication rates × scheduled minority crashes
    over both ABD registers.  Passes iff every run terminates (no watchdog
    stall, no exhausted budget), every completed history is linearizable,
    and the retransmission cost grows with the drop rate. *)

val e12_chaos : ?jobs:int -> quick:bool -> unit -> report
(** Chaos self-test ({!Core.Chaos}): a clean sweep of randomly sampled
    (workload × fault plan × crash schedule × policy) configs must report
    zero monitor violations, while the same search with the seeded
    quorum-intersection bug ({!Core.Chaos.Quorum_too_small}) must catch
    every run, shrink each to a minimal reproducer ([<= 1] crash, zero
    link-fault probabilities, one write), and replay the corpus entries
    verbatim — with byte-identical reports at any [jobs]. *)

val e15_fleet : ?jobs:int -> quick:bool -> unit -> report
(** Fleet scale ({!Core.Fleet}): sharded ABD groups serve one-op client
    sessions (1M+ at the full profile) through a fixed recycled slot
    pool under link faults and a crash/recovery pair.  Passes iff the
    batched and unbatched runs both complete with zero streaming-checker
    failures, batching strictly reduces delivery attempts per op, the
    session count equals the op count (every op is its own client), and
    reports are byte-identical across [-j]. *)

val ids : string list
(** The battery's experiment ids, in order: ["E1"; …; "E15"].  (E13, the
    streaming-serve agreement test, E14, the crash–recovery sweep +
    seeded unsafe-recovery bug hunt, and E15, the fleet-scale engine,
    run from the catalogue only.) *)

val all :
  ?jobs:int ->
  ?only:string list ->
  ?faults:Core.Faults.plan ->
  quick:bool ->
  unit ->
  report list
(** Run the battery (or, with [only], the named subset — ids are
    case-insensitive and always run in battery order).  [faults] applies
    the given link-fault plan to the fault-aware experiments (E6, E10);
    E11 and E12 always run their own sweeps.
    @raise Invalid_argument on an unknown id in [only]. *)

val run_all :
  ?jobs:int ->
  ?only:string list ->
  ?faults:Core.Faults.plan ->
  quick:bool ->
  Format.formatter ->
  unit
