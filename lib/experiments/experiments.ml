type report = {
  id : string;
  claim : string;
  expected : string;
  measured : string;
  pass : bool;
  metrics : (string * float) list;
}

(* Run an experiment body under a span, bracketing it with global-registry
   snapshots: the report's metrics are the experiment's own headline
   numbers ([extra]) plus everything the instrumented stack recorded while
   the body ran (scheduler steps, coins, checker states, op latencies…).
   The battery is sequential, so the delta isolates one experiment. *)
let measured_report ~id ~claim ~expected body =
  let before = Obs.Metrics.snapshot Obs.Metrics.global in
  let t0 = Obs.Span.now_ms () in
  let measured, pass, extra =
    Obs.Span.with_span (String.lowercase_ascii id) body
  in
  let wall_ms = Obs.Span.now_ms () -. t0 in
  let after = Obs.Metrics.snapshot Obs.Metrics.global in
  let metrics =
    (("wall_ms", wall_ms) :: extra) @ Obs.Metrics.delta ~before ~after
  in
  { id; claim; expected; measured; pass; metrics }

let pp_report fmt r =
  let headline =
    match r.metrics with
    | [] -> ""
    | ms ->
        let shown = List.filteri (fun i _ -> i < 6) ms in
        Format.asprintf "@,metrics:  %s%s"
          (String.concat ", "
             (List.map (fun (k, v) -> Printf.sprintf "%s=%g" k v) shown))
          (if List.length ms > List.length shown then
             Printf.sprintf " (+%d more)" (List.length ms - List.length shown)
           else "")
  in
  Format.fprintf fmt
    "@[<v>--- %s %s@,claim:    %s@,expected: %s@,measured: %s%s@,@]" r.id
    (if r.pass then "[PASS]" else "[FAIL]")
    r.claim r.expected r.measured headline

let report_json r =
  Obs.Export.report_json ~id:r.id ~claim:r.claim ~expected:r.expected
    ~measured:r.measured ~pass:r.pass ~metrics:r.metrics

let export_jsonl reports oc =
  Obs.Export.write_lines oc (List.map report_json reports)

(* ---------- E1 ------------------------------------------------------------- *)

let pool_metrics = Obs.Metrics.global

let e1_nontermination ?(jobs = 1) ~quick () =
  let budgets = if quick then [ 1; 4; 16 ] else [ 1; 2; 4; 8; 16; 32; 64 ] in
  let runs = if quick then 5 else 20 in
  measured_report ~id:"E1"
    ~claim:
      "Thm 6 (Figs 1-2): with merely-linearizable registers a strong \
       adversary prevents termination of Algorithm 1"
    ~expected:"survival 100% at every round budget, for every coin sequence"
    (fun () ->
      let s =
        Core.Game_stats.e1_survival ~jobs ~n:5 ~budgets ~runs ~seed:101L ()
      in
      let measured =
        String.concat ", "
          (List.map2
             (fun b f -> Printf.sprintf "budget %d: %.0f%% alive" b (100. *. f))
             s.Core.Game_stats.budgets s.Core.Game_stats.alive_fraction)
      in
      let pass = List.for_all (fun f -> f = 1.0) s.Core.Game_stats.alive_fraction in
      ( measured,
        pass,
        [
          ("runs", float_of_int (runs * List.length budgets));
          ("max_budget", float_of_int (List.fold_left max 0 budgets));
          ( "min_alive_fraction",
            List.fold_left min 1.0 s.Core.Game_stats.alive_fraction );
        ] ))

(* ---------- E2 ------------------------------------------------------------- *)

let e2_wsl_termination ?(jobs = 1) ~quick () =
  let runs = if quick then 60 else 400 in
  measured_report ~id:"E2"
    ~claim:
      "Thm 7: with write strongly-linearizable registers the same adversary \
       cannot prevent termination"
    ~expected:"all runs terminate; P(round > j) tracks 2^-j (Lemma 19)"
    (fun () ->
      let t =
        Core.Game_stats.e2_termination ~jobs ~n:5 ~max_rounds:60 ~runs
          ~seed:211L ()
      in
      let all_terminated = t.Core.Game_stats.max < 60 in
      (* geometric shape: P(round > j) should track 2^-j; allow slack *)
      let shape_ok =
        List.for_all
          (fun (j, p) ->
            let expected = 2. ** float_of_int (-j) in
            p <= (expected *. 2.0) +. 0.08)
          t.Core.Game_stats.tail
      in
      let tail_s =
        String.concat ", "
          (List.filter_map
             (fun (j, p) ->
               if j <= 4 then Some (Printf.sprintf "P(>%d)=%.3f" j p) else None)
             t.Core.Game_stats.tail)
      in
      ( Printf.sprintf "%d runs, mean round %.2f, max %d; %s"
          t.Core.Game_stats.runs t.Core.Game_stats.mean t.Core.Game_stats.max
          tail_s,
        all_terminated && shape_ok,
        [
          ("runs", float_of_int runs);
          ("mean_round", t.Core.Game_stats.mean);
          ("max_round", float_of_int t.Core.Game_stats.max);
        ] ))

(* ---------- E3 ------------------------------------------------------------- *)

let e3_alg2_wsl ?(jobs = 1) ~quick () =
  let runs = if quick then 25 else 150 in
  measured_report ~id:"E3"
    ~claim:
      "Thm 10 (Fig 3): Algorithm 2 is write strongly-linearizable; \
       Algorithm 3 linearizes writes on-line from partial vector timestamps"
    ~expected:
      "100% of random runs pass (L) + (P); Fig-3 order w3 < w2 committed at \
       w2's completion, w1 appended later"
    (fun () ->
      let oks =
        Core.Pool.map_runs ~jobs ~metrics:pool_metrics runs (fun ~metrics i ->
            let seed = i + 1 in
            let n = 2 + (seed mod 3) in
            let run =
              Core.Scenario.random_alg2_run ~metrics ~n ~writes_per_proc:2
                ~reads_per_proc:2
                ~seed:(Int64.of_int (seed * 31))
                ()
            in
            match Core.Scenario.check_alg2_run ~metrics run with
            | Ok () -> 1
            | Error _ -> 0)
      in
      let ok = ref (Array.fold_left ( + ) 0 oks) in
      let f3 = Core.Scenario.fig3 () in
      let fig3_ok =
        f3.Core.Scenario.ws_at_t = [ f3.Core.Scenario.w3; f3.Core.Scenario.w2 ]
        && f3.Core.Scenario.final_ws
           = [ f3.Core.Scenario.w3; f3.Core.Scenario.w2; f3.Core.Scenario.w1 ]
      in
      ( Printf.sprintf "%d/%d runs pass; Fig-3 order reproduced: %b" !ok runs
          fig3_ok,
        !ok = runs && fig3_ok,
        [
          ("runs", float_of_int runs);
          ("runs_ok", float_of_int !ok);
          ("fig3_ok", if fig3_ok then 1. else 0.);
        ] ))

(* ---------- E4 ------------------------------------------------------------- *)

let e4_fig4_counterexample ?jobs:_ ~quick:_ () =
  measured_report ~id:"E4"
    ~claim:
      "Thm 13 (Fig 4): Algorithm 4 (Lamport clocks) is NOT write \
       strongly-linearizable"
    ~expected:
      "history tree {G -> H1, H2} admits no write strong-linearization; \
       each history alone is linearizable and each single chain admits one"
    (fun () ->
      let f4 = Core.Scenario.fig4 () in
      ( Printf.sprintf "tree impossible: %b; chains ok: %b; all linearizable: %b"
          f4.Core.Scenario.wsl_impossible f4.Core.Scenario.chains_ok
          f4.Core.Scenario.all_linearizable,
        f4.Core.Scenario.wsl_impossible && f4.Core.Scenario.chains_ok
        && f4.Core.Scenario.all_linearizable,
        [
          ("histories", 3.);
          ("wsl_impossible", if f4.Core.Scenario.wsl_impossible then 1. else 0.);
          ("chains_ok", if f4.Core.Scenario.chains_ok then 1. else 0.);
        ] ))

(* ---------- E5 ------------------------------------------------------------- *)

let e5_alg4_linearizable ?(jobs = 1) ~quick () =
  let runs = if quick then 25 else 150 in
  measured_report ~id:"E5"
    ~claim:"Thm 12: Algorithm 4 is a linearizable MWMR register"
    ~expected:"100% of random runs linearizable"
    (fun () ->
      let oks =
        Core.Pool.map_runs ~jobs ~metrics:pool_metrics runs (fun ~metrics i ->
            let seed = i + 1 in
            let n = 2 + (seed mod 3) in
            let run =
              Core.Scenario.random_alg4_run ~metrics ~n ~writes_per_proc:2
                ~reads_per_proc:2
                ~seed:(Int64.of_int (seed * 37))
                ()
            in
            match Core.Scenario.check_alg4_run ~metrics run with
            | Ok () -> 1
            | Error _ -> 0)
      in
      let ok = ref (Array.fold_left ( + ) 0 oks) in
      ( Printf.sprintf "%d/%d runs linearizable" !ok runs,
        !ok = runs,
        [ ("runs", float_of_int runs); ("runs_ok", float_of_int !ok) ] ))

(* ---------- E6 ------------------------------------------------------------- *)

let e6_abd ?(jobs = 1) ?(faults = Core.Faults.none) ~quick () =
  let runs = if quick then 10 else 60 in
  measured_report ~id:"E6"
    ~claim:
      "Thm 14 / §6: ABD (and every linearizable SWMR implementation) is \
       write strongly-linearizable"
    ~expected:
      "100% of runs (incl. minority crashes) linearizable with monotone f* \
       write orders on every prefix"
    (fun () ->
      let oks =
        Core.Pool.map_runs ~jobs ~metrics:pool_metrics runs (fun ~metrics i ->
            let seed = i + 1 in
            let crash = if seed mod 2 = 0 then [ 3; 4 ] else [] in
            let w =
              {
                Core.Abd_runs.default with
                seed = Int64.of_int (seed * 41);
                crash;
                faults;
              }
            in
            match Core.Abd_runs.check ~metrics (Core.Abd_runs.execute ~metrics w) with
            | Ok () -> 1
            | Error _ -> 0)
      in
      let ok = ref (Array.fold_left ( + ) 0 oks) in
      ( Printf.sprintf "%d/%d runs pass (half with 2/5 nodes crashed)" !ok runs,
        !ok = runs,
        [ ("runs", float_of_int runs); ("runs_ok", float_of_int !ok) ] ))

(* ---------- E7 ------------------------------------------------------------- *)

let e7_cor9 ?(jobs = 1) ~quick () =
  let live_runs = if quick then 5 else 30 in
  measured_report ~id:"E7"
    ~claim:
      "Cor 9: A' = (Algorithm 1 gate; consensus) terminates iff the gate \
       registers are write strongly-linearizable"
    ~expected:
      "linearizable gate: 0 processes ever start consensus; WSL gate: all \
       decide with agreement+validity"
    (fun () ->
      let blocked =
        Core.Cor9.run_blocked
          {
            n = 5;
            gate_rounds = (if quick then 10 else 30);
            consensus_max_rounds = 200;
            seed = 31L;
          }
      in
      let lives =
        Core.Pool.map_runs ~jobs ~metrics:pool_metrics live_runs
          (fun ~metrics i ->
            let seed = i + 1 in
            let o =
              Core.Cor9.run_live ~metrics
                {
                  n = 5;
                  gate_rounds = 60;
                  consensus_max_rounds = 400;
                  seed = Int64.of_int (seed * 43);
                }
                ~inputs:(fun pid -> pid mod 2)
            in
            let all_decided =
              List.for_all
                (fun (_, d) -> d <> None)
                o.Core.Cor9.consensus.Core.Rand_consensus.decisions
            in
            let ok =
              all_decided
              && o.Core.Cor9.consensus.Core.Rand_consensus.agreed
              && o.Core.Cor9.consensus.Core.Rand_consensus.valid
              && o.Core.Cor9.game.Core.Game_alg1.terminated
            in
            (ok, o.Core.Cor9.game.Core.Game_alg1.max_round))
      in
      let live_ok =
        ref (Array.fold_left (fun a (ok, _) -> if ok then a + 1 else a) 0 lives)
      in
      let gate_rounds_sum =
        ref (Array.fold_left (fun a (_, r) -> a + r) 0 lives)
      in
      let mean_gate =
        float_of_int !gate_rounds_sum /. float_of_int live_runs
      in
      ( Printf.sprintf
          "blocked run: blocked=%b; live runs: %d/%d fully decided (mean gate \
           rounds %.1f)"
          blocked.Core.Cor9.blocked !live_ok live_runs mean_gate,
        blocked.Core.Cor9.blocked && !live_ok = live_runs,
        [
          ("live_runs", float_of_int live_runs);
          ("live_ok", float_of_int !live_ok);
          ("mean_gate_rounds", mean_gate);
        ] ))

(* ---------- E8 ------------------------------------------------------------- *)

(* Scheduler steps consumed per operation: Algorithm 2 pays n base-register
   reads plus bookkeeping per write (vector timestamp), Algorithm 4 the
   same asymptotically but with cheaper timestamps; the atomic baseline
   pays O(1).  We measure simulated steps (deterministic); bench/main.exe
   adds wall-clock. *)
let steps_per_op ~make ~write ~read ~n ~ops =
  let sched = Core.Sched.create ~seed:77L () in
  let r = make sched in
  let done_ = ref false in
  Core.Sched.spawn sched ~pid:1 (fun () ->
      for k = 1 to ops do
        write r 1 k;
        ignore (read r 1)
      done;
      done_ := true);
  let steps = ref 0 in
  while not !done_ && !steps < ops * (n + 6) * 4 do
    incr steps;
    ignore (Core.Sched.step sched ~pid:1)
  done;
  ignore n;
  float_of_int !steps /. float_of_int (2 * ops)

let e8_cost ?jobs:_ ~quick () =
  let ops = if quick then 10 else 50 in
  let ns = if quick then [ 2; 8 ] else [ 2; 4; 8; 16; 32 ] in
  measured_report ~id:"E8"
    ~claim:
      "§5: achieving write strong-linearizability costs more than plain \
       linearizability (vector vs Lamport timestamps)"
    ~expected:"steps/op: Alg2 >= Alg4, both growing linearly with n"
    (fun () ->
      let rows =
        List.map
          (fun n ->
            let alg2 =
              steps_per_op ~n ~ops
                ~make:(fun sched -> Core.wsl_mwmr sched ~name:"R" ~n ~init:0)
                ~write:(fun r p v -> Core.Wsl_register.write r ~proc:p v)
                ~read:(fun r p -> ignore (Core.Wsl_register.read r ~proc:p))
            in
            let alg4 =
              steps_per_op ~n ~ops
                ~make:(fun sched -> Core.lamport_mwmr sched ~name:"R" ~n ~init:0)
                ~write:(fun r p v -> Core.Lamport_register.write r ~proc:p v)
                ~read:(fun r p -> ignore (Core.Lamport_register.read r ~proc:p))
            in
            (n, alg2, alg4))
          ns
      in
      let monotone = List.for_all (fun (_, a2, a4) -> a2 >= a4 -. 0.01) rows in
      let grows =
        match (List.hd rows, List.nth rows (List.length rows - 1)) with
        | (_, a2_small, _), (_, a2_big, _) -> a2_big > a2_small
      in
      ( String.concat "; "
          (List.map
             (fun (n, a2, a4) ->
               Printf.sprintf "n=%d: alg2 %.1f, alg4 %.1f steps/op" n a2 a4)
             rows),
        monotone && grows,
        ("ops_per_config", float_of_int (2 * ops))
        :: List.concat_map
             (fun (n, a2, a4) ->
               [
                 (Printf.sprintf "alg2.steps_per_op.n%d" n, a2);
                 (Printf.sprintf "alg4.steps_per_op.n%d" n, a4);
               ])
             rows ))

(* ---------- E9 (ablation) ---------------------------------------------------- *)

let e9_ablation ?(jobs = 1) ~quick () =
  (* Theorem 7's mechanism lives entirely in R1: give the adversary back
     R1's reordering power while making R2 and C write strongly-
     linearizable, and it still wins; conversely R1-WSL with merely
     linearizable R2/C already forces termination. *)
  let budget = if quick then 8 else 24 in
  let runs = if quick then 40 else 200 in
  measured_report ~id:"E9"
    ~claim:
      "ablation: Theorem 7's mechanism is R1's write order alone — the        modes of R2 and C are irrelevant to the game's fate"
    ~expected:
      "R1 linearizable + R2/C WSL: adversary still prevents termination;        R1 WSL + R2/C linearizable: every run terminates"
    (fun () ->
      let a =
        Core.Adversary.run_linearizable_r1_only ~n:5 ~rounds:budget ~seed:61L ()
      in
      let adversary_still_wins = not a.Core.Game_alg1.terminated in
      let terms =
        Core.Pool.map_runs ~jobs ~metrics:pool_metrics runs (fun ~metrics i ->
            let r = i + 1 in
            let res =
              Core.Adversary.run_write_strong
                ~aux_mode:(Some Core.Adv_register.Linearizable) ~metrics ~n:5
                ~max_rounds:60
                ~seed:(Int64.of_int ((r * 9973) + 5))
                ()
            in
            res.Core.Game_alg1.terminated)
      in
      let all_terminate = ref (Array.for_all (fun t -> t) terms) in
      ( Printf.sprintf
          "R1-only-linearizable: alive after %d rounds = %b; R1-only-WSL:          %d/%d runs terminated"
          budget adversary_still_wins runs
          (if !all_terminate then runs else 0),
        adversary_still_wins && !all_terminate,
        [
          ("budget", float_of_int budget);
          ("runs", float_of_int runs);
          ("terminated_runs", if !all_terminate then float_of_int runs else 0.);
        ] ))

(* ---------- E10 (extension) --------------------------------------------------- *)

let e10_mwabd ?(jobs = 1) ?(faults = Core.Faults.none) ~quick () =
  (* E10's 3-node topology makes every node a client (writers 0, 1 and
     reader 2), so a crash schedule cannot apply here: keep the link
     faults, drop the crashes (they stay in force for E6's 5-node runs) *)
  let faults = { faults with Core.Faults.crash_at = [] } in
  (* §5's lesson transposed to message passing: the multi-writer ABD
     register uses Lamport timestamps like Algorithm 4, is linearizable,
     and is NOT write strongly-linearizable — shown by the same two-
     extension construction as Figure 4, realized with message-delivery
     choices.  Theorem 14's SWMR result is therefore about the single-
     writer structure, not the communication medium. *)
  let runs = if quick then 8 else 40 in
  measured_report ~id:"E10"
    ~claim:
      "extension of §5/Thm 13: multi-writer ABD (Lamport timestamps over        majorities) is linearizable but not write strongly-linearizable"
    ~expected:
      "random runs 100% linearizable; the two-delivery-order history tree        admits no write strong-linearization"
    (fun () ->
      let lins =
        Core.Pool.map_runs ~jobs ~metrics:pool_metrics runs (fun ~metrics i ->
            let seed = i + 1 in
            let run =
              Core.Abd_runs.execute_mw ~metrics ~faults ~n:3 ~writers:[ 0; 1 ]
                ~writes_each:2 ~readers:[ 2 ] ~reads_each:3
                ~seed:(Int64.of_int (seed * 53))
                ()
            in
            if
              run.Core.Abd_runs.completed
              && Core.Lincheck.check ~metrics ~init:(Core.Value.Int 0)
                   run.Core.Abd_runs.history
            then 1
            else 0)
      in
      let lin_ok = ref (Array.fold_left ( + ) 0 lins) in
      let sc = Core.Mwabd_scenario.run () in
      ( Printf.sprintf
          "%d/%d runs linearizable; tree impossible: %b (chains ok: %b, all          linearizable: %b)"
          !lin_ok runs sc.Core.Mwabd_scenario.wsl_impossible
          sc.Core.Mwabd_scenario.chains_ok
          sc.Core.Mwabd_scenario.all_linearizable,
        !lin_ok = runs
        && sc.Core.Mwabd_scenario.wsl_impossible
        && sc.Core.Mwabd_scenario.chains_ok
        && sc.Core.Mwabd_scenario.all_linearizable,
        [
          ("runs", float_of_int runs);
          ("runs_linearizable", float_of_int !lin_ok);
          ( "wsl_impossible",
            if sc.Core.Mwabd_scenario.wsl_impossible then 1. else 0. );
        ] ))

(* ---------- E11 (fault injection) --------------------------------------------- *)

let e11_faults ?(jobs = 1) ~quick () =
  (* Sweep (drop, duplicate, scheduled crashes) over both registers.  Each
     run gets a deterministic fault plan (drawn from its own RNG stream,
     see Simkit.Faults), so the whole sweep is reproducible and identical
     whatever [jobs] is. *)
  let configs =
    if quick then [ (0.0, 0.0, 0); (0.1, 0.05, 1); (0.2, 0.05, 2) ]
    else
      [
        (0.0, 0.0, 0);
        (0.05, 0.0, 0);
        (0.1, 0.05, 1);
        (0.15, 0.1, 1);
        (0.2, 0.05, 2);
      ]
  in
  let runs = if quick then 6 else 25 in
  measured_report ~id:"E11"
    ~claim:
      "robustness: retransmitting ABD/MW-ABD terminate and stay \
       linearizable under lossy links, duplication and minority crash \
       schedules"
    ~expected:
      "at drop <= 0.2 with <= 2/5 replicas crashed: 100% of runs terminate \
       before the watchdog budget and 100% of completed histories are \
       linearizable; retransmission cost grows with the drop rate"
    (fun () ->
      let per_config =
        List.map
          (fun (drop, dup, crashes) ->
            let plan =
              {
                Core.Faults.none with
                Core.Faults.drop;
                duplicate = dup;
                delay = 0.05;
                delay_bound = 4;
                (* crash replicas 3, 4 (never clients) on the step clock *)
                crash_at = List.init crashes (fun c -> (150 * (c + 1), 3 + c));
              }
            in
            (* one task per run: first [runs] ABD, then [runs] MW-ABD;
               retransmission counts come from each task's private registry *)
            let results =
              Core.Pool.map_runs ~jobs ~metrics:pool_metrics (2 * runs)
                (fun ~metrics i ->
                  if i < runs then begin
                    let w =
                      {
                        Core.Abd_runs.default with
                        seed = Int64.of_int (((i + 1) * 59) + crashes);
                        faults = plan;
                      }
                    in
                    let run = Core.Abd_runs.execute ~metrics w in
                    let lin =
                      run.Core.Abd_runs.completed
                      && Core.Lincheck.check ~metrics ~init:(Core.Value.Int 0)
                           run.Core.Abd_runs.history
                    in
                    ( run.Core.Abd_runs.completed,
                      lin,
                      run.Core.Abd_runs.stalled <> None,
                      Obs.Metrics.counter metrics "reg.abd.retransmits" )
                  end
                  else begin
                    let k = i - runs in
                    let run =
                      Core.Abd_runs.execute_mw ~metrics ~faults:plan ~n:5
                        ~writers:[ 0; 1 ] ~writes_each:2 ~readers:[ 2 ]
                        ~reads_each:2
                        ~seed:(Int64.of_int (((k + 1) * 67) + crashes))
                        ()
                    in
                    let lin =
                      run.Core.Abd_runs.completed
                      && Core.Lincheck.check ~metrics ~init:(Core.Value.Int 0)
                           run.Core.Abd_runs.history
                    in
                    ( run.Core.Abd_runs.completed,
                      lin,
                      run.Core.Abd_runs.stalled <> None,
                      Obs.Metrics.counter metrics "reg.mwabd.retransmits" )
                  end)
            in
            let total = Array.length results in
            let fold f init = Array.fold_left f init results in
            let terminated =
              fold (fun a (c, _, _, _) -> if c then a + 1 else a) 0
            in
            let lin_ok = fold (fun a (_, l, _, _) -> if l then a + 1 else a) 0 in
            let stalls =
              fold (fun a (_, _, s, _) -> if s then a + 1 else a) 0
            in
            let retx = fold (fun a (_, _, _, r) -> a + r) 0 in
            (drop, dup, crashes, total, terminated, lin_ok, stalls, retx))
          configs
      in
      let all_ok =
        List.for_all
          (fun (_, _, _, total, terminated, lin_ok, stalls, _) ->
            terminated = total && lin_ok = total && stalls = 0)
          per_config
      in
      (* retransmission cost must grow with the drop rate (benign -> max) *)
      let retx_of (_, _, _, _, _, _, _, r) = r in
      let cost_grows =
        match per_config with
        | [] | [ _ ] -> true
        | first :: rest ->
            retx_of (List.nth rest (List.length rest - 1)) > retx_of first
      in
      let measured =
        String.concat "; "
          (List.map
             (fun (drop, dup, crashes, total, terminated, lin_ok, stalls, retx) ->
               Printf.sprintf
                 "drop=%.2f dup=%.2f crashes=%d: %d/%d done, %d/%d lin, %d \
                  stalls, retx=%d"
                 drop dup crashes terminated total lin_ok total stalls retx)
             per_config)
      in
      ( measured,
        all_ok && cost_grows,
        ("configs", float_of_int (List.length configs))
        :: ("runs_per_config", float_of_int (2 * runs))
        :: ("cost_grows", if cost_grows then 1. else 0.)
        :: List.concat_map
             (fun (drop, dup, crashes, total, terminated, _, _, retx) ->
               let tag =
                 Printf.sprintf "drop%02.0f.dup%02.0f.crash%d" (100. *. drop)
                   (100. *. dup) crashes
               in
               [
                 ( "term_rate." ^ tag,
                   float_of_int terminated /. float_of_int total );
                 ("retransmits." ^ tag, float_of_int retx);
               ])
             per_config ))

(* ---------- E12 (chaos self-test) ---------------------------------------------- *)

let e12_chaos ?(jobs = 1) ~quick () =
  (* Two sweeps from one seed: the production registers must survive the
     whole chaos budget with zero violations, and the same search pointed
     at a seeded quorum bug (each round waits for majority-1 replies, so
     quorums need not intersect) must catch it, shrink it to a minimal
     reproducer, and replay that reproducer verbatim — all byte-identical
     whatever [jobs] is. *)
  let seed = 12L in
  let clean_budget = if quick then 30 else 120 in
  let bug_budget = if quick then 4 else 10 in
  measured_report ~id:"E12"
    ~claim:
      "chaos loop: random (workload x faults x crashes x policy) search \
       with online monitors finds nothing on the real registers, and \
       finds + shrinks + replays a seeded quorum-intersection bug"
    ~expected:
      "0 violations on clean code; every injected-bug run caught by the \
       quorum-sanity monitor, shrunk to <= 1 crash and zero link faults, \
       reproduced verbatim from its corpus entry; reports identical at -j \
       1 and -j 2"
    (fun () ->
      let clean =
        Core.Chaos.search ~jobs ~telemetry:pool_metrics ~seed
          ~budget:clean_budget ()
      in
      let clean_ok = clean.Core.Chaos.findings = [] in
      let buggy =
        Core.Chaos.search ~jobs ~inject:Core.Chaos.Quorum_too_small
          ~telemetry:pool_metrics ~seed ~budget:bug_budget ()
      in
      let found = List.length buggy.Core.Chaos.findings in
      let shrunk_ok =
        found > 0
        && List.for_all
             (fun f ->
               let m = f.Core.Chaos.shrunk.Core.Shrink.config in
               f.Core.Chaos.first.Core.Monitor.monitor = "quorum-sanity"
               && m.Core.Run_config.quorum <> None
               && List.length m.Core.Run_config.faults.Core.Faults.crash_at
                  <= 1
               && m.Core.Run_config.faults.Core.Faults.drop = 0.
               && m.Core.Run_config.writes_each = 1)
             buggy.Core.Chaos.findings
      in
      let entries = Core.Chaos.to_entries buggy in
      let replay_ok =
        entries <> []
        && List.for_all
             (fun e -> Core.Corpus.replay e = Core.Corpus.Reproduced)
             entries
      in
      (* cross-run determinism: the full report (including every shrink
         trajectory) must not depend on the degree of parallelism *)
      let again =
        Core.Chaos.search ~jobs:(if jobs = 1 then 2 else 1)
          ~inject:Core.Chaos.Quorum_too_small ~seed ~budget:bug_budget ()
      in
      let deterministic =
        Core.Json.to_string (Core.Chaos.report_json buggy)
        = Core.Json.to_string (Core.Chaos.report_json again)
      in
      let shrink_attempts =
        List.fold_left
          (fun a f -> a + f.Core.Chaos.shrunk.Core.Shrink.attempts)
          0 buggy.Core.Chaos.findings
      in
      ( Printf.sprintf
          "clean: %d/%d runs violation-free; bug: %d/%d caught, shrunk in \
           %d executions, %d/%d reproducers replay verbatim; deterministic \
           across jobs: %b"
          (clean_budget - List.length clean.Core.Chaos.findings)
          clean_budget found bug_budget shrink_attempts
          (List.length
             (List.filter
                (fun e -> Core.Corpus.replay e = Core.Corpus.Reproduced)
                entries))
          (List.length entries) deterministic,
        clean_ok && found = bug_budget && shrunk_ok && replay_ok
        && deterministic,
        [
          ("clean_runs", float_of_int clean_budget);
          ( "clean_violations",
            float_of_int (List.length clean.Core.Chaos.findings) );
          ("bug_runs", float_of_int bug_budget);
          ("bug_found", float_of_int found);
          ("shrink_attempts", float_of_int shrink_attempts);
          ("deterministic", if deterministic then 1. else 0.);
        ] ))

(* ---------- E13 (streaming serve checker) -------------------------------------- *)

let e13_serve ?(jobs = 1) ~quick () =
  ignore jobs;
  (* a multiple of 3 so the alg2/alg4/faulty-ABD rotation stays balanced *)
  let runs = if quick then 6 else 24 in
  measured_report ~id:"E13"
    ~claim:
      "the streaming serve checker (incremental segmentation, ingest \
       quarantine, budget degradation) agrees with the offline decision \
       procedure on replayed traces, benign and faulty"
    ~expected:
      "engine verdicts byte-identical to the offline reference oracle on \
       per-run and concatenated multi-segment streams, conjunction equal \
       to Lincheck.check; corrupted streams quarantined with exact counts \
       and unchanged verdicts; tiny budgets degrade to explicit unknown \
       verdicts on every segment"
    (fun () ->
      let serve ?config lines =
        let verdicts = ref [] in
        let engine =
          Core.Serve.Engine.create ?config
            ~emit:(fun v -> verdicts := v :: !verdicts)
            ()
        in
        List.iter (Core.Serve.Engine.feed_line engine) lines;
        Core.Serve.Engine.finish engine;
        (engine, List.rev !verdicts)
      in
      let workload i =
        let seed = Int64.of_int (1300 + i) in
        if i mod 3 = 0 then (
          (* faulty: lossy duplicating links plus a crashed replica, so
             the stream carries stalled (pending-forever) operations *)
          let r =
            Core.Abd_runs.execute
              {
                Core.Abd_runs.default with
                Core.Abd_runs.seed;
                crash = [ 4 ];
                faults =
                  {
                    Core.Faults.none with
                    Core.Faults.drop = 0.05;
                    duplicate = 0.05;
                  };
              }
          in
          (r.Core.Abd_runs.trace, r.Core.Abd_runs.history))
        else if i mod 3 = 1 then (
          let r =
            Core.Scenario.random_alg2_run ~n:3 ~writes_per_proc:2
              ~reads_per_proc:2 ~seed ()
          in
          (r.Core.Scenario.trace, r.Core.Scenario.history))
        else (
          let r =
            Core.Scenario.random_alg4_run ~n:3 ~writes_per_proc:2
              ~reads_per_proc:2 ~seed ()
          in
          (r.Core.Scenario.trace, r.Core.Scenario.history))
      in
      let oracle_agrees ~engine_verdicts ~lines =
        let r = Core.Serve.Reference.run lines in
        let cmp =
          Core.Serve.Reference.compare_verdicts ~engine:engine_verdicts
            ~reference:r.Core.Serve.Reference.verdicts
        in
        Core.Serve.Reference.agreed cmp
        && cmp.Core.Serve.Reference.skipped = 0
      in
      (* A: every run's full trace (annotations included) replayed as a
         stream — engine = reference oracle, and the verdict conjunction
         = the offline checker on the run's history. *)
      let single_ok = ref 0 in
      let total_verdicts = ref 0 in
      let streams = ref [] in
      for i = 1 to runs do
        let trace, hist = workload i in
        let lines =
          List.map Core.Json.to_string (Core.Trace.json_entries trace)
        in
        streams := (lines, hist) :: !streams;
        let engine, verdicts = serve lines in
        total_verdicts := !total_verdicts + List.length verdicts;
        let offline =
          try Core.Lincheck.check ~init:(Core.Value.Int 0) hist
          with Core.Lincheck.Too_large _ -> true
        in
        if
          Core.Serve.Engine.quarantined engine = 0
          && (Core.Serve.Engine.fail engine = 0) = offline
          && oracle_agrees ~engine_verdicts:verdicts ~lines
        then incr single_ok
      done;
      let streams = List.rev !streams in
      (* B: concatenated multi-segment streams — three runs time-shifted
         and id-offset into one stream; engine = oracle, and the verdict
         conjunction = the offline checker on the combined history. *)
      let render_stream histories =
        let lines = ref [] in
        let events = ref [] in
        let toff = ref 0 and idoff = ref 0 in
        List.iter
          (fun hist ->
            let maxt = ref 0 and maxid = ref 0 in
            List.iter
              (fun { Core.Event.time; event } ->
                let time = time + !toff in
                maxt := max !maxt time;
                let remap op_id = op_id + !idoff in
                let ev =
                  match event with
                  | Core.Event.Invoke { op_id; obj; kind; proc = _ } ->
                      let op_id = remap op_id in
                      maxid := max !maxid op_id;
                      (* one process per op: proc is irrelevant to
                         linearizability and this keeps the combined
                         event list well-formed for Hist.of_events *)
                      Core.Serve.Ingest.Invoke
                        { op_id; proc = op_id; obj; kind }
                  | Core.Event.Respond { op_id; result } ->
                      let op_id = remap op_id in
                      maxid := max !maxid op_id;
                      Core.Serve.Ingest.Respond { op_id; result }
                in
                let j = Core.Serve.Ingest.event_json ~time ev in
                lines := Core.Json.to_string j :: !lines;
                let event =
                  match ev with
                  | Core.Serve.Ingest.Invoke { op_id; proc; obj; kind } ->
                      Core.Event.Invoke { op_id; proc; obj; kind }
                  | Core.Serve.Ingest.Respond { op_id; result } ->
                      Core.Event.Respond { op_id; result }
                in
                events := { Core.Event.time; event } :: !events)
              (Core.Hist.events hist);
            toff := !maxt + 1;
            idoff := !maxid + 1)
          histories;
        (List.rev !lines, List.rev !events)
      in
      let groups = runs / 3 in
      let multi_ok = ref 0 in
      for g = 0 to groups - 1 do
        let histories =
          List.filteri (fun i _ -> i / 3 = g) streams |> List.map snd
        in
        let lines, events = render_stream histories in
        let engine, verdicts = serve lines in
        let combined = Core.Hist.of_events_exn events in
        let offline =
          Core.Lincheck.check_multi
            ~init_of:(fun _ -> Core.Value.Int 0)
            combined
        in
        if
          Core.Serve.Engine.quarantined engine = 0
          && (Core.Serve.Engine.fail engine = 0) = offline
          && oracle_agrees ~engine_verdicts:verdicts ~lines
        then incr multi_ok
      done;
      (* C: mutate a stream — leading garbage, a replayed (stale) invoke
         line, a truncated tail — and demand exactly three quarantined
         lines and byte-identical verdicts. *)
      let clean_lines, _ = List.nth streams 0 in
      let _, clean_verdicts = serve clean_lines in
      let stale =
        List.find
          (fun l ->
            match Core.Json.of_string l with
            | Ok j -> Core.Json.member "kind" j = Some (Core.Json.Str "invoke")
            | Error _ -> false)
          clean_lines
      in
      let corrupted =
        ("%% not json %%" :: clean_lines) @ [ stale; "{\"t\":9,\"ki" ]
      in
      let cengine, cverdicts = serve corrupted in
      let corrupt_ok =
        Core.Serve.Engine.quarantined cengine = 3
        && List.length cverdicts = List.length clean_verdicts
        && List.for_all2 Core.Serve.Verdict.equal cverdicts clean_verdicts
      in
      (* D: degradation — a 4-state budget and a 4-op cap must turn every
         nontrivial segment into an explicit structured unknown, never a
         crash or a silent pass. *)
      let degraded_config seg =
        { Core.Serve.Engine.default_config with Core.Serve.Engine.seg }
      in
      let count_unknown pred verdicts =
        List.length
          (List.filter
             (fun v ->
               match v.Core.Serve.Verdict.outcome with
               | Core.Serve.Verdict.Unknown r -> pred r
               | _ -> false)
             verdicts)
      in
      let _, sb_verdicts =
        serve
          ~config:
            (degraded_config
               {
                 Core.Serve.Segmenter.default_config with
                 Core.Serve.Segmenter.state_budget = 4;
               })
          clean_lines
      in
      let _, oc_verdicts =
        serve
          ~config:
            (degraded_config
               {
                 Core.Serve.Segmenter.default_config with
                 Core.Serve.Segmenter.seg_cap = 4;
               })
          clean_lines
      in
      let state_unknowns =
        count_unknown
          (function Core.Increment.State_budget _ -> true | _ -> false)
          sb_verdicts
      in
      let cap_unknowns =
        count_unknown
          (function Core.Increment.Op_cap _ -> true | _ -> false)
          oc_verdicts
      in
      let degrade_ok =
        state_unknowns > 0 && cap_unknowns > 0
        && List.length sb_verdicts = List.length clean_verdicts
        && List.length oc_verdicts = List.length clean_verdicts
      in
      ( Printf.sprintf
          "single: %d/%d streams agree (engine = oracle = offline, %d \
           verdicts); multi-segment: %d/%d; corruption: %s (3 quarantined, \
           verdicts unchanged); degradation: %d state-budget + %d op-cap \
           unknowns"
          !single_ok runs !total_verdicts !multi_ok groups
          (if corrupt_ok then "ok" else "FAILED")
          state_unknowns cap_unknowns,
        !single_ok = runs && !multi_ok = groups && corrupt_ok && degrade_ok,
        [
          ("streams", float_of_int runs);
          ("verdicts", float_of_int !total_verdicts);
          ("multi_segment_groups", float_of_int groups);
          ("state_budget_unknowns", float_of_int state_unknowns);
          ("op_cap_unknowns", float_of_int cap_unknowns);
        ] ))

(* ---------- E14 (crash-recovery) ----------------------------------------------- *)

let e14_recovery ?(jobs = 1) ~quick () =
  (* Two parts from one experiment, mirroring E12's clean/bug split.
     Part 1 sweeps (recovery delay x persist policy x link-fault mix)
     over both registers with a fixed two-crash schedule, every crash
     paired with a recovery: safe recoveries (state-transfer handshake)
     must never cost termination or linearizability.  Part 2 points the
     chaos search at the seeded unsafe-recovery bug (nothing durable +
     no handshake) and demands the catch -> shrink -> replay loop. *)
  let delays = if quick then [ 50; 900 ] else [ 50; 300; 900 ] in
  let persists = [ `Every; `Never ] in
  let mixes = [ (0.0, 0.0); (0.1, 0.05) ] in
  let runs = if quick then 3 else 8 in
  measured_report ~id:"E14"
    ~claim:
      "crash-recovery: with durable replica state and the state-transfer \
       recovery handshake, ABD/MW-ABD terminate and stay linearizable \
       across node crashes and restarts; skipping the handshake with \
       nothing durable is a real bug the chaos loop catches, shrinks and \
       replays"
    ~expected:
      "100% termination and linearizability (and zero amnesia) at every \
       (recovery delay x persist policy x fault mix x register) point; \
       the seeded unsafe-recovery search finds violations, every finding \
       keeps the bug (unsafe recovery, nothing durable) and at least one \
       shrinks to a single crash+recover pair with zero link-fault \
       probabilities, corpus entries replay verbatim; reports identical \
       across -j"
    (fun () ->
      (* -- part 1: the safe-recovery lattice -- *)
      let points =
        List.concat_map
          (fun delay ->
            List.concat_map
              (fun persist ->
                List.map (fun mix -> (delay, persist, mix)) mixes)
              persists)
          delays
      in
      let config_of ~proto ~delay ~persist ~drop ~dup ~seed =
        let faults =
          {
            Core.Faults.none with
            Core.Faults.drop;
            duplicate = dup;
            delay = 0.05;
            delay_bound = 4;
            (* replicas 3 and 4 (never clients) crash on the step clock
               and restart [delay] steps later.  Crash early: runs of
               this size finish within a couple hundred steps, and only
               the shortest delay is required to land every restart *)
            crash_at = [ (60, 3); (120, 4) ];
            recover_at = [ (60 + delay, 3); (120 + delay, 4) ];
          }
        in
        match proto with
        | `Sw -> { Core.Run_config.default with Core.Run_config.faults; seed; persist }
        | `Mw ->
            {
              Core.Run_config.default with
              Core.Run_config.proto = Core.Run_config.Mw;
              writers = [ 0; 1 ];
              readers = [ 2 ];
              faults;
              seed;
              persist;
            }
      in
      let per_point =
        List.mapi
          (fun pi (delay, persist, (drop, dup)) ->
            (* one task per run: first [runs] ABD, then [runs] MW-ABD *)
            let results =
              Core.Pool.map_runs ~jobs ~metrics:pool_metrics (2 * runs)
                (fun ~metrics i ->
                  let proto = if i < runs then `Sw else `Mw in
                  let k = if i < runs then i else i - runs in
                  let seed =
                    Int64.of_int (((pi + 1) * 1009) + (k * 71) + 14)
                  in
                  let c = config_of ~proto ~delay ~persist ~drop ~dup ~seed in
                  let run = Core.Abd_runs.execute_config ~metrics c in
                  let lin =
                    run.Core.Abd_runs.completed
                    && Core.Lincheck.check ~metrics ~init:(Core.Value.Int 0)
                         run.Core.Abd_runs.history
                  in
                  let pre = match proto with `Sw -> "reg.abd." | `Mw -> "reg.mwabd." in
                  ( run.Core.Abd_runs.completed,
                    lin,
                    run.Core.Abd_runs.stalled <> None,
                    Obs.Metrics.counter metrics (pre ^ "recoveries"),
                    Obs.Metrics.counter metrics (pre ^ "state_transfer"),
                    Obs.Metrics.counter metrics (pre ^ "amnesia") ))
            in
            let total = Array.length results in
            let fold f init = Array.fold_left f init results in
            let terminated =
              fold (fun a (c, _, _, _, _, _) -> if c then a + 1 else a) 0
            in
            let lin_ok =
              fold (fun a (_, l, _, _, _, _) -> if l then a + 1 else a) 0
            in
            let stalls =
              fold (fun a (_, _, s, _, _, _) -> if s then a + 1 else a) 0
            in
            let recov = fold (fun a (_, _, _, r, _, _) -> a + r) 0 in
            let xfers = fold (fun a (_, _, _, _, x, _) -> a + x) 0 in
            let amnesia = fold (fun a (_, _, _, _, _, m) -> a + m) 0 in
            (delay, persist, drop, total, terminated, lin_ok, stalls, recov,
             xfers, amnesia))
          points
      in
      let sweep_ok =
        List.for_all
          (fun (delay, _, _, total, terminated, lin_ok, stalls, recov, xfers, amnesia) ->
            terminated = total && lin_ok = total && stalls = 0 && amnesia = 0
            (* short delays land well inside the run: every scheduled
               restart must actually happen, and safely (one handshake
               per restart).  Longer delays may outlive a finished run. *)
            && (delay > List.hd delays || (recov = 2 * total && xfers = recov)))
          per_point
      in
      let recov_total =
        List.fold_left
          (fun a (_, _, _, _, _, _, _, r, _, _) -> a + r)
          0 per_point
      in
      (* -- part 2: the seeded unsafe-recovery bug -- *)
      let seed = 14L in
      let bug_budget = if quick then 6 else 12 in
      let buggy =
        Core.Chaos.search ~jobs ~inject:Core.Chaos.Unsafe_recovery
          ~telemetry:pool_metrics ~seed ~budget:bug_budget ()
      in
      let found = List.length buggy.Core.Chaos.findings in
      let minimal_pair f =
        let m = f.Core.Chaos.shrunk.Core.Shrink.config in
        List.length m.Core.Run_config.faults.Core.Faults.crash_at = 1
        && List.length m.Core.Run_config.faults.Core.Faults.recover_at = 1
        && m.Core.Run_config.faults.Core.Faults.drop = 0.
        && m.Core.Run_config.faults.Core.Faults.duplicate = 0.
      in
      let shrunk_ok =
        found > 0
        && List.for_all
             (fun f ->
               let m = f.Core.Chaos.shrunk.Core.Shrink.config in
               (* amnesia surfaces either as a rolled-back replica caught
                  red-handed (recovery-sanity) or as the stale read it
                  causes (linearizability) *)
               List.mem f.Core.Chaos.first.Core.Monitor.monitor
                 [ "recovery-sanity"; "linearizability" ]
               && m.Core.Run_config.unsafe_recovery
               && m.Core.Run_config.persist = `Never)
             buggy.Core.Chaos.findings
        (* amnesia is schedule-sensitive: for some seeds a residual link
           fault is load-bearing (removing it re-times the run and the
           violation vanishes), so not every fixpoint is the canonical
           minimum — but the search must exhibit it at least once *)
        && List.exists minimal_pair buggy.Core.Chaos.findings
      in
      let entries = Core.Chaos.to_entries buggy in
      let replayed =
        List.length
          (List.filter
             (fun e -> Core.Corpus.replay e = Core.Corpus.Reproduced)
             entries)
      in
      let replay_ok = entries <> [] && replayed = List.length entries in
      let again =
        Core.Chaos.search ~jobs:(if jobs = 1 then 2 else 1)
          ~inject:Core.Chaos.Unsafe_recovery ~seed ~budget:bug_budget ()
      in
      let deterministic =
        Core.Json.to_string (Core.Chaos.report_json buggy)
        = Core.Json.to_string (Core.Chaos.report_json again)
      in
      ( Printf.sprintf
          "sweep: %d points x %d runs, %s, %d recoveries exercised; bug: \
           %d/%d caught, %d/%d reproducers replay verbatim; deterministic \
           across jobs: %b"
          (List.length points) (2 * runs)
          (if sweep_ok then "all terminate + linearizable, 0 amnesia"
           else "FAILED")
          recov_total found bug_budget replayed (List.length entries)
          deterministic,
        sweep_ok && recov_total > 0 && shrunk_ok && replay_ok && deterministic,
        [
          ("sweep_points", float_of_int (List.length points));
          ("runs_per_point", float_of_int (2 * runs));
          ("recoveries", float_of_int recov_total);
          ("bug_runs", float_of_int bug_budget);
          ("bug_found", float_of_int found);
          ("replayed", float_of_int replayed);
          ("deterministic", if deterministic then 1. else 0.);
        ] ))

(* ---------- E15 (fleet scale) -------------------------------------------------- *)

let e15_fleet ?(jobs = 1) ~quick () =
  (* The fleet engine at its design point: a sharded key-space of ABD
     groups under link faults and a crash/recovery pair, driven by
     one-op client sessions (maximum generational churn — at the full
     profile that is a million short-lived clients recycled through a
     few dozen fiber slots) with per-destination delivery batching.
     The batched and unbatched runs of the same config must agree on
     the verdict — every shard completes and no sampled segment fails
     the streaming checker — while batching strictly reduces delivery
     attempts; reports carry no wall clock and are byte-identical
     across -j. *)
  let ops = if quick then 24_000 else 1_000_000 in
  let shards = if quick then 4 else 8 in
  measured_report ~id:"E15"
    ~claim:
      "fleet scale: sharded ABD groups serve 1M+ one-op client sessions \
       through a fixed slot pool under link faults and a crash/recovery \
       pair; per-destination batching amortizes quorum messaging without \
       changing any verdict, and sampled shard histories pass the \
       streaming linearizability checker"
    ~expected:
      "all shards complete in both runs, sessions = ops (every op is its \
       own client), slot recycling covers all but the first occupants, 0 \
       streaming-checker failures, batched delivery attempts per op \
       strictly below unbatched, reports byte-identical across -j"
    (fun () ->
      let faults =
        {
          Core.Faults.none with
          Core.Faults.drop = 0.05;
          duplicate = 0.02;
          delay = 0.05;
          delay_bound = 4;
          crash_at = [ (400, 2) ];
          recover_at = [ (900, 2) ];
        }
      in
      let base =
        {
          Core.Fleet.default with
          Core.Fleet.shards;
          ops;
          slots = 4;
          session_len = 1;
          write_ratio = 0.2;
          keys = 256;
          faults;
          persist = `Every;
          seed = 15L;
          sample = 2;
        }
      in
      let unbatched = Core.Fleet.run ~jobs base in
      let bcfg = { base with Core.Fleet.batch_window = 8; batch_max = 8 } in
      let batched = Core.Fleet.run ~jobs bcfg in
      let again = Core.Fleet.run ~jobs:(if jobs = 1 then 2 else 1) bcfg in
      let deterministic =
        Core.Json.to_string (Core.Fleet.report_json batched)
        = Core.Json.to_string (Core.Fleet.report_json again)
      in
      let recycles =
        List.fold_left
          (fun a s -> a + s.Core.Fleet.recycles)
          0 batched.Core.Fleet.shards_r
      in
      let churn_ok =
        batched.Core.Fleet.total_sessions = ops
        && recycles >= ops - (shards * base.Core.Fleet.slots)
      in
      let verdicts_agree =
        unbatched.Core.Fleet.completed && batched.Core.Fleet.completed
        && unbatched.Core.Fleet.total_fails = 0
        && batched.Core.Fleet.total_fails = 0
      in
      let amortized =
        batched.Core.Fleet.total_attempts < unbatched.Core.Fleet.total_attempts
      in
      ( Printf.sprintf
          "%d ops over %d shards: %d sessions (%d recycles), attempts/op \
           %.2f unbatched vs %.2f batched (%d coalesced), %d sampled \
           segments (%d fail, %d unknown); deterministic across -j: %b"
          ops shards batched.Core.Fleet.total_sessions recycles
          (Core.Fleet.attempts_per_op unbatched)
          (Core.Fleet.attempts_per_op batched)
          batched.Core.Fleet.total_coalesced batched.Core.Fleet.total_segments
          batched.Core.Fleet.total_fails batched.Core.Fleet.total_unknowns
          deterministic,
        verdicts_agree && churn_ok && amortized
        && batched.Core.Fleet.total_segments > 0
        && deterministic,
        [
          ("ops", float_of_int ops);
          ("sessions", float_of_int batched.Core.Fleet.total_sessions);
          ("recycles", float_of_int recycles);
          ("attempts_per_op_unbatched", Core.Fleet.attempts_per_op unbatched);
          ("attempts_per_op_batched", Core.Fleet.attempts_per_op batched);
          ("coalesced", float_of_int batched.Core.Fleet.total_coalesced);
          ("segments", float_of_int batched.Core.Fleet.total_segments);
          ("seg_fails", float_of_int batched.Core.Fleet.total_fails);
          ("deterministic", if deterministic then 1. else 0.);
        ] ))

let catalogue ?faults () =
  let faulty f ?jobs ~quick () = f ?jobs ?faults ~quick () in
  [
    ("E1", e1_nontermination);
    ("E2", e2_wsl_termination);
    ("E3", e3_alg2_wsl);
    ("E4", e4_fig4_counterexample);
    ("E5", e5_alg4_linearizable);
    ("E6", faulty e6_abd);
    ("E7", e7_cor9);
    ("E8", e8_cost);
    ("E9", e9_ablation);
    ("E10", faulty e10_mwabd);
    ("E11", e11_faults);
    ("E12", e12_chaos);
    ("E13", e13_serve);
    ("E14", e14_recovery);
    ("E15", e15_fleet);
  ]

let ids = List.map fst (catalogue ())

let select ?faults only =
  let catalogue = catalogue ?faults () in
  match only with
  | None -> catalogue
  | Some wanted ->
      let wanted = List.map String.uppercase_ascii wanted in
      List.iter
        (fun id ->
          if not (List.mem_assoc id catalogue) then
            invalid_arg
              (Printf.sprintf "Experiments: unknown id %S (know %s)" id
                 (String.concat ", " ids)))
        wanted;
      (* battery order, not request order: the reports read E1..E11 *)
      List.filter (fun (id, _) -> List.mem id wanted) catalogue

(* the whole battery under one root span: with an ambient tracer the
   timeline shows "battery" enclosing the per-experiment slices (the
   battery is sequential — only the Monte-Carlo loops inside an
   experiment fan out — so the root closes after every report) *)
let all ?jobs ?only ?faults ~quick () =
  Obs.Span.with_root "battery" (fun () ->
      List.map (fun (_, f) -> f ?jobs ~quick ()) (select ?faults only))

let run_all ?jobs ?only ?faults ~quick fmt =
  let rs = all ?jobs ?only ?faults ~quick () in
  List.iter (fun r -> Format.fprintf fmt "%a@." pp_report r) rs;
  let passed = List.length (List.filter (fun r -> r.pass) rs) in
  Format.fprintf fmt "=== %d/%d experiments reproduce the paper's claims ===@."
    passed (List.length rs)
