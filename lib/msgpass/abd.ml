module V = History.Value
module Op = History.Op
module Trace = Simkit.Trace
module Sched = Simkit.Sched

(* Replies carry the responding replica's node index: quorum counting is
   per distinct node, which makes the protocol idempotent under
   retransmission and message duplication (a doubled ack can never count
   twice towards a majority). *)
type msg =
  | Write_req of { ts : int; v : int }
  | Write_ack of { ts : int; node : int }
  | Read_req of { rid : int; reader : int }
  | Read_reply of { rid : int; node : int; ts : int; v : int }
  | Wb_req of { rid : int; ts : int; v : int }
  | Wb_ack of { rid : int; node : int }
  (* state-transfer recovery handshake: a recovering server asks the
     live replicas for their (ts, v) before it serves again *)
  | Rec_req of { rid : int; node : int }
  | Rec_reply of { rid : int; node : int; ts : int; v : int }

type replica = { mutable ts : int; mutable v : int }

type persist = [ `Every | `Never ]

type t = {
  sched : Sched.t;
  name_ : string;
  n_ : int;
  writer_ : int;
  init_ : int;
  retry_ : int; (* client retransmission timeout, in own-fiber yields *)
  quorum_ : int; (* replies per round; majority unless overridden *)
  persist_ : persist;
  unsafe_recovery_ : bool;
  net : msg Net.t;
  replicas : replica array;
  stable : (int * int) Simkit.Stable.t; (* per-node durable (ts, v) log *)
  lost_at_crash : int array; (* records lost by each node's last crash *)
  mutable wseq : int; (* writer's sequence number *)
  mutable rseq : int; (* fresh read ids *)
  mutable recseq : int; (* fresh state-transfer round ids *)
  (* metric handles, resolved once at creation (hot-path discipline) *)
  quorum_need_h : Obs.Metrics.Hist.t;
  stale_c : Obs.Metrics.Counter.t;
  retransmits_c : Obs.Metrics.Counter.t;
  writes_c : Obs.Metrics.Counter.t;
  reads_c : Obs.Metrics.Counter.t;
  recoveries_c : Obs.Metrics.Counter.t;
  state_transfer_c : Obs.Metrics.Counter.t;
  amnesia_c : Obs.Metrics.Counter.t;
}

let server_pid ~node = 100 + node

(* flight-recorder events for operation phases (category "reg"): an
   [invoke] roots the op's causal tree, each quorum [round] chains to it,
   [retransmit]s chain to their round, and the [respond] closes the op.
   All guarded on [Tracer.armed] so untraced runs pay one branch. *)
let trc t = Sched.tracer t.sched

let emit_op t ~pid ~parent name args =
  let tr = trc t in
  if Obs.Tracer.armed tr then
    Obs.Tracer.emit tr ~track:pid ~parent
      ~args:(("obj", Obs.Json.Str t.name_) :: args)
      ~sim:(Sched.steps t.sched) ~cat:"reg" name
  else -1

(* a replica accepted an update: apply it in memory and write it ahead to
   stable storage.  Under [`Every] the append is immediately durable (and
   traced as a [persist] sync point); under [`Never] it stays in the
   volatile tail, which a crash discards — that is the amnesia the unsafe
   recovery path exposes. *)
let store t ~node rep ~ts ~v =
  rep.ts <- ts;
  rep.v <- v;
  Simkit.Stable.append t.stable ~node (ts, v);
  if t.persist_ = `Every then
    ignore
      (emit_op t ~pid:(server_pid ~node) ~parent:(-1) "persist"
         [ ("node", Obs.Json.Int node); ("ts", Obs.Json.Int ts) ])

let server t node () =
  let me = server_pid ~node in
  let rep = t.replicas.(node) in
  while true do
    match Net.recv t.net ~pid:me with
    | Write_req { ts; v } ->
        (* idempotent: re-applying an old/duplicate request is a no-op,
           but it is always re-acknowledged (the earlier ack may have
           been dropped) *)
        if ts > rep.ts then store t ~node rep ~ts ~v;
        Net.send t.net ~src:me ~dst:t.writer_ (Write_ack { ts; node })
    | Read_req { rid; reader } ->
        Net.send t.net ~src:me ~dst:reader
          (Read_reply { rid; node; ts = rep.ts; v = rep.v })
    | Wb_req { rid; ts; v } ->
        if ts > rep.ts then store t ~node rep ~ts ~v;
        (* reply to whichever client is waiting on this rid *)
        Net.send t.net ~src:me ~dst:(rid / 1_000_000) (Wb_ack { rid; node })
    | Rec_req { rid; node = who } ->
        (* a recovering replica asks for state: answer with our copy *)
        Net.send t.net ~src:me
          ~dst:(server_pid ~node:who)
          (Rec_reply { rid; node; ts = rep.ts; v = rep.v })
    | Rec_reply _ ->
        (* a state-transfer reply landing after the handshake finished
           (late or duplicated): stale, ignore *)
        Obs.Metrics.incr_h t.stale_c
    | Write_ack _ | Read_reply _ | Wb_ack _ ->
        (* client-bound message misrouted to a server: impossible by
           construction (faults drop/duplicate/delay, never re-address) *)
        assert false
  done

let create ?(retry_after = 25) ?quorum ?(persist = `Every)
    ?(unsafe_recovery = false) ?(compact = false) ~sched ~name ~n ~writer ~init
    () =
  if n < 2 then invalid_arg "Abd.create: n must be >= 2";
  if n >= 100 then invalid_arg "Abd.create: n must be < 100";
  if writer < 0 || writer >= n then invalid_arg "Abd.create: writer out of range";
  let quorum_ = match quorum with Some q -> q | None -> (n / 2) + 1 in
  if quorum_ < 1 || quorum_ > n then
    invalid_arg "Abd.create: quorum out of range";
  let m = Sched.metrics sched in
  let stable =
    Simkit.Stable.create ~metrics:m ~auto_compact:compact
      ~policy:(match persist with `Every -> Simkit.Stable.Every | `Never -> Simkit.Stable.Explicit)
      ~n ()
  in
  let t =
    {
      sched;
      name_ = name;
      n_ = n;
      writer_ = writer;
      init_ = init;
      retry_ = retry_after;
      quorum_;
      persist_ = persist;
      unsafe_recovery_ = unsafe_recovery;
      net = Net.create ~sched ~n:200;
      replicas = Array.init n (fun _ -> { ts = 0; v = init });
      stable;
      lost_at_crash = Array.make n 0;
      wseq = 0;
      rseq = 0;
      recseq = 0;
      quorum_need_h = Obs.Metrics.hist_h m "reg.abd.quorum.need";
      stale_c = Obs.Metrics.counter_h m "reg.abd.stale";
      retransmits_c = Obs.Metrics.counter_h m "reg.abd.retransmits";
      writes_c = Obs.Metrics.counter_h m "reg.abd.writes";
      reads_c = Obs.Metrics.counter_h m "reg.abd.reads";
      recoveries_c = Obs.Metrics.counter_h m "reg.abd.recoveries";
      state_transfer_c = Obs.Metrics.counter_h m "reg.abd.state_transfer";
      amnesia_c = Obs.Metrics.counter_h m "reg.abd.amnesia";
    }
  in
  for node = 0 to n - 1 do
    (* every node's initial register copy is durable (a freshly formatted
       disk), whatever the persist policy *)
    Simkit.Stable.append t.stable ~node (0, init);
    Simkit.Stable.persist t.stable ~node;
    Sched.spawn sched ~pid:(server_pid ~node) (server t node)
  done;
  t

let net t = t.net
let name t = t.name_
let n t = t.n_
let writer t = t.writer_
let majority t = (t.n_ / 2) + 1

let send_to t ~src ~node payload =
  Net.send t.net ~src ~dst:(server_pid ~node) payload

let broadcast_servers t ~src payload =
  for node = 0 to t.n_ - 1 do
    send_to t ~src ~node payload
  done

(* one round trip: broadcast [payload], await matching replies from a
   majority of distinct replicas, retransmitting to the missing ones on a
   step-count timeout.  [pseq] is the invoke event this round belongs to
   (-1 untraced). *)
let quorum_round t ~pid ~pseq ~payload ~classify =
  (* every round records the quorum size it waits for: the chaos
     quorum-intersection monitor checks min(need) >= majority *)
  Obs.Metrics.observe_h t.quorum_need_h (float_of_int t.quorum_);
  let rseq =
    emit_op t ~pid ~parent:pseq "round"
      [ ("need", Obs.Json.Int t.quorum_) ]
  in
  (* sends below chain to the round via the ambient context *)
  Obs.Tracer.set_ctx (trc t) rseq;
  broadcast_servers t ~src:pid payload;
  let seen = Array.make t.n_ false in
  Net.collect_quorum t.net ~pid ~need:t.quorum_ ~seen ~classify
    ~stale:(fun () -> Obs.Metrics.incr_h t.stale_c)
    ~retry_after:t.retry_
    ~resend:(fun ~missing ->
      Obs.Metrics.incr_h t.retransmits_c;
      ignore
        (emit_op t ~pid ~parent:rseq "retransmit"
           [ ("missing", Obs.Json.Int (List.length missing)) ]);
      Obs.Tracer.set_ctx (trc t) rseq;
      List.iter (fun node -> send_to t ~src:pid ~node payload) missing);
  (* collect consumed deliveries and left the context on the last one;
     restore the op as ambient cause for whatever follows the round *)
  Obs.Tracer.set_ctx (trc t) pseq

let write t v =
  Obs.Metrics.incr_h t.writes_c;
  let tr = Sched.trace t.sched in
  let op_id =
    Trace.invoke tr ~proc:t.writer_ ~obj:t.name_ ~kind:(Op.Write (V.Int v))
  in
  let pseq =
    emit_op t ~pid:t.writer_ ~parent:(-1) "invoke"
      [ ("op", Obs.Json.Int op_id); ("kind", Obs.Json.Str "write");
        ("v", Obs.Json.Int v) ]
  in
  t.wseq <- t.wseq + 1;
  let ts = t.wseq in
  quorum_round t ~pid:t.writer_ ~pseq (* collect a majority of fresh acks *)
    ~payload:(Write_req { ts; v })
    ~classify:(function
      | Write_ack { ts = ts'; node } when ts' = ts -> Some node
      | _ -> None);
  ignore
    (emit_op t ~pid:t.writer_ ~parent:pseq "respond"
       [ ("op", Obs.Json.Int op_id) ]);
  Obs.Tracer.set_ctx (trc t) (-1);
  Trace.respond tr ~op_id ~result:None

let read t ~reader =
  Obs.Metrics.incr_h t.reads_c;
  let tr = Sched.trace t.sched in
  let op_id = Trace.invoke tr ~proc:reader ~obj:t.name_ ~kind:Op.Read in
  let pseq =
    emit_op t ~pid:reader ~parent:(-1) "invoke"
      [ ("op", Obs.Json.Int op_id); ("kind", Obs.Json.Str "read") ]
  in
  t.rseq <- t.rseq + 1;
  let rid = (reader * 1_000_000) + t.rseq in
  (* phase 1: majority of replies; keep the largest timestamp.  Updating
     [best] from a duplicate (or refreshed) reply of an already-counted
     node is safe: a larger timestamp only strengthens the write-back. *)
  let best_ts = ref (-1) and best_v = ref 0 in
  quorum_round t ~pid:reader ~pseq
    ~payload:(Read_req { rid; reader })
    ~classify:(function
      | Read_reply { rid = rid'; node; ts; v } when rid' = rid ->
          if ts > !best_ts then begin
            best_ts := ts;
            best_v := v
          end;
          Some node
      | _ -> None);
  (* phase 2: write back to a majority *)
  quorum_round t ~pid:reader ~pseq
    ~payload:(Wb_req { rid; ts = !best_ts; v = !best_v })
    ~classify:(function
      | Wb_ack { rid = rid'; node } when rid' = rid -> Some node
      | _ -> None);
  ignore
    (emit_op t ~pid:reader ~parent:pseq "respond"
       [ ("op", Obs.Json.Int op_id); ("v", Obs.Json.Int !best_v) ]);
  Obs.Tracer.set_ctx (trc t) (-1);
  Trace.respond tr ~op_id ~result:(Some (V.Int !best_v));
  !best_v

let crash_node t ~node =
  (* the un-persisted stable-storage suffix dies with the node; remember
     how much was lost so the recovery path can tell restart from amnesia *)
  if not (Sched.crashed t.sched ~pid:(server_pid ~node)) then
    t.lost_at_crash.(node) <- Simkit.Stable.crash t.stable ~node;
  Sched.crash t.sched ~pid:(server_pid ~node);
  (match Sched.status t.sched ~pid:node with
  | exception Invalid_argument _ -> () (* client fiber never spawned *)
  | _ -> Sched.crash t.sched ~pid:node);
  (* the network learns the destination died: in-flight mail is dropped
     now, later deliveries are dead-lettered instead of queueing forever *)
  Net.mark_dead t.net ~pid:(server_pid ~node);
  Net.drop_to t.net ~dst:(server_pid ~node)

(* the first code a restarted server runs: reload the durable register
   copy, then — unless recovery is unsafely skipped — run the
   state-transfer handshake before rejoining the protocol. *)
let recovering_server t node () =
  let me = server_pid ~node in
  let rep = t.replicas.(node) in
  (* volatile state died with the old incarnation: what survives is the
     durable prefix of the write-ahead log *)
  (match Simkit.Stable.last_durable t.stable ~node with
  | Some (ts, v) ->
      rep.ts <- ts;
      rep.v <- v
  | None ->
      rep.ts <- 0;
      rep.v <- t.init_);
  if t.unsafe_recovery_ then begin
    (* serve straight from the (possibly stale) durable copy.  If the
       crash lost acknowledged updates this replica rejoins quorums with
       rolled-back state — the seeded bug the recovery-sanity monitor
       flags. *)
    if t.lost_at_crash.(node) > 0 then Obs.Metrics.incr_h t.amnesia_c;
    ignore
      (emit_op t ~pid:me ~parent:(-1) "recover_unsafe"
         [
           ("node", Obs.Json.Int node);
           ("lost", Obs.Json.Int t.lost_at_crash.(node));
         ])
  end
  else begin
    Obs.Metrics.incr_h t.state_transfer_c;
    Obs.Metrics.observe_h t.quorum_need_h (float_of_int (majority t));
    t.recseq <- t.recseq + 1;
    let rid = t.recseq in
    let pseq =
      emit_op t ~pid:me ~parent:(-1) "state_transfer"
        [ ("node", Obs.Json.Int node) ]
    in
    Obs.Tracer.set_ctx (trc t) pseq;
    let payload = Rec_req { rid; node } in
    for peer = 0 to t.n_ - 1 do
      if peer <> node then send_to t ~src:me ~node:peer payload
    done;
    (* read back from a majority of the OTHER replicas: self-inclusion
       would let an amnesiac copy vouch for itself, while a majority of
       the others intersects every write quorum at a node that did not
       just lose state.  [seen.(node)] is pre-marked so resends skip
       self; [need] counts that mark, hence majority + 1. *)
    let seen = Array.make t.n_ false in
    seen.(node) <- true;
    let best_ts = ref rep.ts and best_v = ref rep.v in
    Net.collect_quorum t.net ~pid:me ~need:(majority t + 1) ~seen
      ~classify:(function
        | Rec_reply { rid = rid'; node = peer; ts; v } when rid' = rid ->
            if ts > !best_ts then begin
              best_ts := ts;
              best_v := v
            end;
            Some peer
        | _ -> None)
      ~stale:(fun () -> Obs.Metrics.incr_h t.stale_c)
      ~retry_after:t.retry_
      ~resend:(fun ~missing ->
        Obs.Metrics.incr_h t.retransmits_c;
        ignore
          (emit_op t ~pid:me ~parent:pseq "retransmit"
             [ ("missing", Obs.Json.Int (List.length missing)) ]);
        Obs.Tracer.set_ctx (trc t) pseq;
        List.iter (fun peer -> send_to t ~src:me ~node:peer payload) missing);
    (* adopt and immediately persist the transferred state: recovery
       always ends at a sync point, whatever the persist policy *)
    if !best_ts > rep.ts then begin
      rep.ts <- !best_ts;
      rep.v <- !best_v;
      Simkit.Stable.append t.stable ~node (!best_ts, !best_v)
    end;
    Simkit.Stable.persist t.stable ~node;
    ignore
      (emit_op t ~pid:me ~parent:pseq "persist"
         [ ("node", Obs.Json.Int node); ("ts", Obs.Json.Int rep.ts) ]);
    Obs.Tracer.set_ctx (trc t) (-1)
  end;
  server t node ()

let recover_node t ~node =
  let spid = server_pid ~node in
  Net.revive t.net ~pid:spid;
  ignore (Sched.restart t.sched ~pid:spid (recovering_server t node));
  Obs.Metrics.incr_h t.recoveries_c
