module V = History.Value
module Op = History.Op
module Trace = Simkit.Trace
module Sched = Simkit.Sched

(* Replies carry the responding replica's node index: quorum counting is
   per distinct node, which makes the protocol idempotent under
   retransmission and message duplication (a doubled ack can never count
   twice towards a majority). *)
type msg =
  | Write_req of { ts : int; v : int }
  | Write_ack of { ts : int; node : int }
  | Read_req of { rid : int; reader : int }
  | Read_reply of { rid : int; node : int; ts : int; v : int }
  | Wb_req of { rid : int; ts : int; v : int }
  | Wb_ack of { rid : int; node : int }

type replica = { mutable ts : int; mutable v : int }

type t = {
  sched : Sched.t;
  name_ : string;
  n_ : int;
  writer_ : int;
  retry_ : int; (* client retransmission timeout, in own-fiber yields *)
  quorum_ : int; (* replies per round; majority unless overridden *)
  net : msg Net.t;
  replicas : replica array;
  mutable wseq : int; (* writer's sequence number *)
  mutable rseq : int; (* fresh read ids *)
  (* metric handles, resolved once at creation (hot-path discipline) *)
  quorum_need_h : Obs.Metrics.Hist.t;
  stale_c : Obs.Metrics.Counter.t;
  retransmits_c : Obs.Metrics.Counter.t;
  writes_c : Obs.Metrics.Counter.t;
  reads_c : Obs.Metrics.Counter.t;
}

let server_pid ~node = 100 + node

let server t node () =
  let me = server_pid ~node in
  let rep = t.replicas.(node) in
  while true do
    match Net.recv t.net ~pid:me with
    | Write_req { ts; v } ->
        (* idempotent: re-applying an old/duplicate request is a no-op,
           but it is always re-acknowledged (the earlier ack may have
           been dropped) *)
        if ts > rep.ts then begin
          rep.ts <- ts;
          rep.v <- v
        end;
        Net.send t.net ~src:me ~dst:t.writer_ (Write_ack { ts; node })
    | Read_req { rid; reader } ->
        Net.send t.net ~src:me ~dst:reader
          (Read_reply { rid; node; ts = rep.ts; v = rep.v })
    | Wb_req { rid; ts; v } ->
        if ts > rep.ts then begin
          rep.ts <- ts;
          rep.v <- v
        end;
        (* reply to whichever client is waiting on this rid *)
        Net.send t.net ~src:me ~dst:(rid / 1_000_000) (Wb_ack { rid; node })
    | Write_ack _ | Read_reply _ | Wb_ack _ ->
        (* client-bound message misrouted to a server: impossible by
           construction (faults drop/duplicate/delay, never re-address) *)
        assert false
  done

let create ?(retry_after = 25) ?quorum ~sched ~name ~n ~writer ~init () =
  if n < 2 then invalid_arg "Abd.create: n must be >= 2";
  if n >= 100 then invalid_arg "Abd.create: n must be < 100";
  if writer < 0 || writer >= n then invalid_arg "Abd.create: writer out of range";
  let quorum_ = match quorum with Some q -> q | None -> (n / 2) + 1 in
  if quorum_ < 1 || quorum_ > n then
    invalid_arg "Abd.create: quorum out of range";
  let m = Sched.metrics sched in
  let t =
    {
      sched;
      name_ = name;
      n_ = n;
      writer_ = writer;
      retry_ = retry_after;
      quorum_;
      net = Net.create ~sched ~n:200;
      replicas = Array.init n (fun _ -> { ts = 0; v = init });
      wseq = 0;
      rseq = 0;
      quorum_need_h = Obs.Metrics.hist_h m "reg.abd.quorum.need";
      stale_c = Obs.Metrics.counter_h m "reg.abd.stale";
      retransmits_c = Obs.Metrics.counter_h m "reg.abd.retransmits";
      writes_c = Obs.Metrics.counter_h m "reg.abd.writes";
      reads_c = Obs.Metrics.counter_h m "reg.abd.reads";
    }
  in
  for node = 0 to n - 1 do
    Sched.spawn sched ~pid:(server_pid ~node) (server t node)
  done;
  t

let net t = t.net
let name t = t.name_
let n t = t.n_
let writer t = t.writer_
let majority t = (t.n_ / 2) + 1

let send_to t ~src ~node payload =
  Net.send t.net ~src ~dst:(server_pid ~node) payload

let broadcast_servers t ~src payload =
  for node = 0 to t.n_ - 1 do
    send_to t ~src ~node payload
  done

(* flight-recorder events for operation phases (category "reg"): an
   [invoke] roots the op's causal tree, each quorum [round] chains to it,
   [retransmit]s chain to their round, and the [respond] closes the op.
   All guarded on [Tracer.armed] so untraced runs pay one branch. *)
let trc t = Sched.tracer t.sched

let emit_op t ~pid ~parent name args =
  let tr = trc t in
  if Obs.Tracer.armed tr then
    Obs.Tracer.emit tr ~track:pid ~parent
      ~args:(("obj", Obs.Json.Str t.name_) :: args)
      ~sim:(Sched.steps t.sched) ~cat:"reg" name
  else -1

(* one round trip: broadcast [payload], await matching replies from a
   majority of distinct replicas, retransmitting to the missing ones on a
   step-count timeout.  [pseq] is the invoke event this round belongs to
   (-1 untraced). *)
let quorum_round t ~pid ~pseq ~payload ~classify =
  (* every round records the quorum size it waits for: the chaos
     quorum-intersection monitor checks min(need) >= majority *)
  Obs.Metrics.observe_h t.quorum_need_h (float_of_int t.quorum_);
  let rseq =
    emit_op t ~pid ~parent:pseq "round"
      [ ("need", Obs.Json.Int t.quorum_) ]
  in
  (* sends below chain to the round via the ambient context *)
  Obs.Tracer.set_ctx (trc t) rseq;
  broadcast_servers t ~src:pid payload;
  let seen = Array.make t.n_ false in
  Net.collect_quorum t.net ~pid ~need:t.quorum_ ~seen ~classify
    ~stale:(fun () -> Obs.Metrics.incr_h t.stale_c)
    ~retry_after:t.retry_
    ~resend:(fun ~missing ->
      Obs.Metrics.incr_h t.retransmits_c;
      ignore
        (emit_op t ~pid ~parent:rseq "retransmit"
           [ ("missing", Obs.Json.Int (List.length missing)) ]);
      Obs.Tracer.set_ctx (trc t) rseq;
      List.iter (fun node -> send_to t ~src:pid ~node payload) missing);
  (* collect consumed deliveries and left the context on the last one;
     restore the op as ambient cause for whatever follows the round *)
  Obs.Tracer.set_ctx (trc t) pseq

let write t v =
  Obs.Metrics.incr_h t.writes_c;
  let tr = Sched.trace t.sched in
  let op_id =
    Trace.invoke tr ~proc:t.writer_ ~obj:t.name_ ~kind:(Op.Write (V.Int v))
  in
  let pseq =
    emit_op t ~pid:t.writer_ ~parent:(-1) "invoke"
      [ ("op", Obs.Json.Int op_id); ("kind", Obs.Json.Str "write");
        ("v", Obs.Json.Int v) ]
  in
  t.wseq <- t.wseq + 1;
  let ts = t.wseq in
  quorum_round t ~pid:t.writer_ ~pseq (* collect a majority of fresh acks *)
    ~payload:(Write_req { ts; v })
    ~classify:(function
      | Write_ack { ts = ts'; node } when ts' = ts -> Some node
      | _ -> None);
  ignore
    (emit_op t ~pid:t.writer_ ~parent:pseq "respond"
       [ ("op", Obs.Json.Int op_id) ]);
  Obs.Tracer.set_ctx (trc t) (-1);
  Trace.respond tr ~op_id ~result:None

let read t ~reader =
  Obs.Metrics.incr_h t.reads_c;
  let tr = Sched.trace t.sched in
  let op_id = Trace.invoke tr ~proc:reader ~obj:t.name_ ~kind:Op.Read in
  let pseq =
    emit_op t ~pid:reader ~parent:(-1) "invoke"
      [ ("op", Obs.Json.Int op_id); ("kind", Obs.Json.Str "read") ]
  in
  t.rseq <- t.rseq + 1;
  let rid = (reader * 1_000_000) + t.rseq in
  (* phase 1: majority of replies; keep the largest timestamp.  Updating
     [best] from a duplicate (or refreshed) reply of an already-counted
     node is safe: a larger timestamp only strengthens the write-back. *)
  let best_ts = ref (-1) and best_v = ref 0 in
  quorum_round t ~pid:reader ~pseq
    ~payload:(Read_req { rid; reader })
    ~classify:(function
      | Read_reply { rid = rid'; node; ts; v } when rid' = rid ->
          if ts > !best_ts then begin
            best_ts := ts;
            best_v := v
          end;
          Some node
      | _ -> None);
  (* phase 2: write back to a majority *)
  quorum_round t ~pid:reader ~pseq
    ~payload:(Wb_req { rid; ts = !best_ts; v = !best_v })
    ~classify:(function
      | Wb_ack { rid = rid'; node } when rid' = rid -> Some node
      | _ -> None);
  ignore
    (emit_op t ~pid:reader ~parent:pseq "respond"
       [ ("op", Obs.Json.Int op_id); ("v", Obs.Json.Int !best_v) ]);
  Obs.Tracer.set_ctx (trc t) (-1);
  Trace.respond tr ~op_id ~result:(Some (V.Int !best_v));
  !best_v

let crash_node t ~node =
  Sched.crash t.sched ~pid:(server_pid ~node);
  (match Sched.status t.sched ~pid:node with
  | exception Invalid_argument _ -> () (* client fiber never spawned *)
  | _ -> Sched.crash t.sched ~pid:node);
  (* the network learns the destination died: in-flight mail is dropped
     now, later deliveries are dead-lettered instead of queueing forever *)
  Net.mark_dead t.net ~pid:(server_pid ~node);
  Net.drop_to t.net ~dst:(server_pid ~node)
