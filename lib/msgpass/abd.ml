module V = History.Value
module Op = History.Op
module Trace = Simkit.Trace
module Sched = Simkit.Sched

type msg =
  | Write_req of { ts : int; v : int }
  | Write_ack of { ts : int }
  | Read_req of { rid : int; reader : int }
  | Read_reply of { rid : int; ts : int; v : int }
  | Wb_req of { rid : int; ts : int; v : int }
  | Wb_ack of { rid : int }

type replica = { mutable ts : int; mutable v : int }

type t = {
  sched : Sched.t;
  name_ : string;
  n_ : int;
  writer_ : int;
  net : msg Net.t;
  replicas : replica array;
  mutable wseq : int; (* writer's sequence number *)
  mutable rseq : int; (* fresh read ids *)
}

let server_pid ~node = 100 + node

let server t node () =
  let me = server_pid ~node in
  let rep = t.replicas.(node) in
  while true do
    match Net.recv t.net ~pid:me with
    | Write_req { ts; v } ->
        if ts > rep.ts then begin
          rep.ts <- ts;
          rep.v <- v
        end;
        Net.send t.net ~src:me ~dst:t.writer_ (Write_ack { ts })
    | Read_req { rid; reader } ->
        Net.send t.net ~src:me ~dst:reader
          (Read_reply { rid; ts = rep.ts; v = rep.v })
    | Wb_req { rid; ts; v } ->
        if ts > rep.ts then begin
          rep.ts <- ts;
          rep.v <- v
        end;
        (* reply to whichever client is waiting on this rid *)
        Net.send t.net ~src:me ~dst:(rid / 1_000_000) (Wb_ack { rid })
    | Write_ack _ | Read_reply _ | Wb_ack _ ->
        (* client-bound message misrouted to a server: impossible by
           construction *)
        assert false
  done

let create ~sched ~name ~n ~writer ~init =
  if n < 2 then invalid_arg "Abd.create: n must be >= 2";
  if n >= 100 then invalid_arg "Abd.create: n must be < 100";
  if writer < 0 || writer >= n then invalid_arg "Abd.create: writer out of range";
  let t =
    {
      sched;
      name_ = name;
      n_ = n;
      writer_ = writer;
      net = Net.create ~sched ~n:200;
      replicas = Array.init n (fun _ -> { ts = 0; v = init });
      wseq = 0;
      rseq = 0;
    }
  in
  for node = 0 to n - 1 do
    Sched.spawn sched ~pid:(server_pid ~node) (server t node)
  done;
  t

let net t = t.net
let name t = t.name_
let n t = t.n_
let writer t = t.writer_
let majority t = (t.n_ / 2) + 1

let broadcast_servers t ~src payload =
  for node = 0 to t.n_ - 1 do
    Net.send t.net ~src ~dst:(server_pid ~node) payload
  done

let write t v =
  Obs.Metrics.incr (Sched.metrics t.sched) "reg.abd.writes";
  let tr = Sched.trace t.sched in
  let op_id =
    Trace.invoke tr ~proc:t.writer_ ~obj:t.name_ ~kind:(Op.Write (V.Int v))
  in
  t.wseq <- t.wseq + 1;
  let ts = t.wseq in
  broadcast_servers t ~src:t.writer_ (Write_req { ts; v });
  (* collect a majority of fresh acks *)
  let acks = ref 0 in
  while !acks < majority t do
    match Net.recv t.net ~pid:t.writer_ with
    | Write_ack { ts = ts' } when ts' = ts -> incr acks
    | _ -> () (* stale ack from an earlier operation *)
  done;
  Trace.respond tr ~op_id ~result:None

let read t ~reader =
  Obs.Metrics.incr (Sched.metrics t.sched) "reg.abd.reads";
  let tr = Sched.trace t.sched in
  let op_id = Trace.invoke tr ~proc:reader ~obj:t.name_ ~kind:Op.Read in
  t.rseq <- t.rseq + 1;
  let rid = (reader * 1_000_000) + t.rseq in
  broadcast_servers t ~src:reader (Read_req { rid; reader });
  (* phase 1: majority of replies; keep the largest timestamp *)
  let got = ref 0 in
  let best_ts = ref (-1) and best_v = ref 0 in
  while !got < majority t do
    match Net.recv t.net ~pid:reader with
    | Read_reply { rid = rid'; ts; v } when rid' = rid ->
        incr got;
        if ts > !best_ts then begin
          best_ts := ts;
          best_v := v
        end
    | _ -> ()
  done;
  (* phase 2: write back to a majority *)
  broadcast_servers t ~src:reader (Wb_req { rid; ts = !best_ts; v = !best_v });
  let acked = ref 0 in
  while !acked < majority t do
    match Net.recv t.net ~pid:reader with
    | Wb_ack { rid = rid' } when rid' = rid -> incr acked
    | _ -> ()
  done;
  Trace.respond tr ~op_id ~result:(Some (V.Int !best_v));
  !best_v

let crash_node t ~node =
  Sched.crash t.sched ~pid:(server_pid ~node);
  (match Sched.status t.sched ~pid:node with
  | exception Invalid_argument _ -> () (* client fiber never spawned *)
  | _ -> Sched.crash t.sched ~pid:node);
  Net.drop_to t.net ~dst:(server_pid ~node)
