module V = History.Value
module Sched = Simkit.Sched

type workload = {
  n : int;
  writes : int;
  readers : int list;
  reads_each : int;
  crash : int list;
  seed : int64;
}

let default =
  { n = 5; writes = 4; readers = [ 1; 2 ]; reads_each = 3; crash = []; seed = 1L }

type run = {
  history : History.Hist.t;
  trace : Simkit.Trace.t;
  completed : bool;
  steps : int;
}

let execute ?metrics w =
  if List.length w.crash >= (w.n + 1) / 2 then
    invalid_arg "Runs.execute: crash set must be a strict minority";
  if List.mem 0 w.crash then invalid_arg "Runs.execute: cannot crash the writer";
  List.iter
    (fun c ->
      if List.mem c w.readers then
        invalid_arg "Runs.execute: crashed nodes cannot be readers")
    w.crash;
  let sched = Sched.create ~seed:w.seed ?metrics () in
  let reg = Abd.create ~sched ~name:"ABD" ~n:w.n ~writer:0 ~init:0 in
  let first_write_done = ref false in
  let remaining = ref (1 + List.length w.readers) in
  let finish () = decr remaining in
  Sched.spawn sched ~pid:0 (fun () ->
      for k = 1 to w.writes do
        Abd.write reg (100 + k);
        if k = 1 then first_write_done := true
      done;
      finish ());
  List.iter
    (fun r ->
      Sched.spawn sched ~pid:r (fun () ->
          for _ = 1 to w.reads_each do
            ignore (Abd.read reg ~reader:r)
          done;
          finish ()))
    w.readers;
  let rng = Simkit.Rng.create (Int64.logxor w.seed 0x9E3779B9L) in
  let crashed = ref false in
  let base_policy s =
    (* crash the chosen minority once the run is underway *)
    if (not !crashed) && !first_write_done then begin
      crashed := true;
      List.iter (fun node -> Abd.crash_node reg ~node) w.crash
    end;
    if !remaining = 0 then Sched.Halt else Sched.random_policy rng s
  in
  let policy = Net.auto_deliver_policy (Abd.net reg) ~rng base_policy in
  let max_steps =
    (w.writes + (List.length w.readers * w.reads_each)) * w.n * 600
  in
  let steps = Sched.run sched ~policy ~max_steps in
  {
    history =
      History.Hist.project (Simkit.Trace.history (Sched.trace sched)) ~obj:"ABD";
    trace = Sched.trace sched;
    completed = !remaining = 0;
    steps;
  }

(* multi-writer workload over the Mwabd register: several writer clients
   with globally distinct values, plus readers, random asynchrony *)
let execute_mw ?metrics ~n ~writers ~writes_each ~readers ~reads_each ~seed () =
  let sched = Sched.create ~seed ?metrics () in
  let reg = Mwabd.create ~sched ~name:"MW" ~n ~init:0 in
  let remaining = ref (List.length writers + List.length readers) in
  List.iter
    (fun wnode ->
      Sched.spawn sched ~pid:wnode (fun () ->
          for k = 1 to writes_each do
            Mwabd.write reg ~proc:wnode ((1000 * (wnode + 1)) + k)
          done;
          decr remaining))
    writers;
  List.iter
    (fun rnode ->
      Sched.spawn sched ~pid:rnode (fun () ->
          for _ = 1 to reads_each do
            ignore (Mwabd.read reg ~reader:rnode)
          done;
          decr remaining))
    readers;
  let rng = Simkit.Rng.create (Int64.logxor seed 0x7E57AB1EL) in
  let policy s =
    if !remaining = 0 then Sched.Halt else Sched.random_policy rng s
  in
  let policy = Net.auto_deliver_policy (Mwabd.net reg) ~rng policy in
  let ops = (List.length writers * writes_each) + (List.length readers * reads_each) in
  let steps = Sched.run sched ~policy ~max_steps:(ops * n * 800) in
  {
    history =
      History.Hist.project (Simkit.Trace.history (Sched.trace sched)) ~obj:"MW";
    trace = Sched.trace sched;
    completed = !remaining = 0;
    steps;
  }

let check ?metrics run =
  if not run.completed then Error "run did not complete"
  else if not (Linchk.Lincheck.check ?metrics ~init:(V.Int 0) run.history) then
    Error "history is not linearizable"
  else
    match Linchk.Fstar.wsl_function ?metrics ~init:(V.Int 0) run.history with
    | Ok _ -> Ok ()
    | Error e -> Error ("f* write-prefix property failed: " ^ e)
