module V = History.Value
module Sched = Simkit.Sched
module Faults = Simkit.Faults

type workload = {
  n : int;
  writes : int;
  readers : int list;
  reads_each : int;
  crash : int list;
  faults : Faults.plan;
  seed : int64;
}

let default =
  {
    n = 5;
    writes = 4;
    readers = [ 1; 2 ];
    reads_each = 3;
    crash = [];
    faults = Faults.none;
    seed = 1L;
  }

type run = {
  history : History.Hist.t;
  trace : Simkit.Trace.t;
  completed : bool;
  stalled : Sched.stall option;
  steps : int;
}

(* The fault policy draws from its own stream, derived from — but
   independent of — the scheduler seed, so adding faults never perturbs
   the scheduling/delivery randomness of the benign part of a run. *)
let fault_seed seed = Int64.logxor seed 0xFA17FA17L

let check_crashes ~what ~n ~clients crash_nodes =
  if List.length crash_nodes >= (n + 1) / 2 then
    invalid_arg (what ^ ": crash set must be a strict minority");
  List.iter
    (fun c ->
      if c < 0 || c >= n then invalid_arg (what ^ ": crash node out of range");
      if List.mem c clients then
        invalid_arg (what ^ ": crashed nodes cannot be clients"))
    crash_nodes

let validate_crash_schedule ?(recoveries = []) ~what ~n ~clients schedule =
  check_crashes ~what ~n ~clients
    (List.sort_uniq Int.compare (List.map snd schedule));
  (* recoveries must pair with crashes (per-node alternation, crash
     first): borrowing Faults.validate rejects recoveries of
     never-crashed nodes and recover-before-crash schedules *)
  if recoveries <> [] then
    try
      Faults.validate
        { Faults.none with Faults.crash_at = schedule; recover_at = recoveries }
    with Invalid_argument msg ->
      invalid_arg (Printf.sprintf "%s: %s" what msg)

let execute ?metrics ?tracer w =
  Faults.validate w.faults;
  let plan_crashes =
    List.sort_uniq Int.compare (List.map snd w.faults.Faults.crash_at)
  in
  check_crashes ~what:"Runs.execute" ~n:w.n ~clients:(0 :: w.readers)
    (List.sort_uniq Int.compare (w.crash @ plan_crashes));
  let sched = Sched.create ~seed:w.seed ?metrics ?tracer () in
  let reg = Abd.create ~sched ~name:"ABD" ~n:w.n ~writer:0 ~init:0 () in
  let faults =
    if Faults.is_benign w.faults then None
    else begin
      let f = Faults.create ~seed:(fault_seed w.seed) w.faults in
      Net.set_faults (Abd.net reg) f;
      Some f
    end
  in
  let first_write_done = ref false in
  let remaining = ref (1 + List.length w.readers) in
  let finish () = decr remaining in
  Sched.spawn sched ~pid:0 (fun () ->
      for k = 1 to w.writes do
        Abd.write reg (100 + k);
        if k = 1 then first_write_done := true
      done;
      finish ());
  List.iter
    (fun r ->
      Sched.spawn sched ~pid:r (fun () ->
          for _ = 1 to w.reads_each do
            ignore (Abd.read reg ~reader:r)
          done;
          finish ()))
    w.readers;
  let rng = Simkit.Rng.create (Int64.logxor w.seed 0x9E3779B9L) in
  let crashed = ref false in
  let base_policy s =
    (* crash the chosen minority once the run is underway *)
    if (not !crashed) && !first_write_done then begin
      crashed := true;
      List.iter (fun node -> Abd.crash_node reg ~node) w.crash
    end;
    (* the fault plan's scheduled crashes and recoveries, keyed on the
       step clock (crashes first: a due recovery's crash is always at a
       strictly earlier step, per Faults.validate) *)
    (match faults with
    | Some f ->
        let step = Sched.steps sched in
        List.iter (fun node -> Abd.crash_node reg ~node)
          (Faults.crashes_due f ~step);
        List.iter (fun node -> Abd.recover_node reg ~node)
          (Faults.recoveries_due f ~step)
    | None -> ());
    if !remaining = 0 then Sched.Halt else Sched.random_policy rng s
  in
  let policy = Net.auto_deliver_policy (Abd.net reg) ~rng base_policy in
  let max_steps =
    ((w.writes + (List.length w.readers * w.reads_each)) * w.n * 600)
    + (2_000 * List.length w.faults.Faults.recover_at)
  in
  let stalled = ref None in
  let steps =
    try Sched.run sched ~watchdog:(Net.watchdog (Abd.net reg)) ~policy ~max_steps
    with Sched.Stalled diag ->
      stalled := Some diag;
      Sched.steps sched
  in
  {
    history =
      History.Hist.project (Simkit.Trace.history (Sched.trace sched)) ~obj:"ABD";
    trace = Sched.trace sched;
    completed = !remaining = 0;
    stalled = !stalled;
    steps;
  }

(* multi-writer workload over the Mwabd register: several writer clients
   with globally distinct values, plus readers, random asynchrony *)
let execute_mw ?metrics ?tracer ?(faults = Faults.none) ~n ~writers
    ~writes_each ~readers ~reads_each ~seed () =
  Faults.validate faults;
  let plan_crashes =
    List.sort_uniq Int.compare (List.map snd faults.Faults.crash_at)
  in
  check_crashes ~what:"Runs.execute_mw" ~n ~clients:(writers @ readers)
    plan_crashes;
  let sched = Sched.create ~seed ?metrics ?tracer () in
  let reg = Mwabd.create ~sched ~name:"MW" ~n ~init:0 () in
  let fpolicy =
    if Faults.is_benign faults then None
    else begin
      let f = Faults.create ~seed:(fault_seed seed) faults in
      Net.set_faults (Mwabd.net reg) f;
      Some f
    end
  in
  let remaining = ref (List.length writers + List.length readers) in
  List.iter
    (fun wnode ->
      Sched.spawn sched ~pid:wnode (fun () ->
          for k = 1 to writes_each do
            Mwabd.write reg ~proc:wnode ((1000 * (wnode + 1)) + k)
          done;
          decr remaining))
    writers;
  List.iter
    (fun rnode ->
      Sched.spawn sched ~pid:rnode (fun () ->
          for _ = 1 to reads_each do
            ignore (Mwabd.read reg ~reader:rnode)
          done;
          decr remaining))
    readers;
  let rng = Simkit.Rng.create (Int64.logxor seed 0x7E57AB1EL) in
  let policy s =
    (match fpolicy with
    | Some f ->
        let step = Sched.steps sched in
        List.iter (fun node -> Mwabd.crash_node reg ~node)
          (Faults.crashes_due f ~step);
        List.iter (fun node -> Mwabd.recover_node reg ~node)
          (Faults.recoveries_due f ~step)
    | None -> ());
    if !remaining = 0 then Sched.Halt else Sched.random_policy rng s
  in
  let policy = Net.auto_deliver_policy (Mwabd.net reg) ~rng policy in
  let ops = (List.length writers * writes_each) + (List.length readers * reads_each) in
  let max_steps =
    (ops * n * 800) + (2_000 * List.length faults.Faults.recover_at)
  in
  let stalled = ref None in
  let steps =
    try
      Sched.run sched ~watchdog:(Net.watchdog (Mwabd.net reg)) ~policy ~max_steps
    with Sched.Stalled diag ->
      stalled := Some diag;
      Sched.steps sched
  in
  {
    history =
      History.Hist.project (Simkit.Trace.history (Sched.trace sched)) ~obj:"MW";
    trace = Sched.trace sched;
    completed = !remaining = 0;
    stalled = !stalled;
    steps;
  }

(* ----- re-runnable configs ---------------------------------------------------- *)

(* One record capturing everything a run depends on — protocol, workload
   shape, fault plan, crash schedule (inside the plan), scheduler policy,
   seeds, step budget, and the test-only quorum override.  The chaos
   search explores this space, the shrinker minimizes within it, and the
   regression corpus serializes it, so [execute_config] on an equal config
   is byte-for-byte the same run whatever found it. *)

module Config = struct
  type proto = Sw | Mw

  type t = {
    proto : proto;
    n : int;
    writers : int list;
    writes_each : int;
    readers : int list;
    reads_each : int;
    faults : Faults.plan;
    seed : int64;
    policy : [ `Random | `Round_robin ];
    max_steps : int option;
    quorum : int option;
    persist : [ `Every | `Never ];
    unsafe_recovery : bool;
    (* per-destination delivery batching (Net.set_batching); window 0 /
       max 1 = disabled, the byte-identical pre-batching behaviour *)
    batch_window : int;
    batch_max : int;
  }

  let default =
    {
      proto = Sw;
      n = 5;
      writers = [ 0 ];
      writes_each = 3;
      readers = [ 1; 2 ];
      reads_each = 2;
      faults = Faults.none;
      seed = 1L;
      policy = `Random;
      max_steps = None;
      quorum = None;
      persist = `Every;
      unsafe_recovery = false;
      batch_window = 0;
      batch_max = 1;
    }

  let auto_max_steps c =
    let ops =
      (List.length c.writers * c.writes_each)
      + (List.length c.readers * c.reads_each)
    in
    (max 1 ops * c.n * 800)
    + (2_000 * List.length c.faults.Faults.recover_at)

  let obj c = match c.proto with Sw -> "ABD" | Mw -> "MW"

  let validate c =
    let bad msg = invalid_arg ("Runs.Config: " ^ msg) in
    if c.n < 2 || c.n >= 100 then bad "n must be in [2, 100)";
    (match c.proto with
    | Sw ->
        if List.length c.writers <> 1 then bad "Sw takes exactly one writer"
    | Mw -> if c.writers = [] then bad "Mw needs at least one writer");
    if c.writes_each < 1 then bad "writes_each must be >= 1";
    if c.reads_each < 0 then bad "reads_each must be >= 0";
    let clients = c.writers @ c.readers in
    if
      List.length (List.sort_uniq Int.compare clients) <> List.length clients
    then bad "writers and readers must be distinct nodes";
    List.iter
      (fun p -> if p < 0 || p >= c.n then bad "client node out of range")
      clients;
    Faults.validate c.faults;
    check_crashes ~what:"Runs.Config" ~n:c.n ~clients
      (List.sort_uniq Int.compare (List.map snd c.faults.Faults.crash_at));
    (match c.quorum with
    | Some q when q < 1 || q > c.n -> bad "quorum out of range"
    | _ -> ());
    if c.batch_window < 0 then bad "batch_window must be >= 0";
    if c.batch_max < 1 then bad "batch_max must be >= 1";
    match c.max_steps with
    | Some m when m < 1 -> bad "max_steps must be >= 1"
    | _ -> ()

  let json c =
    let int_list xs = Obs.Json.List (List.map (fun i -> Obs.Json.Int i) xs) in
    Obs.Json.Obj
      ([
         ("kind", Obs.Json.Str "chaos_config");
        ( "proto",
          Obs.Json.Str (match c.proto with Sw -> "abd" | Mw -> "mwabd") );
        ("n", Obs.Json.Int c.n);
        ("writers", int_list c.writers);
        ("writes_each", Obs.Json.Int c.writes_each);
        ("readers", int_list c.readers);
        ("reads_each", Obs.Json.Int c.reads_each);
        ("faults", Faults.plan_json c.faults);
        ("seed", Obs.Json.Str (Int64.to_string c.seed));
        ( "policy",
          Obs.Json.Str
            (match c.policy with
            | `Random -> "random"
            | `Round_robin -> "round_robin") );
        ( "max_steps",
          match c.max_steps with
          | Some m -> Obs.Json.Int m
          | None -> Obs.Json.Null );
        ( "quorum",
          match c.quorum with
          | Some q -> Obs.Json.Int q
          | None -> Obs.Json.Null );
        ( "persist",
          Obs.Json.Str
            (match c.persist with `Every -> "every" | `Never -> "never") );
        ("unsafe_recovery", Obs.Json.Bool c.unsafe_recovery);
      ]
      (* only when enabled: configs recorded before batching existed —
         and unbatched configs today — serialize exactly as before, so
         the committed corpus keeps replaying verbatim *)
      @
      if c.batch_window > 0 || c.batch_max > 1 then
        [
          ("batch_window", Obs.Json.Int c.batch_window);
          ("batch_max", Obs.Json.Int c.batch_max);
        ]
      else [])

  let of_json j =
    let ( let* ) = Result.bind in
    let field name conv =
      match Option.bind (Obs.Json.member name j) conv with
      | Some x -> Ok x
      | None ->
          Error (Printf.sprintf "Runs.Config.of_json: bad or missing %S" name)
    in
    let int_list v =
      Option.map (List.filter_map Obs.Json.to_int_opt) (Obs.Json.to_list_opt v)
    in
    let opt_int name =
      match Obs.Json.member name j with
      | None | Some Obs.Json.Null -> Ok None
      | Some v -> (
          match Obs.Json.to_int_opt v with
          | Some i -> Ok (Some i)
          | None -> Error (Printf.sprintf "Runs.Config.of_json: bad %S" name))
    in
    let* proto =
      field "proto" (fun v ->
          match Obs.Json.to_string_opt v with
          | Some "abd" -> Some Sw
          | Some "mwabd" -> Some Mw
          | _ -> None)
    in
    let* n = field "n" Obs.Json.to_int_opt in
    let* writers = field "writers" int_list in
    let* writes_each = field "writes_each" Obs.Json.to_int_opt in
    let* readers = field "readers" int_list in
    let* reads_each = field "reads_each" Obs.Json.to_int_opt in
    let* faults_j =
      match Obs.Json.member "faults" j with
      | Some v -> Ok v
      | None -> Error "Runs.Config.of_json: missing \"faults\""
    in
    let* faults = Faults.plan_of_json faults_j in
    let* seed =
      field "seed" (fun v ->
          Option.bind (Obs.Json.to_string_opt v) Int64.of_string_opt)
    in
    let* policy =
      field "policy" (fun v ->
          match Obs.Json.to_string_opt v with
          | Some "random" -> Some `Random
          | Some "round_robin" -> Some `Round_robin
          | _ -> None)
    in
    let* max_steps = opt_int "max_steps" in
    let* quorum = opt_int "quorum" in
    (* absent in pre-recovery corpus entries: default to the safe knobs *)
    let* persist =
      match Obs.Json.member "persist" j with
      | None -> Ok `Every
      | Some v -> (
          match Obs.Json.to_string_opt v with
          | Some "every" -> Ok `Every
          | Some "never" -> Ok `Never
          | _ -> Error "Runs.Config.of_json: bad \"persist\"")
    in
    let* unsafe_recovery =
      match Obs.Json.member "unsafe_recovery" j with
      | None -> Ok false
      | Some (Obs.Json.Bool b) -> Ok b
      | Some _ -> Error "Runs.Config.of_json: bad \"unsafe_recovery\""
    in
    (* absent in pre-batching entries (and in unbatched ones, which omit
       the keys): default to disabled *)
    let opt_int_default name d =
      match Obs.Json.member name j with
      | None | Some Obs.Json.Null -> Ok d
      | Some v -> (
          match Obs.Json.to_int_opt v with
          | Some i -> Ok i
          | None -> Error (Printf.sprintf "Runs.Config.of_json: bad %S" name))
    in
    let* batch_window = opt_int_default "batch_window" 0 in
    let* batch_max = opt_int_default "batch_max" 1 in
    let c =
      {
        proto;
        n;
        writers;
        writes_each;
        readers;
        reads_each;
        faults;
        seed;
        policy;
        max_steps;
        quorum;
        persist;
        unsafe_recovery;
        batch_window;
        batch_max;
      }
    in
    match validate c with
    | () -> Ok c
    | exception Invalid_argument msg -> Error msg
end

let execute_config ?metrics ?tracer (c : Config.t) =
  Config.validate c;
  let sched = Sched.create ~seed:c.Config.seed ?metrics ?tracer () in
  let fpolicy =
    if Faults.is_benign c.Config.faults then None
    else Some (Faults.create ~seed:(fault_seed c.Config.seed) c.Config.faults)
  in
  let remaining =
    ref (List.length c.Config.writers + List.length c.Config.readers)
  in
  (* generic over the register's message type: attach faults, spawn the
     client fibers, drive to quiescence under the configured policy *)
  let drive net ~obj ~crash ~recover ~write ~read =
    Option.iter (Net.set_faults net) fpolicy;
    Net.set_batching net ~window:c.Config.batch_window
      ~max:c.Config.batch_max;
    List.iter
      (fun w ->
        Sched.spawn sched ~pid:w (fun () ->
            for k = 1 to c.Config.writes_each do
              write w k
            done;
            decr remaining))
      c.Config.writers;
    List.iter
      (fun r ->
        Sched.spawn sched ~pid:r (fun () ->
            for _ = 1 to c.Config.reads_each do
              read r
            done;
            decr remaining))
      c.Config.readers;
    let rng = Simkit.Rng.create (Int64.logxor c.Config.seed 0x7E57AB1EL) in
    let base s =
      (match fpolicy with
      | Some f ->
          let step = Sched.steps sched in
          List.iter crash (Faults.crashes_due f ~step);
          List.iter recover (Faults.recoveries_due f ~step)
      | None -> ());
      if !remaining = 0 then Sched.Halt
      else
        match c.Config.policy with
        | `Random -> Sched.random_policy rng s
        | `Round_robin -> Sched.round_robin s
    in
    let policy = Net.auto_deliver_policy net ~rng base in
    let max_steps =
      match c.Config.max_steps with
      | Some m -> m
      | None -> Config.auto_max_steps c
    in
    let stalled = ref None in
    let steps =
      try Sched.run sched ~watchdog:(Net.watchdog net) ~policy ~max_steps
      with Sched.Stalled diag ->
        stalled := Some diag;
        Sched.steps sched
    in
    {
      history =
        History.Hist.project (Simkit.Trace.history (Sched.trace sched)) ~obj;
      trace = Sched.trace sched;
      completed = !remaining = 0;
      stalled = !stalled;
      steps;
    }
  in
  match c.Config.proto with
  | Config.Sw ->
      let writer = List.hd c.Config.writers in
      let reg =
        Abd.create ?quorum:c.Config.quorum ~persist:c.Config.persist
          ~unsafe_recovery:c.Config.unsafe_recovery ~sched ~name:"ABD"
          ~n:c.Config.n ~writer ~init:0 ()
      in
      drive (Abd.net reg) ~obj:"ABD"
        ~crash:(fun node -> Abd.crash_node reg ~node)
        ~recover:(fun node -> Abd.recover_node reg ~node)
        ~write:(fun _ k -> Abd.write reg (100 + k))
        ~read:(fun r -> ignore (Abd.read reg ~reader:r))
  | Config.Mw ->
      let reg =
        Mwabd.create ?quorum:c.Config.quorum ~persist:c.Config.persist
          ~unsafe_recovery:c.Config.unsafe_recovery ~sched ~name:"MW"
          ~n:c.Config.n ~init:0 ()
      in
      drive (Mwabd.net reg) ~obj:"MW"
        ~crash:(fun node -> Mwabd.crash_node reg ~node)
        ~recover:(fun node -> Mwabd.recover_node reg ~node)
        ~write:(fun w k -> Mwabd.write reg ~proc:w ((1000 * (w + 1)) + k))
        ~read:(fun r -> ignore (Mwabd.read reg ~reader:r))

let check ?metrics run =
  if not run.completed then
    Error
      (match run.stalled with
      | None -> "run did not complete"
      | Some diag -> "run stalled: " ^ Sched.stall_message diag)
  else if not (Linchk.Lincheck.check ?metrics ~init:(V.Int 0) run.history) then
    Error "history is not linearizable"
  else
    match Linchk.Fstar.wsl_function ?metrics ~init:(V.Int 0) run.history with
    | Ok _ -> Ok ()
    | Error e -> Error ("f* write-prefix property failed: " ^ e)
