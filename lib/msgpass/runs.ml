module V = History.Value
module Sched = Simkit.Sched
module Faults = Simkit.Faults

type workload = {
  n : int;
  writes : int;
  readers : int list;
  reads_each : int;
  crash : int list;
  faults : Faults.plan;
  seed : int64;
}

let default =
  {
    n = 5;
    writes = 4;
    readers = [ 1; 2 ];
    reads_each = 3;
    crash = [];
    faults = Faults.none;
    seed = 1L;
  }

type run = {
  history : History.Hist.t;
  trace : Simkit.Trace.t;
  completed : bool;
  stalled : string option;
  steps : int;
}

(* The fault policy draws from its own stream, derived from — but
   independent of — the scheduler seed, so adding faults never perturbs
   the scheduling/delivery randomness of the benign part of a run. *)
let fault_seed seed = Int64.logxor seed 0xFA17FA17L

let check_crashes ~what ~n ~clients crash_nodes =
  if List.length crash_nodes >= (n + 1) / 2 then
    invalid_arg (what ^ ": crash set must be a strict minority");
  List.iter
    (fun c ->
      if c < 0 || c >= n then invalid_arg (what ^ ": crash node out of range");
      if List.mem c clients then
        invalid_arg (what ^ ": crashed nodes cannot be clients"))
    crash_nodes

let execute ?metrics w =
  Faults.validate w.faults;
  let plan_crashes =
    List.sort_uniq Int.compare (List.map snd w.faults.Faults.crash_at)
  in
  check_crashes ~what:"Runs.execute" ~n:w.n ~clients:(0 :: w.readers)
    (List.sort_uniq Int.compare (w.crash @ plan_crashes));
  let sched = Sched.create ~seed:w.seed ?metrics () in
  let reg = Abd.create ~sched ~name:"ABD" ~n:w.n ~writer:0 ~init:0 () in
  let faults =
    if Faults.is_benign w.faults then None
    else begin
      let f = Faults.create ~seed:(fault_seed w.seed) w.faults in
      Net.set_faults (Abd.net reg) f;
      Some f
    end
  in
  let first_write_done = ref false in
  let remaining = ref (1 + List.length w.readers) in
  let finish () = decr remaining in
  Sched.spawn sched ~pid:0 (fun () ->
      for k = 1 to w.writes do
        Abd.write reg (100 + k);
        if k = 1 then first_write_done := true
      done;
      finish ());
  List.iter
    (fun r ->
      Sched.spawn sched ~pid:r (fun () ->
          for _ = 1 to w.reads_each do
            ignore (Abd.read reg ~reader:r)
          done;
          finish ()))
    w.readers;
  let rng = Simkit.Rng.create (Int64.logxor w.seed 0x9E3779B9L) in
  let crashed = ref false in
  let base_policy s =
    (* crash the chosen minority once the run is underway *)
    if (not !crashed) && !first_write_done then begin
      crashed := true;
      List.iter (fun node -> Abd.crash_node reg ~node) w.crash
    end;
    (* the fault plan's scheduled crashes, keyed on the step clock *)
    (match faults with
    | Some f ->
        List.iter
          (fun node -> Abd.crash_node reg ~node)
          (Faults.crashes_due f ~step:(Sched.steps sched))
    | None -> ());
    if !remaining = 0 then Sched.Halt else Sched.random_policy rng s
  in
  let policy = Net.auto_deliver_policy (Abd.net reg) ~rng base_policy in
  let max_steps =
    (w.writes + (List.length w.readers * w.reads_each)) * w.n * 600
  in
  let stalled = ref None in
  let steps =
    try Sched.run sched ~watchdog:(Net.watchdog (Abd.net reg)) ~policy ~max_steps
    with Sched.Stalled diag ->
      stalled := Some diag;
      Sched.steps sched
  in
  {
    history =
      History.Hist.project (Simkit.Trace.history (Sched.trace sched)) ~obj:"ABD";
    trace = Sched.trace sched;
    completed = !remaining = 0;
    stalled = !stalled;
    steps;
  }

(* multi-writer workload over the Mwabd register: several writer clients
   with globally distinct values, plus readers, random asynchrony *)
let execute_mw ?metrics ?(faults = Faults.none) ~n ~writers ~writes_each
    ~readers ~reads_each ~seed () =
  Faults.validate faults;
  let plan_crashes =
    List.sort_uniq Int.compare (List.map snd faults.Faults.crash_at)
  in
  check_crashes ~what:"Runs.execute_mw" ~n ~clients:(writers @ readers)
    plan_crashes;
  let sched = Sched.create ~seed ?metrics () in
  let reg = Mwabd.create ~sched ~name:"MW" ~n ~init:0 () in
  let fpolicy =
    if Faults.is_benign faults then None
    else begin
      let f = Faults.create ~seed:(fault_seed seed) faults in
      Net.set_faults (Mwabd.net reg) f;
      Some f
    end
  in
  let remaining = ref (List.length writers + List.length readers) in
  List.iter
    (fun wnode ->
      Sched.spawn sched ~pid:wnode (fun () ->
          for k = 1 to writes_each do
            Mwabd.write reg ~proc:wnode ((1000 * (wnode + 1)) + k)
          done;
          decr remaining))
    writers;
  List.iter
    (fun rnode ->
      Sched.spawn sched ~pid:rnode (fun () ->
          for _ = 1 to reads_each do
            ignore (Mwabd.read reg ~reader:rnode)
          done;
          decr remaining))
    readers;
  let rng = Simkit.Rng.create (Int64.logxor seed 0x7E57AB1EL) in
  let policy s =
    (match fpolicy with
    | Some f ->
        List.iter
          (fun node -> Mwabd.crash_node reg ~node)
          (Faults.crashes_due f ~step:(Sched.steps sched))
    | None -> ());
    if !remaining = 0 then Sched.Halt else Sched.random_policy rng s
  in
  let policy = Net.auto_deliver_policy (Mwabd.net reg) ~rng policy in
  let ops = (List.length writers * writes_each) + (List.length readers * reads_each) in
  let max_steps = ops * n * 800 in
  let stalled = ref None in
  let steps =
    try
      Sched.run sched ~watchdog:(Net.watchdog (Mwabd.net reg)) ~policy ~max_steps
    with Sched.Stalled diag ->
      stalled := Some diag;
      Sched.steps sched
  in
  {
    history =
      History.Hist.project (Simkit.Trace.history (Sched.trace sched)) ~obj:"MW";
    trace = Sched.trace sched;
    completed = !remaining = 0;
    stalled = !stalled;
    steps;
  }

let check ?metrics run =
  if not run.completed then
    Error
      (match run.stalled with
      | None -> "run did not complete"
      | Some diag -> "run stalled: " ^ diag)
  else if not (Linchk.Lincheck.check ?metrics ~init:(V.Int 0) run.history) then
    Error "history is not linearizable"
  else
    match Linchk.Fstar.wsl_function ?metrics ~init:(V.Int 0) run.history with
    | Ok _ -> Ok ()
    | Error e -> Error ("f* write-prefix property failed: " ^ e)
