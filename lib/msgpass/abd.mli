(** The ABD register (Attiya, Bar-Noy, Dolev 1995): a linearizable SWMR
    register in an asynchronous message-passing system where fewer than
    half of the nodes may crash.

    The paper's §6 discusses ABD as the canonical bridge between
    message-passing and shared-memory systems, notes that it is {e not}
    strongly linearizable [20], and proves (Theorem 14) that — like every
    linearizable SWMR implementation — it {e is} write strongly-
    linearizable.  Experiment E6 runs this implementation under random
    asynchrony and crashes, checks every produced history for
    linearizability, and applies the [f*] construction of Theorem 14 to
    every prefix chain to confirm the write-prefix property.

    Protocol (one writer, [n] nodes, majorities of size [⌊n/2⌋+1]):
    - {b write(v)}: the writer increments its local sequence number [ts],
      broadcasts [Write_req(ts, v)], and returns once a majority of nodes
      acknowledged storing the pair;
    - {b read()}: the reader broadcasts a query, collects a majority of
      (ts, v) replies, selects the pair with the largest [ts], {e writes
      it back} to a majority (the famous "readers must write" phase —
      without it two sequential reads could observe new-then-old), and
      returns [v].

    Each node runs a server fiber (pid [100 + node]) holding its replica
    and a client fiber (pid [node]) issuing operations.

    {b Fault tolerance.}  The client phases are hardened against lossy
    links (see {!Simkit.Faults} / {!Net.set_faults}): every reply carries
    the responding replica's node index and quorums count {e distinct}
    nodes, so duplicated messages can never double-count; requests are
    retransmitted to the not-yet-heard replicas after [retry_after]
    fruitless yields (a deterministic step-count timeout), and the server
    handlers are idempotent, so both operations terminate under any fault
    plan that keeps a majority of replicas reachable.  Stale or mismatched
    replies are counted as [reg.abd.stale], retransmission rounds as
    [reg.abd.retransmits]. *)

type t

type msg
(** Protocol messages (abstract; exposed so callers can thread the
    register's network into a delivery policy). *)

val net : t -> msg Net.t

type persist = [ `Every | `Never ]
(** The replica's sync-point discipline: [`Every] makes each accepted
    update durable before it is acknowledged (write-through — safe under
    any recovery mode); [`Never] leaves updates in the volatile tail of
    the write-ahead log, so a crash rolls the replica's durable copy back
    to its last sync (only the initial state, for [`Never]). *)

val create :
  ?retry_after:int ->
  ?quorum:int ->
  ?persist:persist ->
  ?unsafe_recovery:bool ->
  ?compact:bool ->
  sched:Simkit.Sched.t ->
  name:string ->
  n:int ->
  writer:int ->
  init:int ->
  unit ->
  t
(** [n >= 2] nodes ([< 100]); spawns the [n] server fibers.  Client code
    runs in the node fibers the caller spawns.  [retry_after] (default 25;
    [<= 0] disables) is the client retransmission timeout in own-fiber
    yields.

    [quorum] (default the majority [⌊n/2⌋+1]) overrides how many distinct
    replies each round waits for.  {b Test-only bug injection}: any value
    with [2*quorum <= n] breaks quorum intersection and with it
    linearizability — it exists so the chaos self-test (E12) can prove the
    monitor → shrinker → corpus loop catches a real protocol bug.  Every
    round records the size it waited for in the [reg.abd.quorum.need]
    histogram, which is what the quorum-sanity monitor audits.

    [persist] (default [`Every]) is the replica sync-point policy backing
    each node's {!Simkit.Stable} log.  [unsafe_recovery] (default
    [false]) makes {!recover_node} skip the state-transfer handshake and
    serve straight from the durable copy.  {b Test-only bug injection}:
    with [`Never] persistence an unsafe recovery rejoins quorums with
    rolled-back state, breaking quorum intersection across the crash —
    the seeded bug the recovery-sanity monitor catches (counted as
    [reg.abd.amnesia]).

    [compact] (default [false]) turns on {!Simkit.Stable}'s automatic log
    compaction: each persist prunes the durable prefix down to its newest
    record, keeping per-node stable storage O(volatile tail) instead of
    O(operations).  Recovery semantics are unchanged ([last_durable] is
    always retained) — the fleet engine sets this so memory stays flat
    across millions of operations. *)

val name : t -> string
val n : t -> int
val writer : t -> int
val majority : t -> int

val write : t -> int -> unit
(** Writer-client operation; must run in fiber [writer].
    @raise Invalid_argument from a non-writer fiber's pid. *)

val read : t -> reader:int -> int
(** Reader-client operation; must run in fiber [reader]. *)

val crash_node : t -> node:int -> unit
(** Crash a node's server (and its client fiber if spawned): it stops
    acknowledging, and the un-persisted suffix of its stable-storage log
    is lost.  The caller is responsible for keeping a majority alive. *)

val recover_node : t -> node:int -> unit
(** Crash–recovery: restart a crashed node's server with a bumped
    incarnation and a fresh mailbox.  The new incarnation reloads the
    durable register copy, then runs a {e state-transfer handshake} —
    read back from a majority of the {e other} replicas (self-exclusion
    keeps an amnesiac copy from vouching for itself), adopt the largest
    timestamp, persist, and only then serve — so a recovered replica can
    never answer quorums with state older than what its pre-crash
    incarnation acknowledged.  With [unsafe_recovery] the handshake is
    skipped.  Counted as [reg.abd.recoveries]; handshakes as
    [reg.abd.state_transfer]; lossy unsafe rejoins as [reg.abd.amnesia].
    @raise Invalid_argument if the node's server has not crashed. *)

val server_pid : node:int -> int
