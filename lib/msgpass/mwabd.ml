module V = History.Value
module Op = History.Op
module Trace = Simkit.Trace
module Sched = Simkit.Sched

(* timestamps ⟨sq, pid⟩, compared lexicographically *)
let ts_compare (sq1, p1) (sq2, p2) =
  match Int.compare sq1 sq2 with 0 -> Int.compare p1 p2 | c -> c

(* As in Abd, replies carry the responding replica's node index so the
   client quorum loops count distinct nodes — idempotent under message
   duplication and retransmission. *)
type msg =
  | Ts_req of { rid : int }
  | Ts_reply of { rid : int; node : int; sq : int }
  | Write_req of { wid : int; sq : int; pid : int; v : int }
  | Write_ack of { wid : int; node : int }
  | Read_req of { rid : int }
  | Read_reply of { rid : int; node : int; sq : int; pid : int; v : int }
  | Wb_req of { rid : int; sq : int; pid : int; v : int }
  | Wb_ack of { rid : int; node : int }
  (* state-transfer recovery handshake, as in Abd *)
  | Rec_req of { rid : int; node : int }
  | Rec_reply of { rid : int; node : int; sq : int; pid : int; v : int }

type replica = { mutable sq : int; mutable pid : int; mutable v : int }

type persist = [ `Every | `Never ]

type t = {
  sched : Sched.t;
  name_ : string;
  n_ : int;
  init_ : int;
  retry_ : int; (* client retransmission timeout, in own-fiber yields *)
  quorum_ : int; (* replies per round; majority unless overridden *)
  persist_ : persist;
  unsafe_recovery_ : bool;
  net : msg Net.t;
  replicas : replica array;
  stable : (int * int * int) Simkit.Stable.t; (* per-node (sq, pid, v) log *)
  lost_at_crash : int array; (* records lost by each node's last crash *)
  mutable seq : int; (* fresh request ids *)
  mutable recseq : int; (* fresh state-transfer round ids *)
  (* metric handles, resolved once at creation (hot-path discipline) *)
  quorum_need_h : Obs.Metrics.Hist.t;
  stale_c : Obs.Metrics.Counter.t;
  retransmits_c : Obs.Metrics.Counter.t;
  writes_c : Obs.Metrics.Counter.t;
  reads_c : Obs.Metrics.Counter.t;
  recoveries_c : Obs.Metrics.Counter.t;
  state_transfer_c : Obs.Metrics.Counter.t;
  amnesia_c : Obs.Metrics.Counter.t;
}

let server_pid ~node = 100 + node
let client_of rid = rid / 1_000_000

(* flight-recorder op-phase events, mirroring Abd (category "reg") *)
let trc t = Sched.tracer t.sched

let emit_op t ~pid ~parent name args =
  let tr = trc t in
  if Obs.Tracer.armed tr then
    Obs.Tracer.emit tr ~track:pid ~parent
      ~args:(("obj", Obs.Json.Str t.name_) :: args)
      ~sim:(Sched.steps t.sched) ~cat:"reg" name
  else -1

(* apply an accepted update and write it ahead to stable storage; see
   Abd.store for the persist-policy semantics *)
let store t ~node rep ~sq ~pid ~v =
  rep.sq <- sq;
  rep.pid <- pid;
  rep.v <- v;
  Simkit.Stable.append t.stable ~node (sq, pid, v);
  if t.persist_ = `Every then
    ignore
      (emit_op t ~pid:(server_pid ~node) ~parent:(-1) "persist"
         [ ("node", Obs.Json.Int node); ("sq", Obs.Json.Int sq) ])

let server t node () =
  let me = server_pid ~node in
  let rep = t.replicas.(node) in
  while true do
    match Net.recv t.net ~pid:me with
    | Ts_req { rid } ->
        Net.send t.net ~src:me ~dst:(client_of rid)
          (Ts_reply { rid; node; sq = rep.sq })
    | Write_req { wid; sq; pid; v } ->
        (* idempotent: duplicates re-ack without re-applying *)
        if ts_compare (sq, pid) (rep.sq, rep.pid) > 0 then
          store t ~node rep ~sq ~pid ~v;
        Net.send t.net ~src:me ~dst:(client_of wid) (Write_ack { wid; node })
    | Read_req { rid } ->
        Net.send t.net ~src:me ~dst:(client_of rid)
          (Read_reply { rid; node; sq = rep.sq; pid = rep.pid; v = rep.v })
    | Wb_req { rid; sq; pid; v } ->
        if ts_compare (sq, pid) (rep.sq, rep.pid) > 0 then
          store t ~node rep ~sq ~pid ~v;
        Net.send t.net ~src:me ~dst:(client_of rid) (Wb_ack { rid; node })
    | Rec_req { rid; node = who } ->
        Net.send t.net ~src:me
          ~dst:(server_pid ~node:who)
          (Rec_reply { rid; node; sq = rep.sq; pid = rep.pid; v = rep.v })
    | Rec_reply _ ->
        (* state-transfer reply landing after the handshake: stale *)
        Obs.Metrics.incr_h t.stale_c
    | Ts_reply _ | Write_ack _ | Read_reply _ | Wb_ack _ -> assert false
  done

let create ?(retry_after = 25) ?quorum ?(persist = `Every)
    ?(unsafe_recovery = false) ?(compact = false) ~sched ~name ~n ~init () =
  if n < 2 then invalid_arg "Mwabd.create: n must be >= 2";
  if n >= 100 then invalid_arg "Mwabd.create: n must be < 100";
  let quorum_ = match quorum with Some q -> q | None -> (n / 2) + 1 in
  if quorum_ < 1 || quorum_ > n then
    invalid_arg "Mwabd.create: quorum out of range";
  let m = Sched.metrics sched in
  let stable =
    Simkit.Stable.create ~metrics:m ~auto_compact:compact
      ~policy:(match persist with `Every -> Simkit.Stable.Every | `Never -> Simkit.Stable.Explicit)
      ~n ()
  in
  let t =
    {
      sched;
      name_ = name;
      n_ = n;
      init_ = init;
      retry_ = retry_after;
      quorum_;
      persist_ = persist;
      unsafe_recovery_ = unsafe_recovery;
      net = Net.create ~sched ~n:200;
      replicas = Array.init n (fun node -> { sq = 0; pid = node; v = init });
      stable;
      lost_at_crash = Array.make n 0;
      seq = 0;
      recseq = 0;
      quorum_need_h = Obs.Metrics.hist_h m "reg.mwabd.quorum.need";
      stale_c = Obs.Metrics.counter_h m "reg.mwabd.stale";
      retransmits_c = Obs.Metrics.counter_h m "reg.mwabd.retransmits";
      writes_c = Obs.Metrics.counter_h m "reg.mwabd.writes";
      reads_c = Obs.Metrics.counter_h m "reg.mwabd.reads";
      recoveries_c = Obs.Metrics.counter_h m "reg.mwabd.recoveries";
      state_transfer_c = Obs.Metrics.counter_h m "reg.mwabd.state_transfer";
      amnesia_c = Obs.Metrics.counter_h m "reg.mwabd.amnesia";
    }
  in
  for node = 0 to n - 1 do
    (* the initial register copy is durable whatever the policy *)
    Simkit.Stable.append t.stable ~node (0, node, init);
    Simkit.Stable.persist t.stable ~node;
    Sched.spawn sched ~pid:(server_pid ~node) (server t node)
  done;
  t

let net t = t.net
let majority t = (t.n_ / 2) + 1

let send_to t ~src ~node payload =
  Net.send t.net ~src ~dst:(server_pid ~node) payload

let broadcast_servers t ~src payload =
  for node = 0 to t.n_ - 1 do
    send_to t ~src ~node payload
  done

let fresh_rid t ~client =
  t.seq <- t.seq + 1;
  (client * 1_000_000) + t.seq

(* one round trip, shared with Abd via Net.collect_quorum: broadcast,
   count matching replies from distinct replicas, retransmit to the
   missing ones on a step-count timeout.  [pseq] is the invoke event
   this round belongs to (-1 untraced). *)
let quorum_round t ~pid ~pseq ~payload ~classify =
  (* see Abd.quorum_round: the quorum-sanity monitor audits this *)
  Obs.Metrics.observe_h t.quorum_need_h (float_of_int t.quorum_);
  let rseq =
    emit_op t ~pid ~parent:pseq "round" [ ("need", Obs.Json.Int t.quorum_) ]
  in
  Obs.Tracer.set_ctx (trc t) rseq;
  broadcast_servers t ~src:pid payload;
  let seen = Array.make t.n_ false in
  Net.collect_quorum t.net ~pid ~need:t.quorum_ ~seen ~classify
    ~stale:(fun () -> Obs.Metrics.incr_h t.stale_c)
    ~retry_after:t.retry_
    ~resend:(fun ~missing ->
      Obs.Metrics.incr_h t.retransmits_c;
      ignore
        (emit_op t ~pid ~parent:rseq "retransmit"
           [ ("missing", Obs.Json.Int (List.length missing)) ]);
      Obs.Tracer.set_ctx (trc t) rseq;
      List.iter (fun node -> send_to t ~src:pid ~node payload) missing);
  Obs.Tracer.set_ctx (trc t) pseq

let write t ~proc v =
  Obs.Metrics.incr_h t.writes_c;
  let tr = Sched.trace t.sched in
  let op_id = Trace.invoke tr ~proc ~obj:t.name_ ~kind:(Op.Write (V.Int v)) in
  let pseq =
    emit_op t ~pid:proc ~parent:(-1) "invoke"
      [ ("op", Obs.Json.Int op_id); ("kind", Obs.Json.Str "write");
        ("v", Obs.Json.Int v) ]
  in
  (* phase 1: query a majority for sequence numbers.  Updating [max_sq]
     from a duplicate reply of an already-counted node is safe: a larger
     bound only pushes our Lamport timestamp higher. *)
  let rid = fresh_rid t ~client:proc in
  let max_sq = ref 0 in
  quorum_round t ~pid:proc ~pseq ~payload:(Ts_req { rid })
    ~classify:(function
      | Ts_reply { rid = rid'; node; sq } when rid' = rid ->
          if sq > !max_sq then max_sq := sq;
          Some node
      | _ -> None);
  (* phase 2: push (v, ⟨max+1, proc⟩) to a majority *)
  let wid = fresh_rid t ~client:proc in
  quorum_round t ~pid:proc ~pseq
    ~payload:(Write_req { wid; sq = !max_sq + 1; pid = proc; v })
    ~classify:(function
      | Write_ack { wid = wid'; node } when wid' = wid -> Some node
      | _ -> None);
  ignore
    (emit_op t ~pid:proc ~parent:pseq "respond"
       [ ("op", Obs.Json.Int op_id) ]);
  Obs.Tracer.set_ctx (trc t) (-1);
  Trace.respond tr ~op_id ~result:None

let read t ~reader =
  Obs.Metrics.incr_h t.reads_c;
  let tr = Sched.trace t.sched in
  let op_id = Trace.invoke tr ~proc:reader ~obj:t.name_ ~kind:Op.Read in
  let pseq =
    emit_op t ~pid:reader ~parent:(-1) "invoke"
      [ ("op", Obs.Json.Int op_id); ("kind", Obs.Json.Str "read") ]
  in
  let rid = fresh_rid t ~client:reader in
  let best = ref (-1, -1, 0) in
  quorum_round t ~pid:reader ~pseq ~payload:(Read_req { rid })
    ~classify:(function
      | Read_reply { rid = rid'; node; sq; pid; v } when rid' = rid ->
          let bsq, bpid, _ = !best in
          if ts_compare (sq, pid) (bsq, bpid) > 0 then best := (sq, pid, v);
          Some node
      | _ -> None);
  let sq, pid, v = !best in
  let wbid = fresh_rid t ~client:reader in
  quorum_round t ~pid:reader ~pseq
    ~payload:(Wb_req { rid = wbid; sq; pid; v })
    ~classify:(function
      | Wb_ack { rid = rid'; node } when rid' = wbid -> Some node
      | _ -> None);
  ignore
    (emit_op t ~pid:reader ~parent:pseq "respond"
       [ ("op", Obs.Json.Int op_id); ("v", Obs.Json.Int v) ]);
  Obs.Tracer.set_ctx (trc t) (-1);
  Trace.respond tr ~op_id ~result:(Some (V.Int v));
  v

let crash_node t ~node =
  (* the un-persisted stable-storage suffix dies with the node *)
  if not (Sched.crashed t.sched ~pid:(server_pid ~node)) then
    t.lost_at_crash.(node) <- Simkit.Stable.crash t.stable ~node;
  Sched.crash t.sched ~pid:(server_pid ~node);
  (match Sched.status t.sched ~pid:node with
  | exception Invalid_argument _ -> ()
  | _ -> Sched.crash t.sched ~pid:node);
  Net.mark_dead t.net ~pid:(server_pid ~node);
  Net.drop_to t.net ~dst:(server_pid ~node)

(* restart path, mirroring Abd.recovering_server: reload the durable
   copy, state-transfer from a majority of the others, then serve *)
let recovering_server t node () =
  let me = server_pid ~node in
  let rep = t.replicas.(node) in
  (match Simkit.Stable.last_durable t.stable ~node with
  | Some (sq, pid, v) ->
      rep.sq <- sq;
      rep.pid <- pid;
      rep.v <- v
  | None ->
      rep.sq <- 0;
      rep.pid <- node;
      rep.v <- t.init_);
  if t.unsafe_recovery_ then begin
    if t.lost_at_crash.(node) > 0 then Obs.Metrics.incr_h t.amnesia_c;
    ignore
      (emit_op t ~pid:me ~parent:(-1) "recover_unsafe"
         [
           ("node", Obs.Json.Int node);
           ("lost", Obs.Json.Int t.lost_at_crash.(node));
         ])
  end
  else begin
    Obs.Metrics.incr_h t.state_transfer_c;
    Obs.Metrics.observe_h t.quorum_need_h (float_of_int (majority t));
    t.recseq <- t.recseq + 1;
    let rid = t.recseq in
    let pseq =
      emit_op t ~pid:me ~parent:(-1) "state_transfer"
        [ ("node", Obs.Json.Int node) ]
    in
    Obs.Tracer.set_ctx (trc t) pseq;
    let payload = Rec_req { rid; node } in
    for peer = 0 to t.n_ - 1 do
      if peer <> node then send_to t ~src:me ~node:peer payload
    done;
    (* a majority of the OTHER replicas; self is pre-marked in [seen]
       (hence majority + 1) so resends skip it — see Abd *)
    let seen = Array.make t.n_ false in
    seen.(node) <- true;
    let best = ref (rep.sq, rep.pid, rep.v) in
    Net.collect_quorum t.net ~pid:me ~need:(majority t + 1) ~seen
      ~classify:(function
        | Rec_reply { rid = rid'; node = peer; sq; pid; v } when rid' = rid ->
            let bsq, bpid, _ = !best in
            if ts_compare (sq, pid) (bsq, bpid) > 0 then best := (sq, pid, v);
            Some peer
        | _ -> None)
      ~stale:(fun () -> Obs.Metrics.incr_h t.stale_c)
      ~retry_after:t.retry_
      ~resend:(fun ~missing ->
        Obs.Metrics.incr_h t.retransmits_c;
        ignore
          (emit_op t ~pid:me ~parent:pseq "retransmit"
             [ ("missing", Obs.Json.Int (List.length missing)) ]);
        Obs.Tracer.set_ctx (trc t) pseq;
        List.iter (fun peer -> send_to t ~src:me ~node:peer payload) missing);
    let sq, pid, v = !best in
    if ts_compare (sq, pid) (rep.sq, rep.pid) > 0 then begin
      rep.sq <- sq;
      rep.pid <- pid;
      rep.v <- v;
      Simkit.Stable.append t.stable ~node (sq, pid, v)
    end;
    Simkit.Stable.persist t.stable ~node;
    ignore
      (emit_op t ~pid:me ~parent:pseq "persist"
         [ ("node", Obs.Json.Int node); ("sq", Obs.Json.Int rep.sq) ]);
    Obs.Tracer.set_ctx (trc t) (-1)
  end;
  server t node ()

let recover_node t ~node =
  let spid = server_pid ~node in
  Net.revive t.net ~pid:spid;
  ignore (Sched.restart t.sched ~pid:spid (recovering_server t node));
  Obs.Metrics.incr_h t.recoveries_c
