module V = History.Value
module Op = History.Op
module Trace = Simkit.Trace
module Sched = Simkit.Sched

(* timestamps ⟨sq, pid⟩, compared lexicographically *)
let ts_compare (sq1, p1) (sq2, p2) =
  match Int.compare sq1 sq2 with 0 -> Int.compare p1 p2 | c -> c

type msg =
  | Ts_req of { rid : int }
  | Ts_reply of { rid : int; sq : int }
  | Write_req of { wid : int; sq : int; pid : int; v : int }
  | Write_ack of { wid : int }
  | Read_req of { rid : int }
  | Read_reply of { rid : int; sq : int; pid : int; v : int }
  | Wb_req of { rid : int; sq : int; pid : int; v : int }
  | Wb_ack of { rid : int }

type replica = { mutable sq : int; mutable pid : int; mutable v : int }

type t = {
  sched : Sched.t;
  name_ : string;
  n_ : int;
  net : msg Net.t;
  replicas : replica array;
  mutable seq : int; (* fresh request ids *)
}

let server_pid ~node = 100 + node
let client_of rid = rid / 1_000_000

let server t node () =
  let me = server_pid ~node in
  let rep = t.replicas.(node) in
  while true do
    match Net.recv t.net ~pid:me with
    | Ts_req { rid } ->
        Net.send t.net ~src:me ~dst:(client_of rid) (Ts_reply { rid; sq = rep.sq })
    | Write_req { wid; sq; pid; v } ->
        if ts_compare (sq, pid) (rep.sq, rep.pid) > 0 then begin
          rep.sq <- sq;
          rep.pid <- pid;
          rep.v <- v
        end;
        Net.send t.net ~src:me ~dst:(client_of wid) (Write_ack { wid })
    | Read_req { rid } ->
        Net.send t.net ~src:me ~dst:(client_of rid)
          (Read_reply { rid; sq = rep.sq; pid = rep.pid; v = rep.v })
    | Wb_req { rid; sq; pid; v } ->
        if ts_compare (sq, pid) (rep.sq, rep.pid) > 0 then begin
          rep.sq <- sq;
          rep.pid <- pid;
          rep.v <- v
        end;
        Net.send t.net ~src:me ~dst:(client_of rid) (Wb_ack { rid })
    | Ts_reply _ | Write_ack _ | Read_reply _ | Wb_ack _ -> assert false
  done

let create ~sched ~name ~n ~init =
  if n < 2 then invalid_arg "Mwabd.create: n must be >= 2";
  if n >= 100 then invalid_arg "Mwabd.create: n must be < 100";
  let t =
    {
      sched;
      name_ = name;
      n_ = n;
      net = Net.create ~sched ~n:200;
      replicas = Array.init n (fun node -> { sq = 0; pid = node; v = init });
      seq = 0;
    }
  in
  for node = 0 to n - 1 do
    Sched.spawn sched ~pid:(server_pid ~node) (server t node)
  done;
  t

let net t = t.net
let majority t = (t.n_ / 2) + 1

let broadcast_servers t ~src payload =
  for node = 0 to t.n_ - 1 do
    Net.send t.net ~src ~dst:(server_pid ~node) payload
  done

let fresh_rid t ~client =
  t.seq <- t.seq + 1;
  (client * 1_000_000) + t.seq

let write t ~proc v =
  Obs.Metrics.incr (Sched.metrics t.sched) "reg.mwabd.writes";
  let tr = Sched.trace t.sched in
  let op_id = Trace.invoke tr ~proc ~obj:t.name_ ~kind:(Op.Write (V.Int v)) in
  (* phase 1: query a majority for sequence numbers *)
  let rid = fresh_rid t ~client:proc in
  broadcast_servers t ~src:proc (Ts_req { rid });
  let got = ref 0 and max_sq = ref 0 in
  while !got < majority t do
    match Net.recv t.net ~pid:proc with
    | Ts_reply { rid = rid'; sq } when rid' = rid ->
        incr got;
        if sq > !max_sq then max_sq := sq
    | _ -> ()
  done;
  (* phase 2: push (v, ⟨max+1, proc⟩) to a majority *)
  let wid = fresh_rid t ~client:proc in
  broadcast_servers t ~src:proc
    (Write_req { wid; sq = !max_sq + 1; pid = proc; v });
  let acks = ref 0 in
  while !acks < majority t do
    match Net.recv t.net ~pid:proc with
    | Write_ack { wid = wid' } when wid' = wid -> incr acks
    | _ -> ()
  done;
  Trace.respond tr ~op_id ~result:None

let read t ~reader =
  Obs.Metrics.incr (Sched.metrics t.sched) "reg.mwabd.reads";
  let tr = Sched.trace t.sched in
  let op_id = Trace.invoke tr ~proc:reader ~obj:t.name_ ~kind:Op.Read in
  let rid = fresh_rid t ~client:reader in
  broadcast_servers t ~src:reader (Read_req { rid });
  let got = ref 0 in
  let best = ref (-1, -1, 0) in
  while !got < majority t do
    match Net.recv t.net ~pid:reader with
    | Read_reply { rid = rid'; sq; pid; v } when rid' = rid ->
        incr got;
        let bsq, bpid, _ = !best in
        if ts_compare (sq, pid) (bsq, bpid) > 0 then best := (sq, pid, v)
    | _ -> ()
  done;
  let sq, pid, v = !best in
  let wbid = fresh_rid t ~client:reader in
  broadcast_servers t ~src:reader (Wb_req { rid = wbid; sq; pid; v });
  let acked = ref 0 in
  while !acked < majority t do
    match Net.recv t.net ~pid:reader with
    | Wb_ack { rid = rid' } when rid' = wbid -> incr acked
    | _ -> ()
  done;
  Trace.respond tr ~op_id ~result:(Some (V.Int v));
  v
