(** Workload drivers for the ABD experiments (E6, E10, E11). *)

type workload = {
  n : int;  (** nodes *)
  writes : int;  (** operations by the writer *)
  readers : int list;  (** client nodes issuing reads *)
  reads_each : int;
  crash : int list;  (** nodes crashed mid-run (must keep a majority) *)
  faults : Simkit.Faults.plan;
      (** deterministic link faults + scheduled crashes/partitions; drawn
          from a seed derived from [seed], so faulty and benign parts of a
          run stay independently reproducible *)
  seed : int64;
}

val default : workload
(** Benign: [faults = Simkit.Faults.none]. *)

type run = {
  history : History.Hist.t;  (** the ABD register's history *)
  trace : Simkit.Trace.t;  (** the full trace (for [rlin trace] JSONL dumps) *)
  completed : bool;  (** all client fibers finished *)
  stalled : string option;
      (** the watchdog's diagnostic dump, when {!Simkit.Sched.run}
          detected quiescent livelock instead of finishing *)
  steps : int;
}

val execute : ?metrics:Obs.Metrics.t -> workload -> run
(** Spawn the writer/reader clients, crash the requested minority after
    the first write completes (plus the fault plan's [crash_at] schedule,
    keyed on the scheduler's step clock), and drive everything with a
    random scheduler + random message delivery — under the workload's
    fault plan — until the clients finish, [Sched.run]'s budget runs out,
    or the network watchdog detects a stall.
    @raise Invalid_argument if the union of [crash] and the plan's
    [crash_at] nodes is not a strict minority or contains a client (the
    writer and readers must survive to finish their workloads). *)

val execute_mw :
  ?metrics:Obs.Metrics.t ->
  ?faults:Simkit.Faults.plan ->
  n:int ->
  writers:int list ->
  writes_each:int ->
  readers:int list ->
  reads_each:int ->
  seed:int64 ->
  unit ->
  run
(** Multi-writer workload over the {!Mwabd} register; write values are
    globally distinct so the exact checker applies.  [faults] (default
    {!Simkit.Faults.none}) works as in {!execute}; its [crash_at] nodes
    must be a strict minority disjoint from [writers] and [readers]. *)

val check : ?metrics:Obs.Metrics.t -> run -> (unit, string) result
(** Verify the run's history is linearizable (Lincheck) and that the
    [f*] construction of Theorem 14 yields monotone write orders on every
    prefix (write strong-linearizability, Fstar).  A stalled run reports
    the watchdog diagnostic. *)
