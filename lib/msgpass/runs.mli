(** Workload drivers for the ABD experiments (E6). *)

type workload = {
  n : int;  (** nodes *)
  writes : int;  (** operations by the writer *)
  readers : int list;  (** client nodes issuing reads *)
  reads_each : int;
  crash : int list;  (** nodes crashed mid-run (must keep a majority) *)
  seed : int64;
}

val default : workload

type run = {
  history : History.Hist.t;  (** the ABD register's history *)
  trace : Simkit.Trace.t;  (** the full trace (for [rlin trace] JSONL dumps) *)
  completed : bool;  (** all client fibers finished *)
  steps : int;
}

val execute : ?metrics:Obs.Metrics.t -> workload -> run
(** Spawn the writer/reader clients, crash the requested minority after
    the first write completes, and drive everything with a random
    scheduler + random message delivery until the clients finish.
    @raise Invalid_argument if the crash set is not a minority or contains
    the writer (the writer must survive to finish its workload). *)

val execute_mw :
  ?metrics:Obs.Metrics.t ->
  n:int ->
  writers:int list ->
  writes_each:int ->
  readers:int list ->
  reads_each:int ->
  seed:int64 ->
  unit ->
  run
(** Multi-writer workload over the {!Mwabd} register (no crashes); write
    values are globally distinct so the exact checker applies. *)

val check : ?metrics:Obs.Metrics.t -> run -> (unit, string) result
(** Verify the run's history is linearizable (Lincheck) and that the
    [f*] construction of Theorem 14 yields monotone write orders on every
    prefix (write strong-linearizability, Fstar). *)
