(** Workload drivers for the ABD experiments (E6, E10, E11). *)

type workload = {
  n : int;  (** nodes *)
  writes : int;  (** operations by the writer *)
  readers : int list;  (** client nodes issuing reads *)
  reads_each : int;
  crash : int list;  (** nodes crashed mid-run (must keep a majority) *)
  faults : Simkit.Faults.plan;
      (** deterministic link faults + scheduled crashes/partitions; drawn
          from a seed derived from [seed], so faulty and benign parts of a
          run stay independently reproducible *)
  seed : int64;
}

val default : workload
(** Benign: [faults = Simkit.Faults.none]. *)

type run = {
  history : History.Hist.t;  (** the ABD register's history *)
  trace : Simkit.Trace.t;  (** the full trace (for [rlin trace] JSONL dumps) *)
  completed : bool;  (** all client fibers finished *)
  stalled : Simkit.Sched.stall option;
      (** the watchdog's structured diagnostic, when {!Simkit.Sched.run}
          detected quiescent livelock instead of finishing; render with
          {!Simkit.Sched.stall_message} / {!Simkit.Sched.stall_json} *)
  steps : int;
}

val execute : ?metrics:Obs.Metrics.t -> ?tracer:Obs.Tracer.t -> workload -> run
(** Spawn the writer/reader clients, crash the requested minority after
    the first write completes (plus the fault plan's [crash_at] /
    [recover_at] schedules, keyed on the scheduler's step clock), and
    drive everything with a
    random scheduler + random message delivery — under the workload's
    fault plan — until the clients finish, [Sched.run]'s budget runs out,
    or the network watchdog detects a stall.
    @raise Invalid_argument if the union of [crash] and the plan's
    [crash_at] nodes is not a strict minority or contains a client (the
    writer and readers must survive to finish their workloads).

    [tracer] (default {!Obs.Tracer.null}) is handed to the scheduler, so
    an armed flight recorder captures the whole stack's causal events
    (see {!Simkit.Sched.create}). *)

val execute_mw :
  ?metrics:Obs.Metrics.t ->
  ?tracer:Obs.Tracer.t ->
  ?faults:Simkit.Faults.plan ->
  n:int ->
  writers:int list ->
  writes_each:int ->
  readers:int list ->
  reads_each:int ->
  seed:int64 ->
  unit ->
  run
(** Multi-writer workload over the {!Mwabd} register; write values are
    globally distinct so the exact checker applies.  [faults] (default
    {!Simkit.Faults.none}) works as in {!execute}; its [crash_at] nodes
    must be a strict minority disjoint from [writers] and [readers]. *)

val check : ?metrics:Obs.Metrics.t -> run -> (unit, string) result
(** Verify the run's history is linearizable (Lincheck) and that the
    [f*] construction of Theorem 14 yields monotone write orders on every
    prefix (write strong-linearizability, Fstar).  A stalled run reports
    the watchdog diagnostic. *)

val validate_crash_schedule :
  ?recoveries:(int * int) list ->
  what:string ->
  n:int ->
  clients:int list ->
  (int * int) list ->
  unit
(** Validate a [(step, node)] crash schedule against an [n]-node register
    with the given client nodes: the crashed set must be a strict
    minority of in-range non-client nodes.  [recoveries] (default [[]])
    is a matching [(step, node)] recovery schedule; per node, crash and
    recovery events must alternate starting with a crash at strictly
    increasing steps — in particular a recovery of a never-crashed node
    is rejected (see {!Simkit.Faults.validate}).
    @raise Invalid_argument otherwise, prefixed with [what]. *)

(** A self-contained, serializable description of one register run — the
    unit the chaos search samples, the shrinker minimizes, and the
    regression corpus replays.  Equal configs produce byte-for-byte equal
    runs. *)
module Config : sig
  type proto = Sw | Mw  (** {!Abd} (one writer) or {!Mwabd}. *)

  type t = {
    proto : proto;
    n : int;  (** nodes, in [\[2, 100)] *)
    writers : int list;  (** exactly one for [Sw]; [>= 1] for [Mw] *)
    writes_each : int;
    readers : int list;
    reads_each : int;
    faults : Simkit.Faults.plan;
    seed : int64;
    policy : [ `Random | `Round_robin ];
    max_steps : int option;  (** [None] = {!auto_max_steps} *)
    quorum : int option;
        (** test-only quorum override ({!Abd.create}); [None] = majority *)
    persist : [ `Every | `Never ];
        (** replica sync-point policy ({!Abd.persist}) *)
    unsafe_recovery : bool;
        (** skip the state-transfer recovery handshake — the test-only
            seeded bug ({!Abd.create}); safe only with [`Every] *)
    batch_window : int;
    batch_max : int;
        (** per-destination delivery batching ({!Net.set_batching});
            [0]/[1] (the defaults) disable it and reproduce the
            pre-batching byte-identical behaviour.  Unbatched configs
            omit the fields from {!json}, so pre-batching corpus entries
            replay verbatim. *)
  }

  val default : t
  val auto_max_steps : t -> int

  val obj : t -> string
  (** The register name used in the trace ("ABD" or "MW"). *)

  val validate : t -> unit
  (** @raise Invalid_argument on any ill-formed field (bad node counts,
      non-distinct clients, out-of-range crash schedule, invalid fault
      plan, quorum or step budget out of range). *)

  val json : t -> Obs.Json.t
  val of_json : Obs.Json.t -> (t, string) result
  (** Inverse of {!json}; validates the decoded config.  Entries written
      before the crash–recovery model lack ["persist"] /
      ["unsafe_recovery"] / ["recover_at"]; they decode to the safe
      defaults so the committed corpus keeps replaying verbatim. *)
end

val execute_config :
  ?metrics:Obs.Metrics.t -> ?tracer:Obs.Tracer.t -> Config.t -> run
(** Run a config to quiescence: attach its fault plan, spawn the writer
    and reader client fibers, apply the plan's [crash_at] and
    [recover_at] schedules on the step clock (crashes before recoveries
    within a tick), and drive with the configured scheduling policy until the
    clients finish, the step budget runs out, or the watchdog trips.
    Deterministic in the config alone — an armed [tracer] observes the
    run without perturbing it, so re-executing a violating config with a
    flight recorder reproduces the violation {e and} its event stream.
    @raise Invalid_argument if {!Config.validate} does. *)
