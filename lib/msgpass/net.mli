(** An asynchronous message-passing network on top of the simulator.

    By default messages are reliable but arbitrarily delayed and reordered:
    a send enqueues the message as {e in-flight}; it becomes receivable
    only once the delivery policy moves it to the destination's mailbox.
    Receivers block (yield) until their mailbox is non-empty.

    With a fault policy attached ({!set_faults}), every delivery attempt
    is additionally subject to the plan's drop / duplication / bounded-
    deferral probabilities and partition schedule, drawn from the policy's
    dedicated RNG (see {!Simkit.Faults}); the [net.faults.dropped/
    duplicated/delayed] counters and the [net.faults.partition_active]
    gauge record what fired.  Crash faults come from {!Simkit.Sched.crash}
    — and {!mark_dead} tells the network a destination died, so later
    deliveries to it are dropped and counted ([net.dead_letters]) instead
    of accumulating unread forever.

    The in-flight store is a growable ring buffer: send and [in_flight]
    are O(1), and [deliver_nth i] preserves the exact "i-th oldest,
    relative order kept" semantics the deterministic experiments rely on.

    The default {!auto_deliver_policy} delivers a uniformly random
    in-flight message between process steps, giving the random asynchrony
    the ABD experiments use; adversarial tests can instead call
    {!deliver_now}/{!deliver_from} to impose specific delivery orders.

    When the scheduler carries an armed {!Obs.Tracer}, the network emits
    causal events in category ["net"]: a [send] per enqueue (its sequence
    number is the message id), and per delivery attempt a [deliver],
    [drop], [dup] (via the extra deliver), or [dead_letter] whose causal
    parent is that send — the happens-before edges of the run.  A receive
    sets the tracer's ambient context to the consumed message's deliver
    event, so whatever the receiver does next (reply sends, response
    events) is chained to its cause. *)

type 'a t

val create : sched:Simkit.Sched.t -> n:int -> 'a t
(** Network among processes (fiber pids) [0 … n-1] and their server
    fibers; any pid registered with the scheduler may send/receive. *)

val set_faults : 'a t -> Simkit.Faults.t -> unit
(** Attach a fault policy, applied at delivery time.  A policy whose plan
    has no delivery-affecting fault (only crashes) is not attached, so the
    benign fast path stays draw-free. *)

val faults : 'a t -> Simkit.Faults.t option

val set_batching : 'a t -> window:int -> max:int -> unit
(** Per-destination message batching: when a delivery attempt selects an
    in-flight message for destination [d], up to [max - 1] further
    messages to [d] found among the oldest [window] flight positions are
    coalesced into the {e same} attempt, processed oldest-first — one
    attempt then moves a whole batch, which is what amortizes quorum
    round-trips at fleet scale (a server scheduled once drains [max]
    requests instead of one).

    What batching does {e not} change: every coalesced message still runs
    the full per-message fate logic — dead-destination check, partition
    hold, and its own fault draw ({!Simkit.Faults.draw}), in flight-list
    age order — so the fault-draw-per-message discipline and the "i-th
    oldest, relative order kept" index semantics of the un-coalesced
    paths are preserved exactly.  With [window = 0] or [max = 1]
    (the default) behaviour is identical to an unbatched network.

    Counters: [net.delivery_attempts] counts attempts (one per
    {!deliver_one}/{!deliver_now}/{!deliver_from}/[deliver_nth] call);
    [net.batch.coalesced] counts the extra messages batching moved.
    [net.delivered / net.delivery_attempts] is the amortization factor
    the fleet benches report.
    @raise Invalid_argument if [window < 0] or [max < 1]. *)

val batching_active : 'a t -> bool
(** Whether {!set_batching} enabled coalescing ([window > 0 && max > 1]). *)

val mark_dead : 'a t -> pid:int -> unit
(** Declare [pid] dead: its queued mail is discarded now and every later
    delivery addressed to it is dropped, both counted as
    [net.dead_letters].  Idempotent. *)

val is_dead : 'a t -> pid:int -> bool

val revive : 'a t -> pid:int -> unit
(** Undo {!mark_dead} for a recovering node: deliveries to [pid] reach a
    mailbox again.  The mailbox starts empty — everything addressed to
    the pre-crash incarnation was dead-lettered while the node was down,
    exactly the fresh-mailbox semantics of {!Simkit.Sched.restart}.
    No-op if [pid] is not dead. *)

val send : 'a t -> src:int -> dst:int -> 'a -> unit
(** Enqueue in-flight (no yield: sending is part of the current step). *)

val broadcast : 'a t -> src:int -> 'a -> unit
(** Send to all n base processes, including [src] (self-delivery is via
    the network too, keeping the quorum logic uniform). *)

val recv : 'a t -> pid:int -> 'a
(** Block (yield) until a delivered message for [pid] exists; dequeue the
    oldest.  Must be called within a fiber. *)

val try_recv : 'a t -> pid:int -> 'a option
(** Non-blocking variant (no yield). *)

val in_flight : 'a t -> int
(** Number of undelivered messages.  O(1). *)

val mailbox_size : 'a t -> pid:int -> int

val deliver_one : 'a t -> rng:Simkit.Rng.t -> bool
(** Attempt delivery of one uniformly random in-flight message; [false]
    if none are in flight.  With faults attached the attempt may drop,
    duplicate or defer instead of delivering. *)

val deliver_now : 'a t -> dst:int -> bool
(** Attempt delivery of the oldest in-flight message addressed to [dst]. *)

val deliver_from : 'a t -> src:int -> dst:int -> bool
(** Attempt delivery of the oldest in-flight message from [src] to [dst]
    — the fine-grained control the scripted adversarial scenarios need. *)

val deliver_all : 'a t -> unit
(** Flush every in-flight message (used to end experiments cleanly).
    Bypasses the fault policy — a drain must terminate whatever the plan
    — but still dead-letters messages to dead destinations. *)

val drop_to : 'a t -> dst:int -> unit
(** Discard all in-flight messages addressed to [dst] — used with
    {!Simkit.Sched.crash} to model a crashed node whose links die too. *)

val auto_deliver_policy :
  'a t -> rng:Simkit.Rng.t -> Simkit.Sched.policy -> Simkit.Sched.policy
(** Wrap a scheduling policy: before each decision, with probability ~1/2
    attempt a random delivery.  Keeps the network flowing under any
    process-scheduling policy. *)

val collect_quorum :
  'a t ->
  pid:int ->
  need:int ->
  seen:bool array ->
  classify:('a -> int option) ->
  stale:(unit -> unit) ->
  retry_after:int ->
  resend:(missing:int list -> unit) ->
  unit
(** The hardened client loop shared by the ABD registers: poll [pid]'s
    mailbox until [need] {e distinct} replica nodes have been counted in
    [seen].  [classify] maps a message to [Some node] (a matching reply
    from that replica — duplicates of an already-counted node are ignored,
    which is what makes retransmission + duplication faults safe for
    quorum counting) or [None] (a stale/mismatched reply, reported via
    [stale]).  After [retry_after] consecutive fruitless yields (a
    step-count timeout on this fiber's clock), [resend ~missing] is called
    with the replicas not yet heard from; [retry_after <= 0] disables
    retransmission (the pre-fault blocking behaviour).

    The {e incarnation rule}: every mailbox entry is stamped with its
    sender's incarnation at send time, and a reply whose stamp differs
    from the sender's {e current} {!Simkit.Sched.incarnation} is handed
    to [stale] without being classified.  A reply produced by a previous
    incarnation reflects state from before that node crashed, so it can
    never count toward a post-recovery quorum — this is what keeps
    quorum intersection sound across crash–recovery. *)

val describe : 'a t -> string
(** Structured diagnostic: in-flight messages as [src->dst] (with deferral
    counts), non-empty mailbox sizes, dead destinations — the network half
    of a watchdog stall report. *)

val watchdog : ?window:int -> 'a t -> Simkit.Sched.watchdog
(** A watchdog for {!Simkit.Sched.run} whose progress measure sums the
    network counters ([net.sends]/[delivered]/[dead_letters]/[faults.*]),
    [trace.responds], and the crash–recovery counters ([sched.restarts],
    [reg.*.state_transfer]) in this net's registry: it fires only on true
    quiescent livelock — no message activity, no operation completing and
    no node recovering for [window] (default 5000) consecutive steps. *)
