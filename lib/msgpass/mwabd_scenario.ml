module V = History.Value
module Hist = History.Hist
module Sched = Simkit.Sched
module Trace = Simkit.Trace

type outcome = {
  g : Hist.t;
  h1 : Hist.t;
  h2 : Hist.t;
  wsl_impossible : bool;
  chains_ok : bool;
  all_linearizable : bool;
}

let step sched pid = ignore (Sched.step sched ~pid)

(* deliver exactly one message from [src] to [dst] and fail loudly if it
   is not in flight (a mis-scripted schedule) *)
let deliver net ~src ~dst =
  if not (Net.deliver_from net ~src ~dst) then
    invalid_arg
      (Printf.sprintf "Mwabd_scenario: no in-flight message %d->%d" src dst)

(* deliver one message to a server and let it process it *)
let pump sched net ~src ~node =
  deliver net ~src ~dst:(Mwabd.server_pid ~node);
  step sched (Mwabd.server_pid ~node)

let prefix_upto_time h t =
  let k =
    List.length
      (List.filter (fun e -> e.History.Event.time <= t) (Hist.events h))
  in
  Hist.prefix h k

(* Build the common prefix G and return everything the branches need. *)
let build_g () =
  let sched = Sched.create ~seed:23L () in
  (* retransmission off: the scenario scripts exact message counts *)
  let reg = Mwabd.create ~retry_after:0 ~sched ~name:"MW" ~n:3 ~init:0 () in
  let net = Mwabd.net reg in
  Sched.spawn sched ~pid:0 (fun () -> Mwabd.write reg ~proc:0 301);
  Sched.spawn sched ~pid:1 (fun () -> Mwabd.write reg ~proc:1 302);
  Sched.spawn sched ~pid:2 (fun () -> ignore (Mwabd.read reg ~reader:2));
  (* w1: broadcast the timestamp query *)
  step sched 0;
  (* server 0 answers (sq 0); w1 collects it: 1 of 2 *)
  pump sched net ~src:0 ~node:0;
  deliver net ~src:(Mwabd.server_pid ~node:0) ~dst:0;
  step sched 0;
  (* server 1 computes a STALE reply (sq 0) that stays in flight *)
  pump sched net ~src:0 ~node:1;
  (* w2 runs to completion using servers 1 and 2 *)
  step sched 1;
  pump sched net ~src:1 ~node:1;
  pump sched net ~src:1 ~node:2;
  deliver net ~src:(Mwabd.server_pid ~node:1) ~dst:1;
  step sched 1;
  deliver net ~src:(Mwabd.server_pid ~node:2) ~dst:1;
  step sched 1;
  (* w2's Write_req (⟨1,1⟩, 302) to servers 1 and 2, then the acks *)
  pump sched net ~src:1 ~node:1;
  pump sched net ~src:1 ~node:2;
  deliver net ~src:(Mwabd.server_pid ~node:1) ~dst:1;
  step sched 1;
  deliver net ~src:(Mwabd.server_pid ~node:2) ~dst:1;
  step sched 1;
  (* w2 is complete; w1 still lacks one query reply *)
  (sched, reg, net, Trace.now (Sched.trace sched))

(* finish w1's write given that its pending quorum reply just arrived *)
let finish_w1 sched net =
  step sched 0 (* collect; form timestamp; broadcast Write_req *);
  pump sched net ~src:0 ~node:0;
  pump sched net ~src:0 ~node:1;
  deliver net ~src:(Mwabd.server_pid ~node:0) ~dst:0;
  step sched 0;
  deliver net ~src:(Mwabd.server_pid ~node:1) ~dst:0;
  step sched 0

(* the reader queries two servers, writes back, returns *)
let run_reader sched net ~nodes =
  let a, b = nodes in
  step sched 2 (* invoke, broadcast Read_req *);
  pump sched net ~src:2 ~node:a;
  pump sched net ~src:2 ~node:b;
  deliver net ~src:(Mwabd.server_pid ~node:a) ~dst:2;
  step sched 2;
  deliver net ~src:(Mwabd.server_pid ~node:b) ~dst:2;
  step sched 2 (* pick max; broadcast write-back *);
  pump sched net ~src:2 ~node:a;
  pump sched net ~src:2 ~node:b;
  deliver net ~src:(Mwabd.server_pid ~node:a) ~dst:2;
  step sched 2;
  deliver net ~src:(Mwabd.server_pid ~node:b) ~dst:2;
  step sched 2

let run () =
  (* --- branch H1: the stale sq-0 reply arrives; w1 gets ⟨1,0⟩ < ⟨1,1⟩ -- *)
  let sched_a, _reg_a, net_a, g_time_a = build_g () in
  deliver net_a ~src:(Mwabd.server_pid ~node:1) ~dst:0;
  finish_w1 sched_a net_a;
  run_reader sched_a net_a ~nodes:(1, 2);
  let h1 = Trace.history (Sched.trace sched_a) in
  let g_a = prefix_upto_time h1 g_time_a in
  (* --- branch H2: server 2 (which stores sq 1) answers; w1 gets ⟨2,0⟩ -- *)
  let sched_b, _reg_b, net_b, g_time_b = build_g () in
  pump sched_b net_b ~src:0 ~node:2;
  deliver net_b ~src:(Mwabd.server_pid ~node:2) ~dst:0;
  (* also flush the stale sq-0 reply into the mailbox AFTER the sq-1 one:
     the collect loop exits on the fresh reply and the ack loop ignores
     the stale one, keeping the (src,dst) FIFO clear for the acks *)
  deliver net_b ~src:(Mwabd.server_pid ~node:1) ~dst:0;
  finish_w1 sched_b net_b;
  run_reader sched_b net_b ~nodes:(0, 1);
  let h2 = Trace.history (Sched.trace sched_b) in
  let g_b = prefix_upto_time h2 g_time_b in
  if
    not
      (List.equal History.Event.equal_timed (Hist.events g_a)
         (Hist.events g_b))
  then invalid_arg "Mwabd_scenario: the two branches diverged inside G";
  (* sanity: the reads observed opposite writers *)
  let read_result h =
    Hist.reads h
    |> List.find_map (fun (o : History.Op.t) -> o.result)
  in
  if read_result h1 <> Some (V.Int 302) then
    invalid_arg "Mwabd_scenario: H1's read did not observe w2";
  if read_result h2 <> Some (V.Int 301) then
    invalid_arg "Mwabd_scenario: H2's read did not observe w1";
  let init = V.Int 0 in
  let tree =
    Linchk.Treecheck.node g_a
      [ Linchk.Treecheck.node h1 []; Linchk.Treecheck.node h2 [] ]
  in
  {
    g = g_a;
    h1;
    h2;
    wsl_impossible = not (Linchk.Treecheck.write_strong ~init tree);
    chains_ok =
      Linchk.Treecheck.write_strong ~init (Linchk.Treecheck.chain [ g_a; h1 ])
      && Linchk.Treecheck.write_strong ~init
           (Linchk.Treecheck.chain [ g_b; h2 ]);
    all_linearizable =
      List.for_all (Linchk.Lincheck.check ~init) [ g_a; h1; h2 ];
  }
