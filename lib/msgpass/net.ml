type 'a msg = { src : int; dst : int; payload : 'a }

(* An in-flight message and how often faults already deferred it (the
   reorder-window budget of Simkit.Faults).  [ev] is the flight-recorder
   sequence number of the send event (-1 when tracing is off): deliver
   events cite it as their causal parent, which is the message id that
   gives the exported trace its happens-before edges.  [inc] is the
   sender's incarnation number at send time (Sched.incarnation): it rides
   with the message into the mailbox so a quorum collector can tell a
   pre-crash ghost from a reply by the sender's current incarnation. *)
type 'a item = { m : 'a msg; mutable deferrals : int; ev : int; inc : int }

(* A growable ring buffer over the in-flight messages, oldest first.
   Replaces the previous O(n)-append list: push/length are O(1) and
   [remove i] shifts only the shorter side, while preserving the exact
   index semantics deliver_nth/deliver_one rely on (index i = i-th oldest,
   removal keeps the relative order of the rest). *)
module Dq = struct
  type 'a t = {
    mutable buf : 'a option array;
    mutable head : int; (* slot of the oldest element *)
    mutable len : int;
  }

  let create () = { buf = Array.make 16 None; head = 0; len = 0 }
  let length t = t.len

  let grow t =
    let cap = Array.length t.buf in
    let buf' = Array.make (2 * cap) None in
    for i = 0 to t.len - 1 do
      buf'.(i) <- t.buf.((t.head + i) mod cap)
    done;
    t.buf <- buf';
    t.head <- 0

  let push_back t x =
    if t.len = Array.length t.buf then grow t;
    t.buf.((t.head + t.len) mod Array.length t.buf) <- Some x;
    t.len <- t.len + 1

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Net: index out of bounds";
    match t.buf.((t.head + i) mod Array.length t.buf) with
    | Some x -> x
    | None -> assert false

  let remove t i =
    let x = get t i in
    let cap = Array.length t.buf in
    if i < t.len - 1 - i then begin
      (* shift the prefix towards the tail, advance head *)
      for k = i downto 1 do
        t.buf.((t.head + k) mod cap) <- t.buf.((t.head + k - 1) mod cap)
      done;
      t.buf.(t.head) <- None;
      t.head <- (t.head + 1) mod cap
    end
    else begin
      for k = i to t.len - 2 do
        t.buf.((t.head + k) mod cap) <- t.buf.((t.head + k + 1) mod cap)
      done;
      t.buf.((t.head + t.len - 1) mod cap) <- None
    end;
    t.len <- t.len - 1;
    x

  let find t p =
    let rec go i =
      if i >= t.len then None else if p (get t i) then Some i else go (i + 1)
    in
    go 0

  let iter t f =
    for i = 0 to t.len - 1 do
      f (get t i)
    done

  let to_list t = List.init t.len (get t)

  let clear t =
    Array.fill t.buf 0 (Array.length t.buf) None;
    t.head <- 0;
    t.len <- 0

  (* keep elements satisfying [p], preserving order; returns removed count *)
  let keep_if t p =
    let kept = List.filter p (to_list t) in
    let removed = t.len - List.length kept in
    clear t;
    List.iter (push_back t) kept;
    removed
end

type 'a t = {
  sched : Simkit.Sched.t;
  n : int;
  flight : 'a item Dq.t; (* oldest first *)
  (* a mailbox entry carries the deliver event's seq (-1 untraced), so a
     receive can restore the causal context to "caused by this message",
     plus the sender pid and the sender's incarnation at send time *)
  mailboxes : (int, ('a * int * int * int) Queue.t) Hashtbl.t;
  mutable dead : int list; (* destinations whose mail is dead-lettered *)
  mutable faults : Simkit.Faults.t option;
  (* per-destination batching (see set_batching): a delivery attempt for
     destination d additionally coalesces up to [batch_max - 1] more
     in-flight messages to d found in the oldest [batch_window] flight
     positions.  Disabled (window 0 / max 1) by default. *)
  mutable batch_window : int;
  mutable batch_max : int;
  trc : Obs.Tracer.t;
  (* metric handles, resolved once at creation (hot-path discipline) *)
  sends_c : Obs.Metrics.Counter.t;
  attempts_c : Obs.Metrics.Counter.t;
  coalesced_c : Obs.Metrics.Counter.t;
  delivered_c : Obs.Metrics.Counter.t;
  dead_letters_c : Obs.Metrics.Counter.t;
  dropped_c : Obs.Metrics.Counter.t;
  f_dropped_c : Obs.Metrics.Counter.t;
  f_duplicated_c : Obs.Metrics.Counter.t;
  f_delayed_c : Obs.Metrics.Counter.t;
  in_flight_g : Obs.Metrics.Gauge.t;
  partition_g : Obs.Metrics.Gauge.t;
}

let create ~sched ~n =
  if n < 1 then invalid_arg "Net.create: n must be >= 1";
  let reg = Simkit.Sched.metrics sched in
  {
    sched;
    n;
    flight = Dq.create ();
    mailboxes = Hashtbl.create 16;
    dead = [];
    faults = None;
    batch_window = 0;
    batch_max = 1;
    trc = Simkit.Sched.tracer sched;
    sends_c = Obs.Metrics.counter_h reg "net.sends";
    attempts_c = Obs.Metrics.counter_h reg "net.delivery_attempts";
    coalesced_c = Obs.Metrics.counter_h reg "net.batch.coalesced";
    delivered_c = Obs.Metrics.counter_h reg "net.delivered";
    dead_letters_c = Obs.Metrics.counter_h reg "net.dead_letters";
    dropped_c = Obs.Metrics.counter_h reg "net.dropped";
    f_dropped_c = Obs.Metrics.counter_h reg "net.faults.dropped";
    f_duplicated_c = Obs.Metrics.counter_h reg "net.faults.duplicated";
    f_delayed_c = Obs.Metrics.counter_h reg "net.faults.delayed";
    in_flight_g = Obs.Metrics.gauge_h reg "net.in_flight";
    partition_g = Obs.Metrics.gauge_h reg "net.faults.partition_active";
  }

let mailbox t pid =
  match Hashtbl.find_opt t.mailboxes pid with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add t.mailboxes pid q;
      q

let metrics t = Simkit.Sched.metrics t.sched

let set_faults t f =
  if Simkit.Faults.affects_delivery (Simkit.Faults.plan f) then
    t.faults <- Some f

let faults t = t.faults

let set_batching t ~window ~max =
  if window < 0 then invalid_arg "Net.set_batching: window must be >= 0";
  if max < 1 then invalid_arg "Net.set_batching: max must be >= 1";
  t.batch_window <- window;
  t.batch_max <- max

let batching_active t = t.batch_window > 0 && t.batch_max > 1

let mark_dead t ~pid =
  if not (List.mem pid t.dead) then begin
    t.dead <- pid :: t.dead;
    (* mail already delivered to the dead process will never be read *)
    let q = mailbox t pid in
    if Queue.length q > 0 then begin
      Obs.Metrics.incr_h ~by:(Queue.length q) t.dead_letters_c;
      Queue.clear q
    end
  end

let is_dead t ~pid = List.mem pid t.dead

let revive t ~pid =
  if List.mem pid t.dead then begin
    t.dead <- List.filter (fun p -> p <> pid) t.dead;
    (* a recovering node boots with an empty mailbox: everything addressed
       to the old incarnation was dead-lettered while it was down *)
    Queue.clear (mailbox t pid)
  end

let note_in_flight t =
  Obs.Metrics.set_gauge_h t.in_flight_g (float_of_int (Dq.length t.flight))

let send t ~src ~dst payload =
  Obs.Metrics.incr_h t.sends_c;
  let ev =
    if Obs.Tracer.armed t.trc then
      Obs.Tracer.emit t.trc ~track:src
        ~args:[ ("dst", Obs.Json.Int dst) ]
        ~sim:(Simkit.Sched.steps t.sched) ~cat:"net" "send"
    else -1
  in
  Dq.push_back t.flight
    {
      m = { src; dst; payload };
      deferrals = 0;
      ev;
      inc = Simkit.Sched.incarnation t.sched ~pid:src;
    };
  note_in_flight t

let broadcast t ~src payload =
  for dst = 0 to t.n - 1 do
    send t ~src ~dst payload
  done

(* the stamped receive collect_quorum uses: payload plus (src, send-time
   incarnation) so the collector can reject pre-crash ghosts *)
let try_recv_stamped t ~pid =
  let q = mailbox t pid in
  if Queue.is_empty q then None
  else begin
    let payload, dseq, src, inc = Queue.pop q in
    (* what this process does next is caused by this message *)
    if dseq >= 0 then Obs.Tracer.set_ctx t.trc dseq;
    Some (payload, src, inc)
  end

let try_recv t ~pid =
  Option.map (fun (payload, _, _) -> payload) (try_recv_stamped t ~pid)

let recv t ~pid =
  let rec wait () =
    match try_recv t ~pid with
    | Some m -> m
    | None ->
        Simkit.Fiber.yield ();
        wait ()
  in
  wait ()

let in_flight t = Dq.length t.flight
let mailbox_size t ~pid = Queue.length (mailbox t pid)

(* The single point where an in-flight message reaches a mailbox: dead
   destinations and the fault policy are applied here, so every delivery
   path (deliver_nth/_one/_now/_from, batched or not) behaves
   identically.  The item is already off the flight list; a deferral,
   duplication or partition hold pushes it (back) onto the tail. *)
let deliver_item t it =
  let m = it.m in
  (* every fate of a delivery attempt is recorded against the send event
     [it.ev] — the happens-before edge the exporters draw *)
  let fate name =
    if Obs.Tracer.armed t.trc then
      Obs.Tracer.emit t.trc ~track:m.dst ~parent:it.ev
        ~args:[ ("src", Obs.Json.Int m.src) ]
        ~sim:(Simkit.Sched.steps t.sched) ~cat:"net" name
    else -1
  in
  let enqueue () =
    Obs.Metrics.incr_h t.delivered_c;
    Queue.push (m.payload, fate "deliver", m.src, it.inc) (mailbox t m.dst)
  in
  if is_dead t ~pid:m.dst then begin
    Obs.Metrics.incr_h t.dead_letters_c;
    ignore (fate "dead_letter")
  end
  else begin
    match t.faults with
    | None -> enqueue ()
    | Some f ->
        let step = Simkit.Sched.steps t.sched in
        Obs.Metrics.set_gauge_h t.partition_g
          (if Simkit.Faults.partition_active f ~step then 1. else 0.);
        if Simkit.Faults.partitioned f ~step ~src:m.src ~dst:m.dst then begin
          (* held until the partition heals; does not consume a draw or
             the message's deferral budget *)
          Obs.Metrics.incr_h t.f_delayed_c;
          Dq.push_back t.flight it
        end
        else begin
          match Simkit.Faults.draw f ~deferrals:it.deferrals with
          | Simkit.Faults.Drop ->
              Obs.Metrics.incr_h t.f_dropped_c;
              ignore (fate "drop")
          | Simkit.Faults.Defer ->
              it.deferrals <- it.deferrals + 1;
              Obs.Metrics.incr_h t.f_delayed_c;
              Dq.push_back t.flight it
          | Simkit.Faults.Duplicate ->
              Obs.Metrics.incr_h t.f_duplicated_c;
              enqueue ();
              Dq.push_back t.flight
                { m; deferrals = it.deferrals; ev = it.ev; inc = it.inc }
          | Simkit.Faults.Deliver -> enqueue ()
        end
  end

(* One delivery attempt: deliver the i-th oldest in-flight message and —
   when batching is on — coalesce same-destination messages found among
   the oldest [batch_window] flight positions into the same attempt, up
   to [batch_max] messages total, processed oldest-first.  Every
   coalesced message still runs the full per-message fate logic (dead
   destination, partition hold, its own fault draw), so batching changes
   how many messages one attempt moves, never the per-message fault
   discipline.  The whole batch is unhooked from the flight list before
   any fate runs: a deferral or duplication re-push can never be
   re-scanned within the attempt that produced it. *)
let deliver_nth t i =
  if i < 0 || i >= Dq.length t.flight then invalid_arg "Net.deliver_nth";
  Obs.Metrics.incr_h t.attempts_c;
  let it = Dq.remove t.flight i in
  let batch =
    if not (batching_active t) then []
    else begin
      let dst = it.m.dst in
      let limit = Stdlib.min (Dq.length t.flight) t.batch_window in
      let idxs = ref [] (* descending *) and found = ref 0 in
      let j = ref 0 in
      while !found < t.batch_max - 1 && !j < limit do
        if (Dq.get t.flight !j).m.dst = dst then begin
          idxs := !j :: !idxs;
          incr found
        end;
        incr j
      done;
      (* [idxs] is descending: rev_map removes youngest-first (keeping
         the remaining indices valid) and yields the items oldest-first *)
      List.rev_map (fun k -> Dq.remove t.flight k) !idxs
    end
  in
  deliver_item t it;
  List.iter
    (fun extra ->
      Obs.Metrics.incr_h t.coalesced_c;
      deliver_item t extra)
    batch;
  note_in_flight t

let deliver_one t ~rng =
  match Dq.length t.flight with
  | 0 -> false
  | n ->
      deliver_nth t (Simkit.Rng.int rng n);
      true

let deliver_now t ~dst =
  match Dq.find t.flight (fun it -> it.m.dst = dst) with
  | None -> false
  | Some i ->
      deliver_nth t i;
      true

let deliver_from t ~src ~dst =
  match Dq.find t.flight (fun it -> it.m.dst = dst && it.m.src = src) with
  | None -> false
  | Some i ->
      deliver_nth t i;
      true

let deliver_all t =
  (* end-of-experiment flush: bypasses the fault policy (a drain must
     terminate whatever the plan), but still respects dead destinations *)
  Dq.iter t.flight (fun it ->
      let fate name =
        if Obs.Tracer.armed t.trc then
          Obs.Tracer.emit t.trc ~track:it.m.dst ~parent:it.ev
            ~args:[ ("src", Obs.Json.Int it.m.src) ]
            ~sim:(Simkit.Sched.steps t.sched) ~cat:"net" name
        else -1
      in
      if is_dead t ~pid:it.m.dst then begin
        Obs.Metrics.incr_h t.dead_letters_c;
        ignore (fate "dead_letter")
      end
      else begin
        Obs.Metrics.incr_h t.delivered_c;
        Queue.push
          (it.m.payload, fate "deliver", it.m.src, it.inc)
          (mailbox t it.m.dst)
      end);
  Dq.clear t.flight;
  note_in_flight t

let drop_to t ~dst =
  if Obs.Tracer.armed t.trc then
    Dq.iter t.flight (fun it ->
        if it.m.dst = dst then
          ignore
            (Obs.Tracer.emit t.trc ~track:dst ~parent:it.ev
               ~args:[ ("src", Obs.Json.Int it.m.src) ]
               ~sim:(Simkit.Sched.steps t.sched) ~cat:"net" "drop"));
  let removed = Dq.keep_if t.flight (fun it -> it.m.dst <> dst) in
  Obs.Metrics.incr_h ~by:removed t.dropped_c;
  note_in_flight t

let auto_deliver_policy t ~rng inner s =
  if in_flight t > 0 && Simkit.Rng.bool rng then ignore (deliver_one t ~rng);
  inner s

(* ----- quorum collection (the hardened client loop) ------------------------- *)

let collect_quorum t ~pid ~need ~seen ~classify ~stale ~retry_after ~resend =
  let count = ref 0 in
  Array.iter (fun b -> if b then incr count) seen;
  let idle = ref 0 in
  while !count < need do
    match try_recv_stamped t ~pid with
    | Some (payload, src, inc) -> (
        idle := 0;
        (* the incarnation rule: a reply stamped with an older incarnation
           of its sender was produced before that sender crashed — its
           state may predate what the recovered incarnation re-promised,
           so it can never count toward a post-recovery quorum *)
        if inc <> Simkit.Sched.incarnation t.sched ~pid:src then stale ()
        else
          match classify payload with
          | Some node when node >= 0 && node < Array.length seen ->
              if not seen.(node) then begin
                seen.(node) <- true;
                incr count
              end
              (* duplicate reply from a counted node: idempotent, ignore *)
          | Some _ | None -> stale ())
    | None ->
        Simkit.Fiber.yield ();
        incr idle;
        if retry_after > 0 && !idle >= retry_after then begin
          idle := 0;
          let missing = ref [] in
          for node = Array.length seen - 1 downto 0 do
            if not seen.(node) then missing := node :: !missing
          done;
          resend ~missing:!missing
        end
  done

(* ----- diagnostics / watchdog ------------------------------------------------ *)

let describe t =
  let b = Buffer.create 128 in
  Printf.bprintf b "net: %d in flight" (Dq.length t.flight);
  if Dq.length t.flight > 0 then begin
    Buffer.add_string b " [";
    let first = ref true in
    Dq.iter t.flight (fun it ->
        if not !first then Buffer.add_string b ", ";
        first := false;
        Printf.bprintf b "%d->%d%s" it.m.src it.m.dst
          (if it.deferrals > 0 then Printf.sprintf "(x%d)" it.deferrals
           else ""));
    Buffer.add_string b "]"
  end;
  let boxes =
    Hashtbl.fold
      (fun pid q acc -> if Queue.length q > 0 then (pid, Queue.length q) :: acc else acc)
      t.mailboxes []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  Buffer.add_string b "\nmailboxes:";
  if boxes = [] then Buffer.add_string b " (all empty)"
  else
    List.iter (fun (pid, n) -> Printf.bprintf b " p%d:%d" pid n) boxes;
  if t.dead <> [] then begin
    Buffer.add_string b "\ndead:";
    List.iter (Printf.bprintf b " p%d") (List.sort Int.compare t.dead)
  end;
  Buffer.contents b

let progress_counters =
  [
    "net.delivered";
    "net.sends";
    "net.dead_letters";
    "net.faults.dropped";
    "net.faults.delayed";
    "net.faults.duplicated";
    "trace.responds";
    (* crash–recovery work is progress too: a recovery storm (restarts
       plus state-transfer rounds) must not read as a livelock *)
    "sched.restarts";
    "reg.abd.state_transfer";
    "reg.mwabd.state_transfer";
  ]

let watchdog ?(window = 5_000) t =
  let reg = metrics t in
  {
    Simkit.Sched.window;
    progress =
      (fun () ->
        List.fold_left
          (fun acc name -> acc + Obs.Metrics.counter reg name)
          0 progress_counters);
    describe = (fun () -> describe t);
  }
