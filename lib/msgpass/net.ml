type 'a msg = { src : int; dst : int; payload : 'a }

type 'a t = {
  sched : Simkit.Sched.t;
  n : int;
  mutable flight : 'a msg list; (* oldest first *)
  mailboxes : (int, 'a Queue.t) Hashtbl.t;
}

let create ~sched ~n =
  if n < 1 then invalid_arg "Net.create: n must be >= 1";
  { sched; n; flight = []; mailboxes = Hashtbl.create 16 }

let mailbox t pid =
  match Hashtbl.find_opt t.mailboxes pid with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add t.mailboxes pid q;
      q

let metrics t = Simkit.Sched.metrics t.sched

let note_in_flight t =
  Obs.Metrics.set_gauge (metrics t) "net.in_flight"
    (float_of_int (List.length t.flight))

let send t ~src ~dst payload =
  Obs.Metrics.incr (metrics t) "net.sends";
  t.flight <- t.flight @ [ { src; dst; payload } ];
  note_in_flight t

let broadcast t ~src payload =
  for dst = 0 to t.n - 1 do
    send t ~src ~dst payload
  done

let try_recv t ~pid =
  let q = mailbox t pid in
  if Queue.is_empty q then None else Some (Queue.pop q)

let recv t ~pid =
  let rec wait () =
    match try_recv t ~pid with
    | Some m -> m
    | None ->
        Simkit.Fiber.yield ();
        wait ()
  in
  wait ()

let in_flight t = List.length t.flight
let mailbox_size t ~pid = Queue.length (mailbox t pid)

let deliver_nth t i =
  let rec go k acc = function
    | [] -> invalid_arg "Net.deliver_nth"
    | m :: rest ->
        if k = i then begin
          t.flight <- List.rev_append acc rest;
          Obs.Metrics.incr (metrics t) "net.delivered";
          Queue.push m.payload (mailbox t m.dst)
        end
        else go (k + 1) (m :: acc) rest
  in
  go 0 [] t.flight;
  note_in_flight t

let deliver_one t ~rng =
  match t.flight with
  | [] -> false
  | l ->
      deliver_nth t (Simkit.Rng.int rng (List.length l));
      true

let deliver_now t ~dst =
  let rec idx k = function
    | [] -> None
    | m :: _ when m.dst = dst -> Some k
    | _ :: rest -> idx (k + 1) rest
  in
  match idx 0 t.flight with
  | None -> false
  | Some i ->
      deliver_nth t i;
      true

let deliver_from t ~src ~dst =
  let rec idx k = function
    | [] -> None
    | m :: _ when m.dst = dst && m.src = src -> Some k
    | _ :: rest -> idx (k + 1) rest
  in
  match idx 0 t.flight with
  | None -> false
  | Some i ->
      deliver_nth t i;
      true

let deliver_all t =
  Obs.Metrics.incr (metrics t) ~by:(List.length t.flight) "net.delivered";
  List.iter (fun m -> Queue.push m.payload (mailbox t m.dst)) t.flight;
  t.flight <- [];
  note_in_flight t

let drop_to t ~dst =
  let kept = List.filter (fun m -> m.dst <> dst) t.flight in
  Obs.Metrics.incr (metrics t)
    ~by:(List.length t.flight - List.length kept)
    "net.dropped";
  t.flight <- kept;
  note_in_flight t

let auto_deliver_policy t ~rng inner s =
  if in_flight t > 0 && Simkit.Rng.bool rng then ignore (deliver_one t ~rng);
  inner s
