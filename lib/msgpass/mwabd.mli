(** Multi-writer ABD: the standard MWMR register for message-passing
    systems, built from the SWMR ABD by adding a timestamp-query phase
    before each write.

    A writer first asks a majority for their current sequence numbers,
    forms [⟨max+1, pid⟩] — a {e Lamport} timestamp, exactly as in the
    paper's Algorithm 4 — and then pushes [(v, ts)] to a majority.
    Readers are unchanged from ABD (query majority, pick max, write back).

    Being timestamp-based like Algorithm 4, this register is linearizable
    but {e not} write strongly-linearizable, and for the same reason: at
    the moment a write completes, a concurrent writer's timestamp may
    still depend on which query replies the network will deliver.
    {!Mwabd_scenario} transposes Figure 4 to message passing: a common
    prefix [G] in which writer 0's query phase has stalled mid-quorum and
    writer 1's write has completed, with two delivery-order extensions
    forcing opposite write orders.  Theorem 14's "every linearizable SWMR
    implementation is WSL" therefore really is about the {e single}-writer
    structure, not about message passing vs shared memory.

    {b Fault tolerance.}  Hardened exactly like {!Abd}: replies carry the
    replica's node index and quorums count distinct nodes, requests are
    retransmitted to the not-yet-heard replicas after [retry_after]
    fruitless yields, and servers are idempotent — so every phase
    terminates under any {!Simkit.Faults} plan keeping a majority of
    replicas reachable.  Counters: [reg.mwabd.stale],
    [reg.mwabd.retransmits]. *)

type t

type persist = [ `Every | `Never ]
(** Replica sync-point policy; see {!Abd.persist}. *)

val create :
  ?retry_after:int ->
  ?quorum:int ->
  ?persist:persist ->
  ?unsafe_recovery:bool ->
  ?compact:bool ->
  sched:Simkit.Sched.t ->
  name:string ->
  n:int ->
  init:int ->
  unit ->
  t
(** [n >= 2] nodes; every node may write.  Spawns the server fibers
    (pids [100 + node]).  [retry_after] (default 25; [<= 0] disables) is
    the client retransmission timeout in own-fiber yields.  [quorum]
    (default the majority) is the test-only bug-injection hook described
    in {!Abd.create}; rounds record it in [reg.mwabd.quorum.need].
    [persist] (default [`Every]) and [unsafe_recovery] (default [false])
    are the crash–recovery knobs described in {!Abd.create}; the
    counters are [reg.mwabd.recoveries] / [reg.mwabd.state_transfer] /
    [reg.mwabd.amnesia].  [compact] (default [false]) enables stable-log
    auto-compaction as in {!Abd.create}. *)

type msg

val net : t -> msg Net.t
val majority : t -> int

val write : t -> proc:int -> int -> unit
(** Two-phase write; call from fiber [proc] (a node id). *)

val read : t -> reader:int -> int

val crash_node : t -> node:int -> unit
(** Crash a node's server (and its client fiber if spawned); the network
    dead-letters its mail from now on, and the un-persisted suffix of the
    node's stable-storage log is lost.  Keep a majority alive. *)

val recover_node : t -> node:int -> unit
(** Restart a crashed node's server with a bumped incarnation, a fresh
    mailbox and the state-transfer recovery handshake (skipped under
    [unsafe_recovery]); see {!Abd.recover_node}.
    @raise Invalid_argument if the node's server has not crashed. *)

val server_pid : node:int -> int
