module V = History.Value
module Op = History.Op

(* lexicographic comparison of equal-length int arrays *)
let lex_compare (a : int array) (b : int array) =
  let n = Array.length a in
  let rec go i =
    if i = n then 0
    else match Int.compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
  in
  go 0

module Alg2 = struct
  type t = {
    log : Mclog.t;
    name : string;
    n : int;
    vals : (int * int array) Atomic.t array;
  }

  let create ~log ~name ~n ~init =
    if n < 1 then invalid_arg "Mc.Alg2.create: n must be >= 1";
    {
      log;
      name;
      n;
      vals = Array.init n (fun _ -> Atomic.make (init, Array.make n 0));
    }

  let check_proc t proc =
    if proc < 1 || proc > t.n then invalid_arg "Mc.Alg2: proc out of range"

  let write t ~proc v =
    check_proc t proc;
    let op_id =
      Mclog.invoke t.log ~proc ~obj:t.name ~kind:(Op.Write (V.Int v))
    in
    (* lines 1–7: build the vector timestamp one component at a time *)
    let new_ts = Array.make t.n 0 in
    for i = 1 to t.n do
      let _, ts_i = Atomic.get t.vals.(i - 1) in
      new_ts.(i - 1) <- (if i = proc then ts_i.(i - 1) + 1 else ts_i.(i - 1))
    done;
    (* line 8 *)
    Atomic.set t.vals.(proc - 1) (v, new_ts);
    Mclog.respond t.log ~op_id ~result:None

  let read t ~proc =
    check_proc t proc;
    let op_id = Mclog.invoke t.log ~proc ~obj:t.name ~kind:Op.Read in
    let best = ref (Atomic.get t.vals.(0)) in
    for i = 2 to t.n do
      let (_, ts) as p = Atomic.get t.vals.(i - 1) in
      if lex_compare ts (snd !best) > 0 then best := p
    done;
    let v = fst !best in
    Mclog.respond t.log ~op_id ~result:(Some (V.Int v));
    v
end

module Alg4 = struct
  type t = {
    log : Mclog.t;
    name : string;
    n : int;
    vals : (int * (int * int)) Atomic.t array; (* (v, (sq, pid)) *)
  }

  let create ~log ~name ~n ~init =
    if n < 1 then invalid_arg "Mc.Alg4.create: n must be >= 1";
    {
      log;
      name;
      n;
      vals = Array.init n (fun i -> Atomic.make (init, (0, i + 1)));
    }

  let check_proc t proc =
    if proc < 1 || proc > t.n then invalid_arg "Mc.Alg4: proc out of range"

  let ts_compare (sq1, p1) (sq2, p2) =
    match Int.compare sq1 sq2 with 0 -> Int.compare p1 p2 | c -> c

  let write t ~proc v =
    check_proc t proc;
    let op_id =
      Mclog.invoke t.log ~proc ~obj:t.name ~kind:(Op.Write (V.Int v))
    in
    let max_sq = ref 0 in
    for i = 1 to t.n do
      let _, (sq, _) = Atomic.get t.vals.(i - 1) in
      if sq > !max_sq then max_sq := sq
    done;
    Atomic.set t.vals.(proc - 1) (v, (!max_sq + 1, proc));
    Mclog.respond t.log ~op_id ~result:None

  let read t ~proc =
    check_proc t proc;
    let op_id = Mclog.invoke t.log ~proc ~obj:t.name ~kind:Op.Read in
    let best = ref (Atomic.get t.vals.(0)) in
    for i = 2 to t.n do
      let (_, ts) as p = Atomic.get t.vals.(i - 1) in
      if ts_compare ts (snd !best) > 0 then best := p
    done;
    let v = fst !best in
    Mclog.respond t.log ~op_id ~result:(Some (V.Int v));
    v
end

module Stress = struct
  type report = {
    history : History.Hist.t;
    ops : int;
    linearizable : bool option;
  }

  let run ~impl ~domains ~ops_per_domain ?(check = true) () =
    if domains < 1 then invalid_arg "Stress.run: domains must be >= 1";
    let log = Mclog.create () in
    let do_ops : proc:int -> unit =
      match impl with
      | `Alg2 ->
          let r = Alg2.create ~log ~name:"R" ~n:domains ~init:0 in
          fun ~proc ->
            for k = 1 to ops_per_domain do
              if k mod 2 = 1 then Alg2.write r ~proc ((1000 * proc) + k)
              else ignore (Alg2.read r ~proc)
            done
      | `Alg4 ->
          let r = Alg4.create ~log ~name:"R" ~n:domains ~init:0 in
          fun ~proc ->
            for k = 1 to ops_per_domain do
              if k mod 2 = 1 then Alg4.write r ~proc ((1000 * proc) + k)
              else ignore (Alg4.read r ~proc)
            done
    in
    let workers =
      List.init domains (fun i ->
          Domain.spawn (fun () -> do_ops ~proc:(i + 1)))
    in
    List.iter Domain.join workers;
    let history = Mclog.history log in
    let ops = List.length (History.Hist.ops history) in
    let linearizable =
      if not check then None
      else
        match Linchk.Lincheck.check ~init:(V.Int 0) history with
        | b -> Some b
        | exception Linchk.Lincheck.Too_large _ -> None
    in
    { history; ops; linearizable }
end
