(* The headline result, live: Algorithm 1 — a game whose termination
   separates plain linearizability from write strong-linearizability.

   With registers that are only linearizable, the Theorem-6 adversary
   keeps all n processes in the game forever, whatever the coins say.
   With write strongly-linearizable registers the very same adversary can
   only guess, and the game ends almost surely (Theorem 7), at a round
   that is geometrically distributed.

     dune exec examples/game_demo.exe
*)

let () =
  let n = 5 in

  print_endline "=== Theorem 6: linearizable registers, scripted adversary ===";
  List.iter
    (fun rounds ->
      let res = Core.Adversary.run_linearizable ~n ~rounds ~seed:17L () in
      Printf.printf
        "  budget %3d rounds: game still alive = %b (every process in round \
         %d)\n"
        rounds
        (not res.Core.Game_alg1.terminated)
        res.Core.Game_alg1.max_round)
    [ 1; 4; 16; 64 ];

  print_endline "";
  print_endline
    "=== Theorem 7: write strongly-linearizable registers, same adversary ===";
  let t =
    Core.Game_stats.e2_termination ~n ~max_rounds:60 ~runs:200 ~seed:23L ()
  in
  Format.printf "%a@." Core.Game_stats.pp_termination t;

  print_endline "=== Baseline: atomic registers, random scheduler ===";
  let t =
    Core.Game_stats.atomic_termination ~n ~max_rounds:60 ~runs:200 ~seed:29L ()
  in
  Format.printf "%a@." Core.Game_stats.pp_termination t;

  (* Show round 1 of the adversarial run in paper-figure form. *)
  print_endline "=== Figure 1/2 view: R1's history in round 1 (adversarial run) ===";
  let res = Core.Adversary.run_linearizable ~n ~rounds:1 ~seed:17L () in
  let tr = Core.Sched.trace res.Core.Game_alg1.handles.Core.Game_alg1.sched in
  let h = Core.Hist.project (Core.Trace.history tr) ~obj:"R1" in
  print_string (Core.Timeline.render h);
  print_endline
    "(the two hosts' writes overlap the players' reads; the adversary\n\
     linearized them after seeing the coin - impossible had R1 been write\n\
     strongly-linearizable)"
