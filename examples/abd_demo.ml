(* ABD in a simulated message-passing system, with crashes.

   The run produces a SWMR register history under random asynchrony and a
   crashed minority; we check it is linearizable and — per Theorem 14 —
   write strongly-linearizable, by applying the f* construction to every
   prefix and watching the write order grow monotonically.

     dune exec examples/abd_demo.exe
*)

let () =
  print_endline "=== ABD: 5 nodes, writer + 2 readers, 2 crashes mid-run ===";
  let w =
    {
      Core.Abd_runs.n = 5;
      writes = 5;
      readers = [ 1; 2 ];
      reads_each = 4;
      crash = [ 3; 4 ];
      faults = Core.Faults.none;
      seed = 4242L;
    }
  in
  let run = Core.Abd_runs.execute w in
  Printf.printf "completed: %b (in %d scheduler steps)\n" run.completed run.steps;
  print_endline "history of the replicated register:";
  print_string (Core.Timeline.render run.history);
  (match Core.Abd_runs.check run with
  | Ok () ->
      print_endline
        "\ncheck: linearizable AND write strongly-linearizable (f* write \
         order monotone on every prefix)"
  | Error e -> Printf.printf "\ncheck FAILED: %s\n" e);

  (* The f* write orders along the prefixes, to make Theorem 14 concrete. *)
  match Core.Fstar.wsl_function ~init:(Core.Value.Int 0) run.history with
  | Error e -> Printf.printf "unexpected: %s\n" e
  | Ok orders ->
      let final = List.nth orders (List.length orders - 1) in
      Printf.printf
        "\nf* write order grew monotonically over %d prefixes up to: [%s]\n"
        (List.length orders)
        (String.concat "; " (List.map string_of_int final))
