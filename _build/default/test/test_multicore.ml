(* Tests for the multicore (Domain + Atomic) layer: the register
   constructions survive real parallelism, with recorded histories passing
   the exact linearizability checker. *)

module Mc = Core.Mc_registers
module Log = Core.Mclog
module V = Core.Value
module Op = Core.Op

let tc name f = Alcotest.test_case name `Quick f
let tcs name f = Alcotest.test_case name `Slow f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let log_tests =
  [
    tc "log produces well-formed histories" (fun () ->
        let log = Log.create () in
        let id = Log.invoke log ~proc:1 ~obj:"R" ~kind:Op.Read in
        Log.respond log ~op_id:id ~result:(Some (V.Int 0));
        let h = Log.history log in
        check_int "events" 2 (Core.Hist.length h));
    tc "concurrent appends all land" (fun () ->
        let log = Log.create () in
        let domains =
          List.init 4 (fun d ->
              Domain.spawn (fun () ->
                  for _ = 1 to 25 do
                    let id =
                      Log.invoke log ~proc:(d + 1) ~obj:"R" ~kind:Op.Read
                    in
                    Log.respond log ~op_id:id ~result:(Some (V.Int 0))
                  done))
        in
        List.iter Domain.join domains;
        check_int "all ops" 100 (List.length (Core.Hist.ops (Log.history log))));
  ]

let seq_tests =
  [
    tc "alg2 single-domain round trip" (fun () ->
        let log = Log.create () in
        let r = Mc.Alg2.create ~log ~name:"R" ~n:2 ~init:0 in
        Mc.Alg2.write r ~proc:1 5;
        check_int "read" 5 (Mc.Alg2.read r ~proc:2));
    tc "alg4 single-domain round trip" (fun () ->
        let log = Log.create () in
        let r = Mc.Alg4.create ~log ~name:"R" ~n:2 ~init:0 in
        Mc.Alg4.write r ~proc:2 7;
        check_int "read" 7 (Mc.Alg4.read r ~proc:1));
    tc "initial value visible before any write" (fun () ->
        let log = Log.create () in
        let r = Mc.Alg2.create ~log ~name:"R" ~n:3 ~init:42 in
        check_int "init" 42 (Mc.Alg2.read r ~proc:1));
    tc "proc bounds enforced" (fun () ->
        let log = Log.create () in
        let r = Mc.Alg2.create ~log ~name:"R" ~n:2 ~init:0 in
        Alcotest.check_raises "range" (Invalid_argument "Mc.Alg2: proc out of range")
          (fun () -> Mc.Alg2.write r ~proc:3 1));
  ]

let stress_tests =
  [
    tcs "alg2 stress: linearizable across domains" (fun () ->
        for _ = 1 to 8 do
          let rep = Mc.Stress.run ~impl:`Alg2 ~domains:3 ~ops_per_domain:5 () in
          check_bool "linearizable" true (rep.Mc.Stress.linearizable = Some true)
        done);
    tcs "alg4 stress: linearizable across domains" (fun () ->
        for _ = 1 to 8 do
          let rep = Mc.Stress.run ~impl:`Alg4 ~domains:3 ~ops_per_domain:5 () in
          check_bool "linearizable" true (rep.Mc.Stress.linearizable = Some true)
        done);
    tcs "stress records the expected op count" (fun () ->
        let rep = Mc.Stress.run ~impl:`Alg2 ~domains:4 ~ops_per_domain:6 ~check:false () in
        check_int "ops" 24 rep.Mc.Stress.ops;
        check_bool "unchecked" true (rep.Mc.Stress.linearizable = None));
  ]

let suite =
  [
    ("multicore.log", log_tests);
    ("multicore.sequential", seq_tests);
    ("multicore.stress", stress_tests);
  ]
