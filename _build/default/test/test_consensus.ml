(* Tests for commit-adopt, the randomized consensus (task 𝒜), and the
   Corollary 9 composition 𝒜′. *)

module CA = Core.Commit_adopt
module RC = Core.Rand_consensus
module Cor9 = Core.Cor9
module Sched = Core.Sched

let tc name f = Alcotest.test_case name `Quick f
let tcs name f = Alcotest.test_case name `Slow f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* run a commit-adopt instance with the given proposals under a policy;
   returns proc -> verdict *)
let run_ca ~n ~proposals ~seed =
  let sched = Sched.create ~seed () in
  let ca = CA.create ~sched ~name:"CA" ~n in
  let verdicts = Hashtbl.create 8 in
  List.iteri
    (fun i v ->
      let proc = i + 1 in
      Sched.spawn sched ~pid:proc (fun () ->
          Hashtbl.replace verdicts proc (CA.propose ca ~proc v)))
    proposals;
  let rng = Core.Rng.create (Int64.add seed 7L) in
  ignore (Sched.run sched ~policy:(Sched.random_policy rng) ~max_steps:(n * 200));
  fun proc -> Hashtbl.find_opt verdicts proc

let ca_tests =
  [
    tc "unanimous proposals all commit" (fun () ->
        let v = run_ca ~n:3 ~proposals:[ 4; 4; 4 ] ~seed:1L in
        for p = 1 to 3 do
          match v p with
          | Some (CA.Commit 4) -> ()
          | other ->
              Alcotest.fail
                (Printf.sprintf "p%d: expected Commit 4, got %s" p
                   (match other with
                   | Some (CA.Commit x) -> Printf.sprintf "Commit %d" x
                   | Some (CA.Adopt x) -> Printf.sprintf "Adopt %d" x
                   | Some CA.Flip -> "Flip"
                   | None -> "nothing"))
        done);
    tc "solo proposer commits" (fun () ->
        let sched = Sched.create () in
        let ca = CA.create ~sched ~name:"CA" ~n:3 in
        let out = ref None in
        Sched.spawn sched ~pid:1 (fun () -> out := Some (CA.propose ca ~proc:1 9));
        ignore
          (Sched.run sched ~policy:(fun s -> Sched.round_robin s) ~max_steps:100);
        check_bool "commit" true (!out = Some (CA.Commit 9)));
    tc "commit forces everyone onto the same value (agreement core)"
      (fun () ->
        (* across many seeds and mixed proposals: if anyone commits v, no
           one adopts or commits a different value, and nobody flips *)
        for seed = 1 to 60 do
          let v = run_ca ~n:4 ~proposals:[ 0; 1; 0; 1 ] ~seed:(Int64.of_int seed) in
          let committed = ref None in
          for p = 1 to 4 do
            match v p with
            | Some (CA.Commit x) -> committed := Some x
            | _ -> ()
          done;
          match !committed with
          | None -> ()
          | Some x ->
              for p = 1 to 4 do
                match v p with
                | Some (CA.Commit y) | Some (CA.Adopt y) ->
                    check_int "same value" x y
                | Some CA.Flip -> Alcotest.fail "flip alongside a commit"
                | None -> ()
              done
        done);
    tc "at most one value is ever clean" (fun () ->
        (* adopts never disagree: collect adopt values, all equal *)
        for seed = 100 to 160 do
          let v = run_ca ~n:3 ~proposals:[ 0; 1; 1 ] ~seed:(Int64.of_int seed) in
          let adopted = ref [] in
          for p = 1 to 3 do
            match v p with
            | Some (CA.Adopt x) | Some (CA.Commit x) -> adopted := x :: !adopted
            | _ -> ()
          done;
          match !adopted with
          | [] -> ()
          | x :: rest -> List.iter (fun y -> check_int "agree" x y) rest
        done);
    tc "propose validates proc" (fun () ->
        let sched = Sched.create () in
        let ca = CA.create ~sched ~name:"CA" ~n:2 in
        Alcotest.check_raises "proc"
          (Invalid_argument "Commit_adopt.propose: bad proc") (fun () ->
            ignore (CA.propose ca ~proc:3 1)));
  ]

(* ----- randomized consensus --------------------------------------------------------- *)

let rc_tests =
  [
    tc "agreement and validity on every seed" (fun () ->
        for seed = 1 to 25 do
          let r =
            RC.run_random
              { RC.n = 4; max_rounds = 300; seed = Int64.of_int seed }
              ~inputs:(fun p -> p mod 2)
          in
          check_bool "agreed" true r.RC.agreed;
          check_bool "valid" true r.RC.valid;
          check_int "all decided" 4
            (List.length (List.filter (fun (_, d) -> d <> None) r.RC.decisions))
        done);
    tc "unanimous input decides that input, round 1" (fun () ->
        for seed = 1 to 10 do
          let r =
            RC.run_random
              { RC.n = 4; max_rounds = 50; seed = Int64.of_int (seed * 3) }
              ~inputs:(fun _ -> 1)
          in
          List.iter
            (fun (_, d) -> check_bool "decided 1" true (d = Some 1))
            r.RC.decisions
        done);
    tc "n = 1 decides immediately" (fun () ->
        let r =
          RC.run_random { RC.n = 1; max_rounds = 10; seed = 3L }
            ~inputs:(fun _ -> 0)
        in
        check_bool "decided" true (List.for_all (fun (_, d) -> d = Some 0) r.RC.decisions));
    tcs "terminates under round-robin too" (fun () ->
        for seed = 1 to 10 do
          let sched = Sched.create ~seed:(Int64.of_int seed) () in
          let collect =
            RC.spawn ~sched
              { RC.n = 3; max_rounds = 400; seed = Int64.of_int seed }
              ~inputs:(fun p -> (p + seed) mod 2)
              ()
          in
          ignore
            (Sched.run sched
               ~policy:(fun s -> Sched.round_robin s)
               ~max_steps:500_000);
          let r = collect () in
          check_bool "agreed" true r.RC.agreed;
          check_int "all decided" 3
            (List.length (List.filter (fun (_, d) -> d <> None) r.RC.decisions))
        done);
  ]

(* ----- Corollary 9 ------------------------------------------------------------------- *)

let cor9_tests =
  [
    tc "blocked: the gate never opens under the Theorem-6 adversary" (fun () ->
        let o =
          Cor9.run_blocked
            { Cor9.n = 5; gate_rounds = 12; consensus_max_rounds = 100; seed = 3L }
        in
        check_bool "blocked" true o.Cor9.blocked;
        check_bool "game alive" true
          (not o.Cor9.game.Core.Game_alg1.terminated);
        List.iter
          (fun (_, d) -> check_bool "no decision" true (d = None))
          o.Cor9.consensus.RC.decisions);
    tc "live: gate opens and consensus completes, several seeds" (fun () ->
        List.iter
          (fun seed ->
            let o =
              Cor9.run_live
                { Cor9.n = 5; gate_rounds = 60; consensus_max_rounds = 300; seed }
                ~inputs:(fun pid -> pid mod 2)
            in
            check_bool "game over" true o.Cor9.game.Core.Game_alg1.terminated;
            check_bool "agreed" true o.Cor9.consensus.RC.agreed;
            check_bool "valid" true o.Cor9.consensus.RC.valid;
            check_int "all decided" 5
              (List.length
                 (List.filter (fun (_, d) -> d <> None) o.Cor9.consensus.RC.decisions)))
          [ 1L; 2L; 3L; 4L ]);
    tc "live with unanimous inputs decides that input" (fun () ->
        let o =
          Cor9.run_live
            { Cor9.n = 4; gate_rounds = 60; consensus_max_rounds = 200; seed = 9L }
            ~inputs:(fun _ -> 1)
        in
        List.iter
          (fun (_, d) -> check_bool "one" true (d = Some 1))
          o.Cor9.consensus.RC.decisions);
    tc "rejects n < 3" (fun () ->
        Alcotest.check_raises "n"
          (Invalid_argument "Cor9.run_blocked: n must be >= 3") (fun () ->
            ignore
              (Cor9.run_blocked
                 { Cor9.n = 2; gate_rounds = 1; consensus_max_rounds = 1; seed = 1L })));
  ]

let suite =
  [
    ("consensus.commit_adopt", ca_tests);
    ("consensus.randomized", rc_tests);
    ("consensus.cor9", cor9_tests);
  ]
