(* Tests for lib/history: operations (Definition 1), histories, sequential
   legality (Definition 2, property 3), prefixes, and the generators. *)

module V = Core.Value
module Op = Core.Op
module Event = Core.Event
module Hist = Core.Hist
module Gen = Core.Histgen

let tc name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let op ?responded ?result ~id ~proc ~kind ~invoked () =
  Op.make ~id ~proc ~obj:"R" ~kind ~invoked ?responded ?result ()

let w ~id ~proc ~invoked ~responded v =
  op ~id ~proc ~kind:(Op.Write (V.Int v)) ~invoked ~responded ()

let r ~id ~proc ~invoked ~responded v =
  op ~id ~proc ~kind:Op.Read ~invoked ~responded ~result:(V.Int v) ()

(* ----- Op: Definition 1 ----------------------------------------------------- *)

let op_tests =
  [
    tc "precedes: response before invocation" (fun () ->
        let a = w ~id:1 ~proc:1 ~invoked:1 ~responded:2 5 in
        let b = w ~id:2 ~proc:2 ~invoked:3 ~responded:4 6 in
        check_bool "a<b" true (Op.precedes a b);
        check_bool "b<a" false (Op.precedes b a);
        check_bool "concurrent" false (Op.concurrent a b));
    tc "overlapping ops are concurrent" (fun () ->
        let a = w ~id:1 ~proc:1 ~invoked:1 ~responded:5 5 in
        let b = w ~id:2 ~proc:2 ~invoked:3 ~responded:8 6 in
        check_bool "concurrent" true (Op.concurrent a b));
    tc "pending op precedes nothing" (fun () ->
        let a = op ~id:1 ~proc:1 ~kind:Op.Read ~invoked:1 () in
        let b = w ~id:2 ~proc:2 ~invoked:100 ~responded:101 5 in
        check_bool "pending" false (Op.precedes a b);
        check_bool "concurrent" true (Op.concurrent a b));
    tc "active_at bounds (Definition 21)" (fun () ->
        let a = w ~id:1 ~proc:1 ~invoked:3 ~responded:7 5 in
        check_bool "before" false (Op.active_at a 2);
        check_bool "start" true (Op.active_at a 3);
        check_bool "mid" true (Op.active_at a 5);
        check_bool "end" true (Op.active_at a 7);
        check_bool "after" false (Op.active_at a 8));
    tc "pending active forever after start" (fun () ->
        let a = op ~id:1 ~proc:1 ~kind:Op.Read ~invoked:3 () in
        check_bool "later" true (Op.active_at a 1_000_000));
    tc "write_value on read raises" (fun () ->
        let a = op ~id:1 ~proc:1 ~kind:Op.Read ~invoked:1 () in
        Alcotest.check_raises "read"
          (Invalid_argument "Op.write_value: operation is a read") (fun () ->
            ignore (Op.write_value a)));
    tc "make rejects response before invocation" (fun () ->
        Alcotest.check_raises "order"
          (Invalid_argument "Op.make: response before invocation") (fun () ->
            ignore (w ~id:1 ~proc:1 ~invoked:5 ~responded:4 0)));
  ]

(* ----- Hist: well-formedness ------------------------------------------------ *)

let ev t e = { Event.time = t; event = e }
let inv ~id ~proc ~kind = Event.Invoke { op_id = id; proc; obj = "R"; kind }
let res ~id ?result () = Event.Respond { op_id = id; result }

let hist_wf_tests =
  [
    tc "valid history accepted" (fun () ->
        let h =
          Hist.of_events_exn
            [
              ev 1 (inv ~id:1 ~proc:1 ~kind:(Op.Write (V.Int 5)));
              ev 2 (res ~id:1 ());
            ]
        in
        check_int "ops" 1 (List.length (Hist.ops h)));
    tc "non-increasing times rejected" (fun () ->
        match
          Hist.of_events
            [ ev 2 (inv ~id:1 ~proc:1 ~kind:Op.Read); ev 2 (res ~id:1 ()) ]
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted equal times");
    tc "duplicate op id rejected" (fun () ->
        match
          Hist.of_events
            [
              ev 1 (inv ~id:1 ~proc:1 ~kind:Op.Read);
              ev 2 (inv ~id:1 ~proc:2 ~kind:Op.Read);
            ]
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted duplicate id");
    tc "response without invocation rejected" (fun () ->
        match Hist.of_events [ ev 1 (res ~id:9 ()) ] with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted orphan response");
    tc "double response rejected" (fun () ->
        match
          Hist.of_events
            [
              ev 1 (inv ~id:1 ~proc:1 ~kind:Op.Read);
              ev 2 (res ~id:1 ());
              ev 3 (res ~id:1 ());
            ]
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted double response");
    tc "process overlap with itself rejected" (fun () ->
        match
          Hist.of_events
            [
              ev 1 (inv ~id:1 ~proc:1 ~kind:Op.Read);
              ev 2 (inv ~id:2 ~proc:1 ~kind:Op.Read);
            ]
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted overlapping ops by one process");
  ]

(* ----- Hist: views ----------------------------------------------------------- *)

let sample_hist () =
  Hist.of_ops
    [
      w ~id:1 ~proc:1 ~invoked:1 ~responded:4 100;
      r ~id:2 ~proc:2 ~invoked:2 ~responded:6 100;
      w ~id:3 ~proc:1 ~invoked:7 ~responded:9 101;
      op ~id:4 ~proc:3 ~kind:Op.Read ~invoked:8 ();
    ]

let hist_view_tests =
  [
    tc "ops in invocation order" (fun () ->
        let ids = List.map (fun (o : Op.t) -> o.id) (Hist.ops (sample_hist ())) in
        Alcotest.(check (list int)) "order" [ 1; 2; 3; 4 ] ids);
    tc "complete vs pending" (fun () ->
        let h = sample_hist () in
        check_int "complete" 3 (List.length (Hist.complete_ops h));
        check_int "pending" 1 (List.length (Hist.pending_ops h)));
    tc "writes and reads" (fun () ->
        let h = sample_hist () in
        check_int "writes" 2 (List.length (Hist.writes h));
        check_int "reads" 2 (List.length (Hist.reads h)));
    tc "prefixes grow one event at a time" (fun () ->
        let h = sample_hist () in
        let ps = Hist.prefixes h in
        check_int "count" (Hist.length h + 1) (List.length ps);
        List.iteri (fun i p -> check_int "len" i (Hist.length p)) ps;
        List.iter (fun p -> check_bool "prefix" true (Hist.is_prefix p ~of_:h)) ps);
    tc "is_prefix rejects diverging histories" (fun () ->
        let h1 = Hist.of_ops [ w ~id:1 ~proc:1 ~invoked:1 ~responded:2 5 ] in
        let h2 = Hist.of_ops [ w ~id:2 ~proc:1 ~invoked:1 ~responded:2 5 ] in
        check_bool "diverge" false (Hist.is_prefix h1 ~of_:h2));
    tc "project keeps only the object" (fun () ->
        let mixed =
          Hist.of_events_exn
            [
              ev 1 (Event.Invoke { op_id = 1; proc = 1; obj = "A"; kind = Op.Read });
              ev 2 (Event.Invoke { op_id = 2; proc = 2; obj = "B"; kind = Op.Read });
              ev 3 (Event.Respond { op_id = 1; result = Some (V.Int 0) });
              ev 4 (Event.Respond { op_id = 2; result = Some (V.Int 0) });
            ]
        in
        check_int "A" 2 (Hist.length (Hist.project mixed ~obj:"A"));
        check_int "B" 2 (Hist.length (Hist.project mixed ~obj:"B"));
        Alcotest.(check (list string)) "objects" [ "A"; "B" ] (Hist.objects mixed));
    tc "restrict_procs" (fun () ->
        let h = sample_hist () in
        let h1 = Hist.restrict_procs h ~procs:[ 1 ] in
        check_int "ops" 2 (List.length (Hist.ops h1)));
    tc "concurrent_pairs" (fun () ->
        let h = sample_hist () in
        (* (1,2) overlap; (3,4) overlap; (2,3)? 2 ends at 6, 3 starts at 7:
           precedes. (1,3),(1,4): precede. (2,4): 2 ends 6 < 8: precedes. *)
        check_int "pairs" 2 (List.length (Hist.concurrent_pairs h)));
    tc "max_time" (fun () ->
        check_int "max" 9 (Hist.max_time (sample_hist ()));
        check_int "empty" (-1) (Hist.max_time Hist.empty));
    tc "append validates" (fun () ->
        let h = Hist.of_ops [ w ~id:1 ~proc:1 ~invoked:1 ~responded:2 5 ] in
        let h' = h |> fun h -> Hist.append h (ev 3 (inv ~id:2 ~proc:1 ~kind:Op.Read)) in
        check_int "len" 3 (Hist.length h');
        Alcotest.check_raises "stale time"
          (Invalid_argument
             "Hist.append: event times must be strictly increasing") (fun () ->
            ignore (Hist.append h' (ev 1 (res ~id:2 ())))));
  ]

(* ----- Seq: Definition 2 ------------------------------------------------------ *)

let seq_tests =
  [
    tc "legal_register: reads follow writes" (fun () ->
        let s =
          [
            w ~id:1 ~proc:1 ~invoked:1 ~responded:2 100;
            r ~id:2 ~proc:2 ~invoked:3 ~responded:4 100;
          ]
        in
        check_bool "legal" true (Hist.Seq.legal_register ~init:(V.Int 0) s));
    tc "legal_register: initial value" (fun () ->
        let s = [ r ~id:1 ~proc:1 ~invoked:1 ~responded:2 0 ] in
        check_bool "legal" true (Hist.Seq.legal_register ~init:(V.Int 0) s));
    tc "legal_register: stale read is illegal" (fun () ->
        let s =
          [
            w ~id:1 ~proc:1 ~invoked:1 ~responded:2 100;
            r ~id:2 ~proc:2 ~invoked:3 ~responded:4 0;
          ]
        in
        check_bool "illegal" false (Hist.Seq.legal_register ~init:(V.Int 0) s);
        match Hist.Seq.first_illegal_read ~init:(V.Int 0) s with
        | Some o -> check_int "culprit" 2 o.Op.id
        | None -> Alcotest.fail "no culprit");
    tc "respects_precedence detects inversions" (fun () ->
        let a = w ~id:1 ~proc:1 ~invoked:1 ~responded:2 100 in
        let b = w ~id:2 ~proc:2 ~invoked:3 ~responded:4 101 in
        let h = Hist.of_ops [ a; b ] in
        check_bool "ok" true (Hist.Seq.respects_precedence h [ a; b ]);
        check_bool "inverted" false (Hist.Seq.respects_precedence h [ b; a ]));
    tc "covers_complete requires all complete ops" (fun () ->
        let a = w ~id:1 ~proc:1 ~invoked:1 ~responded:2 100 in
        let b = w ~id:2 ~proc:2 ~invoked:3 ~responded:4 101 in
        let h = Hist.of_ops [ a; b ] in
        check_bool "full" true (Hist.Seq.covers_complete h [ a; b ]);
        check_bool "missing" false (Hist.Seq.covers_complete h [ a ]));
    tc "is_linearization_of: identity case" (fun () ->
        let a = w ~id:1 ~proc:1 ~invoked:1 ~responded:2 100 in
        let b = r ~id:2 ~proc:2 ~invoked:3 ~responded:4 100 in
        let h = Hist.of_ops [ a; b ] in
        check_bool "ok" true
          (Hist.Seq.is_linearization_of ~init:(V.Int 0) h [ a; b ]));
    tc "is_linearization_of rejects foreign ops" (fun () ->
        let a = w ~id:1 ~proc:1 ~invoked:1 ~responded:2 100 in
        let foreign = w ~id:99 ~proc:9 ~invoked:1 ~responded:2 1 in
        let h = Hist.of_ops [ a ] in
        check_bool "foreign" false
          (Hist.Seq.is_linearization_of ~init:(V.Int 0) h [ a; foreign ]));
    tc "write_subsequence" (fun () ->
        let a = w ~id:1 ~proc:1 ~invoked:1 ~responded:2 100 in
        let b = r ~id:2 ~proc:2 ~invoked:3 ~responded:4 100 in
        let c = w ~id:3 ~proc:1 ~invoked:5 ~responded:6 101 in
        Alcotest.(check (list int)) "writes" [ 1; 3 ]
          (List.map (fun (o : Op.t) -> o.id)
             (Hist.Seq.write_subsequence [ a; b; c ])));
    tc "is_op_prefix" (fun () ->
        let a = w ~id:1 ~proc:1 ~invoked:1 ~responded:2 100 in
        let b = w ~id:2 ~proc:2 ~invoked:3 ~responded:4 101 in
        check_bool "prefix" true (Hist.Seq.is_op_prefix [ a ] ~of_:[ a; b ]);
        check_bool "not prefix" false (Hist.Seq.is_op_prefix [ b ] ~of_:[ a; b ]);
        check_bool "empty" true (Hist.Seq.is_op_prefix [] ~of_:[ a ]));
  ]

(* ----- generators -------------------------------------------------------------- *)

let gen_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"atomic generator: witness is a linearization"
         ~count:100
         (QCheck.make (Gen.atomic_history_with_witness Gen.default_spec))
         (fun (h, wit) ->
           Hist.Seq.is_linearization_of ~init:Gen.default_spec.Gen.init h wit));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"arbitrary generator: well-formed" ~count:100
         (Gen.arb_arbitrary Gen.default_spec) (fun h ->
           (* of_events_exn already validated; check ops are on one object *)
           List.length (Hist.objects h) <= 1));
    tc "timeline renders something" (fun () ->
        let h = sample_hist () in
        let s = Core.Timeline.render h in
        check_bool "nonempty" true (String.length s > 0);
        check_bool "has proc line" true
          (String.length s > 0 && String.contains s 'p'));
    tc "timeline of empty history" (fun () ->
        Alcotest.(check string) "empty" "(empty history)\n"
          (Core.Timeline.render Hist.empty));
  ]

let suite =
  [
    ("history.op", op_tests);
    ("history.wellformed", hist_wf_tests);
    ("history.views", hist_view_tests);
    ("history.seq", seq_tests);
    ("history.gen", gen_tests);
  ]
