test/test_consensus.ml: Alcotest Core Hashtbl Int64 List Printf
