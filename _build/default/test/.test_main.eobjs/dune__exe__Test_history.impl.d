test/test_history.ml: Alcotest Core List QCheck QCheck_alcotest String
