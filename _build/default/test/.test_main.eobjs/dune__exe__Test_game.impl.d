test/test_game.ml: Alcotest Core List Printf
