test/test_registers.ml: Alcotest Array Core Int64 QCheck QCheck_alcotest
