test/test_clocks.ml: Alcotest Core List QCheck QCheck_alcotest
