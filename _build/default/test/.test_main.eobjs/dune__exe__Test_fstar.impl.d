test/test_fstar.ml: Alcotest Core Int64 List QCheck QCheck_alcotest
