test/test_lincheck.ml: Alcotest Core List Option QCheck QCheck_alcotest
