test/test_mwabd.ml: Alcotest Core Int64 List QCheck QCheck_alcotest
