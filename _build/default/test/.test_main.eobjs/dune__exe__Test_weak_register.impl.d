test/test_weak_register.ml: Alcotest Core Int64 List QCheck QCheck_alcotest Registers Scenarios
