test/test_simkit.ml: Alcotest Array Core List Option
