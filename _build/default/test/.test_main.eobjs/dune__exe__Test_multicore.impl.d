test/test_multicore.ml: Alcotest Core Domain List
