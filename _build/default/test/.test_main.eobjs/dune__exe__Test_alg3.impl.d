test/test_alg3.ml: Alcotest Core Int64 List Printf QCheck QCheck_alcotest String
