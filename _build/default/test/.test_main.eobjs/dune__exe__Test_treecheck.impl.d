test/test_treecheck.ml: Alcotest Core QCheck QCheck_alcotest
