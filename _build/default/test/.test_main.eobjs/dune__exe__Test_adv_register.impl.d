test/test_adv_register.ml: Alcotest Core Int64 List Option QCheck QCheck_alcotest
