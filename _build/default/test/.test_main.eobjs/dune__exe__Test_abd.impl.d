test/test_abd.ml: Alcotest Core List
