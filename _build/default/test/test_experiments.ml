(* Integration test: the full experiment battery (quick profile) must
   reproduce every claim of the paper. *)

let tcs name f = Alcotest.test_case name `Slow f

let suite =
  [
    ( "experiments.battery",
      [
        tcs "E1-E8 all reproduce the paper's claims (quick profile)" (fun () ->
            List.iter
              (fun (r : Experiments.report) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: %s" r.Experiments.id r.Experiments.measured)
                  true r.Experiments.pass)
              (Experiments.all ~quick:true));
      ] );
  ]
